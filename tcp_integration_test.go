package gcs_test

// Full-stack integration over real TCP: three nodes on loopback sockets
// reach total order, exactly as cmd/gcsnode deploys them.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	gcs "repro"
)

func TestFullStackOverTCP(t *testing.T) {
	ids := []gcs.ID{"a", "b", "c"}

	// Bind listeners first so every peer address is known up front.
	transports := make(map[gcs.ID]gcs.Transport, len(ids))
	peers := make(map[gcs.ID]string, len(ids))
	for _, id := range ids {
		tr, err := gcs.NewTCPTransport(id, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		transports[id] = tr
		type addresser interface{ Addr() string }
		peers[id] = tr.(addresser).Addr()
	}
	// The transports above were built without a peer map; rebuild them now
	// that all addresses exist.
	for _, tr := range transports {
		tr.Close()
	}
	for id, addr := range peers {
		tr, err := gcs.NewTCPTransport(id, addr, peers)
		if err != nil {
			t.Fatal(err)
		}
		transports[id] = tr
	}

	var (
		mu    sync.Mutex
		order = make(map[gcs.ID][]string)
	)
	var nodes []*gcs.Node
	for _, id := range ids {
		self := id
		node, err := gcs.NewNode(transports[id], gcs.Config{
			Self:             id,
			Universe:         ids,
			RTO:              30 * time.Millisecond,
			HeartbeatEvery:   10 * time.Millisecond,
			SuspicionTimeout: 150 * time.Millisecond,
		}, func(d gcs.Delivery) {
			if m, ok := d.Body.(appMsg); ok {
				mu.Lock()
				order[self] = append(order[self], m.S)
				mu.Unlock()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()

	const total = 12
	for i := 0; i < total; i++ {
		if err := nodes[i%3].Abcast(appMsg{S: fmt.Sprintf("tcp-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		done := len(order["a"]) >= total && len(order["b"]) >= total && len(order["c"]) >= total
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			defer mu.Unlock()
			t.Fatalf("TCP cluster delivered %d/%d/%d of %d",
				len(order["a"]), len(order["b"]), len(order["c"]), total)
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < total; i++ {
		if order["a"][i] != order["b"][i] || order["a"][i] != order["c"][i] {
			t.Fatalf("total order differs over TCP at %d: %q %q %q",
				i, order["a"][i], order["b"][i], order["c"][i])
		}
	}
}
