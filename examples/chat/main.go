// Chat: dynamic membership with totally-ordered messages.
//
// A chat room where the roster is the group view: joins and leaves are view
// changes riding the same broadcast stack as the messages, so every member
// sees messages and roster changes in exactly the same order ("same view
// delivery" without any flush protocol). A silent member is excluded by the
// monitoring component — not by the failure detector directly.
//
// Run with: go run ./examples/chat
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	gcs "repro"
)

// Post is a chat message.
type Post struct {
	From string
	Text string
}

func main() {
	gcs.RegisterType(Post{})

	var (
		mu   sync.Mutex
		logs = make(map[gcs.ID][]string)
	)
	record := func(self gcs.ID, line string) {
		mu.Lock()
		defer mu.Unlock()
		logs[self] = append(logs[self], line)
	}

	cluster, err := gcs.NewCluster(4,
		gcs.WithDeliver(func(self gcs.ID, d gcs.Delivery) {
			if p, ok := d.Body.(Post); ok {
				record(self, fmt.Sprintf("<%s> %s", p.From, p.Text))
			}
		}),
		gcs.WithConfig(func(cfg *gcs.Config) {
			cfg.StartMonitor = true
			cfg.ExclusionTimeout = 300 * time.Millisecond
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	for _, node := range cluster.Nodes {
		self := node.Self()
		node.OnView(func(v gcs.View) {
			record(self, fmt.Sprintf("-- roster is now %v", v.Members))
		})
	}

	say := func(i int, text string) {
		node := cluster.Nodes[i]
		if err := node.Abcast(Post{From: string(node.Self()), Text: text}); err != nil {
			log.Fatal(err)
		}
	}

	say(0, "hello everyone")
	say(1, "hi p0!")
	say(2, "ordered chat is nice")
	time.Sleep(300 * time.Millisecond)

	// p3 goes silent; the monitoring component eventually excludes it.
	fmt.Println("p3 drops off the network ...")
	cluster.Net.Crash("p3")
	waitUntil(func() bool { return !cluster.Nodes[0].View().Contains("p3") })
	say(0, "p3 left the room")
	time.Sleep(300 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	ids := make([]string, 0, len(logs))
	for id := range logs {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		if id == "p3" {
			continue // crashed; its log is frozen
		}
		fmt.Printf("--- transcript at %s ---\n", id)
		for _, line := range logs[gcs.ID(id)] {
			fmt.Println(" ", line)
		}
	}
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("timed out")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
