// Quickstart: a replicated counter over the new-architecture stack.
//
// Three nodes run in one process over the simulated network. Increments are
// atomically broadcast, so every replica applies them in the same order;
// the group survives the crash of any single member with no membership
// change at all — the core property of the paper's architecture.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	gcs "repro"
)

// Inc is the replicated command.
type Inc struct {
	By int64
}

func main() {
	gcs.RegisterType(Inc{})

	// One counter per node, updated from the delivery callback.
	var (
		counters [3]atomic.Int64
		mu       sync.Mutex
		orders   = make(map[gcs.ID][]int64)
	)
	cluster, err := gcs.NewCluster(3, gcs.WithDeliver(func(self gcs.ID, d gcs.Delivery) {
		inc, ok := d.Body.(Inc)
		if !ok {
			return
		}
		idx := int(self[1] - '0')
		counters[idx].Add(inc.By)
		mu.Lock()
		orders[self] = append(orders[self], inc.By)
		mu.Unlock()
	}))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	// Every node increments concurrently.
	var wg sync.WaitGroup
	for i, node := range cluster.Nodes {
		wg.Add(1)
		go func(i int, node *gcs.Node) {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				if err := node.Abcast(Inc{By: int64(i + 1)}); err != nil {
					log.Printf("broadcast: %v", err)
				}
			}
		}(i, node)
	}
	wg.Wait()

	waitUntil(func() bool {
		want := int64(5 * (1 + 2 + 3))
		return counters[0].Load() == want && counters[1].Load() == want && counters[2].Load() == want
	})
	fmt.Printf("all replicas converged: %d %d %d\n",
		counters[0].Load(), counters[1].Load(), counters[2].Load())

	// Crash one node; the group keeps making progress without any view
	// change (suspicion is not exclusion).
	cluster.Net.Crash("p2")
	for k := 0; k < 5; k++ {
		if err := cluster.Nodes[0].Abcast(Inc{By: 10}); err != nil {
			log.Fatal(err)
		}
	}
	waitUntil(func() bool { return counters[0].Load() == 30+50 && counters[1].Load() == 30+50 })
	fmt.Printf("after crashing p2, survivors still agree: p0=%d p1=%d (view unchanged: %v)\n",
		counters[0].Load(), counters[1].Load(), cluster.Nodes[0].View())

	// And the delivery order was identical everywhere.
	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("p0 delivery order: %v\n", orders["p0"])
	fmt.Printf("p1 delivery order: %v\n", orders["p1"])
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("timed out waiting for convergence")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
