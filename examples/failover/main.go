// Failover: the Figure 8 scenario, live.
//
// Three replicas (s1 s2 s3) run a passively-replicated register. s1 is the
// primary. We crash s1 while traffic is flowing; s2's failure detector
// suspects it and g-broadcasts primary-change(s1). Because primary-change
// conflicts with updates (the Section 3.2.3 conflict table), every replica
// agrees on which updates happened before the change — with no view
// synchrony layer anywhere, and without excluding s1 from the replica list.
//
// Run with: go run ./examples/failover
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/transport"
)

// register is the passive state machine: a single versioned value.
type register struct {
	mu sync.Mutex
	v  string
}

func (r *register) Execute(op []byte) (result, update []byte) {
	return []byte("ok:" + string(op)), op
}

func (r *register) ApplyUpdate(update []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = string(update)
}

func (r *register) value() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

func main() {
	network := transport.NewNetwork(transport.WithDelay(0, 2*time.Millisecond))
	replicas := proc.IDs("s1", "s2", "s3")

	regs := make([]*register, len(replicas))
	reps := make([]*replication.Passive, len(replicas))
	nodes := make([]*core.Node, len(replicas))
	for i, id := range replicas {
		regs[i] = &register{}
		reps[i] = replication.NewPassive(regs[i], replicas)
		node, err := core.NewNode(network.Endpoint(id), core.Config{
			Self:     id,
			Universe: replicas,
			Relation: replication.PassiveRelation(),
		}, reps[i].DeliverFunc())
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = node
		reps[i].Bind(node)
	}
	for _, n := range nodes {
		n.Start()
	}
	for _, r := range reps {
		r.StartFailover(60 * time.Millisecond)
	}
	defer func() {
		for _, r := range reps {
			r.StopFailover()
		}
		for _, n := range nodes {
			n.Stop()
		}
		network.Shutdown()
	}()

	// Normal operation at the primary.
	res, err := reps[0].Request([]byte("v1"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary %s served request: %s\n", reps[0].Primary(), res)

	// Crash the primary.
	fmt.Println("crashing s1 ...")
	network.Crash("s1")
	start := time.Now()

	// The client retries at the next replica until the failover completes.
	for {
		if _, err := reps[1].Request([]byte("v2")); err == nil {
			break
		} else if !errors.Is(err, replication.ErrNotPrimary) && !errors.Is(err, replication.ErrDemoted) {
			log.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("failover complete in %v: new primary is %s\n",
		time.Since(start).Round(time.Millisecond), reps[1].Primary())

	// The old primary is still in the replica list (Figure 8: a primary
	// change does not exclude).
	fmt.Printf("replica list at s2: %v (s1 demoted, not excluded)\n", reps[1].Replicas())

	// Both surviving backups converged.
	deadline := time.Now().Add(10 * time.Second)
	for regs[2].value() != "v2" {
		if time.Now().After(deadline) {
			log.Fatalf("s3 did not converge: %q", regs[2].value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("state at s2=%q s3=%q\n", regs[1].value(), regs[2].value())
}
