// Bank: the Section 4.2 scenario — a replicated bank account service where
// deposits commute and withdrawals do not.
//
// With generic broadcast, deposits use the fast class (reliable broadcast +
// one ack round; atomic broadcast is never invoked for them), while
// withdrawals are totally ordered against everything so the "no overdraft"
// rule is decided identically at every replica. The example prints the
// thriftiness counters so you can see that a deposit-heavy workload barely
// touches the consensus layer.
//
// Run with: go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/transport"
)

func main() {
	network := transport.NewNetwork(transport.WithDelay(0, 2*time.Millisecond))
	replicas := proc.IDs("s1", "s2", "s3")

	banks := make([]*replication.Bank, len(replicas))
	nodes := make([]*core.Node, len(replicas))
	for i, id := range replicas {
		banks[i] = replication.NewBank()
		node, err := core.NewNode(network.Endpoint(id), core.Config{
			Self:     id,
			Universe: replicas,
			Relation: replication.BankRelation(), // deposits fast, withdrawals ordered
		}, banks[i].DeliverFunc())
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = node
		banks[i].Bind(node)
	}
	for _, n := range nodes {
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
		network.Shutdown()
	}()

	// A burst of commutative deposits from every replica...
	for _, b := range banks {
		for i := 0; i < 10; i++ {
			if err := b.Deposit("alice", 10); err != nil {
				log.Fatal(err)
			}
		}
	}
	// ...then a couple of withdrawals, which must be ordered: only one of
	// these can succeed on a balance of 300 if they both ask for 200.
	_ = banks[0].Withdraw("alice", 200)
	_ = banks[1].Withdraw("alice", 200)

	waitUntil(func() bool {
		for _, b := range banks {
			applied, rejected := b.Applied()
			if applied+rejected != 32 {
				return false
			}
		}
		return true
	})

	for i, b := range banks {
		applied, rejected := b.Applied()
		fmt.Printf("replica s%d: balance(alice)=%d applied=%d rejected=%d\n",
			i+1, b.Balance("alice"), applied, rejected)
	}
	st := nodes[0].BroadcastStats()
	fmt.Printf("thriftiness: %d fast deliveries, %d ordered, %d epoch boundaries\n",
		st.FastDelivered, st.OrderedDelivered, st.Boundaries)
	fmt.Println("(30 deposits never touched atomic broadcast; only the 2 withdrawals did)")
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("timed out waiting for convergence")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
