// KV store: active replication (the state machine approach, Section 3.2.2).
//
// Three replicas run a key-value store; every command is atomically
// broadcast and applied by all replicas in the same order, so any replica
// answers reads identically once the write has been delivered. Submit
// blocks until the local replica has applied the command, which gives the
// writer read-your-writes at its own replica.
//
// Run with: go run ./examples/kvstore
package main

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/transport"
)

// kvCmd is the replicated command.
type kvCmd struct {
	Op    string // "put" or "del"
	Key   string
	Value string
}

// kvStore is a deterministic state machine.
type kvStore struct {
	mu   sync.Mutex
	data map[string]string
}

func newKVStore() *kvStore {
	return &kvStore{data: make(map[string]string)}
}

func (s *kvStore) Apply(cmd []byte) []byte {
	var c kvCmd
	if err := gob.NewDecoder(bytes.NewReader(cmd)).Decode(&c); err != nil {
		return []byte("err:" + err.Error())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch c.Op {
	case "put":
		s.data[c.Key] = c.Value
		return []byte("ok")
	case "del":
		delete(s.data, c.Key)
		return []byte("ok")
	default:
		return []byte("err:unknown op")
	}
}

func (s *kvStore) Get(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[key]
	return v, ok
}

func encode(c kvCmd) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func main() {
	network := transport.NewNetwork(transport.WithDelay(0, 2*time.Millisecond))
	members := proc.IDs("kv1", "kv2", "kv3")

	stores := make([]*kvStore, len(members))
	replicas := make([]*replication.Active, len(members))
	nodes := make([]*core.Node, len(members))
	for i, id := range members {
		stores[i] = newKVStore()
		replicas[i] = replication.NewActive(stores[i])
		node, err := core.NewNode(network.Endpoint(id), core.Config{
			Self:     id,
			Universe: members,
		}, replicas[i].DeliverFunc())
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = node
		replicas[i].Bind(node)
	}
	for _, n := range nodes {
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
		network.Shutdown()
	}()

	// Writes through different replicas; each Submit returns once applied
	// locally.
	if _, err := replicas[0].Submit(encode(kvCmd{Op: "put", Key: "lang", Value: "go"})); err != nil {
		log.Fatal(err)
	}
	if _, err := replicas[1].Submit(encode(kvCmd{Op: "put", Key: "paper", Value: "middleware03"})); err != nil {
		log.Fatal(err)
	}
	if _, err := replicas[2].Submit(encode(kvCmd{Op: "del", Key: "nothing"})); err != nil {
		log.Fatal(err)
	}

	// Wait for full convergence, then read from every replica.
	deadline := time.Now().Add(15 * time.Second)
	for {
		converged := true
		for _, r := range replicas {
			if r.Applied() != 3 {
				converged = false
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("replicas did not converge")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, s := range stores {
		lang, _ := s.Get("lang")
		paper, _ := s.Get("paper")
		fmt.Printf("replica kv%d: lang=%q paper=%q\n", i+1, lang, paper)
	}

	// One replica crashes; the survivors keep accepting writes.
	network.Crash("kv3")
	if _, err := replicas[0].Submit(encode(kvCmd{Op: "put", Key: "fault", Value: "tolerated"})); err != nil {
		log.Fatal(err)
	}
	v, _ := stores[0].Get("fault")
	fmt.Printf("after crashing kv3: fault=%q (no membership change needed: %v)\n",
		v, nodes[0].View())
}
