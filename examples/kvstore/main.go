// KV store served to NETWORKED clients through the service gateway.
//
// Three replicas run a passively replicated key-value store (Section 3.2.3 /
// Figure 8) over real TCP: the group members talk to each other over a TCP
// mesh, every node embeds a service gateway on its own TCP port, and the
// client — which is NOT a member of the group — dials the gateways over
// loopback TCP exactly as a remote client would.
//
// The demo writes through the client, reads back, then hard-kills the
// primary (group transport and gateway both): the client's session survives
// the failover, retried writes are deduplicated by the replicated session
// table, and every acknowledged operation is applied exactly once.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	gcs "repro"
	"repro/internal/kvdemo"
)

// reservePorts grabs n free loopback TCP addresses (listen then close; the
// tiny race is acceptable for a demo).
func reservePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = l.Addr().String()
		_ = l.Close()
	}
	return addrs, nil
}

func main() {
	members := []gcs.ID{"kv1", "kv2", "kv3"}
	groupAddrs, err := reservePorts(len(members))
	if err != nil {
		log.Fatal(err)
	}
	peers := make(map[gcs.ID]string)
	for i, id := range members {
		peers[id] = groupAddrs[i]
	}

	stores := make([]*kvdemo.Store, len(members))
	replicas := make([]*gcs.PassiveReplica, len(members))
	nodes := make([]*gcs.Node, len(members))
	gateways := make([]*gcs.ServiceGateway, len(members))
	svcAddrs := make(map[gcs.ID]string)
	listeners := make([]gcs.StreamListener, len(members))

	for i, id := range members {
		stores[i] = kvdemo.New()
		replicas[i] = gcs.NewPassiveReplica(stores[i], members)
		tr, err := gcs.NewTCPTransport(id, peers[id], peers)
		if err != nil {
			log.Fatal(err)
		}
		node, err := gcs.NewNode(tr, gcs.Config{
			Self:     id,
			Universe: members,
			Relation: gcs.PassiveRelation(),
			// TCP between in-process nodes: mildly relaxed timing.
			RTO:              50 * time.Millisecond,
			HeartbeatEvery:   20 * time.Millisecond,
			SuspicionTimeout: 200 * time.Millisecond,
			ExclusionTimeout: time.Hour, // demo: no exclusions
		}, replicas[i].DeliverFunc())
		if err != nil {
			log.Fatal(err)
		}
		replicas[i].Bind(node)
		nodes[i] = node

		l, err := gcs.ListenServiceTCP("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners[i] = l
		svcAddrs[id] = l.Addr()
	}
	for _, n := range nodes {
		n.Start()
	}
	for i, id := range members {
		gateways[i] = gcs.Serve(gcs.ServiceGatewayConfig{
			Self:    id,
			Replica: replicas[i],
			Read:    stores[i].Read,
			Addrs:   svcAddrs,
		}, listeners[i])
		replicas[i].StartFailover(300 * time.Millisecond)
	}
	defer func() {
		for i := range members {
			replicas[i].StopFailover()
			gateways[i].Close()
			nodes[i].Stop()
		}
	}()

	// A networked client, outside the group, over loopback TCP.
	client, err := gcs.Dial(gcs.ServiceClientConfig{
		Addrs: []string{svcAddrs["kv1"], svcAddrs["kv2"], svcAddrs["kv3"]},
		Dial:  gcs.DialServiceTCP,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	must := func(op string) string {
		res, err := client.Call([]byte(op))
		if err != nil {
			log.Fatalf("%s: %v", op, err)
		}
		return string(res)
	}

	fmt.Printf("put lang go      -> %s\n", must("put lang go"))
	fmt.Printf("put paper mw03   -> %s\n", must("put paper middleware03"))
	fmt.Printf("del nothing      -> %s\n", must("del nothing"))
	if v, err := client.Read([]byte("get lang")); err == nil {
		fmt.Printf("get lang         -> %q (served by the gateway, no broadcast)\n", v)
	}

	// Hard-kill the primary's process: group transport AND gateway die.
	fmt.Println("-- killing primary kv1 --")
	gateways[0].Close()
	nodes[0].Stop()

	fmt.Printf("put fault tolerated -> %s (same session, new primary)\n", must("put fault tolerated"))
	if v, err := client.Read([]byte("get fault")); err == nil {
		fmt.Printf("get fault        -> %q via %s\n", v, client.Primary())
	}

	// Survivors converge on every write exactly once.
	deadline := time.Now().Add(15 * time.Second)
	for stores[2].Applied() != 4 {
		if time.Now().After(deadline) {
			log.Fatalf("backup kv3 applied %d of 4 writes", stores[2].Applied())
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, id := range []int{1, 2} {
		fmt.Printf("replica kv%d: lang=%q fault=%q applied=%d\n",
			id+1, stores[id].Get("lang"), stores[id].Get("fault"), stores[id].Applied())
	}
}
