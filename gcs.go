package gcs

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/gbcast"
	"repro/internal/membership"
	"repro/internal/monitoring"
	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/replication"
	"repro/internal/service"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Type aliases re-exporting the stack's vocabulary so that users of the
// library can name every type that appears in its API.
type (
	// ID identifies a process.
	ID = proc.ID
	// View is an ordered member list; the head is the primary.
	View = proc.View
	// Delivery is a message delivered by the stack.
	Delivery = gbcast.Delivery
	// DeliverFunc consumes deliveries.
	DeliverFunc = core.DeliverFunc
	// Relation is a conflict relation over message classes.
	Relation = gbcast.Relation
	// RelationBuilder declares classes and conflicts.
	RelationBuilder = gbcast.RelationBuilder
	// Config parameterises a node.
	Config = core.Config
	// Node is one process's protocol stack.
	Node = core.Node
	// Network is the in-memory simulated network with fault injection.
	Network = transport.Network
	// NetOption configures the simulated network.
	NetOption = transport.NetOption
	// Transport is the unreliable transport abstraction.
	Transport = transport.Transport
	// FaultTransport wraps any Transport with seeded, per-destination
	// directed fault injection — drops, one-way blackholes, delay/jitter,
	// duplication, reordering — plus scripted schedules (RunSchedule) for
	// flapping partitions. Idle (no rules) it passes through at one atomic
	// load per send.
	FaultTransport = transport.FaultTransport
	// FaultRule is one directed link's fault profile.
	FaultRule = transport.FaultRule
	// FaultStats counts a FaultTransport's interventions.
	FaultStats = transport.FaultStats
	// FaultStep is one step of a scripted fault schedule.
	FaultStep = transport.FaultStep
	// MonitoringPolicy configures exclusion decisions.
	MonitoringPolicy = monitoring.Policy
	// BroadcastStats counts fast/ordered deliveries and epoch boundaries.
	BroadcastStats = gbcast.Stats
	// Snapshotter provides state transfer for joiners.
	Snapshotter = membership.Snapshotter

	// PassiveReplica is one replica of a passively replicated service
	// (Section 3.2.3 / Figure 8).
	PassiveReplica = replication.Passive
	// PassiveStateMachine is the application behind passive replication.
	PassiveStateMachine = replication.PassiveStateMachine
	// BatchConfig tunes the primary's group-commit batcher
	// (PassiveReplica.EnableBatching): concurrent writes coalesce into one
	// g-broadcast per commit window.
	BatchConfig = replication.BatchConfig
	// BatchStats is the batcher's accounting.
	BatchStats = replication.BatchStats
	// BarrierStats is the linearizable read barrier's accounting
	// (PassiveReplica.ReadBarrierStats): broadcasts vs reads shows how many
	// concurrent linearizable reads coalesced into one ordered no-op.
	BarrierStats = replication.BarrierStats
	// LeaseStats is the replicated session lease's accounting
	// (PassiveReplica.LeaseStats).
	LeaseStats = replication.LeaseStats
	// LeaderLeaseConfig tunes the leadership lease
	// (PassiveReplica.EnableLeaderLease): a primary holding a live,
	// ordered-granted lease serves linearizable reads locally with no
	// per-read barrier broadcast. TTL+Margin must stay at or below the
	// failover suspicion timeout.
	LeaderLeaseConfig = replication.LeaderLeaseConfig
	// LeaderLeaseStats is the leadership lease's accounting
	// (PassiveReplica.LeaderLeaseStats): lease-path reads vs barrier
	// fallbacks shows how much of the linearizable read load escaped the
	// ordered path.
	LeaderLeaseStats = replication.LeaderLeaseStats
	// ReplicaWatchdogConfig tunes the quorum-progress watchdog
	// (PassiveReplica.StartWatchdog): a primary whose ordered sequence
	// stalls for StallTimeout with work pending fails new writes fast with
	// ErrReplicaDegraded instead of queueing them until their timeouts, and
	// re-admits automatically on the first post-heal delivery.
	ReplicaWatchdogConfig = replication.WatchdogConfig
	// ReadLevel selects the consistency of ServiceClient reads: ReadLocal,
	// ReadMonotonic (the default), ReadLinearizable or ReadBoundedStaleness.
	ReadLevel = service.ReadLevel
	// ServiceGateway accepts networked client sessions at one node.
	ServiceGateway = service.Gateway
	// ServiceGatewayConfig parameterises a gateway.
	ServiceGatewayConfig = service.GatewayConfig
	// ServiceShard is one replicated group behind a sharded gateway
	// (ServiceGatewayConfig.Shards): the node's replica of that group plus
	// its read function.
	ServiceShard = service.Shard
	// ServiceClient is the networked client of the replicated service.
	ServiceClient = service.Client
	// ServiceClientConfig parameterises a client.
	ServiceClientConfig = service.ClientConfig
	// ServiceClientStats is a client's recovery accounting: dial attempts,
	// handshake failures, primary redirects chased and TIMEOUT/UNAVAILABLE
	// answers retried (ServiceClient.Stats / ShardedServiceClient.Stats).
	ServiceClientStats = service.ClientStats
	// ShardedServiceClient routes every operation to its key's shard —
	// the client of deployments running several replicated groups.
	ShardedServiceClient = service.ShardedClient
	// ShardedServiceClientConfig parameterises a sharded client.
	ShardedServiceClientConfig = service.ShardedClientConfig
	// ServiceDialer opens stream connections to gateway addresses.
	ServiceDialer = service.Dialer
	// GroupMux multiplexes several replicated groups' protocol stacks over
	// one physical transport endpoint (frames tagged with a group ID), so S
	// shards do not cost S×N connections.
	GroupMux = transport.GroupMux
	// StreamListener accepts client sessions (TCP or memnet).
	StreamListener = transport.StreamListener
	// StreamConn is one framed client connection.
	StreamConn = transport.StreamConn

	// ReplicaSnapshotter supplies/restores the application state machine's
	// state for replica snapshots (crash recovery & mid-life join).
	ReplicaSnapshotter = replication.Snapshotter
	// ServiceReplica is the replica handle a gateway drives — satisfied by
	// both full passive replicas and catch-up followers, so a gateway's
	// shard can be re-pointed at a rebuilt replica (ReplaceShard).
	ServiceReplica = service.Replica

	// StorageEngine is the pluggable durability layer under a replica: an
	// ordered WAL plus an atomic snapshot slot, keyed by commit index.
	// Attach one with PassiveReplica.SetStorage (ReplicaStorageConfig) and
	// every counted delivery is logged — and fsynced once per commit window
	// — before its acknowledgement can leave the node.
	StorageEngine = storage.Engine
	// FileStorage is the file-backed engine: segmented CRC-framed WAL with
	// torn-tail recovery, snapshot-to-disk, segment truncation after
	// snapshots. It survives whole-cluster power loss.
	FileStorage = storage.File
	// MemoryStorage is the in-process engine — the zero-durability default
	// semantics, useful for tests of the storage boundary itself.
	MemoryStorage = storage.Memory
	// FileStorageConfig tunes the file engine (segment size, write buffer).
	FileStorageConfig = storage.Config
	// StorageEngineStats is one engine's accounting (WAL bytes, segments,
	// fsyncs, torn tails cut at open).
	StorageEngineStats = storage.Stats
	// ReplicaStorageConfig attaches an engine to a replica
	// (PassiveReplica.SetStorage): the engine plus the WAL growth bound
	// that triggers background snapshot compaction.
	ReplicaStorageConfig = replication.StorageConfig
	// StorageStats is a replica's view of its durable layer: engine
	// accounting plus what the last ReplayStorage rebuilt
	// (PassiveReplica.StorageStats).
	StorageStats = replication.StorageStats
	// StorageReplayStats reports what a restart replayed from local disk
	// (PassiveReplica.ReplayStorage).
	StorageReplayStats = replication.ReplayStats
	// ReplicaRecovery aligns a durable group restarting from disk: each
	// member replays locally, then pulls only the missing delta from the
	// peers before serving (NewReplicaRecovery).
	ReplicaRecovery = replication.Recovery
	// ReplicaRecoveryStats is the recovery phase's accounting.
	ReplicaRecoveryStats = replication.RecoveryStats

	// MetricsRegistry is the node-wide telemetry registry: counters, gauges
	// and latency histograms, exported in Prometheus text format.
	MetricsRegistry = telemetry.Registry
	// MetricsScope is a registry view with bound labels (node=, shard=).
	MetricsScope = telemetry.Scope
	// MetricsLabel is one label dimension of a metric series.
	MetricsLabel = telemetry.Label
	// LatencyHistogram is the fixed-bucket latency histogram (p50/p99/p999
	// without per-sample allocation).
	LatencyHistogram = telemetry.Histogram
	// OpTracer samples per-request traces across the gateway and
	// replication layers and captures slow ops.
	OpTracer = telemetry.Tracer
	// OpTracerConfig parameterises an OpTracer.
	OpTracerConfig = telemetry.TracerConfig
	// AdminConfig parameterises the admin/debug HTTP handler
	// (/metrics, /healthz, /debug/traces, /debug/pprof).
	AdminConfig = telemetry.AdminConfig
	// AdminHealthCheck is one named /healthz probe.
	AdminHealthCheck = telemetry.HealthCheck
)

// NewMetricsRegistry creates a telemetry registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// Label constructs a metric label (e.g. Label("shard", "2")).
func Label(key, value string) MetricsLabel { return telemetry.L(key, value) }

// NewOpTracer creates an op tracer.
func NewOpTracer(cfg OpTracerConfig) *OpTracer { return telemetry.NewTracer(cfg) }

// NewAdminHandler builds the admin/debug HTTP handler over a registry,
// tracer and health checks.
func NewAdminHandler(cfg AdminConfig) http.Handler { return telemetry.NewAdminHandler(cfg) }

// RegisterTransportMetrics exports a transport's accounting under scope.
// TCP endpoints and the simulated Network are instrumented (frames/bytes
// in and out, write-queue depth, frame-pool hit rate); other transports
// are a no-op.
func RegisterTransportMetrics(tr Transport, s *MetricsScope) {
	type registrar interface{ RegisterMetrics(*telemetry.Scope) }
	if r, ok := tr.(registrar); ok {
		r.RegisterMetrics(s)
	}
}

// ErrServiceUnavailable is the typed error a service client returns when an
// operation exhausts its OpTimeout without any gateway serving it (e.g. the
// entire primary set briefly unreachable): errors.Is(err,
// ErrServiceUnavailable) distinguishes "retry later" from terminal errors.
var ErrServiceUnavailable = service.ErrUnavailable

// ErrReplicaDegraded is the typed error a quorumless primary answers new
// writes and barriers with while its quorum-progress watchdog has tripped
// (PassiveReplica.StartWatchdog): retryable — try another replica or wait
// for heal; the service layer maps it to a DEGRADED answer.
var ErrReplicaDegraded = replication.ErrDegraded

// NewFaultTransport wraps tr with deterministic (seeded) fault injection;
// see FaultTransport. The wrapper owns tr: Close closes it.
func NewFaultTransport(tr Transport, seed int64) *FaultTransport {
	return transport.NewFaultTransport(tr, seed)
}

// Read consistency levels of the service client (see service.ReadLevel).
const (
	// ReadDefault selects the client's configured default (ReadMonotonic).
	ReadDefault = service.ReadDefault
	// ReadLocal serves from the contacted gateway's local state (may be
	// stale at a lagging or partitioned gateway).
	ReadLocal = service.ReadLocal
	// ReadMonotonic never travels backwards in time for the session: any
	// gateway answers only once its replica has reached the session's
	// last-seen commit index.
	ReadMonotonic = service.ReadMonotonic
	// ReadLinearizable reflects every write acknowledged before the read
	// began, via an ordered no-op barrier at the primary — or, with the
	// leadership lease enabled, from the lease holder's local state with no
	// broadcast at all.
	ReadLinearizable = service.ReadLinearizable
	// ReadBoundedStaleness serves from any replica whose applied state is
	// within the per-call bound of the primary's commit timestamps
	// (ServiceClient.ReadAtMost); outside the bound the read is retried
	// rather than silently served stale.
	ReadBoundedStaleness = service.ReadBoundedStaleness
)

// Default class names of the standard relation (Section 3.3 of the paper).
const (
	// ClassRbcast is the fast class: not ordered against itself.
	ClassRbcast = gbcast.ClassRbcast
	// ClassAbcast is the ordered class: ordered against everything.
	ClassAbcast = gbcast.ClassAbcast
)

// RegisterType registers a concrete message type with the wire codec. Call
// it once per application message type before broadcasting values of that
// type (typically from a package-level registration helper).
func RegisterType(v any) {
	msg.Register(v)
}

// NewRelationBuilder starts the declaration of a custom conflict relation.
func NewRelationBuilder() *RelationBuilder {
	return gbcast.NewRelationBuilder()
}

// DefaultRelation returns the paper's standard relation: fast "rbcast"
// conflicting with ordered "abcast".
func DefaultRelation() *Relation {
	return gbcast.DefaultRelation()
}

// NewNetwork creates an in-memory simulated network.
func NewNetwork(opts ...NetOption) *Network {
	return transport.NewNetwork(opts...)
}

// Simulated network options.
var (
	// WithDelay sets the one-way latency range of the simulated network.
	WithDelay = transport.WithDelay
	// WithLoss sets the packet loss probability.
	WithLoss = transport.WithLoss
	// WithSeed makes loss and jitter reproducible.
	WithSeed = transport.WithSeed
)

// NewNode builds a node of the new-architecture stack over an arbitrary
// transport endpoint.
func NewNode(tr Transport, cfg Config, deliver DeliverFunc) (*Node, error) {
	return core.NewNode(tr, cfg, deliver)
}

// NewTCPTransport creates a TCP transport endpoint for multi-process
// deployments; peers maps every process ID to its listen address.
func NewTCPTransport(self ID, listenAddr string, peers map[ID]string) (Transport, error) {
	return transport.NewTCP(self, listenAddr, peers)
}

// NewPassiveReplica creates a replica of a passively replicated service;
// replicas is the initial replica list (identical everywhere), its head the
// initial primary. Wire the replica's DeliverFunc into NewNode (with the
// PassiveRelation) and Bind it to the started node.
func NewPassiveReplica(sm PassiveStateMachine, replicas []ID) *PassiveReplica {
	return replication.NewPassive(sm, replicas)
}

// PassiveRelation returns the Section 3.2.3 conflict table used by passive
// replication (updates fast, primary changes ordered).
func PassiveRelation() *Relation {
	return replication.PassiveRelation()
}

// ServeReplicaSync registers the donor side of the replica state-transfer
// protocol on a node: followers (NewFollowerNode, gcsnode -join) pull
// snapshots and the delivered-command log from it, and a follower's HELLO
// triggers the ordered membership join (whose state transfer ships the
// replica snapshot captured at the join's position in the total order).
// Call BETWEEN NewNode and Start — like every endpoint handler. Every full
// replica of a deployment should serve sync so followers can fail over
// between donors.
func ServeReplicaSync(node *Node, rep *PassiveReplica) {
	replication.ServeSync(node.Endpoint(), rep, replication.SyncConfig{Join: node.Join})
}

// OpenFileStorage creates or recovers the file-backed storage engine in
// dir (one directory per replica per shard). Open-time recovery drops
// stray temp files, picks the newest intact snapshot and cuts the WAL at
// the first invalid frame — the torn tail of a write that lost power
// mid-flight.
func OpenFileStorage(dir string, cfg FileStorageConfig) (*FileStorage, error) {
	return storage.Open(dir, cfg)
}

// NewMemoryStorage creates an in-process storage engine.
func NewMemoryStorage() *MemoryStorage { return storage.NewMemory() }

// NewReplicaRecovery prepares a durable member's restart-from-disk path
// and registers the donor side of the sync protocol (it REPLACES
// ServeReplicaSync for members with storage attached — donors and
// recoverers share the handler). Call between NewNode and Start, after
// SetStorage + ReplayStorage; then, once the node is started, Run aligns
// this member with its peers — pulling only the delta its disk missed —
// before the deployment starts serving clients.
func NewReplicaRecovery(node *Node, rep *PassiveReplica, peers []ID) *ReplicaRecovery {
	return replication.NewRecovery(node.Endpoint(), rep, peers, replication.SyncConfig{Join: node.Join})
}

// FollowerConfig parameterises NewFollowerNode.
type FollowerConfig struct {
	// Self is the follower's process identity (a spare ID, or a wiped
	// member's old ID).
	Self ID
	// Donors are the full replicas to pull from.
	Donors []ID
	// Incarnation must strictly increase across restarts of the same ID
	// that lost their state (reliable-channel incarnation handshake).
	Incarnation uint64
	// Snapshot/Restore are the application state hooks.
	Snapshot func() []byte
	Restore  func([]byte)
	// RTO is the reliable channel retransmission timeout (default 25ms).
	RTO time.Duration
	// PullInterval is the catch-up cadence — the follower's staleness bound
	// (default 5ms). PullTimeout bounds one pull before rotating donors
	// (default 250ms).
	PullInterval time.Duration
	PullTimeout  time.Duration
	// Storage optionally makes the follower durable: every delivery is
	// logged to the engine, and a restart replays its own disk first, then
	// pulls only the delta it missed from the donors (a primed syncer — no
	// snapshot transfer, no announce). The follower owns the engine; Stop
	// seals it with a final sync + snapshot.
	Storage StorageEngine
	// StorageCompactBytes bounds WAL growth before a background snapshot
	// compacts it (0 = default 8 MiB, negative disables compaction).
	StorageCompactBytes int64
}

// Follower is a running catch-up replica over one transport endpoint: it
// installs a snapshot from the group (via the membership join path or the
// pull protocol), then follows the delivered-command log forever. Its
// Replica serves reads at full backup parity (Monotonic locally,
// Linearizable via a read-index barrier at the primary) and answers writes
// with redirects — hand it to a service gateway as a Shard handle.
type Follower struct {
	// Replica is the follower's replica handle (for gateways and reads).
	Replica *PassiveReplica
	// Replayed reports what the follower rebuilt from local disk at
	// construction (zero value when FollowerConfig.Storage was nil).
	Replayed StorageReplayStats
	ep       *rchannel.Endpoint
	syncer   *replication.Syncer
}

// noGB is the membership broadcaster stub of a follower (receive-only).
type noGB struct{}

func (noGB) Broadcast(string, any) error {
	return fmt.Errorf("gcs: a follower is not a group member")
}

// NewFollowerNode assembles and starts a catch-up replica over tr — the
// recovery/join path of a deployment: a crashed member that lost its state
// (or a brand-new read replica) rejoins the running group without replaying
// history, via snapshot state transfer plus the catch-up cursor. With
// cfg.Storage the follower is durable: it replays its own disk before
// pulling, and a restart costs only the delta it missed. The follower owns
// tr (and the engine); Stop releases both.
func NewFollowerNode(tr Transport, sm PassiveStateMachine, cfg FollowerConfig) (*Follower, error) {
	rep := replication.NewFollower(sm, cfg.Self)
	rep.SetSnapshotter(replication.Snapshotter{Snapshot: cfg.Snapshot, Restore: cfg.Restore})
	var replayed replication.ReplayStats
	primed := false
	if cfg.Storage != nil {
		rep.SetStorage(replication.StorageConfig{Engine: cfg.Storage, CompactBytes: cfg.StorageCompactBytes})
		rs, err := rep.ReplayStorage()
		if err != nil {
			return nil, fmt.Errorf("gcs: follower storage replay: %w", err)
		}
		replayed = rs
		primed = rs.SnapshotIndex > 0 || rs.Records > 0
	}
	var opts []rchannel.Option
	if cfg.RTO > 0 {
		opts = append(opts, rchannel.WithRTO(cfg.RTO))
	}
	if cfg.Incarnation > 0 {
		opts = append(opts, rchannel.WithIncarnation(cfg.Incarnation))
	}
	ep := rchannel.New(tr, opts...)
	syncer := replication.NewSyncer(rep, ep, replication.SyncerConfig{
		Donors:   cfg.Donors,
		Interval: cfg.PullInterval,
		Timeout:  cfg.PullTimeout,
		// A primed follower already stands at a real index: it asks donors
		// for the delta after it instead of announcing for a full snapshot.
		Announce: !primed,
		Primed:   primed,
	})
	// Receiver half of the membership join path: the donor's HELLO handler
	// requests the ordered join, and the membership primary ships the
	// snapshot here.
	membership.New(noGB{}, ep, proc.NewView(cfg.Self), membership.Snapshotter{
		Restore: func(b []byte) { _ = rep.InstallSnapshot(b) },
	})
	ep.Start()
	syncer.Start()
	return &Follower{Replica: rep, Replayed: replayed, ep: ep, syncer: syncer}, nil
}

// Installed is closed once the follower has caught up to a donor for the
// first time — from then on it serves reads at full backup parity.
func (f *Follower) Installed() <-chan struct{} { return f.syncer.Installed() }

// RegisterMetrics exports the follower's accounting under scope: its
// reliable channel, its replica (commit index, snapshot installs) and its
// catch-up syncer (pulls, failures, entries applied).
func (f *Follower) RegisterMetrics(s *MetricsScope) {
	if s == nil {
		return
	}
	f.ep.RegisterMetrics(s)
	f.Replica.RegisterMetrics(s)
	f.syncer.RegisterMetrics(s)
}

// Stop halts the follower, releases its transport and — when durable —
// seals the engine with a final WAL sync and snapshot, so the next start
// replays from disk without needing a donor for the history it already
// executed. The storage error (nil without storage) is returned.
func (f *Follower) Stop() error {
	f.syncer.Stop()
	f.ep.Stop()
	return f.Replica.CloseStorage()
}

// Serve embeds a service gateway in a node: it accepts networked client
// sessions from l (see ListenServiceTCP and Network.ListenStream) and routes
// their writes through cfg.Replica with exactly-once semantics. Close the
// returned gateway to stop serving; it owns l.
func Serve(cfg ServiceGatewayConfig, l StreamListener) *ServiceGateway {
	gw := service.NewGateway(cfg)
	gw.Serve(l)
	return gw
}

// Dial creates a networked client for the service gateways at
// cfg.Addrs. The client discovers the primary, pipelines requests, retries
// across failover, and guarantees acknowledged writes executed exactly once.
func Dial(cfg ServiceClientConfig) (*ServiceClient, error) {
	return service.NewClient(cfg)
}

// DialSharded creates a networked client for gateways serving cfg.Shards
// parallel replicated groups: every operation is routed to its key's shard
// (cfg.ShardKey extracts the key; nil uses the whole op), with per-shard
// exactly-once writes and per-shard read consistency.
func DialSharded(cfg ShardedServiceClientConfig) (*ShardedServiceClient, error) {
	return service.NewShardedClient(cfg)
}

// ShardOf is the deployment-wide shard map: the shard in [0, shards) that
// owns key. Every client and every node compute it identically.
func ShardOf(key []byte, shards int) int {
	return service.ShardOf(key, shards)
}

// NewGroupMux fans one transport endpoint out to n logical group
// transports (group IDs 0..n-1) — one per shard of a sharded deployment.
// The mux owns tr; build one node stack per group over Group(i).
func NewGroupMux(tr Transport, n int) *GroupMux {
	return transport.NewGroupMux(tr, n)
}

// ListenServiceTCP opens a TCP listener for client sessions (":0" picks a
// free port, reported by Addr).
func ListenServiceTCP(addr string) (StreamListener, error) {
	return transport.ListenStreamTCP(addr)
}

// DialServiceTCP is the ServiceDialer for TCP deployments.
func DialServiceTCP(addr string) (StreamConn, error) {
	return transport.DialStreamTCP(addr)
}

// Cluster is an in-process group of nodes over a simulated network — the
// quickest way to use the library and the harness for all experiments.
type Cluster struct {
	Net   *Network
	Nodes []*Node
	ids   []ID
}

// ClusterOption configures NewCluster.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	netOpts  []NetOption
	deliver  func(self ID, d Delivery)
	tweak    func(*Config)
	relation *Relation
}

// WithNetOptions forwards options to the simulated network.
func WithNetOptions(opts ...NetOption) ClusterOption {
	return func(c *clusterConfig) { c.netOpts = append(c.netOpts, opts...) }
}

// WithDeliver sets the delivery callback invoked at every node.
func WithDeliver(fn func(self ID, d Delivery)) ClusterOption {
	return func(c *clusterConfig) { c.deliver = fn }
}

// WithRelation sets the conflict relation used by every node.
func WithRelation(r *Relation) ClusterOption {
	return func(c *clusterConfig) { c.relation = r }
}

// WithConfig applies an arbitrary tweak to every node's Config.
func WithConfig(fn func(*Config)) ClusterOption {
	return func(c *clusterConfig) { c.tweak = fn }
}

// NewCluster builds and starts n nodes ("p0".."p<n-1>") over a fresh
// simulated network.
func NewCluster(n int, opts ...ClusterOption) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("gcs: cluster size %d < 1", n)
	}
	var cc clusterConfig
	for _, o := range opts {
		o(&cc)
	}
	if len(cc.netOpts) == 0 {
		cc.netOpts = []NetOption{WithDelay(0, 2*time.Millisecond)}
	}
	net := NewNetwork(cc.netOpts...)
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = ID(fmt.Sprintf("p%d", i))
	}
	c := &Cluster{Net: net, ids: ids}
	for _, id := range ids {
		cfg := Config{Self: id, Universe: ids}
		if cc.relation != nil {
			cfg.Relation = cc.relation
		}
		if cc.tweak != nil {
			cc.tweak(&cfg)
		}
		var deliver DeliverFunc
		if cc.deliver != nil {
			self := id
			deliver = func(d Delivery) { cc.deliver(self, d) }
		}
		node, err := core.NewNode(net.Endpoint(id), cfg, deliver)
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("gcs: build node %s: %w", id, err)
		}
		c.Nodes = append(c.Nodes, node)
	}
	for _, nd := range c.Nodes {
		nd.Start()
	}
	return c, nil
}

// IDs returns the cluster's process IDs in order.
func (c *Cluster) IDs() []ID {
	out := make([]ID, len(c.ids))
	copy(out, c.ids)
	return out
}

// Node returns the node with the given ID, or nil.
func (c *Cluster) Node(id ID) *Node {
	for _, nd := range c.Nodes {
		if nd.Self() == id {
			return nd
		}
	}
	return nil
}

// Stop halts every node and the network.
func (c *Cluster) Stop() {
	for _, nd := range c.Nodes {
		nd.Stop()
	}
	if c.Net != nil {
		c.Net.Shutdown()
	}
}
