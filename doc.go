// Package gcs is a group communication toolkit reproducing the architecture
// of Mena, Schiper and Wojciechowski, "A Step Towards a New Generation of
// Group Communication Systems" (Middleware 2003; EPFL TR IC/2003/01).
//
// # The new architecture (AB-GB)
//
// Unlike traditional group communication stacks (Isis, Phoenix, RMP, Totem,
// Ensemble), where group membership and view synchrony sit at the bottom and
// atomic broadcast depends on them, this stack inverts the layering:
//
//   - Atomic broadcast is the basic ordering component, built as a sequence
//     of Chandra–Toueg consensus instances over an unreliable (<>S) failure
//     detector. It tolerates f < n/2 crashes and any number of false
//     suspicions without reconfiguration.
//   - Group membership is built ON TOP of atomic broadcast: view changes are
//     just totally-ordered messages.
//   - View synchrony is replaced by generic broadcast: the application
//     declares a conflict relation over message classes, and only
//     conflicting messages pay for ordering (thrifty implementation —
//     atomic broadcast is invoked only when conflicts actually occur).
//   - Failure detection is decoupled from membership: suspicions with a
//     short timeout drive consensus (cheap false positives), while the
//     separate monitoring component uses a long timeout, corroboration
//     thresholds, and output-triggered suspicions before excluding anyone.
//
// # The service gateway
//
// Above the stack, every node can embed a service gateway (Serve) that
// opens the closed group to NETWORKED clients: sessions arrive over TCP
// (ListenServiceTCP) or over the simulated network's streams
// (Network.ListenStream) and carry pipelined request/response traffic.
// Writes are routed through the passive-replication primary with
// exactly-once semantics — retries after timeouts, reconnects, or primary
// failover are deduplicated by a replicated (session, seq) table — while
// reads are served from the contacted node's local state. The matching
// networked client (Dial) discovers the primary, follows NOT_PRIMARY
// redirects and demotion pushes, and retries with backoff across crashes.
//
// # Quick start
//
//	cluster, err := gcs.NewCluster(3)
//	// handle err
//	defer cluster.Stop()
//	cluster.Nodes[0].Abcast(myMsg{...})   // total order
//	cluster.Nodes[0].Rbcast(myMsg{...})   // unordered, cheap
//	cluster.Nodes[0].Join("p9")           // view change, totally ordered
//
// Applications register their message types with RegisterType (gob-based
// codec), may declare custom conflict relations with NewRelationBuilder,
// and can run each node over the in-memory simulated network (NewNetwork)
// or real TCP (NewTCPTransport).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's claims.
//
// # Static analysis
//
// The invariants the compiler cannot see — frame-pool ownership,
// transient-buffer lifetimes, the lock-hold discipline, metric naming,
// deterministic time — are enforced by the in-tree analyzer suite:
//
//	go run ./cmd/gcsvet ./...
//
// CI blocks on a clean run. gcsvet is invoked standalone rather than via
// go vet -vettool=$(which gcsvet); see cmd/gcsvet and DESIGN.md "Static
// analysis & enforced invariants" for the analyzer list and the
// //gcsvet:ignore escape-hatch policy.
package gcs
