package gcs_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	gcs "repro"
)

type appMsg struct {
	S string
}

func init() {
	gcs.RegisterType(appMsg{})
}

// collector gathers deliveries per node.
type collector struct {
	mu   sync.Mutex
	recs map[gcs.ID][]gcs.Delivery
}

func newCollector() *collector {
	return &collector{recs: make(map[gcs.ID][]gcs.Delivery)}
}

func (c *collector) deliver(self gcs.ID, d gcs.Delivery) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs[self] = append(c.recs[self], d)
}

func (c *collector) get(id gcs.ID) []gcs.Delivery {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]gcs.Delivery, len(c.recs[id]))
	copy(out, c.recs[id])
	return out
}

func (c *collector) waitCount(t *testing.T, id gcs.ID, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if len(c.get(id)) >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s delivered %d, want %d", id, len(c.get(id)), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func payloads(ds []gcs.Delivery) []string {
	out := make([]string, 0, len(ds))
	for _, d := range ds {
		if m, ok := d.Body.(appMsg); ok {
			out = append(out, m.S)
		}
	}
	return out
}

func TestClusterAbcastTotalOrder(t *testing.T) {
	col := newCollector()
	c, err := gcs.NewCluster(3, gcs.WithDeliver(col.deliver))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	const total = 30
	for i := 0; i < total; i++ {
		if err := c.Nodes[i%3].Abcast(appMsg{S: fmt.Sprintf("m%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range c.IDs() {
		col.waitCount(t, id, total, 15*time.Second)
	}
	ref := payloads(col.get("p0"))
	for _, id := range c.IDs()[1:] {
		got := payloads(col.get(id))
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("order differs at %d: %q vs %q", i, ref[i], got[i])
			}
		}
	}
}

func TestClusterRbcastDelivers(t *testing.T) {
	col := newCollector()
	c, err := gcs.NewCluster(3, gcs.WithDeliver(col.deliver))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	const total = 20
	for i := 0; i < total; i++ {
		if err := c.Nodes[0].Rbcast(appMsg{S: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range c.IDs() {
		col.waitCount(t, id, total, 10*time.Second)
	}
	// Pure rbcast traffic must not have invoked atomic broadcast.
	for _, nd := range c.Nodes {
		if st := nd.BroadcastStats(); st.Boundaries != 0 {
			t.Errorf("%s: rbcast-only run used %d boundaries", nd.Self(), st.Boundaries)
		}
	}
}

// TestViewChangesTotallyOrdered verifies the paper's membership claim: all
// processes observe the same sequence of views, implemented purely on top
// of the broadcast layer.
func TestViewChangesTotallyOrdered(t *testing.T) {
	type viewRec struct {
		mu    sync.Mutex
		views map[gcs.ID][]gcs.View
	}
	vr := &viewRec{views: make(map[gcs.ID][]gcs.View)}

	c, err := gcs.NewCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	for _, nd := range c.Nodes {
		self := nd.Self()
		nd.OnView(func(v gcs.View) {
			vr.mu.Lock()
			vr.views[self] = append(vr.views[self], v)
			vr.mu.Unlock()
		})
	}

	// Membership churn issued from several different nodes. Each step waits
	// for convergence so the resulting view sequence is deterministic.
	waitSeq := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			done := true
			for _, nd := range c.Nodes {
				if nd.Self() != "p4" && nd.View().Seq < want {
					done = false
				}
			}
			if done {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("view seq %d did not converge", want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := c.Nodes[0].Remove("p4"); err != nil {
		t.Fatal(err)
	}
	waitSeq(1)
	if err := c.Nodes[1].RotatePrimary("p0"); err != nil {
		t.Fatal(err)
	}
	waitSeq(2)
	if err := c.Nodes[2].Join("p4"); err != nil {
		t.Fatal(err)
	}
	waitSeq(3)
	time.Sleep(50 * time.Millisecond) // let p4 catch up too

	vr.mu.Lock()
	defer vr.mu.Unlock()
	ref := vr.views["p0"]
	for _, nd := range c.Nodes[1:] {
		got := vr.views[nd.Self()]
		if len(got) != len(ref) {
			t.Fatalf("%s saw %d views, p0 saw %d", nd.Self(), len(got), len(ref))
		}
		for i := range ref {
			if !ref[i].Equal(got[i]) {
				t.Fatalf("view sequence diverged at %d: %v vs %v", i, ref[i], got[i])
			}
		}
	}
}

// TestMonitoringExcludesCrashed verifies the monitoring path: a crashed
// process is eventually excluded from the view by the survivors, while the
// ordering layer keeps running throughout (no blocking).
func TestMonitoringExcludesCrashed(t *testing.T) {
	col := newCollector()
	c, err := gcs.NewCluster(3,
		gcs.WithDeliver(col.deliver),
		gcs.WithConfig(func(cfg *gcs.Config) {
			cfg.StartMonitor = true
			cfg.ExclusionTimeout = 150 * time.Millisecond
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	c.Net.Crash("p2")
	// Keep broadcasting while the failure is detected and handled.
	for i := 0; i < 10; i++ {
		_ = c.Nodes[0].Abcast(appMsg{S: fmt.Sprintf("during-%d", i)})
		time.Sleep(20 * time.Millisecond)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		v0, v1 := c.Nodes[0].View(), c.Nodes[1].View()
		if !v0.Contains("p2") && !v1.Contains("p2") {
			if !v0.Equal(v1) {
				t.Fatalf("survivor views differ: %v vs %v", v0, v1)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("p2 not excluded: %v / %v", c.Nodes[0].View(), c.Nodes[1].View())
		}
		time.Sleep(5 * time.Millisecond)
	}
	col.waitCount(t, "p0", 10, 10*time.Second)
	col.waitCount(t, "p1", 10, 10*time.Second)
}

// TestSuspicionWithoutExclusion is the Section 4.3 decoupling property: the
// consensus layer may suspect a slow process (short timeout) without the
// membership ever changing, because the monitoring component's long timeout
// does not fire.
func TestSuspicionWithoutExclusion(t *testing.T) {
	c, err := gcs.NewCluster(3,
		gcs.WithConfig(func(cfg *gcs.Config) {
			cfg.StartMonitor = true
			cfg.SuspicionTimeout = 30 * time.Millisecond
			cfg.ExclusionTimeout = 10 * time.Second // effectively never
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Make p2 transiently silent: cut its links, then heal.
	c.Net.CutLink("p0", "p2")
	c.Net.CutLink("p1", "p2")
	time.Sleep(120 * time.Millisecond) // well past the short timeout
	c.Net.HealLink("p0", "p2")
	c.Net.HealLink("p1", "p2")
	time.Sleep(120 * time.Millisecond)

	for _, nd := range c.Nodes {
		v := nd.View()
		if !v.Contains("p2") {
			t.Fatalf("%s excluded p2 despite long exclusion timeout: %v", nd.Self(), v)
		}
		if v.Seq != 0 {
			t.Fatalf("%s installed view %v; wrong suspicions must not change membership", nd.Self(), v)
		}
	}
}

// TestStateTransferOnJoin checks the snapshot path: a process that starts
// outside the initial view receives the primary's state when it joins.
func TestStateTransferOnJoin(t *testing.T) {
	network := gcs.NewNetwork(gcs.WithDelay(0, 2*time.Millisecond))
	universe := []gcs.ID{"p0", "p1", "p2", "p3"}
	initial := []gcs.ID{"p0", "p1", "p2"}

	var (
		mu       sync.Mutex
		restored []byte
	)
	var nodes []*gcs.Node
	for _, id := range universe {
		cfg := gcs.Config{
			Self:        id,
			Universe:    universe,
			InitialView: initial,
			Snapshot:    func() []byte { return []byte("state-of-the-art") },
		}
		if id == "p3" {
			cfg.Restore = func(b []byte) {
				mu.Lock()
				restored = append([]byte(nil), b...)
				mu.Unlock()
			}
		}
		nd, err := gcs.NewNode(network.Endpoint(id), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		network.Shutdown()
	}()

	if err := nodes[0].Join("p3"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		got := string(restored)
		mu.Unlock()
		if got == "state-of-the-art" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joiner never received state; got %q", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And the view converged to include p3 everywhere.
	for _, nd := range nodes {
		deadline := time.Now().Add(5 * time.Second)
		for !nd.View().Contains("p3") {
			if time.Now().After(deadline) {
				t.Fatalf("%s view lacks p3: %v", nd.Self(), nd.View())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := gcs.NewCluster(0); err == nil {
		t.Fatal("expected error for empty cluster")
	}
}
