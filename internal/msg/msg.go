// Package msg provides the wire codec shared by every protocol layer.
//
// All layers exchange Go values encoded with encoding/gob. Using a real
// codec (rather than passing pointers through the in-memory transport)
// guarantees that no two processes ever alias mutable state, exactly as if
// they were on different machines, and lets the same message types travel
// over the TCP transport unchanged.
//
// The encode path is pooled: every Encode borrows a scratch buffer from a
// sync.Pool instead of growing a fresh bytes.Buffer per call, and returns
// an exactly-sized copy the caller owns. Callers that consume a frame
// synchronously (transports copy on Send) can avoid even that copy with
// EncodeTransient. The decode path pools its reader, and the buffers decode
// reads FROM are pooled by the transports (transport.GetFrame/PutFrame):
// Decode never retains its input, so the final consumer of a frame recycles
// it right after decoding. This matters because every message of every
// layer — data frames, acks, heartbeats, loopback deliveries — passes
// through here; see BenchmarkMsgCodec and BenchmarkMsgDecode.
package msg

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
)

// envelope is the concrete top-level type handed to gob; the payload itself
// is an interface value whose dynamic type must have been registered.
type envelope struct {
	V any
}

var (
	registryMu sync.Mutex
	registry   = make(map[reflect.Type]bool)
)

// Register makes a concrete message type known to the codec. It must be
// called (typically from the defining package's registration hook) before a
// value of that type is encoded or decoded.
//
// Register is idempotent: registering the same concrete type any number of
// times — e.g. from several init paths of a library user, or from tests that
// re-run registration helpers — is a no-op after the first call.
func Register(v any) {
	t := reflect.TypeOf(v)
	registryMu.Lock()
	defer registryMu.Unlock()
	if registry[t] {
		return
	}
	registry[t] = true
	gob.Register(v)
}

// bufPool recycles encode scratch buffers. Buffers retain their grown
// capacity across uses, so steady-state encoding stops allocating for
// buffer growth no matter the payload size distribution.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeInto serialises v into the pooled buffer and returns it; the caller
// must return the buffer to the pool.
func encodeInto(v any) (*bytes.Buffer, error) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(envelope{V: v}); err != nil {
		bufPool.Put(buf)
		return nil, fmt.Errorf("msg encode %T: %w", v, err)
	}
	return buf, nil
}

// Encode serialises v. The dynamic type of v must be registered. The
// returned slice is owned by the caller (it is safe to retain, e.g. in a
// retransmission buffer).
func Encode(v any) ([]byte, error) {
	buf, err := encodeInto(v)
	if err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	bufPool.Put(buf)
	return out, nil
}

// EncodeTransient serialises v into a pooled buffer and returns a view of
// it plus a release function. The slice is valid only until release is
// called; it must NOT be retained or sent anywhere that keeps a reference
// past the call (all transports copy on Send, so
//
//	frame, release, err := msg.EncodeTransient(v)
//	tr.Send(to, frame)
//	release()
//
// is the alloc-free pattern for fire-and-forget frames such as acks,
// heartbeat datagrams and loopback deliveries).
func EncodeTransient(v any) ([]byte, func(), error) {
	buf, err := encodeInto(v)
	if err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), func() { bufPool.Put(buf) }, nil
}

// readerPool recycles the bytes.Reader wrapped around each decode. A
// gob.Decoder itself cannot be pooled — each Encode output is a
// self-contained gob stream re-sending its type definitions, and a Decoder
// fed two independent streams rejects the duplicate definitions — but the
// reader can, and decode input buffers are pooled one layer down (the
// transports' frame pool, which consumers release after Decode returns).
var readerPool = sync.Pool{New: func() any { return new(bytes.Reader) }}

// Decode deserialises a value previously produced by Encode. Decode copies
// everything out of data: the caller may reuse (or recycle) the buffer as
// soon as Decode returns — see BenchmarkMsgDecode.
func Decode(data []byte) (any, error) {
	r := readerPool.Get().(*bytes.Reader)
	r.Reset(data)
	var env envelope
	err := gob.NewDecoder(r).Decode(&env)
	r.Reset(nil) // drop the data reference before pooling
	readerPool.Put(r)
	if err != nil {
		return nil, fmt.Errorf("msg decode: %w", err)
	}
	return env.V, nil
}
