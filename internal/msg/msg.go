// Package msg provides the wire codec shared by every protocol layer.
//
// All layers exchange Go values encoded with encoding/gob. Using a real
// codec (rather than passing pointers through the in-memory transport)
// guarantees that no two processes ever alias mutable state, exactly as if
// they were on different machines, and lets the same message types travel
// over the TCP transport unchanged.
package msg

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
)

// envelope is the concrete top-level type handed to gob; the payload itself
// is an interface value whose dynamic type must have been registered.
type envelope struct {
	V any
}

var (
	registryMu sync.Mutex
	registry   = make(map[reflect.Type]bool)
)

// Register makes a concrete message type known to the codec. It must be
// called (typically from the defining package's registration hook) before a
// value of that type is encoded or decoded.
//
// Register is idempotent: registering the same concrete type any number of
// times — e.g. from several init paths of a library user, or from tests that
// re-run registration helpers — is a no-op after the first call.
func Register(v any) {
	t := reflect.TypeOf(v)
	registryMu.Lock()
	defer registryMu.Unlock()
	if registry[t] {
		return
	}
	registry[t] = true
	gob.Register(v)
}

// Encode serialises v. The dynamic type of v must be registered.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(envelope{V: v}); err != nil {
		return nil, fmt.Errorf("msg encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Decode deserialises a value previously produced by Encode.
func Decode(data []byte) (any, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return nil, fmt.Errorf("msg decode: %w", err)
	}
	return env.V, nil
}
