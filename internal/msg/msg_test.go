package msg

import (
	"fmt"
	"testing"
	"testing/quick"
)

type codecProbe struct {
	A int64
	B string
	C []byte
	D map[string]uint32
}

type nestedProbe struct {
	Inner codecProbe
	Any   any
}

func init() {
	Register(codecProbe{})
	Register(nestedProbe{})
}

func TestRoundTrip(t *testing.T) {
	in := codecProbe{A: -42, B: "hello", C: []byte{1, 2, 3}, D: map[string]uint32{"x": 7}}
	data, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(codecProbe)
	if !ok {
		t.Fatalf("decoded type %T", out)
	}
	if got.A != in.A || got.B != in.B || string(got.C) != string(in.C) || got.D["x"] != 7 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestNestedAny(t *testing.T) {
	in := nestedProbe{Inner: codecProbe{A: 1}, Any: codecProbe{B: "nested"}}
	data, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(nestedProbe)
	inner, ok := got.Any.(codecProbe)
	if !ok || inner.B != "nested" {
		t.Fatalf("nested any lost: %+v", got)
	}
}

// Register must be idempotent: multiple init paths (library user plus a
// package's own hook) may register the same concrete type.
func TestRegisterIdempotent(t *testing.T) {
	for i := 0; i < 3; i++ {
		Register(codecProbe{})
		Register(nestedProbe{})
	}
	data, err := Encode(codecProbe{A: 9})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(codecProbe); got.A != 9 {
		t.Fatalf("round trip after re-registration: %+v", got)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob at all")); err == nil {
		t.Fatal("expected error decoding garbage")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("expected error decoding nil")
	}
}

func TestEncodeUnregistered(t *testing.T) {
	type unregistered struct{ X int }
	if _, err := Encode(unregistered{X: 1}); err == nil {
		t.Fatal("expected error for unregistered type")
	}
}

// TestEncodeTransient checks the pooled frame is valid until released and
// that releasing recycles the buffer without corrupting earlier copies.
func TestEncodeTransient(t *testing.T) {
	in := codecProbe{A: 7, B: "transient", C: []byte{9, 9}}
	frame, release, err := EncodeTransient(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	release()
	if got := out.(codecProbe); got.B != "transient" {
		t.Fatalf("transient round trip: %+v", got)
	}
	// After release the buffer may be reused by the next encode; a copy
	// taken before release must stay intact.
	frame2, release2, err := EncodeTransient(codecProbe{A: 8, B: "next"})
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	if out2, err := Decode(frame2); err != nil || out2.(codecProbe).B != "next" {
		t.Fatalf("reused buffer round trip: %v %+v", err, out2)
	}
}

// TestPooledCodecConcurrent hammers the pooled encode/decode paths from many
// goroutines: results must never bleed between borrowed buffers.
func TestPooledCodecConcurrent(t *testing.T) {
	const workers, per = 8, 200
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				in := codecProbe{A: int64(w*1000 + i), B: "w", C: make([]byte, i%37)}
				data, err := Encode(in)
				if err != nil {
					errs <- err
					return
				}
				out, err := Decode(data)
				if err != nil {
					errs <- err
					return
				}
				if got := out.(codecProbe); got.A != in.A || len(got.C) != len(in.C) {
					errs <- fmt.Errorf("worker %d iter %d: mismatch %+v", w, i, got)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// Property: every value round-trips unchanged, and decoding never aliases
// the encoder's buffers.
func TestRoundTripProperty(t *testing.T) {
	prop := func(a int64, b string, c []byte) bool {
		in := codecProbe{A: a, B: b, C: c}
		data, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(data)
		if err != nil {
			return false
		}
		got, ok := out.(codecProbe)
		if !ok || got.A != a || got.B != b || len(got.C) != len(c) {
			return false
		}
		for i := range c {
			if got.C[i] != c[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
