package msg

import (
	"testing"
	"testing/quick"
)

type codecProbe struct {
	A int64
	B string
	C []byte
	D map[string]uint32
}

type nestedProbe struct {
	Inner codecProbe
	Any   any
}

func init() {
	Register(codecProbe{})
	Register(nestedProbe{})
}

func TestRoundTrip(t *testing.T) {
	in := codecProbe{A: -42, B: "hello", C: []byte{1, 2, 3}, D: map[string]uint32{"x": 7}}
	data, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(codecProbe)
	if !ok {
		t.Fatalf("decoded type %T", out)
	}
	if got.A != in.A || got.B != in.B || string(got.C) != string(in.C) || got.D["x"] != 7 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestNestedAny(t *testing.T) {
	in := nestedProbe{Inner: codecProbe{A: 1}, Any: codecProbe{B: "nested"}}
	data, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(nestedProbe)
	inner, ok := got.Any.(codecProbe)
	if !ok || inner.B != "nested" {
		t.Fatalf("nested any lost: %+v", got)
	}
}

// Register must be idempotent: multiple init paths (library user plus a
// package's own hook) may register the same concrete type.
func TestRegisterIdempotent(t *testing.T) {
	for i := 0; i < 3; i++ {
		Register(codecProbe{})
		Register(nestedProbe{})
	}
	data, err := Encode(codecProbe{A: 9})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(codecProbe); got.A != 9 {
		t.Fatalf("round trip after re-registration: %+v", got)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob at all")); err == nil {
		t.Fatal("expected error decoding garbage")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("expected error decoding nil")
	}
}

func TestEncodeUnregistered(t *testing.T) {
	type unregistered struct{ X int }
	if _, err := Encode(unregistered{X: 1}); err == nil {
		t.Fatal("expected error for unregistered type")
	}
}

// Property: every value round-trips unchanged, and decoding never aliases
// the encoder's buffers.
func TestRoundTripProperty(t *testing.T) {
	prop := func(a int64, b string, c []byte) bool {
		in := codecProbe{A: a, B: b, C: c}
		data, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(data)
		if err != nil {
			return false
		}
		got, ok := out.(codecProbe)
		if !ok || got.A != a || got.B != b || len(got.C) != len(c) {
			return false
		}
		for i := range c {
			if got.C[i] != c[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
