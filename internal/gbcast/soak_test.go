package gbcast

// Randomized soak: the epoch-boundary protocol is this repository's novel
// piece, so it gets adversarial schedules — many seeds, random jitter, loss
// and class mixes — each checked against the full generic broadcast
// contract (agreement, integrity, FIFO, conflicting-pair total order).

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

func TestGbcastRandomizedSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	seeds := []int64{1, 2, 3, 5, 8, 13}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runSoak(t, seed)
		})
	}
}

func runSoak(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	loss := float64(rng.Intn(10)) / 100 // 0–9 %
	maxDelay := time.Duration(1+rng.Intn(3)) * time.Millisecond

	c := newCluster(t, 3, passiveRelation(),
		transport.WithDelay(0, maxDelay),
		transport.WithLoss(loss),
		transport.WithSeed(seed))

	const perNode = 15
	var (
		wg      sync.WaitGroup
		totalMu sync.Mutex
		total   int
	)
	for idx, nd := range c.nodes {
		wg.Add(1)
		go func(idx int, nd *node) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed*31 + int64(idx)))
			for i := 0; i < perNode; i++ {
				var err error
				if r.Intn(100) < 20 {
					err = nd.gb.Broadcast("primary-change", testPayload{S: fmt.Sprintf("pc-%s-%d", nd.id, i)})
				} else {
					err = nd.gb.Broadcast("update", testPayload{S: fmt.Sprintf("u--%s-%d", nd.id, i)})
				}
				if err != nil {
					t.Error(err)
					return
				}
				totalMu.Lock()
				total++
				totalMu.Unlock()
				if r.Intn(3) == 0 {
					time.Sleep(time.Duration(r.Intn(2)) * time.Millisecond)
				}
			}
		}(idx, nd)
	}
	wg.Wait()

	deadline := time.Now().Add(60 * time.Second)
	for {
		done := true
		for _, nd := range c.nodes {
			if len(nd.delivered()) < total {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: %d/%d/%d of %d delivered",
				seed, len(c.nodes[0].delivered()), len(c.nodes[1].delivered()),
				len(c.nodes[2].delivered()), total)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Contract checks.
	ref := c.nodes[0].delivered()
	refPos := make(map[string]int, len(ref))
	for i, r := range ref {
		if _, dup := refPos[r.s]; dup {
			t.Fatalf("seed %d: duplicate delivery %q", seed, r.s)
		}
		refPos[r.s] = i
	}
	for _, nd := range c.nodes[1:] {
		got := nd.delivered()
		if len(got) != len(ref) {
			t.Fatalf("seed %d: agreement violated: %d vs %d", seed, len(got), len(ref))
		}
		pos := make(map[string]int, len(got))
		for i, r := range got {
			pos[r.s] = i
		}
		// Conflicting pairs in the same order everywhere.
		for _, a := range ref {
			if a.class != "primary-change" {
				continue
			}
			for _, b := range ref {
				if a.s == b.s {
					continue
				}
				if (refPos[a.s] < refPos[b.s]) != (pos[a.s] < pos[b.s]) {
					t.Fatalf("seed %d: pair (%s,%s) ordered differently", seed, a.s, b.s)
				}
			}
		}
	}
	// FIFO per origin within the fast class.
	for _, nd := range c.nodes {
		last := map[string]int{}
		for _, r := range nd.delivered() {
			if r.class != "update" {
				continue
			}
			var origin string
			var i int
			if _, err := fmt.Sscanf(r.s, "u--%2s-%d", &origin, &i); err != nil {
				t.Fatalf("bad payload %q: %v", r.s, err)
			}
			if prev, ok := last[origin]; ok && i <= prev {
				t.Fatalf("seed %d: FIFO violated for %s: %d after %d", seed, origin, i, prev)
			}
			last[origin] = i
		}
	}
}
