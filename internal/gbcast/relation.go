package gbcast

import (
	"fmt"
	"sort"
)

// Relation is a symmetric conflict relation over message classes
// (Section 3.2.1). Generic broadcast guarantees that two messages whose
// classes conflict are delivered in the same relative order by all
// processes; non-conflicting messages are not ordered, which is cheaper.
//
// Classes are partitioned by the relation into:
//
//   - ordered classes: classes that conflict with themselves. These travel
//     through atomic broadcast.
//   - fast classes: classes that do not conflict with themselves. These
//     travel through the fast path (reliable broadcast + majority acks).
//
// The implementation requires that two *distinct fast* classes never
// conflict; if they are declared to, both are promoted to ordered classes
// (ordering more than required is always safe). Both conflict tables
// printed in the paper already have the required shape:
//
//	Section 3.2.3:            update        primary-change
//	   update               no conflict        conflict
//	   primary-change        conflict          conflict
//
//	Section 3.3:              rbcast          abcast
//	   rbcast              no conflict        conflict
//	   abcast                conflict         conflict
type Relation struct {
	classes  map[string]struct{}
	conflict map[pair]struct{}
	ordered  map[string]struct{}
	// Original declarations, kept so the relation can be extended.
	declClasses   []string
	declConflicts []pair
}

type pair struct{ a, b string }

func normPair(a, b string) pair {
	if a > b {
		a, b = b, a
	}
	return pair{a: a, b: b}
}

// RelationBuilder accumulates class and conflict declarations.
type RelationBuilder struct {
	classes   []string
	conflicts []pair
}

// NewRelationBuilder returns an empty builder.
func NewRelationBuilder() *RelationBuilder {
	return &RelationBuilder{}
}

// Class declares a message class (idempotent).
func (b *RelationBuilder) Class(name string) *RelationBuilder {
	b.classes = append(b.classes, name)
	return b
}

// Conflict declares that classes a and b conflict (symmetric; a may equal
// b). Both classes are declared implicitly.
func (b *RelationBuilder) Conflict(a, c string) *RelationBuilder {
	b.classes = append(b.classes, a, c)
	b.conflicts = append(b.conflicts, pair{a: a, b: c})
	return b
}

// Build constructs the immutable Relation, promoting conflicting fast
// classes to ordered as described above.
func (b *RelationBuilder) Build() *Relation {
	r := &Relation{
		classes:       make(map[string]struct{}),
		conflict:      make(map[pair]struct{}),
		ordered:       make(map[string]struct{}),
		declClasses:   append([]string(nil), b.classes...),
		declConflicts: append([]pair(nil), b.conflicts...),
	}
	for _, c := range b.classes {
		r.classes[c] = struct{}{}
	}
	for _, p := range b.conflicts {
		r.conflict[normPair(p.a, p.b)] = struct{}{}
	}
	// Self-conflicting classes are ordered.
	for c := range r.classes {
		if _, ok := r.conflict[normPair(c, c)]; ok {
			r.ordered[c] = struct{}{}
		}
	}
	// Promote pairs of conflicting fast classes.
	for p := range r.conflict {
		if p.a == p.b {
			continue
		}
		_, aOrd := r.ordered[p.a]
		_, bOrd := r.ordered[p.b]
		if !aOrd && !bOrd {
			r.ordered[p.a] = struct{}{}
			r.ordered[p.b] = struct{}{}
		}
	}
	return r
}

// DefaultRelation returns the relation of the full architecture
// (Section 3.3): class "rbcast" is fast, class "abcast" is ordered, and the
// two conflict.
func DefaultRelation() *Relation {
	return NewRelationBuilder().
		Conflict(ClassAbcast, ClassAbcast).
		Conflict(ClassRbcast, ClassAbcast).
		Build()
}

// Names of the default classes.
const (
	ClassRbcast = "rbcast"
	ClassAbcast = "abcast"
)

// Conflicts reports whether classes a and b conflict.
func (r *Relation) Conflicts(a, b string) bool {
	_, ok := r.conflict[normPair(a, b)]
	return ok
}

// Ordered reports whether class c travels through the ordered (atomic
// broadcast) path.
func (r *Relation) Ordered(c string) bool {
	_, ok := r.ordered[c]
	return ok
}

// Known reports whether class c was declared.
func (r *Relation) Known(c string) bool {
	_, ok := r.classes[c]
	return ok
}

// HasFastClasses reports whether at least one declared class uses the fast
// path. When false, the broadcaster skips epoch boundaries entirely and
// behaves exactly as atomic broadcast (the paper's degenerate case "all
// messages conflict").
func (r *Relation) HasFastClasses() bool {
	return len(r.ordered) < len(r.classes)
}

// Classes returns the declared class names, sorted.
func (r *Relation) Classes() []string {
	out := make([]string, 0, len(r.classes))
	for c := range r.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ExtendWithOrderedClass returns a new relation containing an additional
// class that conflicts with every declared class and with itself. The stack
// uses it to splice the membership view-change class into the application's
// relation: view changes conflicting with everything is precisely what gives
// "same view delivery" (Section 4.4).
func (r *Relation) ExtendWithOrderedClass(name string) *Relation {
	b := NewRelationBuilder()
	for _, c := range r.declClasses {
		b.Class(c)
	}
	for _, p := range r.declConflicts {
		b.Conflict(p.a, p.b)
	}
	b.Conflict(name, name)
	for c := range r.classes {
		b.Conflict(name, c)
	}
	return b.Build()
}

// Validate returns an error if class c is unusable for broadcasting.
func (r *Relation) Validate(c string) error {
	if !r.Known(c) {
		return fmt.Errorf("gbcast: unknown message class %q", c)
	}
	return nil
}
