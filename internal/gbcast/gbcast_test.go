package gbcast

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/abcast"
	"repro/internal/consensus"
	"repro/internal/fd"
	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/transport"
)

type testPayload struct {
	S string
}

func init() {
	msg.Register(testPayload{})
}

type record struct {
	class string
	s     string
}

type node struct {
	id proc.ID
	ep *rchannel.Endpoint
	fd *fd.Detector
	cs *consensus.Service
	ab *abcast.Broadcaster
	gb *Broadcaster

	mu    sync.Mutex
	order []record
}

func (n *node) delivered() []record {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]record, len(n.order))
	copy(out, n.order)
	return out
}

type cluster struct {
	net   *transport.Network
	nodes []*node
}

func newCluster(t *testing.T, n int, rel *Relation, netOpts ...transport.NetOption) *cluster {
	t.Helper()
	if len(netOpts) == 0 {
		netOpts = []transport.NetOption{transport.WithDelay(0, 2*time.Millisecond), transport.WithSeed(9)}
	}
	network := transport.NewNetwork(netOpts...)
	members := make([]proc.ID, n)
	for i := range members {
		members[i] = proc.ID(fmt.Sprintf("p%d", i))
	}
	c := &cluster{net: network}
	for _, id := range members {
		nd := &node{id: id}
		nd.ep = rchannel.New(network.Endpoint(id), rchannel.WithRTO(10*time.Millisecond))
		nd.fd = fd.New(nd.ep, members, fd.WithInterval(3*time.Millisecond), fd.WithCheckEvery(2*time.Millisecond))
		sub := nd.fd.Subscribe(40 * time.Millisecond)
		nd.gb = New(nd.ep, "gb", members, rel, func(d Delivery) {
			p, ok := d.Body.(testPayload)
			if !ok {
				return
			}
			nd.mu.Lock()
			nd.order = append(nd.order, record{class: d.Class, s: p.S})
			nd.mu.Unlock()
		})
		nd.ab = abcast.New(nd.ep, "gb.ab", members, nd.gb.Adeliver)
		nd.cs = consensus.New(nd.ep, members, sub, nd.ab.Decide)
		nd.ab.AttachConsensus(nd.cs)
		nd.gb.AttachAbcast(nd.ab)
		c.nodes = append(c.nodes, nd)
	}
	for _, nd := range c.nodes {
		nd.ep.Start()
		nd.fd.Start()
		nd.cs.Start()
		nd.ab.Start()
		nd.gb.Start()
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			nd.gb.Stop()
			nd.ab.Stop()
			nd.cs.Stop()
			nd.fd.Stop()
			nd.ep.Stop()
		}
		network.Shutdown()
	})
	return c
}

func passiveRelation() *Relation {
	return NewRelationBuilder().
		Conflict("primary-change", "primary-change").
		Conflict("update", "primary-change").
		Class("update").
		Build()
}

func waitCount(t *testing.T, nd *node, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if len(nd.delivered()) >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s delivered %d, want %d", nd.id, len(nd.delivered()), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFastOnlyNoAbcast sends only non-conflicting messages: everything must
// deliver without a single epoch boundary — the thriftiness property [1].
func TestFastOnlyNoAbcast(t *testing.T) {
	c := newCluster(t, 3, passiveRelation())
	const perNode = 20
	for _, nd := range c.nodes {
		for i := 0; i < perNode; i++ {
			if err := nd.gb.Broadcast("update", testPayload{S: fmt.Sprintf("%s-%d", nd.id, i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := perNode * len(c.nodes)
	for _, nd := range c.nodes {
		waitCount(t, nd, total, 10*time.Second)
	}
	for _, nd := range c.nodes {
		st := nd.gb.Stats()
		if st.Boundaries != 0 {
			t.Errorf("%s ran %d boundaries; thrifty generic broadcast must not invoke abcast without conflicts", nd.id, st.Boundaries)
		}
		if st.FastDelivered != uint64(total) {
			t.Errorf("%s fast-delivered %d, want %d", nd.id, st.FastDelivered, total)
		}
	}
	// Per-origin FIFO: the payloads "pX-i" from each origin must appear in
	// increasing i order at every node.
	for _, nd := range c.nodes {
		last := map[string]int{}
		for _, r := range nd.delivered() {
			var origin string
			var i int
			if _, err := fmt.Sscanf(r.s, "%2s-%d", &origin, &i); err != nil {
				t.Fatalf("bad payload %q: %v", r.s, err)
			}
			if prev, ok := last[origin]; ok && i <= prev {
				t.Fatalf("%s: FIFO violation for %s: %d after %d", nd.id, origin, i, prev)
			}
			last[origin] = i
		}
	}
}

// TestAllOrderedIsAtomicBroadcast uses a relation where every class
// conflicts: generic broadcast must behave as atomic broadcast (identical
// delivery order everywhere) without running boundaries.
func TestAllOrderedIsAtomicBroadcast(t *testing.T) {
	rel := NewRelationBuilder().Conflict("cmd", "cmd").Build()
	c := newCluster(t, 3, rel)
	const perNode = 15
	for _, nd := range c.nodes {
		for i := 0; i < perNode; i++ {
			if err := nd.gb.Broadcast("cmd", testPayload{S: fmt.Sprintf("%s-%d", nd.id, i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := perNode * len(c.nodes)
	for _, nd := range c.nodes {
		waitCount(t, nd, total, 15*time.Second)
	}
	ref := c.nodes[0].delivered()
	for _, nd := range c.nodes[1:] {
		got := nd.delivered()
		for i := range ref[:total] {
			if got[i] != ref[i] {
				t.Fatalf("order differs at %d: %v vs %v", i, ref[i], got[i])
			}
		}
	}
	for _, nd := range c.nodes {
		if st := nd.gb.Stats(); st.Boundaries != 0 {
			t.Errorf("%s: all-ordered relation must skip boundaries, got %d", nd.id, st.Boundaries)
		}
	}
}

// TestConflictingPairsTotallyOrdered is the central correctness property of
// generic broadcast: every (update, primary-change) pair must be delivered
// in the same relative order by all processes, while updates themselves may
// interleave freely.
func TestConflictingPairsTotallyOrdered(t *testing.T) {
	c := newCluster(t, 3, passiveRelation())
	const updates = 40
	const changes = 6

	var wg sync.WaitGroup
	for i, nd := range c.nodes {
		wg.Add(1)
		go func(i int, nd *node) {
			defer wg.Done()
			for u := 0; u < updates; u++ {
				_ = nd.gb.Broadcast("update", testPayload{S: fmt.Sprintf("u-%s-%d", nd.id, u)})
				if u%(updates/changes+1) == 0 {
					_ = nd.gb.Broadcast("primary-change", testPayload{S: fmt.Sprintf("pc-%s-%d", nd.id, u)})
				}
				time.Sleep(time.Millisecond)
			}
		}(i, nd)
	}
	wg.Wait()

	// Each node sends `updates` updates plus one primary-change for every
	// u with u % (updates/changes+1) == 0; wait for every delivery.
	perNodeChanges := 0
	for u := 0; u < updates; u++ {
		if u%(updates/changes+1) == 0 {
			perNodeChanges++
		}
	}
	total := len(c.nodes) * (updates + perNodeChanges)
	deadline := time.Now().Add(60 * time.Second)
	for {
		n0 := len(c.nodes[0].delivered())
		n1 := len(c.nodes[1].delivered())
		n2 := len(c.nodes[2].delivered())
		if n0 >= total && n1 >= total && n2 >= total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deliveries incomplete: %d/%d/%d of %d", n0, n1, n2, total)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// All nodes delivered the same multiset; verify pairwise order of
	// conflicting messages.
	for _, nd := range c.nodes {
		if got := len(nd.delivered()); got != total {
			t.Fatalf("%s delivered %d, others %d", nd.id, got, total)
		}
	}
	ref := c.nodes[0].delivered()
	refPos := make(map[string]int, len(ref))
	for i, r := range ref {
		if _, dup := refPos[r.s]; dup {
			t.Fatalf("duplicate delivery %q", r.s)
		}
		refPos[r.s] = i
	}
	for _, nd := range c.nodes[1:] {
		got := nd.delivered()
		pos := make(map[string]int, len(got))
		for i, r := range got {
			pos[r.s] = i
		}
		for _, a := range ref {
			for _, b := range ref {
				if a.s == b.s {
					continue
				}
				conflicting := a.class == "primary-change" || b.class == "primary-change"
				if !conflicting {
					continue
				}
				refOrder := refPos[a.s] < refPos[b.s]
				gotOrder := pos[a.s] < pos[b.s]
				if refOrder != gotOrder {
					t.Fatalf("conflicting pair (%s,%s) ordered differently at %s", a.s, b.s, nd.id)
				}
			}
		}
	}

	// Per-origin FIFO of updates.
	for _, nd := range c.nodes {
		lastU := map[string]int{}
		for _, r := range nd.delivered() {
			if r.class != "update" {
				continue
			}
			var origin string
			var u int
			if _, err := fmt.Sscanf(r.s, "u-%2s-%d", &origin, &u); err != nil {
				t.Fatalf("bad payload %q: %v", r.s, err)
			}
			if prev, ok := lastU[origin]; ok && u <= prev {
				t.Fatalf("%s: FIFO violation for origin %s: %d after %d", nd.id, origin, u, prev)
			}
			lastU[origin] = u
		}
	}

	// Thriftiness sanity: boundaries ran (conflicts happened) but far fewer
	// than one per update.
	st := c.nodes[0].gb.Stats()
	if st.Boundaries == 0 {
		t.Error("expected at least one boundary with primary-change traffic")
	}
	t.Logf("stats: fast=%d ordered=%d boundaries=%d", st.FastDelivered, st.OrderedDelivered, st.Boundaries)
}

// TestGbcastUnknownClass verifies input validation.
func TestGbcastUnknownClass(t *testing.T) {
	c := newCluster(t, 3, passiveRelation())
	if err := c.nodes[0].gb.Broadcast("nope", testPayload{S: "x"}); err == nil {
		t.Fatal("expected error for unknown class")
	}
}

// TestGbcastSurvivesCrash: a minority crash must not block either path.
func TestGbcastSurvivesCrash(t *testing.T) {
	c := newCluster(t, 3, passiveRelation())
	_ = c.nodes[0].gb.Broadcast("update", testPayload{S: "before"})
	for _, nd := range c.nodes {
		waitCount(t, nd, 1, 5*time.Second)
	}
	c.net.Crash("p2")
	_ = c.nodes[0].gb.Broadcast("update", testPayload{S: "after-fast"})
	_ = c.nodes[1].gb.Broadcast("primary-change", testPayload{S: "after-ordered"})
	for _, nd := range c.nodes[:2] {
		waitCount(t, nd, 3, 15*time.Second)
	}
	// Both survivors agree on the relative order of the conflicting pair.
	order := func(nd *node) []string {
		var out []string
		for _, r := range nd.delivered() {
			out = append(out, r.s)
		}
		return out
	}
	o0, o1 := order(c.nodes[0]), order(c.nodes[1])
	for i := range o0 {
		if o0[i] != o1[i] {
			t.Fatalf("survivor order differs: %v vs %v", o0, o1)
		}
	}
}
