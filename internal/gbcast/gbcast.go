// Package gbcast implements thrifty generic broadcast — the component that
// replaces view synchrony in the new architecture (Sections 3.2.1 and 4.4).
//
// Generic broadcast [29, 30] orders only messages that *conflict* according
// to an application-supplied relation; a thrifty implementation [1] invokes
// atomic broadcast only in runs where conflicting messages actually meet.
// This implementation realises those properties with a stage ("epoch")
// protocol chosen for a short correctness argument:
//
// Fast path (classes that do not conflict with themselves):
//
//	g-broadcast(m): reliable-broadcast DATA(m).
//	on r-deliver DATA(m) while the epoch is open: send ACK(m, epoch) to all.
//	g-deliver m once a majority acked (m, e) where e is the local current
//	epoch (and all earlier fast messages from m's origin are delivered —
//	FIFO, footnote 9 of the paper).
//
// Ordered path (self-conflicting classes) — through atomic broadcast:
//
//	on a-deliver of an ordered message o while open: enter "closing" state;
//	a-broadcast CLOSE(e, unswept) where unswept is the set of fast message
//	ids this process has acked and that no previous boundary has swept.
//	Collect the first ⌈(n+1)/2⌉ CLOSE(e, ·) messages *in a-delivery order*
//	(identical at every process); U := union of their unswept sets. Deliver
//	U \ delivered in deterministic (origin, seq) order, then the queued
//	ordered messages in a-delivery order, then enter epoch e+1 and re-ack
//	all pending fast messages.
//
// Why conflicting pairs are totally ordered:
//
//   - ordered vs ordered: both in the atomic broadcast stream.
//   - fast m vs ordered o (boundary e): if some process g-delivered m in an
//     epoch e' <= e, a majority acked (m, e'); acks are only sent while the
//     epoch is open, i.e. before that acker emitted CLOSE(e'), so m is in
//     the acker's unswept set at CLOSE time. The first-majority CLOSE
//     senders intersect every ack majority (both are majorities of the same
//     universe, f < n/2), hence m ∈ U(e') and *every* process delivers m at
//     or before boundary e' <= e, i.e. before o. Conversely if m ∉ U(e..)
//     then no process fast-delivered m before boundary e, and every process
//     delivers m after o. Either way the relative order is identical
//     everywhere.
//   - fast vs fast: distinct fast classes never conflict (relation
//     invariant) and fast classes do not conflict with themselves, so no
//     ordering is required.
//
// Thriftiness: in runs without ordered messages the protocol costs one
// reliable broadcast plus one ack round per message — atomic broadcast (and
// therefore consensus) is never invoked, matching [1]. If every class is
// ordered the protocol *is* atomic broadcast (no boundaries are needed, so
// none are run).
//
// Liveness of a boundary: completing it may require DATA bodies for ids in
// U that have not arrived yet; reliable broadcast guarantees they do.
// A majority of correct processes always emits CLOSE, so the first-majority
// prefix of the stream exists. Fast messages cannot starve under an endless
// stream of boundaries either: every correct process eventually acks m, so
// m eventually appears in every CLOSE and is swept by the next boundary.
package gbcast

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/abcast"
	"repro/internal/eventq"
	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/rbcast"
	"repro/internal/rchannel"
	"repro/internal/seqset"
)

// flushClass is the internal ordered class used to force a boundary when
// the unswept set grows large (pure garbage collection; never delivered to
// the application).
const flushClass = "_gb.flush"

// gid identifies a fast message: origin plus the origin's dense rbcast
// sequence number.
type gid struct {
	Origin proc.ID
	Seq    uint64
}

// Wire types.
type (
	// gFast is the body of a fast-path DATA message (id comes from rbcast).
	gFast struct {
		Class string
		Body  any
	}
	// gAck acknowledges a fast message within an epoch.
	gAck struct {
		ID    gid
		Epoch uint64
	}
	// gOrd is an ordered message travelling through atomic broadcast.
	gOrd struct {
		Class string
		Body  any
	}
	// gClose closes an epoch (see package comment).
	gClose struct {
		Epoch   uint64
		Unswept []gid
	}
)

func init() {
	msg.Register(gFast{})
	msg.Register(gAck{})
	msg.Register(gOrd{})
	msg.Register(gClose{})
}

// Delivery is a g-delivered message.
type Delivery struct {
	Origin proc.ID
	Class  string
	Body   any
}

// DeliverFunc consumes deliveries on the broadcaster's event loop; it must
// not block.
type DeliverFunc func(Delivery)

// Option configures the Broadcaster.
type Option func(*Broadcaster)

// WithFlushLimit sets the unswept-set size that triggers an internal
// garbage-collection boundary. Zero disables auto-flush.
func WithFlushLimit(n int) Option {
	return func(g *Broadcaster) { g.flushLimit = n }
}

// Broadcaster provides generic broadcast over a fixed member universe.
type Broadcaster struct {
	ep         *rchannel.Endpoint
	self       proc.ID
	others     []proc.ID
	quorum     int
	rel        *Relation
	deliver    DeliverFunc
	proto      string
	flushLimit int

	rb *rbcast.Broadcaster
	ab *abcast.Broadcaster

	events *eventq.Queue[event]

	// Event-loop-owned state.
	epoch         uint64
	closing       bool
	pending       map[gid]gFast
	deliveredFast map[proc.ID]*seqset.Set
	fifoNext      map[proc.ID]uint64
	unswept       map[gid]struct{}
	acks          map[gid]map[uint64]map[proc.ID]struct{}
	closeSenders  map[proc.ID]struct{}
	closeUnion    map[gid]struct{}
	queuedOrdered []Delivery
	deferredAcks  []gid
	flushInFlight bool

	// Stats (event-loop owned, snapshotted via query events).
	statFast     uint64
	statOrdered  uint64
	statBoundary uint64

	startOnce sync.Once
	stop      chan struct{}
	done      sync.WaitGroup
}

type event struct {
	fast  *rbcast.Delivery
	ack   *ackEvent
	adlv  *abcast.Delivery
	query *statsQuery
}

type ackEvent struct {
	from proc.ID
	ack  gAck
}

type statsQuery struct {
	reply chan Stats
}

// Stats exposes the broadcaster's delivery counters (for the thriftiness
// experiment E9: how often was atomic broadcast actually invoked).
type Stats struct {
	FastDelivered    uint64
	OrderedDelivered uint64
	Boundaries       uint64
}

// New creates a generic broadcaster. It owns a dedicated reliable broadcast
// group (proto+".data") and an ack protocol (proto+".ack"); the atomic
// broadcaster must be attached with AttachAbcast before Start, with this
// broadcaster's Adeliver as its delivery callback.
func New(ep *rchannel.Endpoint, proto string, members []proc.ID, rel *Relation, deliver DeliverFunc, opts ...Option) *Broadcaster {
	g := &Broadcaster{
		ep:            ep,
		self:          ep.Self(),
		quorum:        proc.Majority(len(members)),
		rel:           rel,
		deliver:       deliver,
		proto:         proto,
		flushLimit:    1 << 14,
		events:        eventq.New[event](),
		epoch:         1,
		pending:       make(map[gid]gFast),
		deliveredFast: make(map[proc.ID]*seqset.Set),
		fifoNext:      make(map[proc.ID]uint64),
		unswept:       make(map[gid]struct{}),
		acks:          make(map[gid]map[uint64]map[proc.ID]struct{}),
		closeSenders:  make(map[proc.ID]struct{}),
		closeUnion:    make(map[gid]struct{}),
		stop:          make(chan struct{}),
	}
	for _, m := range members {
		if m != g.self {
			g.others = append(g.others, m)
		}
	}
	for _, o := range opts {
		o(g)
	}
	g.rb = rbcast.New(ep, proto+".data", members, func(d rbcast.Delivery) {
		g.events.Push(event{fast: &d})
	})
	ep.Handle(proto+".ack", func(from proc.ID, body any) {
		a, ok := body.(gAck)
		if !ok {
			return
		}
		g.events.Push(event{ack: &ackEvent{from: from, ack: a}})
	})
	return g
}

// AttachAbcast wires the atomic broadcaster used for the ordered path. Its
// delivery callback must be this broadcaster's Adeliver method.
func (g *Broadcaster) AttachAbcast(ab *abcast.Broadcaster) {
	g.ab = ab
}

// Adeliver is the abcast delivery callback (total-order input stream).
func (g *Broadcaster) Adeliver(d abcast.Delivery) {
	g.events.Push(event{adlv: &d})
}

// Start launches the event loop. AttachAbcast must have been called.
func (g *Broadcaster) Start() {
	g.startOnce.Do(func() {
		if g.ab == nil {
			panic("gbcast: Start without AttachAbcast")
		}
		g.rb.Start()
		g.done.Add(1)
		go g.loop()
	})
}

// Stop terminates the event loop (the attached abcast is stopped by its
// owner).
func (g *Broadcaster) Stop() {
	select {
	case <-g.stop:
		return
	default:
		close(g.stop)
	}
	g.done.Wait()
	g.rb.Stop()
	g.events.Close()
}

// Broadcast g-broadcasts body under the given class.
func (g *Broadcaster) Broadcast(class string, body any) error {
	if err := g.rel.Validate(class); err != nil {
		return err
	}
	if g.rel.Ordered(class) {
		if err := g.ab.Broadcast(gOrd{Class: class, Body: body}); err != nil {
			return fmt.Errorf("gbcast ordered: %w", err)
		}
		return nil
	}
	if err := g.rb.Broadcast(gFast{Class: class, Body: body}); err != nil {
		return fmt.Errorf("gbcast fast: %w", err)
	}
	return nil
}

// Stats returns delivery counters.
func (g *Broadcaster) Stats() Stats {
	reply := make(chan Stats, 1)
	g.events.Push(event{query: &statsQuery{reply: reply}})
	select {
	case s := <-reply:
		return s
	case <-g.stop:
		return Stats{}
	}
}

func (g *Broadcaster) loop() {
	defer g.done.Done()
	for {
		ev, ok := g.events.TryPop()
		if !ok {
			select {
			case <-g.stop:
				return
			case <-g.events.Wait():
				continue
			}
		}
		switch {
		case ev.fast != nil:
			g.onFast(*ev.fast)
		case ev.ack != nil:
			g.onAck(ev.ack.from, ev.ack.ack)
		case ev.adlv != nil:
			g.onAdeliver(*ev.adlv)
		case ev.query != nil:
			ev.query.reply <- Stats{
				FastDelivered:    g.statFast,
				OrderedDelivered: g.statOrdered,
				Boundaries:       g.statBoundary,
			}
		}
	}
}

func (g *Broadcaster) onFast(d rbcast.Delivery) {
	f, ok := d.Body.(gFast)
	if !ok {
		return
	}
	id := gid{Origin: d.Origin, Seq: d.Seq}
	if g.deliveredSet(id.Origin).Contains(id.Seq) {
		return
	}
	if _, dup := g.pending[id]; dup {
		return
	}
	g.pending[id] = f
	if g.closing {
		g.deferredAcks = append(g.deferredAcks, id)
		// A body we were waiting for may have arrived.
		g.tryCompleteBoundary()
		return
	}
	g.sendAck(id)
	g.checkFast(id)
	g.maybeAutoFlush()
}

// sendAck acknowledges id in the current epoch: record it locally (self-ack
// plus unswept) and notify the other members.
func (g *Broadcaster) sendAck(id gid) {
	g.unswept[id] = struct{}{}
	g.ackSet(id, g.epoch)[g.self] = struct{}{}
	_ = g.ep.SendAll(g.others, g.proto+".ack", gAck{ID: id, Epoch: g.epoch})
}

func (g *Broadcaster) onAck(from proc.ID, a gAck) {
	if g.deliveredSet(a.ID.Origin).Contains(a.ID.Seq) {
		return
	}
	g.ackSet(a.ID, a.Epoch)[from] = struct{}{}
	if !g.closing && a.Epoch == g.epoch {
		g.checkFast(a.ID)
	}
}

// checkFast g-delivers id if it is pending, next in its origin's FIFO
// order, and acknowledged by a majority in the current epoch.
func (g *Broadcaster) checkFast(id gid) {
	if g.closing {
		return
	}
	if _, ok := g.pending[id]; !ok {
		return
	}
	if next := g.fifoNextFor(id.Origin); id.Seq != next {
		return
	}
	if len(g.ackSet(id, g.epoch)) < g.quorum {
		return
	}
	g.deliverFast(id)
	// Delivering id may unblock its FIFO successor.
	g.checkFast(gid{Origin: id.Origin, Seq: id.Seq + 1})
}

func (g *Broadcaster) deliverFast(id gid) {
	f := g.pending[id]
	delete(g.pending, id)
	g.deliveredSet(id.Origin).Add(id.Seq)
	g.fifoNext[id.Origin] = id.Seq + 1
	delete(g.acks, id)
	g.statFast++
	if g.deliver != nil && f.Class != flushClass {
		g.deliver(Delivery{Origin: id.Origin, Class: f.Class, Body: f.Body})
	}
}

func (g *Broadcaster) onAdeliver(d abcast.Delivery) {
	switch body := d.Body.(type) {
	case gOrd:
		g.onOrdered(d.Origin, body)
	case gClose:
		g.onClose(d.Origin, body)
	}
}

func (g *Broadcaster) onOrdered(origin proc.ID, o gOrd) {
	dlv := Delivery{Origin: origin, Class: o.Class, Body: o.Body}
	if !g.rel.HasFastClasses() {
		// Degenerate case "everything conflicts": no fast messages can
		// exist, so no boundary is needed; the abcast order is the g-order.
		g.emitOrdered(dlv)
		return
	}
	if g.closing {
		g.queuedOrdered = append(g.queuedOrdered, dlv)
		return
	}
	g.closing = true
	g.queuedOrdered = append(g.queuedOrdered[:0], dlv)
	g.closeSenders = make(map[proc.ID]struct{})
	g.closeUnion = make(map[gid]struct{})
	unswept := make([]gid, 0, len(g.unswept))
	for id := range g.unswept {
		unswept = append(unswept, id)
	}
	sortGids(unswept)
	if err := g.ab.Broadcast(gClose{Epoch: g.epoch, Unswept: unswept}); err != nil {
		// The abcast layer only fails on encoding bugs; surface loudly.
		panic(fmt.Sprintf("gbcast: broadcast CLOSE: %v", err))
	}
}

func (g *Broadcaster) onClose(origin proc.ID, c gClose) {
	if !g.closing || c.Epoch != g.epoch {
		return // stale CLOSE beyond the first majority, ignored everywhere
	}
	if _, dup := g.closeSenders[origin]; dup {
		return
	}
	if len(g.closeSenders) >= g.quorum {
		return
	}
	g.closeSenders[origin] = struct{}{}
	for _, id := range c.Unswept {
		g.closeUnion[id] = struct{}{}
	}
	g.tryCompleteBoundary()
}

// tryCompleteBoundary finishes the epoch once a majority of CLOSE messages
// arrived in the stream and every body in U is locally available.
func (g *Broadcaster) tryCompleteBoundary() {
	if !g.closing || len(g.closeSenders) < g.quorum {
		return
	}
	sweep := make([]gid, 0, len(g.closeUnion))
	for id := range g.closeUnion {
		if g.deliveredSet(id.Origin).Contains(id.Seq) {
			continue
		}
		if _, ok := g.pending[id]; !ok {
			// Body not yet received; reliable broadcast guarantees arrival.
			return
		}
		sweep = append(sweep, id)
	}
	sortGids(sweep)

	// Deliver the swept fast messages, then the ordered batch — the same
	// deterministic order at every process.
	for _, id := range sweep {
		g.deliverFast(id)
	}
	for _, dlv := range g.queuedOrdered {
		g.emitOrdered(dlv)
	}
	g.queuedOrdered = nil
	for id := range g.closeUnion {
		delete(g.unswept, id)
	}
	g.closeSenders = make(map[proc.ID]struct{})
	g.closeUnion = make(map[gid]struct{})
	g.statBoundary++
	g.epoch++
	g.closing = false
	g.flushInFlight = false

	// Re-acknowledge everything still pending in the new epoch, in FIFO
	// order for determinism of ack traffic.
	g.deferredAcks = g.deferredAcks[:0]
	ids := make([]gid, 0, len(g.pending))
	for id := range g.pending {
		ids = append(ids, id)
	}
	sortGids(ids)
	for _, id := range ids {
		g.sendAck(id)
	}
	for _, id := range ids {
		g.checkFast(id)
	}
	g.maybeAutoFlush()
}

func (g *Broadcaster) emitOrdered(d Delivery) {
	g.statOrdered++
	if g.deliver != nil && d.Class != flushClass {
		g.deliver(d)
	}
}

// maybeAutoFlush bounds the unswept set by forcing a garbage-collection
// boundary when it grows past the limit.
func (g *Broadcaster) maybeAutoFlush() {
	if g.flushLimit <= 0 || g.flushInFlight || g.closing {
		return
	}
	if len(g.unswept) < g.flushLimit {
		return
	}
	g.flushInFlight = true
	_ = g.ab.Broadcast(gOrd{Class: flushClass})
}

func (g *Broadcaster) deliveredSet(origin proc.ID) *seqset.Set {
	set, ok := g.deliveredFast[origin]
	if !ok {
		set = seqset.New()
		g.deliveredFast[origin] = set
	}
	return set
}

func (g *Broadcaster) fifoNextFor(origin proc.ID) uint64 {
	next, ok := g.fifoNext[origin]
	if !ok {
		next = 1
		g.fifoNext[origin] = 1
	}
	return next
}

func (g *Broadcaster) ackSet(id gid, epoch uint64) map[proc.ID]struct{} {
	byEpoch, ok := g.acks[id]
	if !ok {
		byEpoch = make(map[uint64]map[proc.ID]struct{})
		g.acks[id] = byEpoch
	}
	set, ok := byEpoch[epoch]
	if !ok {
		set = make(map[proc.ID]struct{})
		byEpoch[epoch] = set
	}
	return set
}

func sortGids(ids []gid) {
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Origin != ids[j].Origin {
			return ids[i].Origin < ids[j].Origin
		}
		return ids[i].Seq < ids[j].Seq
	})
}
