package gbcast

import (
	"testing"
	"testing/quick"
)

func TestDefaultRelationMatchesPaperTable(t *testing.T) {
	// Section 3.3:          rbcast        abcast
	//   rbcast            no conflict    conflict
	//   abcast             conflict      conflict
	r := DefaultRelation()
	if r.Conflicts(ClassRbcast, ClassRbcast) {
		t.Error("rbcast must not conflict with itself")
	}
	if !r.Conflicts(ClassRbcast, ClassAbcast) || !r.Conflicts(ClassAbcast, ClassRbcast) {
		t.Error("rbcast/abcast must conflict (symmetrically)")
	}
	if !r.Conflicts(ClassAbcast, ClassAbcast) {
		t.Error("abcast must conflict with itself")
	}
	if r.Ordered(ClassRbcast) {
		t.Error("rbcast is a fast class")
	}
	if !r.Ordered(ClassAbcast) {
		t.Error("abcast is an ordered class")
	}
	if !r.HasFastClasses() {
		t.Error("default relation has a fast class")
	}
}

func TestPassiveRelationMatchesPaperTable(t *testing.T) {
	// Section 3.2.3:       update        primary-change
	//   update           no conflict      conflict
	//   primary-change    conflict        conflict
	r := NewRelationBuilder().
		Conflict("primary-change", "primary-change").
		Conflict("update", "primary-change").
		Class("update").
		Build()
	if r.Conflicts("update", "update") {
		t.Error("updates must not conflict with each other")
	}
	if !r.Conflicts("update", "primary-change") {
		t.Error("update/primary-change must conflict")
	}
	if r.Ordered("update") || !r.Ordered("primary-change") {
		t.Error("classification wrong")
	}
}

func TestConflictingFastClassesPromoted(t *testing.T) {
	// Two classes that conflict with each other but not themselves cannot
	// both use the fast path; the builder promotes both to ordered.
	r := NewRelationBuilder().Conflict("x", "y").Build()
	if !r.Ordered("x") || !r.Ordered("y") {
		t.Error("conflicting fast classes must be promoted to ordered")
	}
	if r.HasFastClasses() {
		t.Error("no fast class should remain")
	}
}

func TestUnknownClassValidation(t *testing.T) {
	r := DefaultRelation()
	if err := r.Validate("nope"); err == nil {
		t.Error("unknown class accepted")
	}
	if err := r.Validate(ClassRbcast); err != nil {
		t.Errorf("known class rejected: %v", err)
	}
}

func TestExtendWithOrderedClass(t *testing.T) {
	r := DefaultRelation().ExtendWithOrderedClass("_view")
	if !r.Ordered("_view") {
		t.Error("extension class must be ordered")
	}
	for _, c := range []string{ClassRbcast, ClassAbcast, "_view"} {
		if !r.Conflicts("_view", c) {
			t.Errorf("_view must conflict with %q", c)
		}
	}
	// The original classes keep their classification.
	if r.Ordered(ClassRbcast) || !r.Ordered(ClassAbcast) {
		t.Error("extension changed existing classification")
	}
	// The original relation is untouched.
	if DefaultRelation().Known("_view") {
		t.Error("ExtendWithOrderedClass mutated the receiver's declarations")
	}
}

// Property: the invariant the delivery protocol relies on — after Build,
// two distinct classes that conflict never are both fast.
func TestNoConflictingFastPairs(t *testing.T) {
	classNames := []string{"a", "b", "c", "d"}
	prop := func(pairBits uint16, selfBits uint8) bool {
		b := NewRelationBuilder()
		for _, c := range classNames {
			b.Class(c)
		}
		k := 0
		for i := 0; i < len(classNames); i++ {
			if selfBits&(1<<i) != 0 {
				b.Conflict(classNames[i], classNames[i])
			}
			for j := i + 1; j < len(classNames); j++ {
				if pairBits&(1<<k) != 0 {
					b.Conflict(classNames[i], classNames[j])
				}
				k++
			}
		}
		r := b.Build()
		for _, x := range classNames {
			for _, y := range classNames {
				if x != y && r.Conflicts(x, y) && !r.Ordered(x) && !r.Ordered(y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
