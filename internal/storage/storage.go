// Package storage is the pluggable durability layer under replication: an
// ordered record log (the WAL) plus an atomic snapshot slot, keyed by the
// replica's commit index.
//
// The contract mirrors what the replication layer needs and nothing more:
//
//   - Append buffers one record of the totally ordered command sequence;
//     indices are strictly increasing (a batch record carries the index the
//     replica stands at AFTER applying it, so indices may jump).
//   - Sync makes everything appended so far durable. The replication layer
//     calls it once per commit window (riding the group-commit batcher), so
//     durability costs one fsync per window, not per op.
//   - SaveSnapshot atomically replaces the snapshot slot; TruncateBefore
//     then retires WAL segments wholly covered by it.
//   - Replay streams the records after an index, in order — at most the
//     valid prefix of what was appended: a torn tail (power loss mid-write)
//     is detected and truncated at open, never surfaced as a record.
//
// Engines must be safe for concurrent use: the delivery goroutine appends
// while a background compaction saves snapshots and truncates.
package storage

import "errors"

// Record is one appended WAL entry: an opaque payload at a commit index.
type Record struct {
	Index uint64
	Data  []byte
}

// ErrClosed is returned by every operation after Close (or Kill).
var ErrClosed = errors.New("storage: engine closed")

// Engine is the storage contract the replication layer binds to.
type Engine interface {
	// Append buffers one record. Index must exceed every previously
	// appended (or replayed) index. Buffered records are NOT durable until
	// Sync; an engine may lose any unsynced suffix on a crash.
	Append(rec Record) error
	// Sync makes all appended records durable (one fsync on a file engine).
	//gcsvet:blocking
	Sync() error
	// SaveSnapshot atomically replaces the snapshot slot with state
	// standing at index. Older snapshots are retired.
	//gcsvet:blocking
	SaveSnapshot(index uint64, data []byte) error
	// LoadSnapshot returns the newest intact snapshot, ok=false when none.
	LoadSnapshot() (index uint64, data []byte, ok bool, err error)
	// Replay streams the records with Index > from, in ascending order.
	// Only intact records are surfaced: a torn or corrupt tail is cut, not
	// returned. fn returning an error aborts the replay with that error.
	Replay(from uint64, fn func(rec Record) error) error
	// TruncateBefore retires WAL segments whose every record has
	// Index <= index (the snapshot covers them). The active segment
	// survives regardless.
	TruncateBefore(index uint64) error
	// Stats returns a snapshot of the engine's accounting.
	Stats() Stats
	// Close flushes, syncs and releases the engine.
	Close() error
}

// Stats is an engine's accounting, shaped for the gcs_storage_* telemetry
// read-throughs.
type Stats struct {
	Appends       uint64 // records appended this process
	AppendedBytes uint64 // payload bytes appended this process
	Syncs         uint64 // Sync calls that hit the medium
	Segments      int    // live WAL segments
	WALBytes      int64  // bytes across live segments (including buffered)
	SnapshotIndex uint64 // index of the snapshot slot (0 = none)
	SnapshotBytes int64  // size of the snapshot slot
	Truncated     uint64 // segments retired by TruncateBefore
	TornTails     uint64 // invalid tails cut during open-time recovery
}
