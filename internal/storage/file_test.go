package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func collect(t *testing.T, e Engine, from uint64) []Record {
	t.Helper()
	var out []Record
	if err := e.Replay(from, func(rec Record) error {
		out = append(out, Record{Index: rec.Index, Data: bytes.Clone(rec.Data)})
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func appendN(t *testing.T, e Engine, from, n uint64, size int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		data := bytes.Repeat([]byte{byte(i)}, size)
		binary.LittleEndian.PutUint64(data[:8], i)
		if err := e.Append(Record{Index: i, Data: data}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, e, 1, 100, 64)
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	recs := collect(t, e2, 0)
	if len(recs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(recs))
	}
	for i, r := range recs {
		if r.Index != uint64(i+1) {
			t.Fatalf("record %d has index %d", i, r.Index)
		}
		if got := binary.LittleEndian.Uint64(r.Data[:8]); got != r.Index {
			t.Fatalf("record %d payload says %d", r.Index, got)
		}
	}
	if got := collect(t, e2, 60); len(got) != 40 || got[0].Index != 61 {
		t.Fatalf("replay from 60: %d records starting %d", len(got), got[0].Index)
	}
}

func TestFileAppendOrdering(t *testing.T) {
	e, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Append(Record{Index: 5, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := e.Append(Record{Index: 5, Data: []byte("x")}); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if err := e.Append(Record{Index: 3, Data: []byte("x")}); err == nil {
		t.Fatal("regressing index accepted")
	}
	if err := e.Append(Record{Index: 9, Data: []byte("x")}); err != nil {
		t.Fatalf("gapped forward index rejected: %v", err)
	}
}

func TestFileRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Config{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, e, 1, 200, 128) // ~28 KiB: several segments
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	if err := e.SaveSnapshot(150, []byte("state@150")); err != nil {
		t.Fatal(err)
	}
	if err := e.TruncateBefore(150); err != nil {
		t.Fatal(err)
	}
	st2 := e.Stats()
	if st2.Segments >= st.Segments {
		t.Fatalf("truncate retired nothing: %d -> %d segments", st.Segments, st2.Segments)
	}
	if st2.Truncated == 0 {
		t.Fatal("Truncated counter not bumped")
	}
	// Records past the snapshot must survive truncation.
	recs := collect(t, e, 150)
	if len(recs) != 50 || recs[0].Index != 151 || recs[len(recs)-1].Index != 200 {
		t.Fatalf("post-truncate replay: %d records [%d..%d]", len(recs), recs[0].Index, recs[len(recs)-1].Index)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: snapshot + tail must still line up.
	e2, err := Open(dir, Config{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	idx, data, ok, err := e2.LoadSnapshot()
	if err != nil || !ok || idx != 150 || string(data) != "state@150" {
		t.Fatalf("snapshot after reopen: idx=%d ok=%v err=%v data=%q", idx, ok, err, data)
	}
	if recs := collect(t, e2, idx); len(recs) != 50 {
		t.Fatalf("tail after reopen: %d records", len(recs))
	}
}

func TestFileKillLosesOnlyUnsynced(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, e, 1, 50, 64)
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	appendN(t, e, 51, 50, 64) // never synced
	e.Kill()

	e2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	recs := collect(t, e2, 0)
	if len(recs) < 50 {
		t.Fatalf("lost synced records: only %d survive", len(recs))
	}
	// Unsynced records MAY survive (buffer boundaries), but whatever
	// survives must be a contiguous prefix.
	for i, r := range recs {
		if r.Index != uint64(i+1) {
			t.Fatalf("gap after kill: record %d has index %d", i, r.Index)
		}
	}
}

func TestFileTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, e, 1, 20, 64)
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("glob: %v (%d segs)", err, len(segs))
	}
	// Tear the file mid-frame: chop 30 bytes off the end.
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-30); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Stats().TornTails != 1 {
		t.Fatalf("TornTails=%d, want 1", e2.Stats().TornTails)
	}
	recs := collect(t, e2, 0)
	if len(recs) != 19 {
		t.Fatalf("torn tail: %d records, want 19", len(recs))
	}
	// The engine must accept appends continuing after the cut.
	if err := e2.Append(Record{Index: 20, Data: []byte("again")}); err != nil {
		t.Fatalf("append after tear: %v", err)
	}
	if err := e2.Sync(); err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, e2, 0); len(recs) != 20 {
		t.Fatalf("after re-append: %d records", len(recs))
	}
}

func TestFileCorruptMiddleCutsLog(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Config{SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, e, 1, 60, 100) // several segments
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) < 3 {
		t.Fatalf("glob: %v (%d segs)", err, len(segs))
	}
	// Flip a byte in the middle of the second segment: everything from that
	// frame on — including later segments — must be discarded.
	raw, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(segs[1], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(dir, Config{SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	recs := collect(t, e2, 0)
	if len(recs) == 0 || len(recs) >= 60 {
		t.Fatalf("corrupt middle: %d records survive", len(recs))
	}
	for i, r := range recs {
		if r.Index != uint64(i+1) {
			t.Fatalf("gap after corruption cut: record %d has index %d", i, r.Index)
		}
	}
	// Later segments must be gone from disk, not just skipped.
	left, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(left) >= len(segs) {
		t.Fatalf("later segments not deleted: %d of %d remain", len(left), len(segs))
	}
}

func TestFileSnapshotAtomicity(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshot(10, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshot(20, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Only the newest snapshot remains; corrupt it and reopen: the engine
	// must come up empty rather than serve bad state.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("%d snapshots on disk, want 1", len(snaps))
	}
	raw, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(snaps[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if _, _, ok, err := e2.LoadSnapshot(); ok || err != nil {
		t.Fatalf("corrupt snapshot surfaced: ok=%v err=%v", ok, err)
	}
}

func TestFileStaleTmpFilesRemoved(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snap-00000000000000000005.snap.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("%d tmp files survive open", len(tmps))
	}
}

func TestMemoryEngine(t *testing.T) {
	e := NewMemory()
	appendN(t, e, 1, 30, 32)
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshot(20, []byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := e.TruncateBefore(20); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, e, 20)
	if len(recs) != 10 || recs[0].Index != 21 {
		t.Fatalf("memory truncate/replay: %d records", len(recs))
	}
	if err := e.Append(Record{Index: 30, Data: nil}); err == nil {
		t.Fatal("memory engine accepted duplicate index")
	}
	st := e.Stats()
	if st.Appends != 30 || st.Syncs != 1 || st.SnapshotIndex != 20 {
		t.Fatalf("memory stats: %+v", st)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Append(Record{Index: 31}); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}
}

func TestFileEngineIsEngine(t *testing.T) {
	var _ Engine = (*File)(nil)
	var _ Engine = (*Memory)(nil)
}

func BenchmarkFileAppendSync(b *testing.B) {
	e, err := Open(b.TempDir(), Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	data := bytes.Repeat([]byte("x"), 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Append(Record{Index: uint64(i + 1), Data: data}); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 { // one fsync per 64-op window, like the batcher
			if err := e.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestFileManySegmentsReopen(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Config{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, e, 1, 300, 64)
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 3; cycle++ {
		e, err := Open(dir, Config{SegmentBytes: 1 << 10})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		recs := collect(t, e, 0)
		want := 300 + cycle*10
		if len(recs) != want {
			t.Fatalf("cycle %d: %d records, want %d", cycle, len(recs), want)
		}
		appendN(t, e, uint64(want+1), 10, 64)
		if err := e.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFileReplaySkipsCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, Config{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	appendN(t, e, 1, 100, 64)
	var calls int
	if err := e.Replay(90, func(rec Record) error {
		calls++
		if rec.Index <= 90 {
			return fmt.Errorf("leaked covered record %d", rec.Index)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 10 {
		t.Fatalf("replay from 90 surfaced %d records", calls)
	}
}
