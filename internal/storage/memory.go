package storage

import (
	"fmt"
	"slices"
	"sync"
)

// Memory is the in-process engine: the zero-behavior-change default. It
// keeps the same interface semantics as the file engine (strictly
// increasing indices, snapshot slot, truncation) with no durability —
// useful for tests, benchmark baselines (E17's in-memory rows) and
// deployments that explicitly accept RAM-only state.
type Memory struct {
	mu        sync.Mutex
	recs      []Record
	lastIndex uint64
	snapIndex uint64
	snap      []byte
	stats     Stats
	closed    bool
}

// NewMemory returns an empty in-memory engine.
func NewMemory() *Memory { return &Memory{} }

// Append implements Engine.
func (m *Memory) Append(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if rec.Index <= m.lastIndex {
		return fmt.Errorf("storage: append index %d not after %d", rec.Index, m.lastIndex)
	}
	m.recs = append(m.recs, Record{Index: rec.Index, Data: slices.Clone(rec.Data)})
	m.lastIndex = rec.Index
	m.stats.Appends++
	m.stats.AppendedBytes += uint64(len(rec.Data))
	m.stats.WALBytes += int64(len(rec.Data))
	return nil
}

// Sync implements Engine (a memory engine has no medium; counted anyway so
// fsync-per-window accounting is comparable across engines).
func (m *Memory) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.stats.Syncs++
	return nil
}

// SaveSnapshot implements Engine.
func (m *Memory) SaveSnapshot(index uint64, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.snapIndex = index
	m.snap = slices.Clone(data)
	return nil
}

// LoadSnapshot implements Engine.
func (m *Memory) LoadSnapshot() (uint64, []byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, nil, false, ErrClosed
	}
	if m.snap == nil {
		return 0, nil, false, nil
	}
	return m.snapIndex, slices.Clone(m.snap), true, nil
}

// Replay implements Engine.
func (m *Memory) Replay(from uint64, fn func(rec Record) error) error {
	m.mu.Lock()
	recs := slices.Clone(m.recs)
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return ErrClosed
	}
	for _, r := range recs {
		if r.Index <= from {
			continue
		}
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// TruncateBefore implements Engine.
func (m *Memory) TruncateBefore(index uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	kept := m.recs[:0]
	for _, r := range m.recs {
		if r.Index > index {
			kept = append(kept, r)
		} else {
			m.stats.WALBytes -= int64(len(r.Data))
		}
	}
	m.recs = kept
	return nil
}

// Stats implements Engine.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	if len(m.recs) > 0 {
		st.Segments = 1
	}
	st.SnapshotIndex = m.snapIndex
	st.SnapshotBytes = int64(len(m.snap))
	return st
}

// Close implements Engine.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
