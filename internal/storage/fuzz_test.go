package storage

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the segment decoder — torn tails,
// bit flips, garbage — and checks the recovery invariants: never panic,
// never surface a record that wasn't appended (phantoms), and always keep
// the valid prefix of what was synced before the corruption point.
//
// Strategy: build a real segment from fuzz-chosen record sizes, then let
// the fuzzer mutate it (truncate at mut, XOR a byte). Whatever Open+Replay
// recover must be a prefix of the original records, verified payload by
// payload.
func FuzzWALReplay(f *testing.F) {
	f.Add(uint16(5), uint16(32), uint16(0), byte(0))
	f.Add(uint16(20), uint16(1), uint16(7), byte(0xFF))
	f.Add(uint16(1), uint16(200), uint16(50), byte(0x01))
	f.Add(uint16(50), uint16(16), uint16(999), byte(0x80))
	f.Add(uint16(0), uint16(0), uint16(0), byte(0))

	f.Fuzz(func(t *testing.T, n, size, mut uint16, flip byte) {
		if n > 200 {
			n = n % 200
		}
		if size > 1024 {
			size = size % 1024
		}
		dir := t.TempDir()
		e, err := Open(dir, Config{SegmentBytes: 2 << 10})
		if err != nil {
			t.Fatal(err)
		}
		var originals [][]byte
		for i := uint64(1); i <= uint64(n); i++ {
			data := bytes.Repeat([]byte{byte(i)}, int(size)+8)
			binary.LittleEndian.PutUint64(data[:8], i)
			if err := e.Append(Record{Index: i, Data: data}); err != nil {
				t.Fatal(err)
			}
			originals = append(originals, data)
		}
		if err := e.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}

		// Mutate the LAST segment: truncate at mut (mod size) and, when
		// flip != 0, XOR the byte there. This models torn tails and media
		// bit rot at a fuzzer-chosen offset.
		segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if len(segs) > 0 {
			target := segs[len(segs)-1]
			raw, err := os.ReadFile(target)
			if err != nil {
				t.Fatal(err)
			}
			if len(raw) > 0 {
				cut := int(mut) % (len(raw) + 1)
				raw = raw[:cut]
				if flip != 0 && cut > 0 {
					raw[cut-1] ^= flip
				}
				if err := os.WriteFile(target, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}

		// Reopen and replay: must not panic, must recover a clean prefix.
		e2, err := Open(dir, Config{SegmentBytes: 2 << 10})
		if err != nil {
			t.Fatalf("open after mutation: %v", err)
		}
		defer e2.Close()
		next := uint64(1)
		if err := e2.Replay(0, func(rec Record) error {
			if rec.Index != next {
				t.Fatalf("non-contiguous recovery: got index %d, want %d", rec.Index, next)
			}
			if rec.Index > uint64(len(originals)) {
				t.Fatalf("phantom record %d (only %d appended)", rec.Index, len(originals))
			}
			if !bytes.Equal(rec.Data, originals[rec.Index-1]) {
				t.Fatalf("record %d payload corrupted silently", rec.Index)
			}
			next++
			return nil
		}); err != nil {
			t.Fatalf("replay: %v", err)
		}

		// Appends must resume cleanly after recovery.
		if err := e2.Append(Record{Index: next, Data: []byte("resume")}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := e2.Sync(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot reader: any
// input must either round out to valid data or fail cleanly — never panic.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 0, 0, 0})
	valid := make([]byte, 4+5)
	copy(valid[4:], "hello")
	binary.LittleEndian.PutUint32(valid[:4], 0x3610A686) // crc32("hello")
	f.Add(valid)

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "snap-00000000000000000001.snap")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		e, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer e.Close()
		if _, _, ok, err := e.LoadSnapshot(); ok && err != nil {
			t.Fatalf("ok with error: %v", err)
		}
	})
}
