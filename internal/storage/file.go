package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// File is the durable engine: a segmented write-ahead log plus an atomic
// snapshot slot, both living in one directory.
//
// Layout:
//
//	wal-<first index, 20 digits>.seg   record frames, append-only
//	snap-<index, 20 digits>.snap       [crc32][payload], replaced atomically
//	*.tmp                              in-flight writes, deleted at open
//
// A record frame is [len u32][crc u32][index u64][payload], little endian;
// len covers index+payload, crc covers the same bytes. Appends go through a
// user-space buffer so an abrupt process death loses exactly the unsynced
// suffix — the honest power-loss model the chaos harness relies on — and
// Sync flushes the buffer and fsyncs the segment.
//
// Open-time recovery walks the segments in order and cuts the log at the
// first invalid frame (short header, oversized length, CRC mismatch,
// non-increasing index): the file is truncated there and every later
// segment is deleted, so Replay only ever surfaces a valid prefix of what
// was appended. A torn tail from a mid-write power loss is therefore
// indistinguishable from "those records were never appended" — which is
// exactly what un-synced meant.
type File struct {
	mu  sync.Mutex
	dir string
	cfg Config

	segs      []segInfo // closed + active segments, ascending first index
	f         *os.File  // active segment (nil until the first append)
	w         *bufio.Writer
	lastIndex uint64

	snapIndex uint64
	snapBytes int64

	stats  Stats
	closed bool
}

// Config tunes the file engine.
type Config struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// BufferBytes sizes the user-space write buffer (default 64 KiB).
	BufferBytes int
}

func (c *Config) applyDefaults() {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.BufferBytes <= 0 {
		c.BufferBytes = 64 << 10
	}
}

// segInfo is one on-disk segment.
type segInfo struct {
	first uint64 // index of its first record
	path  string
	size  int64 // bytes on disk (active segment: plus anything buffered)
}

const (
	frameHeader = 16       // len + crc + index
	maxFrame    = 64 << 20 // sanity bound on one record; larger lengths are corruption
	segPrefix   = "wal-"
	segSuffix   = ".seg"
	snapPrefix  = "snap-"
	snapSuffix  = ".snap"
)

// Open creates or recovers a file engine in dir.
func Open(dir string, cfg Config) (*File, error) {
	cfg.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	e := &File{dir: dir, cfg: cfg}
	if err := e.recover(); err != nil {
		return nil, err
	}
	return e, nil
}

// recover scans dir: drops tmp files, picks the newest intact snapshot,
// validates the WAL and cuts it at the first invalid frame.
func (e *File) recover() error {
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	var snaps []segInfo
	for _, ent := range entries {
		name := ent.Name()
		path := filepath.Join(e.dir, name)
		switch {
		case strings.HasSuffix(name, ".tmp"):
			_ = os.Remove(path)
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			first, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
			if err != nil {
				continue // not ours; leave it alone
			}
			info, err := ent.Info()
			if err != nil {
				return fmt.Errorf("storage: %w", err)
			}
			e.segs = append(e.segs, segInfo{first: first, path: path, size: info.Size()})
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
			if err != nil {
				continue
			}
			snaps = append(snaps, segInfo{first: idx, path: path})
		}
	}
	sort.Slice(e.segs, func(i, j int) bool { return e.segs[i].first < e.segs[j].first })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].first > snaps[j].first })

	// Newest snapshot whose CRC holds wins; everything else is retired.
	for _, s := range snaps {
		if e.snapIndex == 0 && e.snapBytes == 0 {
			if data, err := readSnapshotFile(s.path); err == nil {
				e.snapIndex, e.snapBytes = s.first, int64(len(data))
				continue
			}
		}
		_ = os.Remove(s.path)
	}

	// Validate segments in order; the first invalid frame cuts the log.
	last := uint64(0)
	for i := 0; i < len(e.segs); i++ {
		seg := &e.segs[i]
		validEnd, lastIdx, intact := scanSegment(seg.path, last)
		if lastIdx > last {
			last = lastIdx
		}
		if intact && validEnd == seg.size {
			continue
		}
		// Torn or corrupt tail: truncate this segment at the last valid
		// frame and drop every later segment — records past a tear are
		// unreachable on replay and would violate index ordering.
		e.stats.TornTails++
		if validEnd == 0 {
			_ = os.Remove(seg.path)
			for _, later := range e.segs[i+1:] {
				_ = os.Remove(later.path)
			}
			e.segs = e.segs[:i]
		} else {
			if err := os.Truncate(seg.path, validEnd); err != nil {
				return fmt.Errorf("storage: truncate torn tail: %w", err)
			}
			seg.size = validEnd
			for _, later := range e.segs[i+1:] {
				_ = os.Remove(later.path)
			}
			e.segs = e.segs[:i+1]
		}
		break
	}
	e.lastIndex = last
	if e.snapIndex > e.lastIndex {
		e.lastIndex = e.snapIndex
	}

	// Reopen the last segment for appends.
	if n := len(e.segs); n > 0 {
		f, err := os.OpenFile(e.segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		e.f = f
		e.w = bufio.NewWriterSize(f, e.cfg.BufferBytes)
	}
	return nil
}

// scanSegment walks one segment's frames. It returns the offset just past
// the last valid frame, the last valid index seen, and whether every frame
// up to EOF was valid. prev is the last index of the preceding segment
// (frames must keep indices strictly increasing across the whole log).
func scanSegment(path string, prev uint64) (validEnd int64, lastIdx uint64, intact bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, prev, false
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64
	hdr := make([]byte, frameHeader)
	lastIdx = prev
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return off, lastIdx, errors.Is(err, io.EOF)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		idx := binary.LittleEndian.Uint64(hdr[8:16])
		if length < 8 || length > maxFrame || idx <= lastIdx {
			return off, lastIdx, false
		}
		payload := make([]byte, length-8)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, lastIdx, false // short payload: torn tail
		}
		sum := crc32.ChecksumIEEE(hdr[8:16])
		sum = crc32.Update(sum, crc32.IEEETable, payload)
		if sum != crc {
			return off, lastIdx, false
		}
		off += frameHeader + int64(len(payload))
		lastIdx = idx
	}
}

// Append implements Engine.
func (e *File) Append(rec Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if rec.Index <= e.lastIndex {
		return fmt.Errorf("storage: append index %d not after %d", rec.Index, e.lastIndex)
	}
	if e.f != nil && e.activeSeg().size >= e.cfg.SegmentBytes {
		if err := e.rotateLocked(rec.Index); err != nil {
			return err
		}
	}
	if e.f == nil {
		if err := e.openSegmentLocked(rec.Index); err != nil {
			return err
		}
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(8+len(rec.Data)))
	binary.LittleEndian.PutUint64(hdr[8:16], rec.Index)
	sum := crc32.ChecksumIEEE(hdr[8:16])
	sum = crc32.Update(sum, crc32.IEEETable, rec.Data)
	binary.LittleEndian.PutUint32(hdr[4:8], sum)
	if _, err := e.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	if _, err := e.w.Write(rec.Data); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	e.activeSeg().size += frameHeader + int64(len(rec.Data))
	e.lastIndex = rec.Index
	e.stats.Appends++
	e.stats.AppendedBytes += uint64(len(rec.Data))
	return nil
}

func (e *File) activeSeg() *segInfo { return &e.segs[len(e.segs)-1] }

// openSegmentLocked starts a fresh segment whose first record will be idx.
func (e *File) openSegmentLocked(idx uint64) error {
	path := filepath.Join(e.dir, fmt.Sprintf("%s%020d%s", segPrefix, idx, segSuffix))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	e.f = f
	if e.w == nil {
		e.w = bufio.NewWriterSize(f, e.cfg.BufferBytes)
	} else {
		e.w.Reset(f)
	}
	e.segs = append(e.segs, segInfo{first: idx, path: path})
	return nil
}

// rotateLocked seals the active segment (flush + fsync, so a sealed segment
// is always fully durable) and opens a new one starting at idx.
func (e *File) rotateLocked(idx uint64) error {
	if err := e.syncLocked(); err != nil {
		return err
	}
	if err := e.f.Close(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	e.f = nil
	return e.openSegmentLocked(idx)
}

func (e *File) syncLocked() error {
	if e.f == nil {
		return nil
	}
	if err := e.w.Flush(); err != nil {
		return fmt.Errorf("storage: flush: %w", err)
	}
	if err := e.f.Sync(); err != nil {
		return fmt.Errorf("storage: fsync: %w", err)
	}
	e.stats.Syncs++
	return nil
}

// Sync implements Engine.
func (e *File) Sync() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	return e.syncLocked()
}

// SaveSnapshot implements Engine: tmp + fsync + rename + dir fsync, then
// older snapshots are retired — a crash at any point leaves either the old
// or the new snapshot intact, never a torn one.
func (e *File) SaveSnapshot(index uint64, data []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	final := filepath.Join(e.dir, fmt.Sprintf("%s%020d%s", snapPrefix, index, snapSuffix))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], crc32.ChecksumIEEE(data))
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(data)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("storage: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("storage: snapshot: %w", err)
	}
	if err := syncDir(e.dir); err != nil {
		return err
	}
	old := e.snapIndex
	e.snapIndex, e.snapBytes = index, int64(4+len(data))
	if e.lastIndex < index {
		e.lastIndex = index
	}
	if old != 0 && old != index {
		_ = os.Remove(filepath.Join(e.dir, fmt.Sprintf("%s%020d%s", snapPrefix, old, snapSuffix)))
	}
	return nil
}

// LoadSnapshot implements Engine.
func (e *File) LoadSnapshot() (uint64, []byte, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, nil, false, ErrClosed
	}
	if e.snapIndex == 0 && e.snapBytes == 0 {
		return 0, nil, false, nil
	}
	path := filepath.Join(e.dir, fmt.Sprintf("%s%020d%s", snapPrefix, e.snapIndex, snapSuffix))
	data, err := readSnapshotFile(path)
	if err != nil {
		return 0, nil, false, fmt.Errorf("storage: snapshot: %w", err)
	}
	return e.snapIndex, data, true, nil
}

// readSnapshotFile reads and CRC-checks one snapshot file.
func readSnapshotFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 4 {
		return nil, fmt.Errorf("short snapshot (%d bytes)", len(raw))
	}
	want := binary.LittleEndian.Uint32(raw[:4])
	data := raw[4:]
	if crc32.ChecksumIEEE(data) != want {
		return nil, errors.New("snapshot CRC mismatch")
	}
	return data, nil
}

// Replay implements Engine. It flushes the write buffer first so records
// appended-but-unsynced in THIS process are visible (replay within one
// process must see everything appended; durability across crashes is
// Sync's contract, not Replay's).
func (e *File) Replay(from uint64, fn func(rec Record) error) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if e.f != nil {
		if err := e.w.Flush(); err != nil {
			e.mu.Unlock()
			return fmt.Errorf("storage: flush: %w", err)
		}
	}
	segs := slices.Clone(e.segs)
	e.mu.Unlock()

	for i, seg := range segs {
		// Skip segments wholly at or below from: every record of segment i
		// precedes segment i+1's first index.
		if i+1 < len(segs) && segs[i+1].first <= from+1 {
			continue
		}
		if err := replaySegment(seg.path, from, fn); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment streams one segment's valid records with Index > from.
func replaySegment(path string, from uint64, fn func(rec Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	hdr := make([]byte, frameHeader)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return nil // EOF or torn tail: the valid prefix ends here
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		idx := binary.LittleEndian.Uint64(hdr[8:16])
		if length < 8 || length > maxFrame {
			return nil
		}
		payload := make([]byte, length-8)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil
		}
		sum := crc32.ChecksumIEEE(hdr[8:16])
		sum = crc32.Update(sum, crc32.IEEETable, payload)
		if sum != crc {
			return nil
		}
		if idx > from {
			if err := fn(Record{Index: idx, Data: payload}); err != nil {
				return err
			}
		}
	}
}

// TruncateBefore implements Engine.
func (e *File) TruncateBefore(index uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	kept := e.segs[:0]
	for i, seg := range e.segs {
		last := i == len(e.segs)-1
		// Segment i's records all precede segment i+1's first index, so it
		// is wholly covered once that first index is <= index+1.
		if !last && e.segs[i+1].first <= index+1 {
			_ = os.Remove(seg.path)
			e.stats.Truncated++
			continue
		}
		kept = append(kept, seg)
	}
	e.segs = kept
	return nil
}

// Stats implements Engine.
func (e *File) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.Segments = len(e.segs)
	for _, seg := range e.segs {
		st.WALBytes += seg.size
	}
	st.SnapshotIndex = e.snapIndex
	st.SnapshotBytes = e.snapBytes
	return st
}

// Close implements Engine: final flush + fsync, then release.
func (e *File) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	if e.f == nil {
		return nil
	}
	err := e.syncLocked()
	if cerr := e.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("storage: %w", cerr)
	}
	e.f = nil
	return err
}

// Kill simulates power loss: the engine drops its user-space buffer and
// releases the file WITHOUT flushing, so every record appended since the
// last Sync is gone — exactly what a kill -9 (or a power cut, modulo OS
// page cache) does to the process. Test-only by intent; the chaos harness
// pairs it with a seeded torn-tail mutation to model mid-fsync tears.
func (e *File) Kill() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	if e.f != nil {
		_ = e.f.Close() // buffer in e.w is deliberately NOT flushed
		e.f = nil
	}
}

// Dir returns the engine's directory.
func (e *File) Dir() string { return e.dir }

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("storage: sync dir: %w", err)
	}
	return nil
}
