package service

// Key-space sharding across parallel replicated groups.
//
// One totally ordered command sequence caps write throughput at whatever a
// single consensus pipeline can commit. Sharding runs S complete,
// independent passive-replication stacks on the same node set — each with
// its own epoch, primary, batcher, commit index and lease clock — and
// partitions the key space across them by hash, so shards commit in
// parallel and aggregate throughput scales with S.
//
// The shard map is the deterministic function ShardOf(key, S): every client
// and every gateway agree on it by construction (same hash, same S), which
// is what keeps the per-shard exactly-once guarantee intact — a retry of a
// write hashes to the same shard and meets its own (session, seq) record.
//
// Consistency is strictly PER SHARD. Each shard's commit index counts only
// its own command sequence, so a ShardedClient holds a vector of monotonic
// read tokens (one per shard) rather than a single index, and a
// linearizable read is linearizable with respect to the writes of its shard
// only. Nothing is promised ACROSS shards: there are no multi-key
// transactions, and two writes to different shards acknowledged in some
// order may be observed by readers in the other order.
//
// Wiring: the ShardedClient owns one plain Client per shard, each bound to
// its shard with its own wire session ("<session>/<shard>"), its own
// connection (per-shard primaries diverge after a partial failover, so each
// shard follows its own redirect trail) and its own seq/ack frontier.

import (
	"fmt"
	"hash/fnv"
	"time"
)

// ShardOf maps a key to a shard in [0, shards). Every client and gateway
// of a deployment must agree on the shard count.
func ShardOf(key []byte, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write(key)
	return int(h.Sum32() % uint32(shards))
}

// ShardedClientConfig parameterises a ShardedClient. The embedded
// ClientConfig applies to every per-shard client (Session becomes the base
// of the per-shard wire sessions; Shard is assigned internally).
type ShardedClientConfig struct {
	ClientConfig
	// Shards is the number of replicated groups the gateways serve (≥ 1).
	Shards int
	// ShardKey extracts the routing key from an operation. Nil uses the
	// whole op as the key — correct whenever equal ops touch equal state,
	// e.g. opaque single-key commands. Applications whose ops embed a key
	// plus a payload supply the extractor so all ops on one key colocate.
	ShardKey func(op []byte) []byte
}

// ShardedClient is the networked client of a sharded service: it routes
// every operation to its key's shard and delegates to that shard's Client,
// preserving all single-shard guarantees (exactly-once writes, per-shard
// monotonic and linearizable reads) shard-wise.
type ShardedClient struct {
	session  string
	clients  []*Client
	shardKey func(op []byte) []byte
	shards   int
}

// NewShardedClient creates one Client per shard over the given gateways.
func NewShardedClient(cfg ShardedClientConfig) (*ShardedClient, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("service: shard count %d < 1", cfg.Shards)
	}
	session := cfg.Session
	if session == "" {
		var err error
		if session, err = newSessionID(); err != nil {
			return nil, err
		}
	}
	sc := &ShardedClient{
		session:  session,
		shardKey: cfg.ShardKey,
		shards:   cfg.Shards,
	}
	for k := 0; k < cfg.Shards; k++ {
		sub := cfg.ClientConfig
		sub.Session = fmt.Sprintf("%s/%d", session, k)
		sub.Shard = k
		// Handshakes verify the deployment serves exactly this many shards;
		// assuming fewer would silently route keys to the wrong groups.
		sub.ShardCount = cfg.Shards
		cl, err := NewClient(sub)
		if err != nil {
			sc.Close()
			return nil, err
		}
		sc.clients = append(sc.clients, cl)
	}
	return sc, nil
}

// Session returns the base session ID (shard k's wire session is
// "<session>/<k>").
func (sc *ShardedClient) Session() string { return sc.session }

// Shards returns the shard count.
func (sc *ShardedClient) Shards() int { return sc.shards }

// Shard returns the per-shard client serving shard k (for tests and
// advanced callers; most code uses Call/Read).
func (sc *ShardedClient) Shard(k int) *Client { return sc.clients[k] }

// shardFor routes an op to its shard.
func (sc *ShardedClient) shardFor(op []byte) *Client {
	key := op
	if sc.shardKey != nil {
		key = sc.shardKey(op)
	}
	return sc.clients[ShardOf(key, sc.shards)]
}

// Call executes a write on the op's shard with exactly-once semantics.
func (sc *ShardedClient) Call(op []byte) ([]byte, error) {
	return sc.shardFor(op).Call(op)
}

// Read executes a read-only operation on the op's shard at the configured
// read level. Monotonic reads use that shard's token — the client's
// per-shard commit index vector — so read-your-writes holds per shard even
// when shards fail over independently.
func (sc *ShardedClient) Read(op []byte) ([]byte, error) {
	return sc.shardFor(op).Read(op)
}

// ReadAt is Read at an explicit consistency level.
func (sc *ShardedClient) ReadAt(op []byte, level ReadLevel) ([]byte, error) {
	return sc.shardFor(op).ReadAt(op, level)
}

// ReadAtMost executes a bounded-staleness read on the op's shard: any
// gateway whose replica for that shard is within maxAge of the primary's
// commit timestamps may answer locally. The bound, like every consistency
// promise here, is per shard.
func (sc *ShardedClient) ReadAtMost(op []byte, maxAge time.Duration) ([]byte, error) {
	return sc.shardFor(op).ReadAtMost(op, maxAge)
}

// Stats returns the recovery accounting summed over all per-shard clients.
func (sc *ShardedClient) Stats() ClientStats {
	var out ClientStats
	for _, cl := range sc.clients {
		if cl == nil {
			continue
		}
		st := cl.Stats()
		out.Dials += st.Dials
		out.DialFailures += st.DialFailures
		out.Redirects += st.Redirects
		out.UnavailableRetries += st.UnavailableRetries
		out.DegradedAnswers += st.DegradedAnswers
		out.TooStaleRetries += st.TooStaleRetries
	}
	return out
}

// Indexes returns the per-shard monotonic-read token vector: element k is
// the highest commit index this session has observed on shard k.
func (sc *ShardedClient) Indexes() []uint64 {
	out := make([]uint64, len(sc.clients))
	for k, cl := range sc.clients {
		out[k] = cl.LastIndex()
	}
	return out
}

// Close closes every per-shard client.
func (sc *ShardedClient) Close() {
	for _, cl := range sc.clients {
		if cl != nil {
			cl.Close()
		}
	}
}
