package service

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	mrand "math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Dialer opens a stream connection to a gateway service address. Deployments
// use transport.DialStreamTCP; deterministic tests dial memnet streams.
type Dialer func(addr string) (transport.StreamConn, error)

// ClientConfig parameterises a Client.
type ClientConfig struct {
	// Addrs are the gateway service addresses of the group, in any order.
	Addrs []string
	// Dial opens a connection to one address.
	Dial Dialer
	// Session identifies this client's session; generated when empty.
	// Reusing a session ID across client restarts resumes its dedup state.
	Session string
	// MaxInflight bounds pipelined operations awaiting responses
	// (default 32). Excess calls block until a slot frees.
	MaxInflight int
	// OpTimeout bounds one operation end to end, across all retries
	// (default 30s).
	OpTimeout time.Duration
	// RetryBackoff is the base delay between reconnect attempts; each full
	// sweep of Addrs doubles it up to 32x, jittered so clients orphaned by
	// the same crash do not reconnect in lockstep (default 10ms).
	RetryBackoff time.Duration
	// ReadLevel is the consistency level used by Read (per-call override:
	// ReadAt). The default is ReadMonotonic: reads never travel backwards
	// in time for this session, even across failover to a lagging gateway;
	// ReadLocal restores the cheaper pre-level behavior.
	ReadLevel ReadLevel
	// Shard binds this client to one of the gateways' replicated groups
	// (default 0, the whole key space on single-shard deployments). All
	// operations, redirects and monotonic tokens are relative to that
	// shard. Sharded applications use ShardedClient, which owns one Client
	// per shard, rather than setting this directly.
	Shard int
	// ShardCount, when > 0, is the total shard count this client assumes
	// of the deployment: the handshake verifies every gateway serves
	// EXACTLY that many shards and fails the client permanently otherwise.
	// Without it only Shard >= served is caught — a client assuming fewer
	// shards than the deployment would silently route keys to the wrong
	// groups. ShardedClient always sets it.
	ShardCount int
	// Sticky disables the handshake's primary-hint chase: the client stays
	// with the first gateway that answers instead of reconnecting toward
	// the primary. This is the follower/backup-read mode — Monotonic reads
	// are then served by that gateway's local replica (e.g. a rejoined
	// catch-up follower) and Linearizable reads through its read-index
	// barrier. Writes still follow NOT_PRIMARY redirects when they occur.
	Sticky bool
}

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("service: client closed")

// ErrUnavailable is the typed error of an operation that exhausted its
// OpTimeout without any gateway serving it — e.g. the entire primary set
// unreachable for longer than the timeout. The client keeps its jittered,
// bounded reconnect backoff running throughout; shorter outages are healed
// transparently by retry, and only the timeout surfaces, wrapped so
// errors.Is(err, ErrUnavailable) holds.
var ErrUnavailable = errors.New("service: unavailable")

// newSessionID generates a fresh random session identifier (shared by
// Client and ShardedClient so the wire format cannot drift).
func newSessionID() (string, error) {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", fmt.Errorf("service: session id: %w", err)
	}
	return hex.EncodeToString(buf[:]), nil
}

// call is one pending operation.
type call struct {
	seq      uint64
	op       []byte
	read     bool
	level    ReadLevel     // resolved read level (reads only)
	minIndex uint64        // monotonic token captured when the read was issued
	maxAge   time.Duration // staleness bound (ReadBoundedStaleness only)
	deadline time.Time     // OpTimeout deadline; Budget = what remains at each transmit
	done     chan struct{}
	result   []byte
	err      error
}

func (c *call) finish(result []byte, err error) {
	c.result, c.err = result, err
	close(c.done)
}

// Client is the networked Figure 8 client: it pipelines operations to the
// gateway it believes fronts the primary, follows NOT_PRIMARY redirects and
// demotion pushes, and on timeouts or broken connections reconnects
// (discovering the new primary) and retransmits every unanswered operation
// under its original (session, seq) name, so the replicated session table
// makes the retry exactly-once.
type Client struct {
	cfg     ClientConfig
	session string

	mu         sync.Mutex
	conn       transport.StreamConn
	connAddr   string // address of the current connection
	gen        int    // increments on every (re)connection
	connecting bool   // a reconnect goroutine is running
	hint       string
	rr         int // round-robin cursor into cfg.Addrs
	nextSeq    uint64
	acked      uint64          // highest contiguously acknowledged seq
	ackedSet   map[uint64]bool // acknowledged seqs above acked
	pending    map[uint64]*call
	lastIndex  uint64 // highest commit index observed in any response
	closed     bool

	window chan struct{} // pipelining semaphore
	done   chan struct{}

	permErr error // terminal misconfiguration (e.g. shard mismatch); set before Close

	dials           atomic.Uint64 // handshakes attempted
	dialFailures    atomic.Uint64 // handshakes that failed (dial, hello or welcome)
	redirects       atomic.Uint64 // primary hints chased: NOT_PRIMARY answers, demotion pushes, handshake hops
	unavailRetries  atomic.Uint64 // TIMEOUT/UNAVAILABLE answers retried on another connection
	degradedAnswers atomic.Uint64 // DEGRADED answers retried (quorumless primary failing fast)
	tooStaleRetries atomic.Uint64 // TOO_STALE answers retried (bounded-staleness reads)

	// degradedMode is set by a DEGRADED answer and cleared by the next
	// success: while set, reconnect() inserts a jittered, capped backoff
	// before re-probing — a degraded gateway is perfectly reachable, so
	// without the pause the client would handshake, retransmit and be told
	// DEGRADED again in a tight loop. degradedStreak scales that pause.
	degradedMode   atomic.Bool
	degradedStreak atomic.Uint32
}

// ClientStats is a snapshot of a client's recovery accounting: how hard it
// worked to stay connected to the right gateway. A healthy steady state has
// Dials == 1 and everything else 0; failovers and partitions show up here
// long before they surface as ErrUnavailable.
type ClientStats struct {
	Dials              uint64 // handshakes attempted
	DialFailures       uint64 // handshakes that failed
	Redirects          uint64 // primary hints chased (answers, pushes, handshake hops)
	UnavailableRetries uint64 // server TIMEOUT/UNAVAILABLE answers retried
	// DegradedAnswers counts DEGRADED answers retried — a gateway whose
	// primary is up but quorumless (the partition signature), kept apart
	// from UnavailableRetries (crashes, shutdowns, plain timeouts) so the
	// two outage shapes stay distinguishable in client-side accounting.
	DegradedAnswers uint64
	// TooStaleRetries counts TOO_STALE answers to bounded-staleness reads
	// that the client retried — at the hinted primary, or (Sticky) at the
	// same gateway after a jittered beat for the replica to catch up.
	TooStaleRetries uint64
}

// Stats returns a snapshot of the client's recovery counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Dials:              c.dials.Load(),
		DialFailures:       c.dialFailures.Load(),
		Redirects:          c.redirects.Load(),
		UnavailableRetries: c.unavailRetries.Load(),
		DegradedAnswers:    c.degradedAnswers.Load(),
		TooStaleRetries:    c.tooStaleRetries.Load(),
	}
}

// NewClient creates a client for the gateways at cfg.Addrs. The first
// connection is established lazily, so a client may be created while the
// whole group is down.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("service: no gateway addresses")
	}
	if cfg.Dial == nil {
		return nil, fmt.Errorf("service: no dialer")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 32
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 30 * time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	switch cfg.ReadLevel {
	case ReadDefault:
		cfg.ReadLevel = ReadMonotonic
	case ReadLocal, ReadMonotonic, ReadLinearizable:
	case ReadBoundedStaleness:
		// A bounded read is meaningless without its bound, which is per-call:
		// reject the level as a session default instead of silently sending
		// MaxAge=0 reads that every gateway answers BAD_READ_LEVEL.
		return nil, fmt.Errorf("service: %v needs a per-call bound: use ReadAtMost", cfg.ReadLevel)
	default:
		return nil, fmt.Errorf("service: unknown read level %v", cfg.ReadLevel)
	}
	if cfg.Shard < 0 {
		return nil, fmt.Errorf("service: negative shard %d", cfg.Shard)
	}
	session := cfg.Session
	if session == "" {
		var err error
		if session, err = newSessionID(); err != nil {
			return nil, err
		}
	}
	return &Client{
		cfg:      cfg,
		session:  session,
		ackedSet: make(map[uint64]bool),
		pending:  make(map[uint64]*call),
		window:   make(chan struct{}, cfg.MaxInflight),
		done:     make(chan struct{}),
	}, nil
}

// Session returns the client's session ID.
func (c *Client) Session() string { return c.session }

// Primary returns the client's current belief about the primary's address.
func (c *Client) Primary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hint
}

// Close aborts all pending operations and releases the connection.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.done)
	conn := c.conn
	c.conn = nil
	calls := make([]*call, 0, len(c.pending))
	for _, cl := range c.pending {
		calls = append(calls, cl)
	}
	c.pending = make(map[uint64]*call)
	err := c.errLocked()
	c.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	for _, cl := range calls {
		cl.finish(nil, err)
	}
}

// failPermanent records a terminal misconfiguration and closes the client:
// every pending and future operation fails with err instead of retrying
// forever against a deployment that can never serve this client.
func (c *Client) failPermanent(err error) {
	c.mu.Lock()
	if c.permErr == nil && !c.closed {
		c.permErr = err
	}
	c.mu.Unlock()
	c.Close()
}

// err returns the terminal error operations should fail with.
func (c *Client) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.errLocked()
}

func (c *Client) errLocked() error {
	if c.permErr != nil {
		return c.permErr
	}
	return ErrClosed
}

// Call executes a write through the replicated service and returns its
// result. Calls may be issued concurrently; up to MaxInflight are pipelined.
// An acknowledged call executed exactly once, even across primary failover.
func (c *Client) Call(op []byte) ([]byte, error) {
	return c.do(op, false, ReadDefault, 0)
}

// Read executes a read-only operation at the client's configured read level
// (ReadMonotonic unless overridden): the result is never older than any
// state this session has already observed, across reconnects and failover.
func (c *Client) Read(op []byte) ([]byte, error) {
	return c.do(op, true, c.cfg.ReadLevel, 0)
}

// ReadAt is Read at an explicit consistency level, overriding the
// configured default for this one operation.
func (c *Client) ReadAt(op []byte, level ReadLevel) ([]byte, error) {
	switch level {
	case ReadDefault:
		level = c.cfg.ReadLevel
	case ReadLocal, ReadMonotonic, ReadLinearizable:
	case ReadBoundedStaleness:
		return nil, fmt.Errorf("service: %v needs a per-call bound: use ReadAtMost", level)
	default:
		// Reject locally, like NewClient: no point burning a round trip and
		// a window slot on a guaranteed BAD_READ_LEVEL.
		return nil, fmt.Errorf("service: unknown read level %v", level)
	}
	return c.do(op, true, level, 0)
}

// ReadAtMost executes a bounded-staleness read: the answering replica's
// applied state is no older than maxAge behind the primary's commit
// timestamps. Any gateway — including one fronting a catch-up follower —
// may answer from local state within the bound; outside it the read is
// retried, at the hinted primary or (Sticky) at the same gateway after a
// jittered beat, until served or the OpTimeout lapses.
func (c *Client) ReadAtMost(op []byte, maxAge time.Duration) ([]byte, error) {
	if maxAge <= 0 {
		return nil, fmt.Errorf("service: non-positive staleness bound %v", maxAge)
	}
	return c.do(op, true, ReadBoundedStaleness, maxAge)
}

// LastIndex returns the highest replica commit index this session has
// observed — the monotonic-read token.
func (c *Client) LastIndex() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastIndex
}

func (c *Client) do(op []byte, read bool, level ReadLevel, maxAge time.Duration) ([]byte, error) {
	select {
	case c.window <- struct{}{}:
		defer func() { <-c.window }()
	case <-c.done:
		return nil, c.err()
	}

	c.mu.Lock()
	if c.closed {
		err := c.errLocked()
		c.mu.Unlock()
		return nil, err
	}
	c.nextSeq++
	cl := &call{
		seq:      c.nextSeq,
		op:       append([]byte(nil), op...),
		read:     read,
		deadline: time.Now().Add(c.cfg.OpTimeout),
		done:     make(chan struct{}),
	}
	if read {
		cl.level = level
		cl.maxAge = maxAge
		// The monotonic token is captured at issue time and stays fixed
		// across retransmissions: any replica that has reached this index
		// has applied everything the session had observed when the read
		// began.
		cl.minIndex = c.lastIndex
	}
	c.pending[cl.seq] = cl
	conn, ok := c.connLocked()
	ack := c.acked
	gen := c.gen
	c.mu.Unlock()

	if ok {
		c.transmit(conn, gen, cl, ack)
	}

	timer := time.NewTimer(c.cfg.OpTimeout)
	defer timer.Stop()
	select {
	case <-cl.done:
		return cl.result, cl.err
	case <-timer.C:
		c.abandon(cl.seq)
		kind := map[bool]string{false: "write", true: "read"}[read]
		// Terminal unavailability is the one failure the caller cannot see
		// coming; log it structured, with the recovery counters that tell
		// whether the client was dialing into a void or chasing redirects.
		slog.Warn("service: operation unavailable",
			"session", c.session, "shard", c.cfg.Shard,
			"kind", kind, "seq", cl.seq, "timeout", c.cfg.OpTimeout,
			"dials", c.dials.Load(), "dial_failures", c.dialFailures.Load(),
			"redirects", c.redirects.Load(), "retries", c.unavailRetries.Load(),
			"primary_hint", c.Primary())
		return nil, fmt.Errorf("%w: %s op %d timed out after %v",
			ErrUnavailable, kind, cl.seq, c.cfg.OpTimeout)
	case <-c.done:
		return nil, c.err()
	}
}

// abandon drops a timed-out operation and marks its seq acknowledged: the
// client will never retry it, so replicas may prune it. The operation may or
// may not have executed — the caller was told it timed out.
func (c *Client) abandon(seq uint64) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.ackedSet[seq] = true
	for c.ackedSet[c.acked+1] {
		delete(c.ackedSet, c.acked+1)
		c.acked++
	}
	c.mu.Unlock()
}

// connLocked returns the live connection if there is one; otherwise it
// ensures a reconnect goroutine is running (which will transmit every
// pending operation once connected) and returns ok=false.
func (c *Client) connLocked() (transport.StreamConn, bool) {
	if c.conn != nil {
		return c.conn, true
	}
	if !c.connecting && !c.closed {
		c.connecting = true
		go c.reconnect()
	}
	return nil, false
}

// transmit sends one operation on conn; a send failure triggers recovery
// (the op stays pending and is retransmitted on the next connection).
func (c *Client) transmit(conn transport.StreamConn, gen int, cl *call, ack uint64) {
	// The remaining OpTimeout budget travels with every transmission (as a
	// duration — client and gateway clocks need not agree), so a gateway can
	// drop the op instead of serving an answer this client has already
	// abandoned. An op with no budget left is about to fail locally; sending
	// it would only manufacture such an answer.
	budget := time.Until(cl.deadline)
	if budget <= 0 {
		return
	}
	frame, err := encodeFrame(reqFrame{
		Seq: cl.seq, Ack: ack, Op: cl.op, Shard: uint32(c.cfg.Shard),
		Read: cl.read, Level: cl.level, MinIndex: cl.minIndex,
		Budget: budget, MaxAge: cl.maxAge,
	})
	if err != nil {
		c.mu.Lock()
		delete(c.pending, cl.seq)
		c.mu.Unlock()
		cl.finish(nil, err)
		return
	}
	if conn.Send(frame) != nil {
		c.connBroken(gen)
	}
}

// connBroken invalidates generation gen's connection and starts recovery.
func (c *Client) connBroken(gen int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen || c.closed {
		return // a newer connection already exists
	}
	c.gen++
	if c.conn != nil {
		conn := c.conn
		c.conn = nil
		go conn.Close()
	}
	if !c.connecting {
		c.connecting = true
		go c.reconnect()
	}
}

// reconnect dials gateways until a session is established, then retransmits
// every pending operation in seq order. It follows primary hints: after the
// handshake it prefers the gateway fronting the primary (bounded hops, so a
// stale hint cannot cause ping-pong), but settles anywhere to serve reads
// and learn fresher hints.
func (c *Client) reconnect() {
	backoff := c.cfg.RetryBackoff
	// A DEGRADED answer breaks the connection like UNAVAILABLE, but unlike a
	// crash the degraded gateway is perfectly reachable: an immediate redial
	// handshakes fine, retransmits, and is told DEGRADED again — a tight loop
	// producing nothing but load on an already-partitioned primary. While the
	// degraded flag is up, give the group a jittered beat (doubling with the
	// streak, capped at 32x) to heal or elect before the first probe.
	if c.degradedMode.Load() {
		select {
		case <-time.After(c.degradedPause()):
		case <-c.done:
		}
	}
	for sweep := 0; ; sweep++ {
		select {
		case <-c.done:
			c.mu.Lock()
			c.connecting = false
			c.mu.Unlock()
			return
		default:
		}

		conn, addr, ok := c.attemptConnect()
		if !ok {
			// Jitter the delay across [backoff/2, backoff): every client
			// orphaned by the same primary kill would otherwise double the
			// same base in lockstep and retry the surviving gateways in
			// synchronized waves (thundering herd).
			delay := backoff/2 + mrand.N(backoff/2+1)
			select {
			case <-time.After(delay):
			case <-c.done:
			}
			if backoff < 32*c.cfg.RetryBackoff {
				backoff *= 2
			}
			continue
		}

		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			_ = conn.Close()
			return
		}
		c.gen++
		gen := c.gen
		c.conn = conn
		c.connAddr = addr
		c.connecting = false
		resend := make([]*call, 0, len(c.pending))
		for _, cl := range c.pending {
			resend = append(resend, cl)
		}
		ack := c.acked
		c.mu.Unlock()

		go c.recvLoop(conn, gen)
		sort.Slice(resend, func(i, j int) bool { return resend[i].seq < resend[j].seq })
		for _, cl := range resend {
			c.transmit(conn, gen, cl, ack)
		}
		return
	}
}

// degradedPause is the jittered beat reconnect() waits out while the
// degraded flag is up: [base/2, base] where base doubles with the streak,
// capped at 32x RetryBackoff. The result is floored strictly above zero:
// NewClient normalizes RetryBackoff, but this path must never spin even if
// a copied or mutated config smuggles in a zero base — time.After(0) here
// would turn every degraded sweep into a hot handshake/DEGRADED loop
// against an already-partitioned primary.
func (c *Client) degradedPause() time.Duration {
	shift := c.degradedStreak.Load()
	if shift > 5 {
		shift = 5
	}
	base := c.cfg.RetryBackoff << shift
	if base < time.Millisecond {
		base = time.Millisecond
	}
	return base/2 + mrand.N(base/2+1)
}

// attemptConnect tries one sweep: the primary hint first, then every
// configured address round-robin. After each handshake it follows the
// gateway's primary hint for at most two hops (so a stale hint cannot cause
// ping-pong), settling anywhere that answers if the hops run out.
func (c *Client) attemptConnect() (transport.StreamConn, string, bool) {
	c.mu.Lock()
	hint := c.hint
	start := c.rr
	c.rr = (c.rr + 1) % len(c.cfg.Addrs)
	c.mu.Unlock()

	tried := make(map[string]bool)
	candidates := make([]string, 0, len(c.cfg.Addrs)+1)
	if hint != "" {
		candidates = append(candidates, hint)
	}
	for i := 0; i < len(c.cfg.Addrs); i++ {
		candidates = append(candidates, c.cfg.Addrs[(start+i)%len(c.cfg.Addrs)])
	}
	for _, addr := range candidates {
		for hop := 0; hop < 3; hop++ {
			if addr == "" || tried[addr] {
				break
			}
			tried[addr] = true
			c.dials.Add(1)
			conn, welcome, err := c.handshake(addr)
			if err != nil {
				c.dialFailures.Add(1)
				select {
				case <-c.done:
					// The handshake failed the client permanently (shard
					// misconfiguration): dialing the remaining gateways
					// would only attach throwaway sessions.
					return nil, "", false
				default:
				}
				break // next candidate
			}
			c.mu.Lock()
			if welcome.Primary != "" {
				c.hint = welcome.Primary
			}
			c.mu.Unlock()
			if c.cfg.Sticky || welcome.IsPrimary || welcome.Primary == "" ||
				welcome.Primary == addr || tried[welcome.Primary] || hop >= 2 {
				return conn, addr, true
			}
			// This gateway fronts a backup: chase its hint.
			c.redirects.Add(1)
			_ = conn.Close()
			addr = welcome.Primary
		}
	}
	return nil, "", false
}

// handshake dials addr and completes the hello/welcome exchange.
func (c *Client) handshake(addr string) (transport.StreamConn, welcomeFrame, error) {
	conn, err := c.cfg.Dial(addr)
	if err != nil {
		return nil, welcomeFrame{}, err
	}
	hello, err := encodeFrame(helloFrame{Session: c.session, Shard: uint32(c.cfg.Shard)})
	if err != nil {
		_ = conn.Close()
		return nil, welcomeFrame{}, err
	}
	if err := conn.Send(hello); err != nil {
		_ = conn.Close()
		return nil, welcomeFrame{}, err
	}
	data, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return nil, welcomeFrame{}, err
	}
	v, err := decodeFrame(data)
	transport.PutFrame(data) // decoded: the stream frame is spent
	if err != nil {
		_ = conn.Close()
		return nil, welcomeFrame{}, err
	}
	welcome, ok := v.(welcomeFrame)
	if !ok {
		_ = conn.Close()
		return nil, welcomeFrame{}, fmt.Errorf("service: unexpected handshake frame %T", v)
	}
	// Shard-count misconfiguration is terminal: shard counts are
	// deployment-wide, so no gateway can ever serve this client — fail
	// everything fast instead of reconnecting forever (out-of-range shard)
	// or silently routing keys to the wrong groups (count mismatch).
	if welcome.Shards > 0 {
		var err error
		switch {
		case c.cfg.Shard >= welcome.Shards:
			err = fmt.Errorf("service: shard %d out of range: gateway serves %d shard(s)",
				c.cfg.Shard, welcome.Shards)
		case c.cfg.ShardCount > 0 && c.cfg.ShardCount != welcome.Shards:
			err = fmt.Errorf("service: client assumes %d shard(s), gateway serves %d",
				c.cfg.ShardCount, welcome.Shards)
		}
		if err != nil {
			_ = conn.Close()
			c.failPermanent(err)
			return nil, welcomeFrame{}, err
		}
	}
	return conn, welcome, nil
}

// recvLoop dispatches responses for one connection generation.
func (c *Client) recvLoop(conn transport.StreamConn, gen int) {
	for {
		data, err := conn.Recv()
		if err != nil {
			c.connBroken(gen)
			return
		}
		v, err := decodeFrame(data)
		transport.PutFrame(data) // decoded: the stream frame is spent
		if err != nil {
			c.connBroken(gen)
			return
		}
		switch f := v.(type) {
		case resFrame:
			c.handleResponse(gen, f)
		case pushFrame:
			// Demotion push for another shard: this session's shard keeps
			// its primary, so the connection stays useful — ignore.
			if int(f.Shard) != c.cfg.Shard {
				continue
			}
			// Demotion push: reconnect toward the new primary; pending
			// operations are retransmitted there.
			c.redirects.Add(1)
			c.mu.Lock()
			if f.Primary != "" {
				c.hint = f.Primary
			}
			c.mu.Unlock()
			c.connBroken(gen)
			return
		}
	}
}

func (c *Client) handleResponse(gen int, f resFrame) {
	switch f.Err {
	case "":
		c.complete(f.Seq, f.Result, nil, gen, f.Index)
	case errNotPrimary:
		// The op stays pending; reconnect to the hinted primary and let the
		// resend deliver it there.
		c.redirects.Add(1)
		c.mu.Lock()
		if f.Redirect != "" {
			c.hint = f.Redirect
		}
		stillPending := c.pending[f.Seq] != nil
		c.mu.Unlock()
		if stillPending {
			c.connBroken(gen)
		}
	case errTimeout, errUnavailable:
		// The gateway could not get the operation served (its replica is cut
		// off, shutting down, or being replaced). Reconnect — possibly to
		// another gateway — and retry under the same seq.
		c.unavailRetries.Add(1)
		c.connBroken(gen)
	case errDegraded:
		// The gateway's primary is up but quorumless — the partition
		// signature, counted apart from plain unavailability. Warn once per
		// degraded episode (the flag clears on the next success), then retry
		// elsewhere like UNAVAILABLE, with reconnect() pacing the re-probe.
		c.degradedAnswers.Add(1)
		c.degradedStreak.Add(1)
		// Drop the redirect hint if it points at the degraded gateway:
		// otherwise reconnect() chases it first every sweep (it still
		// handshakes fine and still claims primaryship), pinning the client
		// to the quorumless side instead of finding the majority's primary.
		c.mu.Lock()
		addr := c.connAddr
		if c.hint == addr {
			c.hint = ""
		}
		c.mu.Unlock()
		if !c.degradedMode.Swap(true) {
			slog.Warn("service: gateway degraded (quorumless primary); retrying elsewhere",
				"session", c.session, "shard", c.cfg.Shard, "seq", f.Seq,
				"gateway", addr, "degraded_answers", c.degradedAnswers.Load())
		}
		c.connBroken(gen)
	case errTooStale:
		// A bounded-staleness read found this gateway's replica outside (or
		// of unknown) staleness — retryable, the bound still has its budget.
		c.tooStaleRetries.Add(1)
		if !c.cfg.Sticky {
			// Chase the redirect: the primary is fresh by construction, so
			// reconnecting toward it serves the retransmitted read there.
			// A hint naming the gateway we are already on (the primary
			// itself answering TOO_STALE, possible before any stamped
			// delivery) falls through to the paced in-place retry below —
			// reconnecting to the same address would retransmit instantly
			// and spin until the first write stamps the state.
			c.mu.Lock()
			if f.Redirect != "" {
				c.hint = f.Redirect
			}
			elsewhere := f.Redirect != "" && f.Redirect != c.connAddr
			stillPending := c.pending[f.Seq] != nil
			c.mu.Unlock()
			if elsewhere {
				c.redirects.Add(1)
				if stillPending {
					c.connBroken(gen)
				}
				return
			}
		}
		// Sticky (follower-read) clients stay put: chasing the primary on
		// every stale answer would permanently migrate the whole read load
		// there, defeating the point of follower reads. Retry HERE after a
		// jittered beat — a catch-up follower re-enters the bound as it
		// drains — and let the OpTimeout bound the pursuit.
		go func() {
			base := c.cfg.RetryBackoff
			select {
			case <-time.After(base/2 + mrand.N(base/2+1)):
			case <-c.done:
				return
			}
			c.mu.Lock()
			cl := c.pending[f.Seq]
			conn := c.conn
			g := c.gen
			ack := c.acked
			c.mu.Unlock()
			if cl == nil || conn == nil {
				return
			}
			c.transmit(conn, g, cl, ack)
		}()
	default:
		// Terminal server-side error (PRUNED, NO_READS, BAD_READ_LEVEL,
		// application error).
		c.complete(f.Seq, nil, fmt.Errorf("service: server error: %s", f.Err), gen, 0)
	}
}

// complete resolves a pending call and advances the contiguous ack frontier.
// A successful write proves the gateway that answered fronts the primary, so
// its address becomes the primary hint; the response's commit index feeds
// the session's monotonic-read token.
func (c *Client) complete(seq uint64, result []byte, err error, gen int, index uint64) {
	c.mu.Lock()
	cl, ok := c.pending[seq]
	if ok {
		delete(c.pending, seq)
		c.ackedSet[seq] = true
		for c.ackedSet[c.acked+1] {
			delete(c.ackedSet, c.acked+1)
			c.acked++
		}
		if err == nil && !cl.read && gen == c.gen && c.connAddr != "" {
			c.hint = c.connAddr
		}
		if index > c.lastIndex {
			c.lastIndex = index
		}
	}
	c.mu.Unlock()
	if ok {
		if err == nil && c.degradedMode.Load() {
			// A served operation ends the degraded episode: re-arm the
			// one-shot WARN and reset the re-probe backoff.
			c.degradedMode.Store(false)
			c.degradedStreak.Store(0)
		}
		cl.finish(result, err)
	}
}
