package service

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

// TestShardOfStableGolden pins the shard map to known values: ShardOf is
// deployment-wide configuration — every client and every gateway, across
// processes, releases and restarts, must route a key identically, or
// (session, seq) retries would meet the wrong shard's dedup table and keys
// would silently migrate between groups. Any change to the hash is a
// breaking protocol change and must fail this test loudly.
func TestShardOfStableGolden(t *testing.T) {
	golden := []struct {
		key    string
		shards int
		want   int
	}{
		// fnv-1a 32-bit sums mod shards, computed once and FROZEN. Do not
		// "fix" these numbers to make the test pass: changing the map
		// strands every deployment's keys on the wrong shards.
		{"user:42", 2, 0}, {"user:42", 4, 2}, {"user:42", 16, 2},
		{"user:43", 4, 1}, {"user:43", 8, 5},
		{"payments", 3, 0}, {"payments", 8, 6},
		{"k", 3, 0}, {"k", 16, 10},
		{"alpha", 2, 1}, {"alpha", 4, 3}, {"alpha", 16, 11},
		{"", 4, 1}, {"", 8, 5},
		{"anything", 1, 0}, // single shard swallows everything
	}
	for _, g := range golden {
		for run := 0; run < 3; run++ {
			if got := ShardOf([]byte(g.key), g.shards); got != g.want {
				t.Fatalf("ShardOf(%q, %d) = %d, want frozen %d — the shard map is wire/deployment contract",
					g.key, g.shards, got, g.want)
			}
		}
	}
}

// TestShardOfProperties is the property-style guard of the routing
// contract ShardedClient depends on: for every shard count S in 1..16,
// ShardOf is total (in range), deterministic (same key, same shard —
// byte-content, not slice identity), and usefully uniform (no shard
// starves or hogs across a large keyspace).
func TestShardOfProperties(t *testing.T) {
	// Determinism & range over random keys, via testing/quick.
	prop := func(key []byte, sRaw uint8) bool {
		s := int(sRaw%16) + 1
		a := ShardOf(key, s)
		b := ShardOf(append([]byte(nil), key...), s) // fresh backing array
		return a == b && a >= 0 && a < s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}

	// Uniformity: over N realistic keys, every shard's share must be within
	// a generous band of N/S (fnv-1a is not cryptographic; the band guards
	// against catastrophic skew such as "everything mod 2 lands on 0", not
	// against statistical perfection).
	const n = 8192
	for s := 1; s <= 16; s++ {
		counts := make([]int, s)
		for i := 0; i < n; i++ {
			counts[ShardOf([]byte(fmt.Sprintf("key-%d", i)), s)]++
		}
		want := float64(n) / float64(s)
		for shard, got := range counts {
			if dev := math.Abs(float64(got) - want); dev > want/2 {
				t.Errorf("S=%d: shard %d holds %d of %d keys (expected ≈ %.0f ± %.0f)",
					s, shard, got, n, want, want/2)
			}
		}
	}

	// Degenerate shard counts collapse to shard 0 instead of crashing.
	for _, s := range []int{0, -1, 1} {
		if got := ShardOf([]byte("x"), s); got != 0 {
			t.Fatalf("ShardOf(x, %d) = %d, want 0", s, got)
		}
	}
}
