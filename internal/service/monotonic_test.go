package service

import (
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/transport"
)

// installReplica is a fake Replica whose commit index and readable state are
// advanced with the snapshot-install contract the gateway's monotonic fast
// path depends on: state is published BEFORE the index that stands for it
// (installSnapshotLocked restores, then advances; Snapshotter.Restore swaps
// atomically). The fake lets the test drive installs concurrently with reads
// and swap lagging replicas in via ReplaceShard.
type installReplica struct {
	idx     atomic.Uint64
	state   atomic.Uint64
	primary proc.ID
}

// install publishes state n: application state first, commit index after —
// the documented Restore/install ordering. Reversing these two stores is
// exactly the regression TestMonotonicFastPathIndexNeverAheadOfState exists
// to catch (an index the fast path trusts standing for state not yet
// readable).
func (r *installReplica) install(n uint64) {
	r.state.Store(n)
	r.idx.Store(n)
}

func (r *installReplica) read(op []byte) []byte {
	return []byte(strconv.FormatUint(r.state.Load(), 10))
}

func (r *installReplica) RequestSession(string, uint64, uint64, []byte, time.Duration) ([]byte, error) {
	return nil, replication.ErrNotPrimary
}
func (r *installReplica) Primary() proc.ID    { return r.primary }
func (r *installReplica) CommitIndex() uint64 { return r.idx.Load() }

func (r *installReplica) WaitCommit(index uint64, timeout time.Duration, abort <-chan struct{}) (uint64, error) {
	deadline := time.Now().Add(timeout)
	for {
		if got := r.idx.Load(); got >= index {
			return got, nil
		}
		if timeout > 0 && time.Now().After(deadline) {
			return 0, replication.ErrTimeout
		}
		select {
		case <-abort:
			return 0, replication.ErrTimeout
		case <-time.After(200 * time.Microsecond):
		}
	}
}

func (r *installReplica) ReadBarrier(time.Duration, <-chan struct{}) (uint64, error) {
	return r.idx.Load(), nil
}
func (r *installReplica) StateAge() (time.Duration, bool)                     { return 0, true }
func (r *installReplica) OnPrimaryChange(func(primary proc.ID, epoch uint64)) {}
func (r *installReplica) LeaseTick([]string) error                            { return nil }

// TestMonotonicFastPathIndexNeverAheadOfState pins the ordering audit on the
// gateway's monotonic fast path (gateway.go): the commit index is checked
// BEFORE the state read and fetched for the response AFTER it. Two hazards
// are exercised:
//
//  1. ReplaceShard swaps in a rebuilt, lagging replica while the session
//     holds a token from the old one. The fast-path check must fail and the
//     read must park until the new replica's installs catch up — a gateway
//     that read state before (or without) checking the index would serve
//     state older than the session has already observed.
//  2. Concurrent installs race every fast-path read. Because installs
//     publish state before index, any index the check observes stands for
//     readable state, so a session chaining each response's Index into the
//     next MinIndex must never see its value regress below the token.
func TestMonotonicFastPathIndexNeverAheadOfState(t *testing.T) {
	network := transport.NewNetwork(transport.WithDelay(0, time.Millisecond), transport.WithSeed(11))
	defer network.Shutdown()

	fresh := &installReplica{primary: "s1"}
	fresh.install(10)
	gw := NewGateway(GatewayConfig{
		Self:    "s1",
		Replica: fresh,
		Read:    fresh.read,
		Addrs:   map[proc.ID]string{"s1": "s1"},
	})
	l, err := network.ListenStream("s1")
	if err != nil {
		t.Fatal(err)
	}
	gw.Serve(l)
	defer gw.Close()

	client, err := NewClient(ClientConfig{
		Addrs:        []string{"s1"},
		Dial:         func(addr string) (transport.StreamConn, error) { return network.DialStream(proc.ID(addr)) },
		ReadLevel:    ReadMonotonic,
		RetryBackoff: 2 * time.Millisecond,
		OpTimeout:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	res, err := client.Read([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "10" {
		t.Fatalf("warm read %q, want 10", res)
	}
	if tok := client.LastIndex(); tok < 10 {
		t.Fatalf("monotonic token %d after reading state 10", tok)
	}

	// Hazard 1: swap in a lagging replacement (a rebuilt replica still
	// replaying) and read with the old token. The answer must wait for the
	// catch-up installs, never serve the stale state.
	lag := &installReplica{primary: "s1"}
	lag.install(3)
	gw.ReplaceShard(0, Shard{Replica: lag, Read: lag.read})

	got := make(chan uint64, 1)
	readErr := make(chan error, 1)
	go func() {
		res, err := client.Read([]byte("k"))
		if err != nil {
			readErr <- err
			return
		}
		v, err := strconv.ParseUint(string(res), 10, 64)
		if err != nil {
			readErr <- err
			return
		}
		got <- v
	}()
	// Give a buggy fast path every chance to answer from the stale replica
	// before any catch-up happens.
	select {
	case v := <-got:
		t.Fatalf("read answered %d from a replica at index 3 against token >= 10", v)
	case err := <-readErr:
		t.Fatal(err)
	case <-time.After(100 * time.Millisecond):
	}
	for n := uint64(4); n <= 12; n++ {
		lag.install(n)
	}
	select {
	case v := <-got:
		if v < 10 {
			t.Fatalf("monotonic read observed state %d < token 10 across ReplaceShard", v)
		}
	case err := <-readErr:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("read never unparked after the replacement caught up")
	}
	if tok := client.LastIndex(); tok < 10 {
		t.Fatalf("token %d regressed below 10 after the catch-up read", tok)
	}

	// Hazard 2: installs race the fast path continuously; every chained
	// read must observe state >= its own token.
	stop := make(chan struct{})
	installerDone := make(chan struct{})
	go func() {
		defer close(installerDone)
		n := uint64(12)
		for {
			select {
			case <-stop:
				return
			default:
			}
			n++
			lag.install(n)
			time.Sleep(50 * time.Microsecond)
		}
	}()
	for i := 0; i < 200; i++ {
		tok := client.LastIndex()
		res, err := client.Read([]byte("k"))
		if err != nil {
			t.Fatal(err)
		}
		v, err := strconv.ParseUint(string(res), 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < tok {
			t.Fatalf("read %d observed state %d < monotonic token %d", i, v, tok)
		}
	}
	close(stop)
	<-installerDone
}
