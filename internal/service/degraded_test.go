package service

import (
	"errors"
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/replication"
)

// waitUntil polls f until it returns true or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, f func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !f() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServiceDegradedFailFastAndRecovery drives the full degraded path
// end to end: a partitioned primary trips the quorum-progress watchdog,
// fresh writes bounce with DEGRADED (counted apart from plain
// unavailability at both gateway and client), and after heal everything
// recovers with exactly-once semantics — the write stuck in flight across
// the partition applies once, not twice, despite all the retries.
func TestServiceDegradedFailFastAndRecovery(t *testing.T) {
	c := buildService(t, 3, func(cfg *GatewayConfig) {
		// Short enough that admitted-but-stuck writes cycle quickly through
		// TIMEOUT answers; the DEGRADED path itself answers instantly.
		cfg.RequestTimeout = 300 * time.Millisecond
	})
	for _, rep := range c.reps {
		rep.StartWatchdog(replication.WatchdogConfig{
			StallTimeout: 80 * time.Millisecond, CheckEvery: 10 * time.Millisecond,
		})
	}
	t.Cleanup(func() {
		for _, rep := range c.reps {
			rep.StopWatchdog()
		}
	})

	client := c.newClient(t, nil)
	if _, err := client.Call([]byte("w0")); err != nil {
		t.Fatalf("healthy write: %v", err)
	}

	// Cut the primary off from its quorum. Memnet streams are unaffected, so
	// the client stays attached to the gateway fronting the now-quorumless
	// primary — the exact shape the watchdog exists for.
	c.network.Partition([]proc.ID{"s1"}, []proc.ID{"s2", "s3"})

	// w1 is admitted before the trip: its broadcast sticks in flight and its
	// retries join that in-flight op (still servable), resolving only after
	// heal. It doubles as the heal probe.
	w1 := make(chan error, 1)
	go func() {
		_, err := client.Call([]byte("w1"))
		w1 <- err
	}()
	waitUntil(t, 5*time.Second, "watchdog trip", c.reps[0].Degraded)

	// w2 is fresh work admitted after the trip: it must bounce with DEGRADED
	// instead of queueing, and the client must count that separately.
	w2 := make(chan error, 1)
	go func() {
		_, err := client.Call([]byte("w2"))
		w2 <- err
	}()
	waitUntil(t, 10*time.Second, "client DEGRADED answer", func() bool {
		return client.Stats().DegradedAnswers > 0
	})
	var gwDegraded uint64
	for _, gw := range c.gws {
		gwDegraded += gw.Stats().Degraded
	}
	if gwDegraded == 0 {
		t.Fatal("no gateway counted a DEGRADED answer")
	}

	c.network.Heal()
	for name, ch := range map[string]chan error{"w1": w1, "w2": w2} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("%s after heal: %v", name, err)
			}
		case <-time.After(25 * time.Second):
			t.Fatalf("%s never recovered after heal", name)
		}
	}
	for _, op := range []string{"w0", "w1", "w2"} {
		if n := c.sms[0].count(op); n != 1 {
			t.Fatalf("%s applied %d times at the primary", op, n)
		}
	}
	if dups := c.sms[0].duplicatedOps(); len(dups) > 0 {
		t.Fatalf("duplicated applies: %v", dups)
	}
}

// TestServiceBudgetCapsGatewayWait ships the client's remaining OpTimeout to
// the gateway, which must bound its replicated-delivery wait by it: with a
// 400ms budget against a 30s gateway RequestTimeout, a write stuck at a
// quorumless primary surfaces ErrUnavailable in ~the budget, not the
// gateway's timeout, and the gateway's deadline accounting moves.
func TestServiceBudgetCapsGatewayWait(t *testing.T) {
	c := buildService(t, 3, func(cfg *GatewayConfig) {
		cfg.RequestTimeout = 30 * time.Second
	})
	client := c.newClient(t, func(cfg *ClientConfig) {
		cfg.OpTimeout = 400 * time.Millisecond
	})
	if _, err := client.Call([]byte("warm")); err != nil {
		t.Fatalf("healthy write: %v", err)
	}

	c.network.Partition([]proc.ID{"s1"}, []proc.ID{"s2", "s3"})
	defer c.network.Heal()
	start := time.Now()
	_, err := client.Call([]byte("stuck"))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("stuck write: err=%v", err)
	}
	// The gateway must answer TIMEOUT at ~the budget (not at 30s), so the
	// client's own timer and the gateway's capped wait land together; give
	// generous slack for scheduling but stay far under RequestTimeout.
	if elapsed > 5*time.Second {
		t.Fatalf("stuck write took %v; budget cap not propagated", elapsed)
	}
	waitUntil(t, 5*time.Second, "gateway timeout accounting", func() bool {
		return c.gws[0].Stats().Timeouts > 0
	})
}

// TestOpTimeoutBudgetMath pins the gateway's budget arithmetic: no budget
// means no cap, a lapsed budget kills the op, a live one caps the wait.
func TestOpTimeoutBudgetMath(t *testing.T) {
	g := &Gateway{cfg: GatewayConfig{RequestTimeout: 5 * time.Second}}
	now := time.Now()
	if timeout, live := g.opTimeout(0, now.Add(-time.Hour)); !live || timeout != 5*time.Second {
		t.Fatalf("no budget: timeout=%v live=%v", timeout, live)
	}
	if _, live := g.opTimeout(10*time.Millisecond, now.Add(-time.Second)); live {
		t.Fatal("lapsed budget still live")
	}
	if timeout, live := g.opTimeout(time.Hour, now); !live || timeout != 5*time.Second {
		t.Fatalf("huge budget: timeout=%v live=%v", timeout, live)
	}
	if timeout, live := g.opTimeout(time.Second, now); !live || timeout > time.Second || timeout <= 0 {
		t.Fatalf("capping budget: timeout=%v live=%v", timeout, live)
	}
}
