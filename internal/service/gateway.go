package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/transport"
)

// GatewayConfig parameterises a Gateway.
type GatewayConfig struct {
	// Self is the identity of the node this gateway is embedded in.
	Self proc.ID
	// Replica is the node's passive-replication replica; writes go through
	// its RequestSession for exactly-once semantics.
	Replica *replication.Passive
	// Read serves read-only operations from local state (nil rejects reads).
	Read func(op []byte) []byte
	// Addrs maps every replica ID to its gateway's service address, used for
	// NOT_PRIMARY redirect hints. Missing entries yield empty hints.
	Addrs map[proc.ID]string
	// MaxInflight bounds each session's unanswered writes; beyond it the
	// gateway stops reading from the session's connection (default 64).
	MaxInflight int
	// RequestTimeout bounds the wait for one write's replicated delivery
	// before answering TIMEOUT so the client can retry (default 5s).
	RequestTimeout time.Duration
}

// GatewayStats is a snapshot of gateway accounting.
type GatewayStats struct {
	Sessions      int    // sessions ever opened
	Writes        uint64 // write operations answered
	Reads         uint64 // read operations answered
	Redirects     uint64 // NOT_PRIMARY answers and demotion pushes
	MaxInflight   int64  // highest per-session in-flight count observed
	ActiveStreams int64  // currently attached connections
}

// Gateway accepts networked client sessions at one node of the group and
// routes their operations into the replicated service.
type Gateway struct {
	cfg GatewayConfig

	mu        sync.Mutex
	sessions  map[string]*gwSession
	conns     map[transport.StreamConn]bool
	listeners []transport.StreamListener
	closed    bool

	done chan struct{}
	wg   sync.WaitGroup

	writes      atomic.Uint64
	reads       atomic.Uint64
	redirects   atomic.Uint64
	maxInflight atomic.Int64
	active      atomic.Int64
}

// gwSession is one client session's server-side state. Unanswered writes
// are bounded at MaxInflight: up to MaxInflight-1 queued plus one being
// processed by the worker; beyond that the connection's read loop blocks.
type gwSession struct {
	id    string
	queue chan reqFrame // pending writes; capacity = MaxInflight-1

	mu   sync.Mutex
	conn transport.StreamConn // current attachment (nil between connections)
}

// send writes a frame to the session's current connection, if any. Errors
// are ignored: a broken connection is detected by its read loop, and the
// client recovers any lost response by retrying.
func (s *gwSession) send(v any) {
	frame, err := encodeFrame(v)
	if err != nil {
		return
	}
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		_ = conn.Send(frame)
	}
}

// attach makes conn the session's current connection, detaching (and
// closing) any previous one: the newest connection wins, as the client only
// dials anew after abandoning the old connection.
func (s *gwSession) attach(conn transport.StreamConn) {
	s.mu.Lock()
	old := s.conn
	s.conn = conn
	s.mu.Unlock()
	if old != nil && old != conn {
		_ = old.Close()
	}
}

// detach clears the session's connection if it is still conn.
func (s *gwSession) detach(conn transport.StreamConn) {
	s.mu.Lock()
	if s.conn == conn {
		s.conn = nil
	}
	s.mu.Unlock()
}

// NewGateway creates a gateway over the node's replica. Call Serve to start
// accepting sessions; the gateway also subscribes to primary changes so it
// can push NOT_PRIMARY redirects on demotion.
func NewGateway(cfg GatewayConfig) *Gateway {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	g := &Gateway{
		cfg:      cfg,
		sessions: make(map[string]*gwSession),
		conns:    make(map[transport.StreamConn]bool),
		done:     make(chan struct{}),
	}
	cfg.Replica.OnPrimaryChange(func(primary proc.ID, _ uint64) {
		// Delivery goroutine: hand the pushes to a gateway goroutine.
		select {
		case <-g.done:
			return
		default:
		}
		if primary == cfg.Self {
			return
		}
		hint := cfg.Addrs[primary]
		go g.pushDemotion(hint)
	})
	return g
}

// Serve accepts sessions from l until the gateway or listener is closed.
// It starts goroutines and returns immediately. The gateway takes ownership
// of l: Close closes it.
func (g *Gateway) Serve(l transport.StreamListener) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		_ = l.Close()
		return
	}
	g.listeners = append(g.listeners, l)
	g.mu.Unlock()
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			g.mu.Lock()
			if g.closed {
				g.mu.Unlock()
				_ = conn.Close()
				return
			}
			g.conns[conn] = true
			g.mu.Unlock()
			g.wg.Add(1)
			go g.handleConn(conn)
		}
	}()
}

// Close stops the gateway: listeners passed to Serve are closed, all
// connections break, session workers halt, and the replica's primary-change
// hook is released (so a closed gateway is no longer reachable from the
// replica; do not share one replica between gateways).
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.cfg.Replica.OnPrimaryChange(nil)
	close(g.done)
	conns := make([]transport.StreamConn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	listeners := g.listeners
	g.mu.Unlock()
	for _, l := range listeners {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	g.wg.Wait()
}

// Stats returns a snapshot of the gateway's counters.
func (g *Gateway) Stats() GatewayStats {
	g.mu.Lock()
	sessions := len(g.sessions)
	g.mu.Unlock()
	return GatewayStats{
		Sessions:      sessions,
		Writes:        g.writes.Load(),
		Reads:         g.reads.Load(),
		Redirects:     g.redirects.Load(),
		MaxInflight:   g.maxInflight.Load(),
		ActiveStreams: g.active.Load(),
	}
}

// hint returns the service address of the current primary, or "".
func (g *Gateway) hint() string {
	return g.cfg.Addrs[g.cfg.Replica.Primary()]
}

// pushDemotion sends a NOT_PRIMARY push to every attached session.
func (g *Gateway) pushDemotion(hint string) {
	g.mu.Lock()
	sessions := make([]*gwSession, 0, len(g.sessions))
	for _, s := range g.sessions {
		sessions = append(sessions, s)
	}
	g.mu.Unlock()
	for _, s := range sessions {
		g.redirects.Add(1)
		s.send(pushFrame{Primary: hint})
	}
}

// session returns (creating if needed) the session with the given ID,
// starting its worker on creation.
func (g *Gateway) session(id string) *gwSession {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s, ok := g.sessions[id]; ok {
		return s
	}
	s := &gwSession{
		id:    id,
		queue: make(chan reqFrame, g.cfg.MaxInflight-1),
	}
	g.sessions[id] = s
	g.wg.Add(1)
	go g.sessionWorker(s)
	return s
}

// handleConn speaks the session protocol on one inbound connection.
func (g *Gateway) handleConn(conn transport.StreamConn) {
	defer g.wg.Done()
	defer func() {
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
		_ = conn.Close()
	}()
	g.active.Add(1)
	defer g.active.Add(-1)

	// Handshake: the first frame must be a hello.
	data, err := conn.Recv()
	if err != nil {
		return
	}
	v, err := decodeFrame(data)
	if err != nil {
		return
	}
	hello, ok := v.(helloFrame)
	if !ok || hello.Session == "" {
		return
	}
	s := g.session(hello.Session)
	s.attach(conn)
	defer s.detach(conn)

	welcome, err := encodeFrame(welcomeFrame{
		Session:     hello.Session,
		MaxInflight: g.cfg.MaxInflight,
		Primary:     g.hint(),
		IsPrimary:   g.cfg.Replica.Primary() == g.cfg.Self,
	})
	if err != nil || conn.Send(welcome) != nil {
		return
	}

	for {
		data, err := conn.Recv()
		if err != nil {
			return
		}
		v, err := decodeFrame(data)
		if err != nil {
			return
		}
		req, ok := v.(reqFrame)
		if !ok {
			continue
		}
		if req.Read {
			g.serveRead(s, req)
			continue
		}
		// Backpressure: when the session's window is full this send blocks,
		// pausing reads from the connection until the worker catches up.
		select {
		case s.queue <- req:
		case <-g.done:
			return
		}
	}
}

// serveRead answers a read from local state without touching the group.
func (g *Gateway) serveRead(s *gwSession, req reqFrame) {
	res := resFrame{Seq: req.Seq}
	if g.cfg.Read == nil {
		res.Err = errNoReads
	} else {
		res.Result = g.cfg.Read(req.Op)
		g.reads.Add(1)
	}
	s.send(res)
}

// sessionWorker executes one session's writes serially, in arrival (= seq)
// order, answering on whichever connection the session currently has.
func (g *Gateway) sessionWorker(s *gwSession) {
	defer g.wg.Done()
	for {
		var req reqFrame
		select {
		case req = <-s.queue:
		case <-g.done:
			return
		}
		// Unanswered writes at this instant: the queued ones plus this one.
		n := int64(len(s.queue)) + 1
		for {
			max := g.maxInflight.Load()
			if n <= max || g.maxInflight.CompareAndSwap(max, n) {
				break
			}
		}
		res := resFrame{Seq: req.Seq}
		result, err := g.cfg.Replica.RequestSession(s.id, req.Seq, req.Ack, req.Op, g.cfg.RequestTimeout)
		switch {
		case err == nil:
			res.Result = result
			g.writes.Add(1)
		case errors.Is(err, replication.ErrNotPrimary), errors.Is(err, replication.ErrDemoted):
			res.Err = errNotPrimary
			res.Redirect = g.hint()
			g.redirects.Add(1)
		case errors.Is(err, replication.ErrTimeout):
			res.Err = errTimeout
		case errors.Is(err, replication.ErrPruned):
			res.Err = errPruned
		default:
			res.Err = err.Error()
		}
		s.send(res)
	}
}
