package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Replica is the slice of the replication layer a gateway drives: writes
// with exactly-once session semantics, the read-consistency machinery
// (commit index, waiters, barriers), primary tracking and lease renewal.
// Both a full passive replica (*replication.Passive bound to a node) and a
// catch-up follower (replication.NewFollower fed by a Syncer) satisfy it,
// so a gateway's replica handle can be replaced mid-life — e.g. after a
// crash-recovery, when a node rejoins as a follower (ReplaceShard).
type Replica interface {
	RequestSession(session string, seq, ack uint64, op []byte, timeout time.Duration) ([]byte, error)
	Primary() proc.ID
	CommitIndex() uint64
	WaitCommit(index uint64, timeout time.Duration, abort <-chan struct{}) (uint64, error)
	ReadBarrier(timeout time.Duration, abort <-chan struct{}) (uint64, error)
	// StateAge reports how far the replica's applied state lags the
	// primary's commit timestamps; ok=false means the age is unknown (no
	// stamped delivery observed yet) and the replica must not serve
	// bounded-staleness reads.
	StateAge() (time.Duration, bool)
	OnPrimaryChange(fn func(primary proc.ID, epoch uint64))
	LeaseTick(sessions []string) error
}

var _ Replica = (*replication.Passive)(nil)

// Shard is one replicated group behind a gateway: the node's replica of
// that group plus the read function over that shard's local state. A
// gateway owns one Shard per replicated group of the deployment; requests
// carry a shard ID and are routed to the matching replica handle.
type Shard struct {
	// Replica is this node's replica handle of the shard; writes go through
	// its RequestSession for exactly-once semantics.
	Replica Replica
	// Read serves read-only operations from the shard's local state (nil
	// rejects reads on this shard).
	Read func(op []byte) []byte
}

// GatewayConfig parameterises a Gateway.
type GatewayConfig struct {
	// Self is the identity of the node this gateway is embedded in.
	Self proc.ID
	// Replica is the node's replica handle; writes go through its
	// RequestSession for exactly-once semantics. Replica and Read are the
	// single-shard configuration — they become shard 0. Multi-shard
	// gateways set Shards instead.
	Replica Replica
	// Read serves read-only operations from local state (nil rejects reads).
	Read func(op []byte) []byte
	// Shards configures a sharded gateway: element k serves the requests
	// tagged with shard k. Exactly one of Shards and Replica(/Read) must be
	// set. Every gateway of the deployment must list the same number of
	// shards in the same order (the shard map ShardOf is shared by all
	// clients and nodes).
	Shards []Shard
	// Addrs maps every replica ID to its gateway's service address, used for
	// NOT_PRIMARY redirect hints. Missing entries yield empty hints. The
	// same map serves every shard: shard k's hint is the address of the node
	// fronting shard k's primary, which diverges across shards after a
	// partial failover.
	Addrs map[proc.ID]string
	// MaxInflight bounds each session's unanswered writes; beyond it the
	// gateway stops reading from the session's connection (default 64).
	MaxInflight int
	// RequestTimeout bounds the wait for one write's replicated delivery
	// before answering TIMEOUT so the client can retry (default 5s).
	RequestTimeout time.Duration
	// Batching dispatches a session's queued writes concurrently (up to
	// MaxInflight at once) instead of one at a time, so pipelined operations
	// from one session coalesce into the replica's group-commit batches.
	// Responses still carry their request Seq, so clients match them
	// regardless of completion order. Enable it together with the replica's
	// EnableBatching for the full group-commit write path.
	Batching bool
	// SessionTTL is the idle-session lease: a session with no attached
	// connection, no queued or in-flight operations, and no activity for
	// SessionTTL is garbage-collected (its worker stops and its state is
	// dropped; the replicated dedup table is unaffected, so a later
	// reconnect under the same session ID still deduplicates correctly).
	// Zero or negative keeps sessions forever.
	SessionTTL time.Duration
	// LeaseTTL enables the REPLICATED session lease: every gateway
	// periodically broadcasts an ordered lease message renewing its attached
	// sessions, the primary's broadcast ticks the replicated lease clock,
	// and every replica prunes (session, seq) dedup records idle for more
	// than the TTL identically (replication.LeaseTick). This bounds the
	// replicated table for vanished clients; a session attached to NO
	// gateway and writing nothing for more than the TTL loses its dedup
	// state, so pick a TTL comfortably above client reconnect times. Zero or
	// negative disables the replicated lease (the table is pruned by client
	// acks only).
	LeaseTTL time.Duration
}

// GatewayStats is a snapshot of gateway accounting.
type GatewayStats struct {
	Sessions      int    // live sessions
	Writes        uint64 // write operations answered
	Reads         uint64 // read operations answered
	Redirects     uint64 // NOT_PRIMARY answers and demotion pushes
	Expired       uint64 // sessions garbage-collected by the lease timeout
	MaxInflight   int64  // highest per-session in-flight count observed
	ActiveStreams int64  // currently attached connections
	Timeouts      uint64 // operations answered TIMEOUT
	Unavailable   uint64 // operations answered UNAVAILABLE
	Degraded      uint64 // operations answered DEGRADED (quorumless primary failing fast)
	DeadlineDrops uint64 // operations dropped because the client's budget lapsed in queue
	TooStale      uint64 // bounded-staleness reads answered TOO_STALE
}

// Gateway accepts networked client sessions at one node of the group and
// routes their operations into the replicated service — into the matching
// shard's replica when several replicated groups run side by side.
type Gateway struct {
	cfg GatewayConfig
	// shards is the current shard table, swapped atomically so a shard's
	// replica handle can be replaced mid-life (ReplaceShard) without
	// stalling the request paths. The shard COUNT is fixed for the
	// gateway's lifetime — only handles change.
	shards atomic.Pointer[[]Shard]

	mu        sync.Mutex
	sessions  map[string]*gwSession
	conns     map[transport.StreamConn]bool
	listeners []transport.StreamListener
	closed    bool

	done chan struct{}
	wg   sync.WaitGroup

	writes      atomic.Uint64
	reads       atomic.Uint64
	redirects   atomic.Uint64
	expired     atomic.Uint64
	maxInflight atomic.Int64
	active      atomic.Int64
	timeouts    atomic.Uint64
	unavail     atomic.Uint64
	degraded    atomic.Uint64
	ddlDrops    atomic.Uint64
	tooStale    atomic.Uint64

	// Observability hookups, nil until wired (RegisterMetrics/SetTracer).
	metrics atomic.Pointer[gwMetrics]
	tracer  atomic.Pointer[telemetry.Tracer]
}

// gwSession is one client session's server-side state. Unanswered writes
// are bounded at MaxInflight: up to MaxInflight-1 queued plus the ones being
// processed by the worker; beyond that the connection's read loop blocks.
type gwSession struct {
	id        string
	shard     uint32        // the shard named in the session's hello
	queue     chan gwReq    // pending writes; capacity = MaxInflight-1
	stop      chan struct{} // closed when the session's lease expires
	readSlots chan struct{} // waiting-read window; capacity = MaxInflight

	inflight   atomic.Int64 // queued + processing writes
	processing atomic.Int64 // writes currently inside RequestSession

	mu         sync.Mutex
	conn       transport.StreamConn // current attachment (nil between connections)
	lastActive time.Time
	expired    bool
}

// send writes a frame to the session's current connection, if any. Errors
// are ignored: a broken connection is detected by its read loop, and the
// client recovers any lost response by retrying.
func (s *gwSession) send(v any) {
	frame, err := encodeFrame(v)
	if err != nil {
		return
	}
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		_ = conn.Send(frame)
	}
}

// attach makes conn the session's current connection, detaching (and
// closing) any previous one: the newest connection wins, as the client only
// dials anew after abandoning the old connection. It fails on a session
// whose lease just expired; the caller must fetch a fresh session.
func (s *gwSession) attach(conn transport.StreamConn) bool {
	s.mu.Lock()
	if s.expired {
		s.mu.Unlock()
		return false
	}
	old := s.conn
	s.conn = conn
	s.lastActive = time.Now()
	s.mu.Unlock()
	if old != nil && old != conn {
		_ = old.Close()
	}
	return true
}

// detach clears the session's connection if it is still conn, starting the
// idle lease clock.
func (s *gwSession) detach(conn transport.StreamConn) {
	s.mu.Lock()
	if s.conn == conn {
		s.conn = nil
		s.lastActive = time.Now()
	}
	s.mu.Unlock()
}

// touch records session activity for the lease clock.
func (s *gwSession) touch() {
	s.mu.Lock()
	s.lastActive = time.Now()
	s.mu.Unlock()
}

// NewGateway creates a gateway over the node's replica. Call Serve to start
// accepting sessions; the gateway also subscribes to primary changes so it
// can push NOT_PRIMARY redirects on demotion.
func NewGateway(cfg GatewayConfig) *Gateway {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	// Nonsensical TTLs (negative, or so small the janitor interval would
	// truncate to zero — time.NewTicker panics on non-positive periods) are
	// normalized here so every janitor below can trust its config.
	if cfg.SessionTTL < 0 {
		cfg.SessionTTL = 0
	}
	if cfg.LeaseTTL < 0 {
		cfg.LeaseTTL = 0
	}
	shards := cfg.Shards
	if len(shards) == 0 {
		if cfg.Replica == nil {
			panic("service: gateway needs a Replica or Shards")
		}
		shards = []Shard{{Replica: cfg.Replica, Read: cfg.Read}}
	} else if cfg.Replica != nil || cfg.Read != nil {
		// With Shards, reads come from each Shard's own Read: a leftover
		// top-level Read would be silently ignored, surfacing only as
		// runtime NO_READS on shards missing their own — reject it here.
		panic("service: gateway given both Replica/Read and Shards")
	}
	g := &Gateway{
		cfg:      cfg,
		sessions: make(map[string]*gwSession),
		conns:    make(map[transport.StreamConn]bool),
		done:     make(chan struct{}),
	}
	g.shards.Store(&shards)
	for k := range shards {
		g.wireShard(uint32(k), shards[k].Replica)
	}
	if cfg.SessionTTL > 0 {
		g.wg.Add(1)
		go g.expireLoop()
	}
	if cfg.LeaseTTL > 0 {
		g.wg.Add(1)
		go g.leaseLoop()
	}
	return g
}

// Serve accepts sessions from l until the gateway or listener is closed.
// It starts goroutines and returns immediately. The gateway takes ownership
// of l: Close closes it.
func (g *Gateway) Serve(l transport.StreamListener) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		_ = l.Close()
		return
	}
	g.listeners = append(g.listeners, l)
	g.mu.Unlock()
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			g.mu.Lock()
			if g.closed {
				g.mu.Unlock()
				_ = conn.Close()
				return
			}
			g.conns[conn] = true
			g.mu.Unlock()
			g.wg.Add(1)
			go g.handleConn(conn)
		}
	}()
}

// Close stops the gateway: listeners passed to Serve are closed, all
// connections break, session workers halt, and the replica's primary-change
// hook is released (so a closed gateway is no longer reachable from the
// replica; do not share one replica between gateways).
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	for _, sh := range g.shardList() {
		sh.Replica.OnPrimaryChange(nil)
	}
	close(g.done)
	conns := make([]transport.StreamConn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	listeners := g.listeners
	g.mu.Unlock()
	for _, l := range listeners {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	g.wg.Wait()
}

// Stats returns a snapshot of the gateway's counters.
func (g *Gateway) Stats() GatewayStats {
	g.mu.Lock()
	sessions := len(g.sessions)
	g.mu.Unlock()
	return GatewayStats{
		Sessions:      sessions,
		Writes:        g.writes.Load(),
		Reads:         g.reads.Load(),
		Redirects:     g.redirects.Load(),
		Expired:       g.expired.Load(),
		MaxInflight:   g.maxInflight.Load(),
		ActiveStreams: g.active.Load(),
		Timeouts:      g.timeouts.Load(),
		Unavailable:   g.unavail.Load(),
		Degraded:      g.degraded.Load(),
		DeadlineDrops: g.ddlDrops.Load(),
		TooStale:      g.tooStale.Load(),
	}
}

// shardList returns the current shard table (atomic snapshot).
func (g *Gateway) shardList() []Shard {
	return *g.shards.Load()
}

// wireShard subscribes the gateway's demotion pushes to one shard's replica
// handle.
func (g *Gateway) wireShard(shard uint32, rep Replica) {
	rep.OnPrimaryChange(func(primary proc.ID, _ uint64) {
		// Delivery goroutine: hand the pushes to a gateway goroutine.
		select {
		case <-g.done:
			return
		default:
		}
		if primary == g.cfg.Self {
			return
		}
		hint := g.cfg.Addrs[primary]
		go g.pushDemotion(shard, hint)
	})
}

// ReplaceShard swaps shard k's handle for a new one — the recovery path: a
// node whose replica stack died (or was wiped and rebuilt as a catch-up
// follower) re-points its gateway at the replacement without dropping the
// attached sessions. Their exactly-once state lives in the REPLICATED
// session table, so in-flight and future writes retried through the new
// handle still deduplicate correctly; the shard's sessions get a refresh
// push so clients re-discover the primary instead of erroring forever.
func (g *Gateway) ReplaceShard(k int, sh Shard) {
	g.mu.Lock()
	cur := *g.shards.Load()
	if k < 0 || k >= len(cur) {
		g.mu.Unlock()
		panic(fmt.Sprintf("service: ReplaceShard(%d) of %d shards", k, len(cur)))
	}
	old := cur[k]
	next := make([]Shard, len(cur))
	copy(next, cur)
	next[k] = sh
	g.shards.Store(&next)
	// (Un)wiring happens under g.mu so ReplaceShard cannot race Close into
	// re-registering a callback on a replica after Close unhooked
	// everything — a closed gateway must stay unreachable from replicas.
	old.Replica.OnPrimaryChange(nil)
	closed := g.closed
	if !closed {
		g.wireShard(uint32(k), sh.Replica)
	}
	g.mu.Unlock()
	if !closed {
		go g.pushDemotion(uint32(k), g.hint(uint32(k)))
	}
}

// hint returns the service address of shard k's current primary, or "".
func (g *Gateway) hint(shard uint32) string {
	return g.cfg.Addrs[g.shardList()[shard].Replica.Primary()]
}

// pushDemotion sends a NOT_PRIMARY push naming the demoted shard to every
// session bound to that shard (per-shard primaries legitimately diverge
// after a partial failover; other shards' sessions are unaffected and are
// not disturbed).
func (g *Gateway) pushDemotion(shard uint32, hint string) {
	g.mu.Lock()
	sessions := make([]*gwSession, 0, len(g.sessions))
	for _, s := range g.sessions {
		if s.shard == shard {
			sessions = append(sessions, s)
		}
	}
	g.mu.Unlock()
	for _, s := range sessions {
		g.redirects.Add(1)
		s.send(pushFrame{Primary: hint, Shard: shard})
	}
}

// session returns (creating if needed) the session with the given ID,
// starting its worker on creation; shard is the hello's shard binding
// (scopes lease renewals and demotion pushes). The map only ever holds live
// sessions: the expiry loop removes a session in the same critical section
// that marks it expired.
func (g *Gateway) session(id string, shard uint32) *gwSession {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s, ok := g.sessions[id]; ok {
		return s
	}
	// Unbatched, the queue IS the window: MaxInflight-1 buffered plus one in
	// the worker. Batched, the window is the worker's slot semaphore, so the
	// queue is a pure handoff — a buffered queue on top would double the
	// session's unanswered-write bound.
	depth := g.cfg.MaxInflight - 1
	if g.cfg.Batching {
		depth = 0
	}
	s := &gwSession{
		id:         id,
		shard:      shard,
		queue:      make(chan gwReq, depth),
		stop:       make(chan struct{}),
		readSlots:  make(chan struct{}, g.cfg.MaxInflight),
		lastActive: time.Now(),
	}
	g.sessions[id] = s
	g.wg.Add(1)
	go g.sessionWorker(s)
	return s
}

// janitorInterval derives a ticker period as a quarter of a TTL, floored at
// one millisecond: time.NewTicker panics on a non-positive period, which an
// integer division of a small (but valid) TTL would otherwise produce.
func janitorInterval(ttl time.Duration) time.Duration {
	interval := ttl / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	return interval
}

// expireLoop is the local lease janitor: it garbage-collects sessions that
// have had no attached connection, no queued or in-flight writes, and no
// activity for SessionTTL.
func (g *Gateway) expireLoop() {
	defer g.wg.Done()
	ticker := time.NewTicker(janitorInterval(g.cfg.SessionTTL))
	defer ticker.Stop()
	for {
		select {
		case <-g.done:
			return
		case <-ticker.C:
			g.expirePass(time.Now())
		}
	}
}

// leaseLoop is the replicated lease janitor: every gateway periodically
// broadcasts an ordered lease message renewing the sessions it holds
// attached — so a session parked at a backup gateway is renewed too — and
// the broadcast of the gateway fronting the primary ticks the replicated
// lease clock, pruning vanished sessions identically at every replica (see
// replication.LeaseTick).
func (g *Gateway) leaseLoop() {
	defer g.wg.Done()
	// The broadcast period and the lease's tick count must agree, or the
	// effective TTL silently drifts from the configured one — derive it
	// from replication's own constant.
	interval := g.cfg.LeaseTTL / replication.LeaseTTLTicks
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-g.done:
			return
		case <-ticker.C:
			// Each shard's lease clock is independent replicated state, so
			// each shard gets its own ordered lease message, renewing only
			// the sessions bound to it (the hello's shard binding) — a
			// session's dedup records live solely in its own shard's table.
			perShard := g.attachedSessions()
			for k, sh := range g.shardList() {
				rep := sh.Replica
				if len(perShard[k]) == 0 && rep.Primary() != g.cfg.Self {
					continue // nothing to renew and no clock to tick
				}
				_ = rep.LeaseTick(perShard[k])
			}
		}
	}
}

// attachedSessions lists, per shard, the sessions currently holding a
// connection (or with work in flight) at this gateway — the ones whose
// replicated lease this gateway keeps renewing on their shard.
func (g *Gateway) attachedSessions() [][]string {
	out := make([][]string, len(g.shardList()))
	g.mu.Lock()
	defer g.mu.Unlock()
	for id, s := range g.sessions {
		s.mu.Lock()
		live := s.conn != nil
		s.mu.Unlock()
		if live || s.inflight.Load() > 0 {
			out[s.shard] = append(out[s.shard], id)
		}
	}
	return out
}

func (g *Gateway) expirePass(now time.Time) {
	g.mu.Lock()
	for id, s := range g.sessions {
		s.mu.Lock()
		idle := s.conn == nil && now.Sub(s.lastActive) >= g.cfg.SessionTTL
		if idle && s.inflight.Load() == 0 {
			s.expired = true
			close(s.stop)
			delete(g.sessions, id)
			g.expired.Add(1)
		}
		s.mu.Unlock()
	}
	g.mu.Unlock()
}

// handleConn speaks the session protocol on one inbound connection.
func (g *Gateway) handleConn(conn transport.StreamConn) {
	defer g.wg.Done()
	defer func() {
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
		_ = conn.Close()
	}()
	g.active.Add(1)
	defer g.active.Add(-1)

	// Handshake: the first frame must be a hello naming a served shard.
	data, err := conn.Recv()
	if err != nil {
		return
	}
	v, err := decodeFrame(data)
	transport.PutFrame(data) // decoded: the stream frame is spent
	if err != nil {
		return
	}
	hello, ok := v.(helloFrame)
	if !ok || hello.Session == "" {
		return
	}
	shards := g.shardList()
	if hello.Shard >= uint32(len(shards)) {
		// Shard-count misconfiguration (client's Shards > ours). Answer with
		// a welcome carrying OUR shard count — no primary, no session — so
		// the client can diagnose and fail fast instead of reconnecting
		// forever against silent closes.
		if frame, err := encodeFrame(welcomeFrame{
			Session: hello.Session, Shards: len(shards),
		}); err == nil {
			_ = conn.Send(frame)
		}
		return
	}
	// Retry on attach failure: the lease may expire a session between the
	// map lookup and the attachment; the next lookup creates a fresh one.
	var s *gwSession
	for {
		s = g.session(hello.Session, hello.Shard)
		if s.attach(conn) {
			break
		}
	}
	defer s.detach(conn)

	welcome, err := encodeFrame(welcomeFrame{
		Session:     hello.Session,
		MaxInflight: g.cfg.MaxInflight,
		Primary:     g.hint(hello.Shard),
		IsPrimary:   shards[hello.Shard].Replica.Primary() == g.cfg.Self,
		Shards:      len(shards),
	})
	if err != nil || conn.Send(welcome) != nil {
		return
	}

	for {
		data, err := conn.Recv()
		if err != nil {
			return
		}
		v, err := decodeFrame(data)
		transport.PutFrame(data) // decoded: the stream frame is spent
		if err != nil {
			return
		}
		req, ok := v.(reqFrame)
		if !ok {
			continue
		}
		s.touch()
		if req.Shard >= uint32(len(shards)) {
			s.send(resFrame{Seq: req.Seq, Err: errBadShard})
			continue
		}
		if req.Read {
			g.serveRead(s, req)
			continue
		}
		qr := gwReq{f: req, at: time.Now()}
		if tracer := g.tracer.Load(); tracer.Sampled() {
			// The op key ties the gateway's trace to the replication layer's
			// stage marks (batch_enqueue/batch_flush/delivered); Attach here,
			// before the op can reach the batcher.
			key := telemetry.OpKey(s.id, req.Seq)
			qr.tr = tracer.Start("write", key)
			tracer.Attach(key, qr.tr)
		}
		// Backpressure: when the session's window is full this send blocks,
		// pausing reads from the connection until the worker catches up.
		s.inflight.Add(1)
		select {
		case s.queue <- qr:
		case <-g.done:
			g.dropTrace(s, qr)
			return
		}
	}
}

// serveRead dispatches a read at its requested consistency level against
// its shard. Local reads answer inline on the connection's read loop;
// waiting levels (monotonic, linearizable) run on their own goroutine so a
// lagging replica or an in-flight barrier never stalls the session's
// pipelined writes. An unknown level is rejected with BAD_READ_LEVEL rather
// than silently degraded to a weaker read.
func (g *Gateway) serveRead(s *gwSession, req reqFrame) {
	start := time.Now()
	shard := g.shardList()[req.Shard]
	if shard.Read == nil {
		s.send(resFrame{Seq: req.Seq, Err: errNoReads})
		return
	}
	level := req.Level
	if level == ReadDefault {
		// Pre-level wire clients (Level absent = 0) keep their old behavior.
		level = ReadLocal
	}
	switch level {
	case ReadLocal:
		g.reads.Add(1)
		s.send(resFrame{
			Seq:    req.Seq,
			Result: shard.Read(req.Op),
			Index:  shard.Replica.CommitIndex(),
		})
		g.observeRead(s, level, start)
	case ReadBoundedStaleness:
		// Bounded staleness: serve inline from local state when the shard's
		// applied state is provably within the client's bound; otherwise a
		// retryable TOO_STALE with the primary as the freshness hint. A
		// replica that has never observed a stamped delivery has UNKNOWN age
		// and must refuse too — silently serving it would turn "at most
		// maxAge stale" into "arbitrarily stale".
		if req.MaxAge <= 0 {
			s.send(resFrame{Seq: req.Seq, Err: errBadReadLevel})
			return
		}
		age, known := shard.Replica.StateAge()
		if !known || age > req.MaxAge {
			g.tooStale.Add(1)
			s.send(resFrame{Seq: req.Seq, Err: errTooStale, Redirect: g.hint(req.Shard)})
			return
		}
		g.reads.Add(1)
		s.send(resFrame{
			Seq:    req.Seq,
			Result: shard.Read(req.Op),
			Index:  shard.Replica.CommitIndex(),
		})
		if m := g.metrics.Load(); m != nil {
			m.staleAge.Observe(age)
		}
		g.observeRead(s, level, start)
	case ReadMonotonic, ReadLinearizable:
		// Monotonic fast path: when the shard's replica has already reached
		// the session's token — the steady-state case — the read is
		// answered inline, as cheap as a local one.
		//
		// Ordering audit (do not reorder): the index is CHECKED before the
		// read and FETCHED for the response after it. Both directions are
		// deliberate. Check-before-read is safe against a concurrent
		// snapshot install because installSnapshotLocked restores the
		// application state BEFORE advancing the commit index, and
		// Snapshotter.Restore swaps state atomically — so any index this
		// check observes stands for state already readable through
		// shard.Read; the state can only be NEWER than the check, never
		// older. (ReplaceShard cannot regress it either: `shard` is one
		// consistent handle pair captured in a single atomic load above, so
		// check, read and response all hit the same replica, whose index
		// never moves backward.) Fetch-after-read is the conservative
		// direction for the response token: fetching it before the read
		// could hand the client an index OLDER than the state it was served,
		// and its next monotonic read, gated on that too-small token at a
		// lagging gateway, could then observe time going backward.
		// TestMonotonicFastPathIndexNeverAheadOfState pins all of this.
		if level == ReadMonotonic && shard.Replica.CommitIndex() >= req.MinIndex {
			g.reads.Add(1)
			s.send(resFrame{
				Seq:    req.Seq,
				Result: shard.Read(req.Op),
				Index:  shard.Replica.CommitIndex(),
			})
			g.observeRead(s, level, start)
			return
		}
		timeout, live := g.opTimeout(req.Budget, start)
		if !live {
			// The client's per-op budget already lapsed: it has abandoned (or
			// is abandoning) this read, so don't park a waiter on its behalf.
			g.timeouts.Add(1)
			g.ddlDrops.Add(1)
			s.send(resFrame{Seq: req.Seq, Err: errTimeout})
			return
		}
		// Same backpressure as writes: at most MaxInflight waiting reads per
		// session; beyond that this blocks, pausing the connection's read
		// loop until a slot frees.
		select {
		case s.readSlots <- struct{}{}:
		case <-s.stop:
			return
		case <-g.done:
			return
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			defer func() { <-s.readSlots }()
			s.send(g.processRead(req, level, timeout))
			s.touch()
			g.observeRead(s, level, start)
		}()
	default:
		s.send(resFrame{Seq: req.Seq, Err: errBadReadLevel})
	}
}

// observeRead records a read's latency under its level and captures it as a
// slow op above the tracer's threshold.
func (g *Gateway) observeRead(s *gwSession, level ReadLevel, start time.Time) {
	if m := g.metrics.Load(); m != nil {
		m.readOp(level).ObserveSince(start)
	}
	if tracer := g.tracer.Load(); tracer != nil {
		if d := time.Since(start); d >= tracer.SlowThreshold() {
			tracer.CaptureSlow("read_"+level.String(), s.id, start, d)
		}
	}
}

// opTimeout derives one operation's wait bound: the gateway's RequestTimeout
// capped at the client's remaining per-op budget, measured from the op's
// arrival at this gateway (zero Budget = old clients = no cap). live=false
// means the budget already lapsed — the client has abandoned the op and will
// retry it under the same (session, seq) name, so the gateway should answer
// TIMEOUT immediately instead of burning ordered-path work on it.
func (g *Gateway) opTimeout(budget time.Duration, at time.Time) (timeout time.Duration, live bool) {
	timeout = g.cfg.RequestTimeout
	if budget <= 0 {
		return timeout, true
	}
	rem := budget - time.Since(at)
	if rem <= 0 {
		return 0, false
	}
	if rem < timeout {
		timeout = rem
	}
	return timeout, true
}

// processRead serves a waiting read level against its shard and builds its
// response frame.
func (g *Gateway) processRead(req reqFrame, level ReadLevel, timeout time.Duration) resFrame {
	shard := g.shardList()[req.Shard]
	res := resFrame{Seq: req.Seq}
	var err error
	if level == ReadMonotonic {
		// Any replica may answer once it has caught up to the session's
		// last-seen commit index on this shard.
		_, err = shard.Replica.WaitCommit(req.MinIndex, timeout, g.done)
	} else {
		// Linearizable: only the shard's primary answers, behind an ordered
		// no-op confirmed through the broadcast path (coalesced across
		// readers of the same shard).
		_, err = shard.Replica.ReadBarrier(timeout, g.done)
	}
	switch {
	case err == nil:
		res.Result = shard.Read(req.Op)
		res.Index = shard.Replica.CommitIndex()
		g.reads.Add(1)
	case errors.Is(err, replication.ErrNotPrimary), errors.Is(err, replication.ErrDemoted):
		res.Err = errNotPrimary
		res.Redirect = g.hint(req.Shard)
		g.redirects.Add(1)
	case errors.Is(err, replication.ErrTimeout):
		res.Err = errTimeout
		g.timeouts.Add(1)
	case errors.Is(err, replication.ErrDegraded):
		// The quorum-progress watchdog has the shard's primary failing fast:
		// retryable like UNAVAILABLE, but counted apart — it is the signature
		// of a partition, not a crash.
		res.Err = errDegraded
		g.degraded.Add(1)
	default:
		// Infrastructure failure below the gateway (e.g. a dying replica
		// stack): retryable, not terminal — the client reconnects and
		// retries elsewhere instead of surfacing a fatal server error.
		res.Err = errUnavailable
		g.unavail.Add(1)
	}
	return res
}

// processWrite routes one write into its shard's replicated group and
// builds its response frame. The wait for replicated delivery is bounded by
// RequestTimeout capped at the client's remaining budget; a write whose
// budget lapsed while queued is dropped with TIMEOUT before it reaches the
// ordered path at all.
func (g *Gateway) processWrite(s *gwSession, qr gwReq) resFrame {
	req := qr.f
	shard := g.shardList()[req.Shard]
	res := resFrame{Seq: req.Seq}
	timeout, live := g.opTimeout(req.Budget, qr.at)
	if !live {
		res.Err = errTimeout
		g.timeouts.Add(1)
		g.ddlDrops.Add(1)
		return res
	}
	result, err := shard.Replica.RequestSession(s.id, req.Seq, req.Ack, req.Op, timeout)
	switch {
	case err == nil:
		res.Result = result
		// The local apply precedes RequestSession's return at the primary,
		// so the shard's current commit index covers this write
		// (conservatively: it may also cover later ones, which only
		// strengthens the client's monotonic token).
		res.Index = shard.Replica.CommitIndex()
		g.writes.Add(1)
	case errors.Is(err, replication.ErrNotPrimary), errors.Is(err, replication.ErrDemoted):
		res.Err = errNotPrimary
		res.Redirect = g.hint(req.Shard)
		g.redirects.Add(1)
	case errors.Is(err, replication.ErrTimeout):
		res.Err = errTimeout
		g.timeouts.Add(1)
	case errors.Is(err, replication.ErrPruned):
		res.Err = errPruned
	case errors.Is(err, replication.ErrDegraded):
		// Fail-fast answer from a quorumless primary (see processRead): the
		// client retries elsewhere; exactly-once holds because nothing
		// degraded was admitted, let alone delivered.
		res.Err = errDegraded
		g.degraded.Add(1)
	default:
		// See processRead: infrastructure errors are retryable. The write's
		// (session, seq) name makes the retry exactly-once regardless of
		// whether this attempt executed.
		res.Err = errUnavailable
		g.unavail.Add(1)
	}
	return res
}

// observeInflight folds n into the high-water in-flight stat.
func (g *Gateway) observeInflight(n int64) {
	for {
		max := g.maxInflight.Load()
		if n <= max || g.maxInflight.CompareAndSwap(max, n) {
			return
		}
	}
}

// sessionWorker executes one session's writes, answering on whichever
// connection the session currently has. Without batching, writes run
// serially in arrival (= seq) order; with batching, up to MaxInflight run
// concurrently so they coalesce into the replica's group-commit batches.
func (g *Gateway) sessionWorker(s *gwSession) {
	defer g.wg.Done()
	if g.cfg.Batching {
		g.batchingWorker(s)
		return
	}
	for {
		var qr gwReq
		select {
		case qr = <-s.queue:
		case <-s.stop:
			return
		case <-g.done:
			return
		}
		// Unanswered writes at this instant: the queued ones plus this one.
		g.observeInflight(int64(len(s.queue)) + 1)
		g.markDispatch(qr)
		res := g.processWrite(s, qr)
		s.send(res)
		s.touch()
		s.inflight.Add(-1)
		g.finishWrite(s, qr)
	}
}

// batchingWorker is sessionWorker's concurrent-dispatch mode: it feeds every
// queued write straight into the replica (whose batcher coalesces them) and
// completes the session's waiters as the batched results come back.
func (g *Gateway) batchingWorker(s *gwSession) {
	slots := make(chan struct{}, g.cfg.MaxInflight)
	for {
		// Reserve the slot BEFORE accepting a request: with the unbuffered
		// queue this makes MaxInflight the exact unanswered-write bound —
		// the connection's read loop blocks until a dispatch slot is free.
		select {
		case slots <- struct{}{}:
		case <-s.stop:
			return
		case <-g.done:
			return
		}
		var qr gwReq
		select {
		case qr = <-s.queue:
		case <-s.stop:
			return
		case <-g.done:
			return
		}
		g.observeInflight(s.processing.Add(1))
		g.wg.Add(1)
		go func(qr gwReq) {
			defer g.wg.Done()
			g.markDispatch(qr)
			res := g.processWrite(s, qr)
			s.send(res)
			s.touch()
			s.processing.Add(-1)
			s.inflight.Add(-1)
			g.finishWrite(s, qr)
			<-slots
		}(qr)
	}
}
