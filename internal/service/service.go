// Package service is the open-group edge of the stack: a network gateway
// that lets clients OUTSIDE the replicated group use the passively
// replicated service inside it (the Figure 8 client/server split carried
// over a real access network instead of in-process object references).
//
// Every node of the group embeds a Gateway. Clients dial any gateway over a
// framed stream (TCP in deployments, memnet streams in deterministic tests)
// and speak a small session protocol:
//
//	client                        gateway
//	  | HELLO{session}               |
//	  |----------------------------->|
//	  |        WELCOME{max, primary} |
//	  |<-----------------------------|
//	  | REQ{seq, ack, op}            |   writes: routed into the group via
//	  |----------------------------->|   the passive-replication primary
//	  |              RES{seq, result}|   (g-broadcast update, Section 3.2.3)
//	  |<-----------------------------|
//	  | REQ{seq, op, read, level}    |   reads: local, monotonic (commit-
//	  |----------------------------->|   index token) or linearizable
//	  |              RES{seq, result}|   (ordered no-op read barrier)
//	  |<-----------------------------|
//	  |     PUSH{primary}  (demotion)|   NOT_PRIMARY redirect, unsolicited
//	  |<-----------------------------|
//
// Exactly-once semantics: the client names every write with a (session, seq)
// pair; the replication layer records delivered results in a replicated
// session table (replication.RequestSession). A retry of an acknowledged
// write — after a timeout, a reconnect, or a fail-over to a new primary —
// returns the original result instead of executing twice, and unacknowledged
// writes are retried until they execute exactly once. REQ.Ack carries the
// client's highest contiguously acknowledged sequence so the table can be
// pruned identically at every replica.
//
// Read consistency: every response carries the serving replica's commit
// index, and the client keeps the maximum it has seen. A Monotonic read
// (the client default) ships that token as REQ.MinIndex; any gateway blocks
// the read until its replica has applied at least that index, so
// read-your-writes and monotonic reads hold even when the client fails over
// to a lagging gateway. A Linearizable read is served at the primary behind
// an ordered no-op barrier, coalesced across concurrent readers. Local reads
// (today's pre-PR-3 behavior) remain available opt-in.
//
// Backpressure: each session has a bounded in-flight window at the gateway
// (Config.MaxInflight). When the window is full the gateway stops reading
// from the session's connection, which propagates to the client through the
// stream, exactly like TCP flow control.
//
// Sharding: a gateway may front S parallel replicated groups
// (GatewayConfig.Shards); requests carry a shard tag, all guarantees above
// hold per shard, and ShardedClient routes operations by key hash — see
// sharded.go.
package service

import (
	"fmt"
	"time"

	"repro/internal/msg"
)

// Protocol frames. All travel msg-encoded inside stream frames.
type (
	// helloFrame opens (or resumes) a session. Shard binds the session to
	// one of the gateway's replicated groups (0 for single-shard gateways
	// and pre-shard clients): the welcome's primary fields describe THAT
	// shard, whose primary may differ from other shards' after a partial
	// failover.
	helloFrame struct {
		Session string
		Shard   uint32
	}
	// welcomeFrame acknowledges a hello.
	welcomeFrame struct {
		Session     string
		MaxInflight int
		Primary     string // service address of the hello shard's believed primary ("" unknown)
		IsPrimary   bool   // whether THIS gateway fronts the hello shard's primary
		Shards      int    // number of shards served by this gateway
	}
	// reqFrame is one client operation.
	reqFrame struct {
		Seq  uint64
		Ack  uint64 // highest contiguously acknowledged response
		Op   []byte
		Read bool // read-only operation; Level selects its consistency

		// Shard routes the operation to one of the gateway's replicated
		// groups. The zero value is shard 0, so pre-shard clients keep
		// working against single-shard gateways. Exactly-once state and
		// commit indexes are per shard: a (session, seq) retry must carry
		// the same Shard (guaranteed by deterministic key hashing), and a
		// session's replicated lease renewals cover only its hello shard —
		// ShardedClient binds one session per shard; raw-protocol sessions
		// should not mix shards within one session.
		Shard uint32
		// Level is the read's consistency level (meaningful with Read; the
		// zero value selects Local for wire compatibility with old clients).
		Level ReadLevel
		// MinIndex, with ReadMonotonic, is the commit index SHARD's replica
		// must have reached before answering — the session's last-seen
		// index on that shard, making reads monotonic across gateway
		// failover. Commit indexes of different shards are incomparable.
		MinIndex uint64
		// Budget is the client's remaining per-op time budget at transmit
		// (zero = unbounded, wire-compatible with old clients). It travels as
		// a duration, not a deadline, because client and gateway clocks need
		// not agree. The gateway drops an operation whose budget has lapsed
		// on its queue instead of burning ordered-path work on an answer the
		// client has already abandoned, and caps its own request timeout at
		// the remaining budget.
		Budget time.Duration
		// MaxAge, with ReadBoundedStaleness, is the oldest applied state the
		// client will accept: the serving replica answers locally if its
		// state's commit-timestamp age is within MaxAge, and answers TOO_STALE
		// (with a primary redirect hint) otherwise. Like Budget it travels as
		// a duration — never a timestamp — so client and gateway clocks need
		// not agree.
		MaxAge time.Duration
	}
	// resFrame answers reqFrame with the same Seq.
	resFrame struct {
		Seq      uint64
		Result   []byte
		Err      string // one of the err* codes, or a free-form message
		Redirect string // with errNotPrimary: address of the request shard's new primary
		// Index is the serving shard replica's commit index when the
		// operation was answered; the client folds it into that shard's
		// monotonic-read token.
		Index uint64
	}
	// pushFrame is unsolicited: the named shard's replica was demoted at
	// this gateway and its clients should reconnect to the new primary.
	// Sessions bound to other shards ignore it.
	pushFrame struct {
		Primary string
		Shard   uint32
	}
)

// ReadLevel selects the consistency of a read-only operation.
type ReadLevel int

const (
	// ReadDefault selects the client's configured default level
	// (ReadMonotonic unless overridden). On the wire it is served as
	// ReadLocal so pre-level clients keep their old behavior.
	ReadDefault ReadLevel = iota
	// ReadLocal serves the read from the contacted gateway's local state:
	// cheapest, but a lagging or partitioned gateway may return state older
	// than the session's own acknowledged writes.
	ReadLocal
	// ReadMonotonic blocks the read until the serving replica has applied
	// at least the session's last-seen commit index: read-your-writes and
	// monotonic reads survive failover to a lagging gateway, at any replica,
	// with no broadcast.
	ReadMonotonic
	// ReadLinearizable serves the read at the primary behind an ordered
	// no-op barrier (replication.ReadBarrier): the answer reflects every
	// write acknowledged before the read began, and a deposed or partitioned
	// primary cannot answer at all. Concurrent linearizable reads coalesce
	// into one barrier broadcast. With the leadership lease enabled, a
	// primary holding a live lease serves the read locally with no broadcast
	// at all, falling back to the barrier across lease handoffs.
	ReadLinearizable
	// ReadBoundedStaleness serves the read from the contacted replica's
	// local state provided that state is no older than reqFrame.MaxAge
	// behind the primary's commit timestamps — any replica, including PR 5
	// catch-up followers, becomes usable read capacity within an explicit
	// staleness bound. A replica outside the bound (or one that has never
	// observed a stamped delivery) answers a retryable TOO_STALE with a
	// primary redirect hint instead of silently serving older state.
	ReadBoundedStaleness
)

func (l ReadLevel) String() string {
	switch l {
	case ReadDefault:
		return "default"
	case ReadLocal:
		return "local"
	case ReadMonotonic:
		return "monotonic"
	case ReadLinearizable:
		return "linearizable"
	case ReadBoundedStaleness:
		return "bounded-staleness"
	default:
		return fmt.Sprintf("ReadLevel(%d)", int(l))
	}
}

// Error codes carried in resFrame.Err.
const (
	errNotPrimary   = "NOT_PRIMARY"
	errTimeout      = "TIMEOUT"
	errPruned       = "PRUNED"
	errNoReads      = "NO_READS"
	errBadReadLevel = "BAD_READ_LEVEL"
	errBadShard     = "BAD_SHARD"
	// errUnavailable marks an infrastructure failure below the gateway (a
	// replica stack shutting down or being replaced): retryable — the
	// client reconnects and retries, like TIMEOUT, rather than failing the
	// operation terminally.
	errUnavailable = "UNAVAILABLE"
	// errDegraded is the quorum-progress watchdog's fail-fast answer: the
	// serving replica believes it is the primary but cannot make ordered
	// progress (replication.ErrDegraded). Retryable like UNAVAILABLE — the
	// client reconnects and retries elsewhere — but counted separately, as
	// it is the signature of a partitioned primary rather than a crash.
	errDegraded = "DEGRADED"
	// errTooStale answers a ReadBoundedStaleness whose serving replica's
	// applied state is older than the request's MaxAge (or of unknown age).
	// Retryable: the redirect hint names the primary, which is fresh by
	// construction, but a sticky client may equally retry here after the
	// replica catches up.
	errTooStale = "TOO_STALE"
)

func init() {
	msg.Register(helloFrame{})
	msg.Register(welcomeFrame{})
	msg.Register(reqFrame{})
	msg.Register(resFrame{})
	msg.Register(pushFrame{})
}

// decodeFrame decodes one stream frame into a protocol frame.
func decodeFrame(data []byte) (any, error) {
	v, err := msg.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("service: bad frame: %w", err)
	}
	return v, nil
}

// encodeFrame encodes a protocol frame for the stream.
func encodeFrame(v any) ([]byte, error) {
	data, err := msg.Encode(v)
	if err != nil {
		return nil, fmt.Errorf("service: encode frame: %w", err)
	}
	return data, nil
}
