package service

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/transport"
)

// shardedCluster is an n-node group running S independent replicated groups
// (shards) on the same node set, every node's shards sharing ONE physical
// memnet endpoint through a GroupMux, with a sharded gateway per node.
type shardedCluster struct {
	network *transport.Network
	ids     []proc.ID
	muxes   []*transport.GroupMux
	nodes   [][]*core.Node           // [node][shard]
	reps    [][]*replication.Passive // [node][shard]
	sms     [][]*ledgerSM            // [node][shard]
	gws     []*Gateway
	addrs   map[proc.ID]string
	shards  int
}

// rotated returns ids rotated left by k — shard k's replica list, spreading
// initial primaries across the node set.
func rotated(ids []proc.ID, k int) []proc.ID {
	k = k % len(ids)
	out := make([]proc.ID, 0, len(ids))
	out = append(out, ids[k:]...)
	out = append(out, ids[:k]...)
	return out
}

func buildSharded(t *testing.T, n, shards int, tweakGW func(*GatewayConfig)) *shardedCluster {
	t.Helper()
	c := &shardedCluster{
		network: transport.NewNetwork(transport.WithDelay(0, 2*time.Millisecond), transport.WithSeed(11)),
		addrs:   make(map[proc.ID]string),
		shards:  shards,
	}
	for i := 0; i < n; i++ {
		c.ids = append(c.ids, proc.ID(fmt.Sprintf("s%d", i+1)))
	}
	for _, id := range c.ids {
		c.addrs[id] = string(id)
	}
	for _, id := range c.ids {
		mux := transport.NewGroupMux(c.network.Endpoint(id), shards)
		c.muxes = append(c.muxes, mux)
		var nodeStacks []*core.Node
		var nodeReps []*replication.Passive
		var nodeSMs []*ledgerSM
		for k := 0; k < shards; k++ {
			sm := newLedgerSM()
			rep := replication.NewPassive(sm, rotated(c.ids, k))
			node, err := core.NewNode(mux.Group(k), core.Config{
				Self: id, Universe: c.ids, Relation: replication.PassiveRelation(),
			}, rep.DeliverFunc())
			if err != nil {
				t.Fatal(err)
			}
			rep.Bind(node)
			nodeStacks = append(nodeStacks, node)
			nodeReps = append(nodeReps, rep)
			nodeSMs = append(nodeSMs, sm)
		}
		c.nodes = append(c.nodes, nodeStacks)
		c.reps = append(c.reps, nodeReps)
		c.sms = append(c.sms, nodeSMs)
	}
	for _, stacks := range c.nodes {
		for _, nd := range stacks {
			nd.Start()
		}
	}
	for i, id := range c.ids {
		cfg := GatewayConfig{Self: id, Addrs: c.addrs}
		for k := 0; k < shards; k++ {
			cfg.Shards = append(cfg.Shards, Shard{
				Replica: c.reps[i][k],
				Read:    c.sms[i][k].read,
			})
		}
		if tweakGW != nil {
			tweakGW(&cfg)
		}
		gw := NewGateway(cfg)
		l, err := c.network.ListenStream(id)
		if err != nil {
			t.Fatal(err)
		}
		gw.Serve(l)
		c.gws = append(c.gws, gw)
	}
	t.Cleanup(func() {
		for _, gw := range c.gws {
			gw.Close()
		}
		for _, stacks := range c.nodes {
			for _, nd := range stacks {
				nd.Stop()
			}
		}
		for _, mux := range c.muxes {
			mux.Close()
		}
		c.network.Shutdown()
	})
	return c
}

func (c *shardedCluster) startFailover(t *testing.T, timeout time.Duration) {
	t.Helper()
	for _, nodeReps := range c.reps {
		for _, r := range nodeReps {
			r.StartFailover(timeout)
		}
	}
	t.Cleanup(func() {
		for _, nodeReps := range c.reps {
			for _, r := range nodeReps {
				r.StopFailover()
			}
		}
	})
}

func (c *shardedCluster) addrList() []string {
	out := make([]string, 0, len(c.ids))
	for _, id := range c.ids {
		out = append(out, c.addrs[id])
	}
	return out
}

func (c *shardedCluster) newClient(t *testing.T, tweak func(*ShardedClientConfig)) *ShardedClient {
	t.Helper()
	cfg := ShardedClientConfig{
		ClientConfig: ClientConfig{
			Addrs: c.addrList(),
			Dial: func(addr string) (transport.StreamConn, error) {
				return c.network.DialStream(proc.ID(addr))
			},
			RetryBackoff: 2 * time.Millisecond,
			OpTimeout:    30 * time.Second,
		},
		Shards: c.shards,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	cl, err := NewShardedClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// opForShard crafts an op string that ShardOf routes to the wanted shard.
func opForShard(shards, shard, i int) string {
	for n := 0; ; n++ {
		op := fmt.Sprintf("sh%d-op%d-%d", shard, i, n)
		if ShardOf([]byte(op), shards) == shard {
			return op
		}
	}
}

// shardPrimaryIdx returns which node currently fronts shard k, as seen by
// the first surviving node's replica.
func (c *shardedCluster) shardPrimary(node, k int) proc.ID {
	return c.reps[node][k].Primary()
}

// countAt sums op applications for shard k at node i.
func (c *shardedCluster) countAt(node, k int, op string) int {
	return c.sms[node][k].count(op)
}

// TestShardOfDeterministic: the shard map is stable and total.
func TestShardOfDeterministic(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		seen := make(map[int]int)
		for i := 0; i < 512; i++ {
			key := []byte(fmt.Sprintf("key-%d", i))
			s1 := ShardOf(key, shards)
			s2 := ShardOf(key, shards)
			if s1 != s2 {
				t.Fatalf("ShardOf not deterministic for %q", key)
			}
			if s1 < 0 || s1 >= shards {
				t.Fatalf("ShardOf out of range: %d of %d", s1, shards)
			}
			seen[s1]++
		}
		if shards > 1 && len(seen) != shards {
			t.Fatalf("%d shards: only %d populated over 512 keys", shards, len(seen))
		}
	}
}

// TestShardedWriteAndRead: writes spread across shards land exactly once on
// their shard's replicas (and ONLY that shard), and reads route identically.
func TestShardedWriteAndRead(t *testing.T) {
	const shards = 3
	c := buildSharded(t, 3, shards, nil)
	client := c.newClient(t, nil)

	ops := make(map[int][]string) // shard -> ops
	for k := 0; k < shards; k++ {
		for i := 0; i < 5; i++ {
			op := opForShard(shards, k, i)
			ops[k] = append(ops[k], op)
			res, err := client.Call([]byte(op))
			if err != nil {
				t.Fatalf("op %s: %v", op, err)
			}
			if string(res) != "ok:"+op {
				t.Fatalf("op %s: result %q", op, res)
			}
		}
	}

	// Reads (monotonic default) observe each write on its shard.
	for k := 0; k < shards; k++ {
		for _, op := range ops[k] {
			got, err := client.Read([]byte(op))
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "1" {
				t.Fatalf("read %s: %q, want 1 application", op, got)
			}
		}
	}

	// Every replica of shard k converges on exactly one application of
	// shard k's ops and ZERO applications of other shards' ops.
	deadline := time.Now().Add(20 * time.Second)
	for node := 0; node < 3; node++ {
		for k := 0; k < shards; k++ {
			for _, op := range ops[k] {
				for c.countAt(node, k, op) != 1 {
					if time.Now().After(deadline) {
						t.Fatalf("node %d shard %d: op %s applied %d times",
							node, k, op, c.countAt(node, k, op))
					}
					time.Sleep(2 * time.Millisecond)
				}
				for j := 0; j < shards; j++ {
					if j != k && c.countAt(node, j, op) != 0 {
						t.Fatalf("op %s leaked into shard %d", op, j)
					}
				}
			}
		}
	}
}

// TestShardedPrimariesSpread: with rotated replica lists the initial
// primaries differ per shard while sharing the node set — the configuration
// that makes partial failover (one shard fails over, others undisturbed)
// possible at all.
func TestShardedPrimariesSpread(t *testing.T) {
	c := buildSharded(t, 3, 3, nil)
	want := []proc.ID{"s1", "s2", "s3"}
	for k := 0; k < 3; k++ {
		if got := c.shardPrimary(0, k); got != want[k] {
			t.Fatalf("shard %d primary %q, want %q", k, got, want[k])
		}
	}
}

// TestShardedFailoverIsolated is the acceptance test of per-shard
// correctness under partial failover: killing ONE shard's primary (a node
// that is a mere backup for the other shards) must
//
//   - keep that shard's sessions exactly-once across its failover (acked
//     writes applied exactly once at every survivor, retries deduplicated);
//   - keep Monotonic reads read-your-writes on that shard afterwards;
//   - leave the OTHER shards' primaries in place and their writes flowing
//     throughout.
func TestShardedFailoverIsolated(t *testing.T) {
	const shards = 3
	c := buildSharded(t, 3, shards, nil)
	c.startFailover(t, 60*time.Millisecond)
	client := c.newClient(t, func(cfg *ShardedClientConfig) {
		cfg.OpTimeout = 60 * time.Second
	})

	// Warm every shard: one acked write each, seeding monotonic tokens.
	warm := make([]string, shards)
	for k := 0; k < shards; k++ {
		warm[k] = opForShard(shards, k, 1000)
		if _, err := client.Call([]byte(warm[k])); err != nil {
			t.Fatalf("warm shard %d: %v", k, err)
		}
	}

	// Kill shard 0's primary (s1) — a backup for shards 1 and 2.
	c.network.Crash("s1")

	// The other shards keep committing while shard 0 has no primary yet.
	for k := 1; k < shards; k++ {
		op := opForShard(shards, k, 2000)
		if _, err := client.Call([]byte(op)); err != nil {
			t.Fatalf("shard %d write during shard-0 outage: %v", k, err)
		}
		// Their primaries never moved: s1 was only a backup there.
		if got := c.shardPrimary(1, k); got != c.ids[k] {
			t.Fatalf("shard %d primary moved to %q during shard-0 outage", k, got)
		}
	}

	// A shard-0 write issued during the outage succeeds after failover,
	// exactly once.
	op0 := opForShard(shards, 0, 3000)
	if _, err := client.Call([]byte(op0)); err != nil {
		t.Fatalf("shard 0 write across failover: %v", err)
	}

	// Read-your-writes on shard 0 via the default Monotonic level: both the
	// pre-crash warm write and the cross-failover write are visible.
	for _, op := range []string{warm[0], op0} {
		got, err := client.Read([]byte(op))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "1" {
			t.Fatalf("monotonic read of %q after failover: %q, want 1", op, got)
		}
	}

	// Shard 0 failed over away from s1; the survivors agree.
	deadline := time.Now().Add(20 * time.Second)
	for c.shardPrimary(1, 0) == "s1" || c.shardPrimary(2, 0) == "s1" {
		if time.Now().After(deadline) {
			t.Fatal("shard 0 never failed over")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Exactly-once everywhere that survived: no op applied twice on any
	// shard of any surviving node (s2=index 1, s3=index 2).
	for _, node := range []int{1, 2} {
		for k := 0; k < shards; k++ {
			if dups := c.sms[node][k].duplicatedOps(); len(dups) > 0 {
				t.Fatalf("node %d shard %d duplicated: %v", node, k, dups)
			}
		}
		for c.countAt(node, 0, op0) != 1 {
			if time.Now().After(deadline) {
				t.Fatalf("node %d shard 0: op %s applied %d times", node, op0, c.countAt(node, 0, op0))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestShardedClientShardMismatch: a client configured with MORE shards
// than the gateways serve must fail fast with a diagnostic error — not
// reconnect forever against silent closes, and not serve the subset of
// shards that happen to exist (its whole shard MAP is wrong). Shard
// counts are deployment-wide configuration; a mismatch can never heal.
func TestShardedClientShardMismatch(t *testing.T) {
	c := buildSharded(t, 3, 2, nil) // gateways serve 2 shards
	client := c.newClient(t, func(cfg *ShardedClientConfig) {
		cfg.Shards = 4 // client believes 4
		cfg.OpTimeout = 10 * time.Second
	})

	// Every shard index fails fast — including ones the gateways DO serve:
	// routing by a 4-shard map against a 2-shard deployment would put keys
	// on the wrong groups even when the index is in range.
	for _, shard := range []int{1, 3} {
		op := opForShard(4, shard, 1)
		start := time.Now()
		_, err := client.Call([]byte(op))
		if err == nil {
			t.Fatalf("shard-%d write succeeded despite count mismatch", shard)
		}
		if !strings.Contains(err.Error(), "shard") {
			t.Fatalf("error %q does not name the shard mismatch", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("mismatch took %v to surface (should fail fast, not time out)", elapsed)
		}
	}
}

// TestShardedClientFewerShards: the OTHER direction of the mismatch — a
// client assuming FEWER shards than the deployment serves. Every shard
// index it uses exists at the gateways, so without the ShardCount
// handshake check it would silently route keys by the wrong map (hashing
// mod 2 instead of mod 3) and read back other groups' state; it must fail
// fast instead.
func TestShardedClientFewerShards(t *testing.T) {
	c := buildSharded(t, 3, 3, nil) // gateways serve 3 shards
	client := c.newClient(t, func(cfg *ShardedClientConfig) {
		cfg.Shards = 2 // client believes 2
		cfg.OpTimeout = 10 * time.Second
	})
	start := time.Now()
	_, err := client.Call([]byte("any-key"))
	if err == nil {
		t.Fatal("write with mismatched shard count succeeded")
	}
	if !strings.Contains(err.Error(), "assumes 2 shard(s)") {
		t.Fatalf("error %q does not name the count mismatch", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("mismatch took %v to surface", elapsed)
	}
}

// TestShardedBatching: the sharded write path composes with group-commit
// batching — every shard runs its own batcher.
func TestShardedBatching(t *testing.T) {
	const shards = 2
	c := buildSharded(t, 3, shards, func(cfg *GatewayConfig) { cfg.Batching = true })
	for _, nodeReps := range c.reps {
		for _, rep := range nodeReps {
			rep.EnableBatching(replication.BatchConfig{})
		}
	}
	t.Cleanup(func() {
		for _, nodeReps := range c.reps {
			for _, rep := range nodeReps {
				rep.StopBatching()
			}
		}
	})
	client := c.newClient(t, nil)

	const per = 20
	errs := make(chan error, shards*per)
	for k := 0; k < shards; k++ {
		for i := 0; i < per; i++ {
			go func(k, i int) {
				_, err := client.Call([]byte(opForShard(shards, k, i)))
				errs <- err
			}(k, i)
		}
	}
	for i := 0; i < shards*per; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for node := 0; node < 3; node++ {
		for k := 0; k < shards; k++ {
			if dups := c.sms[node][k].duplicatedOps(); len(dups) > 0 {
				t.Fatalf("node %d shard %d duplicated: %v", node, k, dups)
			}
		}
	}
}
