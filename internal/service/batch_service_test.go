package service

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/replication"
)

// enableBatching switches the cluster's replicas to the group-commit write
// path (gateways additionally need GatewayConfig.Batching via tweakGW).
func (c *svcCluster) enableBatching(t *testing.T, cfg replication.BatchConfig) {
	t.Helper()
	for _, r := range c.reps {
		r.EnableBatching(cfg)
	}
	t.Cleanup(func() {
		for _, r := range c.reps {
			r.StopBatching()
		}
	})
}

// buildBatchedService is buildService with the full group-commit pipeline
// on: batching gateways over batching replicas.
func buildBatchedService(t *testing.T, n int, tweakGW func(*GatewayConfig)) *svcCluster {
	t.Helper()
	c := buildService(t, n, func(cfg *GatewayConfig) {
		cfg.Batching = true
		if tweakGW != nil {
			tweakGW(cfg)
		}
	})
	c.enableBatching(t, replication.BatchConfig{})
	return c
}

// TestServiceBatchedPipelinedWrites drives concurrent writes through one
// session with the batched pipeline: every op must execute exactly once and
// the replica's stats must show real coalescing (fewer broadcasts than ops).
func TestServiceBatchedPipelinedWrites(t *testing.T) {
	c := buildBatchedService(t, 3, nil)
	client := c.newClient(t, func(cfg *ClientConfig) { cfg.MaxInflight = 32 })

	const ops = 60
	var wg sync.WaitGroup
	errs := make([]error, ops)
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.Call([]byte(fmt.Sprintf("bop-%d", i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.sms[2].applied() < ops {
		if time.Now().After(deadline) {
			t.Fatalf("backup applied %d of %d", c.sms[2].applied(), ops)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i, sm := range c.sms {
		if dups := sm.duplicatedOps(); len(dups) > 0 {
			t.Fatalf("replica %d duplicated: %v", i, dups)
		}
	}
	st := c.reps[0].BatchStats()
	if st.Ops != ops {
		t.Fatalf("batcher carried %d ops, want %d", st.Ops, ops)
	}
	if st.Batches >= ops {
		t.Fatalf("no coalescing: %d batches for %d ops", st.Batches, ops)
	}
	t.Logf("coalescing: %d ops in %d batches (max %d)", st.Ops, st.Batches, st.MaxBatch)
}

// TestServiceBatchedFailoverExactlyOnce is the batched counterpart of the
// end-to-end failover guarantee: the primary is killed while batches are in
// flight, and afterwards every acknowledged op must have applied exactly
// once at every survivor, every unacknowledged op having been retried under
// its original (session, seq) until it applied exactly once too.
func TestServiceBatchedFailoverExactlyOnce(t *testing.T) {
	c := buildBatchedService(t, 3, nil)
	c.startFailover(t, 60*time.Millisecond)
	client := c.newClient(t, func(cfg *ClientConfig) {
		cfg.MaxInflight = 16
		cfg.OpTimeout = 60 * time.Second
	})

	const (
		workers    = 4
		opsPerWkr  = 25
		crashAfter = 10 // acked ops before the crash
	)

	var (
		mu    sync.Mutex
		acked = make(map[string]bool)
	)
	var ackedEarly sync.WaitGroup
	ackedEarly.Add(crashAfter)
	var early int

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWkr; i++ {
				op := fmt.Sprintf("bw%d-op%d", w, i)
				res, err := client.Call([]byte(op))
				if err != nil {
					t.Errorf("op %s: %v", op, err)
					return
				}
				if string(res) != "ok:"+op {
					t.Errorf("op %s: result %q", op, res)
					return
				}
				mu.Lock()
				acked[op] = true
				if early < crashAfter {
					early++
					ackedEarly.Done()
				}
				mu.Unlock()
			}
		}(w)
	}

	// Kill the primary once some writes are acknowledged: with 4 pipelined
	// workers the crash lands while a batch (the group-commit window) is in
	// flight, so both halves of the guarantee are exercised — acknowledged
	// entries must survive, in-flight entries must be retried, and neither
	// may double-apply.
	ackedEarly.Wait()
	c.network.Crash("s1")
	wg.Wait()

	total := workers * opsPerWkr
	mu.Lock()
	ackCount := len(acked)
	mu.Unlock()
	if ackCount != total {
		t.Fatalf("only %d of %d ops acknowledged", ackCount, total)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, i := range []int{1, 2} {
			if c.sms[i].applied() < total {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors did not converge: s2=%d s3=%d want %d",
				c.sms[1].applied(), c.sms[2].applied(), total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, i := range []int{1, 2} {
		if dups := c.sms[i].duplicatedOps(); len(dups) > 0 {
			t.Fatalf("replica s%d applied ops more than once: %v", i+1, dups)
		}
		for op := range acked {
			if n := c.sms[i].count(op); n != 1 {
				t.Fatalf("acknowledged op %s applied %d times at s%d", op, n, i+1)
			}
		}
	}
	if got := client.Primary(); got == "s1" || got == "" {
		t.Fatalf("client still believes primary is %q", got)
	}
}

// TestServiceBatchedBackpressure checks the batching dispatch still bounds
// per-session concurrency at MaxInflight.
func TestServiceBatchedBackpressure(t *testing.T) {
	const window = 4
	c := buildBatchedService(t, 3, func(cfg *GatewayConfig) { cfg.MaxInflight = window })
	client := c.newClient(t, func(cfg *ClientConfig) { cfg.MaxInflight = 64 })

	const ops = 80
	var wg sync.WaitGroup
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := client.Call([]byte(fmt.Sprintf("bbp-%d", i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := c.gws[0].Stats().MaxInflight; got > window {
		t.Fatalf("observed %d concurrent writes, limit %d", got, window)
	}
	if c.gws[0].Stats().Writes == 0 {
		t.Fatal("no writes reached the primary gateway")
	}
}
