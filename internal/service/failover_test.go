package service

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestServiceFailoverExactlyOnce is the end-to-end failover guarantee over
// the simulated network: a client streams pipelined writes at a 3-node
// group, the primary is crashed mid-stream, and the client fails over to
// the new primary. Afterwards:
//
//   - every ACKNOWLEDGED write is applied exactly once at every surviving
//     replica (no duplicate from the retry path, no lost ack);
//   - every unacknowledged write was retried until it too applied exactly
//     once (the test keeps calling until all ops succeed);
//   - no op is applied twice anywhere.
func TestServiceFailoverExactlyOnce(t *testing.T) {
	c := buildService(t, 3, nil)
	c.startFailover(t, 60*time.Millisecond)
	client := c.newClient(t, func(cfg *ClientConfig) {
		cfg.MaxInflight = 8
		cfg.OpTimeout = 60 * time.Second
	})

	const (
		workers    = 4
		opsPerWkr  = 25
		crashAfter = 10 // acked ops before the crash
	)

	var (
		mu    sync.Mutex
		acked = make(map[string]bool) // ops whose Call returned nil error
	)
	var ackedEarly sync.WaitGroup
	ackedEarly.Add(crashAfter)
	var early int

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWkr; i++ {
				op := fmt.Sprintf("w%d-op%d", w, i)
				res, err := client.Call([]byte(op))
				if err != nil {
					t.Errorf("op %s: %v", op, err)
					return
				}
				if string(res) != "ok:"+op {
					t.Errorf("op %s: result %q", op, res)
					return
				}
				mu.Lock()
				acked[op] = true
				if early < crashAfter {
					early++
					ackedEarly.Done()
				}
				mu.Unlock()
			}
		}(w)
	}

	// Crash the primary once a batch of writes has been acknowledged, while
	// plenty are still in flight.
	ackedEarly.Wait()
	c.network.Crash("s1")
	wg.Wait()

	total := workers * opsPerWkr
	mu.Lock()
	ackCount := len(acked)
	mu.Unlock()
	if ackCount != total {
		t.Fatalf("only %d of %d ops acknowledged", ackCount, total)
	}

	// Survivors converge: every op applied exactly once at s2 and s3.
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, i := range []int{1, 2} {
			if c.sms[i].applied() < total {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors did not converge: s2=%d s3=%d want %d",
				c.sms[1].applied(), c.sms[2].applied(), total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, i := range []int{1, 2} {
		if dups := c.sms[i].duplicatedOps(); len(dups) > 0 {
			t.Fatalf("replica s%d applied ops more than once: %v", i+1, dups)
		}
		for op := range acked {
			if n := c.sms[i].count(op); n != 1 {
				t.Fatalf("acknowledged op %s applied %d times at s%d", op, n, i+1)
			}
		}
	}
	if got := client.Primary(); got == "s1" || got == "" {
		t.Fatalf("client still believes primary is %q", got)
	}
}

// TestServiceFailoverRetriesDuringOutage checks the client keeps retrying
// through the election window: a write issued immediately after the crash
// (before any backup has been elected) must eventually succeed at the new
// primary without executing twice.
func TestServiceFailoverRetriesDuringOutage(t *testing.T) {
	c := buildService(t, 3, nil)
	c.startFailover(t, 60*time.Millisecond)
	client := c.newClient(t, func(cfg *ClientConfig) { cfg.OpTimeout = 60 * time.Second })

	if _, err := client.Call([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	c.network.Crash("s1")
	// Issued during the outage: no primary exists until failover completes.
	res, err := client.Call([]byte("during-outage"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "ok:during-outage" {
		t.Fatalf("result %q", res)
	}
	deadline := time.Now().Add(20 * time.Second)
	for c.sms[2].count("during-outage") != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("op applied %d times at s3", c.sms[2].count("during-outage"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, i := range []int{1, 2} {
		if dups := c.sms[i].duplicatedOps(); len(dups) > 0 {
			t.Fatalf("replica s%d duplicated: %v", i+1, dups)
		}
	}
}
