package service

import (
	"time"

	"repro/internal/telemetry"
)

// Gateway observability: per-stage latency histograms and sampled op traces.
//
// The gateway is where an operation's life begins and ends, so it owns the
// end-to-end measurements: queue wait (connection read loop → worker
// dispatch), write latency (enqueue → response sent, covering the whole
// replicated path), and per-level read latency. The interior stages —
// batch_enqueue, batch_flush, delivered — belong to the replication layer,
// which marks them onto the same trace through the op key
// (telemetry.OpKey(session, seq)); see replication.SetTracer.
//
// Everything the gateway already counts atomically (GatewayStats) is
// exported through scrape-time counter/gauge funcs; only the latency
// histograms are pushed, behind one atomic pointer load, so the
// uninstrumented gateway pays a single branch per op.

// gwReq is one queued write: the frame, its enqueue time (for queue-wait
// and end-to-end latency) and, for sampled ops, the trace following it
// across layers.
type gwReq struct {
	f  reqFrame
	at time.Time
	tr *telemetry.Trace
}

// gwMetrics is the gateway's pushed instrument set.
type gwMetrics struct {
	queueWait   *telemetry.Histogram // connection read loop → worker dispatch
	writeOp     *telemetry.Histogram // enqueue → response sent
	readLocal   *telemetry.Histogram
	readMono    *telemetry.Histogram
	readLin     *telemetry.Histogram
	readBounded *telemetry.Histogram
	staleAge    *telemetry.Histogram // served bounded reads' state age
}

// readOp returns the histogram for a read level (levels are validated
// before observation; ReadDefault is normalized to ReadLocal upstream).
func (m *gwMetrics) readOp(level ReadLevel) *telemetry.Histogram {
	switch level {
	case ReadMonotonic:
		return m.readMono
	case ReadLinearizable:
		return m.readLin
	case ReadBoundedStaleness:
		return m.readBounded
	default:
		return m.readLocal
	}
}

// RegisterMetrics binds the gateway's accounting into scope and enables
// the latency histograms. Call once, at wiring time.
func (g *Gateway) RegisterMetrics(s *telemetry.Scope) {
	if s == nil {
		return
	}
	s.CounterFunc("gcs_service_writes_total",
		"Write operations answered successfully.",
		func() float64 { return float64(g.writes.Load()) })
	s.CounterFunc("gcs_service_reads_total",
		"Read operations answered successfully.",
		func() float64 { return float64(g.reads.Load()) })
	s.CounterFunc("gcs_service_redirects_total",
		"NOT_PRIMARY answers and demotion pushes.",
		func() float64 { return float64(g.redirects.Load()) })
	s.CounterFunc("gcs_service_timeouts_total",
		"Operations answered TIMEOUT.",
		func() float64 { return float64(g.timeouts.Load()) })
	s.CounterFunc("gcs_service_unavailable_total",
		"Operations answered UNAVAILABLE (retryable infrastructure failure).",
		func() float64 { return float64(g.unavail.Load()) })
	s.CounterFunc("gcs_service_degraded_total",
		"Operations answered DEGRADED by a quorumless primary failing fast.",
		func() float64 { return float64(g.degraded.Load()) })
	s.CounterFunc("gcs_service_deadline_drops_total",
		"Operations dropped because the client's per-op budget lapsed in queue.",
		func() float64 { return float64(g.ddlDrops.Load()) })
	s.CounterFunc("gcs_service_too_stale_total",
		"Bounded-staleness reads refused because local state exceeded the bound.",
		func() float64 { return float64(g.tooStale.Load()) })
	s.CounterFunc("gcs_service_sessions_expired_total",
		"Sessions garbage-collected by the idle lease.",
		func() float64 { return float64(g.expired.Load()) })
	s.GaugeFunc("gcs_service_sessions",
		"Live sessions at this gateway.",
		func() float64 {
			g.mu.Lock()
			n := len(g.sessions)
			g.mu.Unlock()
			return float64(n)
		})
	s.GaugeFunc("gcs_service_active_streams",
		"Currently attached client connections.",
		func() float64 { return float64(g.active.Load()) })
	s.GaugeFunc("gcs_service_max_inflight",
		"Highest per-session unanswered-write count observed.",
		func() float64 { return float64(g.maxInflight.Load()) })

	g.metrics.Store(&gwMetrics{
		queueWait: s.Histogram("gcs_service_write_queue_seconds",
			"Time a write waits in the session queue before its worker dispatches it."),
		writeOp: s.Histogram("gcs_service_write_seconds",
			"Write latency, enqueue at the gateway to response sent."),
		readLocal: s.Histogram("gcs_service_read_local_seconds",
			"Local-level read latency at the gateway."),
		readMono: s.Histogram("gcs_service_read_monotonic_seconds",
			"Monotonic-level read latency at the gateway (incl. commit waits)."),
		readLin: s.Histogram("gcs_service_read_linearizable_seconds",
			"Linearizable read latency at the gateway (incl. the ordered barrier)."),
		readBounded: s.Histogram("gcs_service_read_bounded_seconds",
			"Bounded-staleness read latency at the gateway."),
		staleAge: s.Histogram("gcs_service_read_staleness_seconds",
			"Applied-state age of served bounded-staleness reads."),
	})
}

// SetTracer installs the tracer that samples write ops at the gateway and
// captures slow ops of every kind. The gateway owns sampling; replication
// layers mark attached traces by op key.
func (g *Gateway) SetTracer(t *telemetry.Tracer) {
	g.tracer.Store(t)
}

// markDispatch records queue wait and marks the dispatch stage as a
// write leaves the session queue for its worker.
func (g *Gateway) markDispatch(qr gwReq) {
	if m := g.metrics.Load(); m != nil {
		m.queueWait.ObserveSince(qr.at)
	}
	qr.tr.Mark("dispatch")
}

// finishWrite completes a write's observation after its response was sent:
// end-to-end latency, the sampled trace's finish (detaching its op key so
// the replication layer stops marking it), and slow-op capture for
// unsampled ops.
func (g *Gateway) finishWrite(s *gwSession, qr gwReq) {
	if m := g.metrics.Load(); m != nil {
		m.writeOp.ObserveSince(qr.at)
	}
	tracer := g.tracer.Load()
	if tracer == nil {
		return
	}
	if qr.tr != nil {
		tracer.Detach(telemetry.OpKey(s.id, qr.f.Seq))
		tracer.Finish(qr.tr)
		return
	}
	if d := time.Since(qr.at); d >= tracer.SlowThreshold() {
		tracer.CaptureSlow("write", s.id, qr.at, d)
	}
}

// dropTrace abandons a queued write's trace on shutdown paths where the
// write will never be processed.
func (g *Gateway) dropTrace(s *gwSession, qr gwReq) {
	if qr.tr == nil {
		return
	}
	if tracer := g.tracer.Load(); tracer != nil {
		tracer.Detach(telemetry.OpKey(s.id, qr.f.Seq))
	}
}
