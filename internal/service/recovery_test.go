package service

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/replication"
	"repro/internal/transport"
)

// countingDialer wraps the cluster dialer and counts attempts.
type countingDialer struct {
	inner    Dialer
	attempts atomic.Int64
}

func (d *countingDialer) dial(addr string) (transport.StreamConn, error) {
	d.attempts.Add(1)
	return d.inner(addr)
}

// TestClientWholeGroupUnreachable is the regression test for the untested
// failure mode "the entire primary set is briefly unreachable": the client
// must (a) keep its jittered reconnect backoff bounded — neither giving up
// nor stampeding the dead gateways with unbounded retry rates — (b) fail
// the operation with the TYPED ErrUnavailable once OpTimeout expires, and
// (c) recover transparently once gateways return.
func TestClientWholeGroupUnreachable(t *testing.T) {
	c := buildService(t, 3, nil)
	dialer := &countingDialer{inner: c.dialer()}
	const backoff = 4 * time.Millisecond
	client := c.newClient(t, func(cfg *ClientConfig) {
		cfg.Dial = dialer.dial
		cfg.OpTimeout = 700 * time.Millisecond
		cfg.RetryBackoff = backoff
	})

	// Sanity write while everybody is up.
	if _, err := client.Call([]byte("w1")); err != nil {
		t.Fatal(err)
	}

	// The whole primary set vanishes.
	for _, id := range c.ids {
		c.network.Crash(id)
	}
	dialer.attempts.Store(0)
	start := time.Now()
	_, err := client.Call([]byte("w2"))
	outage := time.Since(start)
	if err == nil {
		t.Fatal("write succeeded with every gateway down")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("error %v is not typed ErrUnavailable", err)
	}
	if outage < 600*time.Millisecond {
		t.Fatalf("gave up after %v, before OpTimeout", outage)
	}

	// Bounded backoff: with base b doubling to at most 32b (jittered to at
	// least b/2 per sweep), the attempt count over the outage has a hard
	// ceiling of roughly 3·outage/(b/2) dials (3 addresses per sweep) plus
	// slack for the first fast sweeps — far below an unthrottled spin,
	// which would rack up orders of magnitude more on memnet.
	attempts := dialer.attempts.Load()
	ceiling := int64(3*int(outage/(backoff/2))) + 64
	if attempts == 0 {
		t.Fatal("client never retried during the outage")
	}
	if attempts > ceiling {
		t.Fatalf("%d dial attempts in %v — backoff not bounded (ceiling %d)", attempts, outage, ceiling)
	}

	// Heal: the client recovers on its own (the reconnect loop must have
	// survived the failure) and the retried op is exactly-once.
	for _, id := range c.ids {
		c.network.Restart(id)
	}
	if _, err := client.Call([]byte("w3")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	for i := range c.sms {
		if n := c.sms[i].count("w3"); n > 1 {
			t.Fatalf("node %d applied w3 %d times", i, n)
		}
	}
}

// TestDegradedPauseNeverSpins pins the floor on reconnect()'s degraded-mode
// pause: the pause must stay strictly positive for every streak even when a
// copied or mutated config carries a zero (or negative) RetryBackoff —
// otherwise a degraded episode becomes a hot handshake/DEGRADED loop — and
// must keep its doubling-with-streak, capped-at-32x shape for sane configs.
func TestDegradedPauseNeverSpins(t *testing.T) {
	// Built directly, not via NewClient: the clamp is defense in depth
	// BEHIND the constructor's normalization, so the test smuggles the
	// zero base past it the same way a mutated config would.
	zero := &Client{cfg: ClientConfig{RetryBackoff: 0}}
	for streak := uint32(0); streak <= 8; streak++ {
		zero.degradedStreak.Store(streak)
		if p := zero.degradedPause(); p <= 0 {
			t.Fatalf("streak %d: pause %v with zero RetryBackoff — degraded reconnect would spin", streak, p)
		}
	}

	const base = 8 * time.Millisecond
	sane := &Client{cfg: ClientConfig{RetryBackoff: base}}
	for streak, want := uint32(0), base; streak <= 7; streak++ {
		sane.degradedStreak.Store(streak)
		for i := 0; i < 50; i++ {
			p := sane.degradedPause()
			if p < want/2 || p > want {
				t.Fatalf("streak %d: pause %v outside [%v, %v]", streak, p, want/2, want)
			}
		}
		if want < 32*base { // doubling caps at 32x (shift clamped to 5)
			want *= 2
		}
	}
}

// TestGatewayReplaceShard: a gateway's replica handle is replaced mid-life
// — the crash-recovery path where a node's replica stack is swapped for a
// rebuilt one — and the attached session keeps working: in-flight dedup
// state is replicated, so writes retried through the new handle stay
// exactly-once, and clients are refreshed instead of erroring forever.
func TestGatewayReplaceShard(t *testing.T) {
	c := buildService(t, 3, nil)
	client := c.newClient(t, nil)

	if _, err := client.Call([]byte("before")); err != nil {
		t.Fatal(err)
	}

	// Stand up a follower fed from the group and swap it into EVERY
	// gateway's shard 0 on the backup nodes (the primary keeps its real
	// replica so writes still commit). Sessions attached to those gateways
	// must transparently continue.
	sm := newLedgerSM()
	follower := replication.NewFollower(sm, "f1")
	// A follower without a syncer still serves: Primary() redirects writes.
	// Install the current state so reads would be sane.
	if err := follower.InstallSnapshot(c.reps[1].EncodeSnapshot()); err != nil {
		t.Fatal(err)
	}
	c.gws[1].ReplaceShard(0, Shard{Replica: follower, Read: sm.read})

	// The replaced gateway answers writes with a redirect (its handle is a
	// follower now); clients chase it and writes still succeed exactly-once.
	for i := 0; i < 5; i++ {
		if _, err := client.Call([]byte("after")); err != nil {
			t.Fatalf("write %d after replace: %v", i, err)
		}
	}
	if n := c.sms[0].count("before"); n != 1 {
		t.Fatalf("before applied %d times", n)
	}
	if n := c.sms[0].count("after"); n != 5 {
		t.Fatalf("after applied %d times, want 5", n)
	}

	// Swapping in a handle for a shard out of range must panic loudly (a
	// wiring bug, not a runtime condition).
	defer func() {
		if recover() == nil {
			t.Fatal("ReplaceShard out of range did not panic")
		}
	}()
	c.gws[1].ReplaceShard(7, Shard{Replica: follower, Read: sm.read})
}
