package service

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/transport"
)

// ledgerSM is a passive state machine that records every applied update, so
// duplicated or lost applications are directly observable. Execute echoes
// the op; reads return the application count of an op payload.
type ledgerSM struct {
	mu      sync.Mutex
	applies []string
	counts  map[string]int
}

func newLedgerSM() *ledgerSM {
	return &ledgerSM{counts: make(map[string]int)}
}

func (l *ledgerSM) Execute(op []byte) ([]byte, []byte) {
	return []byte("ok:" + string(op)), op
}

func (l *ledgerSM) ApplyUpdate(update []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.applies = append(l.applies, string(update))
	l.counts[string(update)]++
}

func (l *ledgerSM) read(op []byte) []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return []byte(fmt.Sprintf("%d", l.counts[string(op)]))
}

func (l *ledgerSM) count(op string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[op]
}

func (l *ledgerSM) applied() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.applies)
}

// duplicatedOps returns ops applied more than once (must always be empty).
func (l *ledgerSM) duplicatedOps() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var dups []string
	for op, n := range l.counts {
		if n > 1 {
			dups = append(dups, fmt.Sprintf("%s x%d", op, n))
		}
	}
	return dups
}

// svcCluster is a 3-node group with a gateway embedded in every node, all
// over one simulated network.
type svcCluster struct {
	network *transport.Network
	ids     []proc.ID
	nodes   []*core.Node
	reps    []*replication.Passive
	sms     []*ledgerSM
	gws     []*Gateway
	addrs   map[proc.ID]string
}

func buildService(t *testing.T, n int, tweakGW func(*GatewayConfig)) *svcCluster {
	t.Helper()
	c := &svcCluster{
		network: transport.NewNetwork(transport.WithDelay(0, 2*time.Millisecond), transport.WithSeed(7)),
		addrs:   make(map[proc.ID]string),
	}
	for i := 0; i < n; i++ {
		c.ids = append(c.ids, proc.ID(fmt.Sprintf("s%d", i+1)))
	}
	for _, id := range c.ids {
		c.addrs[id] = string(id) // memnet stream addresses are the IDs
	}
	for i, id := range c.ids {
		sm := newLedgerSM()
		rep := replication.NewPassive(sm, c.ids)
		node, err := core.NewNode(c.network.Endpoint(id), core.Config{
			Self: id, Universe: c.ids, Relation: replication.PassiveRelation(),
		}, rep.DeliverFunc())
		if err != nil {
			t.Fatal(err)
		}
		rep.Bind(node)
		c.sms = append(c.sms, sm)
		c.reps = append(c.reps, rep)
		c.nodes = append(c.nodes, node)
		_ = i
	}
	for _, nd := range c.nodes {
		nd.Start()
	}
	for i, id := range c.ids {
		cfg := GatewayConfig{
			Self:    id,
			Replica: c.reps[i],
			Read:    c.sms[i].read,
			Addrs:   c.addrs,
		}
		if tweakGW != nil {
			tweakGW(&cfg)
		}
		gw := NewGateway(cfg)
		l, err := c.network.ListenStream(id)
		if err != nil {
			t.Fatal(err)
		}
		gw.Serve(l)
		c.gws = append(c.gws, gw)
	}
	t.Cleanup(func() {
		for _, gw := range c.gws {
			gw.Close()
		}
		for _, nd := range c.nodes {
			nd.Stop()
		}
		c.network.Shutdown()
	})
	return c
}

func (c *svcCluster) startFailover(t *testing.T, timeout time.Duration) {
	t.Helper()
	for _, r := range c.reps {
		r.StartFailover(timeout)
	}
	t.Cleanup(func() {
		for _, r := range c.reps {
			r.StopFailover()
		}
	})
}

func (c *svcCluster) addrList() []string {
	out := make([]string, 0, len(c.ids))
	for _, id := range c.ids {
		out = append(out, c.addrs[id])
	}
	return out
}

func (c *svcCluster) dialer() Dialer {
	return func(addr string) (transport.StreamConn, error) {
		return c.network.DialStream(proc.ID(addr))
	}
}

func (c *svcCluster) newClient(t *testing.T, tweak func(*ClientConfig)) *Client {
	t.Helper()
	cfg := ClientConfig{
		Addrs:        c.addrList(),
		Dial:         c.dialer(),
		RetryBackoff: 2 * time.Millisecond,
		OpTimeout:    30 * time.Second,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	cl, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestServiceWriteAndRead(t *testing.T) {
	c := buildService(t, 3, nil)
	client := c.newClient(t, nil)

	res, err := client.Call([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "ok:hello" {
		t.Fatalf("result %q", res)
	}
	// The write is applied at the primary's replica; a read through the
	// client (served locally at the connected gateway) observes it.
	got, err := client.Read([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "1" {
		t.Fatalf("read %q, want 1 application", got)
	}
	// All replicas converge on exactly one application.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, sm := range c.sms {
			if sm.count("hello") != 1 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas did not converge: %d %d %d",
				c.sms[0].count("hello"), c.sms[1].count("hello"), c.sms[2].count("hello"))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServicePipelinedWrites drives many concurrent writes through one
// session and checks they all execute exactly once.
func TestServicePipelinedWrites(t *testing.T) {
	c := buildService(t, 3, nil)
	client := c.newClient(t, func(cfg *ClientConfig) { cfg.MaxInflight = 16 })

	const ops = 60
	var wg sync.WaitGroup
	errs := make([]error, ops)
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.Call([]byte(fmt.Sprintf("op-%d", i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.sms[2].applied() < ops {
		if time.Now().After(deadline) {
			t.Fatalf("backup applied %d of %d", c.sms[2].applied(), ops)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i, sm := range c.sms {
		if dups := sm.duplicatedOps(); len(dups) > 0 {
			t.Fatalf("replica %d duplicated: %v", i, dups)
		}
	}
}

// TestServiceRedirect speaks the raw protocol to a backup gateway: a write
// must be answered NOT_PRIMARY with the primary's address as the hint.
func TestServiceRedirect(t *testing.T) {
	c := buildService(t, 3, nil)

	conn, err := c.network.DialStream("s2") // a backup
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send := func(v any) {
		frame, err := encodeFrame(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(frame); err != nil {
			t.Fatal(err)
		}
	}
	recv := func() any {
		data, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		v, err := decodeFrame(data)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	send(helloFrame{Session: "raw1"})
	welcome, ok := recv().(welcomeFrame)
	if !ok {
		t.Fatal("no welcome")
	}
	if welcome.IsPrimary {
		t.Fatal("backup claims to be primary")
	}
	if welcome.Primary != "s1" {
		t.Fatalf("welcome hint %q, want s1", welcome.Primary)
	}

	send(reqFrame{Seq: 1, Op: []byte("x")})
	res, ok := recv().(resFrame)
	if !ok {
		t.Fatal("no response")
	}
	if res.Err != errNotPrimary {
		t.Fatalf("err %q, want %q", res.Err, errNotPrimary)
	}
	if res.Redirect != "s1" {
		t.Fatalf("redirect %q, want s1", res.Redirect)
	}

	// Reads are served locally even at a backup.
	send(reqFrame{Seq: 2, Op: []byte("whatever"), Read: true})
	res, ok = recv().(resFrame)
	if !ok || res.Err != "" {
		t.Fatalf("read at backup failed: %+v", res)
	}
}

// TestServiceClientStartsAtBackup gives the client only the backups' view
// first: the connect handshake hint must lead it to the primary.
func TestServiceClientStartsAtBackup(t *testing.T) {
	c := buildService(t, 3, nil)
	client := c.newClient(t, func(cfg *ClientConfig) {
		cfg.Addrs = []string{"s3", "s2", "s1"} // backup first
	})
	if _, err := client.Call([]byte("via-backup")); err != nil {
		t.Fatal(err)
	}
	if client.Primary() != "s1" {
		t.Fatalf("client hint %q, want s1", client.Primary())
	}
}

// TestServiceBackpressure blasts writes at a gateway with a tiny window and
// checks the per-session in-flight bound holds.
func TestServiceBackpressure(t *testing.T) {
	const window = 4
	c := buildService(t, 3, func(cfg *GatewayConfig) { cfg.MaxInflight = window })
	client := c.newClient(t, func(cfg *ClientConfig) { cfg.MaxInflight = 64 })

	const ops = 80
	var wg sync.WaitGroup
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := client.Call([]byte(fmt.Sprintf("bp-%d", i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := c.gws[0].Stats().MaxInflight; got > window {
		t.Fatalf("observed %d in-flight writes, limit %d", got, window)
	}
	if c.gws[0].Stats().Writes == 0 {
		t.Fatal("no writes reached the primary gateway")
	}
}

// TestServiceDemotionPush: a primary change while a client is attached to
// the old primary must push a NOT_PRIMARY redirect; the client follows it
// and subsequent writes succeed at the new primary.
func TestServiceDemotionPush(t *testing.T) {
	c := buildService(t, 3, nil)
	client := c.newClient(t, nil)

	if _, err := client.Call([]byte("before-change")); err != nil {
		t.Fatal(err)
	}
	if client.Primary() != "s1" {
		t.Fatalf("hint %q", client.Primary())
	}
	// s2 forces a primary change (no crash: s1 is merely demoted).
	if err := c.reps[1].RequestPrimaryChange("s1"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.reps[0].Primary() != "s2" {
		if time.Now().After(deadline) {
			t.Fatal("no primary change")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The next write lands at s2 (directly or after one redirect hop).
	if _, err := client.Call([]byte("after-change")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for c.sms[1].count("after-change") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("write did not reach the new primary")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := client.Primary(); got != "s2" {
		t.Fatalf("client hint %q after demotion, want s2", got)
	}
	for i, sm := range c.sms {
		if dups := sm.duplicatedOps(); len(dups) > 0 {
			t.Fatalf("replica %d duplicated: %v", i, dups)
		}
	}
}

// TestServiceSessionResume: a new client process reusing the session ID
// resumes the dedup state — a retried op answers from the table.
func TestServiceSessionResume(t *testing.T) {
	c := buildService(t, 3, nil)
	first := c.newClient(t, func(cfg *ClientConfig) { cfg.Session = "resume-me" })
	res, err := first.Call([]byte("once"))
	if err != nil {
		t.Fatal(err)
	}
	first.Close()

	// The "restarted" client did not see the ack and retries seq 1.
	second := c.newClient(t, func(cfg *ClientConfig) { cfg.Session = "resume-me" })
	res2, err := second.Call([]byte("once"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res2) != string(res) {
		t.Fatalf("resumed session got %q, original %q", res2, res)
	}
	time.Sleep(50 * time.Millisecond) // let any (wrong) duplicate apply
	if n := c.sms[0].count("once"); n != 1 {
		t.Fatalf("op applied %d times", n)
	}
	if !strings.HasPrefix(string(res), "ok:") {
		t.Fatalf("result %q", res)
	}
}
