package service

import (
	"testing"
	"time"
)

// TestGatewaySessionExpiry: a disconnected, idle session is garbage-collected
// after its lease, while the replicated dedup table keeps protecting retries
// that arrive after the gateway-side state is gone.
func TestGatewaySessionExpiry(t *testing.T) {
	const ttl = 60 * time.Millisecond
	c := buildService(t, 3, func(cfg *GatewayConfig) { cfg.SessionTTL = ttl })

	first := c.newClient(t, func(cfg *ClientConfig) { cfg.Session = "leased" })
	res, err := first.Call([]byte("once"))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.gws[0].Stats().Sessions; got != 1 {
		t.Fatalf("sessions after connect: %d", got)
	}
	first.Close()

	// The lease runs out only after the connection is gone and the session
	// has no in-flight work.
	deadline := time.Now().Add(10 * time.Second)
	for c.gws[0].Stats().Sessions != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session not expired: %+v", c.gws[0].Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.gws[0].Stats().Expired; got == 0 {
		t.Fatal("expiry not accounted")
	}

	// A client resuming the session ID gets fresh gateway state but the
	// SAME dedup guarantee: retrying seq 1 returns the original result and
	// the op is not applied twice.
	second := c.newClient(t, func(cfg *ClientConfig) { cfg.Session = "leased" })
	res2, err := second.Call([]byte("once"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res2) != string(res) {
		t.Fatalf("resumed session got %q, original %q", res2, res)
	}
	time.Sleep(50 * time.Millisecond) // let any (wrong) duplicate apply
	if n := c.sms[0].count("once"); n != 1 {
		t.Fatalf("op applied %d times after expiry + resume", n)
	}
}

// TestReplicatedLeaseBoundsDedupTable: with the replicated lease enabled, a
// session that vanishes without acknowledging its last writes is pruned from
// the (session, seq) dedup table at EVERY replica — identically, because the
// expiry travels the ordered path — while a session still attached to the
// primary's gateway is renewed and survives.
func TestReplicatedLeaseBoundsDedupTable(t *testing.T) {
	// Generous relative to the 4-tick lease window: under the race detector
	// a gateway's renewal goroutine can stall for many scheduler quanta, and
	// a live session's lease must not lapse because of that.
	const ttl = 400 * time.Millisecond
	c := buildService(t, 3, func(cfg *GatewayConfig) { cfg.LeaseTTL = ttl })

	stay := c.newClient(t, func(cfg *ClientConfig) { cfg.Session = "stay" })
	if _, err := stay.Call([]byte("stay-1")); err != nil {
		t.Fatal(err)
	}

	// "parked" writes once (creating replicated dedup state), then its
	// client goes away and the session reattaches RAW to a BACKUP gateway:
	// the backup's renewals must keep its lease alive too.
	parked := c.newClient(t, func(cfg *ClientConfig) { cfg.Session = "parked" })
	if _, err := parked.Call([]byte("parked-1")); err != nil {
		t.Fatal(err)
	}
	parked.Close()
	conn, err := c.network.DialStream("s2")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send(t, conn, helloFrame{Session: "parked"})
	if _, ok := recv(t, conn).(welcomeFrame); !ok {
		t.Fatal("no welcome at backup")
	}

	vanish := c.newClient(t, func(cfg *ClientConfig) { cfg.Session = "vanish" })
	for _, op := range []string{"v-1", "v-2", "v-3"} {
		if _, err := vanish.Call([]byte(op)); err != nil {
			t.Fatal(err)
		}
	}
	// The final write's ack is never piggybacked anywhere: without the
	// replicated lease its cached result would survive forever at every
	// replica. The client vanishes instead of acknowledging.
	vanish.Close()

	deadline := time.Now().Add(15 * time.Second)
	for {
		done := true
		for _, r := range c.reps {
			if s, _ := r.SessionTableSize(); s != 2 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			s1, r1 := c.reps[0].SessionTableSize()
			s2, r2 := c.reps[1].SessionTableSize()
			s3, r3 := c.reps[2].SessionTableSize()
			t.Fatalf("dedup table not pruned to the surviving sessions: s1=%d/%d s2=%d/%d s3=%d/%d",
				s1, r1, s2, r2, s3, r3)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The shrink is identical everywhere: same table size, same expiry count.
	for i, r := range c.reps {
		if st := r.LeaseStats(); st.Expired != 1 {
			t.Fatalf("replica %d expired %d sessions, want exactly the vanished one", i+1, st.Expired)
		}
	}

	// "stay" (attached to the primary's gateway) and "parked" (attached to a
	// backup's) keep being renewed across many TTLs, and "stay"'s writes
	// still deduplicate.
	time.Sleep(3 * ttl)
	for i, r := range c.reps {
		if s, _ := r.SessionTableSize(); s != 2 {
			t.Fatalf("replica %d pruned an attached session (table %d)", i+1, s)
		}
	}
	if _, err := stay.Call([]byte("stay-2")); err != nil {
		t.Fatal(err)
	}
}

// TestGatewaySessionLeaseHeldByConnection: an attached connection keeps the
// lease alive indefinitely, even with no traffic.
func TestGatewaySessionLeaseHeldByConnection(t *testing.T) {
	const ttl = 40 * time.Millisecond
	c := buildService(t, 3, func(cfg *GatewayConfig) { cfg.SessionTTL = ttl })

	client := c.newClient(t, nil)
	if _, err := client.Call([]byte("hold")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * ttl)
	if got := c.gws[0].Stats().Sessions; got != 1 {
		t.Fatalf("attached session expired: sessions=%d", got)
	}
	// Still usable after many lease periods.
	if _, err := client.Call([]byte("hold-2")); err != nil {
		t.Fatal(err)
	}
}
