package service

import (
	"testing"
	"time"
)

// TestGatewaySessionExpiry: a disconnected, idle session is garbage-collected
// after its lease, while the replicated dedup table keeps protecting retries
// that arrive after the gateway-side state is gone.
func TestGatewaySessionExpiry(t *testing.T) {
	const ttl = 60 * time.Millisecond
	c := buildService(t, 3, func(cfg *GatewayConfig) { cfg.SessionTTL = ttl })

	first := c.newClient(t, func(cfg *ClientConfig) { cfg.Session = "leased" })
	res, err := first.Call([]byte("once"))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.gws[0].Stats().Sessions; got != 1 {
		t.Fatalf("sessions after connect: %d", got)
	}
	first.Close()

	// The lease runs out only after the connection is gone and the session
	// has no in-flight work.
	deadline := time.Now().Add(10 * time.Second)
	for c.gws[0].Stats().Sessions != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session not expired: %+v", c.gws[0].Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.gws[0].Stats().Expired; got == 0 {
		t.Fatal("expiry not accounted")
	}

	// A client resuming the session ID gets fresh gateway state but the
	// SAME dedup guarantee: retrying seq 1 returns the original result and
	// the op is not applied twice.
	second := c.newClient(t, func(cfg *ClientConfig) { cfg.Session = "leased" })
	res2, err := second.Call([]byte("once"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res2) != string(res) {
		t.Fatalf("resumed session got %q, original %q", res2, res)
	}
	time.Sleep(50 * time.Millisecond) // let any (wrong) duplicate apply
	if n := c.sms[0].count("once"); n != 1 {
		t.Fatalf("op applied %d times after expiry + resume", n)
	}
}

// TestGatewaySessionLeaseHeldByConnection: an attached connection keeps the
// lease alive indefinitely, even with no traffic.
func TestGatewaySessionLeaseHeldByConnection(t *testing.T) {
	const ttl = 40 * time.Millisecond
	c := buildService(t, 3, func(cfg *GatewayConfig) { cfg.SessionTTL = ttl })

	client := c.newClient(t, nil)
	if _, err := client.Call([]byte("hold")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * ttl)
	if got := c.gws[0].Stats().Sessions; got != 1 {
		t.Fatalf("attached session expired: sessions=%d", got)
	}
	// Still usable after many lease periods.
	if _, err := client.Call([]byte("hold-2")); err != nil {
		t.Fatal(err)
	}
}
