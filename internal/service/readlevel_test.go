package service

import (
	"sync"
	"testing"
	"time"
)

// lagS3 isolates s3 from its peers so it misses subsequent updates; the
// client-facing stream to s3's gateway is unaffected.
func lagS3(c *svcCluster) {
	c.network.CutLink("s3", "s1")
	c.network.CutLink("s3", "s2")
}

func healS3(c *svcCluster) {
	c.network.HealLink("s3", "s1")
	c.network.HealLink("s3", "s2")
}

// TestStaleReadAtLaggingGateway documents the bug the read levels fix: under
// ReadLocal, a client that fails over to a lagging gateway reads state OLDER
// than its own acknowledged write. The sequence is deterministic — s3 is cut
// off before the write, so its local state cannot contain it.
func TestStaleReadAtLaggingGateway(t *testing.T) {
	c := buildService(t, 3, nil)
	client := c.newClient(t, func(cfg *ClientConfig) {
		cfg.Addrs = []string{"s1", "s3"} // fail over to the laggard
		cfg.ReadLevel = ReadLocal
		cfg.OpTimeout = 60 * time.Second
	})

	lagS3(c)
	if _, err := client.Call([]byte("ryw")); err != nil {
		t.Fatal(err)
	}
	c.network.Crash("s1")

	// The reconnect lands at s3, which never saw the write; a local read
	// happily answers from its stale state.
	got, err := client.Read([]byte("ryw"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "0" {
		t.Fatalf("local read at lagging gateway returned %q — expected the stale %q that motivates the monotonic level", got, "0")
	}
}

// TestReadYourWritesMonotonic is the same failover sequence under
// ReadMonotonic: the session's commit-index token makes the lagging gateway
// hold the read until its replica has applied the client's acknowledged
// write, so the answer reflects it.
func TestReadYourWritesMonotonic(t *testing.T) {
	c := buildService(t, 3, nil)
	c.startFailover(t, 60*time.Millisecond)
	client := c.newClient(t, func(cfg *ClientConfig) {
		cfg.Addrs = []string{"s1", "s3"}
		cfg.ReadLevel = ReadMonotonic
		cfg.OpTimeout = 60 * time.Second
	})

	lagS3(c)
	if _, err := client.Call([]byte("ryw")); err != nil {
		t.Fatal(err)
	}
	if client.LastIndex() == 0 {
		t.Fatal("write response carried no commit index")
	}
	c.network.Crash("s1")
	healS3(c) // let s3 catch up — the monotonic read waits for exactly that

	got, err := client.Read([]byte("ryw"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "1" {
		t.Fatalf("monotonic read after failover returned %q, want the acknowledged write (%q)", got, "1")
	}
}

// TestReadYourWritesLinearizable runs the failover sequence under
// ReadLinearizable: the lagging gateway cannot answer at all (NOT_PRIMARY),
// the client chases the redirect to the new primary, and the barrier-backed
// read reflects the acknowledged write.
func TestReadYourWritesLinearizable(t *testing.T) {
	c := buildService(t, 3, nil)
	c.startFailover(t, 60*time.Millisecond)
	client := c.newClient(t, func(cfg *ClientConfig) {
		cfg.Addrs = []string{"s1", "s3"}
		cfg.ReadLevel = ReadLinearizable
		cfg.OpTimeout = 60 * time.Second
	})

	lagS3(c)
	if _, err := client.Call([]byte("ryw")); err != nil {
		t.Fatal(err)
	}
	c.network.Crash("s1")
	healS3(c)

	got, err := client.Read([]byte("ryw"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "1" {
		t.Fatalf("linearizable read after failover returned %q, want %q", got, "1")
	}
	// The read was served behind a barrier at the new primary (s2).
	if st := c.reps[1].ReadBarrierStats(); st.Broadcasts == 0 {
		t.Fatalf("no barrier broadcast at the new primary: %+v", st)
	}
}

// TestLinearizableReadsCoalesce: a 64-client read burst issues far fewer
// than 64 ordered barriers — concurrent readers share a no-op broadcast.
func TestLinearizableReadsCoalesce(t *testing.T) {
	c := buildService(t, 3, nil)
	client := c.newClient(t, func(cfg *ClientConfig) {
		cfg.MaxInflight = 64
		cfg.ReadLevel = ReadLinearizable
	})
	if _, err := client.Call([]byte("seed")); err != nil {
		t.Fatal(err)
	}

	const readers = 64
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var res []byte
			res, errs[i] = client.Read([]byte("seed"))
			if errs[i] == nil && string(res) != "1" {
				t.Errorf("reader %d: %q", i, res)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	st := c.reps[0].ReadBarrierStats()
	if st.Reads < readers {
		t.Fatalf("barrier served %d reads, want >= %d", st.Reads, readers)
	}
	if st.Broadcasts >= readers/2 {
		t.Fatalf("%d linearizable reads issued %d barrier broadcasts — no coalescing", readers, st.Broadcasts)
	}
	if st.MaxCoalesced < 2 {
		t.Fatalf("max coalesced %d, want >= 2", st.MaxCoalesced)
	}
}

// TestMonotonicReadAtBackupWaits: a monotonic read sent straight to a backup
// gateway succeeds once that replica catches up — no primary involvement.
func TestMonotonicReadAtBackup(t *testing.T) {
	c := buildService(t, 3, nil)
	writer := c.newClient(t, nil)
	if _, err := writer.Call([]byte("mark")); err != nil {
		t.Fatal(err)
	}
	idx := writer.LastIndex()

	// A raw monotonic read at backup s2 demanding the writer's index.
	conn, err := c.network.DialStream("s2")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send(t, conn, helloFrame{Session: "mono-raw"})
	if _, ok := recv(t, conn).(welcomeFrame); !ok {
		t.Fatal("no welcome")
	}
	send(t, conn, reqFrame{Seq: 1, Op: []byte("mark"), Read: true, Level: ReadMonotonic, MinIndex: idx})
	res, ok := recv(t, conn).(resFrame)
	if !ok || res.Err != "" {
		t.Fatalf("monotonic read at backup failed: %+v", res)
	}
	if string(res.Result) != "1" {
		t.Fatalf("monotonic read at backup returned %q, want %q", res.Result, "1")
	}
	if res.Index < idx {
		t.Fatalf("response index %d < demanded %d", res.Index, idx)
	}
}

// TestBadReadLevelRejected: an unknown read level must be answered with a
// clear error code, not silently degraded to a local read.
func TestBadReadLevelRejected(t *testing.T) {
	c := buildService(t, 3, nil)
	conn, err := c.network.DialStream("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send(t, conn, helloFrame{Session: "bad-level"})
	if _, ok := recv(t, conn).(welcomeFrame); !ok {
		t.Fatal("no welcome")
	}
	send(t, conn, reqFrame{Seq: 1, Op: []byte("x"), Read: true, Level: ReadLevel(99)})
	res, ok := recv(t, conn).(resFrame)
	if !ok {
		t.Fatal("no response")
	}
	if res.Err != errBadReadLevel {
		t.Fatalf("unknown level answered %+v, want err %q", res, errBadReadLevel)
	}

	// The zero level stays wire-compatible: old clients get a local read.
	send(t, conn, reqFrame{Seq: 2, Op: []byte("x"), Read: true})
	res, ok = recv(t, conn).(resFrame)
	if !ok || res.Err != "" {
		t.Fatalf("legacy zero-level read failed: %+v", res)
	}
}

// send/recv are raw-protocol helpers shared by the frame-level tests.
func send(t *testing.T, conn interface{ Send([]byte) error }, v any) {
	t.Helper()
	frame, err := encodeFrame(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(frame); err != nil {
		t.Fatal(err)
	}
}

func recv(t *testing.T, conn interface{ Recv() ([]byte, error) }) any {
	t.Helper()
	data, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	v, err := decodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
