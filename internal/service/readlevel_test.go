package service

import (
	"sync"
	"testing"
	"time"

	"repro/internal/replication"
)

// replicationLeaseConfig is the leadership-lease config the service tests
// share: a TTL comfortably above test scheduling jitter, renewed often.
func replicationLeaseConfig() replication.LeaderLeaseConfig {
	return replication.LeaderLeaseConfig{TTL: 2 * time.Second}
}

// lagS3 isolates s3 from its peers so it misses subsequent updates; the
// client-facing stream to s3's gateway is unaffected.
func lagS3(c *svcCluster) {
	c.network.CutLink("s3", "s1")
	c.network.CutLink("s3", "s2")
}

func healS3(c *svcCluster) {
	c.network.HealLink("s3", "s1")
	c.network.HealLink("s3", "s2")
}

// TestStaleReadAtLaggingGateway documents the bug the read levels fix: under
// ReadLocal, a client that fails over to a lagging gateway reads state OLDER
// than its own acknowledged write. The sequence is deterministic — s3 is cut
// off before the write, so its local state cannot contain it.
func TestStaleReadAtLaggingGateway(t *testing.T) {
	c := buildService(t, 3, nil)
	client := c.newClient(t, func(cfg *ClientConfig) {
		cfg.Addrs = []string{"s1", "s3"} // fail over to the laggard
		cfg.ReadLevel = ReadLocal
		cfg.OpTimeout = 60 * time.Second
	})

	lagS3(c)
	if _, err := client.Call([]byte("ryw")); err != nil {
		t.Fatal(err)
	}
	c.network.Crash("s1")

	// The reconnect lands at s3, which never saw the write; a local read
	// happily answers from its stale state.
	got, err := client.Read([]byte("ryw"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "0" {
		t.Fatalf("local read at lagging gateway returned %q — expected the stale %q that motivates the monotonic level", got, "0")
	}
}

// TestReadYourWritesMonotonic is the same failover sequence under
// ReadMonotonic: the session's commit-index token makes the lagging gateway
// hold the read until its replica has applied the client's acknowledged
// write, so the answer reflects it.
func TestReadYourWritesMonotonic(t *testing.T) {
	c := buildService(t, 3, nil)
	c.startFailover(t, 60*time.Millisecond)
	client := c.newClient(t, func(cfg *ClientConfig) {
		cfg.Addrs = []string{"s1", "s3"}
		cfg.ReadLevel = ReadMonotonic
		cfg.OpTimeout = 60 * time.Second
	})

	lagS3(c)
	if _, err := client.Call([]byte("ryw")); err != nil {
		t.Fatal(err)
	}
	if client.LastIndex() == 0 {
		t.Fatal("write response carried no commit index")
	}
	c.network.Crash("s1")
	healS3(c) // let s3 catch up — the monotonic read waits for exactly that

	got, err := client.Read([]byte("ryw"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "1" {
		t.Fatalf("monotonic read after failover returned %q, want the acknowledged write (%q)", got, "1")
	}
}

// TestReadYourWritesLinearizable runs the failover sequence under
// ReadLinearizable: the lagging gateway cannot answer at all (NOT_PRIMARY),
// the client chases the redirect to the new primary, and the barrier-backed
// read reflects the acknowledged write.
func TestReadYourWritesLinearizable(t *testing.T) {
	c := buildService(t, 3, nil)
	c.startFailover(t, 60*time.Millisecond)
	client := c.newClient(t, func(cfg *ClientConfig) {
		cfg.Addrs = []string{"s1", "s3"}
		cfg.ReadLevel = ReadLinearizable
		cfg.OpTimeout = 60 * time.Second
	})

	lagS3(c)
	if _, err := client.Call([]byte("ryw")); err != nil {
		t.Fatal(err)
	}
	c.network.Crash("s1")
	healS3(c)

	got, err := client.Read([]byte("ryw"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "1" {
		t.Fatalf("linearizable read after failover returned %q, want %q", got, "1")
	}
	// The read was served behind a barrier at the new primary (s2).
	if st := c.reps[1].ReadBarrierStats(); st.Broadcasts == 0 {
		t.Fatalf("no barrier broadcast at the new primary: %+v", st)
	}
}

// TestLinearizableReadsCoalesce: a 64-client read burst issues far fewer
// than 64 ordered barriers — concurrent readers share a no-op broadcast.
func TestLinearizableReadsCoalesce(t *testing.T) {
	c := buildService(t, 3, nil)
	client := c.newClient(t, func(cfg *ClientConfig) {
		cfg.MaxInflight = 64
		cfg.ReadLevel = ReadLinearizable
	})
	if _, err := client.Call([]byte("seed")); err != nil {
		t.Fatal(err)
	}

	const readers = 64
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var res []byte
			res, errs[i] = client.Read([]byte("seed"))
			if errs[i] == nil && string(res) != "1" {
				t.Errorf("reader %d: %q", i, res)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	st := c.reps[0].ReadBarrierStats()
	if st.Reads < readers {
		t.Fatalf("barrier served %d reads, want >= %d", st.Reads, readers)
	}
	if st.Broadcasts >= readers/2 {
		t.Fatalf("%d linearizable reads issued %d barrier broadcasts — no coalescing", readers, st.Broadcasts)
	}
	if st.MaxCoalesced < 2 {
		t.Fatalf("max coalesced %d, want >= 2", st.MaxCoalesced)
	}
}

// TestMonotonicReadAtBackupWaits: a monotonic read sent straight to a backup
// gateway succeeds once that replica catches up — no primary involvement.
func TestMonotonicReadAtBackup(t *testing.T) {
	c := buildService(t, 3, nil)
	writer := c.newClient(t, nil)
	if _, err := writer.Call([]byte("mark")); err != nil {
		t.Fatal(err)
	}
	idx := writer.LastIndex()

	// A raw monotonic read at backup s2 demanding the writer's index.
	conn, err := c.network.DialStream("s2")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send(t, conn, helloFrame{Session: "mono-raw"})
	if _, ok := recv(t, conn).(welcomeFrame); !ok {
		t.Fatal("no welcome")
	}
	send(t, conn, reqFrame{Seq: 1, Op: []byte("mark"), Read: true, Level: ReadMonotonic, MinIndex: idx})
	res, ok := recv(t, conn).(resFrame)
	if !ok || res.Err != "" {
		t.Fatalf("monotonic read at backup failed: %+v", res)
	}
	if string(res.Result) != "1" {
		t.Fatalf("monotonic read at backup returned %q, want %q", res.Result, "1")
	}
	if res.Index < idx {
		t.Fatalf("response index %d < demanded %d", res.Index, idx)
	}
}

// TestBadReadLevelRejected: an unknown read level must be answered with a
// clear error code, not silently degraded to a local read.
func TestBadReadLevelRejected(t *testing.T) {
	c := buildService(t, 3, nil)
	conn, err := c.network.DialStream("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send(t, conn, helloFrame{Session: "bad-level"})
	if _, ok := recv(t, conn).(welcomeFrame); !ok {
		t.Fatal("no welcome")
	}
	send(t, conn, reqFrame{Seq: 1, Op: []byte("x"), Read: true, Level: ReadLevel(99)})
	res, ok := recv(t, conn).(resFrame)
	if !ok {
		t.Fatal("no response")
	}
	if res.Err != errBadReadLevel {
		t.Fatalf("unknown level answered %+v, want err %q", res, errBadReadLevel)
	}

	// The zero level stays wire-compatible: old clients get a local read.
	send(t, conn, reqFrame{Seq: 2, Op: []byte("x"), Read: true})
	res, ok = recv(t, conn).(resFrame)
	if !ok || res.Err != "" {
		t.Fatalf("legacy zero-level read failed: %+v", res)
	}
}

// TestLinearizableLeaseReads: with the leadership lease enabled, a client's
// linearizable reads are served off the lease fast path — same results,
// read-your-writes intact, but no ordered barrier broadcast per read burst.
func TestLinearizableLeaseReads(t *testing.T) {
	c := buildService(t, 3, nil)
	for _, r := range c.reps {
		r.EnableLeaderLease(replicationLeaseConfig())
	}
	t.Cleanup(func() {
		for _, r := range c.reps {
			r.DisableLeaderLease()
		}
	})
	client := c.newClient(t, func(cfg *ClientConfig) {
		cfg.ReadLevel = ReadLinearizable
	})
	if _, err := client.Call([]byte("lease-ryw")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "first lease grant", func() bool {
		return c.reps[0].LeaderLeaseStats().Grants > 0
	})
	barriersBefore := c.reps[0].ReadBarrierStats().Broadcasts
	for i := 0; i < 30; i++ {
		got, err := client.Read([]byte("lease-ryw"))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "1" {
			t.Fatalf("linearizable read %d returned %q, want %q", i, got, "1")
		}
	}
	st := c.reps[0].LeaderLeaseStats()
	if st.LeaseReads < 30 {
		t.Fatalf("lease reads %d, want >= 30 (fast path not taken)", st.LeaseReads)
	}
	if got := c.reps[0].ReadBarrierStats().Broadcasts; got != barriersBefore {
		t.Fatalf("lease-path reads cost %d extra barrier broadcasts", got-barriersBefore)
	}
}

// TestBoundedStalenessRead drives the wire level of ReadBoundedStaleness:
// a replica within the bound answers locally, a replica that has never
// observed a stamped delivery answers TOO_STALE with a primary redirect
// hint (unknown age must refuse, not serve), a missing bound is rejected,
// and a healed laggard becomes servable again once it catches up.
func TestBoundedStalenessRead(t *testing.T) {
	c := buildService(t, 3, nil)
	lagS3(c) // s3 never sees the write: its state age stays unknown

	writer := c.newClient(t, nil)
	if _, err := writer.Call([]byte("mark")); err != nil {
		t.Fatal(err)
	}

	// s2 delivered the write; a generous bound is served from local state.
	conn2, err := c.network.DialStream("s2")
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	send(t, conn2, helloFrame{Session: "bounded-raw"})
	if _, ok := recv(t, conn2).(welcomeFrame); !ok {
		t.Fatal("no welcome")
	}
	send(t, conn2, reqFrame{Seq: 1, Op: []byte("mark"), Read: true,
		Level: ReadBoundedStaleness, MaxAge: time.Minute})
	res, ok := recv(t, conn2).(resFrame)
	if !ok || res.Err != "" {
		t.Fatalf("bounded read at fresh backup failed: %+v", res)
	}
	if string(res.Result) != "1" {
		t.Fatalf("bounded read returned %q, want %q", res.Result, "1")
	}

	// A bounded read without its bound is a protocol error, not a local read.
	send(t, conn2, reqFrame{Seq: 2, Op: []byte("mark"), Read: true,
		Level: ReadBoundedStaleness})
	if res, ok := recv(t, conn2).(resFrame); !ok || res.Err != errBadReadLevel {
		t.Fatalf("boundless bounded read answered %+v, want err %q", res, errBadReadLevel)
	}

	// s3 has never delivered a stamped message: age unknown -> TOO_STALE,
	// hinting at the primary, which is fresh by construction.
	conn3, err := c.network.DialStream("s3")
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	send(t, conn3, helloFrame{Session: "bounded-raw-3"})
	if _, ok := recv(t, conn3).(welcomeFrame); !ok {
		t.Fatal("no welcome")
	}
	send(t, conn3, reqFrame{Seq: 1, Op: []byte("mark"), Read: true,
		Level: ReadBoundedStaleness, MaxAge: time.Minute})
	res, ok = recv(t, conn3).(resFrame)
	if !ok || res.Err != errTooStale {
		t.Fatalf("bounded read at unstamped laggard answered %+v, want err %q", res, errTooStale)
	}
	if res.Redirect != c.addrs["s1"] {
		t.Fatalf("TOO_STALE redirect %q, want primary %q", res.Redirect, c.addrs["s1"])
	}
	if c.gws[2].Stats().TooStale == 0 {
		t.Fatal("laggard gateway did not count the TOO_STALE answer")
	}

	// Healed and caught up, the same replica serves within the bound.
	healS3(c)
	waitUntil(t, 10*time.Second, "s3 to re-enter the bound", func() bool {
		send(t, conn3, reqFrame{Seq: 2, Op: []byte("mark"), Read: true,
			Level: ReadBoundedStaleness, MaxAge: time.Minute})
		res, ok := recv(t, conn3).(resFrame)
		return ok && res.Err == "" && string(res.Result) == "1"
	})
}

// TestBoundedStalenessClientRetry covers the client's TOO_STALE retry
// policies. A non-sticky client settles at the primary, so its TOO_STALE
// case is the unknown-age window before ANY stamped delivery: the redirect
// names the gateway it is already on, and the client must pace retries in
// place (not reconnect-spin) until the first write stamps the state. A
// sticky (follower-read) client retries at its own gateway until the
// replica re-enters the bound — it must not migrate to the primary, or
// follower reads would collapse onto it.
func TestBoundedStalenessClientRetry(t *testing.T) {
	c := buildService(t, 3, nil)
	lagS3(c)

	// Non-sticky, before any write anywhere: even the primary's state age
	// is unknown, so the read parks in paced retries until a write lands.
	chaser := c.newClient(t, nil)
	chaserDone := make(chan struct{})
	var chaserRes []byte
	var chaserErr error
	go func() {
		defer close(chaserDone)
		chaserRes, chaserErr = chaser.ReadAtMost([]byte("mark"), time.Minute)
	}()
	waitUntil(t, 10*time.Second, "pre-write TOO_STALE retries", func() bool {
		return chaser.Stats().TooStaleRetries > 0
	})
	writer := c.newClient(t, nil)
	if _, err := writer.Call([]byte("mark")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-chaserDone:
	case <-time.After(15 * time.Second):
		t.Fatal("bounded read never completed after the first write stamped the state")
	}
	if chaserErr != nil {
		t.Fatal(chaserErr)
	}
	if string(chaserRes) != "1" {
		t.Fatalf("bounded read returned %q, want %q", chaserRes, "1")
	}

	// Sticky at the laggard: the read parks in retry-here mode; healing the
	// partition lets s3 catch up and serve it locally.
	sticky := c.newClient(t, func(cfg *ClientConfig) {
		cfg.Addrs = []string{"s3"}
		cfg.Sticky = true
		cfg.OpTimeout = 30 * time.Second
	})
	done := make(chan struct{})
	var stickyRes []byte
	var stickyErr error
	go func() {
		defer close(done)
		stickyRes, stickyErr = sticky.ReadAtMost([]byte("mark"), time.Minute)
	}()
	waitUntil(t, 10*time.Second, "sticky TOO_STALE retries", func() bool {
		return sticky.Stats().TooStaleRetries > 0
	})
	healS3(c)
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("sticky bounded read never completed after heal")
	}
	if stickyErr != nil {
		t.Fatal(stickyErr)
	}
	if string(stickyRes) != "1" {
		t.Fatalf("sticky bounded read returned %q, want %q", stickyRes, "1")
	}
	// Served by s3 itself: the sticky client never dialed another gateway.
	if st := sticky.Stats(); st.Redirects != 0 {
		t.Fatalf("sticky client chased %d redirects on TOO_STALE", st.Redirects)
	}
}

// send/recv are raw-protocol helpers shared by the frame-level tests.
func send(t *testing.T, conn interface{ Send([]byte) error }, v any) {
	t.Helper()
	frame, err := encodeFrame(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(frame); err != nil {
		t.Fatal(err)
	}
}

func recv(t *testing.T, conn interface{ Recv() ([]byte, error) }) any {
	t.Helper()
	data, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	v, err := decodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
