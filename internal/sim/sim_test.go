package sim

import (
	"testing"
	"time"
)

func TestHistogramStats(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean %v", got)
	}
	if got := h.Quantile(0.5); got < 49*time.Millisecond || got > 52*time.Millisecond {
		t.Fatalf("median %v", got)
	}
	if got := h.Quantile(0.99); got < 98*time.Millisecond {
		t.Fatalf("p99 %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Fatalf("max %v", got)
	}
}

func TestHistogramQuantileUnsortedInput(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{9, 1, 5, 3, 7} {
		h.Add(d)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("min %v", got)
	}
	if got := h.Quantile(1); got != 9 {
		t.Fatalf("max quantile %v", got)
	}
}

func TestTimelineBuckets(t *testing.T) {
	tl := NewTimeline(10 * time.Millisecond)
	tl.Mark()
	tl.Mark()
	time.Sleep(25 * time.Millisecond)
	tl.Mark()
	buckets := tl.Buckets()
	if len(buckets) < 3 {
		t.Fatalf("buckets %v", buckets)
	}
	if buckets[0] != 2 {
		t.Fatalf("bucket 0 = %d", buckets[0])
	}
	var total int
	for _, b := range buckets {
		total += b
	}
	if total != 3 {
		t.Fatalf("total %d", total)
	}
	if tl.Width() != 10*time.Millisecond {
		t.Fatalf("width %v", tl.Width())
	}
}

func TestPayloadAge(t *testing.T) {
	p := NewPayload(7, 16)
	if p.Seq != 7 || len(p.Pad) != 16 {
		t.Fatalf("payload %+v", p)
	}
	time.Sleep(5 * time.Millisecond)
	if age := p.Age(); age < 4*time.Millisecond {
		t.Fatalf("age %v", age)
	}
}
