// Package sim provides the measurement harness shared by the benchmark
// suite and the experiment driver (cmd/gcsbench): latency histograms,
// throughput timelines and the common benchmark payload.
package sim

import (
	"sort"
	"sync"
	"time"

	"repro/internal/msg"
)

// Payload is the message body used by all performance experiments. SentNanos
// carries the sender's clock so the sender can compute its own
// broadcast-to-delivery latency; Pad sizes the message.
type Payload struct {
	Seq       uint64
	SentNanos int64
	Pad       []byte
}

func init() {
	msg.Register(Payload{})
}

// clock is the package's single time source. Experiments that replay
// recorded traces (or run under the deterministic harness) swap it with
// SetClock so every stamp and every age computation reads the same virtual
// instant — the reason wall-clock calls are banned from this package by
// gcsvet wallclock.
var clock = time.Now

// SetClock replaces the package time source and returns a restore func.
// Intended for deterministic replays and tests; not safe to call while
// measurements are in flight.
func SetClock(now func() time.Time) (restore func()) {
	prev := clock
	clock = now
	return func() { clock = prev }
}

// NewPayload stamps a payload with the current time.
func NewPayload(seq uint64, padBytes int) Payload {
	return Payload{Seq: seq, SentNanos: clock().UnixNano(), Pad: make([]byte, padBytes)}
}

// Age returns the time elapsed since the payload was stamped.
func (p Payload) Age() time.Duration {
	return time.Duration(clock().UnixNano() - p.SentNanos)
}

// Histogram collects duration samples.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{}
}

// Add records one sample.
func (h *Histogram) Add(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, d)
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the average sample, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1), or 0 if empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(h.samples))
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	var m time.Duration
	for _, s := range h.samples {
		if s > m {
			m = s
		}
	}
	return m
}

// Timeline counts events into fixed-width time buckets, for throughput
// traces (experiment E11: the throughput hole during a view change).
type Timeline struct {
	mu      sync.Mutex
	start   time.Time
	width   time.Duration
	buckets []int
}

// NewTimeline starts a timeline with the given bucket width.
func NewTimeline(width time.Duration) *Timeline {
	return &Timeline{start: clock(), width: width}
}

// Mark records one event at the current time.
func (t *Timeline) Mark() {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := int(clock().Sub(t.start) / t.width)
	for len(t.buckets) <= idx {
		t.buckets = append(t.buckets, 0)
	}
	t.buckets[idx]++
}

// Index returns the bucket index of the current instant.
func (t *Timeline) Index() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(clock().Sub(t.start) / t.width)
}

// Buckets returns a copy of the counts.
func (t *Timeline) Buckets() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, len(t.buckets))
	copy(out, t.buckets)
	return out
}

// Width returns the bucket width.
func (t *Timeline) Width() time.Duration { return t.width }
