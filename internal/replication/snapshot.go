package replication

// Crash recovery and mid-life join: versioned replica snapshots plus a
// bounded log of delivered commands, indexed by the commit index.
//
// A replica's authoritative state is a pure function of the totally ordered
// command sequence (passive.go): the application state machine, the
// (session, seq) dedup table, the lease clock, the epoch/replica view and
// the commit index all advance only at delivery points, identically at
// every replica. That makes two artifacts sufficient for a fresh process to
// become a replica without replaying history from the beginning:
//
//   - a SNAPSHOT: the full replica state captured atomically at a delivery
//     boundary (between two delivered commands), tagged with the commit
//     index it stands at; and
//   - the LOG: the suffix of delivered commands after some index, replayed
//     through the very same delivery handlers that produced the donor's
//     state — so snapshot(S) + log(S..N] at one replica reconstructs the
//     state of every replica at index N, bit for bit.
//
// The snapshot is versioned (snapshotVersion) so a newer node refuses an
// unintelligible older/newer format instead of silently diverging. Capture
// runs either on the stack's delivery goroutine itself (the membership join
// path calls the Snapshotter hook while applying the ordered join — a fixed
// point of the total order, Section 4.3's state transfer) or from any other
// goroutine, in which case deliverMu excludes in-flight deliveries, which
// is the same boundary.
//
// The log is a ring of the most recent delivered commands (LogRec.Body is
// the wire message exactly as delivered). A joiner within the retained
// window catches up by pulling entries (sync.go); one further behind gets a
// fresh snapshot. Replay is exact because staleness (epoch tags), dedup
// decisions and lease expiry are all recomputed from replicated state that
// itself evolves through the replayed sequence.

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"repro/internal/msg"
	"repro/internal/proc"
)

// snapshotVersion is the wire version of pSnapshot. InstallSnapshot rejects
// any other version.
const snapshotVersion = 1

// DefaultLogCap bounds the retained delivered-command log (entries, not
// bytes). Joiners further behind than the window receive a snapshot.
const DefaultLogCap = 1024

// Snapshotter supplies and restores the application state machine's state
// for snapshots. Snapshot must be deterministic (identical state encodes to
// identical bytes) — cross-replica equality checks compare its output — and
// both run at a delivery boundary, so they may read/write the state machine
// without racing ApplyUpdate.
//
// Restore must additionally swap the state ATOMICALLY with respect to
// concurrent lock-free readers: the gateway's read paths (Local, the
// Monotonic fast path, lease and bounded-staleness reads) call the
// application's read hook with NO replica lock held, concurrently with a
// snapshot install. A Restore that mutates in place could expose a reader to
// a torn mix of old and new state — and, because installSnapshotLocked
// advances the commit index only AFTER Restore returns, an in-place partial
// restore could even be observed under an index the reader already checked.
// Build the new state aside and publish it with one atomic pointer/reference
// swap (as every in-tree state machine does).
type Snapshotter struct {
	Snapshot func() []byte
	Restore  func([]byte)
}

// LogRec is one delivered command of the totally ordered sequence. End is
// the replica's commit index after applying it (a batch advances the index
// by its entry count, every other command by one).
type LogRec struct {
	End  uint64
	Body any
}

// pSnapshot is the wire form of a replica snapshot.
type pSnapshot struct {
	Version    uint32
	Index      uint64 // commit index the snapshot stands at
	Epoch      uint64
	ViewSeq    uint64
	Members    []proc.ID // replica list; head is the primary
	LeaseClock uint64
	Sessions   []pSessionSnap // sorted by ID for deterministic encoding
	App        []byte         // application state via the Snapshotter hook
	// StateTS is the donor's applied-state commit timestamp (unix nanos) at
	// capture, so an installed snapshot seeds the receiver's freshness stamp
	// for bounded-staleness reads (leaderlease.go).
	StateTS int64
}

// pSessionSnap is one session's slice of the replicated dedup table.
type pSessionSnap struct {
	ID       string
	Pruned   uint64
	Deadline uint64
	Seqs     []uint64 // sorted; Results aligned
	Results  [][]byte
}

func init() {
	msg.Register(pSnapshot{})
	msg.Register(pSessionSnap{})
	msg.Register(LogRec{})
	msg.Register([]LogRec{})
}

// SetSnapshotter installs the application state hooks. Call before the
// node starts delivering (or before the follower's syncer starts).
func (p *Passive) SetSnapshotter(s Snapshotter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.snap = s
}

// SetLogCap bounds the delivered-command log to n entries (0 disables the
// log: every joiner gets a snapshot). Call before the node starts.
func (p *Passive) SetLogCap(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.logCap = n
}

// NewFollower creates a catch-up replica: it holds the full replica state
// and serves reads at backup parity, but participates in no broadcast — its
// delivery stream is the log pulled from donor replicas (sync.go) instead
// of a node. Writes answer ErrNotPrimary with the current primary so
// gateways redirect; linearizable reads are served through the read-index
// barrier proxy once a Syncer is attached.
func NewFollower(sm PassiveStateMachine, self proc.ID) *Passive {
	p := NewPassive(sm, nil)
	p.self = self
	p.follower = true
	return p
}

// Follower reports whether this replica is a catch-up follower.
func (p *Passive) Follower() bool { return p.follower }

// Self returns the replica's process identity.
func (p *Passive) Self() proc.ID { return p.self }

// logAppendLocked records one delivered command ending at the current
// commit index; p.mu must be held and the command's state changes applied.
func (p *Passive) logAppendLocked(body any) {
	if p.store != nil && !p.storeReplay {
		// Stage for the durable engine (drained by persistDelivered at the
		// delivery's persist point, outside p.mu). Disk replay is excluded:
		// those records came FROM the engine.
		p.storeStaged = append(p.storeStaged, LogRec{End: p.commitIdx, Body: body})
	}
	if p.logCap <= 0 {
		p.logBase = p.commitIdx
		return
	}
	p.log = append(p.log, LogRec{End: p.commitIdx, Body: body})
	if len(p.log) >= 2*p.logCap {
		// Amortised trim: drop the oldest half in one copy instead of
		// shifting per delivery.
		drop := len(p.log) - p.logCap
		p.logBase = p.log[drop-1].End
		p.log = append(p.log[:0:0], p.log[drop:]...)
	}
}

// SyncSince returns up to max delivered commands covering (from, commitIdx],
// oldest first. ok=false means from precedes the retained window and the
// caller needs a snapshot instead.
func (p *Passive) SyncSince(from uint64, max int) (entries []LogRec, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if from < p.logBase {
		return nil, false
	}
	i := sort.Search(len(p.log), func(i int) bool { return p.log[i].End > from })
	j := len(p.log)
	if max > 0 && j-i > max {
		j = i + max
	}
	return slices.Clone(p.log[i:j]), true
}

// EncodeSnapshot captures the replica's full state at a delivery boundary
// and encodes it as a versioned snapshot. It is safe from any goroutine
// (deliveries are excluded for the duration) and in particular from the
// membership Snapshotter hook, which runs on the delivery goroutine at the
// ordered join's position in the total order.
func (p *Passive) EncodeSnapshot() []byte {
	p.deliverMu.Lock()
	defer p.deliverMu.Unlock()
	_, data := p.captureSnapshotLocked()
	return data
}

// captureSnapshotLocked is EncodeSnapshot's body for callers already at a
// delivery boundary (deliverMu held): the storage compaction goroutine and
// CloseStorage also need the capture index for SaveSnapshot/TruncateBefore.
func (p *Passive) captureSnapshotLocked() (uint64, []byte) {
	p.mu.Lock()
	s := pSnapshot{
		Version:    snapshotVersion,
		Index:      p.commitIdx,
		Epoch:      p.epoch,
		ViewSeq:    p.replicas.Seq,
		Members:    slices.Clone(p.replicas.Members),
		LeaseClock: p.leaseClock,
		StateTS:    p.stateStamp.Load(),
	}
	ids := make([]string, 0, len(p.sessions))
	for id := range p.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rec := p.sessions[id]
		ss := pSessionSnap{ID: id, Pruned: rec.pruned, Deadline: rec.deadline}
		seqs := make([]uint64, 0, len(rec.results))
		for seq := range rec.results {
			seqs = append(seqs, seq)
		}
		slices.Sort(seqs)
		for _, seq := range seqs {
			ss.Seqs = append(ss.Seqs, seq)
			ss.Results = append(ss.Results, rec.results[seq])
		}
		s.Sessions = append(s.Sessions, ss)
	}
	snapFn := p.snap.Snapshot
	p.mu.Unlock()

	if snapFn != nil {
		s.App = snapFn()
	}
	data, err := encodeSnapshot(s)
	if err != nil {
		// Only registration/encoding bugs can fail here; diverging replica
		// state would be worse than stopping.
		panic(fmt.Sprintf("replication: encode snapshot: %v", err))
	}
	if m := p.metrics.Load(); m != nil {
		m.snapEncoded.Inc()
		m.snapBytesOut.Add(uint64(len(data)))
	}
	return s.Index, data
}

func encodeSnapshot(s pSnapshot) ([]byte, error) {
	return msg.Encode(s)
}

func decodeSnapshot(data []byte) (pSnapshot, error) {
	v, err := msg.Decode(data)
	if err != nil {
		return pSnapshot{}, fmt.Errorf("replication: decode snapshot: %w", err)
	}
	s, ok := v.(pSnapshot)
	if !ok {
		return pSnapshot{}, fmt.Errorf("replication: unexpected snapshot type %T", v)
	}
	return s, nil
}

// InstallSnapshot replaces the replica's state with a snapshot captured at
// another replica's delivery boundary. Snapshots BEHIND the current commit
// index are ignored (nil error): the install paths — membership state
// transfer and the syncer's pull — may race, and the log has already
// covered anything older. An equal-index snapshot re-installs identical
// state (two replicas at one index hold the same state by construction),
// which lets a fresh follower adopt the view even before any command
// exists. The application state is restored through the Snapshotter hook.
func (p *Passive) InstallSnapshot(data []byte) error {
	p.deliverMu.Lock()
	defer p.deliverMu.Unlock()
	idx, installed, err := p.installSnapshotLocked(data)
	if err != nil {
		return err
	}
	// Persist an ADOPTED snapshot so a restart replays from it instead of
	// transferring it again; WAL segments it covers are retired. Ignored
	// (behind-index) snapshots persist nothing, and disk replay is excluded
	// — its snapshot came FROM the engine.
	if installed && p.store != nil && !p.storeReplay {
		//gcsvet:ignore lockhold -- adopt must be atomic wrt deliveries; a delivery interleaved with install would fork the state
		if err := p.store.SaveSnapshot(idx, data); err != nil {
			return fmt.Errorf("replication: persist snapshot: %w", err)
		}
		if err := p.store.TruncateBefore(idx); err != nil {
			return fmt.Errorf("replication: truncate wal: %w", err)
		}
	}
	return nil
}

// installSnapshotLocked is InstallSnapshot's body for callers already
// holding deliverMu (ReplayStorage installs the engine's own snapshot). It
// reports the snapshot's index and whether it was adopted (false: behind
// the current commit index, ignored).
func (p *Passive) installSnapshotLocked(data []byte) (uint64, bool, error) {
	m := p.metrics.Load()
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	s, err := decodeSnapshot(data)
	if err != nil {
		return 0, false, err
	}
	if s.Version != snapshotVersion {
		return 0, false, fmt.Errorf("replication: snapshot version %d (want %d)", s.Version, snapshotVersion)
	}

	p.mu.Lock()
	if s.Index < p.commitIdx {
		p.mu.Unlock()
		return s.Index, false, nil
	}
	p.epoch = s.Epoch
	p.replicas = proc.View{Seq: s.ViewSeq, Members: slices.Clone(s.Members)}
	p.leaseClock = s.LeaseClock
	p.sessions = make(map[string]*sessionRecord, len(s.Sessions))
	for _, ss := range s.Sessions {
		rec := &sessionRecord{
			results:  make(map[uint64][]byte, len(ss.Seqs)),
			pruned:   ss.Pruned,
			deadline: ss.Deadline,
		}
		for i, seq := range ss.Seqs {
			rec.results[seq] = ss.Results[i]
		}
		p.sessions[ss.ID] = rec
	}
	p.log = nil
	p.logBase = s.Index
	restore := p.snap.Restore
	p.mu.Unlock()

	if restore != nil {
		restore(s.App)
	}

	// Only after the application state is in place: the commit index stands
	// for applied state (a monotonic reader woken here reads lock-free).
	p.mu.Lock()
	p.advanceCommitLocked(s.Index - p.commitIdx)
	p.mu.Unlock()
	// The snapshot replaced this replica's world: adopt the donor's
	// freshness stamp and conservatively forget any leadership lease (the
	// handoff gate survives, so lease reads resume only via a fresh grant).
	p.bumpStamp(s.StateTS)
	p.clearLeaseOnInstall()
	if m != nil {
		m.snapInstalled.Inc()
		m.snapBytesIn.Add(uint64(len(data)))
		m.snapshotInstall.Observe(time.Since(start))
	}
	return s.Index, true, nil
}

// ApplySyncEntries replays pulled log entries covering (from, ...] through
// the normal delivery handlers. Entries at or behind the current index are
// skipped; a gap (the replica's state moved past `from` through a racing
// snapshot install) aborts the batch silently — the next pull realigns.
func (p *Passive) ApplySyncEntries(from uint64, entries []LogRec) {
	p.deliverMu.Lock()
	defer p.deliverMu.Unlock()
	if p.store != nil && !p.storeReplay {
		// Bulk replay: suppress the per-entry fsync the update handlers would
		// force (nobody is acked off replayed entries) and close the batch
		// with one sync — the fsync-per-window contract applied to catch-up.
		p.storeBulk = true
		defer func() {
			p.storeBulk = false
			p.persistDelivered(true)
		}()
	}
	prevEnd := from
	for _, rec := range entries {
		start := prevEnd
		prevEnd = rec.End
		p.mu.Lock()
		cur := p.commitIdx
		p.mu.Unlock()
		if rec.End <= cur {
			continue
		}
		if start != cur {
			return // raced with a snapshot install; realign on the next pull
		}
		p.applyDelivered(rec.Body)
		p.mu.Lock()
		got := p.commitIdx
		p.mu.Unlock()
		if got != rec.End {
			// The replayed command did not advance the index as it did at
			// the donor: replicated-state divergence, fail loudly (the same
			// policy as an undecodable abcast batch).
			panic(fmt.Sprintf("replication: sync desync: entry ends at %d, commit index %d", rec.End, got))
		}
	}
}

// StateDigest returns a canonical encoding of the replica's replicated
// state (commit index, epoch, view, lease clock, dedup table, application
// snapshot). Two replicas at the same commit index return identical bytes;
// the chaos harness compares digests across replicas for byte-identical
// convergence. Per-replica counters (applied/ignored/duplicates) are
// deliberately excluded: a mid-life joiner never saw the skipped prefix.
func (p *Passive) StateDigest() []byte {
	return p.EncodeSnapshot()
}
