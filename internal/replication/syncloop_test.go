package replication

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/transport"
)

// TestFollowerWipeRejoinLoop hammers the wipe/rejoin cycle: a follower is
// destroyed and rebuilt from nothing under ascending incarnations while a
// writer keeps the group's commit index moving. Every incarnation must
// install and catch up — this is the fast repro harness for channel-reset
// bugs that only deterministic-chaos runs would otherwise catch.
func TestFollowerWipeRejoinLoop(t *testing.T) {
	network := transport.NewNetwork(transport.WithDelay(0, 2*time.Millisecond), transport.WithSeed(5))
	defer network.Shutdown()
	ids := proc.IDs("s1", "s2", "s3")

	var reps []*Passive
	var nodes []*core.Node
	for _, id := range ids {
		sm := newSnapKV()
		rep := NewPassive(sm, ids)
		rep.SetSnapshotter(sm.snapshotter())
		node, err := core.NewNode(network.Endpoint(id), core.Config{
			Self: id, Universe: ids, Relation: PassiveRelation(),
			Snapshot: rep.EncodeSnapshot,
			Restore:  func(b []byte) { _ = rep.InstallSnapshot(b) },
		}, rep.DeliverFunc())
		if err != nil {
			t.Fatal(err)
		}
		rep.Bind(node)
		ServeSync(node.Endpoint(), rep, SyncConfig{Join: node.Join})
		reps = append(reps, rep)
		nodes = append(nodes, node)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()

	// Background writer at the primary.
	stop := make(chan struct{})
	defer close(stop)
	var writes atomic.Uint64
	go func() {
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			op := fmt.Sprintf("set w%d %d", i%64, i)
			if _, err := reps[0].RequestSession("w", uint64(i), uint64(i-1), []byte(op), 10*time.Second); err == nil {
				writes.Add(1)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	const cycles = 10
	for inc := uint64(1); inc <= cycles; inc++ {
		sm := newSnapKV()
		f := NewFollower(sm, "f1")
		f.SetSnapshotter(sm.snapshotter())
		ep := rchannel.New(network.Endpoint("f1"),
			rchannel.WithRTO(10*time.Millisecond),
			rchannel.WithIncarnation(inc))
		syncer := NewSyncer(f, ep, SyncerConfig{
			Donors:   ids,
			Interval: 2 * time.Millisecond,
			Timeout:  200 * time.Millisecond,
			Announce: true,
		})
		ep.Start()
		syncer.Start()

		select {
		case <-syncer.Installed():
		case <-time.After(30 * time.Second):
			t.Fatalf("incarnation %d never installed: follower index %d, primary index %d, stats %+v",
				inc, f.CommitIndex(), reps[0].CommitIndex(), syncer.Stats())
		}

		// Let it follow briefly, then wipe: crash + full teardown.
		time.Sleep(10 * time.Millisecond)
		network.Crash("f1")
		syncer.Stop()
		ep.Stop()
		network.Restart("f1")
	}
	if writes.Load() == 0 {
		t.Fatal("writer made no progress")
	}
}
