package replication

import (
	"log/slog"
	"time"
)

// Quorum-progress watchdog: graceful degradation at a quorumless primary.
//
// A primary cut off from its quorum cannot deliver anything — g-broadcast
// needs a majority — so every admitted write just parks until the caller's
// timeout. That is safe (nothing quorumless is ever acked) but cruel: each
// client burns its full OpTimeout on an answer the primary already knows it
// cannot give, and the pending queue grows without bound while it does.
//
// The watchdog turns "I can't make progress" into an explicit, observable
// mode. It watches the commit index; when the replica believes it is the
// primary, has work in flight, and the index has not moved for StallTimeout,
// the replica trips DEGRADED:
//
//   - new admissions (Request / RequestSession / ReadBarrier) fail fast with
//     ErrDegraded, a retryable error the service layer maps to a
//     DEGRADED/UNAVAILABLE-class answer — the client goes looking for a
//     healthier replica instead of queueing;
//   - the pending (not yet broadcast) read-barrier group is voided, so
//     parked linearizable readers release immediately;
//   - already-admitted writes are left to their own bounded timeouts — they
//     are in the broadcast layer's hands and will either deliver after heal
//     (the reliable channel retransmits) or go stale at a primary change.
//
// Re-admission is automatic and needs no probe traffic: the stuck in-flight
// broadcasts double as probes. The moment the partition heals, the broadcast
// layer delivers them, the commit index advances, and advanceCommitLocked
// clears the flag on the spot — a delivery IS proof of quorum. A demotion
// clears it the same way (the primary change is itself a delivery).
//
// That leaves one way to wedge: the pending work can evaporate without a
// delivery (request timeouts deregister waiters; a failed broadcast attempt
// resolves its batch with an error). A degraded primary with nothing in
// flight has no probe — no delivery can ever clear the flag, yet every fresh
// admission bounces, so nothing new can become the probe. The watchdog
// breaks the cycle the way a circuit breaker half-opens: when it observes
// degraded with zero pending work, it clears the flag and restarts the stall
// clock. The next admitted write is the probe; if the stall persists it
// parks and re-trips after another StallTimeout, so a long partition
// degrades into periodic probing rather than either permanent fail-fast or
// permanent parking.
//
// Independent of the trip state, MaxPending bounds how much work a primary
// will queue: past the bound, admissions fail fast with ErrDegraded even
// before the stall timer fires. The bound holds whenever the watchdog is
// running.

// WatchdogConfig tunes the quorum-progress watchdog.
type WatchdogConfig struct {
	// StallTimeout is how long the commit index may sit still with work
	// pending before the replica degrades. Set it above the failover
	// suspicion timeout, or a normal election looks like a stall. Required.
	StallTimeout time.Duration
	// CheckEvery is the poll cadence (default StallTimeout/4). The trip
	// latency bound seen by clients is StallTimeout + CheckEvery.
	CheckEvery time.Duration
	// MaxPending bounds broadcasts-in-flight plus queued batch operations
	// admitted at the primary (default 4096).
	MaxPending int
}

// DefaultMaxPending is the pending-work admission bound when the watchdog
// runs with MaxPending unset.
const DefaultMaxPending = 4096

// StartWatchdog begins quorum-progress monitoring. No-op at a follower (it
// admits no writes), with a zero StallTimeout, or when already running.
func (p *Passive) StartWatchdog(cfg WatchdogConfig) {
	if p.follower || cfg.StallTimeout <= 0 || p.watchdogStop != nil {
		return
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = cfg.StallTimeout / 4
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = time.Millisecond
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	p.mu.Lock()
	p.maxPending = cfg.MaxPending
	p.mu.Unlock()
	p.watchdogStop = make(chan struct{})
	p.watchdogDone.Add(1)
	go p.watchdogLoop(cfg)
}

// StopWatchdog halts monitoring and lifts the degraded gate and pending
// bound. Idempotent.
func (p *Passive) StopWatchdog() {
	if p.watchdogStop == nil {
		return
	}
	select {
	case <-p.watchdogStop:
	default:
		close(p.watchdogStop)
	}
	p.watchdogDone.Wait()
	p.mu.Lock()
	p.maxPending = 0
	p.mu.Unlock()
	p.setDegraded(false)
}

// Degraded reports whether the watchdog currently has the replica failing
// fast. Surfaced in /healthz and as the gcs_replication_degraded gauge.
func (p *Passive) Degraded() bool { return p.degraded.Load() }

// DegradedTrips returns how many times the watchdog tripped.
func (p *Passive) DegradedTrips() uint64 { return p.degradedTrips.Load() }

func (p *Passive) watchdogLoop(cfg WatchdogConfig) {
	defer p.watchdogDone.Done()
	ticker := time.NewTicker(cfg.CheckEvery)
	defer ticker.Stop()
	var (
		lastIdx      uint64
		lastMove     = time.Now()
		wasDegraded  bool
		everObserved bool
	)
	for {
		select {
		case <-p.watchdogStop:
			return
		case <-ticker.C:
		}
		p.mu.Lock()
		idx := p.commitIdx
		isPrimary := p.replicas.Primary() == p.self
		pending := p.pendingLocked()
		p.mu.Unlock()
		now := time.Now()
		if !everObserved || idx != lastIdx {
			lastIdx, lastMove, everObserved = idx, now, true
		}
		// Progress (or demotion's delivery) already cleared the flag inside
		// advanceCommitLocked; the loop only narrates the transition.
		degraded := p.degraded.Load()
		if wasDegraded && !degraded {
			slog.Info("replication: quorum progress resumed; re-admitting writes",
				"self", p.self, "commit_index", idx)
		}
		wasDegraded = degraded
		if degraded {
			if pending == 0 {
				// Half-open: the stuck work that proved the stall has
				// evaporated (timed out, resolved with an error), so no
				// delivery can ever clear the flag — but nothing is parked
				// either. Re-admit; the next write is the probe, and a
				// persisting stall re-trips after a fresh StallTimeout.
				p.setDegraded(false)
				lastMove = now
				wasDegraded = false
				slog.Info("replication: degraded with nothing in flight; re-admitting to probe",
					"self", p.self, "commit_index", idx)
			}
			continue
		}
		if !isPrimary {
			continue
		}
		if pending == 0 {
			// The stall clock runs only while work is pending: an idle
			// primary is not stalled, however long its index sits still.
			lastMove = now
			continue
		}
		if now.Sub(lastMove) >= cfg.StallTimeout {
			p.tripDegraded(pending, now.Sub(lastMove))
			wasDegraded = true
		}
	}
}

// pendingLocked counts admitted work awaiting ordered progress: in-flight
// broadcasts (single updates, batches, barriers) plus queued batch
// operations. p.mu must be held.
func (p *Passive) pendingLocked() int {
	n := len(p.waiters) + len(p.batchWaiters) + len(p.barrierWaiters)
	if b := p.batcher; b != nil {
		n += b.pendingLen()
	}
	return n
}

// pendingLen returns the number of queued (not yet flushed) operations.
func (b *batcher) pendingLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// admitLocked is the watchdog's admission gate, called on every write/barrier
// admission path with p.mu held. It fails fast while degraded, and bounds
// the pending queue while the watchdog runs.
func (p *Passive) admitLocked() error {
	if p.degraded.Load() {
		return ErrDegraded
	}
	if p.maxPending > 0 && p.pendingLocked() >= p.maxPending {
		return ErrDegraded
	}
	return nil
}

// tripDegraded flips the replica into fail-fast mode and voids the pending
// read-barrier group.
func (p *Passive) tripDegraded(pending int, stalled time.Duration) {
	p.mu.Lock()
	if p.degraded.Load() {
		p.mu.Unlock()
		return
	}
	p.degraded.Store(true)
	p.degradedTrips.Add(1)
	if m := p.metrics.Load(); m != nil {
		m.degraded.Set(1)
	}
	// Void the pending (never broadcast) barrier group: its readers are
	// parked on a broadcast that will now never be attempted. The in-flight
	// one, if any, resolves through delivery or staleness like any other
	// admitted work.
	g := p.pendingBarrier
	p.pendingBarrier = nil
	epoch := p.epoch
	p.mu.Unlock()
	if g != nil {
		g.err = ErrDegraded
		close(g.done)
	}
	slog.Warn("replication: quorum progress stalled; degraded, failing new writes fast",
		"self", p.self, "epoch", epoch, "pending", pending, "stalled", stalled)
}

// setDegraded force-sets the flag (StopWatchdog's cleanup).
func (p *Passive) setDegraded(v bool) {
	p.degraded.Store(v)
	if m := p.metrics.Load(); m != nil {
		if v {
			m.degraded.Set(1)
		} else {
			m.degraded.Set(0)
		}
	}
}
