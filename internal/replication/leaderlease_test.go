package replication

import (
	"errors"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLeaderLeaseFastPath: once a renewal has committed, the primary serves
// ReadBarrier calls from the lease fast path — correct indexes, zero extra
// barrier broadcasts — and every replica agrees on the holder.
func TestLeaderLeaseFastPath(t *testing.T) {
	reps, _, _, _ := buildPassive(t, 3)
	for _, r := range reps {
		r.EnableLeaderLease(LeaderLeaseConfig{TTL: 2 * time.Second})
		defer r.DisableLeaderLease()
	}

	if _, err := reps[0].Request([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "first lease grant", func() bool {
		return reps[0].leaseHeld()
	})
	// Every replica delivered the same ordered grant.
	for i, r := range reps {
		waitFor(t, 10*time.Second, "grant delivery", func() bool {
			return r.LeaderLeaseStats().Grants >= 1
		})
		r.leaseMu.Lock()
		holder := r.llHolder
		r.leaseMu.Unlock()
		if holder != reps[0].self {
			t.Fatalf("replica %d lease holder %q, want %q", i, holder, reps[0].self)
		}
	}

	before := reps[0].CommitIndex()
	bcastBefore := reps[0].ReadBarrierStats().Broadcasts
	const reads = 20
	for i := 0; i < reads; i++ {
		idx, err := reps[0].ReadBarrier(10*time.Second, nil)
		if err != nil {
			t.Fatal(err)
		}
		if idx < before {
			t.Fatalf("lease read index %d < pre-read commit index %d", idx, before)
		}
	}
	st := reps[0].LeaderLeaseStats()
	if st.LeaseReads < reads {
		t.Fatalf("lease reads %d, want >= %d", st.LeaseReads, reads)
	}
	// The whole point: no per-read ordered broadcasts while the lease holds.
	if got := reps[0].ReadBarrierStats().Broadcasts; got != bcastBefore {
		t.Fatalf("lease-path reads cost %d barrier broadcasts", got-bcastBefore)
	}
	// Backups never serve the fast path.
	if _, ok := reps[1].leaseRead(); ok {
		t.Fatal("backup served a lease read")
	}
}

// TestLeaderLeaseHandoff: a delivered epoch change voids the lease
// everywhere, and the new primary serves linearizable reads through the
// ordered barrier until the old lease's guard window has fully passed —
// only then does its own lease arm the fast path.
func TestLeaderLeaseHandoff(t *testing.T) {
	reps, _, _, _ := buildPassive(t, 3)
	const ttl = 500 * time.Millisecond
	for _, r := range reps {
		r.EnableLeaderLease(LeaderLeaseConfig{TTL: ttl})
		defer r.DisableLeaderLease()
	}
	if _, err := reps[0].Request([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "first lease grant", func() bool {
		return reps[0].leaseHeld()
	})

	if err := reps[1].RequestPrimaryChange("s1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "epoch change at old primary", func() bool {
		_, err := reps[0].Request([]byte("post"))
		return errors.Is(err, ErrNotPrimary)
	})
	// The change's delivery voided the lease at the deposed primary: no
	// replica still believes in a holder for the old epoch.
	for i, r := range reps {
		waitFor(t, 10*time.Second, "lease voided", func() bool {
			return r.LeaderLeaseStats().Voided >= 1
		})
		if _, ok := r.leaseRead(); ok && i != 1 {
			t.Fatalf("replica %d served a lease read after demotion", i)
		}
	}
	// The new primary's first grants stay gated behind the handoff window
	// (guard = delivery + TTL + margin), then the fast path re-arms.
	waitFor(t, 10*time.Second, "new primary lease", func() bool {
		_, ok := reps[1].leaseRead()
		return ok
	})
	reps[1].leaseMu.Lock()
	handoff := reps[1].llHandoff
	reps[1].leaseMu.Unlock()
	if time.Now().Before(handoff) {
		t.Fatal("fast path re-armed before the handoff gate passed")
	}
	st := reps[1].LeaderLeaseStats()
	if st.BarrierFallbacks < 1 {
		t.Fatalf("no barrier fallbacks recorded across the handoff: %+v", st)
	}
}

// TestLeaderLeaseDegradedGate: a primary that knows ordered progress has
// stalled (watchdog degraded) refuses lease reads even inside its nominal
// window — defense in depth against serving reads while partitioned.
func TestLeaderLeaseDegradedGate(t *testing.T) {
	reps, _, _, _ := buildPassive(t, 3)
	for _, r := range reps {
		r.EnableLeaderLease(LeaderLeaseConfig{TTL: 2 * time.Second})
		defer r.DisableLeaderLease()
	}
	waitFor(t, 10*time.Second, "first lease grant", func() bool {
		return reps[0].leaseHeld()
	})
	reps[0].degraded.Store(true)
	if _, ok := reps[0].leaseRead(); ok {
		t.Fatal("degraded primary served a lease read")
	}
	reps[0].degraded.Store(false)
	if _, ok := reps[0].leaseRead(); !ok {
		t.Fatal("healthy primary with a live lease fell back to the barrier")
	}
}

// TestStateAge: a fresh replica reports unknown age (never stamped); after a
// write's delivery every replica reports a small, known age, advanced again
// by lease renewals on an otherwise idle system.
func TestStateAge(t *testing.T) {
	reps, _, _, _ := buildPassive(t, 3)
	if _, ok := reps[1].StateAge(); ok {
		t.Fatal("unstamped replica reported a known state age")
	}
	if _, err := reps[0].Request([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	for i, r := range reps {
		waitFor(t, 10*time.Second, "stamped delivery", func() bool {
			_, ok := r.StateAge()
			return ok
		})
		if age, _ := r.StateAge(); age > time.Minute {
			t.Fatalf("replica %d state age %v right after a write", i, age)
		}
	}

	// Renewals are freshness heartbeats: with no further writes, the stamp
	// keeps advancing (age stays bounded near the renewal period).
	for _, r := range reps {
		r.EnableLeaderLease(LeaderLeaseConfig{TTL: 200 * time.Millisecond})
		defer r.DisableLeaderLease()
	}
	stamp := reps[1].stateStamp.Load()
	waitFor(t, 10*time.Second, "heartbeat stamp advance", func() bool {
		return reps[1].stateStamp.Load() > stamp
	})
}
