package replication

import (
	"time"

	"repro/internal/telemetry"
)

// Registry hookup for the replication layer.
//
// Two mechanisms, chosen by cost:
//
//   - Everything the replica already counts under its mutex (Figure 8
//     counters, batch/barrier/lease/session accounting) is exported through
//     counter-funcs that read the existing Stats methods at scrape time —
//     zero new hot-path work, and the legacy Stats() methods keep working
//     for tests and benches.
//   - What only exists in the moment — the commit index at its advance, an
//     op's wait in the batch queue, a broadcast's time to delivery, a
//     snapshot install — is pushed into instruments held in a ReplMetrics
//     struct resolved through an atomic pointer (nil until RegisterMetrics,
//     so the uninstrumented path costs one load and one branch).
//
// The commit-index gauge is the lag primitive: every replica of a group
// exports gcs_replication_commit_index under its own node/shard scope, and
// an observer (chaostest, a dashboard) reads lag as max-min over the group
// — there is no cross-replica lag gauge computed inside the node, because
// a replica cannot know the primary's index without another message.

// ReplMetrics is the replica's pushed instrument set.
type ReplMetrics struct {
	commitIndex     *telemetry.Gauge
	degraded        *telemetry.Gauge     // 1 while the watchdog fails fast
	batchWait       *telemetry.Histogram // op enqueue → batch flush start
	commitLatency   *telemetry.Histogram // g-broadcast → delivery (update path)
	snapshotInstall *telemetry.Histogram
	snapEncoded     *telemetry.Counter
	snapInstalled   *telemetry.Counter
	snapBytesOut    *telemetry.Counter
	snapBytesIn     *telemetry.Counter
	fsyncLatency    *telemetry.Histogram // storage Sync on the delivery path
}

// RegisterMetrics binds the replica's accounting into scope and enables
// the pushed instruments. Call once per replica, at wiring time.
func (p *Passive) RegisterMetrics(s *telemetry.Scope) {
	if s == nil {
		return
	}
	s.CounterFunc("gcs_replication_applied_total",
		"Updates applied to the state machine.",
		func() float64 { a, _, _ := p.Counters(); return float64(a) })
	s.CounterFunc("gcs_replication_ignored_total",
		"Stale-epoch updates ignored.",
		func() float64 { _, i, _ := p.Counters(); return float64(i) })
	s.CounterFunc("gcs_replication_primary_changes_total",
		"Delivered primary changes (epochs).",
		func() float64 { _, _, c := p.Counters(); return float64(c) })
	s.CounterFunc("gcs_replication_duplicates_total",
		"Session updates suppressed at apply time (exactly-once).",
		func() float64 { return float64(p.Duplicates()) })
	s.CounterFunc("gcs_replication_batches_total",
		"Group-commit batches broadcast.",
		func() float64 { return float64(p.BatchStats().Batches) })
	s.CounterFunc("gcs_replication_batched_ops_total",
		"Operations carried by group-commit batches.",
		func() float64 { return float64(p.BatchStats().Ops) })
	s.GaugeFunc("gcs_replication_batch_max_ops",
		"Largest batch broadcast so far.",
		func() float64 { return float64(p.BatchStats().MaxBatch) })
	s.CounterFunc("gcs_replication_barrier_broadcasts_total",
		"Read barriers broadcast (after coalescing).",
		func() float64 { return float64(p.ReadBarrierStats().Broadcasts) })
	s.CounterFunc("gcs_replication_barrier_reads_total",
		"Linearizable reads served through barriers.",
		func() float64 { return float64(p.ReadBarrierStats().Reads) })
	s.GaugeFunc("gcs_replication_barrier_max_coalesced",
		"Most reads coalesced behind one barrier.",
		func() float64 { return float64(p.ReadBarrierStats().MaxCoalesced) })
	s.GaugeFunc("gcs_replication_lease_clock",
		"Replicated lease clock (delivered ticks).",
		func() float64 { return float64(p.LeaseStats().Clock) })
	s.CounterFunc("gcs_replication_lease_expired_total",
		"Session records pruned by the lease.",
		func() float64 { return float64(p.LeaseStats().Expired) })
	s.CounterFunc("gcs_replication_lease_grants_total",
		"Leadership-lease renewals delivered (non-stale).",
		func() float64 { return float64(p.LeaderLeaseStats().Grants) })
	s.CounterFunc("gcs_replication_lease_voided_total",
		"Leadership leases voided by delivered epoch changes.",
		func() float64 { return float64(p.LeaderLeaseStats().Voided) })
	s.CounterFunc("gcs_replication_lease_reads_total",
		"Linearizable reads served on the leadership-lease fast path (no broadcast).",
		func() float64 { return float64(p.LeaderLeaseStats().LeaseReads) })
	s.CounterFunc("gcs_replication_lease_fallbacks_total",
		"Lease-enabled linearizable reads that fell back to the ordered barrier.",
		func() float64 { return float64(p.LeaderLeaseStats().BarrierFallbacks) })
	s.GaugeFunc("gcs_replication_lease_held",
		"1 while this replica holds a live leadership lease for the current epoch.",
		func() float64 {
			if p.leaseHeld() {
				return 1
			}
			return 0
		})
	s.GaugeFunc("gcs_replication_sessions",
		"Sessions in the replicated dedup table.",
		func() float64 { n, _ := p.SessionTableSize(); return float64(n) })
	s.GaugeFunc("gcs_replication_epoch",
		"Current epoch (primary-change count).",
		func() float64 { return float64(p.Epoch()) })
	s.CounterFunc("gcs_replication_degraded_trips_total",
		"Times the quorum-progress watchdog tripped into fail-fast mode.",
		func() float64 { return float64(p.DegradedTrips()) })

	m := &ReplMetrics{
		commitIndex: s.Gauge("gcs_replication_commit_index",
			"Position in the totally ordered command sequence; lag = max-min over a group."),
		degraded: s.Gauge("gcs_replication_degraded",
			"1 while the quorum-progress watchdog has this replica failing writes fast."),
		batchWait: s.Histogram("gcs_replication_batch_wait_seconds",
			"Time an operation waits in the batch queue before its flush starts."),
		commitLatency: s.Histogram("gcs_replication_commit_seconds",
			"Time from g-broadcast of an update (or batch) to its local delivery."),
		snapshotInstall: s.Histogram("gcs_replication_snapshot_install_seconds",
			"Time to install a received snapshot (decode through state restore)."),
		snapEncoded: s.Counter("gcs_replication_snapshots_encoded_total",
			"Snapshots captured at this replica."),
		snapInstalled: s.Counter("gcs_replication_snapshots_installed_total",
			"Snapshots installed at this replica."),
		snapBytesOut: s.Counter("gcs_replication_snapshot_bytes_out_total",
			"Encoded snapshot bytes produced."),
		snapBytesIn: s.Counter("gcs_replication_snapshot_bytes_in_total",
			"Encoded snapshot bytes installed."),
		fsyncLatency: s.Histogram("gcs_storage_fsync_seconds",
			"Durable-engine sync latency on the delivery path (one per commit window)."),
	}
	p.registerStorageMetrics(s)
	p.mu.Lock()
	m.commitIndex.Set(int64(p.commitIdx))
	p.mu.Unlock()
	if p.degraded.Load() {
		m.degraded.Set(1)
	}
	p.metrics.Store(m)
}

// registerStorageMetrics exports the durable layer's accounting. The
// read-throughs go through StorageStats, which answers zeros while no
// engine is attached — the series exist either way, so dashboards and the
// promlint CI step see a stable name set.
func (p *Passive) registerStorageMetrics(s *telemetry.Scope) {
	s.CounterFunc("gcs_storage_appends_total",
		"WAL records appended by the durable engine.",
		func() float64 { return float64(p.StorageStats().Appends) })
	s.CounterFunc("gcs_storage_appended_bytes_total",
		"WAL payload bytes appended by the durable engine.",
		func() float64 { return float64(p.StorageStats().AppendedBytes) })
	s.CounterFunc("gcs_storage_fsyncs_total",
		"Engine syncs that hit the medium.",
		func() float64 { return float64(p.StorageStats().Syncs) })
	s.GaugeFunc("gcs_storage_segments",
		"Live WAL segments.",
		func() float64 { return float64(p.StorageStats().Segments) })
	s.GaugeFunc("gcs_storage_wal_bytes",
		"Bytes across live WAL segments.",
		func() float64 { return float64(p.StorageStats().WALBytes) })
	s.GaugeFunc("gcs_storage_snapshot_index",
		"Commit index of the on-disk snapshot slot.",
		func() float64 { return float64(p.StorageStats().SnapshotIndex) })
	s.GaugeFunc("gcs_storage_snapshot_bytes",
		"Size of the on-disk snapshot slot.",
		func() float64 { return float64(p.StorageStats().SnapshotBytes) })
	s.CounterFunc("gcs_storage_truncated_segments_total",
		"WAL segments retired after snapshots.",
		func() float64 { return float64(p.StorageStats().Truncated) })
	s.CounterFunc("gcs_storage_torn_tails_total",
		"Invalid WAL tails cut during open-time recovery.",
		func() float64 { return float64(p.StorageStats().TornTails) })
	s.CounterFunc("gcs_storage_replayed_records_total",
		"WAL records replayed from local disk at restart.",
		func() float64 { return float64(p.StorageStats().Replayed.Records) })
	s.CounterFunc("gcs_storage_replayed_bytes_total",
		"Encoded WAL bytes replayed from local disk at restart.",
		func() float64 { return float64(p.StorageStats().Replayed.Bytes) })
	s.GaugeFunc("gcs_storage_replayed_snapshot_index",
		"Commit index of the snapshot replayed from local disk at restart.",
		func() float64 { return float64(p.StorageStats().Replayed.SnapshotIndex) })
}

// SetTracer installs the tracer consulted for cross-layer stage marks
// (batch_enqueue, batch_flush, delivered). The gateway owns sampling; the
// replica only marks ops whose key the gateway Attached, gated on one
// atomic load when nothing is attached.
func (p *Passive) SetTracer(t *telemetry.Tracer) {
	p.tracer.Store(t)
}

// markOps marks one stage on every sessioned op in the slice, if any
// traces are attached.
func (p *Passive) markOps(ops []*batchOp, stage string) {
	t := p.tracer.Load()
	if !t.HasActive() {
		return
	}
	for _, op := range ops {
		if op.key.session != "" {
			t.MarkKey(telemetry.OpKey(op.key.session, op.key.seq), stage)
		}
	}
}

// markOp marks one stage on a single sessioned op.
func (p *Passive) markOp(key sessKey, stage string) {
	t := p.tracer.Load()
	if key.session == "" || !t.HasActive() {
		return
	}
	t.MarkKey(telemetry.OpKey(key.session, key.seq), stage)
}

// RegisterMetrics exports the follower syncer's accounting under scope.
func (s *Syncer) RegisterMetrics(sc *telemetry.Scope) {
	if sc == nil {
		return
	}
	sc.CounterFunc("gcs_sync_pulls_total",
		"Sync pull RPCs attempted.",
		func() float64 { return float64(s.Stats().Pulls) })
	sc.CounterFunc("gcs_sync_failures_total",
		"Sync pull RPCs that timed out or failed to send.",
		func() float64 { return float64(s.Stats().Failures) })
	sc.CounterFunc("gcs_sync_snapshots_total",
		"Snapshots installed through the syncer.",
		func() float64 { return float64(s.Stats().Snapshots) })
	sc.CounterFunc("gcs_sync_entries_total",
		"Log entries applied through the syncer.",
		func() float64 { return float64(s.Stats().Entries) })
	sc.GaugeFunc("gcs_sync_last_pull_donor_seconds",
		"Donor handling time of the last completed pull.",
		func() float64 { return s.Stats().LastDonorMS / 1e3 })
	sc.GaugeFunc("gcs_sync_last_pull_rtt_seconds",
		"Transit time (request + response) of the last completed pull.",
		func() float64 { st := s.Stats(); return (st.LastReqMS + st.LastRespMS) / 1e3 })
}

// observeBatchWait records each op's queue wait at flush start.
func (m *ReplMetrics) observeBatchWait(ops []*batchOp, now time.Time) {
	if m == nil {
		return
	}
	for _, op := range ops {
		if !op.enq.IsZero() {
			m.batchWait.Observe(now.Sub(op.enq))
		}
	}
}
