package replication

import (
	"fmt"

	"time"

	"repro/internal/msg"
	"repro/internal/proc"
)

// Read barrier: the linearizable read level of the service layer.
//
// A read served from a replica's local state is linearizable iff the state
// reflects every write acknowledged before the read began. The barrier makes
// that precise with the ordered path itself: the primary broadcasts a no-op
// in the update class and waits for its own delivery. Per-origin FIFO puts
// the no-op after every update the primary broadcast before it (i.e. after
// everything it could have acknowledged before the read arrived), and the
// epoch tag extends the Figure 8 case analysis to barriers — a barrier
// overtaken by a primary change is stale everywhere and the reader retries
// at the new primary, so a deposed primary (e.g. one serving a partitioned
// minority) can never confirm a barrier and thus never serves a stale
// "linearizable" read.
//
// Coalescing mirrors the group-commit batcher (batch.go): at most one
// barrier broadcast is in flight, and readers arriving while it flies join
// ONE pending group resolved by the next broadcast — a burst of concurrent
// linearizable reads costs two broadcasts, not one each. A reader must never
// join an already-broadcast barrier: the broadcast would predate the read's
// start and could miss a write acknowledged in between.

// pBarrier is the ordered no-op confirming that the sender was still the
// primary at its delivery point.
type pBarrier struct {
	Epoch  uint64
	Client proc.ID
	ReqID  uint64
	// TS is the primary's clock at broadcast: barriers stamp applied state
	// for bounded-staleness freshness just like updates (leaderlease.go).
	TS int64

	// idx is delivery-local (never encoded): the commit index at this
	// replica when the barrier was counted.
	idx uint64
}

func init() {
	msg.Register(pBarrier{})
}

// BarrierStats is the read-barrier accounting.
type BarrierStats struct {
	Broadcasts   uint64 // barrier no-ops broadcast
	Reads        uint64 // linearizable reads served through them
	MaxCoalesced int    // largest reader group sharing one barrier
}

// barrierGroup is one pending barrier accumulating concurrent readers.
type barrierGroup struct {
	readers int
	done    chan struct{}
	index   uint64
	err     error
}

// ReadBarrier confirms through the ordered path that this replica is still
// the primary and that its local state reflects every write acknowledged
// before the call, returning the commit index at the barrier's delivery.
// Serving a local read after a successful ReadBarrier is linearizable.
// Concurrent callers coalesce into one broadcast; ErrNotPrimary/ErrDemoted
// send the caller to the new primary, ErrTimeout (e.g. partitioned from the
// quorum, or abort closed — nil = never) lets it retry elsewhere.
func (p *Passive) ReadBarrier(timeout time.Duration, abort <-chan struct{}) (uint64, error) {
	if p.follower {
		return p.followerBarrier(timeout, abort)
	}
	// Leader-lease fast path (leaderlease.go): with a live, current-epoch
	// lease past the handoff gate, the primary's local state is already
	// confirmed linearizable — no broadcast. Any doubt falls through to the
	// ordered barrier below, so correctness never depends on the lease.
	if idx, ok := p.leaseRead(); ok {
		return idx, nil
	}
	p.mu.Lock()
	if p.replicas.Primary() != p.self {
		primary := p.replicas.Primary()
		p.mu.Unlock()
		return 0, fmt.Errorf("%w (primary is %s)", ErrNotPrimary, primary)
	}
	if err := p.admitLocked(); err != nil {
		// Degraded: a barrier could never confirm anyway (confirmation IS
		// quorum progress), so fail the reader fast instead of parking it.
		p.mu.Unlock()
		return 0, err
	}
	g := p.pendingBarrier
	if g == nil {
		g = &barrierGroup{done: make(chan struct{})}
		p.pendingBarrier = g
	}
	g.readers++
	p.barrierStats.Reads++
	if !p.barrierBusy {
		p.barrierBusy = true
		go p.driveBarriers()
	}
	p.mu.Unlock()

	var expire <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		expire = timer.C
	}
	select {
	case <-g.done:
		return g.index, g.err
	case <-expire:
		return 0, ErrTimeout
	case <-abort:
		return 0, ErrTimeout
	}
}

// ReadBarrierStats returns the barrier accounting.
func (p *Passive) ReadBarrierStats() BarrierStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.barrierStats
}

// driveBarriers flushes pending barrier groups one broadcast at a time; the
// in-flight wait is the coalescing window, exactly as in the batcher.
func (p *Passive) driveBarriers() {
	for {
		p.mu.Lock()
		g := p.pendingBarrier
		p.pendingBarrier = nil
		if g == nil {
			p.barrierBusy = false
			p.mu.Unlock()
			return
		}
		if p.replicas.Primary() != p.self {
			primary := p.replicas.Primary()
			p.mu.Unlock()
			g.err = fmt.Errorf("%w (primary is %s)", ErrNotPrimary, primary)
			close(g.done)
			continue
		}
		epoch := p.epoch
		p.nextReq++
		req := p.nextReq
		ch := make(chan pBarrier, 1)
		p.barrierWaiters[req] = ch
		p.barrierStats.Broadcasts++
		if g.readers > p.barrierStats.MaxCoalesced {
			p.barrierStats.MaxCoalesced = g.readers
		}
		p.mu.Unlock()

		if err := p.node.Gbcast(ClassUpdate, pBarrier{Epoch: epoch, Client: p.self, ReqID: req, TS: time.Now().UnixNano()}); err != nil {
			p.mu.Lock()
			delete(p.barrierWaiters, req)
			p.mu.Unlock()
			g.err = fmt.Errorf("replication: read barrier: %w", err)
			close(g.done)
			continue
		}
		// Like driveSession, this waits for the broadcast's own delivery,
		// which the stack guarantees while the node runs; only a node
		// stopped mid-flight strands the wait (readers still return via
		// their individual timeouts — the replica is dead to them anyway).
		delivered := <-ch
		if delivered.Epoch == staleEpoch {
			g.err = ErrDemoted
		} else {
			g.index = delivered.idx
		}
		close(g.done)
	}
}

// followerBarrier is the follower's linearizable read point: the read-index
// protocol. The Syncer's proxy asks the current primary to run a real
// ReadBarrier (an ordered no-op confirming it is still the primary) and
// returns the primary's post-barrier commit index; waiting until the local
// log catches up to that index makes a local read reflect every write
// acknowledged before the barrier began — linearizable, without the
// follower ever broadcasting.
func (p *Passive) followerBarrier(timeout time.Duration, abort <-chan struct{}) (uint64, error) {
	p.mu.Lock()
	proxy := p.barrierProxy
	p.mu.Unlock()
	if proxy == nil {
		return 0, p.notPrimaryErr()
	}
	start := time.Now()
	idx, err := proxy(timeout, abort)
	if err != nil {
		return 0, err
	}
	// The caller's timeout bounds the WHOLE barrier: the local catch-up
	// wait gets only what the proxy RPC left over.
	if timeout > 0 {
		if timeout -= time.Since(start); timeout <= 0 {
			return 0, ErrTimeout
		}
	}
	return p.WaitCommit(idx, timeout, abort)
}

// SetBarrierProxy installs the follower's read-index RPC (called by the
// Syncer). fn must return the primary's commit index after a confirmed
// barrier, or a typed replication error.
func (p *Passive) SetBarrierProxy(fn func(timeout time.Duration, abort <-chan struct{}) (uint64, error)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.barrierProxy = fn
}

func (p *Passive) onBarrier(b pBarrier) {
	p.mu.Lock()
	stale := b.Epoch != p.epoch
	if stale {
		p.ignored++
	} else {
		p.advanceCommitLocked(1)
		p.logAppendLocked(b)
	}
	b.idx = p.commitIdx
	var ch chan pBarrier
	if b.Client == p.self {
		ch = p.barrierWaiters[b.ReqID]
		delete(p.barrierWaiters, b.ReqID)
	}
	p.mu.Unlock()
	if !stale {
		p.bumpStamp(b.TS)
	}
	if ch != nil {
		if stale {
			b.Epoch = staleEpoch
		}
		ch <- b
	}
}
