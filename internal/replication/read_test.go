package replication

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCommitIndexConverges: the commit index counts the same totally ordered
// command sequence at every replica — after a burst of writes, all replicas
// settle on the same index, and WaitCommit unblocks a backup only once it
// has caught up to it.
func TestCommitIndexConverges(t *testing.T) {
	reps, _, _, _ := buildPassive(t, 3)

	const ops = 20
	for i := 0; i < ops; i++ {
		if _, err := reps[0].Request([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	want := reps[0].CommitIndex()
	if want < ops {
		t.Fatalf("primary commit index %d after %d ops", want, ops)
	}
	for i, r := range reps {
		idx, err := r.WaitCommit(want, 10*time.Second, nil)
		if err != nil {
			t.Fatalf("replica %d did not reach index %d: %v", i, want, err)
		}
		if idx < want {
			t.Fatalf("replica %d WaitCommit returned %d < %d", i, idx, want)
		}
	}
	// Quiesced, all indexes are equal.
	deadline := time.Now().Add(10 * time.Second)
	for {
		a, b, c := reps[0].CommitIndex(), reps[1].CommitIndex(), reps[2].CommitIndex()
		if a == b && b == c {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("commit indexes diverged: %d %d %d", a, b, c)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWaitCommitTimesOut: a target beyond anything delivered must time out,
// not hang or return early.
func TestWaitCommitTimesOut(t *testing.T) {
	reps, _, _, _ := buildPassive(t, 3)
	if _, err := reps[1].WaitCommit(1<<40, 30*time.Millisecond, nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestReadBarrier: the barrier succeeds only at the primary, returns an
// index covering every prior acknowledged write, and concurrent callers
// coalesce into far fewer broadcasts than readers.
func TestReadBarrier(t *testing.T) {
	reps, sms, _, _ := buildPassive(t, 3)

	if _, err := reps[1].ReadBarrier(time.Second, nil); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("barrier at backup: err = %v, want ErrNotPrimary", err)
	}

	if _, err := reps[0].Request([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	before := reps[0].CommitIndex()
	idx, err := reps[0].ReadBarrier(10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx < before {
		t.Fatalf("barrier index %d < pre-barrier commit index %d", idx, before)
	}
	if got := sms[0].value(); got != "v1" {
		t.Fatalf("primary state after barrier: %q", got)
	}

	// A burst of concurrent barriers coalesces.
	const readers = 64
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = reps[0].ReadBarrier(10*time.Second, nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	st := reps[0].ReadBarrierStats()
	if st.Reads < readers {
		t.Fatalf("barrier stats recorded %d reads, want >= %d", st.Reads, readers)
	}
	if st.Broadcasts >= readers/2 {
		t.Fatalf("%d readers cost %d broadcasts — no coalescing", readers, st.Broadcasts)
	}
	if st.MaxCoalesced < 2 {
		t.Fatalf("max coalesced %d, want >= 2", st.MaxCoalesced)
	}
}

// TestReadBarrierDemoted: a barrier in flight when the primary is demoted
// resolves with ErrDemoted (or ErrNotPrimary when the rotation lands first)
// — never with a stale success.
func TestReadBarrierDemoted(t *testing.T) {
	reps, _, _, _ := buildPassive(t, 3)
	if _, err := reps[0].Request([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := reps[0].ReadBarrier(10*time.Second, nil)
		done <- err
	}()
	if err := reps[1].RequestPrimaryChange("s1"); err != nil {
		t.Fatal(err)
	}
	// The barrier either raced ahead of the change (nil) or was voided by
	// it; both are linearizable outcomes. What must not happen is a hang or
	// an unexpected error.
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, ErrDemoted) && !errors.Is(err, ErrNotPrimary) {
			t.Fatalf("unexpected barrier error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("barrier hung across demotion")
	}
}

// TestReplicatedLeaseExpiry: lease ticks travel the ordered path, so the
// (session, seq) dedup table of a vanished session shrinks identically at
// every replica, while a renewed session survives.
func TestReplicatedLeaseExpiry(t *testing.T) {
	reps, _, _, _ := buildPassive(t, 3)

	// Two sessions write; "gone" never acknowledges its last write, which
	// without a lease would cache its result forever at every replica.
	if _, err := reps[0].RequestSession("gone", 1, 0, []byte("g1"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := reps[0].RequestSession("kept", 1, 0, []byte("k1"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for i, r := range reps {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if s, res := r.SessionTableSize(); s == 2 && res == 2 {
				break
			}
			if time.Now().After(deadline) {
				s, res := r.SessionTableSize()
				t.Fatalf("replica %d table: %d sessions / %d results, want 2/2", i, s, res)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Tick past the TTL, renewing only "kept" — as the primary's gateway
	// would for its attached sessions.
	for tick := 0; tick < leaseTTLTicks+2; tick++ {
		if err := reps[0].LeaseTick([]string{"kept"}); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range reps {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if s, _ := r.SessionTableSize(); s == 1 {
				break
			}
			if time.Now().After(deadline) {
				s, res := r.SessionTableSize()
				t.Fatalf("replica %d table after lease expiry: %d sessions / %d results, want 1", i, s, res)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if st := r.LeaseStats(); st.Expired != 1 {
			t.Fatalf("replica %d expired %d sessions, want 1", i, st.Expired)
		}
	}

	// The expired session's retry of its unacknowledged write re-executes
	// (the lease contract): it gets a fresh record, not a cached result.
	if _, err := reps[0].RequestSession("gone", 1, 0, []byte("g1-again"), 10*time.Second); err != nil {
		t.Fatalf("retry after lease expiry: %v", err)
	}

	// A backup's lease message renews but does not tick: after one backup
	// broadcast and one primary broadcast, the clock advanced exactly once
	// everywhere.
	before := reps[0].LeaseStats().Clock
	if err := reps[1].LeaseTick([]string{"kept"}); err != nil {
		t.Fatalf("backup renewal: %v", err)
	}
	if err := reps[0].LeaseTick(nil); err != nil {
		t.Fatal(err)
	}
	for i, r := range reps {
		deadline := time.Now().Add(10 * time.Second)
		for r.LeaseStats().Clock != before+1 {
			if time.Now().After(deadline) {
				t.Fatalf("replica %d clock %d, want %d (backup broadcasts must not tick)",
					i, r.LeaseStats().Clock, before+1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}
