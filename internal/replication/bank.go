package replication

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/gbcast"
	"repro/internal/msg"
)

// The Section 4.2 example: a replicated bank service where deposits are
// commutative (they need no mutual ordering) while withdrawals must not
// overdraw and therefore conflict with everything.
//
// With generic broadcast, deposits ride the fast class and withdrawals the
// ordered class. A traditional stack has no such facility: "atomic
// broadcast would have to be used both for deposit and withdrawal
// operations. This would induce a non-necessary overhead." Experiment E9
// measures exactly this by running the same replica with two different
// conflict relations.

// Class names of the bank's conflict relation.
const (
	ClassDeposit  = "deposit"
	ClassWithdraw = "withdraw"
)

// BankRelation returns the generic-broadcast relation of Section 4.2:
// deposits commute, withdrawals conflict with deposits and each other.
func BankRelation() *gbcast.Relation {
	return gbcast.NewRelationBuilder().
		Conflict(ClassWithdraw, ClassWithdraw).
		Conflict(ClassDeposit, ClassWithdraw).
		Class(ClassDeposit).
		Build()
}

// BankAllOrderedRelation is the traditional-equivalent relation: every
// operation conflicts, so everything pays for atomic broadcast.
func BankAllOrderedRelation() *gbcast.Relation {
	return gbcast.NewRelationBuilder().
		Conflict(ClassWithdraw, ClassWithdraw).
		Conflict(ClassDeposit, ClassWithdraw).
		Conflict(ClassDeposit, ClassDeposit).
		Build()
}

// BankOp is the wire operation.
type BankOp struct {
	Account string
	Amount  int64 // positive; the class decides deposit vs withdraw
}

func init() {
	msg.Register(BankOp{})
}

// Bank is one replica of the bank service, driven directly by generic
// broadcast deliveries (every replica applies every operation — active
// replication with commutativity knowledge).
type Bank struct {
	node *core.Node

	mu       sync.Mutex
	accounts map[string]int64
	applied  uint64
	rejected uint64 // withdrawals that would overdraw
}

// NewBank creates a bank replica.
func NewBank() *Bank {
	return &Bank{accounts: make(map[string]int64)}
}

// DeliverFunc returns the node delivery callback.
func (b *Bank) DeliverFunc() core.DeliverFunc {
	return func(d gbcast.Delivery) {
		op, ok := d.Body.(BankOp)
		if !ok {
			return
		}
		switch d.Class {
		case ClassDeposit:
			b.applyDeposit(op)
		case ClassWithdraw:
			b.applyWithdraw(op)
		}
	}
}

// Bind attaches the replica to its started node.
func (b *Bank) Bind(node *core.Node) { b.node = node }

// Deposit broadcasts a deposit (commutative class).
func (b *Bank) Deposit(account string, amount int64) error {
	if amount <= 0 {
		return fmt.Errorf("bank: deposit amount %d must be positive", amount)
	}
	return b.node.Gbcast(ClassDeposit, BankOp{Account: account, Amount: amount})
}

// Withdraw broadcasts a withdrawal (ordered class). Whether it succeeds is
// decided identically at every replica at delivery time.
func (b *Bank) Withdraw(account string, amount int64) error {
	if amount <= 0 {
		return fmt.Errorf("bank: withdraw amount %d must be positive", amount)
	}
	return b.node.Gbcast(ClassWithdraw, BankOp{Account: account, Amount: amount})
}

// Balance returns the current balance of account.
func (b *Bank) Balance(account string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.accounts[account]
}

// Applied returns (operations applied, withdrawals rejected).
func (b *Bank) Applied() (uint64, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.applied, b.rejected
}

// Fingerprint returns a deterministic digest of all balances, used by the
// convergence property tests.
func (b *Bank) Fingerprint() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	keys := make([]string, 0, len(b.accounts))
	for k := range b.accounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf []byte
	for _, k := range keys {
		buf = append(buf, k...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(b.accounts[k]))
	}
	return string(buf)
}

func (b *Bank) applyDeposit(op BankOp) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.accounts[op.Account] += op.Amount
	b.applied++
}

func (b *Bank) applyWithdraw(op BankOp) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.accounts[op.Account] < op.Amount {
		b.rejected++
		return
	}
	b.accounts[op.Account] -= op.Amount
	b.applied++
}
