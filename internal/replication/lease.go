package replication

import (
	"fmt"

	"repro/internal/msg"
)

// Replicated session lease: expiry of the (session, seq) dedup table as
// ordered messages, so every replica prunes identically.
//
// Client acks prune a session's *acknowledged* results, but a client that
// vanishes without acknowledging its last writes used to leave those results
// cached forever at every replica. The lease bounds that: every gateway
// periodically broadcasts a pLease renewing the sessions it holds attached,
// and the message from the gateway fronting the primary additionally ticks a
// replicated lease clock; a session record whose deadline (refreshed by
// every applied write, by delivery-time record creation, and by renewals)
// has fallen behind the clock is deleted at tick delivery. Lease messages
// travel in ClassLease, which conflicts with updates, primary changes and
// itself — total order, because renewals originate at ANY replica and the
// expire decision depends on their interleaving with ticks, record-creating
// updates and epoch changes. Hence the decision lands at the same point of
// the command sequence everywhere and the table shrinks identically at every
// replica. Ticks are epoch-tagged so a deposed primary's ticks are void and
// the clock cannot double-advance across a failover.
//
// The trade-off is the usual lease contract: a session with no attached
// connection anywhere and no writes for longer than the TTL loses its
// replicated dedup state, so a client resuming such a session must treat
// unacknowledged operations as lost (re-executing them is no longer
// deduplicated). A session attached to ANY gateway — primary or backup — is
// renewed by that gateway and loses nothing; reads never create replicated
// state, so read-only sessions have nothing to lose either way.

// LeaseTTLTicks is a session lease's length in delivered ticks. The gateway
// derives its broadcast period as LeaseTTL/LeaseTTLTicks from this same
// constant, so a record expires after between LeaseTTL and
// (1+1/LeaseTTLTicks)×LeaseTTL without renewal.
const LeaseTTLTicks = 4

// leaseTTLTicks is the internal alias used by the apply paths.
const leaseTTLTicks = LeaseTTLTicks

// pLease is one ordered lease message: renewals for the sessions the
// sending gateway currently holds attached, plus a clock tick when the
// sender fronts the primary.
type pLease struct {
	Epoch    uint64
	Tick     bool // advances the lease clock; set by the primary's gateway
	Sessions []string
}

func init() {
	msg.Register(pLease{})
}

// LeaseStats is the replicated lease accounting at this replica.
type LeaseStats struct {
	Clock   uint64 // delivered lease ticks
	Expired uint64 // session records pruned by the lease
}

// LeaseStats returns the lease clock and expiry count.
func (p *Passive) LeaseStats() LeaseStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return LeaseStats{Clock: p.leaseClock, Expired: p.leaseExpired}
}

// LeaseTick broadcasts one ordered lease message renewing the given
// sessions. Any replica's gateway may call it — renewals from backups keep
// their attached sessions alive — but only the message of the current
// primary ticks the clock (the epoch tag voids ticks from deposed
// primaries). The service gateway embeds the call in its lease janitor.
func (p *Passive) LeaseTick(sessions []string) error {
	p.mu.Lock()
	tick := p.replicas.Primary() == p.self && !p.follower
	epoch := p.epoch
	proxy := p.leaseProxy
	p.mu.Unlock()
	if p.follower {
		// A follower cannot broadcast; its gateway's renewals are forwarded
		// to the primary as renewal-only messages (never ticking the clock —
		// only the primary's own gateway does, so forwarding gateways cannot
		// make the replicated clock run fast).
		if proxy == nil {
			return fmt.Errorf("replication: follower lease tick without a syncer")
		}
		return proxy(sessions)
	}
	if err := p.node.Gbcast(ClassLease, pLease{Epoch: epoch, Tick: tick, Sessions: sessions}); err != nil {
		return fmt.Errorf("replication: lease tick: %w", err)
	}
	return nil
}

// LeaseRenew broadcasts a renewal-only lease message (no clock tick) for
// sessions attached elsewhere — the donor half of a follower gateway's
// forwarded renewals.
func (p *Passive) LeaseRenew(sessions []string) error {
	if len(sessions) == 0 {
		return nil
	}
	p.mu.Lock()
	epoch := p.epoch
	p.mu.Unlock()
	if err := p.node.Gbcast(ClassLease, pLease{Epoch: epoch, Sessions: sessions}); err != nil {
		return fmt.Errorf("replication: lease renew: %w", err)
	}
	return nil
}

// SetLeaseProxy installs the follower's lease forwarding hook (called by
// the Syncer).
func (p *Passive) SetLeaseProxy(fn func(sessions []string) error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.leaseProxy = fn
}

func (p *Passive) onLease(l pLease) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Renewals always apply (idempotent, totally ordered): a session named
	// by a lease message survives the tick it travels with by definition.
	for _, s := range l.Sessions {
		if rec, ok := p.sessions[s]; ok {
			rec.deadline = p.leaseClock + leaseTTLTicks
		}
	}
	if l.Tick && l.Epoch == p.epoch {
		p.leaseClock++
		for id, rec := range p.sessions {
			if rec.deadline < p.leaseClock {
				delete(p.sessions, id)
				p.leaseExpired++
			}
		}
	} else if l.Tick {
		p.ignored++ // deposed primary's tick: void everywhere
	}
	// No state-machine apply is involved, so advancing under the lock is
	// safe (see advanceCommitLocked).
	p.advanceCommitLocked(1)
	p.logAppendLocked(l)
}
