package replication

import (
	"fmt"

	"strings"
	"sync"
	"testing"
	"time"
)

// snapKV is a tiny deterministic state machine with snapshot support: ops
// "set <k> <v>" write a register; snapshots are a canonical sorted dump.
type snapKV struct {
	mu   sync.Mutex
	data map[string]string
}

func newSnapKV() *snapKV { return &snapKV{data: make(map[string]string)} }

func (r *snapKV) Execute(op []byte) ([]byte, []byte) { return []byte("ok"), op }

func (r *snapKV) ApplyUpdate(update []byte) {
	f := strings.Fields(string(update))
	if len(f) == 3 && f[0] == "set" {
		r.mu.Lock()
		r.data[f[1]] = f[2]
		r.mu.Unlock()
	}
}

func (r *snapKV) snapshot() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.data))
	for k := range r.data {
		keys = append(keys, k)
	}
	// Deterministic order.
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k + "=" + r.data[k] + "\n")
	}
	return []byte(b.String())
}

func (r *snapKV) restore(data []byte) {
	m := make(map[string]string)
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, "="); ok {
			m[k] = v
		}
	}
	r.mu.Lock()
	r.data = m
	r.mu.Unlock()
}

func (r *snapKV) snapshotter() Snapshotter {
	return Snapshotter{Snapshot: r.snapshot, Restore: r.restore}
}

func (r *snapKV) get(k string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.data[k]
}

// driveUpdates feeds n sessioned updates directly through a detached
// replica's delivery path (no network), as the totally ordered stream
// would.
func driveUpdates(p *Passive, session string, n int) {
	for i := 1; i <= n; i++ {
		p.deliverMu.Lock()
		p.applyDelivered(pUpdate{
			Epoch: 0, Client: "x", ReqID: uint64(i),
			Update: []byte(fmt.Sprintf("set k%d v%d", i, i)),
			Result: []byte("ok"), Session: session, Seq: uint64(i),
		})
		p.deliverMu.Unlock()
	}
}

// TestSnapshotRoundTrip: a snapshot captured at one replica installs at a
// fresh follower, reproducing commit index, epoch, dedup table and
// application state — and the digests agree byte for byte.
func TestSnapshotRoundTrip(t *testing.T) {
	smA := newSnapKV()
	a := NewFollower(smA, "a") // detached replica driven by hand
	a.SetSnapshotter(smA.snapshotter())
	driveUpdates(a, "sess", 10)
	a.deliverMu.Lock()
	a.applyDelivered(pChange{Old: ""}) // counted no-op rotation
	a.deliverMu.Unlock()

	if got := a.CommitIndex(); got != 11 {
		t.Fatalf("commit index %d, want 11", got)
	}

	snap := a.EncodeSnapshot()
	smB := newSnapKV()
	b := NewFollower(smB, "b")
	b.SetSnapshotter(smB.snapshotter())
	if err := b.InstallSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if got := b.CommitIndex(); got != 11 {
		t.Fatalf("installed commit index %d, want 11", got)
	}
	if got := smB.get("k7"); got != "v7" {
		t.Fatalf("restored app state k7=%q, want v7", got)
	}
	// Dedup table travelled: replaying an already-snapshotted update at the
	// follower is suppressed as a duplicate.
	before := smB.get("k3")
	b.deliverMu.Lock()
	b.applyDelivered(pUpdate{
		Client: "x", ReqID: 99, Update: []byte("set k3 OTHER"),
		Result: []byte("ok"), Session: "sess", Seq: 3,
	})
	b.deliverMu.Unlock()
	if got := smB.get("k3"); got != before {
		t.Fatalf("replayed duplicate mutated state: k3=%q", got)
	}
	if d := b.Duplicates(); d != 1 {
		t.Fatalf("duplicates %d, want 1", d)
	}
	if string(a.StateDigest()) == string(b.StateDigest()) {
		// Digests include the commit index; the dup replay advanced b's.
		t.Fatal("digests equal despite b having advanced past a")
	}
}

// TestSnapshotVersioned: a snapshot from an unknown version is refused.
func TestSnapshotVersioned(t *testing.T) {
	a := NewFollower(newSnapKV(), "a")
	data, err := encodeSnapshotWithVersion(a, 99)
	if err != nil {
		t.Fatal(err)
	}
	b := NewFollower(newSnapKV(), "b")
	if err := b.InstallSnapshot(data); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unversioned install error = %v, want version mismatch", err)
	}
}

// TestLogCatchUp: SyncSince serves the delivered suffix after a cursor;
// replaying it at a follower reproduces the donor state exactly, and a
// cursor behind the retained window demands a snapshot.
func TestLogCatchUp(t *testing.T) {
	smA := newSnapKV()
	a := NewFollower(smA, "a")
	a.SetSnapshotter(smA.snapshotter())
	a.SetLogCap(8)
	driveUpdates(a, "s", 30)

	// Follower at cursor 26: within the window (log holds ≥ 8 entries).
	entries, ok := a.SyncSince(26, 100)
	if !ok {
		t.Fatalf("SyncSince(26) demanded a snapshot; want entries")
	}
	if len(entries) != 4 {
		t.Fatalf("SyncSince(26) returned %d entries, want 4", len(entries))
	}

	// A cursor before the window must force a snapshot.
	if _, ok := a.SyncSince(2, 100); ok {
		t.Fatal("SyncSince(2) served entries past the trimmed window")
	}

	// Snapshot at 26 + entries (26, 30] reproduce the donor.
	smB := newSnapKV()
	b := NewFollower(smB, "b")
	b.SetSnapshotter(smB.snapshotter())
	// Build the follower by snapshot at the current index minus the tail:
	// install a full snapshot first, then replay the tail idempotently.
	if err := b.InstallSnapshot(a.EncodeSnapshot()); err != nil {
		t.Fatal(err)
	}
	b.ApplySyncEntries(26, entries) // all ≤ current index: skipped
	if got, want := b.CommitIndex(), a.CommitIndex(); got != want {
		t.Fatalf("follower index %d, want %d", got, want)
	}
	if string(a.StateDigest()) != string(b.StateDigest()) {
		t.Fatal("digest mismatch after catch-up")
	}
}

// TestLogBounded: the retained log never exceeds ~2× its cap and trims
// from the front.
func TestLogBounded(t *testing.T) {
	a := NewFollower(newSnapKV(), "a")
	a.SetLogCap(16)
	driveUpdates(a, "s", 500)
	a.mu.Lock()
	n, base := len(a.log), a.logBase
	a.mu.Unlock()
	if n > 32 {
		t.Fatalf("log holds %d entries with cap 16", n)
	}
	if base == 0 {
		t.Fatal("log never trimmed")
	}
}

// TestFollowerRejectsWrites: a follower answers ErrNotPrimary (with a
// usable hint) instead of executing writes or barriers.
func TestFollowerRejectsWrites(t *testing.T) {
	a := NewFollower(newSnapKV(), "a")
	if _, err := a.RequestSession("s", 1, 0, []byte("set k v"), time.Second); err == nil {
		t.Fatal("follower accepted a write")
	}
	if _, err := a.Request([]byte("set k v")); err == nil {
		t.Fatal("follower accepted an unsessioned write")
	}
	if _, err := a.ReadBarrier(time.Second, nil); err == nil {
		t.Fatal("follower confirmed a barrier without a proxy")
	}
}

// encodeSnapshotWithVersion builds a snapshot with a forced version field.
func encodeSnapshotWithVersion(p *Passive, v uint32) ([]byte, error) {
	data := p.EncodeSnapshot()
	dec, err := decodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	dec.Version = v
	return encodeSnapshot(dec)
}

func TestStateDigestDeterministic(t *testing.T) {
	mk := func() *Passive {
		sm := newSnapKV()
		p := NewFollower(sm, "a")
		p.SetSnapshotter(sm.snapshotter())
		driveUpdates(p, "s", 5)
		return p
	}
	a, b := mk(), mk()
	if string(a.StateDigest()) != string(b.StateDigest()) {
		t.Fatal("identical histories produced different digests")
	}
	if got := a.CommitIndex(); got != 5 {
		t.Fatalf("index %d", got)
	}
}
