package replication

import (
	"errors"
	"testing"
	"time"

	"repro/internal/proc"
)

// waitCond polls f until true or the deadline passes.
func waitCond(t *testing.T, d time.Duration, what string, f func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !f() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestWatchdogTripsFailsFastAndHealsOnDelivery(t *testing.T) {
	reps, _, _, network := buildPassive(t, 3)
	reps[0].StartWatchdog(WatchdogConfig{StallTimeout: 80 * time.Millisecond, CheckEvery: 10 * time.Millisecond})
	defer reps[0].StopWatchdog()

	if _, err := reps[0].Request([]byte("healthy")); err != nil {
		t.Fatalf("healthy write: %v", err)
	}

	// Sever the primary from its quorum; a write admitted now can never
	// deliver until heal.
	network.Partition([]proc.ID{"s1"}, []proc.ID{"s2", "s3"})
	doomed := make(chan error, 1)
	go func() {
		_, err := reps[0].RequestTimeout([]byte("doomed"), 10*time.Second)
		doomed <- err
	}()

	waitCond(t, 2*time.Second, "watchdog trip", reps[0].Degraded)
	if reps[0].DegradedTrips() == 0 {
		t.Fatal("trip counter did not move")
	}

	// New writes and barriers fail fast with the retryable typed error —
	// without waiting out any request timeout.
	start := time.Now()
	if _, err := reps[0].RequestTimeout([]byte("new"), 10*time.Second); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded write: err=%v", err)
	}
	if _, err := reps[0].RequestSession("c9", 1, 0, []byte("new"), 10*time.Second); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded sessioned write: err=%v", err)
	}
	if _, err := reps[0].ReadBarrier(10*time.Second, nil); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded barrier: err=%v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("fail-fast took %v", elapsed)
	}

	// Heal: the stuck broadcast doubles as the probe — its delivery clears
	// the flag and resolves the doomed write successfully.
	network.Heal()
	waitCond(t, 5*time.Second, "degraded clear after heal", func() bool { return !reps[0].Degraded() })
	select {
	case err := <-doomed:
		if err != nil {
			t.Fatalf("doomed write after heal: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("doomed write never resolved after heal")
	}
	if _, err := reps[0].Request([]byte("post-heal")); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
}

func TestWatchdogIdlePrimaryNeverTrips(t *testing.T) {
	reps, _, _, _ := buildPassive(t, 3)
	reps[0].StartWatchdog(WatchdogConfig{StallTimeout: 40 * time.Millisecond, CheckEvery: 5 * time.Millisecond})
	defer reps[0].StopWatchdog()
	// Idle far past the stall bound: the stall clock must not run with no
	// work pending, or the first write after a quiet period would bounce.
	time.Sleep(200 * time.Millisecond)
	if _, err := reps[0].Request([]byte("after-idle")); err != nil {
		t.Fatalf("write after idle period: %v", err)
	}
	if reps[0].Degraded() {
		t.Fatal("idle primary degraded")
	}
}

func TestWatchdogVoidsPendingBarrierGroup(t *testing.T) {
	reps, _, _, network := buildPassive(t, 3)
	reps[0].StartWatchdog(WatchdogConfig{StallTimeout: 80 * time.Millisecond, CheckEvery: 10 * time.Millisecond})
	defer reps[0].StopWatchdog()
	if _, err := reps[0].Request([]byte("warm")); err != nil {
		t.Fatal(err)
	}

	network.Partition([]proc.ID{"s1"}, []proc.ID{"s2", "s3"})
	// Reader 1's barrier broadcast gets stuck in flight; reader 2 joins the
	// pending (next) group, which the trip must void.
	r1 := make(chan error, 1)
	go func() {
		_, err := reps[0].ReadBarrier(3*time.Second, nil)
		r1 <- err
	}()
	waitCond(t, 2*time.Second, "barrier in flight", func() bool {
		reps[0].mu.Lock()
		defer reps[0].mu.Unlock()
		return reps[0].barrierBusy
	})
	r2 := make(chan error, 1)
	go func() {
		_, err := reps[0].ReadBarrier(30*time.Second, nil)
		r2 <- err
	}()

	select {
	case err := <-r2:
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("voided reader got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending barrier group not voided within the watchdog bound")
	}
	// Reader 1 resolves through its own bounded timeout (its broadcast is
	// in the network's hands).
	select {
	case err := <-r1:
		if err == nil {
			t.Fatal("in-flight barrier confirmed without quorum")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight barrier never resolved")
	}
	network.Heal()
}

// TestWatchdogHalfOpensWhenPendingEvaporates covers the stuck-open wedge:
// the watchdog trips, then the only pending write times out and deregisters
// its waiter. With nothing in flight there is no probe whose delivery could
// ever clear the flag, yet every fresh admission bounces — unless the
// watchdog half-opens. It must re-admit on its own, let the next write park
// as the new probe, re-trip while the stall persists, and finally deliver
// that probe at heal.
func TestWatchdogHalfOpensWhenPendingEvaporates(t *testing.T) {
	reps, _, _, network := buildPassive(t, 3)
	reps[0].StartWatchdog(WatchdogConfig{StallTimeout: 80 * time.Millisecond, CheckEvery: 10 * time.Millisecond})
	defer reps[0].StopWatchdog()
	if _, err := reps[0].Request([]byte("warm")); err != nil {
		t.Fatal(err)
	}

	network.Partition([]proc.ID{"s1"}, []proc.ID{"s2", "s3"})
	// A doomed write with a short timeout: it trips the watchdog, then its
	// waiter deregisters, leaving the degraded primary with zero pending.
	doomed := make(chan error, 1)
	go func() {
		_, err := reps[0].RequestTimeout([]byte("doomed"), 300*time.Millisecond)
		doomed <- err
	}()
	waitCond(t, 2*time.Second, "watchdog trip", reps[0].Degraded)
	if err := <-doomed; !errors.Is(err, ErrTimeout) {
		t.Fatalf("doomed write: err=%v, want timeout", err)
	}

	// No delivery happened (still partitioned), yet the flag must clear:
	// the half-open is the only path out.
	waitCond(t, 2*time.Second, "half-open re-admission", func() bool { return !reps[0].Degraded() })

	// The next write is admitted as the probe — parked, not bounced — and
	// the persisting stall re-trips around it.
	trips := reps[0].DegradedTrips()
	probe := make(chan error, 1)
	go func() {
		_, err := reps[0].RequestTimeout([]byte("probe"), 10*time.Second)
		probe <- err
	}()
	select {
	case err := <-probe:
		t.Fatalf("probe write resolved early: %v (want it parked as the new probe)", err)
	case <-time.After(50 * time.Millisecond):
	}
	waitCond(t, 2*time.Second, "re-trip on persisting stall", func() bool {
		return reps[0].DegradedTrips() > trips
	})

	// Heal: the parked probe delivers, succeeds, and clears the flag.
	network.Heal()
	select {
	case err := <-probe:
		if err != nil {
			t.Fatalf("probe write after heal: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("probe write never resolved after heal")
	}
	waitCond(t, 5*time.Second, "degraded clear after heal", func() bool { return !reps[0].Degraded() })
}

func TestWatchdogBoundsPendingQueue(t *testing.T) {
	reps, _, _, network := buildPassive(t, 3)
	// Huge stall bound: only the MaxPending gate is under test.
	reps[0].StartWatchdog(WatchdogConfig{StallTimeout: time.Hour, CheckEvery: 10 * time.Millisecond, MaxPending: 3})
	defer reps[0].StopWatchdog()
	if _, err := reps[0].Request([]byte("warm")); err != nil {
		t.Fatal(err)
	}

	network.Partition([]proc.ID{"s1"}, []proc.ID{"s2", "s3"})
	for i := 0; i < 3; i++ {
		go func() {
			_, _ = reps[0].RequestTimeout([]byte("fill"), 5*time.Second)
		}()
	}
	waitCond(t, 2*time.Second, "pending fill", func() bool {
		reps[0].mu.Lock()
		defer reps[0].mu.Unlock()
		return reps[0].pendingLocked() >= 3
	})
	if _, err := reps[0].RequestTimeout([]byte("overflow"), 5*time.Second); !errors.Is(err, ErrDegraded) {
		t.Fatalf("overflow write: err=%v", err)
	}
	network.Heal()
}
