// Package replication provides the replication techniques the paper uses to
// motivate its abstractions (Sections 3.2.2 and 3.2.3):
//
//   - Active replication (state machine approach [33]): client requests are
//     atomically broadcast and every replica executes them; needs atomic
//     broadcast only.
//   - Passive replication (primary-backup): only the primary executes; it
//     propagates state updates with generic broadcast, and primary changes
//     are ordered against updates through the Figure 8 conflict relation —
//     no view synchrony component required.
//   - A replicated bank account service (Section 4.2) whose deposits
//     commute (fast class) while withdrawals conflict (ordered class),
//     used by experiment E9.
package replication

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/gbcast"
	"repro/internal/msg"
	"repro/internal/proc"
)

// StateMachine is the deterministic application of active replication.
type StateMachine interface {
	// Apply executes a command and returns its result. It must be
	// deterministic: every replica applies the same commands in the same
	// order.
	Apply(cmd []byte) []byte
}

// Command is the replicated operation envelope.
type Command struct {
	Client proc.ID
	ReqID  uint64
	Op     []byte
}

func init() {
	msg.Register(Command{})
}

// Active is one replica of an actively-replicated service.
type Active struct {
	sm   StateMachine
	node *core.Node

	mu      sync.Mutex
	nextReq uint64
	applied map[proc.ID]uint64 // per-client dedup watermark
	waiters map[uint64]chan []byte
	count   uint64
}

// NewActive creates a replica around the given state machine.
func NewActive(sm StateMachine) *Active {
	return &Active{
		sm:      sm,
		applied: make(map[proc.ID]uint64),
		waiters: make(map[uint64]chan []byte),
	}
}

// DeliverFunc returns the delivery callback to install in the node config.
func (a *Active) DeliverFunc() core.DeliverFunc {
	return func(d gbcast.Delivery) {
		cmd, ok := d.Body.(Command)
		if !ok {
			return
		}
		a.apply(cmd)
	}
}

// Bind attaches the replica to its started node. Must be called before
// Submit.
func (a *Active) Bind(node *core.Node) { a.node = node }

// Submit atomically broadcasts op and blocks until this replica has applied
// it, returning the local result — the standard state machine interaction.
func (a *Active) Submit(op []byte) ([]byte, error) {
	if a.node == nil {
		return nil, fmt.Errorf("replication: Submit before Bind")
	}
	a.mu.Lock()
	a.nextReq++
	req := a.nextReq
	ch := make(chan []byte, 1)
	a.waiters[req] = ch
	a.mu.Unlock()

	cmd := Command{Client: a.node.Self(), ReqID: req, Op: op}
	if err := a.node.Abcast(cmd); err != nil {
		a.mu.Lock()
		delete(a.waiters, req)
		a.mu.Unlock()
		return nil, fmt.Errorf("replication: %w", err)
	}
	return <-ch, nil
}

// Applied returns how many commands this replica has executed.
func (a *Active) Applied() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.count
}

func (a *Active) apply(cmd Command) {
	a.mu.Lock()
	if cmd.ReqID <= a.applied[cmd.Client] {
		a.mu.Unlock()
		return // duplicate
	}
	a.applied[cmd.Client] = cmd.ReqID
	a.count++
	a.mu.Unlock()

	res := a.sm.Apply(cmd.Op)

	a.mu.Lock()
	var ch chan []byte
	if a.node != nil && cmd.Client == a.node.Self() {
		ch = a.waiters[cmd.ReqID]
		delete(a.waiters, cmd.ReqID)
	}
	a.mu.Unlock()
	if ch != nil {
		ch <- res
	}
}
