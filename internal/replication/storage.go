package replication

// Durable delivery: every counted command is appended to a storage.Engine
// before its originator acknowledges the client, with fsync batching riding
// the group-commit window.
//
// The wiring hangs off the two structures PR 5 already maintains for state
// transfer, because durability needs exactly the same artifacts:
//
//   - logAppendLocked — the single point every counted delivery passes
//     through under p.mu — STAGES the delivered command for the engine
//     (same LogRec the sync protocol ships, encoded with the same codec).
//   - persistDelivered — called at each delivery's end under deliverMu —
//     drains the staged records into Engine.Append and, at the update
//     paths only, calls Engine.Sync BEFORE the waiter that acknowledges
//     the client is woken. A batch is one record and one fsync, so the
//     fsync rate is one per commit window, not per op.
//
// Ordered-class records (primary changes, barriers, leases) append without
// an immediate sync: any valid WAL prefix is a consistent prefix of the
// total order, so losing an unsynced ordered suffix is indistinguishable
// from crashing moments earlier — and the next update's fsync makes them
// durable retroactively. Acked writes are always behind an fsync.
//
// Restart is replay-then-sync: ReplayStorage rebuilds the replica from its
// own snapshot + WAL tail through the SAME delivery handlers that produced
// the state (epoch tags, dedup decisions and lease expiry are recomputed
// from replicated state evolving through the replayed sequence — the
// ApplySyncEntries argument, applied to disk), after which a Recovery
// round pulls only the delta from peers over the sync wire protocol.
//
// Engine errors on the write path panic: a replica that cannot persist
// must crash rather than ack (the repo's fail-loudly policy — same as an
// undecodable abcast batch); the group tolerates the crash.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/storage"
)

// StorageConfig attaches an engine to a replica.
type StorageConfig struct {
	// Engine receives every counted delivered command.
	Engine storage.Engine
	// CompactBytes triggers a background snapshot + WAL truncation once the
	// live WAL exceeds this size (default 8 MiB; negative disables).
	CompactBytes int64
}

// ReplayStats reports what ReplayStorage reconstructed from local disk.
type ReplayStats struct {
	SnapshotIndex uint64 // commit index of the replayed snapshot (0 = none)
	SnapshotBytes int64
	Records       uint64 // WAL records applied
	Ops           uint64 // commit-index advance across them
	Bytes         uint64 // encoded WAL bytes applied
}

// SetStorage wires an engine under the replica. Call before the node (or
// the follower's syncer) starts delivering; pair with ReplayStorage when
// the engine may hold prior state.
func (p *Passive) SetStorage(cfg StorageConfig) {
	if cfg.Engine == nil {
		return
	}
	if cfg.CompactBytes == 0 {
		cfg.CompactBytes = 8 << 20
	}
	p.deliverMu.Lock()
	defer p.deliverMu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.store != nil {
		panic("replication: SetStorage called twice")
	}
	p.store = cfg.Engine
	p.storeCompactBytes = cfg.CompactBytes
}

// persistDelivered drains the records staged by logAppendLocked into the
// engine and, when syncNow is set, makes them durable. Callers hold
// deliverMu (every delivery path does); syncNow is true only at the update
// paths, BEFORE the acking waiter is woken — that ordering is the whole
// durability contract. During bulk replay (ApplySyncEntries) the per-entry
// sync is suppressed and one sync closes the batch.
//
//gcsvet:blocking (it fsyncs: callers holding other guarded locks beware)
func (p *Passive) persistDelivered(syncNow bool) {
	if p.store == nil || p.storeReplay {
		return
	}
	p.mu.Lock()
	staged := p.storeStaged
	p.storeStaged = nil
	p.mu.Unlock()
	for _, rec := range staged {
		data, err := msg.Encode(rec)
		if err != nil {
			panic(fmt.Sprintf("replication: encode wal record @%d: %v", rec.End, err))
		}
		if err := p.store.Append(storage.Record{Index: rec.End, Data: data}); err != nil {
			panic(fmt.Sprintf("replication: wal append @%d: %v", rec.End, err))
		}
		p.storeDirty = true
	}
	if !syncNow || !p.storeDirty || p.storeBulk {
		return
	}
	m := p.metrics.Load()
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	if err := p.store.Sync(); err != nil {
		panic(fmt.Sprintf("replication: wal fsync: %v", err))
	}
	p.storeDirty = false
	if m != nil && m.fsyncLatency != nil {
		m.fsyncLatency.Observe(time.Since(start))
	}
	p.maybeCompactLocked()
}

// maybeCompactLocked kicks one background snapshot + truncation when the
// WAL outgrew the threshold; deliverMu is held by the caller. The capture
// itself re-takes deliverMu on the compaction goroutine — a snapshot is
// only meaningful at a delivery boundary — while the engine's own mutex
// covers SaveSnapshot racing concurrent appends.
func (p *Passive) maybeCompactLocked() {
	if p.storeCompactBytes <= 0 {
		return
	}
	if st := p.store.Stats(); st.WALBytes < p.storeCompactBytes {
		return
	}
	if !p.storeCompacting.CompareAndSwap(false, true) {
		return
	}
	store := p.store
	go func() {
		defer p.storeCompacting.Store(false)
		p.deliverMu.Lock()
		idx, data := p.captureSnapshotLocked()
		p.deliverMu.Unlock()
		if err := store.SaveSnapshot(idx, data); err != nil {
			if errors.Is(err, storage.ErrClosed) {
				return // lost the race with shutdown/kill; nothing to persist
			}
			panic(fmt.Sprintf("replication: snapshot save: %v", err))
		}
		if err := store.TruncateBefore(idx); err != nil && !errors.Is(err, storage.ErrClosed) {
			panic(fmt.Sprintf("replication: wal truncate: %v", err))
		}
	}()
}

// recSpan is the commit-index advance a replayed command produces.
func recSpan(body any) uint64 {
	if b, ok := body.(pUpdateBatch); ok {
		return uint64(len(b.Entries))
	}
	return 1
}

// ReplayStorage rebuilds the replica from its engine: newest snapshot
// first, then the WAL tail through the normal delivery handlers. Call
// after SetStorage and before any live delivery. The replica ends at
// exactly the highest locally durable index; a Recovery round (or the
// follower's syncer) then pulls only the delta from peers.
func (p *Passive) ReplayStorage() (ReplayStats, error) {
	p.deliverMu.Lock()
	defer p.deliverMu.Unlock()
	var rs ReplayStats
	if p.store == nil {
		return rs, nil
	}
	p.storeReplay = true
	defer func() { p.storeReplay = false }()

	idx, data, ok, err := p.store.LoadSnapshot()
	if err != nil {
		return rs, err
	}
	if ok {
		if _, _, err := p.installSnapshotLocked(data); err != nil {
			return rs, fmt.Errorf("replication: replay snapshot: %w", err)
		}
		rs.SnapshotIndex, rs.SnapshotBytes = idx, int64(len(data))
	}

	err = p.store.Replay(p.CommitIndex(), func(rec storage.Record) error {
		v, err := msg.Decode(rec.Data)
		if err != nil {
			return fmt.Errorf("replication: replay decode @%d: %w", rec.Index, err)
		}
		lr, ok := v.(LogRec)
		if !ok {
			return fmt.Errorf("replication: replay @%d: unexpected %T", rec.Index, v)
		}
		cur := p.CommitIndex()
		if lr.End <= cur {
			return nil // covered by the snapshot
		}
		if cur+recSpan(lr.Body) != lr.End {
			return fmt.Errorf("replication: replay gap: at index %d, next record ends at %d", cur, lr.End)
		}
		p.applyDelivered(lr.Body)
		if got := p.CommitIndex(); got != lr.End {
			return fmt.Errorf("replication: replay desync: record ends at %d, commit index %d", lr.End, got)
		}
		rs.Records++
		rs.Ops += recSpan(lr.Body)
		rs.Bytes += uint64(len(rec.Data))
		return nil
	})
	if err != nil {
		return rs, err
	}
	p.mu.Lock()
	p.storeReplayed = rs
	p.mu.Unlock()
	return rs, nil
}

// CloseStorage ends the replica's durable life cleanly: final drain +
// fsync, a fresh snapshot, WAL truncation behind it, engine close. Call
// after the node stopped delivering (graceful shutdown).
func (p *Passive) CloseStorage() error {
	p.deliverMu.Lock()
	defer p.deliverMu.Unlock()
	if p.store == nil {
		return nil
	}
	//gcsvet:ignore lockhold -- graceful shutdown: delivery has stopped, holding deliverMu across the final fsync+snapshot is the point
	p.persistDelivered(true)
	idx, data := p.captureSnapshotLocked()
	store := p.store
	//gcsvet:ignore lockhold -- graceful shutdown: same final-drain path, nothing contends deliverMu anymore
	if err := store.SaveSnapshot(idx, data); err != nil && !errors.Is(err, storage.ErrClosed) {
		return err
	}
	if err := store.TruncateBefore(idx); err != nil && !errors.Is(err, storage.ErrClosed) {
		return err
	}
	err := store.Close()
	p.mu.Lock()
	p.store = nil
	p.mu.Unlock()
	return err
}

// StorageStats combines the engine's accounting with the replica's replay
// counters (zero value when no engine is attached).
type StorageStats struct {
	storage.Stats
	Replayed ReplayStats
}

// StorageStats returns the durable layer's accounting.
func (p *Passive) StorageStats() StorageStats {
	p.mu.Lock()
	store := p.store
	replayed := p.storeReplayed
	p.mu.Unlock()
	var st StorageStats
	if store != nil {
		st.Stats = store.Stats()
	}
	st.Replayed = replayed
	return st
}

// --- Whole-cluster restart alignment -----------------------------------
//
// After a correlated crash every replica replays its OWN disk, so replicas
// come back at different commit indices (each lost its unsynced suffix
// independently) while the broadcast substrate restarts from scratch — no
// retransmission covers the difference. Recovery closes the gap over the
// sync wire protocol BEFORE the group takes traffic: each replica pulls
// deltas from its peers until no peer is ahead. Because the cluster is
// quiescent during recovery (failover and gateways start afterwards), the
// target index is fixed and the rounds terminate.

// RecoveryStats is the alignment phase's accounting.
type RecoveryStats struct {
	Rounds    uint64 // pull rounds completed
	Entries   uint64 // log entries adopted from peers
	Snapshots uint64 // full snapshots adopted from peers
	Bytes     uint64 // encoded bytes adopted (snapshot payloads)
	Failures  uint64 // pull RPCs that failed or timed out
}

// Recovery aligns a restarted replica with its peers. It registers a
// combined SyncProto handler: donor requests (pulls, barriers, hellos,
// renewals) are served exactly as ServeSync would, while sState responses
// — which only a puller receives — feed this replica's own recovery RPCs.
type Recovery struct {
	p     *Passive
	ep    *rchannel.Endpoint
	peers []proc.ID

	mu      sync.Mutex
	nextReq uint64
	waiters map[uint64]chan sState
	stats   RecoveryStats
}

// NewRecovery wires recovery + donor serving onto the endpoint. Call in
// place of ServeSync, between core.NewNode and Start; then node.Start and
// Run BEFORE StartFailover and gateway wiring.
func NewRecovery(ep *rchannel.Endpoint, p *Passive, peers []proc.ID, cfg SyncConfig) *Recovery {
	r := &Recovery{
		p:       p,
		ep:      ep,
		peers:   peers,
		waiters: make(map[uint64]chan sState),
	}
	donor := SyncHandler(ep, p, cfg)
	ep.Handle(SyncProto, func(from proc.ID, body any) {
		if st, ok := body.(sState); ok {
			r.onState(st)
			return
		}
		donor(from, body)
	})
	return r
}

func (r *Recovery) onState(st sState) {
	r.mu.Lock()
	ch := r.waiters[st.ReqID]
	delete(r.waiters, st.ReqID)
	r.mu.Unlock()
	if ch != nil {
		ch <- st
	}
}

// Stats returns the alignment accounting.
func (r *Recovery) Stats() RecoveryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// recoveryDeadAfter is how many consecutive failed pulls write a peer off
// as dead for the rest of this Run. One failure is NOT enough: a slow RPC
// during the restart stampede (every replica recovering at once) must not
// end the round as "aligned" while the only peer holding the missing
// delta was merely skipped — that would bake the divergence in the moment
// traffic starts.
const recoveryDeadAfter = 3

// Run pulls from every peer until a full round finds none ahead of this
// replica AND no reachable peer went unheard, or the deadline passes.
// Peers that fail recoveryDeadAfter consecutive pulls are treated as dead
// for good; alignment with the live set is what matters (a replica that
// comes back later recovers against the then-live set).
func (r *Recovery) Run(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	per := timeout / 10
	if per < 10*time.Millisecond {
		per = 10 * time.Millisecond
	}
	fails := make(map[proc.ID]int)
	for {
		behind, unsettled := false, false
		for _, peer := range r.peers {
			if peer == r.p.Self() || fails[peer] >= recoveryDeadAfter {
				continue
			}
			reached := true
			for { // drain this peer
				st, err := r.rpc(peer, per)
				if err != nil {
					reached = false
					r.mu.Lock()
					r.stats.Failures++
					r.mu.Unlock()
					break
				}
				if st.Snapshot != nil {
					if err := r.p.InstallSnapshot(st.Snapshot); err != nil {
						return err
					}
					r.mu.Lock()
					r.stats.Snapshots++
					r.stats.Bytes += uint64(len(st.Snapshot))
					r.mu.Unlock()
				}
				if len(st.Entries) > 0 {
					r.p.ApplySyncEntries(st.From, st.Entries)
					r.mu.Lock()
					r.stats.Entries += uint64(len(st.Entries))
					r.mu.Unlock()
				}
				if r.p.CommitIndex() >= st.Index {
					break
				}
				behind = true
			}
			if reached {
				fails[peer] = 0
			} else if fails[peer]++; fails[peer] < recoveryDeadAfter {
				unsettled = true // retry this peer next round before concluding
			}
		}
		r.mu.Lock()
		r.stats.Rounds++
		r.mu.Unlock()
		if !behind && !unsettled {
			return nil
		}
		if time.Now().After(deadline) {
			if behind {
				return fmt.Errorf("replication: recovery: %w", ErrTimeout)
			}
			return nil // aligned with everyone still answering
		}
	}
}

func (r *Recovery) rpc(peer proc.ID, timeout time.Duration) (sState, error) {
	r.mu.Lock()
	r.nextReq++
	id := r.nextReq
	ch := make(chan sState, 1)
	r.waiters[id] = ch
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.waiters, id)
		r.mu.Unlock()
	}()
	req := sPull{ReqID: id, From: r.p.CommitIndex(), T0: time.Now().UnixNano()}
	if err := r.ep.Send(peer, SyncProto, req); err != nil {
		return sState{}, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case st := <-ch:
		return st, nil
	case <-timer.C:
		return sState{}, ErrTimeout
	}
}
