package replication

import (
	"time"

	"repro/internal/msg"
	"repro/internal/proc"
)

// Leader lease: linearizable reads at the primary without the per-read
// ordered barrier.
//
// The read barrier (read.go) buys linearizability by pushing a no-op through
// the ordered path for every read burst — ~2 broadcasts per coalescing
// window, which caps linearizable read throughput near the ordered path's
// ceiling while local reads run 3× faster (E13). The lease moves the ordered
// work off the read path: the primary periodically g-broadcasts a
// pLeaderLease renewal in ClassLease (totally ordered, like the session
// lease), and while its lease window holds it answers linearizable reads
// from local state with NO broadcast at all.
//
// Why that is safe, piece by piece:
//
//   - The grant is ordered. A renewal travels in ClassLease, which conflicts
//     with updates, primary changes and itself, so every replica sees the
//     same interleaving of renewals and epoch changes and agrees on who held
//     the lease at every point of the command sequence.
//   - Expiry is anchored at SEND time, extended only by COMMITTED renewals.
//     The holder stamps each renewal with its own clock at broadcast and
//     extends its window to that stamp + TTL only when the renewal comes
//     BACK — i.e. was ordered by a quorum and delivered locally. Broadcasting
//     precedes every replica's delivery, so the holder's window always
//     expires no later than any window another replica could infer from the
//     same renewal; and a primary cut off from its quorum commits nothing,
//     so its lease lapses at most TTL after the cut.
//   - A new primary waits out the old lease. Every replica records a guard =
//     local delivery time + TTL + margin for each delivered renewal; when an
//     epoch change is delivered, the guard becomes the handoff gate: until it
//     passes, the new primary serves linearizable reads through the ordered
//     ReadBarrier exactly as before. Delivery at a backup happens AFTER the
//     holder's send, so guard ≥ holder's expiry + margin — the windows
//     cannot overlap, regardless of who has the faster clock, as long as
//     clock RATES agree within the margin (no absolute clock sync needed).
//   - Delivery of the epoch change voids the old lease instantly at whoever
//     delivers it — including the deposed primary, the moment it learns.
//   - The watchdog's degraded gate is defense in depth: a primary that knows
//     ordered progress has stalled stops serving lease reads even inside its
//     nominal window.
//
// The deployment constraint that makes the windows disjoint in real time is
// TTL + margin ≤ the failover suspicion timeout: a backup only requests a
// primary change after the suspicion timeout passes with no sign of the
// primary, by which point a lease whose renewals stopped committing at the
// same cut has already lapsed. DESIGN.md's "Documented simplifications"
// carries the residual assumption (spurious suspicions of a live but laggy
// primary are not covered by a recency check at the consensus acceptors).
//
// Renewals double as freshness heartbeats: each carries the holder's commit
// timestamp, so an idle system's followers still observe a fresh stateStamp
// and can answer bounded-staleness reads (see StateAge).

// pLeaderLease is one ordered leadership-lease renewal. TTLns rides in the
// message so every replica computes the same guard window even if locally
// configured differently; TS is the holder's clock at broadcast — the
// holder's expiry anchor and the bounded-staleness freshness stamp.
type pLeaderLease struct {
	Epoch  uint64
	Holder proc.ID
	TTLns  int64
	TS     int64 // unix nanos at the holder when the renewal was broadcast
}

func init() {
	msg.Register(pLeaderLease{})
}

// LeaderLeaseConfig tunes the leadership lease.
type LeaderLeaseConfig struct {
	// TTL is the lease length from a renewal's broadcast. Together with
	// Margin it must stay at or below the failover suspicion timeout, or a
	// deposed primary's window could overlap the new primary's first writes.
	// Required.
	TTL time.Duration
	// Margin is the clock-drift allowance added to the guard a replica
	// records at delivery (default TTL/4). It also pads the handoff gate a
	// new primary waits out.
	Margin time.Duration
	// Renew is the renewal broadcast period (default TTL/4): small enough
	// that one lost renewal does not lapse the lease.
	Renew time.Duration
}

func (c *LeaderLeaseConfig) applyDefaults() {
	if c.Margin <= 0 {
		c.Margin = c.TTL / 4
	}
	if c.Renew <= 0 {
		c.Renew = c.TTL / 4
	}
	if c.Renew <= 0 {
		c.Renew = time.Millisecond
	}
}

// LeaderLeaseStats is the leadership-lease accounting at this replica.
type LeaderLeaseStats struct {
	Grants           uint64 // non-stale renewals delivered
	Voided           uint64 // leases voided by a delivered epoch change
	LeaseReads       uint64 // linearizable reads served on the lease fast path
	BarrierFallbacks uint64 // lease-enabled reads that fell back to the barrier
}

// LeaderLeaseStats returns the lease accounting.
func (p *Passive) LeaderLeaseStats() LeaderLeaseStats {
	p.leaseMu.Lock()
	defer p.leaseMu.Unlock()
	return p.llStats
}

// leaseHeld reports whether this replica currently holds a live lease for
// its current epoch, past the handoff gate (the lease-read condition minus
// the degraded gate) — the gcs_replication_lease_held gauge.
func (p *Passive) leaseHeld() bool {
	p.mu.Lock()
	isPrimary := p.replicas.Primary() == p.self
	epoch := p.epoch
	p.mu.Unlock()
	if !isPrimary {
		return false
	}
	now := time.Now()
	p.leaseMu.Lock()
	defer p.leaseMu.Unlock()
	return p.llHolder == p.self && p.llEpoch == epoch &&
		now.Before(p.llExpiry) && !now.Before(p.llHandoff)
}

// EnableLeaderLease starts the renewal loop and arms the linearizable-read
// fast path at this replica. Call it on every core replica of a group with
// the same config (any of them may become primary); a follower has no
// broadcast path and ignores the call. TTL+Margin must not exceed the
// failover suspicion timeout passed to StartFailover.
func (p *Passive) EnableLeaderLease(cfg LeaderLeaseConfig) {
	if p.follower || cfg.TTL <= 0 || p.llStop != nil {
		return
	}
	cfg.applyDefaults()
	p.leaseMu.Lock()
	p.llCfg = cfg
	p.leaseMu.Unlock()
	p.llEnabled.Store(true)
	p.llStop = make(chan struct{})
	p.llDone.Add(1)
	go p.leaderLeaseLoop(cfg)
}

// DisableLeaderLease stops the renewal loop and disarms the fast path.
// Idempotent.
func (p *Passive) DisableLeaderLease() {
	if p.llStop == nil {
		return
	}
	p.llEnabled.Store(false)
	select {
	case <-p.llStop:
	default:
		close(p.llStop)
	}
	p.llDone.Wait()
}

func (p *Passive) leaderLeaseLoop(cfg LeaderLeaseConfig) {
	defer p.llDone.Done()
	ticker := time.NewTicker(cfg.Renew)
	defer ticker.Stop()
	for {
		select {
		case <-p.llStop:
			return
		case <-ticker.C:
		}
		if p.degraded.Load() {
			// A renewal could not commit anyway (no quorum progress); let the
			// lease lapse rather than queue broadcasts behind the stall.
			continue
		}
		p.mu.Lock()
		isPrimary := p.replicas.Primary() == p.self
		epoch := p.epoch
		p.mu.Unlock()
		if !isPrimary {
			continue
		}
		l := pLeaderLease{
			Epoch:  epoch,
			Holder: p.self,
			TTLns:  int64(cfg.TTL),
			TS:     time.Now().UnixNano(),
		}
		// A failed send never extends the lease (only delivery does); the
		// next tick retries.
		_ = p.node.Gbcast(ClassLease, l)
	}
}

// leaseRead is the linearizable-read fast path: with a live lease at the
// current epoch, past the handoff gate and not degraded, the primary's local
// state already reflects every write it acknowledged, so the current commit
// index serves as a confirmed barrier with no broadcast. ok=false sends the
// caller down the ordered ReadBarrier path.
func (p *Passive) leaseRead() (uint64, bool) {
	if !p.llEnabled.Load() || p.degraded.Load() {
		return 0, false
	}
	p.mu.Lock()
	isPrimary := p.replicas.Primary() == p.self
	epoch := p.epoch
	idx := p.commitIdx
	p.mu.Unlock()
	if !isPrimary {
		return 0, false
	}
	now := time.Now()
	p.leaseMu.Lock()
	defer p.leaseMu.Unlock()
	if p.llHolder == p.self && p.llEpoch == epoch &&
		now.Before(p.llExpiry) && !now.Before(p.llHandoff) {
		p.llStats.LeaseReads++
		return idx, true
	}
	p.llStats.BarrierFallbacks++
	return 0, false
}

// onLeaderLease is the delivery handler of pLeaderLease. Like every
// ClassLease delivery it is counted into the commit index regardless of
// staleness (all replicas deliver it, so all must count it identically);
// only a non-stale renewal installs lease state.
func (p *Passive) onLeaderLease(l pLeaderLease) {
	p.mu.Lock()
	stale := l.Epoch != p.epoch
	if stale {
		p.ignored++
	}
	p.advanceCommitLocked(1)
	p.logAppendLocked(l)
	p.mu.Unlock()

	if !stale {
		now := time.Now()
		ttl := time.Duration(l.TTLns)
		p.leaseMu.Lock()
		p.llStats.Grants++
		p.llHolder = l.Holder
		p.llEpoch = l.Epoch
		// Guard = local delivery time + TTL + margin. Delivery follows the
		// holder's send, so the guard covers the holder's whole window plus
		// drift; it becomes the handoff gate at the next epoch change.
		p.llGuard = now.Add(ttl + p.llCfg.Margin)
		if l.Holder == p.self {
			// Expiry anchored at OUR OWN send stamp (same clock that wrote
			// it), extended only because the renewal came back committed.
			p.llExpiry = time.Unix(0, l.TS).Add(ttl)
		}
		p.leaseMu.Unlock()
	}
	// Renewals are freshness heartbeats: an idle system's followers keep a
	// current stateStamp off them. A stale renewal stamps nothing (its TS is
	// a deposed primary's clock).
	if !stale {
		p.bumpStamp(l.TS)
	}
}

// voidLeaseOnChange voids any held/observed lease at an epoch-change
// delivery and raises the handoff gate: whoever becomes primary serves
// linearizable reads through the ordered barrier until the old lease's
// guard window has fully passed. Runs on the delivery goroutine (after
// onChange drops p.mu).
func (p *Passive) voidLeaseOnChange() {
	p.leaseMu.Lock()
	if p.llHolder != "" {
		p.llStats.Voided++
	}
	p.llHolder = ""
	p.llExpiry = time.Time{}
	if p.llGuard.After(p.llHandoff) {
		p.llHandoff = p.llGuard
	}
	p.leaseMu.Unlock()
}

// clearLeaseOnInstall conservatively resets lease state when a snapshot
// replaces the replica's world: the snapshot carries no lease window, so the
// replica forgets any holder and keeps only its guard as the handoff gate.
func (p *Passive) clearLeaseOnInstall() {
	p.leaseMu.Lock()
	p.llHolder = ""
	p.llExpiry = time.Time{}
	if p.llGuard.After(p.llHandoff) {
		p.llHandoff = p.llGuard
	}
	p.leaseMu.Unlock()
}

// bumpStamp advances the applied-state commit timestamp (monotone max).
func (p *Passive) bumpStamp(ts int64) {
	if ts == 0 {
		return
	}
	for {
		cur := p.stateStamp.Load()
		if ts <= cur {
			return
		}
		if p.stateStamp.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// StateAge returns how far this replica's applied state lags the primary's
// commit timestamps: now minus the newest TS delivered here. ok=false means
// no stamped delivery has been observed yet (a fresh replica before its
// first update or renewal) — the caller must treat the age as unknown, not
// zero. The age is measured across two clocks (the primary stamped, this
// replica subtracts), so it is meaningful to ordinary NTP sync, not to
// adversarial clock skew; the bounded-staleness contract in DESIGN.md says
// exactly what that buys.
func (p *Passive) StateAge() (time.Duration, bool) {
	ts := p.stateStamp.Load()
	if ts == 0 {
		return 0, false
	}
	age := time.Since(time.Unix(0, ts))
	if age < 0 {
		age = 0
	}
	return age, true
}
