package replication

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/gbcast"
	"repro/internal/msg"
	"repro/internal/proc"
)

// Passive replication with generic broadcast instead of view synchrony —
// the Section 3.2.3 / Figure 8 protocol, verbatim:
//
//   - The client sends its request to the primary only. The primary
//     executes it and g-broadcasts an *update* message (fast class) to the
//     backups.
//   - A backup that suspects the primary g-broadcasts
//     *primary-change(old)* (ordered class). Delivery rotates the replica
//     list — the old primary is NOT excluded; it simply stops being
//     primary.
//   - The conflict relation (the paper's Section 3.2.3 table) guarantees
//     exactly two outcomes for a concurrent update/primary-change pair:
//     either every replica applies the update before the change (case 1),
//     or every replica delivers the change first and then *ignores* the
//     stale update (case 2) — the client times out, learns the new primary
//     and reissues its request.
//
// Epochs make "stale" precise: every delivered primary-change increments
// the epoch; an update tagged with an older epoch is ignored by everyone
// (deliveries are identically ordered, so the ignore decision is identical
// everywhere).

// Class names of the passive replication conflict relation.
const (
	ClassUpdate        = "update"
	ClassPrimaryChange = "primary-change"
)

// PassiveRelation returns the Section 3.2.3 conflict table.
func PassiveRelation() *gbcast.Relation {
	return gbcast.NewRelationBuilder().
		Conflict(ClassPrimaryChange, ClassPrimaryChange).
		Conflict(ClassUpdate, ClassPrimaryChange).
		Class(ClassUpdate).
		Build()
}

// PassiveStateMachine is the application of passive replication.
type PassiveStateMachine interface {
	// Execute processes a request WITHOUT mutating authoritative state,
	// returning the client result and the state update to propagate.
	Execute(op []byte) (result []byte, update []byte)
	// ApplyUpdate mutates the state; called at every replica when an update
	// message is delivered (in the same order everywhere, relative to
	// conflicting messages).
	ApplyUpdate(update []byte)
}

// Wire messages.
type (
	pUpdate struct {
		Epoch  uint64
		Client proc.ID
		ReqID  uint64
		Update []byte
		Result []byte
	}
	pChange struct {
		Old proc.ID
	}
)

func init() {
	msg.Register(pUpdate{})
	msg.Register(pChange{})
}

// Errors returned by Request.
var (
	// ErrNotPrimary is returned when a request is submitted at a backup.
	ErrNotPrimary = errors.New("replication: not the primary")
	// ErrDemoted is returned when the primary lost its role while the
	// request was in flight (Figure 8 case 2): the caller must retry at the
	// new primary.
	ErrDemoted = errors.New("replication: demoted before update delivery")
	// ErrTimeout is returned by RequestTimeout when the update was not
	// delivered in time — e.g. the contacted primary is partitioned from
	// the quorum. The paper's client reacts by learning the new primary
	// and reissuing the request (Section 3.2.3).
	ErrTimeout = errors.New("replication: request timed out")
)

// Passive is one replica of a passively-replicated service.
type Passive struct {
	sm   PassiveStateMachine
	node *core.Node
	self proc.ID

	mu       sync.Mutex
	replicas proc.View // replica list; head is the primary
	epoch    uint64    // primary-change count
	nextReq  uint64
	waiters  map[uint64]chan pUpdate
	applied  uint64
	ignored  uint64
	changes  uint64

	failover     *fd.Subscription
	stopFailover chan struct{}
	failoverDone sync.WaitGroup
}

// NewPassive creates a replica. replicas is the initial replica list (the
// same at every replica); its head is the initial primary.
func NewPassive(sm PassiveStateMachine, replicas []proc.ID) *Passive {
	return &Passive{
		sm:       sm,
		replicas: proc.NewView(replicas...),
		waiters:  make(map[uint64]chan pUpdate),
	}
}

// DeliverFunc returns the node delivery callback.
func (p *Passive) DeliverFunc() core.DeliverFunc {
	return func(d gbcast.Delivery) {
		switch m := d.Body.(type) {
		case pUpdate:
			p.onUpdate(m)
		case pChange:
			p.onChange(m)
		}
	}
}

// Bind attaches the replica to its started node.
func (p *Passive) Bind(node *core.Node) {
	p.node = node
	p.self = node.Self()
}

// StartFailover begins monitoring the primary with the given suspicion
// timeout; a backup that suspects the primary requests a primary change.
func (p *Passive) StartFailover(timeout time.Duration) {
	p.failover = p.node.FailureDetector().Subscribe(timeout)
	p.stopFailover = make(chan struct{})
	p.failoverDone.Add(1)
	go p.failoverLoop()
}

// StopFailover halts primary monitoring.
func (p *Passive) StopFailover() {
	if p.stopFailover == nil {
		return
	}
	select {
	case <-p.stopFailover:
	default:
		close(p.stopFailover)
	}
	p.failoverDone.Wait()
	p.failover.Close()
}

func (p *Passive) failoverLoop() {
	defer p.failoverDone.Done()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-p.stopFailover:
			return
		case <-ticker.C:
			prim := p.Primary()
			if prim != p.self && p.failover.Suspected(prim) {
				_ = p.RequestPrimaryChange(prim)
			}
		}
	}
}

// Primary returns the current primary.
func (p *Passive) Primary() proc.ID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replicas.Primary()
}

// Epoch returns the number of primary changes delivered.
func (p *Passive) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Replicas returns the current replica list.
func (p *Passive) Replicas() proc.View {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replicas.Clone()
}

// Counters returns (updates applied, stale updates ignored, primary
// changes) — the Figure 8 accounting.
func (p *Passive) Counters() (applied, ignored, changes uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.applied, p.ignored, p.changes
}

// RequestPrimaryChange g-broadcasts primary-change(old) (Figure 8).
func (p *Passive) RequestPrimaryChange(old proc.ID) error {
	if err := p.node.Gbcast(ClassPrimaryChange, pChange{Old: old}); err != nil {
		return fmt.Errorf("replication: primary change: %w", err)
	}
	return nil
}

// Request processes a client request at this replica. It fails with
// ErrNotPrimary at a backup; at the primary it executes the request,
// g-broadcasts the update (fast class!) and waits for its delivery. If a
// primary change overtakes the update (Figure 8 case 2), it returns
// ErrDemoted and the state is untouched at every replica.
func (p *Passive) Request(op []byte) ([]byte, error) {
	return p.request(op, 0)
}

// RequestTimeout is Request with an upper bound on the wait for the
// update's delivery. It returns ErrTimeout if the bound expires — the
// situation of a primary cut off from the quorum, which the paper's client
// resolves by timing out and reissuing elsewhere.
func (p *Passive) RequestTimeout(op []byte, timeout time.Duration) ([]byte, error) {
	return p.request(op, timeout)
}

func (p *Passive) request(op []byte, timeout time.Duration) ([]byte, error) {
	p.mu.Lock()
	if p.replicas.Primary() != p.self {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w (primary is %s)", ErrNotPrimary, p.replicas.Primary())
	}
	epoch := p.epoch
	p.nextReq++
	req := p.nextReq
	ch := make(chan pUpdate, 1)
	p.waiters[req] = ch
	p.mu.Unlock()

	result, update := p.sm.Execute(op)
	u := pUpdate{Epoch: epoch, Client: p.self, ReqID: req, Update: update, Result: result}
	if err := p.node.Gbcast(ClassUpdate, u); err != nil {
		p.mu.Lock()
		delete(p.waiters, req)
		p.mu.Unlock()
		return nil, fmt.Errorf("replication: update: %w", err)
	}
	var expire <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		expire = timer.C
	}
	select {
	case delivered := <-ch:
		if delivered.Epoch == staleEpoch {
			return nil, ErrDemoted
		}
		return delivered.Result, nil
	case <-expire:
		p.mu.Lock()
		delete(p.waiters, req)
		p.mu.Unlock()
		return nil, ErrTimeout
	}
}

// staleEpoch marks an update that was ignored because a primary change was
// delivered first (Figure 8 case 2).
const staleEpoch = ^uint64(0)

func (p *Passive) onUpdate(u pUpdate) {
	p.mu.Lock()
	stale := u.Epoch != p.epoch
	if stale {
		p.ignored++
	} else {
		p.applied++
	}
	var ch chan pUpdate
	if u.Client == p.self {
		ch = p.waiters[u.ReqID]
		delete(p.waiters, u.ReqID)
	}
	p.mu.Unlock()

	if !stale {
		p.sm.ApplyUpdate(u.Update)
	}
	if ch != nil {
		if stale {
			u.Epoch = staleEpoch
		}
		ch <- u
	}
}

func (p *Passive) onChange(c pChange) {
	p.mu.Lock()
	next := p.replicas.RotatePast(c.Old)
	if next.Seq != p.replicas.Seq {
		p.replicas = next
		p.epoch++
		p.changes++
	}
	p.mu.Unlock()
}
