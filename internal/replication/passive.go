package replication

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/gbcast"
	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// Passive replication with generic broadcast instead of view synchrony —
// the Section 3.2.3 / Figure 8 protocol, verbatim:
//
//   - The client sends its request to the primary only. The primary
//     executes it and g-broadcasts an *update* message (fast class) to the
//     backups.
//   - A backup that suspects the primary g-broadcasts
//     *primary-change(old)* (ordered class). Delivery rotates the replica
//     list — the old primary is NOT excluded; it simply stops being
//     primary.
//   - The conflict relation (the paper's Section 3.2.3 table) guarantees
//     exactly two outcomes for a concurrent update/primary-change pair:
//     either every replica applies the update before the change (case 1),
//     or every replica delivers the change first and then *ignores* the
//     stale update (case 2) — the client times out, learns the new primary
//     and reissues its request.
//
// Epochs make "stale" precise: every delivered primary-change increments
// the epoch; an update tagged with an older epoch is ignored by everyone
// (deliveries are identically ordered, so the ignore decision is identical
// everywhere).

// Class names of the passive replication conflict relation.
const (
	ClassUpdate        = "update"
	ClassPrimaryChange = "primary-change"
	// ClassLease carries replicated session lease messages (lease.go). It
	// conflicts with everything: renewals may originate at ANY replica's
	// gateway, so only total order makes the tick-time expiry decision —
	// which depends on the interleaving of renewals, ticks, record-creating
	// updates and epoch changes — identical everywhere. Lease traffic is a
	// few messages per LeaseTTL, so the ordered slow path costs nothing
	// measurable.
	ClassLease = "lease"
)

// PassiveRelation returns the Section 3.2.3 conflict table, extended with
// the fully ordered lease class.
func PassiveRelation() *gbcast.Relation {
	return gbcast.NewRelationBuilder().
		Conflict(ClassPrimaryChange, ClassPrimaryChange).
		Conflict(ClassUpdate, ClassPrimaryChange).
		Conflict(ClassLease, ClassLease).
		Conflict(ClassLease, ClassUpdate).
		Conflict(ClassLease, ClassPrimaryChange).
		Class(ClassUpdate).
		Build()
}

// PassiveStateMachine is the application of passive replication.
type PassiveStateMachine interface {
	// Execute processes a request WITHOUT mutating authoritative state,
	// returning the client result and the state update to propagate.
	Execute(op []byte) (result []byte, update []byte)
	// ApplyUpdate mutates the state; called at every replica when an update
	// message is delivered (in the same order everywhere, relative to
	// conflicting messages).
	ApplyUpdate(update []byte)
}

// Wire messages.
type (
	pUpdate struct {
		Epoch  uint64
		Client proc.ID
		ReqID  uint64
		Update []byte
		Result []byte
		// Session/Seq identify the client operation for exactly-once
		// semantics across failover (empty Session = unsessioned request).
		// Ack piggybacks the client's highest acknowledged sequence so every
		// replica can prune its session table deterministically.
		Session string
		Seq     uint64
		Ack     uint64
		// TS is the primary's clock at broadcast (unix nanos): the commit
		// timestamp replicas stamp their applied state with, which is what a
		// bounded-staleness read measures its age against (leaderlease.go).
		TS int64
	}
	pChange struct {
		Old proc.ID
	}
)

func init() {
	msg.Register(pUpdate{})
	msg.Register(pChange{})
}

// Errors returned by Request.
var (
	// ErrNotPrimary is returned when a request is submitted at a backup.
	ErrNotPrimary = errors.New("replication: not the primary")
	// ErrDemoted is returned when the primary lost its role while the
	// request was in flight (Figure 8 case 2): the caller must retry at the
	// new primary.
	ErrDemoted = errors.New("replication: demoted before update delivery")
	// ErrTimeout is returned by RequestTimeout when the update was not
	// delivered in time — e.g. the contacted primary is partitioned from
	// the quorum. The paper's client reacts by learning the new primary
	// and reissuing the request (Section 3.2.3).
	ErrTimeout = errors.New("replication: request timed out")
	// ErrPruned is returned by RequestSession for a sequence number the
	// client has already acknowledged: the result was pruned from the
	// session table and the retry indicates a client bug.
	ErrPruned = errors.New("replication: request already acknowledged and pruned")
	// ErrDegraded is returned while the quorum-progress watchdog has this
	// replica failing fast (watchdog.go): it believes it is the primary but
	// ordered progress has stalled past the bound with work pending —
	// typically a partition severed it from its quorum — or the pending
	// queue hit its admission bound. Retryable: the caller should back off
	// and retry, here or elsewhere.
	ErrDegraded = errors.New("replication: degraded: no quorum progress")
)

// Passive is one replica of a passively-replicated service.
type Passive struct {
	sm   PassiveStateMachine
	node *core.Node
	self proc.ID

	// Observability hookups, nil until wired (see metrics.go). Atomic
	// pointers so hot paths read them without taking mu.
	metrics atomic.Pointer[ReplMetrics]
	tracer  atomic.Pointer[telemetry.Tracer]

	mu       sync.Mutex
	replicas proc.View // replica list; head is the primary
	epoch    uint64    // primary-change count
	nextReq  uint64
	waiters  map[uint64]chan pUpdate
	applied  uint64
	ignored  uint64
	changes  uint64
	dups     uint64 // session duplicates suppressed at apply time

	// commitIdx counts this replica's position in the totally ordered
	// command sequence: non-stale update entries (dup or not — the dedup
	// decision is itself replicated state), primary changes, read barriers
	// and lease messages. Within an epoch every counted message originates
	// at that epoch's unique primary (FIFO per origin), and primary changes
	// conflict with everything, so the sequence — and hence the index — is
	// identical at every replica. It is the token of the monotonic and
	// linearizable read levels (see read.go).
	commitIdx  uint64
	idxWaiters []*idxWaiter

	// sessions is REPLICATED state: it is mutated only by update delivery,
	// so (up to entries pruned by piggybacked client acks) every replica
	// holds the same table and any new primary can deduplicate retries.
	sessions map[string]*sessionRecord
	// inflight joins concurrent RequestSession calls for the same
	// (session, seq) at this primary so an operation is never broadcast (and
	// hence executed) twice.
	inflight map[sessKey]*sessWaiter

	// batcher, when non-nil, routes the write path through group-commit
	// batching (see batch.go); batchWaiters wakes its in-flight flush when
	// the batch is delivered, exactly as waiters does for single updates.
	batcher      *batcher
	batchWaiters map[uint64]chan pUpdateBatch

	// Read-barrier coalescing state (read.go): at most one barrier no-op is
	// in flight; readers arriving meanwhile join the next pending group.
	pendingBarrier *barrierGroup
	barrierBusy    bool
	barrierWaiters map[uint64]chan pBarrier
	barrierStats   BarrierStats

	// Replicated session lease state (lease.go): leaseClock advances on
	// delivered lease ticks; session records whose deadline falls behind it
	// are pruned identically at every replica.
	leaseClock   uint64
	leaseExpired uint64

	// Leadership-lease state (leaderlease.go). leaseMu guards only the lease
	// window fields below; it nests INSIDE p.mu (p.mu → leaseMu) and is never
	// held across anything that blocks. llEnabled gates the read fast path
	// with one atomic load; stateStamp is the applied-state commit timestamp
	// (monotone max of delivered TS fields) behind bounded-staleness reads.
	leaseMu    sync.Mutex //gcsvet:lock leaseMu
	llCfg      LeaderLeaseConfig
	llHolder   proc.ID
	llEpoch    uint64
	llExpiry   time.Time // holder-local: own send stamp + TTL
	llGuard    time.Time // local delivery time + TTL + margin
	llHandoff  time.Time // lease reads gated until this after an epoch change
	llStats    LeaderLeaseStats
	llEnabled  atomic.Bool
	llStop     chan struct{}
	llDone     sync.WaitGroup
	stateStamp atomic.Int64

	onPrimaryChange func(primary proc.ID, epoch uint64)

	failover     *fd.Subscription
	stopFailover chan struct{}
	failoverDone sync.WaitGroup

	// Quorum-progress watchdog state (watchdog.go). degraded is the
	// fail-fast gate read on every admission path; maxPending (under p.mu)
	// bounds admitted-but-undelivered work while the watchdog runs.
	degraded      atomic.Bool
	degradedTrips atomic.Uint64
	maxPending    int
	watchdogStop  chan struct{}
	watchdogDone  sync.WaitGroup

	// Snapshot / state-transfer machinery (snapshot.go, sync.go).
	//
	// deliverMu is held for the whole processing of one delivered command
	// (DeliverFunc wraps the handlers) and by snapshot capture/install and
	// log replay: a "delivery boundary" is precisely a point where deliverMu
	// is free. It nests OUTSIDE p.mu and is uncontended on the hot path —
	// deliveries already run on a single goroutine. Blocking while holding
	// it stalls every delivery of the replica (gcsvet lockhold enforces
	// this; the durable-before-ack fsync is the one sanctioned exception).
	deliverMu sync.Mutex  //gcsvet:lock deliverMu
	snap      Snapshotter // application state hooks for snapshots
	follower  bool        // catch-up replica: no node, log-driven deliveries
	logBase   uint64      // commit index preceding the first retained log entry
	log       []LogRec    // delivered commands covering (logBase, commitIdx]
	logCap    int         // retained-entry bound (see DefaultLogCap)

	// Follower proxies, installed by the Syncer: the read-index barrier
	// (linearizable reads at a follower) and lease renewal forwarding.
	barrierProxy func(timeout time.Duration, abort <-chan struct{}) (uint64, error)
	leaseProxy   func(sessions []string) error

	// Durable storage (storage.go). store/storeStaged/storeReplayed are
	// mutated under p.mu (pointer installs additionally under deliverMu);
	// storeDirty/storeBulk/storeReplay are delivery-path state guarded by
	// deliverMu alone — every reader and writer holds it.
	store             storage.Engine
	storeStaged       []LogRec
	storeReplayed     ReplayStats
	storeDirty        bool // appended since the last engine sync
	storeBulk         bool // ApplySyncEntries batch: one sync at the end
	storeReplay       bool // ReplayStorage in progress: no re-staging
	storeCompactBytes int64
	storeCompacting   atomic.Bool
}

// sessionRecord is one client session's slice of the replicated dedup table.
type sessionRecord struct {
	results map[uint64][]byte // seq -> result, for unacknowledged seqs
	pruned  uint64            // seqs <= pruned were acknowledged by the client
	// deadline is the lease clock tick past which the record expires; it is
	// refreshed by every applied write and by delivered lease renewals, so
	// the whole table stays bounded for vanished clients (lease.go).
	deadline uint64
}

// idxWaiter blocks a monotonic read until the commit index reaches index.
type idxWaiter struct {
	index uint64
	ch    chan struct{}
}

type sessKey struct {
	session string
	seq     uint64
}

// sessWaiter lets a retried request join the in-flight original instead of
// re-executing it.
type sessWaiter struct {
	done   chan struct{}
	result []byte
	err    error
}

// NewPassive creates a replica. replicas is the initial replica list (the
// same at every replica); its head is the initial primary.
func NewPassive(sm PassiveStateMachine, replicas []proc.ID) *Passive {
	return &Passive{
		sm:             sm,
		replicas:       proc.NewView(replicas...),
		waiters:        make(map[uint64]chan pUpdate),
		sessions:       make(map[string]*sessionRecord),
		inflight:       make(map[sessKey]*sessWaiter),
		batchWaiters:   make(map[uint64]chan pUpdateBatch),
		barrierWaiters: make(map[uint64]chan pBarrier),
		logCap:         DefaultLogCap,
	}
}

// DeliverFunc returns the node delivery callback. Each delivered command is
// processed under deliverMu so snapshot capture can interpose only at
// delivery boundaries (snapshot.go).
func (p *Passive) DeliverFunc() core.DeliverFunc {
	return func(d gbcast.Delivery) {
		p.deliverMu.Lock()
		defer p.deliverMu.Unlock()
		p.applyDelivered(d.Body)
	}
}

// applyDelivered routes one delivered command to its handler. It is the
// single entry point for real deliveries (DeliverFunc), log replay at a
// follower (ApplySyncEntries) and disk replay (ReplayStorage); the caller
// holds deliverMu.
func (p *Passive) applyDelivered(body any) {
	switch m := body.(type) {
	case pUpdate:
		p.onUpdate(m)
	case pUpdateBatch:
		p.onUpdateBatch(m)
	case pChange:
		p.onChange(m)
	case pBarrier:
		p.onBarrier(m)
	case pLease:
		p.onLease(m)
	case pLeaderLease:
		p.onLeaderLease(m)
	}
	// Ordered-class commands (changes, barriers, leases) append to storage
	// without forcing an fsync — nobody acks a client on them, and the next
	// update's sync covers the suffix. The update paths already persisted
	// (with sync) before waking their ackers; this drain is their no-op.
	p.persistDelivered(false)
}

// Bind attaches the replica to its started node.
func (p *Passive) Bind(node *core.Node) {
	p.node = node
	p.self = node.Self()
}

// StartFailover begins monitoring the primary with the given suspicion
// timeout; a backup that suspects the primary requests a primary change.
// A follower has no failure detector (and no vote): no-op.
func (p *Passive) StartFailover(timeout time.Duration) {
	if p.follower || p.node == nil {
		return
	}
	p.failover = p.node.FailureDetector().Subscribe(timeout)
	p.stopFailover = make(chan struct{})
	p.failoverDone.Add(1)
	go p.failoverLoop()
}

// StopFailover halts primary monitoring.
func (p *Passive) StopFailover() {
	if p.stopFailover == nil {
		return
	}
	select {
	case <-p.stopFailover:
	default:
		close(p.stopFailover)
	}
	p.failoverDone.Wait()
	p.failover.Close()
}

func (p *Passive) failoverLoop() {
	defer p.failoverDone.Done()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-p.stopFailover:
			return
		case <-ticker.C:
			prim := p.Primary()
			if prim != p.self && p.failover.Suspected(prim) {
				_ = p.RequestPrimaryChange(prim)
			}
		}
	}
}

// Primary returns the current primary. A follower never reports ITSELF as
// the primary, even while an installed snapshot's view still lists its ID
// at the head (a wiped member rejoining before failover rotated it out):
// gateways build redirect hints and the welcome's IsPrimary from this, and
// a self-hint would bounce clients off a replica that rejects every write.
func (p *Passive) Primary() proc.ID {
	p.mu.Lock()
	defer p.mu.Unlock()
	primary := p.replicas.Primary()
	if p.follower && primary == p.self {
		if len(p.replicas.Members) > 1 {
			return p.replicas.Members[1]
		}
		return ""
	}
	return primary
}

// Epoch returns the number of primary changes delivered.
func (p *Passive) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Replicas returns the current replica list.
func (p *Passive) Replicas() proc.View {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replicas.Clone()
}

// Counters returns (updates applied, stale updates ignored, primary
// changes) — the Figure 8 accounting.
func (p *Passive) Counters() (applied, ignored, changes uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.applied, p.ignored, p.changes
}

// Duplicates returns the number of session updates suppressed at apply time
// because their (session, seq) had already been applied — the exactly-once
// accounting.
func (p *Passive) Duplicates() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dups
}

// CommitIndex returns this replica's position in the totally ordered command
// sequence. Two replicas at the same commit index hold identical state, so
// the index is a portable staleness token: a session that records the index
// of its last acknowledged operation can demand "at least this" from any
// replica (the Monotonic read level).
func (p *Passive) CommitIndex() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.commitIdx
}

// WaitCommit blocks until this replica's commit index reaches at least
// index, returning the index observed. A lagging replica reaches the target
// as soon as the retransmission machinery delivers the missing messages;
// ErrTimeout is returned if that takes longer than timeout (e.g. the replica
// is partitioned from the quorum) so the caller can retry elsewhere, or as
// soon as abort is closed (nil = never) — the gateway passes its shutdown
// channel so a closing node does not wait out parked reads.
func (p *Passive) WaitCommit(index uint64, timeout time.Duration, abort <-chan struct{}) (uint64, error) {
	p.mu.Lock()
	if p.commitIdx >= index {
		idx := p.commitIdx
		p.mu.Unlock()
		return idx, nil
	}
	w := &idxWaiter{index: index, ch: make(chan struct{})}
	p.idxWaiters = append(p.idxWaiters, w)
	p.mu.Unlock()

	var expire <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		expire = timer.C
	}
	select {
	case <-w.ch:
		p.mu.Lock()
		idx := p.commitIdx
		p.mu.Unlock()
		return idx, nil
	case <-expire:
	case <-abort:
	}
	p.mu.Lock()
	for i, o := range p.idxWaiters {
		if o == w {
			p.idxWaiters = append(p.idxWaiters[:i], p.idxWaiters[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	return 0, ErrTimeout
}

// advanceCommitLocked moves the commit index forward by n and wakes matured
// index waiters. For deliveries that mutate the state machine it MUST be
// called only after ApplyUpdate has run: a monotonic reader woken at index N
// reads local state without any lock, so the index may never get ahead of
// the applies it stands for. (Deliveries are serialized under deliverMu, so
// deferring the advance past the unlocked apply section cannot reorder it
// against other deliveries.)
func (p *Passive) advanceCommitLocked(n uint64) {
	p.commitIdx += n
	// A delivery is proof of quorum: progress clears the watchdog's
	// fail-fast gate on the spot (heal re-admission, see watchdog.go).
	if p.degraded.Load() {
		p.setDegraded(false)
	}
	if m := p.metrics.Load(); m != nil {
		m.commitIndex.Set(int64(p.commitIdx))
	}
	if len(p.idxWaiters) == 0 {
		return
	}
	kept := p.idxWaiters[:0]
	for _, w := range p.idxWaiters {
		if w.index <= p.commitIdx {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	p.idxWaiters = kept
}

// OnPrimaryChange registers a hook invoked after every delivered primary
// change with the new primary and epoch. It runs on the stack's delivery
// goroutine and must not block; the service gateway uses it to push
// NOT_PRIMARY redirects to connected clients (handing the work to its own
// goroutine).
func (p *Passive) OnPrimaryChange(fn func(primary proc.ID, epoch uint64)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onPrimaryChange = fn
}

// RequestPrimaryChange g-broadcasts primary-change(old) (Figure 8).
func (p *Passive) RequestPrimaryChange(old proc.ID) error {
	if err := p.node.Gbcast(ClassPrimaryChange, pChange{Old: old}); err != nil {
		return fmt.Errorf("replication: primary change: %w", err)
	}
	return nil
}

// Request processes a client request at this replica. It fails with
// ErrNotPrimary at a backup; at the primary it executes the request,
// g-broadcasts the update (fast class!) and waits for its delivery. If a
// primary change overtakes the update (Figure 8 case 2), it returns
// ErrDemoted and the state is untouched at every replica.
func (p *Passive) Request(op []byte) ([]byte, error) {
	return p.request(op, 0)
}

// RequestTimeout is Request with an upper bound on the wait for the
// update's delivery. It returns ErrTimeout if the bound expires — the
// situation of a primary cut off from the quorum, which the paper's client
// resolves by timing out and reissuing elsewhere.
func (p *Passive) RequestTimeout(op []byte, timeout time.Duration) ([]byte, error) {
	return p.request(op, timeout)
}

// notPrimaryErr builds the ErrNotPrimary redirect for a follower. The
// never-points-to-self fallback lives in Primary() so every consumer
// (redirect hints, gateway welcomes, the syncer's donor choice) shares one
// policy.
func (p *Passive) notPrimaryErr() error {
	return fmt.Errorf("%w (primary is %s)", ErrNotPrimary, p.Primary())
}

func (p *Passive) request(op []byte, timeout time.Duration) ([]byte, error) {
	if p.follower {
		return nil, p.notPrimaryErr()
	}
	p.mu.Lock()
	if p.replicas.Primary() != p.self {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w (primary is %s)", ErrNotPrimary, p.replicas.Primary())
	}
	if err := p.admitLocked(); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	if b := p.batcher; b != nil {
		w := &sessWaiter{done: make(chan struct{})}
		p.mu.Unlock()
		b.enqueue(&batchOp{op: op, w: w})
		return w.wait(timeout)
	}
	epoch := p.epoch
	p.nextReq++
	req := p.nextReq
	ch := make(chan pUpdate, 1)
	p.waiters[req] = ch
	p.mu.Unlock()

	result, update := p.sm.Execute(op)
	u := pUpdate{Epoch: epoch, Client: p.self, ReqID: req, Update: update, Result: result,
		TS: time.Now().UnixNano()}
	if err := p.node.Gbcast(ClassUpdate, u); err != nil {
		p.mu.Lock()
		delete(p.waiters, req)
		p.mu.Unlock()
		return nil, fmt.Errorf("replication: update: %w", err)
	}
	var expire <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		expire = timer.C
	}
	select {
	case delivered := <-ch:
		if delivered.Epoch == staleEpoch {
			return nil, ErrDemoted
		}
		return delivered.Result, nil
	case <-expire:
		p.mu.Lock()
		delete(p.waiters, req)
		p.mu.Unlock()
		return nil, ErrTimeout
	}
}

// RequestSession is Request with exactly-once semantics across failover.
// The client names its operation with a (session, seq) pair; every replica
// records delivered results in a replicated session table, so a retry of an
// already-executed operation — at this primary or at a new primary after a
// failover — returns the original result instead of executing again.
// ack is the client's highest contiguously acknowledged sequence; it is
// piggybacked on the update so all replicas prune their tables identically.
//
// Concurrent calls for the same (session, seq) join the in-flight original:
// the operation is broadcast (and executed) at most once per epoch, and
// apply-time deduplication suppresses cross-epoch duplicates.
func (p *Passive) RequestSession(session string, seq, ack uint64, op []byte, timeout time.Duration) ([]byte, error) {
	if session == "" {
		return nil, fmt.Errorf("replication: RequestSession with empty session")
	}
	if p.follower {
		return nil, p.notPrimaryErr()
	}
	key := sessKey{session: session, seq: seq}
	p.mu.Lock()
	if p.replicas.Primary() != p.self {
		primary := p.replicas.Primary()
		p.mu.Unlock()
		return nil, fmt.Errorf("%w (primary is %s)", ErrNotPrimary, primary)
	}
	if rec, ok := p.sessions[session]; ok {
		if res, ok := rec.results[seq]; ok {
			// Already executed. If its local apply is still in flight (the
			// result is recorded before ApplyUpdate runs), wait for it so a
			// cached result is never observable before the state change.
			w := p.inflight[key]
			p.mu.Unlock()
			if w != nil {
				return w.wait(timeout)
			}
			return append([]byte(nil), res...), nil
		}
		if seq <= rec.pruned {
			p.mu.Unlock()
			return nil, ErrPruned
		}
	}
	if w, ok := p.inflight[key]; ok {
		p.mu.Unlock()
		return w.wait(timeout)
	}
	// Fresh work only past this point: cached results and in-flight joins
	// above stay servable while degraded (they need no new quorum round).
	if err := p.admitLocked(); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	w := &sessWaiter{done: make(chan struct{})}
	p.inflight[key] = w
	if b := p.batcher; b != nil {
		p.mu.Unlock()
		// Group commit: the operation joins the next batch; the batcher
		// resolves w (and clears the in-flight entry) when the batch is
		// delivered or the primary is demoted.
		b.enqueue(&batchOp{key: key, op: op, ack: ack, w: w})
		return w.wait(timeout)
	}
	epoch := p.epoch
	p.nextReq++
	req := p.nextReq
	ch := make(chan pUpdate, 1)
	p.waiters[req] = ch
	p.mu.Unlock()

	// Drive the operation to resolution on its own goroutine: even if this
	// caller's timeout expires, the in-flight entry must survive until the
	// update is delivered or the primary is demoted, or a retry could
	// re-execute the operation.
	go p.driveSession(key, w, req, ch, epoch, op, ack)
	return w.wait(timeout)
}

func (p *Passive) driveSession(key sessKey, w *sessWaiter, req uint64, ch chan pUpdate, epoch uint64, op []byte, ack uint64) {
	result, update := p.sm.Execute(op)
	u := pUpdate{
		Epoch: epoch, Client: p.self, ReqID: req,
		Update: update, Result: result,
		Session: key.session, Seq: key.seq, Ack: ack,
		TS: time.Now().UnixNano(),
	}
	p.markOp(key, "broadcast")
	m := p.metrics.Load()
	var sent time.Time
	if m != nil {
		sent = time.Now()
	}
	if err := p.node.Gbcast(ClassUpdate, u); err != nil {
		p.mu.Lock()
		delete(p.waiters, req)
		p.mu.Unlock()
		p.resolve(key, w, nil, fmt.Errorf("replication: update: %w", err))
		return
	}
	delivered := <-ch
	if m != nil {
		m.commitLatency.Observe(time.Since(sent))
	}
	if delivered.Epoch == staleEpoch {
		p.resolve(key, w, nil, ErrDemoted)
		return
	}
	p.markOp(key, "delivered")
	p.resolve(key, w, delivered.Result, nil)
}

func (p *Passive) resolve(key sessKey, w *sessWaiter, result []byte, err error) {
	p.mu.Lock()
	delete(p.inflight, key)
	p.mu.Unlock()
	w.result, w.err = result, err
	close(w.done)
}

func (w *sessWaiter) wait(timeout time.Duration) ([]byte, error) {
	var expire <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		expire = timer.C
	}
	select {
	case <-w.done:
		if w.err != nil {
			return nil, w.err
		}
		return append([]byte(nil), w.result...), nil
	case <-expire:
		return nil, ErrTimeout
	}
}

func (p *Passive) sessionLocked(session string) *sessionRecord {
	rec, ok := p.sessions[session]
	if !ok {
		rec = &sessionRecord{
			results:  make(map[uint64][]byte),
			deadline: p.leaseClock + leaseTTLTicks,
		}
		p.sessions[session] = rec
	}
	return rec
}

// SessionTableSize returns the replicated dedup table's size: live session
// records and cached (unacknowledged) results across them. With the
// replicated lease running, both stay bounded under session churn; without
// it, a vanished client's last results are cached forever.
func (p *Passive) SessionTableSize() (sessions, results int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, rec := range p.sessions {
		results += len(rec.results)
	}
	return len(p.sessions), results
}

// staleEpoch marks an update that was ignored because a primary change was
// delivered first (Figure 8 case 2).
const staleEpoch = ^uint64(0)

// dedupSessionLocked is the apply-time exactly-once bookkeeping for ONE
// sessioned entry, shared by the single-update (onUpdate) and batched
// (onUpdateBatch) delivery paths; p.mu must be held. It returns dup=true
// for an entry whose (session, seq) already applied — replacing *result
// with the cached original so waiters observe the first execution's result
// — and otherwise records the result, prunes acknowledged seqs, and (when
// this replica is not the originator, i.e. no in-flight waiter exists)
// installs and returns a gate that holds retries until the caller has
// applied the entry's state change and resolved it.
func (p *Passive) dedupSessionLocked(session string, seq, ack uint64, result *[]byte) (dup bool, gate *sessWaiter) {
	rec := p.sessionLocked(session)
	switch {
	case seq <= rec.pruned:
		dup = true
	default:
		if cached, ok := rec.results[seq]; ok {
			dup = true
			*result = cached
		}
	}
	if dup {
		p.dups++
		return true, nil
	}
	p.applied++
	rec.results[seq] = *result
	rec.deadline = p.leaseClock + leaseTTLTicks // every applied write renews the lease
	if ack > rec.pruned {
		rec.pruned = ack
		for s := range rec.results {
			if s <= rec.pruned {
				delete(rec.results, s)
			}
		}
	}
	key := sessKey{session: session, seq: seq}
	if _, ok := p.inflight[key]; !ok {
		gate = &sessWaiter{done: make(chan struct{})}
		p.inflight[key] = gate
	}
	return false, gate
}

func (p *Passive) onUpdate(u pUpdate) {
	p.mu.Lock()
	stale := u.Epoch != p.epoch
	dup := false
	var applyGate *sessWaiter // set when this delivery must run ApplyUpdate
	key := sessKey{session: u.Session, seq: u.Seq}
	if !stale && u.Session != "" {
		// Sessioned update: apply-time exactly-once. The dedup decision and
		// the table record happen atomically with RequestSession's dedup
		// check; the apply itself runs outside the lock (the state machine
		// must never be entered with p.mu held), gated through an inflight
		// waiter so a cached result is never returned before its state
		// change has been applied at this replica. (At the originator the
		// inflight waiter already exists and is owned by driveSession,
		// resolved after our wake below, which follows the apply.)
		dup, applyGate = p.dedupSessionLocked(u.Session, u.Seq, u.Ack, &u.Result)
	} else if stale {
		p.ignored++
	} else {
		p.applied++
	}
	var ch chan pUpdate
	if u.Client == p.self {
		ch = p.waiters[u.ReqID]
		delete(p.waiters, u.ReqID)
	}
	p.mu.Unlock()

	if !stale && (u.Session == "" || !dup) {
		p.sm.ApplyUpdate(u.Update)
	}
	if !stale {
		// Only after the apply: the index stands for applied state. The
		// delivered command is logged at its index for joiner catch-up.
		p.mu.Lock()
		p.advanceCommitLocked(1)
		p.logAppendLocked(u)
		p.mu.Unlock()
		p.bumpStamp(u.TS)
		// Durable BEFORE acked: the fsync must precede both the gate
		// resolution and the originator's wake below — either may release a
		// client ack on another goroutine.
		p.persistDelivered(true)
	}
	if applyGate != nil {
		p.resolve(key, applyGate, u.Result, nil)
	}
	if ch != nil {
		if stale {
			u.Epoch = staleEpoch
		}
		ch <- u
	}
}

func (p *Passive) onChange(c pChange) {
	p.mu.Lock()
	var hook func(primary proc.ID, epoch uint64)
	var primary proc.ID
	var epoch uint64
	// Primary changes conflict with every counted class, so counting each
	// delivery (even a no-op rotation — that decision is replicated state)
	// keeps the commit index identical everywhere.
	p.advanceCommitLocked(1)
	p.logAppendLocked(c)
	next := p.replicas.RotatePast(c.Old)
	changed := next.Seq != p.replicas.Seq
	if changed {
		p.replicas = next
		p.epoch++
		p.changes++
		hook = p.onPrimaryChange
		primary = next.Primary()
		epoch = p.epoch
	}
	p.mu.Unlock()
	if changed {
		// Void any leadership lease the instant the epoch change lands —
		// including at the deposed primary — and raise the handoff gate the
		// new primary must wait out (leaderlease.go). Runs on the delivery
		// goroutine, so it precedes every later delivery of the new epoch.
		p.voidLeaseOnChange()
	}
	if hook != nil {
		hook(primary, epoch)
	}
}
