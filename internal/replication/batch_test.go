package replication

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// enableBatching turns on group commit at every replica (only the primary's
// batcher ever flushes) and arranges cleanup.
func enableBatching(t *testing.T, reps []*Passive, cfg BatchConfig) {
	t.Helper()
	for _, r := range reps {
		r.EnableBatching(cfg)
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.StopBatching()
		}
	})
}

// TestBatchCoalesces holds the batching window open long enough for a burst
// of concurrent sessions to provably coalesce into ONE g-broadcast.
func TestBatchCoalesces(t *testing.T) {
	reps, sms, _ := buildCountingPassive(t, 3)
	const burst = 8
	enableBatching(t, reps, BatchConfig{MaxOps: burst, MaxDelay: 250 * time.Millisecond})

	var wg sync.WaitGroup
	results := make([]string, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := reps[0].RequestSession(fmt.Sprintf("c%d", i), 1, 0,
				[]byte(fmt.Sprintf("op-%d", i)), 10*time.Second)
			if err != nil {
				t.Errorf("op %d: %v", i, err)
				return
			}
			results[i] = string(res)
		}(i)
	}
	wg.Wait()

	st := reps[0].BatchStats()
	if st.Batches != 1 || st.Ops != burst || st.MaxBatch != burst {
		t.Fatalf("burst did not coalesce: %+v", st)
	}
	seen := make(map[string]bool)
	for i, r := range results {
		if r == "" || seen[r] {
			t.Fatalf("result %d missing or duplicated: %q", i, r)
		}
		seen[r] = true
	}
	// Every replica applies all entries of the batch, in the same order.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, sm := range sms {
			if _, applies := sm.snapshot(); len(applies) != burst {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch not applied at every replica")
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, first := sms[0].snapshot()
	for i := 1; i < 3; i++ {
		_, applies := sms[i].snapshot()
		for j := range first {
			if applies[j] != first[j] {
				t.Fatalf("replica s%d applied in a different order: %v vs %v", i+1, applies, first)
			}
		}
	}
	if applied, _, _ := reps[0].Counters(); applied != burst {
		t.Fatalf("applied counter %d, want %d", applied, burst)
	}
}

// TestBatchExactlyOnceRetry: a retry of an operation delivered in a batch is
// served from the replicated session table without re-execution.
func TestBatchExactlyOnceRetry(t *testing.T) {
	reps, sms, _ := buildCountingPassive(t, 3)
	enableBatching(t, reps, BatchConfig{})

	res, err := reps[0].RequestSession("rc", 1, 0, []byte("op"), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := reps[0].RequestSession("rc", 1, 0, []byte("op"), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(res2) != string(res) {
		t.Fatalf("retry got %q, original %q", res2, res)
	}
	if execs, applies := sms[0].snapshot(); execs != 1 || len(applies) != 1 {
		t.Fatalf("retry re-executed: execs=%d applies=%v", execs, applies)
	}
}

// TestBatchMixedSessioned: sessioned and unsessioned requests ride the same
// batch and both resolve with their own results.
func TestBatchMixedSessioned(t *testing.T) {
	reps, sms, _ := buildCountingPassive(t, 3)
	enableBatching(t, reps, BatchConfig{MaxOps: 2, MaxDelay: 250 * time.Millisecond})

	var wg sync.WaitGroup
	var sessRes, plainRes []byte
	var sessErr, plainErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		sessRes, sessErr = reps[0].RequestSession("mx", 1, 0, []byte("sessioned"), 10*time.Second)
	}()
	go func() {
		defer wg.Done()
		plainRes, plainErr = reps[0].RequestTimeout([]byte("plain"), 10*time.Second)
	}()
	wg.Wait()
	if sessErr != nil || plainErr != nil {
		t.Fatalf("errors: %v / %v", sessErr, plainErr)
	}
	if string(sessRes) == "" || string(plainRes) == "" || string(sessRes) == string(plainRes) {
		t.Fatalf("results: %q / %q", sessRes, plainRes)
	}
	if st := reps[0].BatchStats(); st.Batches != 1 || st.Ops != 2 {
		t.Fatalf("did not share a batch: %+v", st)
	}
	if _, applies := sms[0].snapshot(); len(applies) != 2 {
		t.Fatalf("applies: %v", applies)
	}
}

// TestBatchDemotionBeforeFlush: a primary change delivered while operations
// sit in the batching window fails them with ErrNotPrimary/ErrDemoted and
// never applies them; the retry at the new primary executes exactly once.
func TestBatchDemotionBeforeFlush(t *testing.T) {
	reps, sms, _ := buildCountingPassive(t, 3)
	enableBatching(t, reps, BatchConfig{MaxOps: 64, MaxDelay: 400 * time.Millisecond})

	errCh := make(chan error, 1)
	go func() {
		_, err := reps[0].RequestSession("dm", 1, 0, []byte("doomed"), 10*time.Second)
		errCh <- err
	}()
	// While the op waits for companions, s2 demotes s1. The change's
	// delivery (~ms) beats the 400ms window, so the flush either sees a
	// non-primary replica (ErrNotPrimary) or, if it raced ahead, its batch
	// is delivered stale (ErrDemoted). Both are retry signals.
	time.Sleep(20 * time.Millisecond)
	if err := reps[1].RequestPrimaryChange("s1"); err != nil {
		t.Fatal(err)
	}
	err := <-errCh
	if !errors.Is(err, ErrNotPrimary) && !errors.Is(err, ErrDemoted) {
		t.Fatalf("demoted batch resolved with %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for reps[1].Primary() != "s2" {
		if time.Now().After(deadline) {
			t.Fatal("no primary change at s2")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Retry under the original (session, seq) at the new primary.
	if _, err := reps[1].RequestSession("dm", 1, 0, []byte("doomed"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let any (wrong) duplicate apply
	for i, sm := range sms {
		_, applies := sm.snapshot()
		n := 0
		for _, a := range applies {
			if a == "doomed" {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("replica s%d applied the op %d times (%v)", i+1, n, applies)
		}
	}
}

// TestBatchMaxDelayIdleOnly: the fill delay is paid by the first op after
// an idle period only — a closed-loop client under steady load must not pay
// MaxDelay per operation (that would collapse throughput to 1/MaxDelay).
func TestBatchMaxDelayIdleOnly(t *testing.T) {
	reps, _, _ := buildCountingPassive(t, 3)
	const delay = 300 * time.Millisecond
	enableBatching(t, reps, BatchConfig{MaxDelay: delay})

	// First op of the idle window: pays up to MaxDelay.
	if _, err := reps[0].RequestSession("sl", 1, 0, []byte("warm"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Steady closed loop: each of these would pay ~MaxDelay (>=1.2s total)
	// if the window applied per batch instead of per idle period.
	start := time.Now()
	for seq := uint64(2); seq <= 5; seq++ {
		if _, err := reps[0].RequestSession("sl", seq, seq-1, []byte("steady"), 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed >= delay {
		t.Fatalf("steady-load ops paid the fill delay: 4 ops took %v (MaxDelay %v)", elapsed, delay)
	}
}

// TestBatchStop: StopBatching releases queued work and reverts the replica
// to the per-operation path.
func TestBatchStop(t *testing.T) {
	reps, sms, _ := buildCountingPassive(t, 3)
	for _, r := range reps {
		r.EnableBatching(BatchConfig{})
	}
	if _, err := reps[0].RequestSession("st", 1, 0, []byte("batched"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for _, r := range reps {
		r.StopBatching()
	}
	if _, err := reps[0].RequestSession("st", 2, 1, []byte("unbatched"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if st := reps[0].BatchStats(); st.Batches != 0 {
		t.Fatalf("stats after stop: %+v", st)
	}
	if _, applies := sms[0].snapshot(); len(applies) != 2 {
		t.Fatalf("applies: %v", applies)
	}
}
