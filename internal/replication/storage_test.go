package replication

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/storage"
	"repro/internal/transport"
)

func openFileEngine(t *testing.T, dir string) *storage.File {
	t.Helper()
	e, err := storage.Open(dir, storage.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// durableReplica builds a detached replica over a file engine in dir,
// replaying whatever the engine holds.
func durableReplica(t *testing.T, dir string, self proc.ID, compact int64) (*Passive, *snapKV, *storage.File, ReplayStats) {
	t.Helper()
	sm := newSnapKV()
	p := NewFollower(sm, self)
	p.SetSnapshotter(sm.snapshotter())
	eng := openFileEngine(t, dir)
	p.SetStorage(StorageConfig{Engine: eng, CompactBytes: compact})
	rs, err := p.ReplayStorage()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return p, sm, eng, rs
}

// TestStorageDurableRoundTrip: deliveries hit the WAL before their ack
// point, CloseStorage seals with a snapshot, and a fresh process rebuilds
// byte-identical state from disk alone.
func TestStorageDurableRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "r1")
	a, _, eng, _ := durableReplica(t, dir, "a", -1)
	driveUpdates(a, "sess", 40)
	a.deliverMu.Lock()
	a.applyDelivered(pChange{Old: ""}) // ordered-class record rides along
	a.deliverMu.Unlock()

	if st := eng.Stats(); st.Appends != 41 || st.Syncs < 40 {
		t.Fatalf("engine accounting: %+v (want 41 appends, >=40 syncs)", st)
	}
	digest := a.StateDigest()
	if err := a.CloseStorage(); err != nil {
		t.Fatal(err)
	}

	b, smB, _, rs := durableReplica(t, dir, "a", -1)
	if rs.SnapshotIndex != 41 {
		t.Fatalf("replayed snapshot index %d, want 41 (CloseStorage seals with a snapshot)", rs.SnapshotIndex)
	}
	if got := b.CommitIndex(); got != 41 {
		t.Fatalf("commit index after replay %d, want 41", got)
	}
	if got := smB.get("k17"); got != "v17" {
		t.Fatalf("app state after replay k17=%q", got)
	}
	if !bytes.Equal(b.StateDigest(), digest) {
		t.Fatal("digest after disk replay differs from pre-shutdown digest")
	}
}

// TestStorageKillKeepsAckedWrites: a power loss (Kill: no flush) preserves
// everything a client was acked — each update delivery synced before its
// waiter could wake.
func TestStorageKillKeepsAckedWrites(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "r1")
	a, _, eng, _ := durableReplica(t, dir, "a", -1)
	driveUpdates(a, "sess", 25)
	eng.Kill()

	b, smB, _, rs := durableReplica(t, dir, "a", -1)
	if rs.Records != 25 || rs.SnapshotIndex != 0 {
		t.Fatalf("replay after kill: %+v (want 25 records, no snapshot)", rs)
	}
	if got := b.CommitIndex(); got != 25 {
		t.Fatalf("commit index %d, want 25", got)
	}
	if got := smB.get("k25"); got != "v25" {
		t.Fatalf("k25=%q after kill-replay", got)
	}
	// The dedup table replayed too: re-delivering an old update is a dup.
	b.deliverMu.Lock()
	b.applyDelivered(pUpdate{
		Epoch: 0, Client: "x", ReqID: 99,
		Update: []byte("set k3 EVIL"), Result: []byte("ok"),
		Session: "sess", Seq: 3,
	})
	b.deliverMu.Unlock()
	if got := smB.get("k3"); got != "v3" {
		t.Fatalf("exactly-once lost across restart: k3=%q", got)
	}
}

// TestStorageBatchOneFsyncPerWindow: a delivered batch is one WAL record
// and ONE engine sync, regardless of its entry count — the group-commit
// fsync amortisation.
func TestStorageBatchOneFsyncPerWindow(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "r1")
	a, sm, eng, _ := durableReplica(t, dir, "a", -1)
	const batches, per = 8, 16
	seq := uint64(0)
	for i := 0; i < batches; i++ {
		entries := make([]pBatchEntry, per)
		for j := range entries {
			seq++
			entries[j] = pBatchEntry{
				Update: []byte(fmt.Sprintf("set k%d v%d", seq, seq)),
				Result: []byte("ok"), Session: "sess", Seq: seq,
			}
		}
		a.deliverMu.Lock()
		a.applyDelivered(pUpdateBatch{Epoch: 0, Client: "x", ReqID: uint64(i + 1), Entries: entries})
		a.deliverMu.Unlock()
	}
	st := eng.Stats()
	if st.Appends != batches {
		t.Fatalf("appends %d, want %d (one record per batch)", st.Appends, batches)
	}
	if st.Syncs != batches {
		t.Fatalf("syncs %d, want %d (one fsync per commit window)", st.Syncs, batches)
	}
	if got := a.CommitIndex(); got != batches*per {
		t.Fatalf("commit index %d, want %d", got, batches*per)
	}
	if got := sm.get("k100"); got != "v100" {
		t.Fatalf("k100=%q", got)
	}

	// And the batch record replays to the same place.
	eng.Kill()
	b, _, _, rs := durableReplica(t, dir, "a", -1)
	if b.CommitIndex() != batches*per || rs.Ops != batches*per {
		t.Fatalf("batch replay: index %d, replayed ops %d", b.CommitIndex(), rs.Ops)
	}
}

// TestStorageCompaction: once the WAL outgrows CompactBytes, a background
// snapshot retires covered segments; restart replays snapshot + tail.
func TestStorageCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "r1")
	sm := newSnapKV()
	a := NewFollower(sm, "a")
	a.SetSnapshotter(sm.snapshotter())
	eng, err := storage.Open(dir, storage.Config{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	a.SetStorage(StorageConfig{Engine: eng, CompactBytes: 16 << 10})
	if _, err := a.ReplayStorage(); err != nil {
		t.Fatal(err)
	}
	driveUpdates(a, "sess", 600) // ~60 KiB of records: several compactions
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := a.StorageStats()
		if st.SnapshotIndex > 0 && st.Truncated > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no compaction: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := a.CloseStorage(); err != nil {
		t.Fatal(err)
	}
	b, smB, _, rs := durableReplica(t, dir, "a", -1)
	if rs.SnapshotIndex == 0 {
		t.Fatal("restart did not replay from the compaction snapshot")
	}
	if got := b.CommitIndex(); got != 600 {
		t.Fatalf("commit index %d, want 600", got)
	}
	if got := smB.get("k600"); got != "v600" {
		t.Fatalf("k600=%q", got)
	}
}

// TestRecoveryAlignsRestartedGroup: three replicas come back from disk at
// DIFFERENT indices (each lost a different suffix) and the Recovery round
// pulls only the missing deltas — no snapshot transfer — until all agree.
func TestRecoveryAlignsRestartedGroup(t *testing.T) {
	base := t.TempDir()
	ids := proc.IDs("r1", "r2", "r3")
	heights := map[proc.ID]int{"r1": 30, "r2": 25, "r3": 20}

	// Phase 1: each replica persists a different prefix of the same totally
	// ordered history, then dies without flushing.
	for _, id := range ids {
		p, _, eng, _ := durableReplica(t, filepath.Join(base, string(id)), id, -1)
		driveUpdates(p, "sess", heights[id])
		eng.Kill()
	}

	// Phase 2: rebuild from disk, wire real endpoints, run recovery.
	network := transport.NewNetwork(transport.WithDelay(0, time.Millisecond), transport.WithSeed(11))
	defer network.Shutdown()
	reps := make(map[proc.ID]*Passive)
	recs := make(map[proc.ID]*Recovery)
	for _, id := range ids {
		p, _, _, rs := durableReplica(t, filepath.Join(base, string(id)), id, -1)
		if int(rs.Records) != heights[id] {
			t.Fatalf("%s replayed %d records, want %d", id, rs.Records, heights[id])
		}
		ep := rchannel.New(network.Endpoint(id), rchannel.WithRTO(10*time.Millisecond))
		recs[id] = NewRecovery(ep, p, ids, SyncConfig{})
		ep.Start()
		reps[id] = p
	}
	done := make(chan error, len(ids))
	for _, id := range ids {
		go func(r *Recovery) { done <- r.Run(5 * time.Second) }(recs[id])
	}
	for range ids {
		if err := <-done; err != nil {
			t.Fatalf("recovery: %v", err)
		}
	}

	want := reps["r1"].StateDigest()
	for _, id := range ids {
		if got := reps[id].CommitIndex(); got != 30 {
			t.Fatalf("%s at index %d after recovery, want 30", id, got)
		}
		if !bytes.Equal(reps[id].StateDigest(), want) {
			t.Fatalf("%s digest differs after recovery", id)
		}
	}
	// Delta-only: the laggards adopted entries, nobody needed a snapshot.
	st2, st3 := recs["r2"].Stats(), recs["r3"].Stats()
	if st2.Entries == 0 || st3.Entries == 0 {
		t.Fatalf("laggards pulled no entries: r2=%+v r3=%+v", st2, st3)
	}
	if st2.Snapshots != 0 || st3.Snapshots != 0 {
		t.Fatalf("recovery fell back to snapshots: r2=%+v r3=%+v", st2, st3)
	}
	// And the adopted delta was persisted: kill r3 again, replay alone.
	if err := reps["r3"].CloseStorage(); err != nil {
		t.Fatal(err)
	}
	p3, _, _, _ := durableReplica(t, filepath.Join(base, "r3"), "r3", -1)
	if got := p3.CommitIndex(); got != 30 {
		t.Fatalf("r3 rereplay at %d, want 30 (recovered delta not persisted)", got)
	}
	if !bytes.Equal(p3.StateDigest(), want) {
		t.Fatal("r3 digest differs after second replay")
	}
}
