package replication

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gbcast"
	"repro/internal/proc"
	"repro/internal/transport"
)

// buildNodes wires n core nodes whose delivery callbacks come from mk.
func buildNodes(t *testing.T, n int, rel *gbcast.Relation, mk func(i int, id proc.ID) core.DeliverFunc, tweak func(*core.Config)) (*transport.Network, []*core.Node) {
	t.Helper()
	network := transport.NewNetwork(transport.WithDelay(0, 2*time.Millisecond), transport.WithSeed(21))
	ids := make([]proc.ID, n)
	for i := range ids {
		ids[i] = proc.ID(fmt.Sprintf("s%d", i+1)) // s1, s2, s3 as in Figure 8
	}
	var nodes []*core.Node
	for i, id := range ids {
		cfg := core.Config{Self: id, Universe: ids, Relation: rel}
		if tweak != nil {
			tweak(&cfg)
		}
		nd, err := core.NewNode(network.Endpoint(id), cfg, mk(i, id))
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		network.Shutdown()
	})
	return network, nodes
}

// ---- active replication -------------------------------------------------

// counterSM is a deterministic state machine: a single int64 register.
type counterSM struct {
	mu sync.Mutex
	v  int64
}

func (c *counterSM) Apply(cmd []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v += int64(binary.BigEndian.Uint64(cmd))
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(c.v))
	return out
}

func (c *counterSM) value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

func TestActiveReplicationConverges(t *testing.T) {
	sms := make([]*counterSM, 3)
	reps := make([]*Active, 3)
	mk := func(i int, _ proc.ID) core.DeliverFunc {
		sms[i] = &counterSM{}
		reps[i] = NewActive(sms[i])
		return reps[i].DeliverFunc()
	}
	_, nodes := buildNodes(t, 3, nil, mk, nil)
	for i, r := range reps {
		r.Bind(nodes[i])
	}

	const perNode = 10
	var wg sync.WaitGroup
	for _, r := range reps {
		wg.Add(1)
		go func(r *Active) {
			defer wg.Done()
			for i := 0; i < perNode; i++ {
				op := make([]byte, 8)
				binary.BigEndian.PutUint64(op, 1)
				if _, err := r.Submit(op); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	want := int64(perNode * len(reps))
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, sm := range sms {
			if sm.value() != want {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas diverged: %d %d %d want %d",
				sms[0].value(), sms[1].value(), sms[2].value(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ---- passive replication / Figure 8 -------------------------------------

// regSM is a passive state machine: a register receiving blind writes.
type regSM struct {
	mu sync.Mutex
	v  []byte
}

func (r *regSM) Execute(op []byte) ([]byte, []byte) {
	return []byte("ok"), op // the update is the new value
}

func (r *regSM) ApplyUpdate(update []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = append([]byte(nil), update...)
}

func (r *regSM) value() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return string(r.v)
}

func buildPassive(t *testing.T, n int) ([]*Passive, []*regSM, []*core.Node, *transport.Network) {
	t.Helper()
	sms := make([]*regSM, n)
	reps := make([]*Passive, n)
	ids := make([]proc.ID, n)
	for i := range ids {
		ids[i] = proc.ID(fmt.Sprintf("s%d", i+1))
	}
	mk := func(i int, _ proc.ID) core.DeliverFunc {
		sms[i] = &regSM{}
		reps[i] = NewPassive(sms[i], ids)
		return reps[i].DeliverFunc()
	}
	network, nodes := buildNodes(t, n, PassiveRelation(), mk, nil)
	for i, r := range reps {
		r.Bind(nodes[i])
	}
	return reps, sms, nodes, network
}

func TestPassiveNormalOperation(t *testing.T) {
	reps, sms, _, _ := buildPassive(t, 3)
	if _, err := reps[1].Request([]byte("x")); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("backup accepted a request: %v", err)
	}
	res, err := reps[0].Request([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "ok" {
		t.Fatalf("result %q", res)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if sms[0].value() == "hello" && sms[1].value() == "hello" && sms[2].value() == "hello" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("backups not updated: %q %q %q", sms[0].value(), sms[1].value(), sms[2].value())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFig8Scenario replays Figure 8: concurrently with an update from the
// primary s1, the backup s2 broadcasts primary-change(s1). Exactly one of
// the paper's two outcomes must occur, identically at every replica:
//
//	case 1: all replicas apply the update, then change the primary;
//	case 2: all replicas change the primary first and ignore the update
//	        (the client sees ErrDemoted and would reissue the request).
func TestFig8Scenario(t *testing.T) {
	for round := 0; round < 12; round++ {
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			reps, sms, _, _ := buildPassive(t, 3)

			var (
				wg     sync.WaitGroup
				reqErr error
			)
			wg.Add(2)
			go func() {
				defer wg.Done()
				_, reqErr = reps[0].Request([]byte("update-payload"))
			}()
			go func() {
				defer wg.Done()
				// Stagger randomly to hit both interleavings across rounds.
				time.Sleep(time.Duration(rand.Intn(3)) * time.Millisecond)
				_ = reps[1].RequestPrimaryChange("s1")
			}()
			wg.Wait()

			// Wait until every replica delivered the primary change.
			deadline := time.Now().Add(10 * time.Second)
			for {
				ok := true
				for _, r := range reps {
					if r.Epoch() < 1 {
						ok = false
					}
				}
				if ok {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("primary change not delivered everywhere")
				}
				time.Sleep(2 * time.Millisecond)
			}
			time.Sleep(50 * time.Millisecond) // let the update settle too

			// All replicas agree on the new primary: s2.
			for _, r := range reps {
				if got := r.Primary(); got != "s2" {
					t.Fatalf("primary at %v is %s, want s2", r.Replicas(), got)
				}
			}
			// Outcome must be consistent across replicas AND with the
			// client's error.
			applied := sms[0].value() == "update-payload"
			for i, sm := range sms {
				if (sm.value() == "update-payload") != applied {
					t.Fatalf("replica %d state %q inconsistent with outcome applied=%v", i, sm.value(), applied)
				}
			}
			switch {
			case applied && reqErr != nil:
				t.Fatalf("update applied everywhere but client saw %v", reqErr)
			case !applied && !errors.Is(reqErr, ErrDemoted):
				t.Fatalf("update ignored everywhere but client saw %v", reqErr)
			}
			t.Logf("outcome: case %d (applied=%v)", map[bool]int{true: 1, false: 2}[applied], applied)
		})
	}
}

// TestPassiveFailover crashes the primary; a backup's failure detector
// triggers primary-change, and the new primary serves requests. The old
// primary is never excluded from the replica list (Figure 8: "a primary
// change message does not lead to the exclusion of the old primary").
func TestPassiveFailover(t *testing.T) {
	reps, sms, _, network := buildPassive(t, 3)
	for _, r := range reps {
		r.StartFailover(60 * time.Millisecond)
		defer r.StopFailover()
	}
	if _, err := reps[0].Request([]byte("before")); err != nil {
		t.Fatal(err)
	}
	network.Crash("s1")
	deadline := time.Now().Add(10 * time.Second)
	for reps[1].Primary() != "s2" {
		if time.Now().After(deadline) {
			t.Fatalf("no failover: primary still %s", reps[1].Primary())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !reps[1].Replicas().Contains("s1") {
		t.Fatal("old primary was excluded; a primary change must not exclude")
	}
	if _, err := reps[1].Request([]byte("after")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for sms[2].value() != "after" {
		if time.Now().After(deadline) {
			t.Fatalf("backup s3 state %q", sms[2].value())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ---- sessioned requests (service gateway substrate) -----------------------

// countingSM returns a distinct result per execution and records every
// applied update, so re-execution and double-application are observable.
type countingSM struct {
	mu      sync.Mutex
	execs   int
	applies []string
}

func (c *countingSM) Execute(op []byte) ([]byte, []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.execs++
	return []byte(fmt.Sprintf("res-%d", c.execs)), op
}

func (c *countingSM) ApplyUpdate(update []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.applies = append(c.applies, string(update))
}

func (c *countingSM) snapshot() (int, []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.execs, append([]string(nil), c.applies...)
}

func buildCountingPassive(t *testing.T, n int) ([]*Passive, []*countingSM, *transport.Network) {
	t.Helper()
	sms := make([]*countingSM, n)
	reps := make([]*Passive, n)
	ids := make([]proc.ID, n)
	for i := range ids {
		ids[i] = proc.ID(fmt.Sprintf("s%d", i+1))
	}
	mk := func(i int, _ proc.ID) core.DeliverFunc {
		sms[i] = &countingSM{}
		reps[i] = NewPassive(sms[i], ids)
		return reps[i].DeliverFunc()
	}
	network, nodes := buildNodes(t, n, PassiveRelation(), mk, nil)
	for i, r := range reps {
		r.Bind(nodes[i])
	}
	return reps, sms, network
}

func TestRequestSessionExactlyOnce(t *testing.T) {
	reps, sms, _ := buildCountingPassive(t, 3)
	const timeout = 10 * time.Second

	res1, err := reps[0].RequestSession("c1", 1, 0, []byte("op1"), timeout)
	if err != nil {
		t.Fatal(err)
	}
	// A retry of the same (session, seq) must return the original result
	// without executing again.
	res1b, err := reps[0].RequestSession("c1", 1, 0, []byte("op1"), timeout)
	if err != nil {
		t.Fatal(err)
	}
	if string(res1) != string(res1b) {
		t.Fatalf("retry returned %q, original %q", res1b, res1)
	}
	if execs, applies := sms[0].snapshot(); execs != 1 || len(applies) != 1 {
		t.Fatalf("retry re-executed: execs=%d applies=%v", execs, applies)
	}

	// Concurrent duplicates join the in-flight original.
	var wg sync.WaitGroup
	results := make([]string, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := reps[0].RequestSession("c1", 2, 1, []byte("op2"), timeout)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = string(res)
		}(i)
	}
	wg.Wait()
	if results[0] != results[1] {
		t.Fatalf("concurrent duplicates diverged: %q vs %q", results[0], results[1])
	}
	if execs, _ := sms[0].snapshot(); execs != 2 {
		t.Fatalf("concurrent duplicate executed twice: execs=%d", execs)
	}

	// seq 2 piggybacked ack=1, so seq 1 is pruned everywhere: a retry of an
	// acknowledged request is a client bug.
	if _, err := reps[0].RequestSession("c1", 1, 0, []byte("op1"), timeout); !errors.Is(err, ErrPruned) {
		t.Fatalf("retry of acked seq: %v", err)
	}
}

// TestRequestSessionFailoverDedup: the session table is replicated, so a new
// primary recognises a retry of an operation the old primary already got
// applied, returns the original result, and does not apply it twice.
func TestRequestSessionFailoverDedup(t *testing.T) {
	reps, sms, network := buildCountingPassive(t, 3)
	for _, r := range reps {
		r.StartFailover(60 * time.Millisecond)
		defer r.StopFailover()
	}
	const timeout = 10 * time.Second

	res, err := reps[0].RequestSession("c9", 1, 0, []byte("write"), timeout)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the update to reach every replica before the crash.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, applies := sms[2].snapshot()
		if len(applies) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("update not replicated")
		}
		time.Sleep(2 * time.Millisecond)
	}

	network.Crash("s1")
	deadline = time.Now().Add(10 * time.Second)
	for reps[1].Primary() != "s2" {
		if time.Now().After(deadline) {
			t.Fatalf("no failover: primary still %s", reps[1].Primary())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The client (believing its ack was lost) retries at the new primary.
	res2, err := reps[1].RequestSession("c9", 1, 0, []byte("write"), timeout)
	if err != nil {
		t.Fatal(err)
	}
	if string(res2) != string(res) {
		t.Fatalf("new primary returned %q, original %q", res2, res)
	}
	if execs, applies := sms[1].snapshot(); execs != 0 || len(applies) != 1 {
		t.Fatalf("new primary re-executed: execs=%d applies=%v", execs, applies)
	}
	if dups := reps[1].Duplicates(); dups != 0 {
		// The retry was answered from the table without a second broadcast,
		// so no apply-time duplicate was even needed.
		t.Fatalf("unexpected apply-time duplicates: %d", dups)
	}
}

// ---- bank (Section 4.2) --------------------------------------------------

func buildBank(t *testing.T, n int, rel *gbcast.Relation) []*Bank {
	t.Helper()
	banks := make([]*Bank, n)
	mk := func(i int, _ proc.ID) core.DeliverFunc {
		banks[i] = NewBank()
		return banks[i].DeliverFunc()
	}
	_, nodes := buildNodes(t, n, rel, mk, nil)
	for i, b := range banks {
		b.Bind(nodes[i])
	}
	return banks
}

func TestBankConvergesAndNeverOverdraws(t *testing.T) {
	banks := buildBank(t, 3, BankRelation())
	accounts := []string{"alice", "bob"}
	rng := rand.New(rand.NewSource(42))

	var wg sync.WaitGroup
	const opsPerReplica = 40
	for _, b := range banks {
		wg.Add(1)
		go func(b *Bank) {
			defer wg.Done()
			for i := 0; i < opsPerReplica; i++ {
				acct := accounts[i%2]
				if i%5 == 4 {
					_ = b.Withdraw(acct, 30)
				} else {
					_ = b.Deposit(acct, 10)
				}
			}
		}(b)
	}
	wg.Wait()
	_ = rng

	totalOps := uint64(opsPerReplica * len(banks))
	deadline := time.Now().Add(20 * time.Second)
	for {
		done := true
		for _, b := range banks {
			applied, rejected := b.Applied()
			if applied+rejected != totalOps {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			a0, r0 := banks[0].Applied()
			t.Fatalf("bank did not quiesce: %d applied %d rejected of %d", a0, r0, totalOps)
		}
		time.Sleep(5 * time.Millisecond)
	}

	ref := banks[0].Fingerprint()
	for i, b := range banks[1:] {
		if b.Fingerprint() != ref {
			t.Fatalf("replica %d diverged", i+1)
		}
	}
	for _, acct := range accounts {
		if bal := banks[0].Balance(acct); bal < 0 {
			t.Fatalf("negative balance %d for %s", bal, acct)
		}
	}
}

// TestBankThriftiness: with the generic-broadcast relation, a deposit-only
// workload must never invoke atomic broadcast; with the all-ordered
// relation, every operation does.
func TestBankThriftiness(t *testing.T) {
	banks := buildBank(t, 3, BankRelation())
	for i := 0; i < 20; i++ {
		if err := banks[0].Deposit("acct", 1); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for banks[2].Balance("acct") != 20 {
		if time.Now().After(deadline) {
			t.Fatalf("balance %d", banks[2].Balance("acct"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := banks[0].node.BroadcastStats()
	if st.Boundaries != 0 || st.OrderedDelivered != 0 {
		t.Errorf("deposit-only workload used the ordered path: %+v", st)
	}
}

// TestClientFollowsPrimaryChanges: the Figure 8 client reissues requests
// after a failover and ends up at the new primary.
func TestClientFollowsPrimaryChanges(t *testing.T) {
	reps, sms, _, network := buildPassive(t, 3)
	for _, r := range reps {
		r.StartFailover(60 * time.Millisecond)
		defer r.StopFailover()
	}
	byName := map[string]*Passive{"s1": reps[0], "s2": reps[1], "s3": reps[2]}
	client := NewClient(byName, "s1", 5*time.Millisecond)

	if _, err := client.Request([]byte("one")); err != nil {
		t.Fatal(err)
	}
	network.Crash("s1")
	// The client still believes s1 is primary; the request must follow the
	// primary change and succeed at s2.
	res, err := client.Request([]byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "ok" {
		t.Fatalf("result %q", res)
	}
	if client.Primary() != "s2" {
		t.Fatalf("client believes primary is %s", client.Primary())
	}
	deadline := time.Now().Add(5 * time.Second)
	for sms[1].value() != "two" {
		if time.Now().After(deadline) {
			t.Fatalf("state %q", sms[1].value())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientStartingAtBackup: a client pointed at a backup is redirected.
func TestClientStartingAtBackup(t *testing.T) {
	reps, _, _, _ := buildPassive(t, 3)
	byName := map[string]*Passive{"s1": reps[0], "s2": reps[1], "s3": reps[2]}
	client := NewClient(byName, "s3", 2*time.Millisecond)
	if _, err := client.Request([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if client.Primary() != "s1" {
		t.Fatalf("client landed on %s", client.Primary())
	}
}
