package replication

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/msg"
	"repro/internal/proc"
)

// Group-commit batching for the ordered write path.
//
// The paper's abcast layer already amortises consensus across *batches* of
// messages per instance (Section 3.3); this file extends the same
// amortisation upward: instead of paying one g-broadcast round trip per
// client operation, the primary coalesces concurrent Request/RequestSession
// calls into a single pUpdateBatch message. The batching window is the
// classic group-commit one — while one batch's g-broadcast is in flight,
// newly arriving operations accumulate into the next batch (bounded by
// count and bytes, plus an optional max-delay knob for idle primaries).
//
// Correctness is unchanged from the per-operation path:
//
//   - A batch carries the epoch captured at flush time; a primary change
//     delivered before the batch makes the WHOLE batch stale, every replica
//     ignores it identically, and every waiter gets ErrDemoted (Figure 8
//     case 2, applied batch-wise).
//   - Replicas apply batch entries in order, atomically interleaved with the
//     (session, seq) dedup of the replicated session table, so exactly-once
//     across failover is preserved even when a primary crashes mid-batch: a
//     retried entry that already applied via an earlier batch returns its
//     cached result instead of executing again.

// Wire messages of the batched write path.
type (
	// pBatchEntry is one client operation inside a pUpdateBatch; the fields
	// mirror pUpdate's per-operation payload.
	pBatchEntry struct {
		Update  []byte
		Result  []byte
		Session string // empty = unsessioned request
		Seq     uint64
		Ack     uint64
	}
	// pUpdateBatch is the group-commit update: all entries were executed at
	// the primary under Epoch and must be applied in order by every replica.
	pUpdateBatch struct {
		Epoch   uint64
		Client  proc.ID
		ReqID   uint64 // originator's waiter key, same space as pUpdate.ReqID
		Entries []pBatchEntry
		// TS is the primary's clock at broadcast — one commit timestamp for
		// the whole batch, stamped onto applied state (leaderlease.go).
		TS int64
	}
)

func init() {
	msg.Register(pBatchEntry{})
	msg.Register(pUpdateBatch{})
}

// BatchConfig tunes the primary-side group-commit batcher.
type BatchConfig struct {
	// MaxOps bounds the entries coalesced into one batch (default 128).
	MaxOps int
	// MaxBytes bounds the summed op payload bytes per batch (default 256 KiB).
	// A single oversized operation still ships alone.
	MaxBytes int
	// MaxDelay is how long an idle primary holds the first operation of a
	// batch waiting for companions (default 0: flush immediately; the
	// in-flight broadcast is the natural batching window). Single-operation
	// latency regresses by at most this much.
	MaxDelay time.Duration
}

func (c *BatchConfig) applyDefaults() {
	if c.MaxOps <= 0 {
		c.MaxOps = 128
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 256 << 10
	}
}

// BatchStats is the batcher's accounting.
type BatchStats struct {
	Batches  uint64 // batches broadcast
	Ops      uint64 // operations carried in those batches
	MaxBatch int    // largest batch observed
}

// batchOp is one queued operation awaiting a flush.
type batchOp struct {
	key sessKey // key.session may be "" for unsessioned requests
	op  []byte
	ack uint64
	w   *sessWaiter
	enq time.Time // enqueue time; zero when metrics are off
}

// batcher is the primary-side group-commit pipeline. Operations enqueue
// from any goroutine; a single flush loop drains them into pUpdateBatch
// broadcasts, at most one in flight at a time.
type batcher struct {
	p   *Passive
	cfg BatchConfig

	mu         sync.Mutex
	queue      []*batchOp
	queueBytes int // summed op bytes in queue
	stats      BatchStats
	stopped    bool // loop exited; enqueues resolve immediately

	kick chan struct{} // buffered(1): queue went non-empty
	full chan struct{} // buffered(1): queue holds a full batch (wakes waitFill)
	stop chan struct{}
	done sync.WaitGroup
}

// EnableBatching switches the replica's write path to group-commit
// batching: concurrent Request/RequestSession calls coalesce into one
// g-broadcast per batching window. Call before the first request; stop the
// batcher with StopBatching when the replica is retired.
func (p *Passive) EnableBatching(cfg BatchConfig) {
	cfg.applyDefaults()
	b := &batcher{
		p:    p,
		cfg:  cfg,
		kick: make(chan struct{}, 1),
		full: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	p.mu.Lock()
	if p.batcher != nil {
		p.mu.Unlock()
		panic("replication: EnableBatching called twice")
	}
	p.batcher = b
	p.mu.Unlock()
	b.done.Add(1)
	go b.loop()
}

// StopBatching halts the flush loop; queued and in-flight operations fail
// with ErrTimeout-style resolution so callers can retry elsewhere. The
// replica reverts to the per-operation write path.
func (p *Passive) StopBatching() {
	p.mu.Lock()
	b := p.batcher
	p.batcher = nil
	p.mu.Unlock()
	if b == nil {
		return
	}
	close(b.stop)
	b.done.Wait()
}

// BatchStats returns the batcher accounting (zero value when batching was
// never enabled).
func (p *Passive) BatchStats() BatchStats {
	p.mu.Lock()
	b := p.batcher
	p.mu.Unlock()
	if b == nil {
		return BatchStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// enqueue adds one operation to the next batch. The caller has already
// registered w in p.inflight (for sessioned operations) so retries join it.
func (b *batcher) enqueue(op *batchOp) {
	if b.p.metrics.Load() != nil {
		op.enq = time.Now()
	}
	b.p.markOp(op.key, "batch_enqueue")
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		b.p.resolve(op.key, op.w, nil, ErrTimeout)
		return
	}
	b.queue = append(b.queue, op)
	b.queueBytes += len(op.op)
	reachedFull := len(b.queue) >= b.cfg.MaxOps || b.queueBytes >= b.cfg.MaxBytes
	b.mu.Unlock()
	select {
	case b.kick <- struct{}{}:
	default:
	}
	if reachedFull {
		select {
		case b.full <- struct{}{}:
		default:
		}
	}
}

// take removes up to MaxOps / MaxBytes worth of queued operations,
// re-arming the kick when work remains.
func (b *batcher) take() []*batchOp {
	b.mu.Lock()
	n, bytes := 0, 0
	for n < len(b.queue) && n < b.cfg.MaxOps {
		bytes += len(b.queue[n].op)
		if n > 0 && bytes > b.cfg.MaxBytes {
			break
		}
		n++
	}
	ops := b.queue[:n:n]
	b.queue = b.queue[n:]
	for _, op := range ops {
		b.queueBytes -= len(op.op)
	}
	more := len(b.queue) > 0
	b.mu.Unlock()
	if more {
		select {
		case b.kick <- struct{}{}:
		default:
		}
	}
	return ops
}

// windowFull reports whether the queue already holds a full batch (by count
// or bytes), so a fill window need not be held open.
func (b *batcher) windowFull() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue) >= b.cfg.MaxOps || b.queueBytes >= b.cfg.MaxBytes
}

func (b *batcher) loop() {
	defer b.done.Done()
	// Under steady load MaxDelay does NOT apply: within MaxDelay of the
	// previous flush, the in-flight broadcast was the batching window, and
	// holding freshly accumulated ops again would only add latency (and for
	// closed-loop clients, collapse throughput to 1/MaxDelay). The delay is
	// paid solely by the first op after an idle period, as documented.
	var lastFlush time.Time
	for {
		select {
		case <-b.stop:
			b.failAll(ErrTimeout)
			return
		case <-b.kick:
		}
		if b.cfg.MaxDelay > 0 && time.Since(lastFlush) >= b.cfg.MaxDelay {
			b.waitFill()
		}
		ops := b.take()
		if len(ops) == 0 {
			continue
		}
		// flush blocks until the batch's delivery (or demotion), which is
		// exactly the group-commit window: everything arriving meanwhile
		// coalesces into the next batch.
		b.flush(ops)
		lastFlush = time.Now()
	}
}

// waitFill holds the first operation of a batch for up to MaxDelay, waking
// early once a full batch (MaxOps or MaxBytes) is queued — signaled by
// enqueue, no polling.
func (b *batcher) waitFill() {
	// Drain any stale fullness signal from a previous window, then
	// re-check: the queue may already be full.
	select {
	case <-b.full:
	default:
	}
	if b.windowFull() {
		return
	}
	deadline := time.NewTimer(b.cfg.MaxDelay)
	defer deadline.Stop()
	select {
	case <-b.stop:
	case <-deadline.C:
	case <-b.full:
	}
}

// failAll resolves every queued operation with err (shutdown path) and
// redirects subsequent enqueues straight to resolution.
func (b *batcher) failAll(err error) {
	b.mu.Lock()
	b.stopped = true
	ops := b.queue
	b.queue = nil
	b.mu.Unlock()
	for _, op := range ops {
		b.p.resolve(op.key, op.w, nil, err)
	}
}

// flush executes one batch at the primary and g-broadcasts it, blocking
// until its delivery resolves every entry's waiter.
func (b *batcher) flush(ops []*batchOp) {
	p := b.p
	p.mu.Lock()
	if p.replicas.Primary() != p.self {
		primary := p.replicas.Primary()
		p.mu.Unlock()
		err := fmt.Errorf("%w (primary is %s)", ErrNotPrimary, primary)
		for _, op := range ops {
			p.resolve(op.key, op.w, nil, err)
		}
		return
	}
	epoch := p.epoch
	p.nextReq++
	req := p.nextReq
	ch := make(chan pUpdateBatch, 1)
	p.batchWaiters[req] = ch
	p.mu.Unlock()

	m := p.metrics.Load()
	if m != nil {
		m.observeBatchWait(ops, time.Now())
	}
	p.markOps(ops, "batch_flush")

	// Execute in queue order. Execute must not mutate authoritative state
	// (PassiveStateMachine contract), so ordering here only fixes the order
	// entries are applied in everywhere.
	entries := make([]pBatchEntry, len(ops))
	for i, op := range ops {
		result, update := p.sm.Execute(op.op)
		entries[i] = pBatchEntry{
			Update: update, Result: result,
			Session: op.key.session, Seq: op.key.seq, Ack: op.ack,
		}
	}
	u := pUpdateBatch{Epoch: epoch, Client: p.self, ReqID: req, Entries: entries,
		TS: time.Now().UnixNano()}
	var sent time.Time
	if m != nil {
		sent = time.Now()
	}
	if err := p.node.Gbcast(ClassUpdate, u); err != nil {
		p.mu.Lock()
		delete(p.batchWaiters, req)
		p.mu.Unlock()
		err = fmt.Errorf("replication: update batch: %w", err)
		for _, op := range ops {
			p.resolve(op.key, op.w, nil, err)
		}
		return
	}

	b.mu.Lock()
	b.stats.Batches++
	b.stats.Ops += uint64(len(ops))
	if len(ops) > b.stats.MaxBatch {
		b.stats.MaxBatch = len(ops)
	}
	b.mu.Unlock()

	select {
	case delivered := <-ch:
		if m != nil {
			m.commitLatency.Observe(time.Since(sent))
		}
		if delivered.Epoch == staleEpoch {
			for _, op := range ops {
				p.resolve(op.key, op.w, nil, ErrDemoted)
			}
			return
		}
		// Entry order is preserved through delivery; dup entries carry the
		// cached original result (see onUpdateBatch).
		p.markOps(ops, "delivered")
		for i, op := range ops {
			p.resolve(op.key, op.w, delivered.Entries[i].Result, nil)
		}
	case <-b.stop:
		// Shutdown while in flight: the waiter entry stays registered (the
		// node may still deliver the batch, whose apply path needs no
		// batcher), but callers are released to retry elsewhere.
		for _, op := range ops {
			p.resolve(op.key, op.w, nil, ErrTimeout)
		}
	}
}

// onUpdateBatch is the delivery path of the batched write path: the exact
// per-entry logic of onUpdate, applied to each entry in order, atomically
// with respect to the session-table dedup.
func (p *Passive) onUpdateBatch(u pUpdateBatch) {
	type gate struct {
		key    sessKey
		w      *sessWaiter
		result []byte
	}
	var gates []gate
	apply := make([]bool, len(u.Entries))

	p.mu.Lock()
	stale := u.Epoch != p.epoch
	if stale {
		p.ignored += uint64(len(u.Entries))
	} else {
		for i := range u.Entries {
			e := &u.Entries[i]
			if e.Session == "" {
				p.applied++
				apply[i] = true
				continue
			}
			// Same apply-time exactly-once bookkeeping as onUpdate, per
			// entry. (At the originator the inflight waiter is owned by the
			// batcher's flush, resolved after our wake below, which follows
			// the applies; elsewhere the returned gate holds retries until
			// this entry has been applied.)
			dup, w := p.dedupSessionLocked(e.Session, e.Seq, e.Ack, &e.Result)
			if dup {
				continue
			}
			apply[i] = true
			if w != nil {
				gates = append(gates, gate{
					key:    sessKey{session: e.Session, seq: e.Seq},
					w:      w,
					result: e.Result,
				})
			}
		}
	}
	var ch chan pUpdateBatch
	if u.Client == p.self {
		ch = p.batchWaiters[u.ReqID]
		delete(p.batchWaiters, u.ReqID)
	}
	p.mu.Unlock()

	if !stale {
		for i := range u.Entries {
			if apply[i] {
				p.sm.ApplyUpdate(u.Entries[i].Update)
			}
		}
		// Only after every entry's apply: a monotonic reader woken at this
		// index reads local state lock-free. One log record covers the whole
		// batch (the index advances by its entry count).
		p.mu.Lock()
		p.advanceCommitLocked(uint64(len(u.Entries)))
		p.logAppendLocked(u)
		p.mu.Unlock()
		p.bumpStamp(u.TS)
		// Durable BEFORE acked, one fsync for the whole batch — the commit
		// window IS the fsync window. Must precede the gate resolutions and
		// the originator's wake below.
		p.persistDelivered(true)
	}
	for _, g := range gates {
		p.resolve(g.key, g.w, g.result, nil)
	}
	if ch != nil {
		if stale {
			u.Epoch = staleEpoch
		}
		ch <- u
	}
}
