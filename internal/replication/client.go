package replication

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Client is the Figure 8 client: it sends each request to the replica it
// believes is the primary; on a timeout or a demotion it learns the new
// primary and reissues the request ("The client will timeout, learn that s2
// is the new primary, and reissue its request to s2", Section 3.2.3).
//
// This implementation is for in-process access to a replica group (the
// replicas are reachable as objects); a networked client would carry the
// same logic over the reliable channel.
type Client struct {
	replicas map[string]*Passive
	names    []string
	current  string
	retry    time.Duration
	timeout  time.Duration
	maxTries int
}

// NewClient creates a client over the replica group. firstPrimary is the
// initial guess (typically the head of the initial replica list). retry is
// the back-off between attempts; the per-attempt delivery timeout defaults
// to 20x retry.
func NewClient(replicas map[string]*Passive, firstPrimary string, retry time.Duration) *Client {
	if retry <= 0 {
		retry = 10 * time.Millisecond
	}
	names := make([]string, 0, len(replicas))
	for n := range replicas {
		names = append(names, n)
	}
	sort.Strings(names)
	return &Client{
		replicas: replicas,
		names:    names,
		current:  firstPrimary,
		retry:    retry,
		timeout:  20 * retry,
		maxTries: 100,
	}
}

// Request executes op against the service, following primary changes and
// retrying on demotions and timeouts until a response arrives or the retry
// budget is exhausted.
func (c *Client) Request(op []byte) ([]byte, error) {
	var lastErr error
	for try := 0; try < c.maxTries; try++ {
		rep, ok := c.replicas[c.current]
		if !ok {
			return nil, fmt.Errorf("replication client: unknown primary %q", c.current)
		}
		res, err := rep.RequestTimeout(op, c.timeout)
		switch {
		case err == nil:
			return res, nil
		case errors.Is(err, ErrNotPrimary), errors.Is(err, ErrDemoted):
			// Learn the new primary from the contacted replica.
			c.current = string(rep.Primary())
			lastErr = err
		case errors.Is(err, ErrTimeout):
			// The contacted replica may be cut off and not even know it
			// was demoted; ask the next replica instead.
			c.current = c.nextName(c.current)
			lastErr = err
		default:
			return nil, err
		}
		time.Sleep(c.retry)
	}
	return nil, fmt.Errorf("replication client: retries exhausted: %w", lastErr)
}

// Primary returns the client's current belief about the primary.
func (c *Client) Primary() string { return c.current }

func (c *Client) nextName(cur string) string {
	for i, n := range c.names {
		if n == cur {
			return c.names[(i+1)%len(c.names)]
		}
	}
	if len(c.names) > 0 {
		return c.names[0]
	}
	return cur
}
