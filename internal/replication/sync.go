package replication

// State-transfer protocol: how a follower (NewFollower) becomes and stays a
// replica of a running group without replaying history from the beginning.
//
// The protocol runs over the reliable channel (rchannel), point to point,
// outside the broadcast substrate — a follower holds no vote and sends no
// broadcast, so the group's f < n/2 crash budget is untouched by followers
// joining, dying and rejoining.
//
//	follower                         donor (any full replica)
//	  | HELLO{joiner}                   |  donor requests an ordered
//	  |------------------------------->|  membership join for the joiner;
//	  |                                |  the membership primary ships a
//	  |        (membership state xfer) |  snapshot captured AT the join's
//	  |<- - - - - - - - - - - - - - - -|  position in the total order
//	  | PULL{reqid, from}              |
//	  |------------------------------->|  catch-up cursor: the donor answers
//	  |   STATE{reqid, entries | snap} |  with log entries after `from`, or
//	  |<-------------------------------|  a fresh snapshot if `from` is out
//	  | BARRIER{reqid}                 |  of the retained window
//	  |------------------------------->|  read-index: the donor (if primary)
//	  |      BARRIER_RESP{reqid, idx}  |  runs a real ReadBarrier and
//	  |<-------------------------------|  returns its post-barrier index
//	  | RENEW{sessions}                |  forwarded lease renewals (never
//	  |------------------------------->|  tick the replicated clock)
//
// The pull loop never stops: a follower is a permanently catching-up
// replica whose staleness is bounded by the pull interval; Monotonic reads
// wait on the commit index exactly as at any backup, and Linearizable reads
// use the read-index barrier, so an installed follower serves reads at full
// backup parity.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/rchannel"
)

// SyncProto is the rchannel protocol name of the state-transfer traffic.
const SyncProto = "repl.sync"

// Wire messages of the sync protocol.
type (
	sHello struct{ Joiner proc.ID }
	sPull  struct {
		ReqID uint64
		From  uint64
		// Snap forces a full snapshot regardless of the donor's retained
		// log: a fresh follower's first pull needs the complete state (view,
		// dedup table, lease clock) even when the commit-index gap alone
		// could be covered by entry replay.
		Snap bool
		// T0 is the sender's clock at send time (unix nanos) — echoed back
		// with the donor's receive/serve times so recovery diagnostics can
		// attribute RPC latency to the request path, the donor, or the
		// response path (meaningful within one process, i.e. in tests).
		T0 int64
	}
	sState struct {
		ReqID    uint64
		From     uint64 // echo of the pull cursor (entry replay base)
		Index    uint64 // donor's commit index when answering
		Snapshot []byte // set when From precedes the donor's retained log
		Entries  []LogRec
		T0       int64 // echoed request timestamp
		T1       int64 // donor clock when the pull was handled
		T2       int64 // donor clock when the response was sent
	}
	sBarrier     struct{ ReqID uint64 }
	sBarrierResp struct {
		ReqID   uint64
		Index   uint64
		Code    uint8
		Primary proc.ID // redirect hint with syncNotPrimary
	}
	sRenew struct{ Sessions []string }
)

// sBarrierResp codes.
const (
	syncOK uint8 = iota
	syncNotPrimary
	syncTimeout
)

func init() {
	msg.Register(sHello{})
	msg.Register(sPull{})
	msg.Register(sState{})
	msg.Register(sBarrier{})
	msg.Register(sBarrierResp{})
	msg.Register(sRenew{})
}

// SyncConfig parameterises the donor side.
type SyncConfig struct {
	// MaxEntries bounds one pull response (default 512 entries).
	MaxEntries int
	// BarrierTimeout bounds a proxied read barrier at the donor (default 5s).
	BarrierTimeout time.Duration
	// Join, when set, is invoked (on its own goroutine) with a HELLO's
	// joiner ID — wired to the node's membership Join so a hello triggers
	// the ordered membership join path and its snapshot state transfer.
	Join func(proc.ID) error
}

// ServeSync registers the donor side of the state-transfer protocol on the
// node's endpoint. Call between core.NewNode and Start (rchannel handlers
// must be registered before the endpoint starts). Every full replica of the
// group should serve sync, so followers can fail over between donors.
func ServeSync(ep *rchannel.Endpoint, p *Passive, cfg SyncConfig) {
	ep.Handle(SyncProto, SyncHandler(ep, p, cfg))
}

// SyncHandler returns the donor-side dispatch without registering it, so a
// caller can compose it with its own SyncProto traffic on one endpoint —
// the restart Recovery (storage.go) serves donor requests while consuming
// the sState responses to its own pulls.
func SyncHandler(ep *rchannel.Endpoint, p *Passive, cfg SyncConfig) func(from proc.ID, body any) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 512
	}
	if cfg.BarrierTimeout <= 0 {
		cfg.BarrierTimeout = 5 * time.Second
	}
	return func(from proc.ID, body any) {
		// The dispatch goroutine must not block: everything that can wait
		// (snapshot capture, barriers, broadcasts) runs on its own goroutine.
		switch m := body.(type) {
		case sHello:
			if cfg.Join != nil && m.Joiner != "" {
				go func(j proc.ID) { _ = cfg.Join(j) }(m.Joiner)
			}
		case sPull:
			go servePull(ep, p, from, m, cfg.MaxEntries)
		case sBarrier:
			go serveBarrier(ep, p, from, m, cfg.BarrierTimeout)
		case sRenew:
			go func(sessions []string) { _ = p.LeaseRenew(sessions) }(m.Sessions)
		}
	}
}

func servePull(ep *rchannel.Endpoint, p *Passive, from proc.ID, m sPull, maxEntries int) {
	resp := sState{ReqID: m.ReqID, From: m.From, T0: m.T0, T1: time.Now().UnixNano()}
	if entries, ok := p.SyncSince(m.From, maxEntries); ok && !m.Snap {
		resp.Entries = entries
	} else {
		resp.Snapshot = p.EncodeSnapshot()
	}
	resp.Index = p.CommitIndex()
	resp.T2 = time.Now().UnixNano()
	_ = ep.Send(from, SyncProto, resp)
}

func serveBarrier(ep *rchannel.Endpoint, p *Passive, from proc.ID, m sBarrier, timeout time.Duration) {
	resp := sBarrierResp{ReqID: m.ReqID}
	idx, err := p.ReadBarrier(timeout, nil)
	switch {
	case err == nil:
		resp.Code, resp.Index = syncOK, idx
	case isNotPrimary(err):
		resp.Code, resp.Primary = syncNotPrimary, p.Primary()
	default:
		resp.Code = syncTimeout
	}
	_ = ep.Send(from, SyncProto, resp)
}

func isNotPrimary(err error) bool {
	return errors.Is(err, ErrNotPrimary) || errors.Is(err, ErrDemoted)
}

// SyncerConfig parameterises a follower's catch-up loop.
type SyncerConfig struct {
	// Donors are the full replicas the follower may pull from (rotated on
	// failure; barriers and lease renewals target the current primary).
	Donors []proc.ID
	// Interval is the pull cadence — the follower's staleness bound
	// (default 5ms, suited to the in-memory network).
	Interval time.Duration
	// Timeout bounds one pull RPC before rotating donors (default 250ms).
	Timeout time.Duration
	// Announce sends a HELLO on start so a donor requests the ordered
	// membership join (and its snapshot state transfer) for this follower.
	Announce bool
	// Primed marks the follower as already holding installed state — it
	// replayed its own snapshot + WAL from disk — so the first pull asks for
	// the delta after its commit index instead of forcing a full snapshot.
	Primed bool
}

// Syncer drives a follower replica: it announces the join, pulls the
// delivered-command log (or a snapshot) from donors on a fixed cadence, and
// provides the follower's barrier/lease proxies.
type Syncer struct {
	p   *Passive
	ep  *rchannel.Endpoint
	cfg SyncerConfig

	mu      sync.Mutex
	nextReq uint64
	waiters map[uint64]chan any
	rr      int

	installed     chan struct{}
	installedOnce sync.Once
	synced        bool // a snapshot has been installed (first pull done)
	stats         SyncerStats

	startOnce sync.Once
	stop      chan struct{}
	done      sync.WaitGroup
}

// NewSyncer wires a syncer onto the follower's endpoint. Call before
// ep.Start (it registers the SyncProto handler); then Start the endpoint
// and the syncer.
func NewSyncer(p *Passive, ep *rchannel.Endpoint, cfg SyncerConfig) *Syncer {
	if len(cfg.Donors) == 0 {
		panic("replication: syncer needs at least one donor")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 250 * time.Millisecond
	}
	s := &Syncer{
		p:         p,
		ep:        ep,
		cfg:       cfg,
		waiters:   make(map[uint64]chan any),
		installed: make(chan struct{}),
		stop:      make(chan struct{}),
		synced:    cfg.Primed,
	}
	ep.Handle(SyncProto, s.onNet)
	p.SetBarrierProxy(s.barrier)
	p.SetLeaseProxy(s.renew)
	return s
}

// Start launches the pull loop.
func (s *Syncer) Start() {
	s.startOnce.Do(func() {
		s.done.Add(1)
		go s.loop()
	})
}

// Stop halts the pull loop.
func (s *Syncer) Stop() {
	select {
	case <-s.stop:
		return
	default:
		close(s.stop)
	}
	s.done.Wait()
}

// Installed is closed once the follower has caught up to a donor's commit
// index for the first time — the point from which it serves reads at full
// backup parity.
func (s *Syncer) Installed() <-chan struct{} { return s.installed }

// SyncerStats is the catch-up loop's accounting.
type SyncerStats struct {
	Pulls     uint64 // pull RPCs attempted
	Failures  uint64 // pull RPCs that timed out or failed to send
	Snapshots uint64 // snapshots installed
	Entries   uint64 // log entries applied

	// Latency attribution of the last completed pull (including ones whose
	// waiter had already timed out), from the timing echoes: request
	// transit, donor handling, response transit.
	LastReqMS   float64
	LastDonorMS float64
	LastRespMS  float64
}

// Stats returns a snapshot of the syncer's counters.
func (s *Syncer) Stats() SyncerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Syncer) loop() {
	defer s.done.Done()
	if s.cfg.Announce {
		_ = s.ep.Send(s.pickDonor(), SyncProto, sHello{Joiner: s.p.Self()})
	}
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.pull()
		}
	}
}

// pull performs one catch-up round: repeated pulls against one donor until
// the follower has drained the donor's log (full responses mean more is
// waiting, so it pulls again immediately rather than sleeping an interval).
func (s *Syncer) pull() {
	for {
		donor := s.pickDonor()
		s.mu.Lock()
		first := !s.synced
		s.stats.Pulls++
		s.mu.Unlock()
		v, err := s.rpc(donor, s.cfg.Timeout, func(id uint64) any {
			return sPull{ReqID: id, From: s.p.CommitIndex(), Snap: first, T0: time.Now().UnixNano()}
		})
		if err != nil {
			s.mu.Lock()
			s.stats.Failures++
			s.mu.Unlock()
			s.rotateDonor()
			return
		}
		st, ok := v.(sState)
		if !ok {
			return
		}
		if st.Snapshot != nil {
			if err := s.p.InstallSnapshot(st.Snapshot); err != nil {
				return
			}
			s.mu.Lock()
			s.synced = true
			s.stats.Snapshots++
			s.mu.Unlock()
		}
		if len(st.Entries) > 0 {
			s.p.ApplySyncEntries(st.From, st.Entries)
			s.mu.Lock()
			s.stats.Entries += uint64(len(st.Entries))
			s.mu.Unlock()
		}
		if s.p.CommitIndex() >= st.Index {
			s.installedOnce.Do(func() { close(s.installed) })
			return
		}
		select {
		case <-s.stop:
			return
		default:
		}
	}
}

// pickDonor returns the follower's current pull target.
func (s *Syncer) pickDonor() proc.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Donors[s.rr%len(s.cfg.Donors)]
}

func (s *Syncer) rotateDonor() {
	s.mu.Lock()
	s.rr++
	s.mu.Unlock()
}

// primaryDonor targets the current primary (for barriers and renewals),
// falling back to the rotation cursor while the view is unknown.
func (s *Syncer) primaryDonor() proc.ID {
	primary := s.p.Primary()
	for _, d := range s.cfg.Donors {
		if d == primary {
			return d
		}
	}
	return s.pickDonor()
}

// rpc sends one correlated request and waits for its response.
func (s *Syncer) rpc(donor proc.ID, timeout time.Duration, mk func(id uint64) any) (any, error) {
	s.mu.Lock()
	s.nextReq++
	id := s.nextReq
	ch := make(chan any, 1)
	s.waiters[id] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.waiters, id)
		s.mu.Unlock()
	}()
	if err := s.ep.Send(donor, SyncProto, mk(id)); err != nil {
		return nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case v := <-ch:
		return v, nil
	case <-timer.C:
		return nil, ErrTimeout
	case <-s.stop:
		return nil, ErrTimeout
	}
}

func (s *Syncer) onNet(_ proc.ID, body any) {
	var id uint64
	switch m := body.(type) {
	case sState:
		id = m.ReqID
		if m.T0 != 0 {
			now := time.Now().UnixNano()
			s.mu.Lock()
			s.stats.LastReqMS = float64(m.T1-m.T0) / 1e6
			s.stats.LastDonorMS = float64(m.T2-m.T1) / 1e6
			s.stats.LastRespMS = float64(now-m.T2) / 1e6
			s.mu.Unlock()
		}
	case sBarrierResp:
		id = m.ReqID
	default:
		return
	}
	s.mu.Lock()
	ch := s.waiters[id]
	delete(s.waiters, id)
	s.mu.Unlock()
	if ch != nil {
		ch <- body
	}
}

// barrier is the follower's read-index proxy (SetBarrierProxy). If the
// targeted donor turns out not to be the primary (the follower's view can
// lag mid-failover), it follows the donor's hint for one hop.
func (s *Syncer) barrier(timeout time.Duration, abort <-chan struct{}) (uint64, error) {
	if timeout <= 0 || timeout > s.cfg.Timeout*20 {
		timeout = s.cfg.Timeout * 20
	}
	donor := s.primaryDonor()
	for hop := 0; ; hop++ {
		v, err := s.rpc(donor, timeout, func(id uint64) any { return sBarrier{ReqID: id} })
		if err != nil {
			return 0, err
		}
		resp, ok := v.(sBarrierResp)
		if !ok {
			return 0, ErrTimeout
		}
		switch resp.Code {
		case syncOK:
			return resp.Index, nil
		case syncNotPrimary:
			if hop == 0 && resp.Primary != "" && resp.Primary != donor && s.isDonor(resp.Primary) {
				donor = resp.Primary
				continue
			}
			return 0, fmt.Errorf("%w (primary is %s)", ErrNotPrimary, resp.Primary)
		default:
			return 0, ErrTimeout
		}
	}
}

func (s *Syncer) isDonor(id proc.ID) bool {
	for _, d := range s.cfg.Donors {
		if d == id {
			return true
		}
	}
	return false
}

// renew is the follower's lease forwarding proxy (SetLeaseProxy).
func (s *Syncer) renew(sessions []string) error {
	if len(sessions) == 0 {
		return nil
	}
	return s.ep.Send(s.primaryDonor(), SyncProto, sRenew{Sessions: sessions})
}
