package core

import (
	"sync"
	"time"

	"repro/internal/gbcast"
	"repro/internal/telemetry"
)

// RegisterMetrics exports the node's protocol-stack accounting under scope:
// the reliable channel's admission/retransmission counters and the generic
// broadcaster's delivery-mode split (fast vs ordered vs epoch boundaries —
// the paper's thriftiness signal). Everything reads existing counters at
// scrape time; the stack's hot paths are untouched.
//
// Broadcaster stats are a blocking query into its event loop, so the three
// broadcast families share one snapshot memoized for a short interval: a
// scrape costs at most one event-loop round trip per node, no matter how
// many families read from it.
func (n *Node) RegisterMetrics(s *telemetry.Scope) {
	if s == nil {
		return
	}
	n.ep.RegisterMetrics(s)
	var (
		mu     sync.Mutex
		cached gbcast.Stats
		at     time.Time
	)
	gbStats := func() gbcast.Stats {
		mu.Lock()
		defer mu.Unlock()
		if time.Since(at) > 50*time.Millisecond {
			cached, at = n.gb.Stats(), time.Now()
		}
		return cached
	}
	s.CounterFunc("gcs_broadcast_fast_delivered_total",
		"Messages delivered through the fast (generic) path, no ordering round.",
		func() float64 { return float64(gbStats().FastDelivered) })
	s.CounterFunc("gcs_broadcast_ordered_delivered_total",
		"Messages delivered through the atomic-broadcast (ordered) path.",
		func() float64 { return float64(gbStats().OrderedDelivered) })
	s.CounterFunc("gcs_broadcast_boundaries_total",
		"Epoch boundaries (fast/ordered mode switches).",
		func() float64 { return float64(gbStats().Boundaries) })
}
