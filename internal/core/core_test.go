package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/gbcast"
	"repro/internal/membership"
	"repro/internal/proc"
	"repro/internal/transport"
)

func TestNewNodeValidation(t *testing.T) {
	network := transport.NewNetwork()
	defer network.Shutdown()

	// Self not in universe.
	if _, err := NewNode(network.Endpoint("x"), Config{
		Self: "x", Universe: proc.IDs("a", "b"),
	}, nil); err == nil || !strings.Contains(err.Error(), "universe") {
		t.Fatalf("expected universe error, got %v", err)
	}

	// Config self disagreeing with the transport endpoint.
	if _, err := NewNode(network.Endpoint("a"), Config{
		Self: "b", Universe: proc.IDs("a", "b"),
	}, nil); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("expected transport mismatch error, got %v", err)
	}

	// Initial view member outside the universe.
	if _, err := NewNode(network.Endpoint("c"), Config{
		Self: "c", Universe: proc.IDs("c"), InitialView: proc.IDs("c", "zz"),
	}, nil); err == nil || !strings.Contains(err.Error(), "initial view") {
		t.Fatalf("expected initial view error, got %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Self: "a", Universe: proc.IDs("a", "b", "c")}
	cfg.applyDefaults()
	if cfg.RTO == 0 || cfg.HeartbeatEvery == 0 || cfg.SuspicionTimeout == 0 || cfg.ExclusionTimeout == 0 {
		t.Fatal("timing defaults not applied")
	}
	if cfg.SuspicionTimeout >= cfg.ExclusionTimeout {
		t.Fatal("the consensus timeout must be far below the exclusion timeout")
	}
	if len(cfg.InitialView) != 3 {
		t.Fatalf("initial view default: %v", cfg.InitialView)
	}
	if cfg.Relation == nil || !cfg.Relation.Known(gbcast.ClassRbcast) {
		t.Fatal("relation default missing")
	}
	if cfg.Monitoring.Threshold != 1 {
		t.Fatalf("monitoring default: %+v", cfg.Monitoring)
	}
}

func TestSelfDefaultsFromTransport(t *testing.T) {
	network := transport.NewNetwork()
	defer network.Shutdown()
	nd, err := NewNode(network.Endpoint("a"), Config{Universe: proc.IDs("a")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nd.Self() != "a" {
		t.Fatalf("self %q", nd.Self())
	}
}

func TestStartStopIdempotent(t *testing.T) {
	network := transport.NewNetwork()
	defer network.Shutdown()
	nd, err := NewNode(network.Endpoint("a"), Config{Self: "a", Universe: proc.IDs("a")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nd.Start()
	nd.Start() // no-op
	nd.Stop()
	nd.Stop() // no-op
}

func TestUnknownClassRejected(t *testing.T) {
	network := transport.NewNetwork()
	defer network.Shutdown()
	nd, err := NewNode(network.Endpoint("a"), Config{Self: "a", Universe: proc.IDs("a")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nd.Start()
	defer nd.Stop()
	if err := nd.Gbcast("made-up", struct{}{}); err == nil {
		t.Fatal("unknown class accepted")
	}
	// The internal membership class is wired in automatically.
	if !nd.View().Contains("a") {
		t.Fatal("initial view broken")
	}
}

func TestMembershipClassNotDeliveredToApp(t *testing.T) {
	network := transport.NewNetwork(transport.WithDelay(0, time.Millisecond))
	members := proc.IDs("a", "b", "c")
	got := make(chan gbcast.Delivery, 64)
	var nodes []*Node
	for _, id := range members {
		nd, err := NewNode(network.Endpoint(id), Config{Self: id, Universe: members},
			func(d gbcast.Delivery) { got <- d })
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		network.Shutdown()
	}()

	if err := nodes[0].Remove("c"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for nodes[1].View().Contains("c") {
		if time.Now().After(deadline) {
			t.Fatal("view change not applied")
		}
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case d := <-got:
		if d.Class == membership.Class {
			t.Fatalf("membership operation leaked to the application: %+v", d)
		}
	default:
	}
}
