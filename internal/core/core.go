// Package core assembles the full new-architecture stack of Figure 9:
//
//	Application
//	   │ join/remove · gbcast/abcast/rbcast · new_view
//	Group Membership        ─ on top of broadcast (Section 3.1.1)
//	Generic Broadcast       ─ replaces view synchrony (Section 3.2)
//	Atomic Broadcast        ─ consensus sequence, no membership below it
//	Consensus               ─ Chandra–Toueg <>S
//	Monitoring              ─ owns exclusion policy (Section 3.3.2)
//	Failure Detection       ─ per-subscriber timeouts
//	Reliable Channel        ─ retransmission + output-triggered suspicion
//	Unreliable Transport
//
// The assembly is pure wiring: every component keeps its own state and
// goroutines, and the dependencies between packages mirror the arrows of
// the figure (verified mechanically by the repository's architecture test).
package core

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/abcast"
	"repro/internal/consensus"
	"repro/internal/fd"
	"repro/internal/gbcast"
	"repro/internal/membership"
	"repro/internal/monitoring"
	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/transport"
)

// Config parameterises a node of the stack.
type Config struct {
	// Self is this process's identity; it must appear in Universe.
	Self proc.ID
	// Universe is the fixed set of processes running the consensus
	// substrate. Group views are dynamic lists over this universe: the
	// ordering layer tolerates f < n/2 crashes without reconfiguration, so
	// exclusions and joins touch only the view (see DESIGN.md for this
	// documented simplification of [32]).
	Universe []proc.ID
	// InitialView is the first installed view; defaults to Universe order.
	InitialView []proc.ID
	// Relation is the application's conflict relation; defaults to the
	// paper's Section 3.3 table (fast "rbcast" vs ordered "abcast"). The
	// membership view-change class is spliced in automatically.
	Relation *gbcast.Relation

	// Snapshot/Restore implement state transfer to joining processes.
	Snapshot func() []byte
	Restore  func([]byte)

	// Incarnation is this process's reliable-channel incarnation number. A
	// node restarted WITHOUT its previous state (crash recovery) must use a
	// strictly higher incarnation than its previous life so peers reset
	// their per-peer channel state instead of discarding its fresh sequence
	// numbers as duplicates (rchannel.WithIncarnation). Zero for processes
	// that never lose state.
	Incarnation uint64

	// Timing. Zero values select defaults suited to the in-memory network.
	RTO              time.Duration // reliable channel retransmission (20ms)
	HeartbeatEvery   time.Duration // failure detector emission (5ms)
	FDCheckEvery     time.Duration // failure detector evaluation (2ms)
	SuspicionTimeout time.Duration // SHORT timeout: consensus subscription (50ms)
	ExclusionTimeout time.Duration // LONG timeout: monitoring subscription (500ms)
	StuckAfter       time.Duration // output-triggered suspicion threshold (0=off)

	// Monitoring is the exclusion policy; Threshold 0 selects the default.
	Monitoring monitoring.Policy
	// StartMonitor starts the monitoring component with the node.
	StartMonitor bool

	// FlushLimit bounds the generic broadcast unswept set (0 = default).
	FlushLimit int
}

func (c *Config) applyDefaults() {
	if c.RTO == 0 {
		c.RTO = 20 * time.Millisecond
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 5 * time.Millisecond
	}
	if c.FDCheckEvery == 0 {
		c.FDCheckEvery = 2 * time.Millisecond
	}
	if c.SuspicionTimeout == 0 {
		c.SuspicionTimeout = 50 * time.Millisecond
	}
	if c.ExclusionTimeout == 0 {
		c.ExclusionTimeout = 500 * time.Millisecond
	}
	if len(c.InitialView) == 0 {
		c.InitialView = slices.Clone(c.Universe)
	}
	if c.Relation == nil {
		c.Relation = gbcast.DefaultRelation()
	}
	if c.Monitoring.Threshold == 0 {
		c.Monitoring = monitoring.DefaultPolicy()
	}
}

// DeliverFunc receives application deliveries (any class except the
// internal membership class). It runs on the stack's delivery goroutine.
type DeliverFunc func(gbcast.Delivery)

// Node is one process's instance of the full stack.
type Node struct {
	cfg  Config
	self proc.ID

	ep   *rchannel.Endpoint
	det  *fd.Detector
	cs   *consensus.Service
	ab   *abcast.Broadcaster
	gb   *gbcast.Broadcaster
	memb *membership.Service
	mon  *monitoring.Monitor

	subShort *fd.Subscription
	subLong  *fd.Subscription

	deliver DeliverFunc
	started bool
}

// NewNode wires a node over the given transport endpoint.
func NewNode(tr transport.Transport, cfg Config, deliver DeliverFunc) (*Node, error) {
	cfg.applyDefaults()
	if cfg.Self == "" {
		cfg.Self = tr.Self()
	}
	if cfg.Self != tr.Self() {
		return nil, fmt.Errorf("core: config self %q does not match transport %q", cfg.Self, tr.Self())
	}
	if !slices.Contains(cfg.Universe, cfg.Self) {
		return nil, fmt.Errorf("core: self %q not in universe %v", cfg.Self, cfg.Universe)
	}
	for _, m := range cfg.InitialView {
		if !slices.Contains(cfg.Universe, m) {
			return nil, fmt.Errorf("core: initial view member %q not in universe", m)
		}
	}

	n := &Node{cfg: cfg, self: cfg.Self, deliver: deliver}

	var epOpts []rchannel.Option
	epOpts = append(epOpts, rchannel.WithRTO(cfg.RTO))
	if cfg.StuckAfter > 0 {
		epOpts = append(epOpts, rchannel.WithStuckAfter(cfg.StuckAfter))
	}
	if cfg.Incarnation > 0 {
		epOpts = append(epOpts, rchannel.WithIncarnation(cfg.Incarnation))
	}
	n.ep = rchannel.New(tr, epOpts...)

	n.det = fd.New(n.ep, cfg.Universe,
		fd.WithInterval(cfg.HeartbeatEvery),
		fd.WithCheckEvery(cfg.FDCheckEvery))
	n.subShort = n.det.Subscribe(cfg.SuspicionTimeout)
	n.subLong = n.det.Subscribe(cfg.ExclusionTimeout)

	rel := cfg.Relation.ExtendWithOrderedClass(membership.Class)
	var gbOpts []gbcast.Option
	if cfg.FlushLimit > 0 {
		gbOpts = append(gbOpts, gbcast.WithFlushLimit(cfg.FlushLimit))
	}
	n.gb = gbcast.New(n.ep, "gcs", cfg.Universe, rel, n.onDeliver, gbOpts...)
	n.ab = abcast.New(n.ep, "gcs.ab", cfg.Universe, n.gb.Adeliver)
	n.cs = consensus.New(n.ep, cfg.Universe, n.subShort, n.ab.Decide)
	n.ab.AttachConsensus(n.cs)
	n.gb.AttachAbcast(n.ab)

	n.memb = membership.New(n.gb, n.ep, proc.NewView(cfg.InitialView...), membership.Snapshotter{
		Snapshot: cfg.Snapshot,
		Restore:  cfg.Restore,
	})
	n.mon = monitoring.New(n.ep, n.subLong, n.memb, cfg.Monitoring)
	return n, nil
}

// onDeliver routes gbcast deliveries: membership operations to the
// membership service, everything else to the application.
func (n *Node) onDeliver(d gbcast.Delivery) {
	if d.Class == membership.Class {
		if op, ok := d.Body.(membership.Op); ok {
			n.memb.Apply(op)
		}
		return
	}
	if n.deliver != nil {
		n.deliver(d)
	}
}

// Start launches the stack bottom-up.
func (n *Node) Start() {
	if n.started {
		return
	}
	n.started = true
	n.ep.Start()
	n.det.Start()
	n.cs.Start()
	n.ab.Start()
	n.gb.Start()
	if n.cfg.StartMonitor {
		n.mon.Start()
	}
}

// Stop halts the stack top-down.
func (n *Node) Stop() {
	if !n.started {
		return
	}
	n.started = false
	n.mon.Stop()
	n.gb.Stop()
	n.ab.Stop()
	n.cs.Stop()
	n.det.Stop()
	n.ep.Stop()
}

// Self returns the node's process ID.
func (n *Node) Self() proc.ID { return n.self }

// Gbcast broadcasts body under an application class of the conflict
// relation.
func (n *Node) Gbcast(class string, body any) error {
	return n.gb.Broadcast(class, body)
}

// Abcast broadcasts body under the default ordered class (total order with
// respect to everything) — the abcast operation of Figure 9.
func (n *Node) Abcast(body any) error {
	return n.gb.Broadcast(gbcast.ClassAbcast, body)
}

// Rbcast broadcasts body under the default fast class (ordered only against
// abcast traffic) — the rbcast operation of Figure 9.
func (n *Node) Rbcast(body any) error {
	return n.gb.Broadcast(gbcast.ClassRbcast, body)
}

// Join, Remove and RotatePrimary are the membership operations of Figure 9.
func (n *Node) Join(p proc.ID) error          { return n.memb.Join(p) }
func (n *Node) Remove(p proc.ID) error        { return n.memb.Remove(p) }
func (n *Node) RotatePrimary(p proc.ID) error { return n.memb.RotatePrimary(p) }

// View returns the current group view.
func (n *Node) View() proc.View { return n.memb.View() }

// OnView registers a new_view observer.
func (n *Node) OnView(fn membership.ViewFunc) { n.memb.OnView(fn) }

// Membership exposes the membership component.
func (n *Node) Membership() *membership.Service { return n.memb }

// Monitor exposes the monitoring component (start_monitor/stop_monitor).
func (n *Node) Monitor() *monitoring.Monitor { return n.mon }

// Endpoint exposes the reliable channel multiplexer (for applications that
// need point-to-point messaging, e.g. client request routing).
func (n *Node) Endpoint() *rchannel.Endpoint { return n.ep }

// FailureDetector exposes the failure detection component for additional
// subscriptions.
func (n *Node) FailureDetector() *fd.Detector { return n.det }

// BroadcastStats returns the generic broadcast counters (thriftiness
// accounting for the experiments).
func (n *Node) BroadcastStats() gbcast.Stats { return n.gb.Stats() }
