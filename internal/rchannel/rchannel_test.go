package rchannel

import (
	"sync"
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/transport"
)

type probe struct {
	N int
}

func init() {
	msg.Register(probe{})
}

type rig struct {
	net *transport.Network
	eps map[proc.ID]*Endpoint
}

func newRig(t *testing.T, ids []proc.ID, netOpts []transport.NetOption, epOpts ...Option) *rig {
	t.Helper()
	network := transport.NewNetwork(netOpts...)
	r := &rig{net: network, eps: make(map[proc.ID]*Endpoint)}
	for _, id := range ids {
		r.eps[id] = New(network.Endpoint(id), epOpts...)
	}
	t.Cleanup(func() {
		for _, ep := range r.eps {
			ep.Stop()
		}
		network.Shutdown()
	})
	return r
}

func TestReliableDeliveryUnderLoss(t *testing.T) {
	r := newRig(t, proc.IDs("a", "b"),
		[]transport.NetOption{transport.WithLoss(0.4), transport.WithSeed(5), transport.WithDelay(0, time.Millisecond)},
		WithRTO(5*time.Millisecond))
	var (
		mu  sync.Mutex
		got []int
	)
	r.eps["b"].Handle("t", func(from proc.ID, body any) {
		p := body.(probe)
		mu.Lock()
		got = append(got, p.N)
		mu.Unlock()
	})
	for _, ep := range r.eps {
		ep.Start()
	}
	const total = 50
	for i := 0; i < total; i++ {
		if err := r.eps["a"].Send("b", "t", probe{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d under loss", n, total)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// FIFO and no duplicates despite 40% loss and retransmissions.
	mu.Lock()
	defer mu.Unlock()
	for i, n := range got[:total] {
		if n != i {
			t.Fatalf("FIFO violated at %d: %v", i, got[:i+1])
		}
	}
}

func TestLoopbackDelivery(t *testing.T) {
	r := newRig(t, proc.IDs("a"), nil)
	done := make(chan int, 1)
	r.eps["a"].Handle("self", func(from proc.ID, body any) {
		if from != "a" {
			t.Errorf("loopback from %s", from)
		}
		done <- body.(probe).N
	})
	r.eps["a"].Start()
	if err := r.eps["a"].Send("a", "self", probe{N: 9}); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-done:
		if n != 9 {
			t.Fatalf("got %d", n)
		}
	case <-time.After(time.Second):
		t.Fatal("loopback lost")
	}
}

func TestDatagramIsUnreliable(t *testing.T) {
	r := newRig(t, proc.IDs("a", "b"),
		[]transport.NetOption{transport.WithLoss(1.0), transport.WithSeed(2)},
		WithRTO(5*time.Millisecond))
	r.eps["b"].Handle("d", func(proc.ID, any) { t.Error("datagram delivered through 100% loss") })
	for _, ep := range r.eps {
		ep.Start()
	}
	_ = r.eps["a"].SendDatagram("b", "d", probe{N: 1})
	time.Sleep(50 * time.Millisecond) // retransmission would have fired by now
	if pending := r.eps["a"].PendingTo("b"); pending != 0 {
		t.Fatalf("datagram buffered for retransmission: %d", pending)
	}
}

func TestOutputTriggeredSuspicion(t *testing.T) {
	r := newRig(t, proc.IDs("a", "b"),
		[]transport.NetOption{transport.WithSeed(3)},
		WithRTO(5*time.Millisecond), WithStuckAfter(30*time.Millisecond))
	stuck := make(chan proc.ID, 1)
	r.eps["a"].OnStuck(func(peer proc.ID, age time.Duration) {
		select {
		case stuck <- peer:
		default:
		}
	})
	for _, ep := range r.eps {
		ep.Start()
	}
	r.net.Crash("b")
	if err := r.eps["a"].Send("b", "t", probe{N: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case peer := <-stuck:
		if peer != "b" {
			t.Fatalf("stuck peer %s", peer)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no output-triggered suspicion")
	}
	// After the monitoring layer excludes b, its buffer can be discarded.
	if r.eps["a"].PendingTo("b") == 0 {
		t.Fatal("expected pending messages before discard")
	}
	r.eps["a"].DiscardPeer("b")
	if r.eps["a"].PendingTo("b") != 0 {
		t.Fatal("DiscardPeer left buffered messages")
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	r := newRig(t, proc.IDs("a"), nil)
	r.eps["a"].Handle("x", func(proc.ID, any) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Handle did not panic")
		}
	}()
	r.eps["a"].Handle("x", func(proc.ID, any) {})
}

func TestSendAll(t *testing.T) {
	r := newRig(t, proc.IDs("a", "b", "c"), nil)
	var count sync.WaitGroup
	count.Add(2)
	for _, id := range proc.IDs("b", "c") {
		ep := r.eps[id]
		ep.Handle("fan", func(proc.ID, any) { count.Done() })
	}
	for _, ep := range r.eps {
		ep.Start()
	}
	if err := r.eps["a"].SendAll(proc.IDs("b", "c"), "fan", probe{N: 1}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { count.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fan-out incomplete")
	}
}
