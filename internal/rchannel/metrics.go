package rchannel

import "repro/internal/telemetry"

// RegisterMetrics exports the endpoint's channel accounting under scope.
// The hot paths keep their existing mutex-guarded counters; the registry
// reads through at scrape time (counter-funcs), so instrumentation adds
// nothing to the per-frame cost.
func (e *Endpoint) RegisterMetrics(s *telemetry.Scope) {
	if s == nil {
		return
	}
	read := func(f func(ChannelStats) uint64) func() float64 {
		return func() float64 { return float64(f(e.Stats())) }
	}
	s.CounterFunc("gcs_rchannel_admitted_total",
		"Frames accepted by the incarnation handshake.",
		read(func(c ChannelStats) uint64 { return c.Admitted }))
	s.CounterFunc("gcs_rchannel_ghost_total",
		"Frames dropped: sent by a dead incarnation of the peer.",
		read(func(c ChannelStats) uint64 { return c.Ghost }))
	s.CounterFunc("gcs_rchannel_stale_total",
		"Frames dropped: addressed to a previous life of this endpoint.",
		read(func(c ChannelStats) uint64 { return c.Stale }))
	s.CounterFunc("gcs_rchannel_incarnation_resets_total",
		"Per-peer channel resets (peer restarted fresh).",
		read(func(c ChannelStats) uint64 { return c.Resets }))
	s.CounterFunc("gcs_rchannel_bad_total",
		"Frames dropped: undecodable or unexpected.",
		read(func(c ChannelStats) uint64 { return c.Bad }))
	s.CounterFunc("gcs_rchannel_retransmits_total",
		"Frames re-sent by the retransmit loop.",
		read(func(c ChannelStats) uint64 { return c.Retransmits }))
	s.CounterFunc("gcs_rchannel_backoff_resets_total",
		"Frames acknowledged after at least one retransmission.",
		read(func(c ChannelStats) uint64 { return c.BackoffResets }))
	s.GaugeFunc("gcs_rchannel_unacked",
		"Unacknowledged outbound frames, summed over peers.",
		func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			n := 0
			for _, out := range e.out {
				n += len(out.unacked)
			}
			return float64(n)
		})
}
