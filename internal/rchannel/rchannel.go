// Package rchannel implements the reliable channel component of the
// architecture (Figure 9, Section 3.3.1).
//
// Property: if a correct process p sends message m to a correct process q,
// then q eventually receives m. On top of that the implementation provides
// per-peer FIFO delivery and duplicate suppression, which the layers above
// (reliable broadcast, consensus, generic broadcast) rely on. The paper
// implements this abstraction on top of TCP [15]; here it is built from
// sequence numbers, cumulative acknowledgements and retransmission over the
// unreliable transport, so that it works identically on the simulated
// network and on TCP.
//
// The component also produces "output-triggered suspicions" [12]
// (Section 3.3.2): when a message stays unacknowledged longer than a
// threshold, the registered OnStuck callback fires so that the monitoring
// component can decide to exclude the silent peer and let the sender discard
// its buffer.
package rchannel

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/transport"
)

const (
	kindData uint8 = iota + 1
	kindAck
	kindDgram
)

// wire is the single frame type exchanged over the transport.
type wire struct {
	Kind  uint8
	Seq   uint64 // data sequence number (kindData)
	Ack   uint64 // cumulative acknowledgement
	Proto string // demultiplexing key for the layer above
	Body  any

	// Incarnation handshake (crash recovery): Inc is the sender's
	// incarnation, PInc the sender's view of the receiver's. A process that
	// restarts with fresh channel state announces a higher incarnation; on
	// first contact each side drops all per-peer state about the other's
	// previous life (sequence numbers AND the unacknowledged backlog), and
	// frames addressed to a stale incarnation are discarded instead of
	// corrupting the fresh sequence space. The reliable-delivery obligation
	// is therefore per ESTABLISHED incarnation pair: frames a side sends
	// before it has observed the peer's current incarnation may be lost in
	// the transition window (its callers retry, exactly as for a message
	// sent to a process that has not come up yet). Zero values reproduce
	// the pre-incarnation wire format, so never-restarting processes are
	// unaffected.
	Inc  uint64
	PInc uint64
}

// RegisterWireTypes registers the channel's frame type with the codec.
// It is called once from this package.
func init() {
	msg.Register(wire{})
}

// Handler consumes a message delivered to a protocol. Handlers run on the
// endpoint's dispatch goroutine: they must not block for long and must not
// call back into the Endpoint synchronously in a way that can deadlock
// (Send is safe; Stop is not).
type Handler func(from proc.ID, body any)

// StuckFunc is notified when the oldest unacknowledged message for a peer
// exceeds the stuck threshold (output-triggered suspicion).
type StuckFunc func(peer proc.ID, age time.Duration)

// Option configures an Endpoint.
type Option func(*Endpoint)

// WithRTO sets the retransmission timeout.
func WithRTO(d time.Duration) Option {
	return func(e *Endpoint) { e.rto = d }
}

// WithStuckAfter sets the output-triggered suspicion threshold. Zero
// disables stuck detection.
func WithStuckAfter(d time.Duration) Option {
	return func(e *Endpoint) { e.stuckAfter = d }
}

// WithIncarnation sets this endpoint's incarnation number. A process that
// restarts WITHOUT its channel state (sequence numbers, buffers) must come
// back with a strictly higher incarnation than any previous life under the
// same ID; peers then reset their per-peer channel state for it instead of
// discarding its fresh sequence numbers as duplicates, and drop the
// undeliverable backlog addressed to the dead incarnation. The default 0
// is what every never-restarting process runs with.
func WithIncarnation(inc uint64) Option {
	return func(e *Endpoint) { e.inc = inc }
}

// WithLogger sets a logger for diagnostics; by default logs are discarded.
func WithLogger(l *slog.Logger) Option {
	return func(e *Endpoint) { e.log = l }
}

// Endpoint is a process's reliable channel multiplexer. A single Endpoint
// carries every protocol of the stack, demultiplexed by protocol name.
type Endpoint struct {
	tr         transport.Transport
	self       proc.ID
	rto        time.Duration
	stuckAfter time.Duration
	inc        uint64 // this endpoint's incarnation (WithIncarnation)
	log        *slog.Logger

	mu       sync.Mutex
	handlers map[string]Handler
	onStuck  StuckFunc
	out      map[proc.ID]*outState
	in       map[proc.ID]*inState
	peerInc  map[proc.ID]uint64 // highest incarnation seen per peer
	started  bool

	// Incarnation-handshake accounting (ChannelStats).
	statAdmitted uint64
	statGhost    uint64 // frames from a dead incarnation of the peer
	statStale    uint64 // frames addressed to a previous life of this endpoint
	statResets   uint64 // per-peer channel resets (peer restarted fresh)
	statBad      uint64 // undecodable / unexpected frames

	// Retransmission accounting (ChannelStats).
	statRetrans       uint64 // frames re-sent by the retransmit loop
	statBackoffResets uint64 // frames acked after at least one retransmission

	loopback chan wire // local deliveries, so handlers always run on dispatch

	stop chan struct{}
	done sync.WaitGroup
}

type outState struct {
	nextSeq uint64
	unacked map[uint64]*pending
}

type pending struct {
	frame     []byte
	firstSent time.Time
	lastSent  time.Time
	attempts  int // retransmissions so far (drives exponential backoff)
	notified  bool
}

type inState struct {
	expected uint64 // next in-order sequence to deliver
	oob      map[uint64]wire
}

// New creates an endpoint over the given transport.
func New(tr transport.Transport, opts ...Option) *Endpoint {
	e := &Endpoint{
		tr:       tr,
		self:     tr.Self(),
		rto:      25 * time.Millisecond,
		log:      slog.New(slog.DiscardHandler),
		handlers: make(map[string]Handler),
		out:      make(map[proc.ID]*outState),
		in:       make(map[proc.ID]*inState),
		peerInc:  make(map[proc.ID]uint64),
		loopback: make(chan wire, defaultLoopback),
		stop:     make(chan struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

const defaultLoopback = 1024

// Self returns the local process ID.
func (e *Endpoint) Self() proc.ID { return e.self }

// Handle registers the handler for a protocol. It must be called before
// Start; registering twice for the same protocol panics (a wiring bug).
func (e *Endpoint) Handle(proto string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		panic("rchannel: Handle after Start")
	}
	if _, dup := e.handlers[proto]; dup {
		panic(fmt.Sprintf("rchannel: duplicate handler for %q", proto))
	}
	e.handlers[proto] = h
}

// OnStuck registers the output-triggered suspicion callback.
func (e *Endpoint) OnStuck(fn StuckFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onStuck = fn
}

// Start launches the dispatch and retransmission goroutines.
func (e *Endpoint) Start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()

	e.done.Add(2)
	go e.dispatchLoop()
	go e.retransmitLoop()
}

// Stop terminates the endpoint's goroutines and closes the transport.
func (e *Endpoint) Stop() {
	e.mu.Lock()
	if !e.started {
		e.mu.Unlock()
		return
	}
	select {
	case <-e.stop:
		e.mu.Unlock()
		e.done.Wait()
		return
	default:
	}
	close(e.stop)
	e.mu.Unlock()
	e.tr.Close()
	e.done.Wait()
}

// Send transmits body to the destination with reliable FIFO semantics.
func (e *Endpoint) Send(to proc.ID, proto string, body any) error {
	if to == e.self {
		return e.sendLocal(wire{Kind: kindData, Proto: proto, Body: body})
	}
	e.mu.Lock()
	out := e.outLocked(to)
	out.nextSeq++
	w := wire{Kind: kindData, Seq: out.nextSeq, Ack: e.inAckLocked(to), Proto: proto, Body: body,
		Inc: e.inc, PInc: e.peerInc[to]}
	frame, err := msg.Encode(w)
	if err != nil {
		out.nextSeq--
		e.mu.Unlock()
		return fmt.Errorf("rchannel send to %s: %w", to, err)
	}
	now := time.Now()
	out.unacked[w.Seq] = &pending{frame: frame, firstSent: now, lastSent: now}
	e.mu.Unlock()
	e.tr.Send(to, frame)
	return nil
}

// SendDatagram transmits body unreliably (no sequencing, no retransmission).
// The failure detector uses this path for heartbeats so that heartbeats are
// never artificially "repaired" by retransmission.
func (e *Endpoint) SendDatagram(to proc.ID, proto string, body any) error {
	if to == e.self {
		return e.sendLocal(wire{Kind: kindDgram, Proto: proto, Body: body})
	}
	e.mu.Lock()
	w := wire{Kind: kindDgram, Proto: proto, Body: body, Inc: e.inc, PInc: e.peerInc[to]}
	e.mu.Unlock()
	// Datagrams are never retransmitted, so the frame can live in a pooled
	// buffer: the transport copies on Send and the buffer is reused.
	frame, release, err := msg.EncodeTransient(w)
	if err != nil {
		return fmt.Errorf("rchannel datagram to %s: %w", to, err)
	}
	e.tr.Send(to, frame)
	release()
	return nil
}

// SendAll sends reliably to every destination in dests (including self if
// listed). It returns the first encoding error encountered, if any.
func (e *Endpoint) SendAll(dests []proc.ID, proto string, body any) error {
	var firstErr error
	for _, d := range dests {
		if err := e.Send(d, proto, body); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (e *Endpoint) sendLocal(w wire) error {
	// Round-trip through the codec so local and remote deliveries share
	// aliasing semantics. The encoded frame exists only for the duration of
	// the decode, so it stays in a pooled buffer.
	frame, release, err := msg.EncodeTransient(w)
	if err != nil {
		return fmt.Errorf("rchannel loopback: %w", err)
	}
	decoded, err := msg.Decode(frame)
	release()
	if err != nil {
		return fmt.Errorf("rchannel loopback decode: %w", err)
	}
	dw, ok := decoded.(wire)
	if !ok {
		return fmt.Errorf("rchannel loopback: unexpected frame type %T", decoded)
	}
	select {
	case e.loopback <- dw:
		return nil
	case <-e.stop:
		return nil
	}
}

func (e *Endpoint) outLocked(to proc.ID) *outState {
	out, ok := e.out[to]
	if !ok {
		out = &outState{unacked: make(map[uint64]*pending)}
		e.out[to] = out
	}
	return out
}

func (e *Endpoint) inLocked(from proc.ID) *inState {
	in, ok := e.in[from]
	if !ok {
		in = &inState{expected: 1, oob: make(map[uint64]wire)}
		e.in[from] = in
	}
	return in
}

// inAckLocked returns the cumulative ack value for from (highest in-order
// sequence received).
func (e *Endpoint) inAckLocked(from proc.ID) uint64 {
	return e.inLocked(from).expected - 1
}

func (e *Endpoint) dispatchLoop() {
	defer e.done.Done()
	rx := e.tr.Receive()
	for {
		select {
		case <-e.stop:
			return
		case w := <-e.loopback:
			e.dispatch(e.self, w.Proto, w.Body)
		case pkt, ok := <-rx:
			if !ok {
				return
			}
			e.handlePacket(pkt)
		}
	}
}

func (e *Endpoint) handlePacket(pkt transport.Packet) {
	decoded, err := msg.Decode(pkt.Data)
	// The endpoint is the frame's final consumer: gob decoding copies every
	// field out of the buffer, so it can go back to the transport pool here
	// regardless of what happens to the decoded value.
	transport.PutFrame(pkt.Data)
	if err != nil {
		e.mu.Lock()
		e.statBad++
		e.mu.Unlock()
		e.log.Warn("rchannel: undecodable packet", "from", pkt.From, "err", err)
		return
	}
	w, ok := decoded.(wire)
	if !ok {
		e.mu.Lock()
		e.statBad++
		e.mu.Unlock()
		e.log.Warn("rchannel: unexpected frame type", "from", pkt.From, "type", fmt.Sprintf("%T", decoded))
		return
	}
	if !e.admit(pkt.From, w) {
		return
	}
	switch w.Kind {
	case kindDgram:
		e.dispatch(pkt.From, w.Proto, w.Body)
	case kindAck:
		e.applyAck(pkt.From, w.Ack)
	case kindData:
		e.applyAck(pkt.From, w.Ack)
		e.handleData(pkt.From, w)
	default:
		e.log.Warn("rchannel: unknown frame kind", "kind", w.Kind)
	}
}

// admit runs the incarnation handshake on one inbound frame: it learns the
// peer's incarnation (resetting both directions of the channel when the
// peer has restarted fresh), drops ghosts of the peer's previous lives, and
// drops frames addressed to a previous life of THIS endpoint — answering
// those with a bare identifying ack so the sender learns the current
// incarnation and its retransmissions resume correctly addressed.
func (e *Endpoint) admit(from proc.ID, w wire) bool {
	e.mu.Lock()
	cur := e.peerInc[from] // an unheard-from peer is incarnation 0
	if w.Inc < cur {
		e.statGhost++
		e.mu.Unlock()
		return false // ghost of a dead incarnation
	}
	if w.Inc > cur {
		// The peer restarted without its channel state: its old sequence
		// space is void, and so is our unacknowledged backlog toward it —
		// those frames (including any sent before first hearing from the
		// peer, stamped with its old incarnation) are DROPPED, not
		// re-stamped; reliability is per established incarnation pair and
		// single-shot senders must tolerate the transition window.
		delete(e.out, from)
		delete(e.in, from)
		e.statResets++
	}
	e.peerInc[from] = w.Inc
	stale := w.PInc != e.inc
	if stale {
		e.statStale++
	} else {
		e.statAdmitted++
	}
	e.mu.Unlock()
	if stale {
		if w.Kind == kindData {
			e.sendAck(from, 0, w.Inc)
		}
		return false
	}
	return true
}

// ChannelStats is the incarnation handshake's and retransmit loop's
// accounting.
type ChannelStats struct {
	Admitted uint64 // frames accepted
	Ghost    uint64 // dropped: sent by a dead incarnation of the peer
	Stale    uint64 // dropped: addressed to a previous life of this endpoint
	Resets   uint64 // per-peer channel resets (peer restarted fresh)
	Bad      uint64 // dropped: undecodable or unexpected frames
	// Retransmits counts frames re-sent by the retransmit loop;
	// BackoffResets counts frames eventually acknowledged after at least
	// one retransmission — the backoff paid off rather than the channel
	// being reset out from under the frame.
	Retransmits   uint64
	BackoffResets uint64
}

// Stats returns the endpoint's channel accounting.
func (e *Endpoint) Stats() ChannelStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return ChannelStats{Admitted: e.statAdmitted, Ghost: e.statGhost, Stale: e.statStale,
		Resets: e.statResets, Bad: e.statBad,
		Retransmits: e.statRetrans, BackoffResets: e.statBackoffResets}
}

// PeerIncarnation returns the highest incarnation this endpoint has
// observed for peer (0 if never heard from).
func (e *Endpoint) PeerIncarnation(peer proc.ID) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.peerInc[peer]
}

func (e *Endpoint) applyAck(from proc.ID, ack uint64) {
	if ack == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out, ok := e.out[from]
	if !ok {
		return
	}
	for seq, p := range out.unacked {
		if seq <= ack {
			if p.attempts > 0 {
				e.statBackoffResets++
			}
			delete(out.unacked, seq)
		}
	}
}

func (e *Endpoint) handleData(from proc.ID, w wire) {
	type delivery struct {
		proto string
		body  any
	}
	var deliveries []delivery

	e.mu.Lock()
	in := e.inLocked(from)
	switch {
	case w.Seq < in.expected:
		// Duplicate: re-acknowledge below.
	case w.Seq == in.expected:
		deliveries = append(deliveries, delivery{w.Proto, w.Body})
		in.expected++
		for {
			next, ok := in.oob[in.expected]
			if !ok {
				break
			}
			delete(in.oob, in.expected)
			deliveries = append(deliveries, delivery{next.Proto, next.Body})
			in.expected++
		}
	default:
		if _, dup := in.oob[w.Seq]; !dup {
			in.oob[w.Seq] = w
		}
	}
	ack := in.expected - 1
	pinc := e.peerInc[from]
	e.mu.Unlock()

	e.sendAck(from, ack, pinc)
	for _, d := range deliveries {
		e.dispatch(from, d.proto, d.body)
	}
}

// sendAck emits a cumulative ack. pinc is the peer's incarnation, captured
// by the caller inside an already-held critical section — acks are the
// highest-frequency frame on the wire, so they must not pay an extra lock
// round-trip of their own.
func (e *Endpoint) sendAck(to proc.ID, ack, pinc uint64) {
	w := wire{Kind: kindAck, Ack: ack, Inc: e.inc, PInc: pinc}
	// Never retained, so acks use the pooled transient encode path.
	frame, release, err := msg.EncodeTransient(w)
	if err != nil {
		e.log.Warn("rchannel: encode ack", "err", err)
		return
	}
	e.tr.Send(to, frame)
	release()
}

func (e *Endpoint) dispatch(from proc.ID, proto string, body any) {
	e.mu.Lock()
	h := e.handlers[proto]
	e.mu.Unlock()
	if h == nil {
		e.log.Debug("rchannel: no handler", "proto", proto)
		return
	}
	h(from, body)
}

func (e *Endpoint) retransmitLoop() {
	defer e.done.Done()
	interval := e.rto / 2
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-ticker.C:
			e.retransmitPass()
		}
	}
}

func (e *Endpoint) retransmitPass() {
	now := time.Now()
	type resend struct {
		to    proc.ID
		frame []byte
	}
	var (
		resends []resend
		stuck   []proc.ID
		ages    []time.Duration
		onStuck StuckFunc
	)
	e.mu.Lock()
	onStuck = e.onStuck
	for to, out := range e.out {
		var oldest *pending
		for _, p := range out.unacked {
			// Exponential backoff per frame (capped at 32×RTO): a fixed
			// retransmission interval MULTIPLIES offered load exactly when
			// the network is congested or the peer is slow/dead, which can
			// lock the system into a retransmission storm. Backing off
			// preserves eventual delivery while letting congestion drain.
			interval := e.rto << min(p.attempts, 5)
			if now.Sub(p.lastSent) >= interval {
				p.lastSent = now
				p.attempts++
				e.statRetrans++
				resends = append(resends, resend{to: to, frame: p.frame})
			}
			if oldest == nil || p.firstSent.Before(oldest.firstSent) {
				oldest = p
			}
		}
		if oldest != nil && e.stuckAfter > 0 && !oldest.notified &&
			now.Sub(oldest.firstSent) >= e.stuckAfter {
			oldest.notified = true
			stuck = append(stuck, to)
			ages = append(ages, now.Sub(oldest.firstSent))
		}
	}
	e.mu.Unlock()

	for _, r := range resends {
		e.tr.Send(r.to, r.frame)
	}
	if onStuck != nil {
		for i, peer := range stuck {
			onStuck(peer, ages[i])
		}
	}
}

// PeerState reports the channel's sequence state toward/from one peer —
// diagnostic surface for recovery debugging: the next outbound sequence,
// the unacknowledged count, the next inbound sequence expected, and how
// many frames sit buffered out of order.
func (e *Endpoint) PeerState(peer proc.ID) (outNext uint64, unacked int, inExpected uint64, oob int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if o, ok := e.out[peer]; ok {
		outNext, unacked = o.nextSeq, len(o.unacked)
	}
	if i, ok := e.in[peer]; ok {
		inExpected, oob = i.expected, len(i.oob)
	}
	return
}

// PendingTo reports how many messages to peer are still unacknowledged,
// exposed for tests and for the monitoring component's buffer policy.
func (e *Endpoint) PendingTo(peer proc.ID) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out, ok := e.out[peer]
	if !ok {
		return 0
	}
	return len(out.unacked)
}

// DiscardPeer drops all buffered state for peer. The monitoring component
// calls this after peer has been excluded from the membership: once q is no
// longer a member there is no obligation to deliver to it, so its buffered
// messages can be discarded (Section 3.3.2).
func (e *Endpoint) DiscardPeer(peer proc.ID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.out, peer)
}
