package rchannel

import (
	"sync"
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/transport"
)

// collector gathers deliveries for one protocol.
type collector struct {
	mu   sync.Mutex
	got  []string
	from []proc.ID
}

func (c *collector) handler(from proc.ID, body any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := body.(string); ok {
		c.got = append(c.got, s)
		c.from = append(c.from, from)
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func (c *collector) last() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.got) == 0 {
		return ""
	}
	return c.got[len(c.got)-1]
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestIncarnationRestart is the crash-recovery scenario the handshake
// exists for: peer b exchanges traffic with a, is destroyed (endpoint and
// all channel state), and comes back under the same ID with a higher
// incarnation and FRESH sequence numbers. Without the handshake, a would
// discard b#2's seq 1.. as duplicates of b#1's and the channel would be
// dead forever; with it, a resets its per-peer state on first contact and
// reliable FIFO delivery resumes in both directions.
func TestIncarnationRestart(t *testing.T) {
	network := transport.NewNetwork(transport.WithDelay(0, time.Millisecond), transport.WithSeed(3))
	defer network.Shutdown()

	colA := &collector{}
	a := New(network.Endpoint("a"), WithRTO(5*time.Millisecond))
	a.Handle("t", colA.handler)
	a.Start()
	defer a.Stop()

	colB1 := &collector{}
	b1 := New(network.Endpoint("b"), WithRTO(5*time.Millisecond), WithIncarnation(1))
	b1.Handle("t", colB1.handler)
	b1.Start()

	// Life 1: b introduces itself first (reliability is guaranteed once the
	// incarnation pair is established — frames sent before a side learns
	// the other's current incarnation may be lost, like any frame sent to a
	// process that has not announced itself), then traffic flows both ways.
	if err := b1.Send("a", "t", "b1-intro"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return colA.count() >= 1 }, "b#1's intro never delivered")
	for i := 0; i < 5; i++ {
		if err := b1.Send("a", "t", "b1-hello"); err != nil {
			t.Fatal(err)
		}
		if err := a.Send("b", "t", "a-hello"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return colA.count() >= 6 && colB1.count() >= 5 },
		"life-1 traffic never delivered")

	// b dies: crash at the network, endpoint stopped, ALL state gone. a
	// keeps (re)transmitting into the void, accumulating backlog.
	network.Crash("b")
	b1.Stop()
	for i := 0; i < 3; i++ {
		_ = a.Send("b", "t", "into-the-void")
	}
	if a.PendingTo("b") == 0 {
		t.Fatal("no backlog accumulated toward the dead peer")
	}
	network.Restart("b")

	// Life 2: same ID, fresh state, higher incarnation.
	colB2 := &collector{}
	b2 := New(network.Endpoint("b"), WithRTO(5*time.Millisecond), WithIncarnation(2))
	b2.Handle("t", colB2.handler)
	b2.Start()
	defer b2.Stop()

	if err := b2.Send("a", "t", "b2-first"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return colA.count() >= 7 },
		"a never accepted the new incarnation's first message")
	if got := colA.last(); got != "b2-first" {
		t.Fatalf("a delivered %q from b#2, want b2-first", got)
	}

	// The dead-incarnation backlog was dropped on reset (the reliable
	// obligation is per incarnation pair)…
	waitFor(t, 5*time.Second, func() bool { return a.PendingTo("b") == 0 },
		"a still retransmits the dead incarnation's backlog")
	// …and fresh a→b#2 traffic flows with reset sequence numbers.
	if err := a.Send("b", "t", "a-to-b2"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return colB2.last() == "a-to-b2" },
		"b#2 never received fresh traffic from a")
	// b#2 must not have been handed anything addressed to b#1.
	colB2.mu.Lock()
	for _, m := range colB2.got {
		if m == "into-the-void" || m == "a-hello" {
			colB2.mu.Unlock()
			t.Fatalf("b#2 received a previous life's message %q", m)
		}
	}
	colB2.mu.Unlock()

	// FIFO continuity within the new incarnation.
	for i := 0; i < 10; i++ {
		_ = a.Send("b", "t", "seq")
	}
	waitFor(t, 5*time.Second, func() bool { return colB2.count() >= 11 },
		"post-restart FIFO stream stalled")
}
