package rchannel

import (
	"sync"
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/transport"
)

// TestOneWayAckStarvation is the regression test for a one-way link: data
// a→b flows, but the reverse direction is cut, so every ack starves. The
// channel must (1) keep delivering exactly once and in FIFO order at b
// despite the retransmission storm of duplicates, (2) cap the storm itself
// — per-frame exponential backoff must settle at its ceiling rather than
// livelocking the link at the raw RTO rate, and (3) recover promptly on
// heal: the first re-ack that gets through drains the whole backlog and
// BackoffResets records that the backoff paid off.
func TestOneWayAckStarvation(t *testing.T) {
	const rto = 5 * time.Millisecond
	r := newRig(t, proc.IDs("a", "b"),
		[]transport.NetOption{transport.WithSeed(17)},
		WithRTO(rto))
	var (
		mu  sync.Mutex
		got []int
	)
	r.eps["b"].Handle("t", func(from proc.ID, body any) {
		p := body.(probe)
		mu.Lock()
		got = append(got, p.N)
		mu.Unlock()
	})
	for _, ep := range r.eps {
		ep.Start()
	}

	// Starve the ack direction only: b hears a, a never hears b.
	r.net.CutLinkOneWay("b", "a")

	const total = 10
	for i := 0; i < total; i++ {
		if err := r.eps["a"].Send("b", "t", probe{N: i}); err != nil {
			t.Fatal(err)
		}
	}

	// Data still flows: all messages arrive at b, in order, exactly once.
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= total
	}, "one-way delivery stalled")
	if pending := r.eps["a"].PendingTo("b"); pending != total {
		t.Fatalf("ack starvation: PendingTo = %d, want %d", pending, total)
	}

	// Let every frame's backoff climb to the 32×RTO ceiling, then measure
	// the steady-state retransmission rate over one window. Without the cap
	// check this is where a livelock hides: a fixed-interval retransmitter
	// sends window/RTO frames per pending message (64 here); at the ceiling
	// it may send at most window/(32×RTO) (+1 for phase), and it must still
	// be retrying at all — silently giving the frames up is the other way
	// to "win" this test, and it loses eventual delivery.
	time.Sleep(64 * rto) // 5+10+20+40+80+160ms: every frame is at the cap now
	before := r.eps["a"].Stats().Retransmits
	window := 64 * rto
	time.Sleep(window)
	delta := r.eps["a"].Stats().Retransmits - before
	perFrameCeil := uint64(window/(32*rto)) + 1
	if delta > total*perFrameCeil {
		t.Fatalf("retransmission livelock: %d resends in %v for %d pending frames (cap allows ≤ %d)",
			delta, window, total, total*perFrameCeil)
	}
	if delta == 0 {
		t.Fatal("retransmissions stopped entirely while unacked frames were pending")
	}

	// Heal the ack direction: the next capped retransmission triggers a
	// re-ack that now gets through, draining the entire backlog at once.
	r.net.HealLinkOneWay("b", "a")
	if err := r.eps["a"].Send("b", "t", probe{N: total}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool {
		return r.eps["a"].PendingTo("b") == 0
	}, "backlog never drained after heal")
	if st := r.eps["a"].Stats(); st.BackoffResets == 0 {
		t.Fatal("no BackoffResets: the acked-after-retransmission accounting never fired")
	}

	// Exactly once, FIFO, including the post-heal message — the duplicate
	// storm must not have re-delivered anything.
	mu.Lock()
	defer mu.Unlock()
	if len(got) != total+1 {
		t.Fatalf("delivered %d messages, want %d: %v", len(got), total+1, got)
	}
	for i, n := range got {
		if n != i {
			t.Fatalf("FIFO violated at %d: %v", i, got)
		}
	}
}
