package rbcast

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/transport"
)

type probe struct {
	S string
}

func init() {
	msg.Register(probe{})
}

type rig struct {
	net *transport.Network
	bcs map[proc.ID]*Broadcaster
	mu  sync.Mutex
	got map[proc.ID][]string
}

func newRig(t *testing.T, ids []proc.ID, netOpts ...transport.NetOption) *rig {
	t.Helper()
	if len(netOpts) == 0 {
		netOpts = []transport.NetOption{transport.WithDelay(0, time.Millisecond), transport.WithSeed(6)}
	}
	network := transport.NewNetwork(netOpts...)
	r := &rig{net: network, bcs: make(map[proc.ID]*Broadcaster), got: make(map[proc.ID][]string)}
	var eps []*rchannel.Endpoint
	for _, id := range ids {
		self := id
		ep := rchannel.New(network.Endpoint(id), rchannel.WithRTO(5*time.Millisecond))
		b := New(ep, "rb", ids, func(d Delivery) {
			r.mu.Lock()
			r.got[self] = append(r.got[self], d.Body.(probe).S)
			r.mu.Unlock()
		})
		ep.Start()
		b.Start()
		r.bcs[id] = b
		eps = append(eps, ep)
	}
	t.Cleanup(func() {
		for _, b := range r.bcs {
			b.Stop()
		}
		for _, ep := range eps {
			ep.Stop()
		}
		network.Shutdown()
	})
	return r
}

func (r *rig) deliveredAt(id proc.ID) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.got[id]))
	copy(out, r.got[id])
	return out
}

func (r *rig) waitCount(t *testing.T, id proc.ID, want int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for len(r.deliveredAt(id)) < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s delivered %d, want %d", id, len(r.deliveredAt(id)), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAllCorrectDeliver(t *testing.T) {
	ids := proc.IDs("a", "b", "c")
	r := newRig(t, ids)
	const total = 20
	for i := 0; i < total; i++ {
		if err := r.bcs["a"].Broadcast(probe{S: fmt.Sprintf("m%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		r.waitCount(t, id, total)
	}
}

func TestFIFOPerOrigin(t *testing.T) {
	ids := proc.IDs("a", "b", "c")
	r := newRig(t, ids, transport.WithDelay(0, 3*time.Millisecond), transport.WithSeed(9))
	const total = 30
	for i := 0; i < total; i++ {
		_ = r.bcs["b"].Broadcast(probe{S: fmt.Sprintf("m%d", i)})
	}
	for _, id := range ids {
		r.waitCount(t, id, total)
		got := r.deliveredAt(id)
		for i := 0; i < total; i++ {
			if got[i] != fmt.Sprintf("m%d", i) {
				t.Fatalf("%s: FIFO violated at %d: %q", id, i, got[i])
			}
		}
	}
}

func TestNoDuplicatesUnderLoss(t *testing.T) {
	ids := proc.IDs("a", "b", "c")
	r := newRig(t, ids, transport.WithLoss(0.3), transport.WithSeed(8), transport.WithDelay(0, time.Millisecond))
	const total = 15
	for i := 0; i < total; i++ {
		_ = r.bcs["a"].Broadcast(probe{S: fmt.Sprintf("m%d", i)})
	}
	for _, id := range ids {
		r.waitCount(t, id, total)
	}
	time.Sleep(100 * time.Millisecond) // allow any duplicate to surface
	for _, id := range ids {
		got := r.deliveredAt(id)
		seen := make(map[string]bool)
		for _, s := range got {
			if seen[s] {
				t.Fatalf("%s delivered %q twice", id, s)
			}
			seen[s] = true
		}
	}
}

// TestAgreementAfterOriginCrash: the origin reaches only one member before
// crashing; the relay must spread the message to everyone (agreement).
func TestAgreementAfterOriginCrash(t *testing.T) {
	ids := proc.IDs("a", "b", "c")
	r := newRig(t, ids)
	// a can reach b but not c; then a crashes.
	r.net.CutLink("a", "c")
	if err := r.bcs["a"].Broadcast(probe{S: "half"}); err != nil {
		t.Fatal(err)
	}
	r.waitCount(t, "b", 1)
	r.net.Crash("a")
	// c must still deliver through b's relay.
	r.waitCount(t, "c", 1)
	if got := r.deliveredAt("c"); got[0] != "half" {
		t.Fatalf("c delivered %v", got)
	}
}
