// Package rbcast implements reliable broadcast over reliable channels.
//
// Properties (for the crash-stop model, all within a fixed destination set):
//
//	Validity:    if a correct process broadcasts m, it delivers m.
//	Agreement:   if any correct process delivers m, every correct process
//	             delivers m (eager relay on first receipt covers senders
//	             that crash mid-broadcast).
//	Integrity:   m is delivered at most once, and only if broadcast.
//	FIFO:        messages from the same origin are delivered in the order
//	             broadcast (required by the generic broadcast layer,
//	             footnote 9 of the paper).
//
// The layer is instantiated once per client protocol with a distinct
// protocol name, so several broadcast groups can share one endpoint.
package rbcast

import (
	"fmt"
	"sync"

	"repro/internal/eventq"
	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/seqset"
)

// rbMsg is the wire format.
type rbMsg struct {
	Origin proc.ID
	Seq    uint64
	Body   any
}

func init() {
	msg.Register(rbMsg{})
}

// Delivery is a delivered broadcast message.
type Delivery struct {
	Origin proc.ID
	Seq    uint64
	Body   any
}

// DeliverFunc consumes deliveries. It runs on the broadcaster's delivery
// goroutine; it must not block indefinitely.
type DeliverFunc func(Delivery)

// Broadcaster provides reliable FIFO broadcast within a fixed member set.
type Broadcaster struct {
	ep      *rchannel.Endpoint
	self    proc.ID
	others  []proc.ID
	proto   string
	deliver DeliverFunc

	mu       sync.Mutex
	nextSeq  uint64
	seen     map[proc.ID]*seqset.Set
	fifoNext map[proc.ID]uint64
	fifoBuf  map[proc.ID]map[uint64]rbMsg

	queue     *eventq.Queue[Delivery]
	startOnce sync.Once
	stop      chan struct{}
	done      sync.WaitGroup
}

// New creates a broadcaster for the given member set. proto must be unique
// per endpoint. deliver receives messages in FIFO-per-origin order.
func New(ep *rchannel.Endpoint, proto string, members []proc.ID, deliver DeliverFunc) *Broadcaster {
	b := &Broadcaster{
		ep:       ep,
		self:     ep.Self(),
		proto:    proto,
		deliver:  deliver,
		seen:     make(map[proc.ID]*seqset.Set),
		fifoNext: make(map[proc.ID]uint64),
		fifoBuf:  make(map[proc.ID]map[uint64]rbMsg),
		queue:    eventq.New[Delivery](),
		stop:     make(chan struct{}),
	}
	for _, m := range members {
		if m != b.self {
			b.others = append(b.others, m)
		}
	}
	ep.Handle(proto, b.onNet)
	return b
}

// Start launches the delivery goroutine.
func (b *Broadcaster) Start() {
	b.startOnce.Do(func() {
		b.done.Add(1)
		go b.deliveryLoop()
	})
}

// Stop terminates the delivery goroutine.
func (b *Broadcaster) Stop() {
	select {
	case <-b.stop:
		return
	default:
		close(b.stop)
	}
	b.done.Wait()
	b.queue.Close()
}

// Broadcast reliably broadcasts body to all members, including self.
func (b *Broadcaster) Broadcast(body any) error {
	b.mu.Lock()
	b.nextSeq++
	m := rbMsg{Origin: b.self, Seq: b.nextSeq, Body: body}
	b.acceptLocked(m)
	b.mu.Unlock()
	if err := b.ep.SendAll(b.others, b.proto, m); err != nil {
		return fmt.Errorf("rbcast %s: %w", b.proto, err)
	}
	return nil
}

func (b *Broadcaster) onNet(_ proc.ID, body any) {
	m, ok := body.(rbMsg)
	if !ok {
		return
	}
	b.mu.Lock()
	first := b.acceptLocked(m)
	b.mu.Unlock()
	if first {
		// Eager relay: guarantee agreement if the origin crashed after
		// reaching only a subset of the group.
		_ = b.ep.SendAll(b.others, b.proto, m)
	}
}

// acceptLocked records m if new and enqueues FIFO-ready deliveries.
// It returns true if m was seen for the first time.
func (b *Broadcaster) acceptLocked(m rbMsg) bool {
	set, ok := b.seen[m.Origin]
	if !ok {
		set = seqset.New()
		b.seen[m.Origin] = set
	}
	if !set.Add(m.Seq) {
		return false
	}
	next, ok := b.fifoNext[m.Origin]
	if !ok {
		next = 1
		b.fifoNext[m.Origin] = 1
	}
	if m.Seq != next {
		buf, ok := b.fifoBuf[m.Origin]
		if !ok {
			buf = make(map[uint64]rbMsg)
			b.fifoBuf[m.Origin] = buf
		}
		buf[m.Seq] = m
		return true
	}
	b.queue.Push(Delivery{Origin: m.Origin, Seq: m.Seq, Body: m.Body})
	next++
	buf := b.fifoBuf[m.Origin]
	for {
		bm, ok := buf[next]
		if !ok {
			break
		}
		delete(buf, next)
		b.queue.Push(Delivery{Origin: bm.Origin, Seq: bm.Seq, Body: bm.Body})
		next++
	}
	b.fifoNext[m.Origin] = next
	return true
}

func (b *Broadcaster) deliveryLoop() {
	defer b.done.Done()
	for {
		d, ok := b.queue.TryPop()
		if !ok {
			select {
			case <-b.stop:
				return
			case <-b.queue.Wait():
				continue
			}
		}
		if b.deliver != nil {
			b.deliver(d)
		}
	}
}
