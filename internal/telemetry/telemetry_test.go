package telemetry

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- histogram ---

// TestHistogramConcurrentRecording hammers one histogram from many
// goroutines (run under -race in CI) and checks the totals and quantile
// bounds survive exactly.
func TestHistogramConcurrentRecording(t *testing.T) {
	h := NewHistogram()
	const (
		workers = 8
		perW    = 10000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// spread 1µs..~10ms deterministically
				h.Observe(time.Duration(1+(i*7919+w)%10000) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(workers*perW); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	snap := h.Snapshot()
	if snap.Buckets[len(snap.Buckets)-1] != h.Count() {
		t.Fatalf("cumulative +Inf bucket %d != count %d", snap.Buckets[len(snap.Buckets)-1], h.Count())
	}
	// The distribution is ~uniform over [1µs, 10ms]: p50 ≈ 5ms within
	// bucket resolution (±10%) plus uniformity noise.
	p50 := h.Quantile(0.5)
	if p50 < 4*time.Millisecond || p50 > 6*time.Millisecond {
		t.Fatalf("p50 = %v, want ≈5ms", p50)
	}
	if q0, q1 := h.Quantile(0), h.Quantile(1); q0 > q1 {
		t.Fatalf("quantiles not monotone: q0=%v q1=%v", q0, q1)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	// Known exact distribution: 1..1000 µs once each.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	for _, tc := range []struct {
		q     float64
		exact time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
		{0.999, 999 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		rel := math.Abs(float64(got-tc.exact)) / float64(tc.exact)
		if rel > 0.12 {
			t.Errorf("q%.3f = %v, want %v ±12%% (err %.1f%%)", tc.q, got, tc.exact, 100*rel)
		}
	}
	if mean := h.Mean(); mean != 500*time.Microsecond+500*time.Nanosecond {
		// Exact mean of 1..1000µs is 500.5µs (sum is exact, not bucketed).
		t.Errorf("mean = %v, want 500.5µs", mean)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if nilH.Quantile(0.5) != 0 || nilH.Mean() != 0 || nilH.Count() != 0 {
		t.Fatal("nil histogram must read as empty")
	}
	h := NewHistogram()
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	h.Observe(-time.Second) // clock step: clamps to 0
	h.Observe(0)
	h.Observe(time.Nanosecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if q := h.Quantile(1); q > time.Duration(histBounds[0]) {
		t.Fatalf("sub-µs observations must stay in bucket 0, q1=%v", q)
	}
	// Overflow bucket: beyond the last bound.
	h2 := NewHistogram()
	h2.Observe(10 * time.Minute)
	if q := h2.Quantile(0.5); q != time.Duration(histBounds[numHistBuckets-1]) {
		t.Fatalf("overflow quantile = %v, want clamp to last bound", q)
	}
}

// TestHistogramOverflowClamping pins the out-of-range contract: samples
// beyond the last finite bound (~64s) are counted — in Count, Sum, Mean and
// the Overflow accessor/snapshot — but every quantile landing among them is
// clamped to the last finite bound. The clamp is what makes a nonzero
// Overflow significant: reported tail quantiles UNDERSTATE the truth, so
// consumers (benchdiff) must surface the overflow count alongside them.
func TestHistogramOverflowClamping(t *testing.T) {
	var nilH *Histogram
	if nilH.Overflow() != 0 {
		t.Fatal("nil histogram must report zero overflow")
	}
	h := NewHistogram()
	if h.Overflow() != 0 {
		t.Fatal("empty histogram must report zero overflow")
	}

	// 90 in-range samples, 10 far beyond the last bound.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Minute)
	}
	if got := h.Overflow(); got != 10 {
		t.Fatalf("overflow = %d, want 10", got)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100 (overflow samples must still count)", got)
	}
	last := time.Duration(histBounds[numHistBuckets-1])
	// Quantiles below the overflow mass interpolate normally...
	if q := h.Quantile(0.5); q > 2*time.Millisecond {
		t.Fatalf("q50 = %v landed in overflow territory", q)
	}
	// ...while every quantile inside it clamps to the last finite bound —
	// never extrapolates beyond, never wraps, never returns the raw 10min.
	for _, q := range []float64{0.91, 0.95, 0.99, 1.0} {
		if got := h.Quantile(q); got != last {
			t.Fatalf("q%.2f = %v, want clamp to last bound %v", q, got, last)
		}
	}
	// The sum stays exact even though the buckets clamp.
	wantSum := 90*time.Millisecond + 10*10*time.Minute
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}

	// Snapshot surfaces the overflow as its own (non-cumulative) count next
	// to the Prometheus-style cumulative buckets.
	s := h.Snapshot()
	if s.Overflow != 10 {
		t.Fatalf("snapshot overflow = %d, want 10", s.Overflow)
	}
	if s.Buckets[len(s.Buckets)-1] != 100 {
		t.Fatalf("snapshot +Inf cumulative = %d, want 100", s.Buckets[len(s.Buckets)-1])
	}
}

func TestHistogramBoundsMonotone(t *testing.T) {
	for i := 1; i < numHistBuckets; i++ {
		if histBounds[i] <= histBounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %d <= %d", i, histBounds[i], histBounds[i-1])
		}
	}
	if histBounds[numHistBuckets-1] < int64(60*time.Second) {
		t.Fatalf("top bound %v < 60s", time.Duration(histBounds[numHistBuckets-1]))
	}
}

// --- registry ---

func TestRegistryIdentityAndValue(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("gcs_test_ops_total", "ops", L("node", "n1"))
	b := r.Counter("gcs_test_ops_total", "ops", L("node", "n1"))
	if a != b {
		t.Fatal("same name+labels must return the same instrument")
	}
	c := r.Counter("gcs_test_ops_total", "ops", L("node", "n2"))
	if a == c {
		t.Fatal("different labels must return different instruments")
	}
	a.Add(3)
	c.Inc()
	if v, ok := r.Value("gcs_test_ops_total", L("node", "n1")); !ok || v != 3 {
		t.Fatalf("Value(n1) = %v,%v want 3,true", v, ok)
	}
	// Label order must not matter for identity.
	d := r.Counter("gcs_test_multi_total", "x", L("b", "2"), L("a", "1"))
	e := r.Counter("gcs_test_multi_total", "x", L("a", "1"), L("b", "2"))
	if d != e {
		t.Fatal("label order must not change series identity")
	}
	g := r.Gauge("gcs_test_depth", "depth")
	g.Set(7)
	g.Dec()
	if v, _ := r.Value("gcs_test_depth"); v != 6 {
		t.Fatalf("gauge = %v, want 6", v)
	}
}

func TestRegistryCardinalityBound(t *testing.T) {
	r := NewRegistry()
	var last *Counter
	for i := 0; i < maxSeriesPerFamily+50; i++ {
		last = r.Counter("gcs_test_cardinality_total", "x", L("id", fmt.Sprint(i)))
		last.Inc() // detached instruments must still record without panic
	}
	if got := r.Dropped(); got != 50 {
		t.Fatalf("dropped = %d, want 50", got)
	}
	// Overflowed series must not be exported.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "gcs_test_cardinality_total{"); n != maxSeriesPerFamily {
		t.Fatalf("exported %d series, want %d", n, maxSeriesPerFamily)
	}
	// Kind conflicts are refused, not panicked.
	if g := r.Gauge("gcs_test_cardinality_total", "x"); g == nil {
		t.Fatal("kind-conflict must return a detached instrument, not nil")
	}
	if r.Dropped() != 51 {
		t.Fatalf("dropped = %d, want 51 after kind conflict", r.Dropped())
	}
}

func TestNilRegistryAndScope(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	c.Inc() // no-op, no panic
	var s *Scope
	s.Counter("y_total", "y").Add(2)
	s.Histogram("z_seconds", "z").Observe(time.Second)
	s.GaugeFunc("w", "w", func() float64 { return 1 })
	if _, ok := r.Value("x_total"); ok {
		t.Fatal("nil registry must have no values")
	}
	sub := s.With(L("shard", "0"))
	if sub != nil {
		t.Fatal("nil scope With must stay nil")
	}
}

func TestScopeLabels(t *testing.T) {
	r := NewRegistry()
	s := r.Scope(L("node", "n1")).With(L("shard", "2"))
	s.Counter("gcs_test_scoped_total", "x").Add(9)
	if v, ok := r.Value("gcs_test_scoped_total", L("node", "n1"), L("shard", "2")); !ok || v != 9 {
		t.Fatalf("scoped value = %v,%v", v, ok)
	}
}

func TestRegistryEach(t *testing.T) {
	r := NewRegistry()
	r.Scope(L("shard", "0")).Gauge("gcs_test_idx", "i").Set(4)
	r.Scope(L("shard", "1")).Gauge("gcs_test_idx", "i").Set(9)
	seen := map[string]float64{}
	r.Each("gcs_test_idx", func(labels []Label, v float64) {
		for _, l := range labels {
			if l.Key == "shard" {
				seen[l.Value] = v
			}
		}
	})
	if len(seen) != 2 || seen["0"] != 4 || seen["1"] != 9 {
		t.Fatalf("Each saw %v", seen)
	}
}

// --- exposition ---

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	s := r.Scope(L("node", "n1"))
	s.Counter("gcs_test_frames_total", "frames sent", L("dir", "out")).Add(12)
	s.Gauge("gcs_test_queue_depth", "queued frames").Set(-3)
	s.Histogram("gcs_test_op_seconds", "op latency").Observe(1500 * time.Microsecond)
	s.GaugeFunc("gcs_test_func", `tricky "help" with \ and`+"\nnewline", func() float64 { return 2.5 })
	s.Counter("gcs_test_escape_total", "x", L("peer", `a"b\c`)).Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`gcs_test_frames_total{dir="out",node="n1"} 12`,
		`gcs_test_queue_depth{node="n1"} -3`,
		`# TYPE gcs_test_op_seconds histogram`,
		`gcs_test_op_seconds_count{node="n1"} 1`,
		`le="+Inf"`,
		`gcs_test_escape_total{node="n1",peer="a\"b\\c"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition must validate: %v\n%s", err, out)
	}
	// Histogram sum is in seconds.
	if !strings.Contains(out, "gcs_test_op_seconds_sum{node=\"n1\"} 0.0015") {
		t.Errorf("histogram sum not in seconds:\n%s", out)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"9metric 1\n",                        // name starts with digit
		"ok_metric{le=\"x} 1\n",              // unterminated label value
		"ok_metric{9bad=\"x\"} 1\n",          // bad label name
		"ok_metric notanumber\n",             // bad value
		"# TYPE m wat\nm 1\n",                // unknown type
		"m 1\n# TYPE m counter\n",            // TYPE after samples
		"# TYPE m counter\n# TYPE m gauge\n", // duplicate TYPE
	} {
		if err := ValidateExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
	good := "# HELP m help text\n# TYPE m counter\nm{a=\"b\"} 5 1700000000\nplain 2\n"
	if err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

// --- tracer ---

func TestTraceRingTruncation(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1, RingSize: 8})
	for i := 0; i < 20; i++ {
		x := tr.Start("op", fmt.Sprintf("t#%d", i))
		x.Mark("stage")
		tr.Finish(x)
	}
	recent := tr.Recent()
	if len(recent) != 8 {
		t.Fatalf("ring holds %d, want 8", len(recent))
	}
	// Newest first: ids 19..12.
	for i, snap := range recent {
		want := fmt.Sprintf("t#%d", 19-i)
		if snap.ID != want {
			t.Fatalf("recent[%d] = %s, want %s", i, snap.ID, want)
		}
	}
}

func TestTracerSamplingAndAttach(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 4, RingSize: 16})
	sampled := 0
	for i := 0; i < 100; i++ {
		if tr.Sampled() {
			sampled++
		}
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 with 1-in-4, want 25", sampled)
	}
	if tr.HasActive() {
		t.Fatal("no traces attached yet")
	}
	x := tr.Start("write", OpKey("sess", 7))
	tr.Attach(OpKey("sess", 7), x)
	if !tr.HasActive() {
		t.Fatal("attach must raise the active count")
	}
	tr.MarkKey(OpKey("sess", 7), "batch_flush")
	tr.MarkKey(OpKey("other", 1), "ignored") // unknown key: no-op
	tr.Detach(OpKey("sess", 7))
	tr.Detach(OpKey("sess", 7)) // double-detach must not underflow
	if tr.HasActive() {
		t.Fatal("detach must drop the active count")
	}
	tr.Finish(x)
	recent := tr.Recent()
	if len(recent) != 1 || len(recent[0].Stages) != 1 || recent[0].Stages[0].Name != "batch_flush" {
		t.Fatalf("trace = %+v", recent)
	}
}

func TestTracerSlowCapture(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1 << 30, RingSize: 4, SlowThreshold: time.Millisecond})
	tr.CaptureSlow("write", "s#1", time.Now().Add(-5*time.Millisecond), 5*time.Millisecond)
	tr.CaptureSlow("write", "s#2", time.Now(), 10*time.Microsecond) // below threshold: dropped
	if tr.SlowOps() != 1 {
		t.Fatalf("slowOps = %d, want 1", tr.SlowOps())
	}
	recent := tr.Recent()
	if len(recent) != 1 || !recent[0].Slow || recent[0].ID != "s#1" {
		t.Fatalf("recent = %+v", recent)
	}
	var nilT *Tracer
	if nilT.Sampled() || nilT.HasActive() {
		t.Fatal("nil tracer must sample nothing")
	}
	nilT.MarkKey("k", "s")
	nilT.Finish(nil)
}

// --- admin handler ---

func TestAdminEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Scope(L("node", "n1")).Counter("gcs_test_total", "x").Inc()
	tr := NewTracer(TracerConfig{SampleEvery: 1, RingSize: 4})
	x := tr.Start("write", "k#1")
	tr.Finish(x)
	healthy := true
	h := NewAdminHandler(AdminConfig{
		Registry: r,
		Tracer:   tr,
		Health: []HealthCheck{{
			Name:  "shard-0",
			Check: func() (bool, string) { return healthy, "commit=5" },
		}},
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "gcs_test_total") {
		t.Fatalf("/metrics: %d %q", code, body)
	} else if err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics invalid: %v", err)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	healthy = false
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "unhealthy") {
		t.Fatalf("unhealthy /healthz: %d %q", code, body)
	}
	if code, body := get("/debug/traces"); code != 200 || !strings.Contains(body, `"k#1"`) {
		t.Fatalf("/debug/traces: %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
}
