package telemetry

import (
	"testing"
	"time"
)

// BenchmarkHistogramRecord is the instrumentation-overhead guard: Observe
// is on every op's hot path, so its cost is pinned here (and re-measured
// inline by the E16 overhead experiment, whose BENCH_overhead.json baseline
// benchdiff compares in CI).
func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	d := 350 * time.Microsecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(d)
	}
}

func BenchmarkHistogramRecordParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := 350 * time.Microsecond
		for pb.Next() {
			h.Observe(d)
		}
	})
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("gcs_bench_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkNilInstruments measures the metrics-off path: one nil check.
func BenchmarkNilInstruments(b *testing.B) {
	var c *Counter
	var h *Histogram
	d := 350 * time.Microsecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(d)
	}
}
