package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
)

// Admin/debug HTTP surface: /metrics (Prometheus text), /healthz (JSON,
// 503 when unhealthy), /debug/traces (JSON ring dump), /debug/pprof/*.
// gcsnode mounts this on -admin-listen; tests mount it on httptest.

// HealthCheck is one named health probe. Check returns ok plus a
// human-readable detail string (commit index, primary identity, ...).
// Checks run on every /healthz request and must be fast and concurrent-safe.
type HealthCheck struct {
	Name  string
	Check func() (ok bool, detail string)
}

// AdminConfig wires the admin handler. Any field may be nil/empty; the
// corresponding endpoint degrades gracefully (empty metrics, ok health,
// empty traces).
type AdminConfig struct {
	Registry *Registry
	Tracer   *Tracer
	Health   []HealthCheck
}

// NewAdminHandler returns the admin/debug handler.
func NewAdminHandler(cfg AdminConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		type checkResult struct {
			OK     bool   `json:"ok"`
			Detail string `json:"detail,omitempty"`
		}
		resp := struct {
			Status string                 `json:"status"`
			Checks map[string]checkResult `json:"checks,omitempty"`
		}{Status: "ok", Checks: map[string]checkResult{}}
		healthy := true
		for _, c := range cfg.Health {
			ok, detail := c.Check()
			resp.Checks[c.Name] = checkResult{OK: ok, Detail: detail}
			healthy = healthy && ok
		}
		if !healthy {
			resp.Status = "unhealthy"
		}
		w.Header().Set("Content-Type", "application/json")
		if !healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
		traces := cfg.Tracer.Recent()
		if req.URL.Query().Get("slow") == "1" {
			slow := traces[:0:0]
			for _, tr := range traces {
				if tr.Slow {
					slow = append(slow, tr)
				}
			}
			traces = slow
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			SlowOps uint64          `json:"slow_ops_total"`
			Traces  []TraceSnapshot `json:"traces"`
		}{SlowOps: cfg.Tracer.SlowOps(), Traces: traces})
	})
	// pprof on our own mux, not DefaultServeMux (gcsnode must not expose
	// handlers it did not choose to).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		endpoints := []string{"/metrics", "/healthz", "/debug/traces", "/debug/pprof/"}
		sort.Strings(endpoints)
		for _, e := range endpoints {
			_, _ = w.Write([]byte(e + "\n"))
		}
	})
	return mux
}
