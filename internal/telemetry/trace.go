package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Sampled op tracing.
//
// One op in SampleEvery gets a Trace allocated at the gateway; the trace
// records named stage marks (dispatch, batch_enqueue, batch_flush,
// delivered, ...) as offsets from its start, and lands in a bounded ring
// when finished. The interesting part is crossing layers without changing
// interfaces: the gateway cannot thread a *Trace through the Replica
// interface (both *replication.Passive roles satisfy it), so it Attaches
// the trace under the op's key (telemetry.OpKey(session, seq)) and the
// replication layer marks by key. The fast path for the other
// (SampleEvery-1) ops is a single atomic load: MarkKey and HasActive
// consult an active-trace count before touching the map, and callers are
// expected to gate any key-building allocation on HasActive.
//
// Ops that were NOT sampled but exceed SlowThreshold are still captured —
// as stage-less traces recording kind, id and total duration — so a tail
// latency spike is never invisible just because sampling missed it.

// TracerConfig configures a Tracer. Zero fields take the defaults noted.
type TracerConfig struct {
	// SampleEvery samples one op in N (default 256). 1 traces every op.
	SampleEvery int
	// RingSize bounds the ring of retained finished traces (default 256).
	RingSize int
	// SlowThreshold promotes any op at or above this duration into the
	// ring even when unsampled (default 250ms; ≤0 keeps the default).
	SlowThreshold time.Duration
}

// Tracer samples, collects and retains operation traces. A nil *Tracer is
// a no-op everywhere.
type Tracer struct {
	sampleEvery uint64
	slow        time.Duration
	seq         atomic.Uint64
	active      atomic.Int64 // live attached traces; gates the map fast path
	attached    sync.Map     // op key → *Trace
	slowOps     atomic.Uint64

	mu   sync.Mutex
	ring []*Trace // fixed capacity, next points at the oldest slot
	next int
	n    uint64 // total finished traces ever pushed
}

// NewTracer returns a tracer with the given config.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 256
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = 250 * time.Millisecond
	}
	return &Tracer{
		sampleEvery: uint64(cfg.SampleEvery),
		slow:        cfg.SlowThreshold,
		ring:        make([]*Trace, 0, cfg.RingSize),
	}
}

// stageMark is one named point in a trace's life.
type stageMark struct {
	name string
	at   time.Duration // offset from Trace start
}

// Trace is one sampled operation in flight. Mark is safe for concurrent
// use (gateway and replication layers mark independently).
type Trace struct {
	id    string
	kind  string
	start time.Time

	mu     sync.Mutex
	stages []stageMark
	end    time.Duration
	slow   bool
}

// Sampled reports whether the next op should be traced, advancing the
// sampling counter. One call per op.
func (t *Tracer) Sampled() bool {
	if t == nil {
		return false
	}
	return t.seq.Add(1)%t.sampleEvery == 0
}

// Start begins a trace for the op identified by id. Callers should gate
// the id-building allocation on Sampled().
func (t *Tracer) Start(kind, id string) *Trace {
	if t == nil {
		return nil
	}
	return &Trace{id: id, kind: kind, start: time.Now()}
}

// SlowThreshold returns the slow-op capture threshold.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.slow
}

// Mark records a named stage at the current time offset.
func (tr *Trace) Mark(stage string) {
	if tr == nil {
		return
	}
	at := time.Since(tr.start)
	tr.mu.Lock()
	tr.stages = append(tr.stages, stageMark{name: stage, at: at})
	tr.mu.Unlock()
}

// Attach registers tr under key so other layers can MarkKey it. No-op for
// a nil trace, so callers attach unconditionally after a Sampled() gate.
func (t *Tracer) Attach(key string, tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	t.attached.Store(key, tr)
	t.active.Add(1)
}

// Detach unregisters key. Safe to call when key was never attached.
func (t *Tracer) Detach(key string) {
	if t == nil {
		return
	}
	if _, ok := t.attached.LoadAndDelete(key); ok {
		t.active.Add(-1)
	}
}

// HasActive reports whether any trace is currently attached — the single
// atomic load that keeps unsampled ops from paying for key construction.
func (t *Tracer) HasActive() bool {
	return t != nil && t.active.Load() > 0
}

// MarkKey records a stage on the trace attached under key, if any.
func (t *Tracer) MarkKey(key, stage string) {
	if t == nil || t.active.Load() == 0 {
		return
	}
	if v, ok := t.attached.Load(key); ok {
		v.(*Trace).Mark(stage)
	}
}

// Finish completes tr, stamps its duration, flags it slow when at or above
// the threshold, and retains it in the ring. The caller must have Detached
// any key it Attached.
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	end := time.Since(tr.start)
	tr.mu.Lock()
	tr.end = end
	tr.slow = end >= t.slow
	tr.mu.Unlock()
	if tr.slow {
		t.slowOps.Add(1)
	}
	t.push(tr)
}

// CaptureSlow retains an unsampled op that crossed the slow threshold, as
// a trace with no stage marks.
func (t *Tracer) CaptureSlow(kind, id string, start time.Time, d time.Duration) {
	if t == nil || d < t.slow {
		return
	}
	t.slowOps.Add(1)
	t.push(&Trace{id: id, kind: kind, start: start, end: d, slow: true})
}

// SlowOps returns how many ops crossed the slow threshold (sampled or not).
func (t *Tracer) SlowOps() uint64 {
	if t == nil {
		return 0
	}
	return t.slowOps.Load()
}

func (t *Tracer) push(tr *Trace) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.n++
	t.mu.Unlock()
}

// StageSnapshot is one stage mark in a trace snapshot.
type StageSnapshot struct {
	Name string `json:"stage"`
	AtUS int64  `json:"at_us"`
}

// TraceSnapshot is a finished trace rendered for /debug/traces.
type TraceSnapshot struct {
	ID         string          `json:"id"`
	Kind       string          `json:"kind"`
	Start      time.Time       `json:"start"`
	DurationUS int64           `json:"duration_us"`
	Slow       bool            `json:"slow,omitempty"`
	Stages     []StageSnapshot `json:"stages,omitempty"`
}

// Recent returns the retained traces, newest first.
func (t *Tracer) Recent() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	traces := make([]*Trace, 0, len(t.ring))
	// ring[next-1] is the newest once full; before that, append order holds.
	for i := len(t.ring) - 1; i >= 0; i-- {
		idx := i
		if len(t.ring) == cap(t.ring) {
			idx = (t.next + i) % cap(t.ring)
		}
		traces = append(traces, t.ring[idx])
	}
	t.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(traces))
	for _, tr := range traces {
		tr.mu.Lock()
		snap := TraceSnapshot{
			ID:         tr.id,
			Kind:       tr.kind,
			Start:      tr.start,
			DurationUS: tr.end.Microseconds(),
			Slow:       tr.slow,
		}
		for _, st := range tr.stages {
			snap.Stages = append(snap.Stages, StageSnapshot{Name: st.name, AtUS: st.at.Microseconds()})
		}
		tr.mu.Unlock()
		out = append(out, snap)
	}
	return out
}
