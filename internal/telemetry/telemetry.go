// Package telemetry is the unified observability core: a dependency-free,
// allocation-conscious metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms), sampled operation tracing, and the
// Prometheus/healthz/pprof admin surface served by gcsnode -admin-listen.
//
// Design constraints, in order:
//
//  1. Hot-path cost. Recording into an instrument is one or two atomic
//     operations; no locks, no maps, no allocation. Components hold typed
//     instrument pointers resolved once at wiring time, never look up by
//     name per event, and every instrument method is nil-safe so "metrics
//     off" is a single predictable branch.
//  2. Bounded memory. Label cardinality is capped per family
//     (maxSeriesPerFamily); past the cap the registry hands out detached
//     instruments that record but are never exported, and counts the drop.
//     Histograms are fixed-size arrays, the trace ring is fixed-size.
//  3. No dependencies. Exposition is Prometheus text format written by
//     hand; tracing is a ring of structs; everything is stdlib.
//
// Naming scheme: gcs_<subsystem>_<metric>[_total|_seconds], with
// registry-level scoping supplying the node= and shard= labels so
// components never repeat them. See DESIGN.md "Observability".
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// maxSeriesPerFamily bounds the number of labeled series one metric name
// may fan out into. The cap exists to keep a label-injection bug (a session
// ID or peer address leaking into a label) from growing the registry
// without bound; 256 is far above any intended cardinality (nodes × shards).
const maxSeriesPerFamily = 256

// Label is one key=value pair attached to a series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; a nil *Counter is a no-op, so components can be wired without
// metrics at zero cost beyond one branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// kind is the exposition type of a metric family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a family. Exactly one of the value
// fields is set, matching the family kind; fn (if non-nil) overrides the
// stored value at exposition time (counter- and gauge-funcs).
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family is every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series map[string]*series // key: canonical label rendering
}

// Registry holds metric families and hands out instruments. All methods
// are safe for concurrent use. A nil *Registry hands out nil instruments
// (every registration method no-ops), so wiring code never branches on
// "metrics enabled".
type Registry struct {
	// mu guards the family map only. Scrape-cost rule, enforced by gcsvet
	// lockhold: counter/gauge funcs and histogram snapshots are evaluated
	// OUTSIDE this lock (they may take component locks of arbitrary cost),
	// so a slow exposition can never stall concurrent registrations.
	mu       sync.Mutex //gcsvet:lock telemetry-registry
	families map[string]*family
	dropped  atomic.Uint64 // registrations refused by the cardinality cap
}

// NewRegistry returns an empty registry with the self-accounting
// gcs_telemetry_dropped_series metric pre-registered.
func NewRegistry() *Registry {
	r := &Registry{families: make(map[string]*family)}
	r.GaugeFunc("gcs_telemetry_dropped_series",
		"Series registrations refused by the per-family cardinality cap.",
		func() float64 { return float64(r.dropped.Load()) })
	return r
}

// Dropped returns how many series registrations the cardinality cap refused.
func (r *Registry) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// labelKey renders labels canonically (sorted by key) for series identity.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// register resolves (name, labels) to its series, creating family and
// series as needed. Returns nil when the cardinality cap refuses the
// series, or when the name is already registered with a different kind
// (a programming error surfaced via the drop counter rather than a panic,
// since metrics must never take the process down).
func (r *Registry) register(name, help string, k kind, labels []Label) *series {
	labels = sortLabels(labels)
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != k {
		r.dropped.Add(1)
		return nil
	}
	if s := f.series[key]; s != nil {
		return s
	}
	if len(f.series) >= maxSeriesPerFamily {
		r.dropped.Add(1)
		return nil
	}
	s := &series{labels: labels}
	f.series[key] = s
	return s
}

// Counter returns the counter named name with the given labels, creating
// it on first use. Repeated calls with identical name and labels return
// the same instrument.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.register(name, help, kindCounter, labels)
	if s == nil {
		return new(Counter) // detached: records, never exported
	}
	if s.counter == nil {
		s.counter = new(Counter)
	}
	return s.counter
}

// Gauge returns the gauge named name with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.register(name, help, kindGauge, labels)
	if s == nil {
		return new(Gauge)
	}
	if s.gauge == nil {
		s.gauge = new(Gauge)
	}
	return s.gauge
}

// Histogram returns the latency histogram named name with the given labels.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.register(name, help, kindHistogram, labels)
	if s == nil {
		return NewHistogram()
	}
	if s.hist == nil {
		s.hist = NewHistogram()
	}
	return s.hist
}

// GaugeFunc registers a gauge whose value is read by calling fn at
// exposition time. fn must be safe for concurrent use; it is called
// outside the registry lock, so it may take its component's own locks.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	if s := r.register(name, help, kindGauge, labels); s != nil {
		s.fn = fn
	}
}

// CounterFunc registers a counter whose value is read by calling fn at
// exposition time — the bridge for components that already keep their own
// atomic counters (transport.Stats, rchannel.ChannelStats, the replication
// stats structs) so they export without duplicating state.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	if s := r.register(name, help, kindCounter, labels); s != nil {
		s.fn = fn
	}
}

// Value returns the current value of the (name, labels) series, or false
// if no such series exists. Histogram series report their observation
// count. Intended for tests and in-process assertions (chaostest's lag
// convergence checks), not hot paths.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	if r == nil {
		return 0, false
	}
	key := labelKey(sortLabels(labels))
	r.mu.Lock()
	f := r.families[name]
	var s series // copied: s.fn may be re-bound under r.mu by a re-registration
	found := false
	if f != nil {
		if sp := f.series[key]; sp != nil {
			s, found = *sp, true
		}
	}
	r.mu.Unlock()
	if !found {
		return 0, false
	}
	switch {
	case s.fn != nil:
		return s.fn(), true
	case s.counter != nil:
		return float64(s.counter.Value()), true
	case s.gauge != nil:
		return float64(s.gauge.Value()), true
	case s.hist != nil:
		return float64(s.hist.Count()), true
	}
	return 0, true
}

// Each calls fn for every series of the named family with its labels and
// current value (histograms report their count). Ordering is unspecified.
func (r *Registry) Each(name string, fn func(labels []Label, value float64)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	f := r.families[name]
	var all []series // copied: fields may be re-bound under r.mu
	if f != nil {
		all = make([]series, 0, len(f.series))
		for _, s := range f.series {
			all = append(all, *s)
		}
	}
	r.mu.Unlock()
	for _, s := range all {
		switch {
		case s.fn != nil:
			fn(s.labels, s.fn())
		case s.counter != nil:
			fn(s.labels, float64(s.counter.Value()))
		case s.gauge != nil:
			fn(s.labels, float64(s.gauge.Value()))
		case s.hist != nil:
			fn(s.labels, float64(s.hist.Count()))
		}
	}
}

// Scope is a registry handle with pre-bound labels (node=, shard=), so a
// component registers metrics without knowing where it runs. A nil *Scope
// hands out nil (no-op) instruments.
type Scope struct {
	r      *Registry
	labels []Label
}

// Scope returns a scope binding the given labels to every instrument
// registered through it.
func (r *Registry) Scope(labels ...Label) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{r: r, labels: labels}
}

// With returns a child scope with additional bound labels.
func (s *Scope) With(labels ...Label) *Scope {
	if s == nil {
		return nil
	}
	merged := make([]Label, 0, len(s.labels)+len(labels))
	merged = append(merged, s.labels...)
	merged = append(merged, labels...)
	return &Scope{r: s.r, labels: merged}
}

func (s *Scope) merge(labels []Label) []Label {
	if len(s.labels) == 0 {
		return labels
	}
	merged := make([]Label, 0, len(s.labels)+len(labels))
	merged = append(merged, s.labels...)
	merged = append(merged, labels...)
	return merged
}

// Counter registers a counter under the scope's labels.
func (s *Scope) Counter(name, help string, labels ...Label) *Counter {
	if s == nil {
		return nil
	}
	return s.r.Counter(name, help, s.merge(labels)...)
}

// Gauge registers a gauge under the scope's labels.
func (s *Scope) Gauge(name, help string, labels ...Label) *Gauge {
	if s == nil {
		return nil
	}
	return s.r.Gauge(name, help, s.merge(labels)...)
}

// Histogram registers a histogram under the scope's labels.
func (s *Scope) Histogram(name, help string, labels ...Label) *Histogram {
	if s == nil {
		return nil
	}
	return s.r.Histogram(name, help, s.merge(labels)...)
}

// GaugeFunc registers a gauge-func under the scope's labels.
func (s *Scope) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if s == nil {
		return
	}
	s.r.GaugeFunc(name, help, fn, s.merge(labels)...)
}

// CounterFunc registers a counter-func under the scope's labels.
func (s *Scope) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if s == nil {
		return
	}
	s.r.CounterFunc(name, help, fn, s.merge(labels)...)
}

// OpKey renders the canonical cross-layer identity of a service operation
// (session, sequence number), used both as trace ID and as the key tying
// the gateway's sampled trace to the replication layer's stage marks.
func OpKey(session string, seq uint64) string {
	return fmt.Sprintf("%s#%d", session, seq)
}
