package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Fixed-bucket latency histogram.
//
// Buckets are exponentially spaced at factor 2^(1/4) (~19% per step) from
// 1µs to ~64s, 105 bounds plus an overflow bucket. That places every
// quantile estimate within one bucket of the truth — a worst-case relative
// error under ±10% at the interpolated midpoint — across the full range a
// group-communication op can take, without storing samples. Unlike the
// exact-sample sim.Histogram this never grows, has no lock, and records in
// ~15ns: one binary search over a precomputed table plus three atomic adds.
// That is what lets the same histogram type serve both bench-time
// percentile math and always-on production metrics (ISSUE 6's point: one
// code path for both).

const (
	// histMin is the lower bound of the first bucket (1µs). Sub-microsecond
	// observations land in bucket 0; group-communication ops never resolve
	// faster than this, so no precision is lost where it matters.
	histMin = int64(time.Microsecond)
	// histBucketsPerOctave spaces bounds at 2^(1/4): four buckets per
	// doubling of latency.
	histBucketsPerOctave = 4
	// histOctaves covers 1µs → 64s (2^26 µs ≈ 67s).
	histOctaves = 26
	// numHistBuckets is the number of finite bucket upper bounds.
	numHistBuckets = histOctaves * histBucketsPerOctave
)

// histBounds[i] is the inclusive upper bound (ns) of bucket i.
var histBounds = func() [numHistBuckets]int64 {
	var b [numHistBuckets]int64
	for i := range b {
		bound := float64(histMin) * math.Pow(2, float64(i+1)/histBucketsPerOctave)
		b[i] = int64(math.Round(bound))
		if i > 0 && b[i] <= b[i-1] {
			b[i] = b[i-1] + 1 // guarantee strictly increasing after rounding
		}
	}
	return b
}()

// Histogram records durations into fixed exponential buckets. The zero
// value is ready to use; a nil *Histogram is a no-op. All methods are safe
// for concurrent use; quantile reads taken concurrently with writes are
// approximate in the usual monitoring sense (bucket counts are read one by
// one, not as an atomic snapshot).
type Histogram struct {
	buckets [numHistBuckets + 1]atomic.Uint64 // +1: overflow (+Inf)
	sum     atomic.Int64                      // nanoseconds
	count   atomic.Uint64
}

// NewHistogram returns an empty histogram not attached to any registry —
// the standalone constructor used by gcsbench for percentile math.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf returns the index of the bucket d falls into.
func bucketOf(d time.Duration) int {
	ns := int64(d)
	if ns <= histMin {
		return 0
	}
	// Binary search the precomputed bounds: 7 comparisons, no FP math.
	lo, hi := 0, numHistBuckets // hi == overflow bucket
	for lo < hi {
		mid := (lo + hi) / 2
		if histBounds[mid] >= ns {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one duration. Negative durations (clock steps) count as
// zero rather than corrupting the sum.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Overflow returns the number of observations beyond the last finite bucket
// bound (~64s). Overflowed samples still count toward Count, Sum and Mean,
// but every Quantile that lands among them is CLAMPED to the last finite
// bound — a nonzero overflow means the reported tail quantiles understate
// the truth, which is why benchdiff flags baselines with hist_overflow > 0.
func (h *Histogram) Overflow() uint64 {
	if h == nil {
		return 0
	}
	return h.buckets[numHistBuckets].Load()
}

// Mean returns the average observed duration, 0 if empty.
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the bucket holding the target rank. Error is
// bounded by the bucket width: under ±10% relative. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	var counts [numHistBuckets + 1]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo := int64(0)
			if i > 0 {
				lo = histBounds[i-1]
			}
			hi := int64(0)
			if i < numHistBuckets {
				hi = histBounds[i]
			} else {
				hi = histBounds[numHistBuckets-1] // overflow: clamp to last bound
			}
			frac := (rank - cum) / float64(c)
			return time.Duration(lo + int64(frac*float64(hi-lo)))
		}
		cum = next
	}
	return time.Duration(histBounds[numHistBuckets-1])
}

// HistogramSnapshot is a point-in-time copy of a histogram for exposition.
type HistogramSnapshot struct {
	// Buckets[i] is the CUMULATIVE count of observations ≤ Bounds[i]
	// (Prometheus `le` convention); the final entry is the total (+Inf).
	Buckets []uint64
	// Bounds[i] is the upper bound of bucket i in nanoseconds; len(Bounds)
	// == len(Buckets)-1 (the last bucket is +Inf).
	Bounds []int64
	Sum    time.Duration
	Count  uint64
	// Overflow is the count of observations beyond the last finite bound:
	// the +Inf bucket's own (non-cumulative) count. Nonzero overflow means
	// quantile estimates in that range are clamped and understate the tail.
	Overflow uint64
}

// Snapshot returns cumulative bucket counts and totals.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets: make([]uint64, numHistBuckets+1),
		Bounds:  histBounds[:],
	}
	if h == nil {
		return s
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		s.Buckets[i] = cum
	}
	s.Sum = time.Duration(h.sum.Load())
	s.Count = h.count.Load()
	s.Overflow = h.buckets[numHistBuckets].Load()
	return s
}
