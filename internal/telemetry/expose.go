package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4), written by hand — the whole
// point of the package is zero dependencies. Durations are exposed in
// seconds (Prometheus convention); histogram series expand into
// _bucket{le=...}, _sum and _count.

// WritePrometheus writes every family in the registry in Prometheus text
// format, families and series sorted for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot the structure under the lock, but defer evaluating read-through
	// funcs (and histogram snapshots) until after release: a func may block on
	// a busy subsystem (e.g. an event-loop stats query), and that wait must
	// not serialize registrations or concurrent scrapes.
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type seriesCopy struct {
		labels []Label
		value  float64
		fn     func() float64
		hist   *Histogram
		snap   HistogramSnapshot
	}
	type familyCopy struct {
		name, help string
		kind       kind
		series     []seriesCopy
	}
	fams := make([]familyCopy, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		fc := familyCopy{name: f.name, help: f.help, kind: f.kind}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			sc := seriesCopy{labels: s.labels, fn: s.fn, hist: s.hist}
			switch {
			case s.hist != nil, s.fn != nil:
				// evaluated below, outside r.mu
			case s.counter != nil:
				sc.value = float64(s.counter.Value())
			case s.gauge != nil:
				sc.value = float64(s.gauge.Value())
			}
			fc.series = append(fc.series, sc)
		}
		fams = append(fams, fc)
	}
	r.mu.Unlock()

	for fi := range fams {
		for si := range fams[fi].series {
			s := &fams[fi].series[si]
			switch {
			case s.hist != nil:
				s.snap = s.hist.Snapshot()
			case s.fn != nil:
				s.value = s.fn()
			}
		}
	}

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			if s.hist == nil {
				fmt.Fprintf(bw, "%s%s %s\n", f.name, renderLabels(s.labels, "", 0), formatValue(s.value))
				continue
			}
			for i, cum := range s.snap.Buckets {
				le := "+Inf"
				if i < len(s.snap.Bounds) {
					le = formatValue(float64(s.snap.Bounds[i]) / 1e9)
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, "le", le), cum)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, renderLabels(s.labels, "", 0), formatValue(s.snap.Sum.Seconds()))
			fmt.Fprintf(bw, "%s_count%s %d\n", f.name, renderLabels(s.labels, "", 0), s.snap.Count)
		}
	}
	return bw.Flush()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// renderLabels renders {k="v",...}; extraKey/extraVal append one more pair
// (the histogram le label). extraVal may be string or numeric-as-string.
func renderLabels(labels []Label, extraKey string, extraVal any) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabelValue(l.Value))
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%v"`, extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// ValidateExposition checks that r is well-formed Prometheus text format:
// legal metric and label names, balanced and quoted label syntax, numeric
// values, TYPE lines preceding their samples, and no samples for a family
// declared twice. It is the CI gate behind `promlint` — a malformed
// exposition (from a future metric with a bad name or an unescaped label)
// fails the bench job rather than a production scrape.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	typed := map[string]string{} // family → type
	seenSample := map[string]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				t := fields[3]
				switch t {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, t)
				}
				if prev, dup := typed[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s (already %s)", lineNo, name, prev)
				}
				if seenSample[name] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				typed[name] = t
			}
			continue
		}
		name, err := validateSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		seenSample[familyOf(name, typed)] = true
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return nil
}

// familyOf maps a sample name to its declared family, folding the
// histogram suffixes onto the base name.
func familyOf(name string, typed map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && typed[base] == "histogram" {
			return base
		}
	}
	return name
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validateSample parses one sample line, returning the metric name.
func validateSample(line string) (string, error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", fmt.Errorf("malformed sample %q", line)
	}
	name := rest[:i]
	if !validMetricName(name) {
		return "", fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end, err := scanLabels(rest)
		if err != nil {
			return "", err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	// value [timestamp]
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", fmt.Errorf("malformed value in %q", line)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		if fields[0] != "+Inf" && fields[0] != "-Inf" && fields[0] != "NaN" {
			return "", fmt.Errorf("bad value %q", fields[0])
		}
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, nil
}

// scanLabels validates a {k="v",...} block starting at s[0]=='{' and
// returns the index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		// label name
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j >= len(s) || !validLabelName(s[i:j]) {
			return 0, fmt.Errorf("invalid label name %q", s[i:min(j, len(s))])
		}
		i = j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value must be quoted")
		}
		i++
		for i < len(s) {
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
