// Package membership implements the group membership component of the new
// architecture (Figure 9) — layered ON TOP of atomic/generic broadcast, the
// inversion that distinguishes the paper's design from every traditional
// stack (Section 3.1.1).
//
// View changes (join, remove, rotate-primary) are broadcast through the
// generic broadcast component under a dedicated ordered class that conflicts
// with every application class. Consequences, all "for free":
//
//   - Views are totally ordered: every process installs the same sequence of
//     views (primary partition membership), because view changes ride the
//     atomic broadcast stream. No bespoke view-agreement protocol exists —
//     the ordering problem is solved exactly once in the stack
//     (Section 4.1).
//   - Same view delivery (Section 4.4): the epoch boundary run by generic
//     broadcast sweeps in-flight application messages consistently before
//     the view change, so all processes deliver each message in the same
//     view — without ever blocking senders, unlike the traditional
//     flush/Sync protocols.
//   - Removal is decoupled from failure suspicion: only the monitoring
//     component calls Remove (Section 3.3.2).
//
// Views are lists (footnote 10): the head is the primary. RotatePrimary
// demotes the current primary without excluding it, as in Figure 8.
package membership

import (
	"fmt"
	"sync"

	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/rchannel"
)

// Class is the gbcast message class used for view changes. The stack
// extends the application's conflict relation so this class conflicts with
// everything.
const Class = "_memb.view"

// StateProto is the rchannel protocol used for state transfer to joiners.
const StateProto = "memb.state"

// Op kinds.
const (
	opJoin uint8 = iota + 1
	opRemove
	opRotate
)

// Op is a view-change operation (wire format).
type Op struct {
	Kind uint8
	P    proc.ID
}

// stateMsg carries an application snapshot to a joining process.
type stateMsg struct {
	ViewSeq uint64
	Data    []byte
}

func init() {
	msg.Register(Op{})
	msg.Register(stateMsg{})
}

// Broadcaster is the slice of the generic broadcast interface the service
// needs (satisfied by *gbcast.Broadcaster via the stack's wiring).
type Broadcaster interface {
	Broadcast(class string, body any) error
}

// ViewFunc observes installed views. Called on the delivery goroutine of
// the stack; must not block.
type ViewFunc func(proc.View)

// Snapshotter provides and restores application state for joins. Both are
// optional.
type Snapshotter struct {
	Snapshot func() []byte
	Restore  func([]byte)
}

// Service tracks the current view and issues view changes.
type Service struct {
	gb   Broadcaster
	ep   *rchannel.Endpoint
	self proc.ID
	snap Snapshotter

	mu      sync.Mutex
	view    proc.View
	viewers []ViewFunc
}

// New creates the membership service with the given initial view
// (init_view in Figure 9). ep is used only for state transfer to joiners.
func New(gb Broadcaster, ep *rchannel.Endpoint, initial proc.View, snap Snapshotter) *Service {
	s := &Service{
		gb:   gb,
		ep:   ep,
		self: ep.Self(),
		snap: snap,
		view: initial.Clone(),
	}
	ep.Handle(StateProto, s.onState)
	return s
}

// View returns the currently installed view.
func (s *Service) View() proc.View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view.Clone()
}

// OnView registers an observer for installed views. The current view is
// delivered immediately.
func (s *Service) OnView(fn ViewFunc) {
	s.mu.Lock()
	s.viewers = append(s.viewers, fn)
	current := s.view.Clone()
	s.mu.Unlock()
	fn(current)
}

// Join requests the addition of p to the group (operation "join" in
// Figure 9). The view change is totally ordered with respect to all
// application traffic.
func (s *Service) Join(p proc.ID) error {
	if err := s.gb.Broadcast(Class, Op{Kind: opJoin, P: p}); err != nil {
		return fmt.Errorf("membership join %s: %w", p, err)
	}
	return nil
}

// Remove requests the exclusion of p (operation "remove"; a process may
// remove itself). Normally invoked by the monitoring component only.
func (s *Service) Remove(p proc.ID) error {
	if err := s.gb.Broadcast(Class, Op{Kind: opRemove, P: p}); err != nil {
		return fmt.Errorf("membership remove %s: %w", p, err)
	}
	return nil
}

// RotatePrimary requests demotion of old from the head of the view to its
// tail, without exclusion (the Figure 8 primary-change at membership level).
func (s *Service) RotatePrimary(old proc.ID) error {
	if err := s.gb.Broadcast(Class, Op{Kind: opRotate, P: old}); err != nil {
		return fmt.Errorf("membership rotate %s: %w", old, err)
	}
	return nil
}

// Apply consumes a delivered view-change operation (wired by the stack to
// gbcast deliveries of Class). Operations are idempotent, so duplicate
// requests from several members converge.
func (s *Service) Apply(op Op) {
	s.mu.Lock()
	old := s.view
	switch op.Kind {
	case opJoin:
		s.view = s.view.Add(op.P)
	case opRemove:
		s.view = s.view.Remove(op.P)
	case opRotate:
		s.view = s.view.RotatePast(op.P)
	}
	changed := s.view.Seq != old.Seq
	installed := s.view.Clone()
	viewers := make([]ViewFunc, len(s.viewers))
	copy(viewers, s.viewers)
	isPrimary := installed.Primary() == s.self
	s.mu.Unlock()

	// State transfer: the primary ships a snapshot to a joiner (the paper's
	// "costly state transfer" of Section 4.3; its cost is what makes
	// exclusion expensive in traditional stacks). Deliberately NOT gated on
	// the view having changed: a process that crashed, lost its state and
	// re-requests a join is already a member — the re-join is a view no-op
	// but the joiner still needs the state, captured here at the join's
	// position in the total order (the Snapshot hook runs on the delivery
	// goroutine, i.e. at a delivery boundary identical at every member).
	if op.Kind == opJoin && isPrimary && op.P != s.self && s.snap.Snapshot != nil {
		_ = s.ep.Send(op.P, StateProto, stateMsg{ViewSeq: installed.Seq, Data: s.snap.Snapshot()})
	}
	if !changed {
		return
	}
	for _, fn := range viewers {
		fn(installed)
	}
}

func (s *Service) onState(_ proc.ID, body any) {
	m, ok := body.(stateMsg)
	if !ok {
		return
	}
	if s.snap.Restore != nil {
		s.snap.Restore(m.Data)
	}
}
