package membership

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/transport"
)

// loopBroadcaster is a fake generic broadcast: it hands every operation
// straight back to a set of services, in broadcast order — i.e. it behaves
// as a perfectly ordered channel, which is exactly the guarantee the real
// stack provides for the membership class.
type loopBroadcaster struct {
	mu   sync.Mutex
	subs []*Service
}

func (l *loopBroadcaster) Broadcast(class string, body any) error {
	op := body.(Op)
	l.mu.Lock()
	subs := append([]*Service(nil), l.subs...)
	l.mu.Unlock()
	for _, s := range subs {
		s.Apply(op)
	}
	return nil
}

func newService(t *testing.T, lb *loopBroadcaster, id proc.ID, network *transport.Network, initial proc.View) *Service {
	t.Helper()
	ep := rchannel.New(network.Endpoint(id))
	s := New(lb, ep, initial, Snapshotter{})
	ep.Start()
	t.Cleanup(ep.Stop)
	lb.mu.Lock()
	lb.subs = append(lb.subs, s)
	lb.mu.Unlock()
	return s
}

func TestViewsIdenticalAcrossMembers(t *testing.T) {
	network := transport.NewNetwork()
	t.Cleanup(network.Shutdown)
	lb := &loopBroadcaster{}
	initial := proc.NewView("a", "b", "c")
	sa := newService(t, lb, "a", network, initial)
	sb := newService(t, lb, "b", network, initial)

	if err := sa.Remove("c"); err != nil {
		t.Fatal(err)
	}
	if err := sb.Join("d"); err != nil {
		t.Fatal(err)
	}
	if err := sa.RotatePrimary("a"); err != nil {
		t.Fatal(err)
	}
	va, vb := sa.View(), sb.View()
	if !va.Equal(vb) {
		t.Fatalf("views differ: %v vs %v", va, vb)
	}
	if va.Seq != 3 {
		t.Fatalf("seq %d after three effective changes", va.Seq)
	}
	if va.Contains("c") || !va.Contains("d") || va.Primary() != "b" {
		t.Fatalf("wrong view %v", va)
	}
}

func TestOnViewObserversAndIdempotence(t *testing.T) {
	network := transport.NewNetwork()
	t.Cleanup(network.Shutdown)
	lb := &loopBroadcaster{}
	s := newService(t, lb, "a", network, proc.NewView("a", "b"))

	var (
		mu    sync.Mutex
		views []proc.View
	)
	s.OnView(func(v proc.View) {
		mu.Lock()
		views = append(views, v)
		mu.Unlock()
	})
	// The current view is delivered immediately on registration.
	mu.Lock()
	if len(views) != 1 || views[0].Seq != 0 {
		t.Fatalf("initial view not delivered: %v", views)
	}
	mu.Unlock()

	_ = s.Join("c")
	_ = s.Join("c") // duplicate: no view change, no callback
	mu.Lock()
	defer mu.Unlock()
	if len(views) != 2 {
		t.Fatalf("observer calls %d, want 2 (duplicate join must be silent)", len(views))
	}
}

func TestStateTransferToJoiner(t *testing.T) {
	network := transport.NewNetwork()
	t.Cleanup(network.Shutdown)
	lb := &loopBroadcaster{}
	initial := proc.NewView("a", "b")

	// a is primary with a snapshot; d is the joiner with a restore hook.
	epA := rchannel.New(network.Endpoint("a"))
	sa := New(lb, epA, initial, Snapshotter{Snapshot: func() []byte { return []byte("snap") }})
	epA.Start()
	t.Cleanup(epA.Stop)
	lb.subs = append(lb.subs, sa)

	restored := make(chan []byte, 1)
	epD := rchannel.New(network.Endpoint("d"))
	sd := New(lb, epD, initial, Snapshotter{Restore: func(b []byte) { restored <- b }})
	epD.Start()
	t.Cleanup(epD.Stop)
	lb.subs = append(lb.subs, sd)

	if err := sa.Join("d"); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-restored:
		if string(b) != "snap" {
			t.Fatalf("restored %q", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("joiner never restored state")
	}
}

// Property: any sequence of operations applied in the same order to two
// services starting from the same view yields identical views — the
// determinism the totally-ordered membership class relies on.
func TestApplyDeterministic(t *testing.T) {
	prop := func(kinds []uint8, targets []uint8) bool {
		network := transport.NewNetwork()
		defer network.Shutdown()
		ep1 := rchannel.New(network.Endpoint("x"))
		ep2 := rchannel.New(network.Endpoint("y"))
		initial := proc.NewView("a", "b", "c")
		s1 := New(nil, ep1, initial, Snapshotter{})
		s2 := New(nil, ep2, initial, Snapshotter{})
		names := proc.IDs("a", "b", "c", "d", "e")
		for i := range kinds {
			if i >= len(targets) {
				break
			}
			op := Op{Kind: kinds[i]%3 + 1, P: names[int(targets[i])%len(names)]}
			s1.Apply(op)
			s2.Apply(op)
		}
		return s1.View().Equal(s2.View())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
