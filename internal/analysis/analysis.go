// Package analysis is the project's static-analysis framework: a small,
// stdlib-only re-implementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic, object facts) plus a package loader
// built on `go list` and the gc export-data importer, so the analyzers run
// offline with zero module dependencies.
//
// The API deliberately mirrors go/analysis: each analyzer is a value with a
// Run(*Pass) hook, a Pass hands the analyzer one type-checked package, and
// diagnostics are (position, message) pairs. Porting an analyzer to the
// real x/tools framework — should the dependency ever be imported — is a
// matter of changing the import path. See DESIGN.md "Static analysis &
// enforced invariants" and cmd/gcsvet for the multichecker binary.
//
// Cross-package knowledge travels as object facts: an analyzer visiting
// package A may attach a fact to one of A's objects (a function found to
// block, a mutex field annotated //gcsvet:lock), and a later pass over a
// package importing A reads the fact back. The driver runs packages in
// dependency order — `go list -deps` already emits them that way — so facts
// are always exported before they are needed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //gcsvet:ignore directives. It must be a valid identifier.
	Name string
	// Doc is the help text shown by `gcsvet -list`. The first line is the
	// summary.
	Doc string
	// Run applies the check to one package. Diagnostics are reported via
	// pass.Report/Reportf; the return value is unused (kept for signature
	// parity with go/analysis).
	Run func(*Pass) (any, error)
}

// String returns the analyzer's name.
func (a *Analyzer) String() string { return a.Name }

// Diagnostic is one finding, positioned in the loaded FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // name of the reporting analyzer
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts  *FactStore
	report func(Diagnostic)
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact attaches fact to obj for later passes of the same
// analyzer (over this or any importing package).
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	p.facts.put(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact returns the fact this analyzer attached to obj, if any.
func (p *Pass) ImportObjectFact(obj types.Object) (any, bool) {
	return p.facts.get(p.Analyzer.Name, obj)
}

// FactStore holds object facts across passes of one driver run. Object
// identity is shared because every package of a run is checked against the
// same FileSet and type universe.
type FactStore struct {
	m map[factKey]any
}

type factKey struct {
	analyzer string
	obj      types.Object
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore { return &FactStore{m: make(map[factKey]any)} }

func (s *FactStore) put(analyzer string, obj types.Object, fact any) {
	s.m[factKey{analyzer, obj}] = fact
}

func (s *FactStore) get(analyzer string, obj types.Object) (any, bool) {
	f, ok := s.m[factKey{analyzer, obj}]
	return f, ok
}

// --- Shared helpers used by the project analyzers -----------------------

// CalleeFunc resolves the *types.Func a call expression invokes (direct
// calls and method calls through selectors). It returns nil for calls
// through function-typed variables, built-ins, and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// PkgPathMatches reports whether path names the package identified by
// suffix: an exact match, or a "/"-boundary suffix match. Fixture packages
// under testdata use the bare suffix ("transport") while the real tree uses
// the full module path ("repro/internal/transport"); both match suffix
// "transport".
func PkgPathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// IsFunc reports whether f is the function or method named name defined in
// the package matched by pkgSuffix (see PkgPathMatches). Methods match on
// the method name regardless of receiver; use IsMethod to pin the receiver
// type.
func IsFunc(f *types.Func, pkgSuffix, name string) bool {
	return f != nil && f.Name() == name && f.Pkg() != nil &&
		PkgPathMatches(f.Pkg().Path(), pkgSuffix)
}

// IsMethod reports whether f is the method recvType.name of the package
// matched by pkgSuffix. recvType is the bare type name, pointer receivers
// included.
func IsMethod(f *types.Func, pkgSuffix, recvType, name string) bool {
	if !IsFunc(f, pkgSuffix, name) {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return recvTypeName(sig.Recv().Type()) == recvType
}

// recvTypeName unwraps a receiver type to its named type's bare name.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	if n, ok := t.(*types.Alias); ok {
		return n.Obj().Name()
	}
	return ""
}

// SortDiagnostics orders diagnostics by file position for stable output.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return ds[i].Message < ds[j].Message
	})
}
