package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path ("repro/internal/transport"); test
	// variants share the base package's path.
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors collects type-checking problems. The tree is expected to
	// be error-free; the driver surfaces these rather than analyzing
	// half-checked code silently.
	TypeErrors []error
	// ForTest is the base package path when this is a test variant (the
	// package compiled with its _test.go files, or an external _test
	// package); empty for plain packages.
	ForTest string
}

// IsTestVariant reports whether the package includes _test.go files.
func (p *Package) IsTestVariant() bool { return p.ForTest != "" }

// Loader loads module packages via `go list` and type-checks them from
// source against gc export data for out-of-module (stdlib) imports. One
// Loader owns one FileSet and one type universe, so object identity holds
// across every package it loads — the property the fact store relies on.
type Loader struct {
	Fset *token.FileSet

	dir     string            // module root for go list invocations
	exports map[string]string // import path -> gc export data file
	gc      types.Importer    // export-data importer (caches internally)

	byPath  map[string]*types.Package // plain packages, importable by path
	forTest map[string]*types.Package // base path -> in-package test variant
}

// NewLoader returns a loader rooted at dir (the module root; "" = cwd).
func NewLoader(dir string) *Loader {
	l := &Loader{
		Fset:    token.NewFileSet(),
		dir:     dir,
		exports: make(map[string]string),
		byPath:  make(map[string]*types.Package),
		forTest: make(map[string]*types.Package),
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return l
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Standard   bool
	ForTest    string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists patterns (plus -deps -test closure) and type-checks every
// in-module package from source, returning them in dependency order.
// Packages with a test variant are returned only once, as the variant —
// it contains every file of the plain package plus the tests — while the
// plain variant still backs imports by other packages.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-test",
		"-json=ImportPath,Dir,Standard,ForTest,Export,GoFiles,ImportMap,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var entries []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		entries = append(entries, &e)
	}

	var pkgs []*Package
	loaded := make(map[string]*Package) // keyed by raw ImportPath (brackets kept)
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.ImportPath, ".test"):
			continue // generated test main
		case e.Module == nil || e.Standard:
			if e.Export != "" {
				l.exports[e.ImportPath] = e.Export
			}
			continue
		}
		pkg, err := l.checkEntry(e)
		if err != nil {
			return nil, err
		}
		loaded[e.ImportPath] = pkg
		pkgs = append(pkgs, pkg)
	}

	// Both a plain package and its test variant are returned: the plain
	// one is what importing packages resolve against (so facts exported
	// from its objects are the ones importers see), the variant adds the
	// _test.go files. The driver dedups the resulting double findings in
	// the shared files by position.
	return pkgs, nil
}

// checkEntry parses and type-checks one module package entry.
func (l *Loader) checkEntry(e *listEntry) (*Package, error) {
	pkgPath := e.ImportPath
	if i := strings.IndexByte(pkgPath, ' '); i >= 0 {
		pkgPath = pkgPath[:i] // "repro/x [repro/x.test]" -> "repro/x"
	}
	var files []*ast.File
	for _, name := range e.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(e.Dir, name)
		}
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	imp := &pkgImporter{l: l, importMap: e.ImportMap, forTest: e.ForTest}
	pkg := &Package{PkgPath: pkgPath, Dir: e.Dir, Files: files, ForTest: e.ForTest}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg.Info = newInfo()
	tpkg, _ := conf.Check(pkgPath, l.Fset, files, pkg.Info) // errors collected above
	pkg.Types = tpkg
	if e.ForTest == "" {
		l.byPath[pkgPath] = tpkg
	} else if e.ForTest == pkgPath {
		l.forTest[pkgPath] = tpkg
	}
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// pkgImporter resolves one package's imports: the entry's ImportMap first
// (an external _test package importing the test variant of its base
// package), then source-checked module packages, then gc export data.
type pkgImporter struct {
	l         *Loader
	importMap map[string]string
	forTest   string
}

func (pi *pkgImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := pi.importMap[path]; ok {
		base := mapped
		if i := strings.IndexByte(base, ' '); i >= 0 {
			base = base[:i]
		}
		if tp := pi.l.forTest[base]; tp != nil {
			return tp, nil
		}
		path = base
	}
	if tp := pi.l.byPath[path]; tp != nil {
		return tp, nil
	}
	return pi.l.gc.Import(path)
}

// --- Fixture loading (analyzertest) --------------------------------------

// LoadFixture loads the fixture package rooted at dir/src/<pkg> together
// with its stub dependencies (sibling directories under dir/src, imported
// by bare path) and returns them in dependency order, fixture last. Stdlib
// imports resolve through gc export data like the module loader's.
func (l *Loader) LoadFixture(dir, pkg string) ([]*Package, error) {
	// Resolve the transitive stdlib imports up front with one `go list`.
	stdlib := make(map[string]bool)
	var scan func(string) error
	seen := make(map[string]bool)
	scan = func(p string) error {
		if seen[p] {
			return nil
		}
		seen[p] = true
		imports, err := fixtureImports(filepath.Join(dir, "src", p))
		if err != nil {
			return err
		}
		for _, imp := range imports {
			if _, err := os.Stat(filepath.Join(dir, "src", imp)); err == nil {
				if err := scan(imp); err != nil {
					return err
				}
			} else {
				stdlib[imp] = true
			}
		}
		return nil
	}
	if err := scan(pkg); err != nil {
		return nil, err
	}
	if err := l.resolveExports(stdlib); err != nil {
		return nil, err
	}

	var pkgs []*Package
	checked := make(map[string]bool)
	var load func(string) error
	load = func(p string) error {
		if checked[p] {
			return nil
		}
		checked[p] = true
		src := filepath.Join(dir, "src", p)
		imports, err := fixtureImports(src)
		if err != nil {
			return err
		}
		for _, imp := range imports {
			if _, err := os.Stat(filepath.Join(dir, "src", imp)); err == nil {
				if err := load(imp); err != nil {
					return err
				}
			}
		}
		pkg, err := l.checkFixtureDir(p, src)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	}
	if err := load(pkg); err != nil {
		return nil, err
	}
	return pkgs, nil
}

// resolveExports fills the export-data map for the given stdlib packages.
func (l *Loader) resolveExports(paths map[string]bool) error {
	var missing []string
	for p := range paths {
		if _, ok := l.exports[p]; !ok && p != "unsafe" {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Export"}, missing...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list (fixture stdlib %v): %v", missing, err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if e.Export != "" {
			l.exports[e.ImportPath] = e.Export
		}
	}
	return nil
}

// fixtureImports returns the import paths of every .go file in dir.
func fixtureImports(dir string) ([]string, error) {
	names, err := fixtureFiles(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []string
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			out = append(out, strings.Trim(imp.Path.Value, `"`))
		}
	}
	return out, nil
}

func fixtureFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".go") {
			names = append(names, filepath.Join(dir, ent.Name()))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture %s: no .go files", dir)
	}
	return names, nil
}

// checkFixtureDir parses and checks all .go files of one fixture directory
// as the package imported by path p.
func (l *Loader) checkFixtureDir(p, dir string) (*Package, error) {
	names, err := fixtureFiles(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{PkgPath: p, Dir: dir, Files: files}
	conf := types.Config{
		Importer: &pkgImporter{l: l},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg.Info = newInfo()
	pkg.Types, _ = conf.Check(p, l.Fset, files, pkg.Info)
	l.byPath[p] = pkg.Types
	return pkg, nil
}
