// Package framepool enforces the transport frame-pool ownership
// discipline: a buffer obtained from transport.GetFrame is owned linearly,
// may be recycled at most once with transport.PutFrame, and must not be
// touched after it was recycled.
//
// The analysis is function-local and straight-line within each block:
// control-flow branches are each scanned with a copy of the ownership
// state, and a variable whose state diverges across branches stops being
// tracked (no false positives from path merges). That is exactly the
// precision the real bug classes need — the frame-interleaving race of
// PR 4 and every pool regression since were straight-line double-Put /
// use-after-Put mistakes, not cross-branch ones.
//
// Reported:
//   - a GetFrame result that is discarded (no variable, no consumer);
//   - a GetFrame-bound variable that is never used again at all (the
//     buffer can neither be recycled nor handed off — a guaranteed leak);
//   - PutFrame called twice on the same variable without reassignment;
//   - any use of a variable after PutFrame(v) in the same block.
//
// Hand-offs are first-class: passing the buffer to a call, sending it on a
// channel, returning it, or storing it transfer ownership and end local
// tracking.
package framepool

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the framepool pass.
var Analyzer = &analysis.Analyzer{
	Name: "framepool",
	Doc:  "check transport.GetFrame/PutFrame ownership (leaks, double-Put, use-after-Put)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body)
				}
				return true
			case *ast.FuncLit:
				// Visited via the enclosing body walk below; still recurse
				// so nested declarations are found.
				return true
			}
			return true
		})
	}
	return nil, nil
}

// state of one tracked frame variable.
type state int

const (
	live state = iota // owned by this function
	put               // recycled: any further use is a bug
)

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	frames := make(map[*types.Var]state)
	scanStmts(pass, body.List, frames)
}

// scanStmts walks one statement list with the given ownership state.
func scanStmts(pass *analysis.Pass, stmts []ast.Stmt, frames map[*types.Var]state) {
	for _, stmt := range stmts {
		scanStmt(pass, stmt, frames)
	}
}

func scanStmt(pass *analysis.Pass, stmt ast.Stmt, frames map[*types.Var]state) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if isGetFrame(pass, call) {
				pass.Reportf(call.Pos(), "result of GetFrame discarded: the frame can never be recycled or consumed")
				return
			}
			if v := putFrameArg(pass, call); v != nil {
				checkUses(pass, call.Args[0], v, frames) // PutFrame(v) where v was already put
				if st, ok := frames[v]; ok && st == put {
					pass.Reportf(call.Pos(), "double PutFrame of %s: the frame was already recycled", v.Name())
				}
				frames[v] = put
				scanFuncLits(pass, s.X)
				return
			}
		}
		checkUses(pass, s.X, nil, frames)
		scanFuncLits(pass, s.X)

	case *ast.AssignStmt:
		// Uses on the RHS first (v = append(v, ...) after Put is a bug),
		// then bindings/reassignments take effect.
		for _, rhs := range s.Rhs {
			checkUses(pass, rhs, nil, frames)
			scanFuncLits(pass, rhs)
		}
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && isGetFrame(pass, call) {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					if v := lhsVar(pass, id); v != nil {
						frames[v] = live
						checkEverUsed(pass, id, v)
						return
					}
				}
			}
		}
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if v := lhsVar(pass, id); v != nil {
					if _, tracked := frames[v]; tracked {
						delete(frames, v) // reassigned: new value, unknown provenance
					}
				}
			} else {
				checkUses(pass, lhs, nil, frames) // a[i] = x reads a
			}
		}

	case *ast.DeferStmt:
		if v := putFrameArg(pass, s.Call); v != nil {
			// defer PutFrame(v): recycles at function end; later uses in
			// this body are fine, but a second Put is still a double-Put.
			if st, ok := frames[v]; ok && st == put {
				pass.Reportf(s.Call.Pos(), "double PutFrame of %s: the frame was already recycled", v.Name())
			}
			// Leave state live: uses before function return are legal.
			return
		}
		checkUses(pass, s.Call, nil, frames)
		handOffCaptured(pass, s.Call, frames)
		scanFuncLits(pass, s.Call)

	case *ast.GoStmt:
		checkUses(pass, s.Call, nil, frames)
		// Ownership moves to the goroutine: stop tracking anything the
		// call (or its closure) captures.
		handOffCaptured(pass, s.Call, frames)
		scanFuncLits(pass, s.Call)

	case *ast.SendStmt:
		checkUses(pass, s.Chan, nil, frames)
		checkUses(pass, s.Value, nil, frames)
		handOffCaptured(pass, s.Value, frames)

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkUses(pass, r, nil, frames)
			handOffCaptured(pass, r, frames)
		}

	case *ast.BlockStmt:
		scanStmts(pass, s.List, frames)

	case *ast.IfStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, frames)
		}
		checkUses(pass, s.Cond, nil, frames)
		branches := [][]ast.Stmt{s.Body.List}
		if s.Else != nil {
			branches = append(branches, []ast.Stmt{s.Else})
		}
		scanBranches(pass, branches, frames)

	case *ast.ForStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, frames)
		}
		if s.Cond != nil {
			checkUses(pass, s.Cond, nil, frames)
		}
		body := s.Body.List
		if s.Post != nil {
			body = append(body[:len(body):len(body)], s.Post)
		}
		scanBranches(pass, [][]ast.Stmt{body}, frames)

	case *ast.RangeStmt:
		checkUses(pass, s.X, nil, frames)
		scanBranches(pass, [][]ast.Stmt{s.Body.List}, frames)

	case *ast.SwitchStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, frames)
		}
		if s.Tag != nil {
			checkUses(pass, s.Tag, nil, frames)
		}
		var branches [][]ast.Stmt
		for _, c := range s.Body.List {
			branches = append(branches, c.(*ast.CaseClause).Body)
		}
		scanBranches(pass, branches, frames)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, frames)
		}
		var branches [][]ast.Stmt
		for _, c := range s.Body.List {
			branches = append(branches, c.(*ast.CaseClause).Body)
		}
		scanBranches(pass, branches, frames)

	case *ast.SelectStmt:
		var branches [][]ast.Stmt
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			body := cc.Body
			if cc.Comm != nil {
				body = append([]ast.Stmt{cc.Comm}, body...)
			}
			branches = append(branches, body)
		}
		scanBranches(pass, branches, frames)

	case *ast.LabeledStmt:
		scanStmt(pass, s.Stmt, frames)

	default:
		// DeclStmt, Branch, Empty, Inc/Dec...: scan expressions generically.
		ast.Inspect(stmt, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				checkUses(pass, e, nil, frames)
				return false
			}
			return true
		})
	}
}

// scanBranches runs each branch on a copy of the state, then merges
// conservatively: a variable whose state changed in any branch becomes
// untracked (the straight-line analysis makes no cross-branch claims).
func scanBranches(pass *analysis.Pass, branches [][]ast.Stmt, frames map[*types.Var]state) {
	type change struct {
		v  *types.Var
		st state
		ok bool
	}
	var changed []change
	for _, b := range branches {
		clone := make(map[*types.Var]state, len(frames))
		for v, st := range frames {
			clone[v] = st
		}
		scanStmts(pass, b, clone)
		for v, st := range frames {
			nst, ok := clone[v]
			if !ok || nst != st {
				changed = append(changed, change{v, nst, ok})
			}
		}
	}
	if len(branches) == 1 {
		// A single branch's outcome is not guaranteed to run (if without
		// else, loop bodies): keep the entry state but untrack divergers.
		for _, c := range changed {
			delete(frames, c.v)
		}
		return
	}
	for _, c := range changed {
		delete(frames, c.v)
	}
}

// checkUses reports reads of already-recycled frame variables inside expr.
// exclude skips one identifier occurrence (the argument of the PutFrame
// call being processed reports double-Put instead).
func checkUses(pass *analysis.Pass, expr ast.Expr, exclude *types.Var, frames map[*types.Var]state) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures are scanned as their own bodies
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v == exclude {
			return true
		}
		if st, tracked := frames[v]; tracked && st == put {
			pass.Reportf(id.Pos(), "use of %s after PutFrame: the frame was already recycled", v.Name())
			delete(frames, v) // report once
		}
		return true
	})
}

// scanFuncLits analyzes closure bodies found inside expr as independent
// functions (their own GetFrame/PutFrame pairs are checked in isolation).
func scanFuncLits(pass *analysis.Pass, expr ast.Expr) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkBody(pass, lit.Body)
			return false
		}
		return true
	})
}

// handOffCaptured stops tracking variables whose ownership the expression
// transfers elsewhere (call argument, closure capture, channel payload,
// return value).
func handOffCaptured(pass *analysis.Pass, expr ast.Expr, frames map[*types.Var]state) {
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
			delete(frames, v)
		}
		return true
	})
}

// checkEverUsed reports a GetFrame binding whose variable has no other
// occurrence in the unit — it can never be recycled or handed off.
func checkEverUsed(pass *analysis.Pass, def *ast.Ident, v *types.Var) {
	for id, obj := range pass.TypesInfo.Uses {
		if obj == v && id != def {
			return
		}
	}
	pass.Reportf(def.Pos(), "frame %s from GetFrame is never recycled or consumed (leak)", v.Name())
}

func isGetFrame(pass *analysis.Pass, call *ast.CallExpr) bool {
	return analysis.IsFunc(analysis.CalleeFunc(pass.TypesInfo, call), "transport", "GetFrame")
}

// putFrameArg returns the variable recycled by a PutFrame(v) call, nil if
// the call is not PutFrame or its argument is not a plain variable.
func putFrameArg(pass *analysis.Pass, call *ast.CallExpr) *types.Var {
	if !analysis.IsFunc(analysis.CalleeFunc(pass.TypesInfo, call), "transport", "PutFrame") {
		return nil
	}
	if len(call.Args) != 1 {
		return nil
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		v, _ := pass.TypesInfo.Uses[id].(*types.Var)
		return v
	}
	return nil
}

// lhsVar resolves an assignment target identifier to its variable (Defs
// for :=, Uses for =).
func lhsVar(pass *analysis.Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	return v
}
