package framepool_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/framepool"
)

func TestFramepool(t *testing.T) {
	analyzertest.Run(t, "testdata", framepool.Analyzer, "a")
}
