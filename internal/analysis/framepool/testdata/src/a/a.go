// Package a exercises the framepool analyzer: each violation carries an
// expectation comment; the legal patterns further down must stay silent.
package a

import "transport"

var global []byte

func discard() {
	transport.GetFrame(64) // want `result of GetFrame discarded`
}

func leak() {
	global = transport.GetFrame(64) // want `frame global from GetFrame is never recycled or consumed`
}

func doublePut() {
	f := transport.GetFrame(64)
	f[0] = 1
	transport.PutFrame(f)
	transport.PutFrame(f) // want `double PutFrame of f`
}

func useAfterPut() {
	f := transport.GetFrame(64)
	transport.PutFrame(f)
	f[0] = 1 // want `use of f after PutFrame`
}

// getUsePut is the sanctioned linear pattern: one Get, uses, one Put.
func getUsePut() {
	f := transport.GetFrame(64)
	f[0] = 1
	transport.PutFrame(f)
}

// deferPut recycles at function end; uses after the defer are legal.
func deferPut() {
	f := transport.GetFrame(64)
	defer transport.PutFrame(f)
	f[0] = 1
}

// handOff transfers ownership: the consumer recycles, not this function.
func handOff(ch chan []byte) []byte {
	f := transport.GetFrame(64)
	ch <- f
	g := transport.GetFrame(64)
	return g
}

// branches diverge: the analyzer makes no cross-branch claims, so the
// conditional Put below is untracked afterwards — silent by design.
func branchy(cond bool) {
	f := transport.GetFrame(64)
	if cond {
		transport.PutFrame(f)
	}
	_ = f
}
