package a

import "transport"

// ignored proves the escape hatch: the discard below is a violation, but
// the reasoned gcsvet:ignore suppresses it — no want, and the test fails
// on any unexpected diagnostic, so silence here IS the assertion.
func ignored() {
	//gcsvet:ignore framepool -- fixture: intentional discard proving the reasoned escape suppresses
	transport.GetFrame(64)
}

// ignoredOtherAnalyzer names a different analyzer, so it does NOT
// suppress the framepool finding.
func ignoredOtherAnalyzer() {
	//gcsvet:ignore wallclock -- fixture: names the wrong analyzer on purpose
	transport.GetFrame(64) // want `result of GetFrame discarded`
}
