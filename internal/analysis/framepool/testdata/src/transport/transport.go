// Package transport is a fixture stub of the real frame pool: the
// analyzer matches GetFrame/PutFrame by package suffix and name, so only
// the signatures matter here.
package transport

func GetFrame(n int) []byte { return make([]byte, n) }

func PutFrame(b []byte) {}
