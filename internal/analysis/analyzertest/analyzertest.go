// Package analyzertest runs a gcsvet analyzer over a fixture tree and
// checks its diagnostics against // want comments, in the style of
// golang.org/x/tools' analysistest (rebuilt here on the in-tree framework
// because the module vendors no external dependencies).
//
// A fixture lives under <testdata>/src/<pkg>/ and is loaded by bare import
// path: sibling directories under src/ back the fixture's non-stdlib
// imports as stub packages. Every line expecting a diagnostic carries a
// trailing comment:
//
//	tr.GetFrame(64) // want `frame from GetFrame is never released`
//
// Each quoted string is an anchored-nowhere regexp that must match the
// message of a diagnostic reported on that line; every diagnostic must be
// claimed by a want and every want must fire, or the test fails. The
// driver's //gcsvet:ignore suppression runs before matching, so fixtures
// can also pin down the escape hatch: a properly ignored violation needs
// no want, and a reasonless ignore wants the driver's own complaint.
package analyzertest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// want is one expectation: a regexp that must match a diagnostic at pos.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package under testdata and applies the analyzer,
// failing t on any mismatch between reported diagnostics and // want
// expectations. Fixture type errors fail the test immediately: a fixture
// that does not compile tests nothing.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, testdata, a, pkg)
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	l := analysis.NewLoader("")
	loaded, err := l.LoadFixture(testdata, pkg)
	if err != nil {
		t.Fatalf("load fixture %s: %v", pkg, err)
	}
	res, err := analysis.Run(l, loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, pkg, err)
	}
	for _, te := range res.TypeErrors {
		t.Errorf("fixture %s: type error: %v", pkg, te)
	}
	if len(res.TypeErrors) > 0 {
		t.FailNow()
	}

	wants := collectWants(t, l.Fset, loaded)
	for _, d := range res.Diagnostics {
		pos := l.Fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched want on the diagnostic's line whose
// pattern matches the message.
func claim(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants extracts the // want expectations from every fixture file.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					quoted := wantRe.FindAllString(rest, -1)
					if len(quoted) == 0 {
						t.Fatalf("%s:%d: malformed want: no quoted pattern in %q", pos.Filename, pos.Line, rest)
					}
					for _, q := range quoted {
						pat, err := unquotePattern(q)
						if err != nil {
							t.Fatalf("%s:%d: malformed want %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}
	return wants
}

func unquotePattern(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	s, err := strconv.Unquote(q)
	if err != nil {
		return "", fmt.Errorf("unquote: %w", err)
	}
	return s, nil
}
