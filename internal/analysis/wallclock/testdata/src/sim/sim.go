// Package sim exercises the wallclock analyzer inside a deterministic
// package (path suffix "sim"): direct wall-clock reads are violations,
// routing through a swappable clock function is the sanctioned seam.
package sim

import "time"

// clock is the seam: reading the FUNCTION VALUE is not a call, so the
// seam itself needs no escape — only calling time.Now directly does.
var clock = time.Now

type span struct{ start time.Time }

func stamp() int64 {
	return time.Now().UnixNano() // want `wall clock \(time.Now\) forbidden in deterministic package sim`
}

func age(s span) time.Duration {
	return time.Since(s.start) // want `wall clock \(time.Since\) forbidden in deterministic package sim`
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `wall clock \(time.Until\) forbidden in deterministic package sim`
}

// seamStamp is the sanctioned pattern: every read goes through the seam,
// which a deterministic run swaps for virtual time.
func seamStamp() int64 {
	return clock().UnixNano()
}

// watchdog proves the escape hatch: a real-time deadline over real
// concurrency is suppressed with a reason — silence IS the assertion.
func watchdog() time.Time {
	//gcsvet:ignore wallclock -- fixture: watchdog deadline over real goroutines, not simulated time
	return time.Now().Add(time.Second)
}
