// Package seeded exercises the rand-seeding rule, which applies in EVERY
// package, not just the deterministic ones: a time-seeded source cannot be
// reproduced from a printed seed.
package seeded

import (
	"math/rand"
	"time"
)

func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand source seeded from the wall clock`
}

// fixedSeeded is the sanctioned pattern: the seed is a value that can be
// printed and replayed.
func fixedSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// wallRead is legal here: this package is not a deterministic harness, so
// plain time.Now use is out of scope for wallclock.
func wallRead() time.Time {
	return time.Now()
}
