// Package wallclock enforces deterministic time in the deterministic
// harnesses: internal/sim and internal/chaostest must not read the wall
// clock directly — both exist to make runs reproducible from a seed, and a
// time.Now() buried in a helper silently couples a "deterministic" run to
// the scheduler. They must route through their harness clock seam (a
// swappable clock function, itself annotated with a //gcsvet:ignore and a
// reason).
//
// Reported:
//   - any use of time.Now, time.Since, or time.Until in a package whose
//     last path segment is sim or chaostest (test files included — the
//     seeded chaos tests are exactly where wall-clock reads are most
//     tempting);
//   - anywhere in the tree: seeding a rand source from the wall clock
//     (rand.NewSource(time.Now()...), rand.NewPCG with a time.Now
//     argument). A time-seeded run cannot be reproduced from its printed
//     seed, which defeats the CHAOS_SEED contract.
package wallclock

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the wallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "forbid wall-clock reads in deterministic packages (internal/sim, internal/chaostest) and time-seeded rand sources",
	Run:  run,
}

// deterministic reports whether pkgPath names a package that must not read
// the wall clock.
func deterministic(pkgPath string) bool {
	return analysis.PkgPathMatches(pkgPath, "sim") ||
		analysis.PkgPathMatches(pkgPath, "chaostest")
}

func run(pass *analysis.Pass) (any, error) {
	banAll := pass.Pkg != nil && deterministic(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := analysis.CalleeFunc(pass.TypesInfo, call)
			if f == nil {
				return true
			}
			if banAll && (analysis.IsFunc(f, "time", "Now") ||
				analysis.IsFunc(f, "time", "Since") ||
				analysis.IsFunc(f, "time", "Until")) {
				pass.Reportf(call.Pos(), "wall clock (time.%s) forbidden in deterministic package %s: use the harness clock seam", f.Name(), pass.Pkg.Name())
			}
			if analysis.IsFunc(f, "rand", "NewSource") || analysis.IsFunc(f, "rand", "NewPCG") {
				for _, arg := range call.Args {
					if usesWallClock(pass, arg) {
						pass.Reportf(arg.Pos(), "rand source seeded from the wall clock: the run cannot be reproduced from a printed seed")
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// usesWallClock reports whether expr contains a time.Now call.
func usesWallClock(pass *analysis.Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if analysis.IsFunc(analysis.CalleeFunc(pass.TypesInfo, call), "time", "Now") {
				found = true
			}
		}
		return !found
	})
	return found
}
