package wallclock_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analyzertest.Run(t, "testdata", wallclock.Analyzer, "sim", "seeded")
}
