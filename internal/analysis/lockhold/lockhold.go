// Package lockhold enforces the project's lock-hold discipline: no
// blocking operation while holding a mutex annotated //gcsvet:lock.
//
// Guarded locks are declared at their field (or package variable) with a
// comment:
//
//	// deliverMu is held across one delivered command ...
//	deliverMu sync.Mutex //gcsvet:lock deliver
//
// The name after the directive is the lock's display name in diagnostics
// (defaults to the field name). Functions whose calls must not happen
// under a guarded lock carry //gcsvet:blocking in their doc comment —
// Engine.Sync (an fsync), for example. Both annotations travel across
// packages as object facts, so a package importing storage knows
// Engine.Sync blocks without any analyzer configuration.
//
// While a guarded lock is held (between x.Lock() and x.Unlock() in
// straight-line order; defer x.Unlock() holds to function end), the
// analyzer reports:
//   - calls to //gcsvet:blocking functions and to the built-in blocking
//     set (sync.WaitGroup.Wait, sync.Cond.Wait, time.Sleep, net.Dial);
//   - channel sends and receives;
//   - select statements without a default clause.
//
// The analysis is intra-procedural: a helper that blocks must itself be
// annotated //gcsvet:blocking for its callers to be checked. Closure
// bodies are not assumed to run under the enclosing lock (they usually run
// on another goroutine).
package lockhold

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockhold pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "check that no blocking operation runs while holding a //gcsvet:lock-annotated mutex",
	Run:  run,
}

// lockFact marks a mutex field/var as guarded; the value is the display
// name from the annotation.
type lockFact struct{ name string }

// blockingFact marks a function as blocking.
type blockingFact struct{}

func run(pass *analysis.Pass) (any, error) {
	exportAnnotations(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				held := make(map[*types.Var]string)
				scanStmts(pass, body.List, held)
			}
			return true
		})
	}
	return nil, nil
}

// exportAnnotations records this package's //gcsvet:lock fields and
// //gcsvet:blocking functions as facts for later passes.
func exportAnnotations(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.Field:
				if name, ok := lockAnnotation(d.Doc, d.Comment); ok {
					for _, id := range d.Names {
						if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
							display := name
							if display == "" {
								display = id.Name
							}
							pass.ExportObjectFact(v, lockFact{name: display})
						}
					}
					// Interface methods annotated //gcsvet:blocking are
					// fields of the interface type; handled below.
				}
				if hasDirective(d.Doc, d.Comment, "gcsvet:blocking") {
					for _, id := range d.Names {
						if f, ok := pass.TypesInfo.Defs[id].(*types.Func); ok {
							pass.ExportObjectFact(f, blockingFact{})
						}
					}
				}
			case *ast.FuncDecl:
				if hasDirective(d.Doc, nil, "gcsvet:blocking") {
					if f, ok := pass.TypesInfo.Defs[d.Name].(*types.Func); ok {
						pass.ExportObjectFact(f, blockingFact{})
					}
				}
			case *ast.ValueSpec:
				if name, ok := lockAnnotation(d.Doc, d.Comment); ok {
					for _, id := range d.Names {
						if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
							display := name
							if display == "" {
								display = id.Name
							}
							pass.ExportObjectFact(v, lockFact{name: display})
						}
					}
				}
			}
			return true
		})
	}
}

func lockAnnotation(groups ...*ast.CommentGroup) (string, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "gcsvet:lock"); ok {
				return strings.TrimSpace(rest), true
			}
		}
	}
	return "", false
}

func hasDirective(doc, line *ast.CommentGroup, directive string) bool {
	for _, g := range []*ast.CommentGroup{doc, line} {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), directive) {
				return true
			}
		}
	}
	return false
}

// scanStmts walks a statement list tracking which guarded locks are held.
func scanStmts(pass *analysis.Pass, stmts []ast.Stmt, held map[*types.Var]string) {
	for _, stmt := range stmts {
		scanStmt(pass, stmt, held)
	}
}

func scanStmt(pass *analysis.Pass, stmt ast.Stmt, held map[*types.Var]string) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if v, op := lockOp(pass, s.X); v != nil {
			switch op {
			case "Lock", "RLock":
				held[v] = lockName(pass, v)
			case "Unlock", "RUnlock":
				delete(held, v)
			}
			return
		}
		checkExpr(pass, s.X, held)

	case *ast.DeferStmt:
		if v, op := lockOp(pass, s.Call); v != nil && (op == "Unlock" || op == "RUnlock") {
			return // released at return; the lock stays held for this body
		}
		// The deferred call itself runs at return — with every
		// defer-released lock still notionally held, but checking that
		// precisely needs ordering; skip (shutdown paths dominate here).

	case *ast.BlockStmt:
		scanStmts(pass, s.List, held)

	case *ast.IfStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, held)
		}
		checkExpr(pass, s.Cond, held)
		scanBranch(pass, s.Body.List, held)
		if s.Else != nil {
			scanBranch(pass, []ast.Stmt{s.Else}, held)
		}

	case *ast.ForStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, held)
		}
		if s.Cond != nil {
			checkExpr(pass, s.Cond, held)
		}
		body := s.Body.List
		if s.Post != nil {
			body = append(body[:len(body):len(body)], s.Post)
		}
		scanBranch(pass, body, held)

	case *ast.RangeStmt:
		checkExpr(pass, s.X, held)
		scanBranch(pass, s.Body.List, held)

	case *ast.SwitchStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, held)
		}
		if s.Tag != nil {
			checkExpr(pass, s.Tag, held)
		}
		for _, c := range s.Body.List {
			scanBranch(pass, c.(*ast.CaseClause).Body, held)
		}

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, held)
		}
		for _, c := range s.Body.List {
			scanBranch(pass, c.(*ast.CaseClause).Body, held)
		}

	case *ast.SelectStmt:
		if len(held) > 0 && !hasDefault(s) {
			pass.Reportf(s.Pos(), "blocking select while holding %s", heldNames(held))
		}
		for _, c := range s.Body.List {
			scanBranch(pass, c.(*ast.CommClause).Body, held)
		}

	case *ast.SendStmt:
		if len(held) > 0 {
			pass.Reportf(s.Arrow, "channel send while holding %s", heldNames(held))
		}

	case *ast.GoStmt:
		// The goroutine does not inherit the lock; its body is scanned as
		// part of the enclosing file walk only if it is a FuncDecl — skip.

	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			checkExpr(pass, rhs, held)
		}

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkExpr(pass, r, held)
		}

	case *ast.LabeledStmt:
		scanStmt(pass, s.Stmt, held)

	default:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				checkExpr(pass, e, held)
				return false
			}
			return true
		})
	}
}

// scanBranch runs a nested statement list with a copy of the held set and
// merges lock-state changes back conservatively: a lock released (or
// acquired) in only some branch stops being tracked precisely, so no
// false positives arise from path merges. A branch that cannot fall
// through (return, panic, break/continue/goto as its last statement) does
// not merge at all — the common "unlock and bail" early-exit leaves the
// lock tracked on the surviving path.
func scanBranch(pass *analysis.Pass, stmts []ast.Stmt, held map[*types.Var]string) {
	clone := make(map[*types.Var]string, len(held))
	for v, n := range held {
		clone[v] = n
	}
	scanStmts(pass, stmts, clone)
	if terminates(stmts) {
		return
	}
	for v := range held {
		if _, still := clone[v]; !still {
			delete(held, v) // released somewhere inside: assume released
		}
	}
}

// terminates reports whether a statement list cannot fall through to the
// code after its enclosing branch: it ends in return, a branching jump, or
// a panic call. Good enough for the "unlock and bail" idiom; anything
// subtler merges conservatively.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

// checkExpr reports blocking operations inside an expression evaluated
// while locks are held. Closure bodies are skipped.
func checkExpr(pass *analysis.Pass, expr ast.Expr, held map[*types.Var]string) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if e.Op.String() == "<-" {
				pass.Reportf(e.Pos(), "channel receive while holding %s", heldNames(held))
			}
		case *ast.CallExpr:
			f := analysis.CalleeFunc(pass.TypesInfo, e)
			if f == nil {
				return true
			}
			if isBlocking(pass, f) {
				pass.Reportf(e.Pos(), "call to blocking %s while holding %s", f.Name(), heldNames(held))
			}
		}
		return true
	})
}

// isBlocking reports whether f carries a blocking fact or belongs to the
// built-in blocking set.
func isBlocking(pass *analysis.Pass, f *types.Func) bool {
	if fact, ok := pass.ImportObjectFact(f); ok {
		if _, ok := fact.(blockingFact); ok {
			return true
		}
	}
	switch {
	case analysis.IsMethod(f, "sync", "WaitGroup", "Wait"),
		analysis.IsMethod(f, "sync", "Cond", "Wait"),
		analysis.IsFunc(f, "time", "Sleep"),
		analysis.IsFunc(f, "net", "Dial"),
		analysis.IsFunc(f, "net", "DialTimeout"):
		return true
	}
	return false
}

// lockOp matches expr as a (R)Lock/(R)Unlock call on a guarded lock and
// returns the lock variable and operation.
func lockOp(pass *analysis.Pass, expr ast.Expr) (*types.Var, string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, ""
	}
	v := lockVar(pass, sel.X)
	if v == nil {
		return nil, ""
	}
	if _, guarded := guardFact(pass, v); !guarded {
		return nil, ""
	}
	return v, op
}

// lockVar resolves the receiver expression of a Lock call to the mutex
// field/variable object (p.deliverMu, mu, s.inner.mu).
func lockVar(pass *analysis.Pass, expr ast.Expr) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		v, _ := pass.TypesInfo.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[e]; sel != nil {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
		v, _ := pass.TypesInfo.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

func guardFact(pass *analysis.Pass, v *types.Var) (string, bool) {
	f, ok := pass.ImportObjectFact(v)
	if !ok {
		return "", false
	}
	lf, ok := f.(lockFact)
	if !ok {
		return "", false
	}
	return lf.name, true
}

func lockName(pass *analysis.Pass, v *types.Var) string {
	if name, ok := guardFact(pass, v); ok && name != "" {
		return name
	}
	return v.Name()
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

func heldNames(held map[*types.Var]string) string {
	var names []string
	for _, n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 1 {
		return "lock " + names[0]
	}
	return "locks " + strings.Join(names, ", ")
}
