// Package a exercises the lockhold analyzer: blocking operations under an
// annotated lock are violations; the same operations under an unannotated
// lock, after Unlock, or on a terminated early-exit path stay silent.
package a

import (
	"sync"
	"time"

	"storageeng"
)

type replica struct {
	mu  sync.Mutex //gcsvet:lock deliver
	eng storageeng.Engine
	ch  chan int
}

//gcsvet:blocking
func flush() {}

func (r *replica) syncUnderLock() {
	r.mu.Lock()
	r.eng.Sync() // want `call to blocking Sync while holding lock deliver`
	r.mu.Unlock()
}

func (r *replica) sendUnderLock() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ch <- 1 // want `channel send while holding lock deliver`
}

func (r *replica) receiveUnderLock() {
	r.mu.Lock()
	<-r.ch // want `channel receive while holding lock deliver`
	r.mu.Unlock()
}

func (r *replica) selectUnderLock() {
	r.mu.Lock()
	defer r.mu.Unlock()
	select { // want `blocking select while holding lock deliver`
	case <-r.ch:
	}
}

func (r *replica) sleepUnderLock() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to blocking Sleep while holding lock deliver`
	r.mu.Unlock()
}

func (r *replica) annotatedHelperUnderLock() {
	r.mu.Lock()
	defer r.mu.Unlock()
	flush() // want `call to blocking flush while holding lock deliver`
}

// earlyExit pins the terminating-branch rule: the unlock-and-return arm
// does not merge, so the lock is still known held at the send.
func (r *replica) earlyExit(cond bool) {
	r.mu.Lock()
	if cond {
		r.mu.Unlock()
		return
	}
	r.ch <- 1 // want `channel send while holding lock deliver`
	r.mu.Unlock()
}

// unlockFirst is the sanctioned shape: drop the lock, then block.
func (r *replica) unlockFirst() {
	r.mu.Lock()
	r.mu.Unlock()
	r.ch <- 1
	r.eng.Sync()
}

// nonBlockingSelect has a default clause, so it cannot block.
func (r *replica) nonBlockingSelect() {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case <-r.ch:
	default:
	}
}
