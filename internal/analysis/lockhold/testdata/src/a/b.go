package a

import (
	"sync"
	"time"
)

// plain has no //gcsvet:lock annotation: lockhold makes no claims about
// unannotated mutexes, so blocking under one stays silent.
type plain struct {
	mu sync.Mutex
	ch chan int
}

func (p *plain) unguarded() {
	p.mu.Lock()
	p.ch <- 1
	p.mu.Unlock()
}

// globalMu checks the package-variable annotation form.
var globalMu sync.Mutex //gcsvet:lock global

func underGlobal() {
	globalMu.Lock()
	time.Sleep(time.Millisecond) // want `call to blocking Sleep while holding lock global`
	globalMu.Unlock()
}

// handshake proves the escape hatch: the send is a violation, but the
// reasoned gcsvet:ignore suppresses it — silence IS the assertion.
func (r *replica) handshake() {
	r.mu.Lock()
	//gcsvet:ignore lockhold -- fixture: fresh buffered channel nobody else holds, the send cannot block
	r.ch <- 1
	r.mu.Unlock()
}
