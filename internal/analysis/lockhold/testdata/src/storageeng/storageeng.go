// Package storageeng is a fixture stub standing in for the real storage
// package: its interface method carries the //gcsvet:blocking annotation,
// so the fixture proves the fact travels across package boundaries.
package storageeng

type Engine interface {
	//gcsvet:blocking
	Sync() error
}
