package lockhold_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	analyzertest.Run(t, "testdata", lockhold.Analyzer, "a")
}
