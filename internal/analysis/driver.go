package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The //gcsvet:ignore escape hatch. A finding may be suppressed by a
// comment on the same line or the line directly above it:
//
//	//gcsvet:ignore lockhold -- fresh buffered channel, send cannot block
//	//gcsvet:ignore -- reason applying to every analyzer on this line
//
// The reason after " -- " is MANDATORY: an ignore without one is itself
// reported (analyzer name "gcsvet"), so every suppression in the tree
// documents why the invariant does not apply. Multiple analyzers may be
// named, comma- or space-separated; naming none suppresses all analyzers
// at that line.
const ignorePrefix = "gcsvet:ignore"

// ignoreDirective is one parsed //gcsvet:ignore comment.
type ignoreDirective struct {
	pos       token.Pos
	analyzers []string // empty = all
	reason    string
	used      bool
}

func (d *ignoreDirective) matches(analyzer string) bool {
	if len(d.analyzers) == 0 {
		return true
	}
	for _, a := range d.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// parseIgnores indexes every gcsvet:ignore directive of a file by line.
// Malformed directives (no " -- reason") are returned as diagnostics.
func parseIgnores(fset *token.FileSet, file *ast.File) (map[int]*ignoreDirective, []Diagnostic) {
	var bad []Diagnostic
	idx := make(map[int]*ignoreDirective)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, ignorePrefix)
			names, reason, ok := strings.Cut(rest, "--")
			reason = strings.TrimSpace(reason)
			if !ok || reason == "" {
				bad = append(bad, Diagnostic{
					Pos:      c.Pos(),
					Message:  `gcsvet:ignore requires a reason: "//gcsvet:ignore [analyzers] -- why the invariant does not apply here"`,
					Analyzer: "gcsvet",
				})
				continue
			}
			d := &ignoreDirective{pos: c.Pos(), reason: reason}
			for _, n := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
				d.analyzers = append(d.analyzers, n)
			}
			idx[fset.Position(c.Pos()).Line] = d
		}
	}
	return idx, bad
}

// Result is the outcome of one driver run.
type Result struct {
	// Diagnostics that survived ignore filtering, in file/position order.
	Diagnostics []Diagnostic
	// TypeErrors aggregates type-checking failures across packages; a
	// non-empty slice means analysis ran on incomplete information.
	TypeErrors []error
}

// Run applies every analyzer to every package, in the given package order
// (dependency order from the loader, so object facts flow from imported to
// importing packages), filters findings through //gcsvet:ignore
// directives, and returns the surviving diagnostics sorted by position.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	res := &Result{}
	facts := NewFactStore()

	// Index ignore directives once per file; malformed ones are findings.
	ignores := make(map[string]map[int]*ignoreDirective) // filename -> line -> directive
	for _, pkg := range pkgs {
		res.TypeErrors = append(res.TypeErrors, pkg.TypeErrors...)
		for _, f := range pkg.Files {
			idx, bad := parseIgnores(l.Fset, f)
			res.Diagnostics = append(res.Diagnostics, bad...)
			name := l.Fset.Position(f.Pos()).Filename
			ignores[name] = idx
		}
	}

	seen := make(map[string]bool) // dedup key: position + analyzer + message
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      l.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				facts:     facts,
			}
			pass.report = func(d Diagnostic) {
				p := l.Fset.Position(d.Pos)
				if idx := ignores[p.Filename]; idx != nil {
					if dir := idx[p.Line]; dir != nil && dir.matches(d.Analyzer) {
						dir.used = true
						return
					}
					if dir := idx[p.Line-1]; dir != nil && dir.matches(d.Analyzer) {
						dir.used = true
						return
					}
				}
				key := fmt.Sprintf("%s:%d:%d:%s:%s", p.Filename, p.Line, p.Column, d.Analyzer, d.Message)
				if seen[key] {
					return
				}
				seen[key] = true
				res.Diagnostics = append(res.Diagnostics, d)
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	SortDiagnostics(l.Fset, res.Diagnostics)
	return res, nil
}
