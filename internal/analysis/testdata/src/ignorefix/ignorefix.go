// Package ignorefix backs the driver's ignore-directive tests: one
// unsuppressed finding, one suppressed by a reasoned ignore, one under a
// reasonless ignore (which suppresses nothing and is itself a finding).
package ignorefix

func FlagUnsuppressed() {}

//gcsvet:ignore probe -- test: reasoned ignores suppress matching analyzers
func FlagSuppressed() {}

//gcsvet:ignore probe
func FlagReasonless() {}

//gcsvet:ignore otheranalyzer -- test: an ignore naming another analyzer must not suppress probe
func FlagWrongName() {}
