package analysis_test

import (
	"go/ast"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestIgnoreDirectives pins the escape-hatch contract: a reasoned
// //gcsvet:ignore suppresses exactly the named analyzer on its line (or
// the line below), a reasonless one suppresses nothing and is itself
// reported under the analyzer name "gcsvet".
func TestIgnoreDirectives(t *testing.T) {
	l := analysis.NewLoader("")
	pkgs, err := l.LoadFixture("testdata", "ignorefix")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	probe := &analysis.Analyzer{
		Name: "probe",
		Doc:  "reports every function whose name starts with Flag",
		Run: func(p *analysis.Pass) (any, error) {
			for _, f := range p.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Flag") {
						p.Reportf(fd.Pos(), "flagged function %s", fd.Name.Name)
					}
				}
			}
			return nil, nil
		},
	}
	res, err := analysis.Run(l, pkgs, []*analysis.Analyzer{probe})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.TypeErrors) > 0 {
		t.Fatalf("fixture type errors: %v", res.TypeErrors)
	}

	type finding struct{ analyzer, fragment string }
	expect := []finding{
		{"gcsvet", "requires a reason"},
		{"probe", "FlagUnsuppressed"},
		{"probe", "FlagReasonless"},
		{"probe", "FlagWrongName"},
	}
	if len(res.Diagnostics) != len(expect) {
		for _, d := range res.Diagnostics {
			t.Logf("got: %s: %s", d.Analyzer, d.Message)
		}
		t.Fatalf("got %d diagnostics, want %d", len(res.Diagnostics), len(expect))
	}
	for _, want := range expect {
		found := false
		for _, d := range res.Diagnostics {
			if d.Analyzer == want.analyzer && strings.Contains(d.Message, want.fragment) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing %s diagnostic containing %q", want.analyzer, want.fragment)
		}
	}
	for _, d := range res.Diagnostics {
		if strings.Contains(d.Message, "FlagSuppressed") {
			t.Errorf("reasoned ignore failed to suppress: %s", d.Message)
		}
	}
}
