// Package a exercises the metricname analyzer: constant gcs_ snake_case
// names with kind-appropriate suffixes pass; everything else is reported.
package a

import "telemetry"

const okName = "gcs_const_named_total"

var computed = "gcs_runtime_built"

func register(r *telemetry.Registry, s telemetry.Scope) {
	// Legal registrations: literal, named constant, constant concatenation,
	// scope method, gauge with the _seconds unit suffix.
	r.Counter("gcs_transport_frames_total", "frames moved")
	r.Counter(okName, "named constant is still compile-time")
	r.Counter("gcs_"+"concat_parts"+"_total", "constant concatenation")
	r.Histogram("gcs_rpc_latency_seconds", "request latency")
	r.Gauge("gcs_replica_commit_index", "commit index")
	r.Gauge("gcs_sync_last_pull_age_seconds", "unit suffix is legal on a gauge")
	s.Counter("gcs_scope_events_total", "scoped registration")

	// Violations.
	r.Counter(computed, "x")                    // want `must be a compile-time constant`
	r.Counter("transport_frames_total", "x")    // want `must match gcs_<layer>_<metric>`
	r.Counter("gcs_Frames_total", "x")          // want `must match gcs_<layer>_<metric>`
	r.Counter("gcs_total", "x")                 // want `must match gcs_<layer>_<metric>`
	r.Counter("gcs_transport_frames", "x")      // want `counter "gcs_transport_frames" must end in _total`
	r.CounterFunc("gcs_engine_syncs", "x", nil) // want `counter "gcs_engine_syncs" must end in _total`
	r.Histogram("gcs_rpc_latency_ms", "x")      // want `histogram "gcs_rpc_latency_ms" must end in _seconds`
	r.Gauge("gcs_replica_commands_total", "x")  // want `gauge "gcs_replica_commands_total" must not end in _total`
	s.Gauge("gcs_scope_backlog_sum", "x")       // want `must not end in _sum`
	r.Gauge("gcs_rpc_latency_seconds", "x")     // want `one name, one kind`
}
