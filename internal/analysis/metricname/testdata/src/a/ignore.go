package a

import "telemetry"

// legacy proves the escape hatch: the non-conforming name is suppressed by
// a reasoned gcsvet:ignore — silence IS the assertion.
func legacy(r *telemetry.Registry) {
	//gcsvet:ignore metricname -- fixture: legacy dashboard name kept for scrape continuity
	r.Counter("frames_moved", "pre-convention name")
}
