// Package telemetry is a fixture stub of the real registry: the analyzer
// matches registration methods by receiver type and name, so only the
// shapes matter here. The stub itself is never analyzed — metricname
// skips the telemetry-defining package.
package telemetry

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

type Registry struct{}

func (r *Registry) Counter(name, help string) *Counter { return nil }

func (r *Registry) Gauge(name, help string) *Gauge { return nil }

func (r *Registry) Histogram(name, help string) *Histogram { return nil }

func (r *Registry) CounterFunc(name, help string, fn func() uint64) {}

func (r *Registry) GaugeFunc(name, help string, fn func() float64) {}

type Scope struct{ r *Registry }

func (s Scope) Counter(name, help string) *Counter { return nil }

func (s Scope) Gauge(name, help string) *Gauge { return nil }
