// Package metricname enforces the telemetry naming scheme (DESIGN.md
// "Observability"): every registration through telemetry.Registry or
// telemetry.Scope uses a compile-time constant gcs_<layer>_* snake_case
// name with the kind-appropriate suffix, and no name is registered under
// two different kinds.
//
// Rules:
//   - the name argument of Counter/Gauge/Histogram/CounterFunc/GaugeFunc
//     must be a constant string (literal or named constant) — scrape
//     surfaces are greppable only when names are static;
//   - names match ^gcs_[a-z0-9]+(_[a-z0-9]+)+$ (gcs_ prefix, lower
//     snake_case, at least a layer and a metric segment);
//   - counters end in _total; histograms end in _seconds; gauges must not
//     use the structural suffixes _total/_count/_sum/_bucket (the unit
//     suffix _seconds is legal on a gauge: a last-observed duration);
//   - one name, one kind: registering gcs_x as a Counter in one place and
//     a Gauge in another is reported at the second site (the registry
//     silently refuses such re-registrations at runtime — the analyzer
//     surfaces them at review time instead of as a missing series in
//     production).
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"strings"
	"sync"

	"repro/internal/analysis"
)

// Analyzer is the process-wide metricname pass (shared cross-package
// duplicate state; tests use New for isolation).
var Analyzer = New()

var namePattern = regexp.MustCompile(`^gcs_[a-z0-9]+(_[a-z0-9]+)+$`)

// kindOf maps registration method name to exposition kind.
var kindOf = map[string]string{
	"Counter":     "counter",
	"CounterFunc": "counter",
	"Gauge":       "gauge",
	"GaugeFunc":   "gauge",
	"Histogram":   "histogram",
}

// New returns a fresh metricname analyzer with its own cross-package
// registration table.
func New() *analysis.Analyzer {
	c := &checker{registered: make(map[string]*registration)}
	return &analysis.Analyzer{
		Name: "metricname",
		Doc:  "check telemetry metric names (gcs_ prefix, snake_case, kind suffixes, one kind per name)",
		Run:  c.run,
	}
}

type registration struct {
	kind string
	pos  string // file:line of first sighting, for the duplicate message
}

type checker struct {
	mu         sync.Mutex
	registered map[string]*registration
}

func (c *checker) run(pass *analysis.Pass) (any, error) {
	// The registry's own package is plumbing, not registration sites: its
	// Scope methods forward computed names, and its tests deliberately
	// register invalid and kind-conflicting names to exercise the runtime
	// refusal paths.
	if pass.Pkg != nil && analysis.PkgPathMatches(pass.Pkg.Path(), "telemetry") {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := analysis.CalleeFunc(pass.TypesInfo, call)
			if f == nil {
				return true
			}
			kind, ok := kindOf[f.Name()]
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !analysis.IsMethod(f, "telemetry", "Registry", f.Name()) &&
				!analysis.IsMethod(f, "telemetry", "Scope", f.Name()) {
				return true
			}
			c.checkName(pass, call.Args[0], kind)
			return true
		})
	}
	return nil, nil
}

func (c *checker) checkName(pass *analysis.Pass, arg ast.Expr, kind string) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "metric name must be a compile-time constant string (literal or named constant), not a computed value")
		return
	}
	name := constant.StringVal(tv.Value)
	if !namePattern.MatchString(name) {
		pass.Reportf(arg.Pos(), "metric name %q must match gcs_<layer>_<metric> lower snake_case (^gcs_[a-z0-9]+(_[a-z0-9]+)+$)", name)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(arg.Pos(), "counter %q must end in _total", name)
		}
	case "histogram":
		if !strings.HasSuffix(name, "_seconds") {
			pass.Reportf(arg.Pos(), "histogram %q must end in _seconds (latency histograms record seconds)", name)
		}
	case "gauge":
		// _seconds is a unit suffix, legal on gauges (a last-observed
		// duration); the counter/histogram structural suffixes are not.
		for _, suffix := range []string{"_total", "_count", "_sum", "_bucket"} {
			if strings.HasSuffix(name, suffix) {
				pass.Reportf(arg.Pos(), "gauge %q must not end in %s (reserved for other kinds)", name, suffix)
			}
		}
	}
	c.checkDuplicate(pass, arg.Pos(), name, kind)
}

func (c *checker) checkDuplicate(pass *analysis.Pass, pos token.Pos, name, kind string) {
	p := pass.Fset.Position(pos)
	site := p.Filename + ":" + itoa(p.Line)
	c.mu.Lock()
	defer c.mu.Unlock()
	prev, ok := c.registered[name]
	if !ok {
		c.registered[name] = &registration{kind: kind, pos: site}
		return
	}
	if prev.pos == site {
		return // same site seen again (test variant of the same package)
	}
	if prev.kind != kind {
		pass.Reportf(pos, "metric %q registered as %s here but as %s at %s: one name, one kind", name, kind, prev.kind, prev.pos)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
