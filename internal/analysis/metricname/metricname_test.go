package metricname_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/metricname"
)

func TestMetricName(t *testing.T) {
	// New, not the shared Analyzer: the duplicate-kind table is
	// process-wide state and must start empty for the fixture.
	analyzertest.Run(t, "testdata", metricname.New(), "a")
}
