// Package transientretain enforces the msg.EncodeTransient contract: the
// returned buffer is a view into a pooled encoder buffer, valid only until
// the release function runs, so it must never outlive the call.
//
// Reported:
//   - storing the buffer in a struct field, map/slice element, package
//     variable, or composite literal (all of which can outlive the frame);
//   - sending the buffer on a channel (the receiver runs later);
//   - capturing the buffer in a closure launched with go (the goroutine
//     may run after release);
//   - never calling (or deferring) the release function — a permanent
//     encoder-pool leak;
//   - using the buffer after release() in the same block.
//
// Passing the buffer to an ordinary call (tr.Send(to, frame)) is the
// sanctioned pattern — transports copy on Send — and is not reported.
package transientretain

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the transientretain pass.
var Analyzer = &analysis.Analyzer{
	Name: "transientretain",
	Doc:  "check that msg.EncodeTransient buffers never outlive their release function",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, fn.Body)
			}
			return true
		})
	}
	return nil, nil
}

// binding is one `buf, release, err := msg.EncodeTransient(v)` result.
type binding struct {
	buf      *types.Var
	release  *types.Var
	bufDef   *ast.Ident
	released bool // a release() call was seen in straight-line order
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var bindings []*binding
	byBuf := make(map[*types.Var]*binding)
	byRel := make(map[*types.Var]*binding)

	// Pass 1: collect bindings.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures are checked as their own bodies by run
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 3 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !analysis.IsFunc(analysis.CalleeFunc(pass.TypesInfo, call), "msg", "EncodeTransient") {
			return true
		}
		bufID, ok1 := as.Lhs[0].(*ast.Ident)
		relID, ok2 := as.Lhs[1].(*ast.Ident)
		if !ok1 || !ok2 {
			return true
		}
		b := &binding{bufDef: bufID}
		if v, ok := defOrUse(pass, bufID); ok {
			b.buf = v
			byBuf[v] = b
		}
		if v, ok := defOrUse(pass, relID); ok && relID.Name != "_" {
			b.release = v
			byRel[v] = b
		} else if relID.Name == "_" {
			pass.Reportf(relID.Pos(), "EncodeTransient release function discarded: the encoder buffer is never returned to the pool")
		}
		bindings = append(bindings, b)
		return true
	})
	if len(bindings) == 0 {
		return
	}

	// Pass 2: retention checks over the whole body.
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if i >= len(s.Rhs) && len(s.Rhs) != 1 {
					break
				}
				rhs := s.Rhs[min(i, len(s.Rhs)-1)]
				b := usedBinding(pass, rhs, byBuf)
				if b == nil {
					continue
				}
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					pass.Reportf(rhs.Pos(), "transient buffer %s stored in field %s: it is invalid after release", b.buf.Name(), l.Sel.Name)
				case *ast.IndexExpr:
					pass.Reportf(rhs.Pos(), "transient buffer %s stored in a map or slice element: it is invalid after release", b.buf.Name())
				case *ast.Ident:
					if v, ok := defOrUse(pass, l); ok && v.Parent() == pass.Pkg.Scope() {
						pass.Reportf(rhs.Pos(), "transient buffer %s stored in package variable %s: it is invalid after release", b.buf.Name(), l.Name)
					}
				}
			}
		case *ast.SendStmt:
			if b := usedBinding(pass, s.Value, byBuf); b != nil {
				pass.Reportf(s.Value.Pos(), "transient buffer %s sent on a channel: the receiver may use it after release", b.buf.Name())
			}
		case *ast.GoStmt:
			reportCaptures(pass, s.Call, byBuf, "captured by a goroutine: it may run after release")
		case *ast.CompositeLit:
			for _, el := range s.Elts {
				expr := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					expr = kv.Value
				}
				if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
					if v, ok := defOrUse(pass, id); ok {
						if b := byBuf[v]; b != nil {
							pass.Reportf(id.Pos(), "transient buffer %s stored in a composite literal: it is invalid after release", b.buf.Name())
						}
					}
				}
			}
		}
		return true
	})

	// Pass 3: straight-line release ordering (use-after-release) and
	// whether release is ever invoked.
	scanRelease(pass, body.List, byBuf, byRel)
	for _, b := range bindings {
		if b.release == nil || b.released {
			continue
		}
		if !releaseInvoked(pass, body, b.release) {
			pass.Reportf(b.bufDef.Pos(), "EncodeTransient release function %s is never called: the encoder buffer leaks from the pool", b.release.Name())
		}
	}
}

// scanRelease walks top-level statements in order, marking buffers dead at
// release() calls and reporting later uses in the same statement list.
func scanRelease(pass *analysis.Pass, stmts []ast.Stmt, byBuf map[*types.Var]*binding, byRel map[*types.Var]*binding) {
	dead := make(map[*types.Var]*binding)
	for _, stmt := range stmts {
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if v, ok := defOrUse(pass, id); ok {
						if b := byRel[v]; b != nil {
							b.released = true
							if b.buf != nil {
								dead[b.buf] = b
							}
							continue
						}
					}
				}
			}
		}
		if _, ok := stmt.(*ast.DeferStmt); ok {
			continue // defer release() runs at return; later uses are fine
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			if b, isDead := dead[v]; isDead {
				pass.Reportf(id.Pos(), "use of transient buffer %s after release: the encoder buffer was already recycled", b.buf.Name())
				delete(dead, v)
			}
			return true
		})
	}
}

// releaseInvoked reports whether the release variable is called or
// deferred anywhere in the body (including inside closures — a release
// smuggled into a defer'd closure still runs).
func releaseInvoked(pass *analysis.Pass, body *ast.BlockStmt, rel *types.Var) bool {
	invoked := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && v == rel {
				invoked = true
			}
		}
		// Passing release as a value (callback(release)) also counts: the
		// callee owns the call.
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && v == rel {
					invoked = true
				}
			}
		}
		return true
	})
	return invoked
}

// usedBinding returns the binding whose buffer expr is (exactly, as a bare
// identifier or slice of it), nil otherwise.
func usedBinding(pass *analysis.Pass, expr ast.Expr, byBuf map[*types.Var]*binding) *binding {
	e := ast.Unparen(expr)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X) // buf[4:] is the same storage
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
		return byBuf[v]
	}
	return nil
}

// reportCaptures reports buffer variables referenced anywhere inside expr.
func reportCaptures(pass *analysis.Pass, expr ast.Expr, byBuf map[*types.Var]*binding, what string) {
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
			if b := byBuf[v]; b != nil {
				pass.Reportf(id.Pos(), "transient buffer %s %s", b.buf.Name(), what)
			}
		}
		return true
	})
}

func defOrUse(pass *analysis.Pass, id *ast.Ident) (*types.Var, bool) {
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v, true
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	return v, ok
}
