// Package msg is a fixture stub of the real codec: the analyzer matches
// EncodeTransient by package suffix and name, so only the signature
// matters here.
package msg

func EncodeTransient(v any) ([]byte, func(), error) {
	return nil, func() {}, nil
}
