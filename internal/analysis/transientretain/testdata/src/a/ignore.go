package a

import "msg"

// ignored proves the escape hatch: the channel send is a violation, but
// the reasoned gcsvet:ignore suppresses it — silence IS the assertion.
func ignored(ch chan []byte, v any) {
	buf, release, err := msg.EncodeTransient(v)
	if err != nil {
		return
	}
	//gcsvet:ignore transientretain -- fixture: receiver rendezvouses before release by construction
	ch <- buf
	release()
}
