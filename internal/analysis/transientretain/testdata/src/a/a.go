// Package a exercises the transientretain analyzer: retention of an
// EncodeTransient buffer past its release is a violation, the
// encode-send-release pattern is the sanctioned idiom.
package a

import "msg"

type holder struct{ buf []byte }

type transport interface {
	Send(to string, frame []byte) error
}

func consume(b []byte) {}

func storeField(h *holder, v any) {
	buf, release, err := msg.EncodeTransient(v)
	if err != nil {
		return
	}
	h.buf = buf // want `transient buffer buf stored in field buf`
	release()
}

func storeElement(m map[string][]byte, v any) {
	buf, release, err := msg.EncodeTransient(v)
	if err != nil {
		return
	}
	m["k"] = buf // want `stored in a map or slice element`
	release()
}

func sendBuf(ch chan []byte, v any) {
	buf, release, err := msg.EncodeTransient(v)
	if err != nil {
		return
	}
	ch <- buf // want `sent on a channel`
	release()
}

func capture(v any) {
	buf, release, err := msg.EncodeTransient(v)
	if err != nil {
		return
	}
	go func() { consume(buf) }() // want `captured by a goroutine`
	release()
}

func dropRelease(v any) {
	buf, _, err := msg.EncodeTransient(v) // want `release function discarded`
	if err != nil {
		return
	}
	consume(buf)
}

func neverReleased(v any) {
	buf, release, err := msg.EncodeTransient(v) // want `release function release is never called`
	if err != nil {
		return
	}
	consume(buf)
	_ = release
}

func useAfterRelease(v any) {
	buf, release, err := msg.EncodeTransient(v)
	if err != nil {
		return
	}
	consume(buf)
	release()
	consume(buf) // want `use of transient buffer buf after release`
}

// sendLegal is the sanctioned pattern: encode, hand the view to a call
// (transports copy on Send), release.
func sendLegal(tr transport, to string, v any) error {
	frame, release, err := msg.EncodeTransient(v)
	if err != nil {
		return err
	}
	err = tr.Send(to, frame)
	release()
	return err
}

// deferLegal releases at return; every use inside the body is safe.
func deferLegal(v any) {
	buf, release, err := msg.EncodeTransient(v)
	if err != nil {
		return
	}
	defer release()
	consume(buf)
	consume(buf[4:])
}

// callbackLegal hands the release to the callee, which owns the call.
func callbackLegal(v any, then func([]byte, func())) {
	buf, release, err := msg.EncodeTransient(v)
	if err != nil {
		return
	}
	then(buf, release)
}
