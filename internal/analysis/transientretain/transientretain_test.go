package transientretain_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/transientretain"
)

func TestTransientRetain(t *testing.T) {
	analyzertest.Run(t, "testdata", transientretain.Analyzer, "a")
}
