package trad

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/transport"
)

type testPayload struct {
	S string
}

func init() {
	msg.Register(testPayload{})
}

type tnode struct {
	n *Node

	mu    sync.Mutex
	order []string
	views []proc.View
}

func (t *tnode) delivered() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

func newTradCluster(t *testing.T, n int, tweak func(*Config), netOpts ...transport.NetOption) (*transport.Network, []*tnode) {
	t.Helper()
	if len(netOpts) == 0 {
		netOpts = []transport.NetOption{transport.WithDelay(0, 2*time.Millisecond), transport.WithSeed(13)}
	}
	network := transport.NewNetwork(netOpts...)
	universe := make([]proc.ID, n)
	for i := range universe {
		universe[i] = proc.ID(fmt.Sprintf("p%d", i))
	}
	var nodes []*tnode
	for _, id := range universe {
		tn := &tnode{}
		cfg := Config{
			Self:             id,
			Universe:         universe,
			SuspicionTimeout: 100 * time.Millisecond,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		node, err := NewNode(network.Endpoint(id), cfg, func(d Delivery) {
			p, ok := d.Body.(testPayload)
			if !ok {
				return
			}
			tn.mu.Lock()
			tn.order = append(tn.order, p.S)
			tn.mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		node.OnView(func(v proc.View) {
			tn.mu.Lock()
			tn.views = append(tn.views, v)
			tn.mu.Unlock()
		})
		tn.n = node
		nodes = append(nodes, tn)
	}
	for _, tn := range nodes {
		tn.n.Start()
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.n.Stop()
		}
		network.Shutdown()
	})
	return network, nodes
}

func waitDelivered(t *testing.T, tn *tnode, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if len(tn.delivered()) >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s delivered %d, want %d", tn.n.Self(), len(tn.delivered()), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestTradSequencerTotalOrder(t *testing.T) {
	_, nodes := newTradCluster(t, 3, nil)
	const perNode = 20
	var wg sync.WaitGroup
	for _, tn := range nodes {
		wg.Add(1)
		go func(tn *tnode) {
			defer wg.Done()
			for i := 0; i < perNode; i++ {
				_ = tn.n.Broadcast(testPayload{S: fmt.Sprintf("%s-%d", tn.n.Self(), i)})
			}
		}(tn)
	}
	wg.Wait()
	total := perNode * len(nodes)
	for _, tn := range nodes {
		waitDelivered(t, tn, total, 10*time.Second)
	}
	ref := nodes[0].delivered()
	for _, tn := range nodes[1:] {
		got := tn.delivered()
		for i := range ref[:total] {
			if got[i] != ref[i] {
				t.Fatalf("order differs at %d: %q vs %q", i, ref[i], got[i])
			}
		}
	}
}

// TestTradSequencerCrashRecovers kills the sequencer; the coupled
// FD+membership must exclude it, flush, and resume ordering under the new
// sequencer.
func TestTradSequencerCrashRecovers(t *testing.T) {
	network, nodes := newTradCluster(t, 3, nil)
	for i := 0; i < 5; i++ {
		_ = nodes[1].n.Broadcast(testPayload{S: fmt.Sprintf("pre-%d", i)})
	}
	for _, tn := range nodes {
		waitDelivered(t, tn, 5, 10*time.Second)
	}
	network.Crash("p0") // p0 is the initial sequencer (view head)
	// Wait for exclusion.
	deadline := time.Now().Add(10 * time.Second)
	for nodes[1].n.View().Contains("p0") || nodes[2].n.View().Contains("p0") {
		if time.Now().After(deadline) {
			t.Fatalf("sequencer not excluded: %v / %v", nodes[1].n.View(), nodes[2].n.View())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		_ = nodes[2].n.Broadcast(testPayload{S: fmt.Sprintf("post-%d", i)})
	}
	for _, tn := range nodes[1:] {
		waitDelivered(t, tn, 10, 10*time.Second)
	}
	ref := nodes[1].delivered()
	got := nodes[2].delivered()
	for i := range ref[:10] {
		if ref[i] != got[i] {
			t.Fatalf("post-crash order differs at %d: %q vs %q", i, ref[i], got[i])
		}
	}
}

// TestTradFalseSuspicionKills is the Section 4.3 cost: a *correct* process
// that is transiently slow gets excluded and killed, and must rejoin with a
// state transfer. The new architecture's test counterpart is
// TestSuspicionWithoutExclusion at the repository root.
func TestTradFalseSuspicionKills(t *testing.T) {
	var restored int
	var mu sync.Mutex
	network, nodes := newTradCluster(t, 3, func(c *Config) {
		c.AutoRejoin = true
		c.Snapshot = func() []byte { return make([]byte, 1024) }
		c.Restore = func(b []byte) {
			mu.Lock()
			restored++
			mu.Unlock()
		}
	})
	// p2 is correct but its links go silent past the (coupled) timeout.
	network.CutLink("p0", "p2")
	network.CutLink("p1", "p2")
	deadline := time.Now().Add(10 * time.Second)
	for nodes[0].n.View().Contains("p2") {
		if time.Now().After(deadline) {
			t.Fatal("p2 was not excluded")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Heal: p2 rejoins automatically and receives the state transfer.
	network.HealLink("p0", "p2")
	network.HealLink("p1", "p2")
	deadline = time.Now().Add(10 * time.Second)
	for {
		v := nodes[0].n.View()
		if v.Contains("p2") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("p2 did not rejoin: %v", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The state transfer arrives at the joiner slightly after the
	// coordinator installs the view; wait for it.
	deadline = time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		r := restored
		mu.Unlock()
		if r > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("rejoin did not pay the state transfer cost")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTradJoinBlocksSenders demonstrates sending view delivery: during the
// flush triggered by a join, Broadcast blocks.
func TestTradJoinBlocksSenders(t *testing.T) {
	network, nodes := newTradCluster(t, 3, func(c *Config) {
		c.InitialView = proc.IDs("p0", "p1")
	})
	_ = network
	// p2 joins; meanwhile p0 broadcasts continuously. We simply verify the
	// join converges and traffic continues afterwards (the dip itself is
	// measured by the benchmark harness, experiment E11).
	nodes[2].n.Join()
	deadline := time.Now().Add(10 * time.Second)
	for !nodes[0].n.View().Contains("p2") {
		if time.Now().After(deadline) {
			t.Fatalf("join did not converge: %v", nodes[0].n.View())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		if err := nodes[0].n.Broadcast(testPayload{S: fmt.Sprintf("after-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, tn := range nodes {
		waitDelivered(t, tn, 10, 10*time.Second)
	}
	// All three agree on the order.
	ref := nodes[0].delivered()
	for _, tn := range nodes[1:] {
		got := tn.delivered()
		for i := range ref[:10] {
			if got[i] != ref[i] {
				t.Fatalf("order differs at %d", i)
			}
		}
	}
}

func TestTokenRingTotalOrder(t *testing.T) {
	_, nodes := newTradCluster(t, 3, func(c *Config) { c.Mode = ModeTokenRing })
	const perNode = 15
	var wg sync.WaitGroup
	for _, tn := range nodes {
		wg.Add(1)
		go func(tn *tnode) {
			defer wg.Done()
			for i := 0; i < perNode; i++ {
				_ = tn.n.Broadcast(testPayload{S: fmt.Sprintf("%s-%d", tn.n.Self(), i)})
			}
		}(tn)
	}
	wg.Wait()
	total := perNode * len(nodes)
	for _, tn := range nodes {
		waitDelivered(t, tn, total, 15*time.Second)
	}
	ref := nodes[0].delivered()
	for _, tn := range nodes[1:] {
		got := tn.delivered()
		for i := range ref[:total] {
			if got[i] != ref[i] {
				t.Fatalf("ring order differs at %d: %q vs %q", i, ref[i], got[i])
			}
		}
	}
}

// TestTokenRingHolderCrash crashes the token holder; membership reform must
// regenerate the token and ordering must resume.
func TestTokenRingHolderCrash(t *testing.T) {
	network, nodes := newTradCluster(t, 3, func(c *Config) { c.Mode = ModeTokenRing })
	for i := 0; i < 5; i++ {
		_ = nodes[1].n.Broadcast(testPayload{S: fmt.Sprintf("pre-%d", i)})
	}
	for _, tn := range nodes {
		waitDelivered(t, tn, 5, 10*time.Second)
	}
	network.Crash("p0") // initial holder (view head)
	deadline := time.Now().Add(10 * time.Second)
	for nodes[1].n.View().Contains("p0") {
		if time.Now().After(deadline) {
			t.Fatal("holder not excluded")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		_ = nodes[2].n.Broadcast(testPayload{S: fmt.Sprintf("post-%d", i)})
	}
	for _, tn := range nodes[1:] {
		waitDelivered(t, tn, 10, 15*time.Second)
	}
	ref := nodes[1].delivered()
	got := nodes[2].delivered()
	for i := range ref[:10] {
		if ref[i] != got[i] {
			t.Fatalf("ring post-crash order differs at %d: %q vs %q", i, ref[i], got[i])
		}
	}
}
