// Package trad implements the *traditional* group communication
// architecture (Section 2 of the paper) as the experimental baseline:
//
//	Application
//	Atomic Broadcast      ─ fixed sequencer (Isis/Phoenix style, Figs 1–2)
//	View Synchrony        ─ flush protocol, SENDING view delivery
//	Group Membership      ─ coupled to failure detection: suspicion ⇒ exclusion
//	Network
//
// plus a token-ring variant (RMP/Totem style, Figs 3–4) in tokenring.go.
//
// Characteristic properties the experiments measure against the new
// architecture:
//
//   - The failure detector is *coupled* to membership: one timeout, and a
//     suspicion immediately triggers exclusion. A false suspicion therefore
//     costs a view change, a forced "suicide" of the victim (Isis semantics)
//     and a rejoin with state transfer (Section 4.3).
//   - The view synchrony layer implements sending view delivery: while the
//     flush protocol runs, *senders block* (the Ensemble "Sync" layer,
//     Section 2.2), producing the throughput hole measured in E11
//     (Section 4.4).
//   - The ordering problem is solved in several places (sequencer for
//     messages, flush/GM for views, the flush again for messages vs views),
//     the structural complexity discussed in Section 4.1.
//
// The stack runs on the same transport / reliable channel / failure
// detector substrate as the new architecture, so measured differences come
// from the architecture, not the plumbing.
package trad

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/eventq"
	"repro/internal/fd"
	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/transport"
)

// Protocol names.
const (
	protoData  = "trad.data"
	protoOrder = "trad.order"
	protoVC    = "trad.vc"
	protoJoin  = "trad.join"
)

// tid identifies an application message.
type tid struct {
	Origin proc.ID
	Seq    uint64
}

// Wire messages.
type (
	// tData disseminates an application message to all members.
	tData struct {
		ID   tid
		Body any
	}
	// tOrder is the sequencer's ordering notice.
	tOrder struct {
		GSeq uint64
		ID   tid
	}
	// tVCPropose starts a flush for a new view (phase 1).
	tVCPropose struct {
		Round   uint64
		View    []proc.ID
		ViewSeq uint64
	}
	// tVCFlush is a member's flush contribution (phase 1 reply): all
	// ordered-but-unstable messages it knows plus its unsequenced data.
	tVCFlush struct {
		Round   uint64
		Ordered map[uint64]tData // gseq -> message
		Pending []tData          // data without an order yet
	}
	// tVCCommit installs the new view (phase 2).
	tVCCommit struct {
		Round    uint64
		View     []proc.ID
		ViewSeq  uint64
		Ordered  []tData // final agreed suffix, in order, starting at Base
		Base     uint64  // gseq of Ordered[0]
		NextGSeq uint64
		State    []byte // state transfer for joiners
	}
	// tJoinReq asks the coordinator to add the sender to the view.
	tJoinReq struct{}
	// tKill tells a (wrongly) excluded process to reset and rejoin —
	// Isis's "killing processes not in the primary partition".
	tKill struct{}
)

func init() {
	msg.Register(tData{})
	msg.Register(tOrder{})
	msg.Register(tVCPropose{})
	msg.Register(tVCFlush{})
	msg.Register(tVCCommit{})
	msg.Register(tJoinReq{})
	msg.Register(tKill{})
	msg.Register(map[uint64]tData{})
	msg.Register([]tData{})
}

// Delivery is a totally-ordered application delivery.
type Delivery struct {
	Origin proc.ID
	GSeq   uint64
	Body   any
}

// DeliverFunc consumes deliveries on the node's event loop; must not block.
type DeliverFunc func(Delivery)

// ViewFunc observes installed views.
type ViewFunc func(proc.View)

// Config parameterises a traditional node.
type Config struct {
	Self        proc.ID
	Universe    []proc.ID // all processes that may ever join
	InitialView []proc.ID // initial members; others must Join
	// SuspicionTimeout is the single coupled timeout: suspicion = exclusion.
	SuspicionTimeout time.Duration
	HeartbeatEvery   time.Duration
	FDCheckEvery     time.Duration
	RTO              time.Duration
	// Snapshot/Restore provide the state transferred to joiners.
	Snapshot func() []byte
	Restore  func([]byte)
	// AutoRejoin makes a killed (excluded) process rejoin automatically,
	// paying the join + state transfer cost (Section 4.3).
	AutoRejoin bool
	// Mode selects fixed-sequencer (default) or token-ring ordering.
	Mode Mode
}

func (c *Config) applyDefaults() {
	if c.SuspicionTimeout == 0 {
		c.SuspicionTimeout = 150 * time.Millisecond
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 5 * time.Millisecond
	}
	if c.FDCheckEvery == 0 {
		c.FDCheckEvery = 2 * time.Millisecond
	}
	if c.RTO == 0 {
		c.RTO = 20 * time.Millisecond
	}
	if len(c.InitialView) == 0 {
		c.InitialView = append([]proc.ID(nil), c.Universe...)
	}
}

// Node is one process of the traditional stack.
type Node struct {
	cfg  Config
	self proc.ID

	ep  *rchannel.Endpoint
	det *fd.Detector
	sub *fd.Subscription

	events  *eventq.Queue[event]
	deliver DeliverFunc

	// Event-loop-owned protocol state.
	view       proc.View
	inView     bool
	flushing   bool
	vcRound    uint64
	nextSeq    uint64         // my per-origin data sequence
	gseqNext   uint64         // sequencer: next global seq to assign
	data       map[tid]tData  // received data bodies
	ordered    map[uint64]tid // gseq -> id (unstable window)
	orderedAt  map[tid]uint64 // reverse index
	deliverTo  uint64         // next gseq to deliver
	unseq      map[tid]tData  // my own messages not yet sequenced
	flushAcc   map[proc.ID]tVCFlush
	flushView  []proc.ID
	flushSeq   uint64
	flushJoins []proc.ID
	viewers    []ViewFunc

	// Token-ring mode state.
	holdsToken  bool
	ringPending []tid

	// Sending view delivery: senders block while flushing.
	sendMu   sync.Mutex
	sendCond *sync.Cond
	blocked  bool
	killed   bool

	startOnce sync.Once
	stop      chan struct{}
	done      sync.WaitGroup
}

type event struct {
	from proc.ID
	body any
	tick bool
	send *tData
	join bool
}

// NewNode builds a traditional node over the given transport endpoint.
func NewNode(tr transport.Transport, cfg Config, deliver DeliverFunc) (*Node, error) {
	cfg.applyDefaults()
	if cfg.Self == "" {
		cfg.Self = tr.Self()
	}
	if cfg.Self != tr.Self() {
		return nil, fmt.Errorf("trad: config self %q != transport %q", cfg.Self, tr.Self())
	}
	n := &Node{
		cfg:       cfg,
		self:      cfg.Self,
		deliver:   deliver,
		events:    eventq.New[event](),
		view:      proc.NewView(cfg.InitialView...),
		data:      make(map[tid]tData),
		ordered:   make(map[uint64]tid),
		orderedAt: make(map[tid]uint64),
		deliverTo: 1,
		gseqNext:  1,
		unseq:     make(map[tid]tData),
		flushAcc:  make(map[proc.ID]tVCFlush),
		stop:      make(chan struct{}),
	}
	n.sendCond = sync.NewCond(&n.sendMu)
	n.inView = n.view.Contains(n.self)
	n.ep = rchannel.New(tr, rchannel.WithRTO(cfg.RTO))
	n.det = fd.New(n.ep, cfg.Universe,
		fd.WithInterval(cfg.HeartbeatEvery),
		fd.WithCheckEvery(cfg.FDCheckEvery))
	n.sub = n.det.Subscribe(cfg.SuspicionTimeout)
	for _, p := range []string{protoData, protoOrder, protoVC, protoJoin} {
		proto := p
		n.ep.Handle(proto, func(from proc.ID, body any) {
			n.events.Push(event{from: from, body: body})
		})
	}
	if cfg.Mode == ModeTokenRing {
		n.initRing()
	}
	return n, nil
}

// Start launches the stack.
func (n *Node) Start() {
	n.startOnce.Do(func() {
		n.ep.Start()
		n.det.Start()
		n.done.Add(2)
		go n.loop()
		go n.tickLoop()
		if n.cfg.Mode == ModeTokenRing {
			n.events.Push(event{body: ringInitEvent{}})
		}
	})
}

// Stop halts the stack.
func (n *Node) Stop() {
	select {
	case <-n.stop:
		return
	default:
		close(n.stop)
	}
	n.sendMu.Lock()
	n.sendCond.Broadcast()
	n.sendMu.Unlock()
	n.done.Wait()
	n.det.Stop()
	n.ep.Stop()
	n.events.Close()
}

// Self returns the process ID.
func (n *Node) Self() proc.ID { return n.self }

// View returns the current view (thread-safe snapshot via the loop would be
// costlier; views change rarely, so a small race window on reads is
// acceptable for monitoring/test purposes only).
func (n *Node) View() proc.View {
	n.sendMu.Lock()
	defer n.sendMu.Unlock()
	return n.view.Clone()
}

// OnView registers a view observer (called from the event loop).
func (n *Node) OnView(fn ViewFunc) {
	n.viewers = append(n.viewers, fn)
}

// Broadcast submits body for total-order delivery. It BLOCKS while a view
// change (flush) is in progress — sending view delivery, the very behaviour
// Section 4.4 criticises — and returns an error if the process was excluded.
func (n *Node) Broadcast(body any) error {
	n.sendMu.Lock()
	for n.blocked && !n.killed {
		select {
		case <-n.stop:
			n.sendMu.Unlock()
			return fmt.Errorf("trad: node stopped")
		default:
		}
		n.sendCond.Wait()
	}
	killed := n.killed
	n.sendMu.Unlock()
	if killed {
		return fmt.Errorf("trad: %s excluded from the view", n.self)
	}
	n.events.Push(event{send: &tData{Body: body}})
	return nil
}

// Join asks the current coordinator to add this process to the view.
func (n *Node) Join() {
	n.events.Push(event{join: true})
}

// Killed reports whether this process has been excluded.
func (n *Node) Killed() bool {
	n.sendMu.Lock()
	defer n.sendMu.Unlock()
	return n.killed
}

func (n *Node) tickLoop() {
	defer n.done.Done()
	ticker := time.NewTicker(n.cfg.FDCheckEvery)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			n.events.Push(event{tick: true})
		}
	}
}

func (n *Node) loop() {
	defer n.done.Done()
	for {
		ev, ok := n.events.TryPop()
		if !ok {
			select {
			case <-n.stop:
				return
			case <-n.events.Wait():
				continue
			}
		}
		n.handle(ev)
	}
}

func (n *Node) handle(ev event) {
	switch {
	case ev.tick:
		n.checkSuspicions()
	case ev.send != nil:
		n.handleSend(ev.send.Body)
	case ev.join:
		n.sendJoinRequest()
	case ev.body != nil:
		switch m := ev.body.(type) {
		case tData:
			n.handleData(m)
		case tOrder:
			n.handleOrder(m)
		case tVCPropose:
			n.handleVCPropose(ev.from, m)
		case tVCFlush:
			n.handleVCFlush(ev.from, m)
		case tVCCommit:
			n.handleVCCommit(m)
		case tJoinReq:
			n.handleJoinReq(ev.from)
		case tKill:
			n.handleKill()
		case rToken:
			n.handleToken(m)
		case passTokenEvent:
			n.handlePassToken(m)
		case ringInitEvent:
			n.ringAfterCommit()
		}
	}
}

// ---- normal path: fixed-sequencer atomic broadcast --------------------

func (n *Node) sequencer() proc.ID { return n.view.Primary() }

func (n *Node) handleSend(body any) {
	if !n.inView {
		return
	}
	if n.cfg.Mode == ModeTokenRing {
		n.ringSend(body)
		return
	}
	n.nextSeq++
	d := tData{ID: tid{Origin: n.self, Seq: n.nextSeq}, Body: body}
	n.unseq[d.ID] = d
	n.handleData(d) // local copy
	for _, m := range n.view.Members {
		if m != n.self {
			_ = n.ep.Send(m, protoData, d)
		}
	}
}

func (n *Node) handleData(d tData) {
	if _, dup := n.data[d.ID]; dup {
		return
	}
	n.data[d.ID] = d
	// The sequencer assigns the next global sequence number and broadcasts
	// the ordering notice (token holders order on token receipt instead).
	if n.cfg.Mode == ModeSequencer && n.sequencer() == n.self && !n.flushing {
		n.assignOrder(d.ID)
	}
	n.tryDeliver()
}

func (n *Node) assignOrder(id tid) {
	if _, done := n.orderedAt[id]; done {
		return
	}
	gseq := n.gseqNext
	n.gseqNext++
	o := tOrder{GSeq: gseq, ID: id}
	n.applyOrder(o)
	for _, m := range n.view.Members {
		if m != n.self {
			_ = n.ep.Send(m, protoOrder, o)
		}
	}
}

func (n *Node) handleOrder(o tOrder) {
	n.applyOrder(o)
	n.tryDeliver()
}

func (n *Node) applyOrder(o tOrder) {
	if _, dup := n.ordered[o.GSeq]; dup {
		return
	}
	if _, dup := n.orderedAt[o.ID]; dup {
		return
	}
	n.ordered[o.GSeq] = o.ID
	n.orderedAt[o.ID] = o.GSeq
	if o.GSeq >= n.gseqNext {
		n.gseqNext = o.GSeq + 1
	}
	delete(n.unseq, o.ID)
}

func (n *Node) tryDeliver() {
	for {
		id, ok := n.ordered[n.deliverTo]
		if !ok {
			return
		}
		d, ok := n.data[id]
		if !ok {
			return // body not here yet
		}
		if n.deliver != nil && n.inView {
			n.deliver(Delivery{Origin: id.Origin, GSeq: n.deliverTo, Body: d.Body})
		}
		n.deliverTo++
	}
}

// ---- coupled membership: suspicion = exclusion -------------------------

func (n *Node) coordinator() proc.ID {
	for _, m := range n.view.Members {
		if m == n.self || !n.sub.Suspected(m) {
			return m
		}
	}
	return n.view.Primary()
}

func (n *Node) checkSuspicions() {
	if !n.inView || n.flushing {
		return
	}
	if n.coordinator() != n.self {
		return
	}
	var excluded []proc.ID
	for _, m := range n.view.Members {
		if m != n.self && n.sub.Suspected(m) {
			excluded = append(excluded, m)
		}
	}
	if len(excluded) == 0 {
		return
	}
	newView := n.view
	for _, x := range excluded {
		newView = newView.Remove(x)
	}
	// Primary partition rule: only a majority of the current view may
	// install the next view. A minority coordinator must wait (Isis kills
	// minority partitions rather than letting them proceed).
	if len(newView.Members) < proc.Majority(len(n.view.Members)) {
		return
	}
	n.startFlush(newView.Members, newView.Seq, nil)
	// Isis semantics: processes outside the (primary) view are killed.
	for _, x := range excluded {
		_ = n.ep.Send(x, protoVC, tKill{})
	}
}

func (n *Node) handleJoinReq(from proc.ID) {
	if !n.inView || n.coordinator() != n.self {
		return
	}
	if n.view.Contains(from) {
		return
	}
	if n.flushing {
		n.flushJoins = append(n.flushJoins, from)
		return
	}
	nv := n.view.Add(from)
	n.startFlush(nv.Members, nv.Seq, []proc.ID{from})
}

func (n *Node) sendJoinRequest() {
	// Ask every universe member; only the coordinator will act.
	for _, m := range n.cfg.Universe {
		if m != n.self {
			_ = n.ep.Send(m, protoJoin, tJoinReq{})
		}
	}
}

// ---- view synchrony: 2-phase flush with sending view delivery ----------

// startFlush begins a view change as coordinator (phase 1).
func (n *Node) startFlush(newView []proc.ID, newSeq uint64, joiners []proc.ID) {
	n.vcRound++
	n.flushing = true
	n.flushAcc = make(map[proc.ID]tVCFlush)
	n.flushView = append([]proc.ID(nil), newView...)
	n.flushSeq = newSeq
	n.flushJoins = append([]proc.ID(nil), joiners...)
	n.blockSending()
	prop := tVCPropose{Round: n.vcRound, View: n.flushView, ViewSeq: newSeq}
	// Survivors = old view ∩ new view, plus self.
	for _, m := range n.view.Members {
		if m != n.self && contains(newView, m) {
			_ = n.ep.Send(m, protoVC, prop)
		}
	}
	n.acceptFlush(n.self, n.makeFlush(n.vcRound))
}

func (n *Node) handleVCPropose(from proc.ID, p tVCPropose) {
	if !n.inView {
		return
	}
	if p.Round <= n.vcRound && from != n.self {
		// Stale round.
		return
	}
	n.vcRound = p.Round
	n.flushing = true
	n.blockSending()
	_ = n.ep.Send(from, protoVC, n.makeFlush(p.Round))
}

// makeFlush snapshots this member's ordering knowledge.
func (n *Node) makeFlush(round uint64) tVCFlush {
	ordered := make(map[uint64]tData, len(n.ordered))
	for gseq, id := range n.ordered {
		if d, ok := n.data[id]; ok {
			ordered[gseq] = d
		}
	}
	pending := make([]tData, 0, len(n.unseq))
	for _, d := range n.unseq {
		pending = append(pending, d)
	}
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].ID.Origin != pending[j].ID.Origin {
			return pending[i].ID.Origin < pending[j].ID.Origin
		}
		return pending[i].ID.Seq < pending[j].ID.Seq
	})
	return tVCFlush{Round: round, Ordered: ordered, Pending: pending}
}

func (n *Node) handleVCFlush(from proc.ID, f tVCFlush) {
	if f.Round != n.vcRound || !n.flushing {
		return
	}
	n.acceptFlush(from, f)
}

func (n *Node) acceptFlush(from proc.ID, f tVCFlush) {
	if !n.flushing {
		return
	}
	n.flushAcc[from] = f
	// Wait for every non-suspected survivor of the new view that was in the
	// old view.
	for _, m := range n.flushView {
		if !n.view.Contains(m) {
			continue // joiner, does not flush
		}
		if _, ok := n.flushAcc[m]; !ok {
			if !n.sub.Suspected(m) {
				return // still waiting
			}
		}
	}
	n.finishFlush()
}

// finishFlush merges the flush contributions and commits the new view
// (phase 2). Only the coordinator reaches this with a full accumulator.
func (n *Node) finishFlush() {
	// Merge ordering knowledge: gseq -> data; fill holes by compaction.
	merged := make(map[uint64]tData)
	var pending []tData
	seen := make(map[tid]bool)
	for _, f := range n.flushAcc {
		for gseq, d := range f.Ordered {
			merged[gseq] = d
		}
	}
	for _, f := range n.flushAcc {
		for _, d := range f.Pending {
			if !seen[d.ID] {
				seen[d.ID] = true
				pending = append(pending, d)
			}
		}
	}
	gseqs := make([]uint64, 0, len(merged))
	for g := range merged {
		gseqs = append(gseqs, g)
	}
	sort.Slice(gseqs, func(i, j int) bool { return gseqs[i] < gseqs[j] })
	// Compact into a dense sequence starting at the lowest undelivered
	// gseq this coordinator knows; then append pending (unsequenced)
	// messages not already ordered, in deterministic order.
	base := n.deliverTo
	final := make([]tData, 0, len(gseqs)+len(pending))
	for _, g := range gseqs {
		if g < base {
			continue
		}
		final = append(final, merged[g])
	}
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].ID.Origin != pending[j].ID.Origin {
			return pending[i].ID.Origin < pending[j].ID.Origin
		}
		return pending[i].ID.Seq < pending[j].ID.Seq
	})
	inFinal := make(map[tid]bool, len(final))
	for _, d := range final {
		inFinal[d.ID] = true
	}
	for _, d := range pending {
		if !inFinal[d.ID] {
			final = append(final, d)
		}
	}
	commit := tVCCommit{
		Round:    n.vcRound,
		View:     n.flushView,
		ViewSeq:  n.flushSeq,
		Ordered:  final,
		Base:     base,
		NextGSeq: base + uint64(len(final)),
	}
	var state []byte
	if n.cfg.Snapshot != nil {
		state = n.cfg.Snapshot()
	}
	for _, m := range n.flushView {
		if m == n.self {
			continue
		}
		c := commit
		if !n.view.Contains(m) {
			c.State = state // joiner gets the state transfer
		}
		_ = n.ep.Send(m, protoVC, c)
	}
	joins := n.flushJoins
	n.applyCommit(commit)
	// Deferred joiners arrive one view change at a time.
	if len(joins) > 0 && n.coordinator() == n.self {
		for _, j := range joins {
			n.handleJoinReq(j)
		}
	}
}

func (n *Node) handleVCCommit(c tVCCommit) {
	if c.Round < n.vcRound {
		return
	}
	n.vcRound = c.Round
	if c.State != nil && n.cfg.Restore != nil {
		n.cfg.Restore(c.State)
	}
	n.applyCommit(c)
}

// applyCommit adopts the agreed message suffix and installs the new view.
func (n *Node) applyCommit(c tVCCommit) {
	// Adopt the agreed ordering: overwrite everything at or above Base.
	for gseq, id := range n.ordered {
		if gseq >= c.Base {
			delete(n.orderedAt, id)
			delete(n.ordered, gseq)
		}
	}
	for i, d := range c.Ordered {
		gseq := c.Base + uint64(i)
		n.data[d.ID] = d
		n.ordered[gseq] = d.ID
		n.orderedAt[d.ID] = gseq
		delete(n.unseq, d.ID)
	}
	n.gseqNext = c.NextGSeq
	wasInView := n.inView
	n.sendMu.Lock()
	n.view = proc.View{Seq: c.ViewSeq, Members: append([]proc.ID(nil), c.View...)}
	n.sendMu.Unlock()
	n.inView = contains(c.View, n.self)
	if !wasInView && n.inView {
		// Joiner: deliveries restart from the commit base.
		n.deliverTo = c.Base
	}
	// Sending view delivery: all flushed messages are delivered BEFORE the
	// new view is announced.
	n.tryDeliver()
	n.flushing = false
	n.flushAcc = make(map[proc.ID]tVCFlush)
	// The new ordering authority (sequencer, or the token holder after the
	// ring reforms) assigns orders to any data that arrived during the
	// flush and was not part of the agreed suffix.
	switch n.cfg.Mode {
	case ModeSequencer:
		if n.inView && n.sequencer() == n.self {
			n.assignOrphans()
		}
	case ModeTokenRing:
		n.ringAfterCommit()
	}
	view := proc.View{Seq: c.ViewSeq, Members: append([]proc.ID(nil), c.View...)}
	for _, fn := range n.viewers {
		fn(view)
	}
	n.unblockSending()
	// Stability: entries far below the delivery point can be dropped.
	n.gcStable()
}

func (n *Node) handleKill() {
	n.sendMu.Lock()
	n.killed = true
	n.inView = false
	n.sendCond.Broadcast()
	n.sendMu.Unlock()
	if n.cfg.AutoRejoin {
		// The excluded process resets and rejoins, paying the full cost of
		// a view change plus state transfer.
		n.resetAfterKill()
		n.sendJoinRequest()
	}
}

func (n *Node) resetAfterKill() {
	n.data = make(map[tid]tData)
	n.ordered = make(map[uint64]tid)
	n.orderedAt = make(map[tid]uint64)
	n.unseq = make(map[tid]tData)
	n.sendMu.Lock()
	n.killed = false
	n.sendMu.Unlock()
}

// assignOrphans orders every known-but-unordered message deterministically.
func (n *Node) assignOrphans() {
	var orphans []tid
	for id := range n.data {
		if _, ok := n.orderedAt[id]; !ok {
			orphans = append(orphans, id)
		}
	}
	sort.Slice(orphans, func(i, j int) bool {
		if orphans[i].Origin != orphans[j].Origin {
			return orphans[i].Origin < orphans[j].Origin
		}
		return orphans[i].Seq < orphans[j].Seq
	})
	for _, id := range orphans {
		n.assignOrder(id)
	}
	n.tryDeliver()
}

func (n *Node) gcStable() {
	const window = 4096
	if n.deliverTo < window {
		return
	}
	floor := n.deliverTo - window
	for gseq, id := range n.ordered {
		if gseq < floor {
			delete(n.data, id)
			delete(n.orderedAt, id)
			delete(n.ordered, gseq)
		}
	}
}

func (n *Node) blockSending() {
	n.sendMu.Lock()
	n.blocked = true
	n.sendMu.Unlock()
}

func (n *Node) unblockSending() {
	n.sendMu.Lock()
	n.blocked = false
	n.sendCond.Broadcast()
	n.sendMu.Unlock()
}

func contains(ids []proc.ID, id proc.ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
