package trad

import (
	"time"

	"repro/internal/msg"
	"repro/internal/proc"
)

// Token-ring ordering mode (RMP [34, 27] and Totem [2], Figures 3–4).
//
// Instead of a fixed sequencer, a token circulates over the view members in
// ring order; the holder assigns global sequence numbers to its pending
// messages and passes the token to its successor. Data dissemination uses
// the same tData/tOrder frames as sequencer mode, and failures reuse the
// coupled membership + flush machinery: when a member is excluded, the
// commit installs the new ring and the coordinator regenerates the token
// (the "token recovery" role of Totem's membership layer). Stale tokens are
// recognised by their view sequence number and dropped.

// Mode selects the ordering protocol of the traditional stack.
type Mode int

const (
	// ModeSequencer is Isis/Phoenix-style fixed-sequencer ordering.
	ModeSequencer Mode = iota
	// ModeTokenRing is RMP/Totem-style rotating-token ordering.
	ModeTokenRing
)

// rToken is the circulating token.
type rToken struct {
	ViewSeq uint64
	NextSeq uint64
}

func init() {
	msg.Register(rToken{})
}

const protoToken = "trad.token"

// tokenIdleDelay throttles token circulation when there is no traffic.
const tokenIdleDelay = 2 * time.Millisecond

// initRing wires the token-ring handlers; called from NewNode when the mode
// is ModeTokenRing.
func (n *Node) initRing() {
	n.ep.Handle(protoToken, func(from proc.ID, body any) {
		n.events.Push(event{from: from, body: body})
	})
}

// ringSend disseminates data immediately and queues the message for
// ordering at the next token visit.
func (n *Node) ringSend(body any) {
	n.nextSeq++
	d := tData{ID: tid{Origin: n.self, Seq: n.nextSeq}, Body: body}
	n.unseq[d.ID] = d
	n.ringPending = append(n.ringPending, d.ID)
	n.handleData(d)
	for _, m := range n.view.Members {
		if m != n.self {
			_ = n.ep.Send(m, protoData, d)
		}
	}
	// A single-member ring orders its own messages directly.
	if n.holdsToken && len(n.view.Members) == 1 {
		n.ringOrderPending()
	}
}

// handleToken processes a received token.
func (n *Node) handleToken(tk rToken) {
	if tk.ViewSeq != n.view.Seq || !n.inView || n.flushing {
		return // stale token from a previous ring
	}
	n.holdsToken = true
	if tk.NextSeq > n.gseqNext {
		n.gseqNext = tk.NextSeq
	}
	n.ringOrderPending()
	n.schedulePassToken()
}

// ringOrderPending assigns global sequence numbers to this holder's queued
// messages.
func (n *Node) ringOrderPending() {
	for _, id := range n.ringPending {
		if _, waiting := n.unseq[id]; waiting {
			n.assignOrder(id)
		}
	}
	n.ringPending = n.ringPending[:0]
	n.tryDeliver()
}

// schedulePassToken forwards the token to the ring successor, after a small
// idle delay when there is no traffic (keeps an idle ring from saturating
// the network, as Totem's token retention timer does).
func (n *Node) schedulePassToken() {
	if len(n.view.Members) < 2 {
		return // keep the token; nothing to rotate through
	}
	viewSeq := n.view.Seq
	delay := time.Duration(0)
	if len(n.ringPending) == 0 {
		delay = tokenIdleDelay
	}
	time.AfterFunc(delay, func() {
		n.events.Push(event{body: passTokenEvent{viewSeq: viewSeq}})
	})
}

// passTokenEvent is an internal event carrying the deferred token pass.
type passTokenEvent struct {
	viewSeq uint64
}

// ringInitEvent seeds the token at the initial view head on startup.
type ringInitEvent struct{}

func (n *Node) handlePassToken(ev passTokenEvent) {
	if !n.holdsToken || ev.viewSeq != n.view.Seq || n.flushing || !n.inView {
		return
	}
	// Order anything queued since the token arrived, then pass it on.
	n.ringOrderPending()
	succ := n.ringSuccessor()
	if succ == n.self {
		n.schedulePassToken()
		return
	}
	n.holdsToken = false
	_ = n.ep.Send(succ, protoToken, rToken{ViewSeq: n.view.Seq, NextSeq: n.gseqNext})
}

func (n *Node) ringSuccessor() proc.ID {
	i := n.view.Index(n.self)
	if i < 0 || len(n.view.Members) == 0 {
		return n.self
	}
	return n.view.Members[(i+1)%len(n.view.Members)]
}

// ringAfterCommit regenerates the token after a view change: the view head
// becomes the holder (Totem's membership layer recovers the token).
func (n *Node) ringAfterCommit() {
	if !n.inView {
		n.holdsToken = false
		return
	}
	if n.view.Primary() == n.self {
		n.holdsToken = true
		n.ringOrderPending()
		n.schedulePassToken()
	} else {
		n.holdsToken = false
	}
}
