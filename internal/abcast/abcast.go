// Package abcast implements atomic (total order) broadcast by reduction to
// a sequence of consensus instances — the Chandra–Toueg transformation [10]
// that the paper places at the base of the new architecture (Section 3.1.1,
// Figure 6).
//
// Sketch: messages are disseminated with reliable broadcast; instance k of
// consensus decides on a *batch* — some proposer's set of not-yet-delivered
// messages, serialised in a deterministic order. Every process handles the
// decision stream in instance order and delivers each batch's messages
// (skipping ones already delivered) in batch order, so all processes deliver
// the same messages in the same total order.
//
// Crucially, the algorithm never blocks on process crashes as long as
// f < n/2: no membership service and no perfect failure detector are
// required. This is the property that lets group membership be layered *on
// top of* atomic broadcast instead of below it.
package abcast

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/consensus"
	"repro/internal/eventq"
	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/rbcast"
	"repro/internal/rchannel"
	"repro/internal/seqset"
)

// item is one broadcast message as disseminated and batched.
type item struct {
	Origin proc.ID
	Seq    uint64
	Body   any
}

func init() {
	msg.Register(item{})
	msg.Register([]item{})
}

// Delivery is a message delivered in total order. GlobalSeq is the position
// in the total order (identical at all processes).
type Delivery struct {
	Origin    proc.ID
	Seq       uint64
	GlobalSeq uint64
	Body      any
}

// DeliverFunc consumes total-order deliveries on the broadcaster's event
// loop goroutine; it must not block.
type DeliverFunc func(Delivery)

// Broadcaster provides atomic broadcast for a fixed member universe.
type Broadcaster struct {
	self    proc.ID
	rb      *rbcast.Broadcaster
	cs      *consensus.Service
	deliver DeliverFunc

	events *eventq.Queue[event]

	// Event-loop-owned state.
	undelivered map[key]item
	delivered   map[proc.ID]*seqset.Set
	pending     map[uint64][]byte // out-of-order decisions
	nextInst    uint64
	proposed    bool // a proposal for nextInst is outstanding
	globalSeq   uint64

	sendSeq   atomic.Uint64
	startOnce sync.Once
	stop      chan struct{}
	done      sync.WaitGroup
}

type key struct {
	origin proc.ID
	seq    uint64
}

type event struct {
	item     *item
	decision *consensus.Decision
}

// New creates an atomic broadcaster. proto namespaces its dissemination
// traffic on the endpoint; members is the fixed universe (the same set the
// consensus service was built with).
func New(ep *rchannel.Endpoint, proto string, members []proc.ID, deliver DeliverFunc) *Broadcaster {
	b := &Broadcaster{
		self:        ep.Self(),
		deliver:     deliver,
		events:      eventq.New[event](),
		undelivered: make(map[key]item),
		delivered:   make(map[proc.ID]*seqset.Set),
		pending:     make(map[uint64][]byte),
		nextInst:    1,
		stop:        make(chan struct{}),
	}
	b.rb = rbcast.New(ep, proto+".rb", members, func(d rbcast.Delivery) {
		it, ok := d.Body.(item)
		if !ok {
			return
		}
		b.events.Push(event{item: &it})
	})
	return b
}

// AttachConsensus wires the consensus service the broadcaster drives. The
// service must have been created with the broadcaster's Decide method as its
// decision callback. Split from New because the two components reference
// each other.
func (b *Broadcaster) AttachConsensus(cs *consensus.Service) {
	b.cs = cs
}

// Decide is the consensus decision callback.
func (b *Broadcaster) Decide(d consensus.Decision) {
	b.events.Push(event{decision: &d})
}

// Start launches the event loop. AttachConsensus must have been called.
func (b *Broadcaster) Start() {
	b.startOnce.Do(func() {
		if b.cs == nil {
			panic("abcast: Start without AttachConsensus")
		}
		b.rb.Start()
		b.done.Add(1)
		go b.loop()
	})
}

// Stop terminates the event loop (the consensus service is stopped by its
// owner, not here).
func (b *Broadcaster) Stop() {
	select {
	case <-b.stop:
		return
	default:
		close(b.stop)
	}
	b.done.Wait()
	b.rb.Stop()
	b.events.Close()
}

// Broadcast submits body for total-order delivery to all members.
func (b *Broadcaster) Broadcast(body any) error {
	seq := b.sendSeq.Add(1)
	if err := b.rb.Broadcast(item{Origin: b.self, Seq: seq, Body: body}); err != nil {
		return fmt.Errorf("abcast: %w", err)
	}
	return nil
}

func (b *Broadcaster) loop() {
	defer b.done.Done()
	for {
		ev, ok := b.events.TryPop()
		if !ok {
			select {
			case <-b.stop:
				return
			case <-b.events.Wait():
				continue
			}
		}
		switch {
		case ev.item != nil:
			b.handleItem(*ev.item)
		case ev.decision != nil:
			b.handleDecision(*ev.decision)
		}
	}
}

func (b *Broadcaster) handleItem(it item) {
	if b.deliveredSet(it.Origin).Contains(it.Seq) {
		return
	}
	k := key{origin: it.Origin, seq: it.Seq}
	if _, dup := b.undelivered[k]; dup {
		return
	}
	b.undelivered[k] = it
	b.maybePropose()
}

func (b *Broadcaster) handleDecision(d consensus.Decision) {
	if d.Instance < b.nextInst {
		return
	}
	b.pending[d.Instance] = d.Value
	for {
		val, ok := b.pending[b.nextInst]
		if !ok {
			return
		}
		delete(b.pending, b.nextInst)
		b.applyBatch(val)
		b.nextInst++
		b.proposed = false
		b.maybePropose()
	}
}

func (b *Broadcaster) applyBatch(val []byte) {
	decoded, err := msg.Decode(val)
	if err != nil {
		// A corrupt batch would break total order; in the crash-stop model
		// with our own codec this indicates a bug, so fail loudly.
		panic(fmt.Sprintf("abcast: undecodable batch: %v", err))
	}
	batch, ok := decoded.([]item)
	if !ok {
		panic(fmt.Sprintf("abcast: unexpected batch type %T", decoded))
	}
	for _, it := range batch {
		set := b.deliveredSet(it.Origin)
		if !set.Add(it.Seq) {
			continue
		}
		delete(b.undelivered, key{origin: it.Origin, seq: it.Seq})
		b.globalSeq++
		if b.deliver != nil {
			b.deliver(Delivery{Origin: it.Origin, Seq: it.Seq, GlobalSeq: b.globalSeq, Body: it.Body})
		}
	}
}

func (b *Broadcaster) maybePropose() {
	if b.proposed || len(b.undelivered) == 0 {
		return
	}
	batch := make([]item, 0, len(b.undelivered))
	for _, it := range b.undelivered {
		batch = append(batch, it)
	}
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].Origin != batch[j].Origin {
			return batch[i].Origin < batch[j].Origin
		}
		return batch[i].Seq < batch[j].Seq
	})
	val, err := msg.Encode(batch)
	if err != nil {
		panic(fmt.Sprintf("abcast: encode batch: %v", err))
	}
	b.proposed = true
	b.cs.Propose(b.nextInst, val)
}

func (b *Broadcaster) deliveredSet(origin proc.ID) *seqset.Set {
	set, ok := b.delivered[origin]
	if !ok {
		set = seqset.New()
		b.delivered[origin] = set
	}
	return set
}
