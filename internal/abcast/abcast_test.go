package abcast

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/fd"
	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/transport"
)

type testPayload struct {
	S string
}

func init() {
	msg.Register(testPayload{})
}

type node struct {
	id proc.ID
	ep *rchannel.Endpoint
	fd *fd.Detector
	cs *consensus.Service
	ab *Broadcaster

	mu    sync.Mutex
	order []string // delivered payloads in delivery order
}

func (n *node) delivered() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.order))
	copy(out, n.order)
	return out
}

type cluster struct {
	net   *transport.Network
	nodes []*node
}

func newCluster(t *testing.T, n int, netOpts ...transport.NetOption) *cluster {
	t.Helper()
	if len(netOpts) == 0 {
		netOpts = []transport.NetOption{transport.WithDelay(0, 2*time.Millisecond), transport.WithSeed(5)}
	}
	network := transport.NewNetwork(netOpts...)
	members := make([]proc.ID, n)
	for i := range members {
		members[i] = proc.ID(fmt.Sprintf("p%d", i))
	}
	c := &cluster{net: network}
	for _, id := range members {
		nd := &node{id: id}
		nd.ep = rchannel.New(network.Endpoint(id), rchannel.WithRTO(10*time.Millisecond))
		nd.fd = fd.New(nd.ep, members, fd.WithInterval(3*time.Millisecond), fd.WithCheckEvery(2*time.Millisecond))
		// Generous suspicion timeout: on loaded machines (e.g. under the
		// race detector) an aggressive timeout keeps suspecting correct
		// coordinators and stalls round progression.
		sub := nd.fd.Subscribe(120 * time.Millisecond)
		nd.ab = New(nd.ep, "ab", members, func(d Delivery) {
			p, ok := d.Body.(testPayload)
			if !ok {
				return
			}
			nd.mu.Lock()
			nd.order = append(nd.order, p.S)
			nd.mu.Unlock()
		})
		nd.cs = consensus.New(nd.ep, members, sub, nd.ab.Decide)
		nd.ab.AttachConsensus(nd.cs)
		c.nodes = append(c.nodes, nd)
	}
	for _, nd := range c.nodes {
		nd.ep.Start()
		nd.fd.Start()
		nd.cs.Start()
		nd.ab.Start()
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			nd.ab.Stop()
			nd.cs.Stop()
			nd.fd.Stop()
			nd.ep.Stop()
		}
		network.Shutdown()
	})
	return c
}

func waitCount(t *testing.T, nd *node, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if len(nd.delivered()) >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s delivered %d messages, want %d", nd.id, len(nd.delivered()), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func assertSameOrder(t *testing.T, nodes []*node, want int) {
	t.Helper()
	ref := nodes[0].delivered()[:want]
	seen := make(map[string]bool, want)
	for _, s := range ref {
		if seen[s] {
			t.Fatalf("duplicate delivery %q at %s", s, nodes[0].id)
		}
		seen[s] = true
	}
	for _, nd := range nodes[1:] {
		got := nd.delivered()[:want]
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("total order violated at index %d: %s has %q, %s has %q",
					i, nodes[0].id, ref[i], nd.id, got[i])
			}
		}
	}
}

func TestAbcastTotalOrderSingleSender(t *testing.T) {
	c := newCluster(t, 3)
	const total = 30
	for i := 0; i < total; i++ {
		if err := c.nodes[0].ab.Broadcast(testPayload{S: fmt.Sprintf("m%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, nd := range c.nodes {
		waitCount(t, nd, total, 10*time.Second)
	}
	assertSameOrder(t, c.nodes, total)
	// Single sender: total order must also respect the sender's FIFO order.
	got := c.nodes[0].delivered()
	for i := 0; i < total; i++ {
		if got[i] != fmt.Sprintf("m%d", i) {
			t.Fatalf("FIFO violated: index %d is %q", i, got[i])
		}
	}
}

func TestAbcastTotalOrderConcurrentSenders(t *testing.T) {
	c := newCluster(t, 3)
	const perNode = 25
	var wg sync.WaitGroup
	for _, nd := range c.nodes {
		wg.Add(1)
		go func(nd *node) {
			defer wg.Done()
			for i := 0; i < perNode; i++ {
				_ = nd.ab.Broadcast(testPayload{S: fmt.Sprintf("%s-%d", nd.id, i)})
			}
		}(nd)
	}
	wg.Wait()
	total := perNode * len(c.nodes)
	for _, nd := range c.nodes {
		waitCount(t, nd, total, 20*time.Second)
	}
	assertSameOrder(t, c.nodes, total)
}

func TestAbcastFiveNodes(t *testing.T) {
	c := newCluster(t, 5)
	const perNode = 10
	for _, nd := range c.nodes {
		for i := 0; i < perNode; i++ {
			_ = nd.ab.Broadcast(testPayload{S: fmt.Sprintf("%s-%d", nd.id, i)})
		}
	}
	total := perNode * len(c.nodes)
	for _, nd := range c.nodes {
		waitCount(t, nd, total, 20*time.Second)
	}
	assertSameOrder(t, c.nodes, total)
}

// TestAbcastSurvivesMinorityCrash crashes one process out of three mid-run;
// the rest keep delivering without any membership change — the paper's core
// claim for the new architecture.
func TestAbcastSurvivesMinorityCrash(t *testing.T) {
	c := newCluster(t, 3)
	for i := 0; i < 10; i++ {
		_ = c.nodes[0].ab.Broadcast(testPayload{S: fmt.Sprintf("pre-%d", i)})
	}
	for _, nd := range c.nodes {
		waitCount(t, nd, 10, 10*time.Second)
	}
	c.net.Crash("p1")
	for i := 0; i < 10; i++ {
		_ = c.nodes[2].ab.Broadcast(testPayload{S: fmt.Sprintf("post-%d", i)})
	}
	survivors := []*node{c.nodes[0], c.nodes[2]}
	for _, nd := range survivors {
		waitCount(t, nd, 20, 15*time.Second)
	}
	assertSameOrder(t, survivors, 20)
}

func TestAbcastLossyNetwork(t *testing.T) {
	c := newCluster(t, 3,
		transport.WithDelay(0, 3*time.Millisecond),
		transport.WithLoss(0.15),
		transport.WithSeed(23),
	)
	const total = 15
	for i := 0; i < total; i++ {
		_ = c.nodes[i%3].ab.Broadcast(testPayload{S: fmt.Sprintf("m%d", i)})
	}
	for _, nd := range c.nodes {
		waitCount(t, nd, total, 30*time.Second)
	}
	assertSameOrder(t, c.nodes, total)
}
