// Package consensus implements the Chandra–Toueg rotating-coordinator
// consensus algorithm for the <>S failure detector class [10]
// (Figure 9, "Consensus").
//
// This component is the heart of the new architecture: because it tolerates
// an unbounded number of *false* suspicions and up to f < n/2 crashes
// without any reconfiguration, the atomic broadcast built on it does not
// depend on a membership service — which is what allows the paper to invert
// the traditional layering (Section 3.1.1).
//
// Algorithm recap (per instance). Processes advance through asynchronous
// rounds; round r is coordinated by members[r mod n].
//
//	Phase 1: every process sends its current estimate, timestamped with the
//	         round in which it was adopted, to the coordinator of the round.
//	Phase 2: the coordinator collects a majority of estimates, selects the
//	         one with the highest timestamp and proposes it to all.
//	Phase 3: a process waits for the proposal or for its failure detector to
//	         suspect the coordinator; it replies ack (adopting the proposal)
//	         or nack (moving to the next round).
//	Phase 4: if the coordinator gathers a majority of acks it decides and
//	         reliably broadcasts the decision, which every process forwards
//	         on first receipt.
//
// Safety: a decision requires a majority to have adopted (value, round);
// any later coordinator reads a majority of estimates, which intersects the
// adopting majority, so the locked value is the only one that can ever be
// proposed again. Liveness: eventually the failure detector stops suspecting
// some correct process (<>S accuracy); the first round it coordinates after
// that point decides.
//
// Implementation notes that differ from the textbook presentation:
//
//   - A process may be drawn into an instance by receiving messages for it
//     before its own upper layer proposed; it then participates with an
//     empty estimate (HasEst=false), which coordinators skip when choosing
//     a candidate. Validity is preserved: only proposed values are decided.
//   - Coordinator duties (phases 2 and 4) for round r are evaluated
//     whenever messages for round r arrive, even if the coordinator has
//     itself moved past r as a participant: a coordinator that lags or
//     races ahead must still unblock participants waiting in r.
//
// Multiple instances run independently and concurrently, identified by a
// uint64; the atomic broadcast layer runs the sequence 1, 2, 3, ...
package consensus

import (
	"sync"
	"time"

	"repro/internal/eventq"
	"repro/internal/fd"
	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/rchannel"
)

// Proto is the rchannel protocol name for consensus traffic.
const Proto = "cs"

// Wire messages.
type (
	mEstimate struct {
		Inst   uint64
		Round  uint64
		HasEst bool
		Est    []byte
		Ts     uint64
	}
	mPropose struct {
		Inst  uint64
		Round uint64
		Val   []byte
	}
	mAck struct {
		Inst  uint64
		Round uint64
	}
	mNack struct {
		Inst  uint64
		Round uint64
	}
	mDecide struct {
		Inst uint64
		Val  []byte
	}
	// mStart announces that an instance exists. Every process broadcasts it
	// once upon first entering an instance, so that a single proposer
	// suffices to draw the whole universe in (the coordinator needs a
	// majority of estimates to make progress).
	mStart struct {
		Inst uint64
	}
)

func init() {
	msg.Register(mEstimate{})
	msg.Register(mPropose{})
	msg.Register(mAck{})
	msg.Register(mNack{})
	msg.Register(mDecide{})
	msg.Register(mStart{})
}

// Decision is an agreed value for an instance.
type Decision struct {
	Instance uint64
	Value    []byte
}

// DecisionFunc consumes decisions, in no particular instance order. It runs
// on the service's event loop goroutine and must not block.
type DecisionFunc func(Decision)

// Option configures the Service.
type Option func(*Service)

// WithPollEvery sets how often waiting states are re-evaluated against the
// failure detector (a safety net for dropped suspicion events).
func WithPollEvery(d time.Duration) Option {
	return func(s *Service) { s.pollEvery = d }
}

// Service runs consensus instances for one process.
type Service struct {
	ep        *rchannel.Endpoint
	self      proc.ID
	members   []proc.ID
	others    []proc.ID
	quorum    int
	sub       *fd.Subscription
	onDecide  DecisionFunc
	pollEvery time.Duration

	events *eventq.Queue[event]

	// Event-loop-owned state (only the loop goroutine touches it).
	insts   map[uint64]*instance
	decided map[uint64]bool

	startOnce sync.Once
	stop      chan struct{}
	done      sync.WaitGroup
}

type event struct {
	from    proc.ID
	netBody any      // network message or internal query (when non-nil)
	propose *mDecide // local proposal (Inst, Val); nil otherwise
	tick    bool
}

type roundState struct {
	estimates     map[proc.ID]mEstimate
	acks          map[proc.ID]struct{}
	proposal      *mPropose // buffered coordinator proposal (participant side)
	proposed      bool      // coordinator already proposed in this round
	proposalValue []byte    // the value this coordinator proposed
}

type instance struct {
	id        uint64
	round     uint64 // current participant round (0 = not started)
	waiting   bool   // participant is in phase 3
	announced bool   // mStart already broadcast
	hasEst    bool
	est       []byte
	ts        uint64
	rounds    map[uint64]*roundState
}

// New creates a consensus service over a fixed member universe. sub must be
// a failure detector subscription with the *short* timeout class (false
// suspicions are cheap here). onDecide receives every decision exactly once.
func New(ep *rchannel.Endpoint, members []proc.ID, sub *fd.Subscription, onDecide DecisionFunc, opts ...Option) *Service {
	s := &Service{
		ep:        ep,
		self:      ep.Self(),
		members:   append([]proc.ID(nil), members...),
		quorum:    proc.Majority(len(members)),
		sub:       sub,
		onDecide:  onDecide,
		pollEvery: 3 * time.Millisecond,
		events:    eventq.New[event](),
		insts:     make(map[uint64]*instance),
		decided:   make(map[uint64]bool),
		stop:      make(chan struct{}),
	}
	for _, m := range s.members {
		if m != s.self {
			s.others = append(s.others, m)
		}
	}
	for _, o := range opts {
		o(s)
	}
	ep.Handle(Proto, func(from proc.ID, body any) {
		s.events.Push(event{from: from, netBody: body})
	})
	return s
}

// Start launches the event loop.
func (s *Service) Start() {
	s.startOnce.Do(func() {
		s.done.Add(2)
		go s.loop()
		go s.tickLoop()
	})
}

// Stop terminates the event loop.
func (s *Service) Stop() {
	select {
	case <-s.stop:
		return
	default:
		close(s.stop)
	}
	s.done.Wait()
	s.events.Close()
}

// Propose submits this process's initial value for an instance. Proposing
// twice for the same instance keeps the first value. Propose never blocks.
func (s *Service) Propose(inst uint64, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	s.events.Push(event{propose: &mDecide{Inst: inst, Val: v}})
}

type queryDecided struct {
	inst  uint64
	reply chan bool
}

// Decided reports whether the instance has decided locally.
func (s *Service) Decided(inst uint64) bool {
	reply := make(chan bool, 1)
	s.events.Push(event{netBody: queryDecided{inst: inst, reply: reply}})
	select {
	case v := <-reply:
		return v
	case <-s.stop:
		return false
	}
}

func (s *Service) loop() {
	defer s.done.Done()
	for {
		ev, ok := s.events.TryPop()
		if !ok {
			select {
			case <-s.stop:
				return
			case <-s.events.Wait():
				continue
			}
		}
		s.handle(ev)
	}
}

func (s *Service) tickLoop() {
	defer s.done.Done()
	ticker := time.NewTicker(s.pollEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.events.Push(event{tick: true})
		}
	}
}

func (s *Service) handle(ev event) {
	switch {
	case ev.tick:
		s.pollSuspicions()
	case ev.propose != nil:
		s.handleLocalPropose(ev.propose.Inst, ev.propose.Val)
	case ev.netBody != nil:
		switch m := ev.netBody.(type) {
		case queryDecided:
			m.reply <- s.decided[m.inst]
		case mEstimate:
			s.handleEstimate(ev.from, m)
		case mPropose:
			s.handleProposal(m)
		case mAck:
			s.handleAck(ev.from, m)
		case mNack:
			// The coordinator's round failed; it has already moved on as a
			// participant, so a nack needs no action in this implementation.
		case mStart:
			if !s.decided[m.Inst] {
				if in := s.inst(m.Inst); in.round == 0 {
					s.enterRound(in, 1)
				}
			}
		case mDecide:
			s.decide(m.Inst, m.Val)
		}
	}
}

func (s *Service) coord(round uint64) proc.ID {
	return s.members[int(round)%len(s.members)]
}

func (s *Service) inst(id uint64) *instance {
	in, ok := s.insts[id]
	if !ok {
		in = &instance{id: id, rounds: make(map[uint64]*roundState)}
		s.insts[id] = in
	}
	return in
}

func (in *instance) roundState(r uint64) *roundState {
	rs, ok := in.rounds[r]
	if !ok {
		rs = &roundState{
			estimates: make(map[proc.ID]mEstimate),
			acks:      make(map[proc.ID]struct{}),
		}
		in.rounds[r] = rs
	}
	return rs
}

func (s *Service) handleLocalPropose(inst uint64, val []byte) {
	if s.decided[inst] {
		return
	}
	in := s.inst(inst)
	if !in.hasEst {
		in.hasEst = true
		in.est = val
		in.ts = 0
	}
	if in.round == 0 {
		s.enterRound(in, 1)
	} else {
		// We joined the instance without a value earlier; refresh the
		// coordinator of our current round with a value-carrying estimate.
		est := mEstimate{Inst: in.id, Round: in.round, HasEst: in.hasEst, Est: in.est, Ts: in.ts}
		_ = s.ep.Send(s.coord(in.round), Proto, est)
	}
}

// enterRound advances the instance to round r (phase 1).
func (s *Service) enterRound(in *instance, r uint64) {
	in.round = r
	in.waiting = true
	if !in.announced {
		in.announced = true
		_ = s.ep.SendAll(s.others, Proto, mStart{Inst: in.id})
	}
	est := mEstimate{Inst: in.id, Round: r, HasEst: in.hasEst, Est: in.est, Ts: in.ts}
	_ = s.ep.Send(s.coord(r), Proto, est)
	s.coordinatorCheck(in, r)
	s.participantCheck(in)
}

// coordinatorCheck runs phases 2 and 4 for round r if this process
// coordinates it, regardless of the participant's current round.
func (s *Service) coordinatorCheck(in *instance, r uint64) {
	if s.decided[in.id] || s.coord(r) != s.self {
		return
	}
	rs := in.roundState(r)
	if !rs.proposed && len(rs.estimates) >= s.quorum {
		var best *mEstimate
		for _, e := range rs.estimates {
			if !e.HasEst {
				continue
			}
			if best == nil || e.Ts > best.Ts {
				cp := e
				best = &cp
			}
		}
		if best != nil {
			rs.proposed = true
			rs.proposalValue = best.Est
			_ = s.ep.SendAll(s.members, Proto, mPropose{Inst: in.id, Round: r, Val: best.Est})
		}
	}
	if rs.proposed && len(rs.acks) >= s.quorum {
		s.decide(in.id, rs.proposalValue)
	}
}

// participantCheck runs phase 3 for the instance's current round.
func (s *Service) participantCheck(in *instance) {
	if s.decided[in.id] || !in.waiting || in.round == 0 {
		return
	}
	r := in.round
	rs := in.roundState(r)
	switch {
	case rs.proposal != nil:
		in.waiting = false
		in.hasEst = true
		in.est = rs.proposal.Val
		in.ts = r
		_ = s.ep.Send(s.coord(r), Proto, mAck{Inst: in.id, Round: r})
		s.enterRound(in, r+1)
	case s.sub != nil && s.sub.Suspected(s.coord(r)):
		in.waiting = false
		_ = s.ep.Send(s.coord(r), Proto, mNack{Inst: in.id, Round: r})
		s.enterRound(in, r+1)
	}
}

func (s *Service) handleEstimate(from proc.ID, m mEstimate) {
	if s.decided[m.Inst] {
		return
	}
	in := s.inst(m.Inst)
	in.roundState(m.Round).estimates[from] = m
	if in.round == 0 {
		s.enterRound(in, 1)
	}
	s.coordinatorCheck(in, m.Round)
}

func (s *Service) handleProposal(m mPropose) {
	if s.decided[m.Inst] {
		return
	}
	in := s.inst(m.Inst)
	rs := in.roundState(m.Round)
	if rs.proposal == nil {
		cp := m
		rs.proposal = &cp
	}
	if in.round == 0 {
		s.enterRound(in, 1)
		return
	}
	if m.Round == in.round {
		s.participantCheck(in)
	}
}

func (s *Service) handleAck(from proc.ID, m mAck) {
	if s.decided[m.Inst] {
		return
	}
	in := s.inst(m.Inst)
	in.roundState(m.Round).acks[from] = struct{}{}
	if in.round == 0 {
		s.enterRound(in, 1)
	}
	s.coordinatorCheck(in, m.Round)
}

// decide records and relays a decision (the R-broadcast of the algorithm)
// and emits it upward exactly once.
func (s *Service) decide(inst uint64, val []byte) {
	if s.decided[inst] {
		return
	}
	s.decided[inst] = true
	_ = s.ep.SendAll(s.others, Proto, mDecide{Inst: inst, Val: val})
	delete(s.insts, inst)
	if s.onDecide != nil {
		v := make([]byte, len(val))
		copy(v, val)
		s.onDecide(Decision{Instance: inst, Value: v})
	}
}

func (s *Service) pollSuspicions() {
	for _, in := range s.insts {
		s.participantCheck(in)
	}
}
