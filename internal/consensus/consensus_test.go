package consensus

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/transport"
)

// node bundles one process's lower stack for tests.
type node struct {
	id  proc.ID
	ep  *rchannel.Endpoint
	fd  *fd.Detector
	sub *fd.Subscription
	cs  *Service

	mu        sync.Mutex
	decisions map[uint64][]byte
	decidedCh chan Decision
}

type cluster struct {
	net   *transport.Network
	nodes []*node
}

func newCluster(t *testing.T, n int, netOpts ...transport.NetOption) *cluster {
	t.Helper()
	if len(netOpts) == 0 {
		netOpts = []transport.NetOption{transport.WithDelay(0, 2*time.Millisecond), transport.WithSeed(7)}
	}
	network := transport.NewNetwork(netOpts...)
	members := make([]proc.ID, n)
	for i := range members {
		members[i] = proc.ID(fmt.Sprintf("p%d", i))
	}
	c := &cluster{net: network}
	for _, id := range members {
		nd := &node{
			id:        id,
			decisions: make(map[uint64][]byte),
			decidedCh: make(chan Decision, 1024),
		}
		nd.ep = rchannel.New(network.Endpoint(id), rchannel.WithRTO(10*time.Millisecond))
		nd.fd = fd.New(nd.ep, members, fd.WithInterval(3*time.Millisecond), fd.WithCheckEvery(2*time.Millisecond))
		nd.sub = nd.fd.Subscribe(40 * time.Millisecond)
		nd.cs = New(nd.ep, members, nd.sub, func(d Decision) {
			nd.mu.Lock()
			nd.decisions[d.Instance] = d.Value
			nd.mu.Unlock()
			nd.decidedCh <- d
		})
		c.nodes = append(c.nodes, nd)
	}
	for _, nd := range c.nodes {
		nd.ep.Start()
		nd.fd.Start()
		nd.cs.Start()
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			nd.cs.Stop()
			nd.fd.Stop()
			nd.ep.Stop()
		}
		network.Shutdown()
	})
	return c
}

func (nd *node) waitDecision(t *testing.T, inst uint64, timeout time.Duration) []byte {
	t.Helper()
	deadline := time.After(timeout)
	for {
		nd.mu.Lock()
		v, ok := nd.decisions[inst]
		nd.mu.Unlock()
		if ok {
			return v
		}
		select {
		case <-deadline:
			t.Fatalf("%s: no decision for instance %d within %v", nd.id, inst, timeout)
			return nil
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestConsensusAgreementAndValidity(t *testing.T) {
	c := newCluster(t, 3)
	proposals := map[string]bool{}
	for i, nd := range c.nodes {
		v := fmt.Sprintf("value-%d", i)
		proposals[v] = true
		nd.cs.Propose(1, []byte(v))
	}
	var first []byte
	for _, nd := range c.nodes {
		v := nd.waitDecision(t, 1, 5*time.Second)
		if first == nil {
			first = v
		} else if string(first) != string(v) {
			t.Fatalf("disagreement: %q vs %q", first, v)
		}
	}
	if !proposals[string(first)] {
		t.Fatalf("decided value %q was never proposed (validity violation)", first)
	}
}

func TestConsensusSingleProposer(t *testing.T) {
	c := newCluster(t, 5)
	c.nodes[2].cs.Propose(1, []byte("only"))
	for _, nd := range c.nodes {
		if got := nd.waitDecision(t, 1, 5*time.Second); string(got) != "only" {
			t.Fatalf("%s decided %q, want %q", nd.id, got, "only")
		}
	}
}

func TestConsensusManyInstances(t *testing.T) {
	c := newCluster(t, 3)
	const instances = 20
	for inst := uint64(1); inst <= instances; inst++ {
		proposer := c.nodes[int(inst)%len(c.nodes)]
		proposer.cs.Propose(inst, []byte(fmt.Sprintf("v%d", inst)))
	}
	for _, nd := range c.nodes {
		for inst := uint64(1); inst <= instances; inst++ {
			want := fmt.Sprintf("v%d", inst)
			if got := nd.waitDecision(t, inst, 60*time.Second); string(got) != want {
				t.Fatalf("%s instance %d decided %q, want %q", nd.id, inst, got, want)
			}
		}
	}
}

// TestConsensusCoordinatorCrash kills the round-1 coordinator of the
// instance before anyone proposes; the remaining majority must still decide
// (this is the property that frees atomic broadcast from the membership
// service in the new architecture).
func TestConsensusCoordinatorCrash(t *testing.T) {
	c := newCluster(t, 3)
	// Coordinator of round 1 for any instance is members[1 % 3] = p1.
	c.net.Crash("p1")
	time.Sleep(5 * time.Millisecond)
	c.nodes[0].cs.Propose(1, []byte("survivor"))
	for i, nd := range c.nodes {
		if i == 1 {
			continue // crashed
		}
		if got := nd.waitDecision(t, 1, 5*time.Second); string(got) != "survivor" {
			t.Fatalf("%s decided %q, want %q", nd.id, got, "survivor")
		}
	}
}

// TestConsensusLossyNetwork checks liveness under 20% message loss (the
// reliable channel layer repairs the loss by retransmission).
func TestConsensusLossyNetwork(t *testing.T) {
	c := newCluster(t, 3,
		transport.WithDelay(0, 2*time.Millisecond),
		transport.WithLoss(0.2),
		transport.WithSeed(11),
	)
	for i, nd := range c.nodes {
		nd.cs.Propose(1, []byte(fmt.Sprintf("v%d", i)))
	}
	var first []byte
	for _, nd := range c.nodes {
		v := nd.waitDecision(t, 1, 15*time.Second)
		if first == nil {
			first = v
		} else if string(first) != string(v) {
			t.Fatalf("disagreement under loss: %q vs %q", first, v)
		}
	}
}

// TestConsensusFalseSuspicion runs with an absurdly small suspicion timeout
// so that correct coordinators are routinely suspected; <>S tolerates this:
// the algorithm must still terminate and agree.
func TestConsensusFalseSuspicion(t *testing.T) {
	network := transport.NewNetwork(transport.WithDelay(1*time.Millisecond, 6*time.Millisecond), transport.WithSeed(3))
	members := proc.IDs("a", "b", "c")
	var nodes []*node
	for _, id := range members {
		nd := &node{id: id, decisions: make(map[uint64][]byte), decidedCh: make(chan Decision, 16)}
		nd.ep = rchannel.New(network.Endpoint(id), rchannel.WithRTO(10*time.Millisecond))
		nd.fd = fd.New(nd.ep, members, fd.WithInterval(2*time.Millisecond), fd.WithCheckEvery(1*time.Millisecond))
		nd.sub = nd.fd.Subscribe(4 * time.Millisecond) // aggressive: false suspicions guaranteed
		nd.cs = New(nd.ep, members, nd.sub, func(d Decision) {
			nd.mu.Lock()
			nd.decisions[d.Instance] = d.Value
			nd.mu.Unlock()
		})
		nodes = append(nodes, nd)
	}
	for _, nd := range nodes {
		nd.ep.Start()
		nd.fd.Start()
		nd.cs.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.cs.Stop()
			nd.fd.Stop()
			nd.ep.Stop()
		}
		network.Shutdown()
	}()

	for i, nd := range nodes {
		nd.cs.Propose(1, []byte(fmt.Sprintf("v%d", i)))
	}
	var first []byte
	for _, nd := range nodes {
		v := nd.waitDecision(t, 1, 20*time.Second)
		if first == nil {
			first = v
		} else if string(first) != string(v) {
			t.Fatalf("disagreement under false suspicion: %q vs %q", first, v)
		}
	}
}

// TestConsensusPropertySweep runs one consensus instance per seed under
// randomized loss and jitter, asserting agreement and validity every time.
func TestConsensusPropertySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	for _, seed := range []int64{2, 4, 6, 9, 12} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			c := newCluster(t, 3,
				transport.WithDelay(0, time.Duration(1+seed%3)*time.Millisecond),
				transport.WithLoss(float64(seed%10)/100),
				transport.WithSeed(seed),
			)
			proposals := map[string]bool{}
			for i, nd := range c.nodes {
				v := fmt.Sprintf("s%d-v%d", seed, i)
				proposals[v] = true
				nd.cs.Propose(1, []byte(v))
			}
			var first []byte
			for _, nd := range c.nodes {
				v := nd.waitDecision(t, 1, 30*time.Second)
				if first == nil {
					first = v
				} else if string(first) != string(v) {
					t.Fatalf("agreement violated: %q vs %q", first, v)
				}
			}
			if !proposals[string(first)] {
				t.Fatalf("validity violated: %q never proposed", first)
			}
		})
	}
}
