package proc

import (
	"testing"
	"testing/quick"
)

func TestViewBasics(t *testing.T) {
	v := NewView("a", "b", "c")
	if v.Seq != 0 {
		t.Fatalf("initial seq %d", v.Seq)
	}
	if v.Primary() != "a" {
		t.Fatalf("primary %s", v.Primary())
	}
	if !v.Contains("b") || v.Contains("x") {
		t.Fatal("contains wrong")
	}
	if v.Index("c") != 2 || v.Index("x") != -1 {
		t.Fatal("index wrong")
	}
}

func TestViewEmptyPrimary(t *testing.T) {
	var v View
	if v.Primary() != "" {
		t.Fatalf("empty view primary %q", v.Primary())
	}
}

func TestViewRemove(t *testing.T) {
	v := NewView("a", "b", "c")
	v2 := v.Remove("b")
	if v2.Seq != 1 || v2.Contains("b") || len(v2.Members) != 2 {
		t.Fatalf("remove: %v", v2)
	}
	// Removing an absent member is a no-op with unchanged Seq.
	v3 := v2.Remove("b")
	if !v3.Equal(v2) {
		t.Fatalf("remove absent changed view: %v", v3)
	}
	// Original view untouched (immutability).
	if !v.Contains("b") {
		t.Fatal("Remove mutated receiver")
	}
}

func TestViewAdd(t *testing.T) {
	v := NewView("a")
	v2 := v.Add("b")
	if v2.Seq != 1 || !v2.Contains("b") || v2.Members[1] != "b" {
		t.Fatalf("add: %v", v2)
	}
	if v3 := v2.Add("b"); !v3.Equal(v2) {
		t.Fatalf("add existing changed view: %v", v3)
	}
}

func TestViewRotatePast(t *testing.T) {
	v := NewView("s1", "s2", "s3")
	v2 := v.RotatePast("s1")
	want := []ID{"s2", "s3", "s1"}
	if v2.Seq != 1 {
		t.Fatalf("seq %d", v2.Seq)
	}
	for i, m := range want {
		if v2.Members[i] != m {
			t.Fatalf("rotate: %v want %v", v2.Members, want)
		}
	}
	// Rotating past a non-primary is a no-op (idempotence under total
	// order of duplicate primary-change requests).
	if v3 := v2.RotatePast("s1"); !v3.Equal(v2) {
		t.Fatalf("rotate stale changed view: %v", v3)
	}
	// Single-member views never rotate.
	single := NewView("x")
	if got := single.RotatePast("x"); !got.Equal(single) {
		t.Fatalf("single rotate: %v", got)
	}
}

func TestMajority(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 6: 4, 7: 4}
	for n, want := range cases {
		if got := Majority(n); got != want {
			t.Errorf("Majority(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: two majorities of the same universe always intersect — the
// foundation of every quorum argument in the stack.
func TestMajoritiesIntersect(t *testing.T) {
	prop := func(n uint8, aBits, bBits uint64) bool {
		size := int(n%7) + 1
		m := Majority(size)
		var a, b []int
		for i := 0; i < size; i++ {
			if aBits&(1<<i) != 0 {
				a = append(a, i)
			}
			if bBits&(1<<i) != 0 {
				b = append(b, i)
			}
		}
		if len(a) < m || len(b) < m {
			return true // not both quorums; nothing to check
		}
		for _, x := range a {
			for _, y := range b {
				if x == y {
					return true
				}
			}
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestViewString(t *testing.T) {
	v := View{Seq: 12, Members: IDs("a", "b")}
	if got := v.String(); got != "v12[a b]" {
		t.Fatalf("String() = %q", got)
	}
}
