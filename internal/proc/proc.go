// Package proc defines process identities and group views.
//
// Views follow the paper's convention (Section 3.2.3, footnote 10): a view
// is a *list* of processes, not a set. The process at the head of the list
// is the primary. A "primary change" rotates the list without excluding the
// old primary; an exclusion removes a process from the list.
package proc

import (
	"slices"
	"strings"
)

// ID identifies a process. IDs are comparable and usable as map keys.
type ID string

// View is an ordered list of group members, delivered to applications by the
// membership service. Seq increases by one with every installed view, and
// all processes of the primary partition observe the same sequence of views.
type View struct {
	Seq     uint64
	Members []ID
}

// NewView returns the initial view (Seq 0) over the given members.
// The member slice is copied.
func NewView(members ...ID) View {
	return View{Members: slices.Clone(members)}
}

// Primary returns the head of the member list, or "" for an empty view.
func (v View) Primary() ID {
	if len(v.Members) == 0 {
		return ""
	}
	return v.Members[0]
}

// Contains reports whether id is a member of the view.
func (v View) Contains(id ID) bool {
	return slices.Contains(v.Members, id)
}

// Index returns the position of id in the view, or -1 if absent.
func (v View) Index(id ID) int {
	return slices.Index(v.Members, id)
}

// Clone returns a deep copy of the view.
func (v View) Clone() View {
	return View{Seq: v.Seq, Members: slices.Clone(v.Members)}
}

// Remove returns the successor view without id. If id is not a member the
// view is returned unchanged (same Seq): removing an absent process is a
// no-op so that duplicate exclusion requests converge.
func (v View) Remove(id ID) View {
	i := v.Index(id)
	if i < 0 {
		return v
	}
	members := make([]ID, 0, len(v.Members)-1)
	members = append(members, v.Members[:i]...)
	members = append(members, v.Members[i+1:]...)
	return View{Seq: v.Seq + 1, Members: members}
}

// Add returns the successor view with id appended. Adding an existing
// member is a no-op (same Seq).
func (v View) Add(id ID) View {
	if v.Contains(id) {
		return v
	}
	members := make([]ID, 0, len(v.Members)+1)
	members = append(members, v.Members...)
	members = append(members, id)
	return View{Seq: v.Seq + 1, Members: members}
}

// RotatePast returns the successor view with the old primary moved to the
// tail, provided the current primary is old. If the primary has already
// changed (e.g. two concurrent primary-change messages for the same process,
// or a stale suspicion), the view is returned unchanged, which makes
// primary-change requests idempotent under total order.
//
// This is exactly the Figure 8 transition: primary-change(s1) turns
// [s1 s2 s3] into [s2 s3 s1] and does not exclude s1.
func (v View) RotatePast(old ID) View {
	if len(v.Members) < 2 || v.Primary() != old {
		return v
	}
	members := make([]ID, 0, len(v.Members))
	members = append(members, v.Members[1:]...)
	members = append(members, v.Members[0])
	return View{Seq: v.Seq + 1, Members: members}
}

// Equal reports whether two views have the same sequence number and the same
// member list in the same order.
func (v View) Equal(o View) bool {
	return v.Seq == o.Seq && slices.Equal(v.Members, o.Members)
}

// String renders the view as "v3[a b c]".
func (v View) String() string {
	var b strings.Builder
	b.WriteByte('v')
	b.WriteString(uintToString(v.Seq))
	b.WriteByte('[')
	for i, m := range v.Members {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(string(m))
	}
	b.WriteByte(']')
	return b.String()
}

// Majority returns the smallest integer strictly greater than n/2.
// Quorums of this size pairwise intersect, which is the basis of the
// consensus and generic broadcast safety arguments (f < n/2).
func Majority(n int) int {
	return n/2 + 1
}

// IDs builds an []ID from strings, a convenience for tests and examples.
func IDs(names ...string) []ID {
	ids := make([]ID, len(names))
	for i, n := range names {
		ids[i] = ID(n)
	}
	return ids
}

func uintToString(u uint64) string {
	if u == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	return string(buf[i:])
}
