// Package seqset provides a memory-bounded set of uint64 sequence numbers
// with prefix compaction.
//
// Broadcast layers must remember which (origin, seq) pairs they have already
// delivered in order to suppress duplicates. Remembering every sequence
// number forever grows without bound; because sequence numbers per origin are
// dense (1, 2, 3, ...), a delivered prefix [1..w] compresses into a single
// watermark w. Set stores the watermark plus the sparse out-of-order suffix.
package seqset

// Set is a set of positive sequence numbers with prefix compaction.
type Set struct {
	watermark uint64              // every seq in [1..watermark] is a member
	sparse    map[uint64]struct{} // members > watermark
}

// New returns an empty set.
func New() *Set {
	return &Set{sparse: make(map[uint64]struct{})}
}

// Add inserts seq and returns true if it was not already present.
// Sequence number 0 is never a member (sequences start at 1).
func (s *Set) Add(seq uint64) bool {
	if seq == 0 || seq <= s.watermark {
		return false
	}
	if _, ok := s.sparse[seq]; ok {
		return false
	}
	s.sparse[seq] = struct{}{}
	s.compact()
	return true
}

// Contains reports membership of seq.
func (s *Set) Contains(seq uint64) bool {
	if seq == 0 {
		return false
	}
	if seq <= s.watermark {
		return true
	}
	_, ok := s.sparse[seq]
	return ok
}

// Watermark returns the largest w such that all of [1..w] are members.
func (s *Set) Watermark() uint64 {
	return s.watermark
}

// Len returns the number of members.
func (s *Set) Len() int {
	return int(s.watermark) + len(s.sparse)
}

// SparseLen returns the number of members kept individually (not compacted
// into the watermark). It bounds the memory footprint and is exported for
// tests asserting compaction.
func (s *Set) SparseLen() int {
	return len(s.sparse)
}

func (s *Set) compact() {
	for {
		if _, ok := s.sparse[s.watermark+1]; !ok {
			return
		}
		delete(s.sparse, s.watermark+1)
		s.watermark++
	}
}
