package seqset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddContains(t *testing.T) {
	s := New()
	if s.Contains(1) {
		t.Fatal("empty set contains 1")
	}
	if !s.Add(3) || s.Add(3) {
		t.Fatal("Add(3) semantics")
	}
	if !s.Contains(3) || s.Contains(2) {
		t.Fatal("contains wrong")
	}
}

func TestZeroNeverMember(t *testing.T) {
	s := New()
	if s.Add(0) || s.Contains(0) {
		t.Fatal("0 must never be a member")
	}
}

func TestPrefixCompaction(t *testing.T) {
	s := New()
	// Insert 1..100 out of order; everything must compact into the
	// watermark.
	perm := rand.New(rand.NewSource(1)).Perm(100)
	for _, p := range perm {
		s.Add(uint64(p + 1))
	}
	if s.Watermark() != 100 {
		t.Fatalf("watermark %d", s.Watermark())
	}
	if s.SparseLen() != 0 {
		t.Fatalf("sparse %d after dense insert", s.SparseLen())
	}
	if s.Len() != 100 {
		t.Fatalf("len %d", s.Len())
	}
}

func TestGapBlocksCompaction(t *testing.T) {
	s := New()
	s.Add(1)
	s.Add(3)
	if s.Watermark() != 1 || s.SparseLen() != 1 {
		t.Fatalf("watermark %d sparse %d", s.Watermark(), s.SparseLen())
	}
	s.Add(2) // fills the gap: 3 must fold in
	if s.Watermark() != 3 || s.SparseLen() != 0 {
		t.Fatalf("after gap fill: watermark %d sparse %d", s.Watermark(), s.SparseLen())
	}
}

// Property: Set behaves exactly like a map[uint64]bool for any insertion
// sequence (ignoring zeros).
func TestMatchesReferenceModel(t *testing.T) {
	prop := func(seqs []uint16) bool {
		s := New()
		ref := make(map[uint64]bool)
		for _, raw := range seqs {
			seq := uint64(raw%64) + 1
			added := s.Add(seq)
			if added == ref[seq] {
				return false // Add must report prior absence
			}
			ref[seq] = true
		}
		for seq := uint64(1); seq <= 64; seq++ {
			if s.Contains(seq) != ref[seq] {
				return false
			}
		}
		return s.Len() == len(ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: after inserting any permutation of 1..n, memory is fully
// compacted (sparse part empty).
func TestDenseAlwaysCompacts(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		s := New()
		for _, p := range rand.New(rand.NewSource(seed)).Perm(n) {
			s.Add(uint64(p + 1))
		}
		return s.Watermark() == uint64(n) && s.SparseLen() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
