package chaostest

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// TestLeaderLeaseFailoverHandoff is the acceptance test of the leadership
// lease's one dangerous moment: the primary dies MID-LEASE. Two things must
// hold across the handoff, and both are asserted here under the seeded
// schedule:
//
//  1. Mutual exclusion of the lease windows. The deposed primary keeps
//     running (crash-stop at the network level only) and still believes in
//     whatever window its last committed renewal bought; the new primary
//     must not serve lease reads until that window plus the drift margin
//     has fully passed. A sampler polls every core's
//     gcs_replication_lease_held gauge — a GaugeFunc evaluated at read
//     time, so each sample is the replica's live answer — and any sweep
//     that finds two holders for the same shard is a safety violation.
//     The windows are designed to be disjoint by at least the margin
//     (10·raceScale ms here), orders of magnitude wider than one sweep.
//
//  2. No linearizable read loses an acked write. A dedicated reader
//     hammers reads of randomly chosen already-acked ops at
//     ReadLinearizable straight through the kill, the election and the
//     handoff gate; every one must observe the write (count exactly 1),
//     whether it was served by the old lease, the ordered barrier a new
//     primary falls back to inside the gate, or the new lease.
//
// The lease TTL (40·raceScale ms) + default margin (TTL/4) stays under the
// 60·raceScale ms failover suspicion timeout finishCore arms — the
// deployment constraint EnableLeaderLease documents.
func TestLeaderLeaseFailoverHandoff(t *testing.T) {
	const shards = 1
	seed := envInt("CHAOS_SEED", 29)
	c := buildCluster(t, shards, seed)

	ttl := 40 * raceScale * time.Millisecond
	for _, n := range c.cores {
		for _, rep := range n.reps {
			rep.EnableLeaderLease(replication.LeaderLeaseConfig{TTL: ttl})
		}
	}
	// Registered after buildCluster's teardown, so it runs BEFORE it: the
	// renewal loops stop broadcasting before the stacks go away.
	t.Cleanup(func() {
		for _, n := range c.cores {
			for _, rep := range n.reps {
				rep.DisableLeaderLease()
			}
		}
	})

	// leaseHolders reads every core's lease_held gauge for shard 0 — the
	// external observer's view, crashed cores included (a deposed primary's
	// stack keeps running; its opinion is exactly what must not overlap).
	leaseHolders := func() []proc.ID {
		var held []proc.ID
		for _, n := range c.cores {
			v, ok := c.reg.Value("gcs_replication_lease_held",
				telemetry.L("node", string(n.id)), telemetry.L("shard", strconv.Itoa(0)))
			if ok && v == 1 {
				held = append(held, n.id)
			}
		}
		return held
	}
	leaseReadsTotal := func() uint64 {
		var sum uint64
		for _, n := range c.cores {
			sum += n.reps[0].LeaderLeaseStats().LeaseReads
		}
		return sum
	}

	// Baseline acked writes — the pool the handoff reader draws from.
	cl := c.newShardedClient(c.addrList(false), 30*time.Second, false)
	var acked []string
	for n := 1; n <= 20; n++ {
		op := opName(3, n)
		if _, err := cl.Call([]byte(op)); err != nil {
			t.Fatalf("write %s: %v", op, err)
		}
		acked = append(acked, op)
	}

	// Wait for the initial primary (r1 — shard 0's replica list is not
	// rotated) to hold a committed lease, then prove the fast path is live:
	// linearizable reads must land on it without a barrier.
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		//gcsvet:ignore wallclock -- watchdog over real goroutines: lease grants ride real broadcasts and need a real deadline
		deadline := time.Now().Add(10 * raceScale * time.Second)
		for !cond() {
			//gcsvet:ignore wallclock -- same watchdog deadline; expiry only fails the test louder, never changes the schedule
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * raceScale * time.Millisecond)
		}
	}
	waitFor("initial lease at r1", func() bool {
		h := leaseHolders()
		return len(h) == 1 && h[0] == c.ids[0]
	})
	preKill := leaseReadsTotal()
	waitFor("lease-served linearizable reads", func() bool {
		if _, err := cl.ReadAt([]byte(acked[0]), service.ReadLinearizable); err != nil {
			t.Fatalf("linearizable read before kill: %v", err)
		}
		return leaseReadsTotal() > preKill
	})

	// The overlap sampler: any single sweep seeing two holders is a
	// violation of the lease safety argument.
	var violMu sync.Mutex
	var violations []string
	sampleStop := make(chan struct{})
	var samplers sync.WaitGroup
	samplers.Add(1)
	go func() {
		defer samplers.Done()
		for {
			select {
			case <-sampleStop:
				return
			case <-time.After(raceScale * time.Millisecond):
			}
			if h := leaseHolders(); len(h) > 1 {
				violMu.Lock()
				violations = append(violations, fmt.Sprintf("lease held by %v simultaneously", h))
				violMu.Unlock()
			}
		}
	}()

	// The handoff reader: linearizable reads of already-acked writes, open
	// loop, straight through the kill and election. Reads go through the
	// surviving gateways once r1 is gone (the client fails over on dial).
	rng := rand.New(rand.NewSource(seed * 7))
	rcl := c.newShardedClient(c.addrList(false), 30*time.Second, false)
	rst := &clientStats{}
	samplers.Add(1)
	go func() {
		defer samplers.Done()
		for {
			select {
			case <-sampleStop:
				return
			case <-time.After(2 * raceScale * time.Millisecond):
			}
			op := acked[rng.Intn(len(acked))]
			got, err := rcl.ReadAt([]byte(op), service.ReadLinearizable)
			if err != nil {
				if errors.Is(err, service.ErrClosed) {
					return
				}
				rst.fail("linearizable read %s across handoff: %v", op, err)
				continue
			}
			if string(got) != "1" {
				rst.fail("linearizable read across handoff lost acked write %s -> %q", op, got)
			}
		}
	}()

	// Background writer keeps the ordered path busy (and checks its own
	// read-your-writes at every level, including linearizable, post-kill).
	wst := &clientStats{}
	writeStop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runClient(c, cl, 4, writeStop, wst)
	}()

	// Let a couple of renewals commit, then kill the primary MID-LEASE: the
	// crash lands the instant the gauge last read 1 (under load the window
	// can transiently lapse between renewals, so poll rather than assert a
	// single instant).
	time.Sleep(ttl / 2)
	waitFor("r1 holding the lease at the kill point", func() bool {
		h := leaseHolders()
		return len(h) == 1 && h[0] == c.ids[0]
	})
	t.Logf("lease: killing primary %s mid-lease (ttl %v)", c.ids[0], ttl)
	c.network.Crash(c.ids[0])
	time.Sleep(400 * raceScale * time.Millisecond)
	c.network.Restart(c.ids[0])

	// The lease must land on a NEW holder and resume serving fast-path
	// reads (the reader above is still hammering).
	postKill := leaseReadsTotal()
	var newHolder proc.ID
	waitFor("lease handoff to a new holder", func() bool {
		h := leaseHolders()
		if len(h) == 1 && h[0] != c.ids[0] {
			newHolder = h[0]
			return true
		}
		return false
	})
	waitFor("lease reads at the new holder", func() bool {
		return leaseReadsTotal() > postKill
	})
	t.Logf("lease: handoff %s -> %s; lease reads %d before kill, %d after handoff",
		c.ids[0], newHolder, postKill, leaseReadsTotal())

	// Quiesce: traffic off, samplers off, then audit.
	close(writeStop)
	wg.Wait()
	close(sampleStop)
	samplers.Wait()

	violMu.Lock()
	for _, v := range violations {
		t.Errorf("lease overlap: %s", v)
	}
	violMu.Unlock()
	for _, st := range []*clientStats{rst, wst} {
		st.mu.Lock()
		for _, f := range st.fails {
			t.Errorf("%s", f)
		}
		st.mu.Unlock()
	}

	// The epoch change must have voided the old lease at the survivors —
	// the mechanism behind the handoff gate, visible in the accounting.
	var voided uint64
	for _, n := range c.cores {
		st := n.reps[0].LeaderLeaseStats()
		t.Logf("lease stats %s: grants=%d voided=%d leaseReads=%d fallbacks=%d",
			n.id, st.Grants, st.Voided, st.LeaseReads, st.BarrierFallbacks)
		voided += st.Voided
	}
	if voided == 0 {
		t.Error("no replica voided a lease across the primary change")
	}

	wst.mu.Lock()
	acked = append(acked, wst.acked...)
	wst.mu.Unlock()
	c.converge(30 * time.Second)
	c.checkDigests()
	c.auditExactlyOnce(acked)
}
