package chaostest

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/membership"
	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/replication"
	"repro/internal/service"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Storage knobs for durable chaos clusters: segments small enough that load
// forces rotation, compaction threshold small enough that it forces
// background snapshots — the power-loss tests must exercise the whole
// engine, not just a single growing segment.
const (
	chaosSegmentBytes = 32 << 10
	chaosCompactBytes = 128 << 10
)

// coreNode is one full member: S complete protocol stacks multiplexed over
// one memnet endpoint, a passive replica per shard, and a service gateway.
type coreNode struct {
	id    proc.ID
	dead  bool // wiped (rejoined as follower, tracked in cluster.extras)
	fault *transport.FaultTransport
	mux   *transport.GroupMux
	sms   []*chaosSM
	reps  []*replication.Passive
	nds   []*core.Node
	gw    *service.Gateway

	// Durable mode only (cluster.dataDir set): the per-shard file engines,
	// what each shard replayed from its own disk at this life's boot, and
	// the restart-alignment recoveries.
	engs    []*storage.File
	replays []replication.ReplayStats
	recs    []*replication.Recovery
}

// edgeNode is a follower node — the wipe/rejoin target: a follower replica
// per shard, fed by a Syncer over a fresh muxed endpoint, plus a gateway
// fronting the followers. Rebuilt from nothing (higher incarnation) on
// every rejoin. The same shape serves a wiped CORE rejoining under its old
// ID (rejoinCoreAsFollower).
type edgeNode struct {
	id      proc.ID
	inc     uint64
	tr      transport.Transport // the physical endpoint under the mux
	mux     *transport.GroupMux
	sms     []*chaosSM
	reps    []*replication.Passive
	eps     []*rchannel.Endpoint
	syncers []*replication.Syncer
	gw      *service.Gateway

	// Durable mode only: per-shard file engines and boot-time replay stats.
	engs    []*storage.File
	replays []replication.ReplayStats
}

// cluster is the chaos harness's world.
type cluster struct {
	t       *testing.T
	network *transport.Network
	reg     *telemetry.Registry // every replica registers; converge() audits through it
	shards  int
	ids     []proc.ID // core member IDs (the consensus universe)
	edgeID  proc.ID
	addrs   map[proc.ID]string // service addresses (memnet: the ID itself)
	cores   []*coreNode
	edge    *edgeNode
	edgeInc uint64
	extras  []*edgeNode // wiped cores reborn as followers

	// Durable mode: dataDir holds one directory per node ID with one engine
	// directory per shard; coreInc is the cores' reliable-channel
	// incarnation, bumped on every restart-from-disk so the new life
	// supersedes the old one on the wire. drain parks gateway closes whose
	// conn handlers are still timing out inside a dead consensus layer.
	dataDir string
	coreInc uint64
	drain   sync.WaitGroup

	seed int64 // the schedule seed; also derives each core's fault-layer seed
}

// shardDir is where node id keeps shard k's engine.
func (c *cluster) shardDir(id proc.ID, k int) string {
	return filepath.Join(c.dataDir, string(id), fmt.Sprintf("shard%d", k))
}

// scope is the (node, shard) telemetry scope — the same label scheme gcsnode
// uses, so the chaos assertions read the identical series a dashboard would.
// Rebuilt nodes re-register under the same labels and re-bind the series.
func (c *cluster) scope(id proc.ID, k int) *telemetry.Scope {
	return c.reg.Scope(telemetry.L("node", string(id)), telemetry.L("shard", strconv.Itoa(k)))
}

// commitIndexGauge reads one replica's commit-index gauge through the
// registry — the external observer's view of replication progress.
func (c *cluster) commitIndexGauge(id proc.ID, k int) (uint64, bool) {
	v, ok := c.reg.Value("gcs_replication_commit_index",
		telemetry.L("node", string(id)), telemetry.L("shard", strconv.Itoa(k)))
	return uint64(v), ok
}

// registryLag returns max-min over the live cores' commit-index gauges for
// shard k, read purely through the telemetry registry.
func (c *cluster) registryLag(k int) uint64 {
	first := true
	var lo, hi uint64
	for _, n := range c.liveCores() {
		v, ok := c.commitIndexGauge(n.id, k)
		if !ok {
			continue
		}
		if first {
			lo, hi, first = v, v, false
			continue
		}
		lo, hi = min(lo, v), max(hi, v)
	}
	return hi - lo
}

// rotated returns ids rotated left by k — shard k's replica list, spreading
// initial primaries across the member set.
func rotated(ids []proc.ID, k int) []proc.ID {
	k = k % len(ids)
	out := make([]proc.ID, 0, len(ids))
	out = append(out, ids[k:]...)
	out = append(out, ids[:k]...)
	return out
}

func buildCluster(t *testing.T, shards int, seed int64) *cluster {
	t.Helper()
	c := newCluster(t, shards, seed)
	for _, id := range c.ids {
		c.cores = append(c.cores, c.buildCore(id))
	}
	c.buildEdge()
	t.Cleanup(c.teardown)
	return c
}

// buildDurableCluster is buildCluster with every node (cores AND edge)
// running the file storage engine under a per-node data directory — the
// power-loss world. The cores are built with the phased restart-from-disk
// path even on first boot (fresh directories just make replay and recovery
// trivial), so there is exactly one boot sequence to trust.
func buildDurableCluster(t *testing.T, shards int, seed int64) *cluster {
	t.Helper()
	c := newCluster(t, shards, seed)
	c.dataDir = t.TempDir()
	c.coreInc = 1
	c.startCoresFromDisk()
	c.buildEdge()
	t.Cleanup(c.teardown)
	return c
}

func newCluster(t *testing.T, shards int, seed int64) *cluster {
	c := &cluster{
		t:       t,
		network: transport.NewNetwork(transport.WithDelay(0, 2*time.Millisecond), transport.WithSeed(seed)),
		reg:     telemetry.NewRegistry(),
		seed:    seed,
		shards:  shards,
		ids:     proc.IDs("r1", "r2", "r3"),
		edgeID:  "e1",
		addrs:   make(map[proc.ID]string),
	}
	for _, id := range append(append([]proc.ID{}, c.ids...), c.edgeID) {
		c.addrs[id] = string(id)
	}
	return c
}

// buildCore assembles one full member and starts it (the in-memory path:
// each core comes up completely before the next is built).
func (c *cluster) buildCore(id proc.ID) *coreNode {
	n := c.assembleCore(id)
	for _, nd := range n.nds {
		nd.Start()
	}
	c.finishCore(n)
	return n
}

// startCoresFromDisk boots every core through the durable four-phase
// sequence: assemble (replay own snapshot + WAL), start the substrates,
// align the replicas on the union of what survived (Recovery), and only
// then elect a primary and open the gateways. The phasing matters: a core
// that started failover before its peers recovered could take traffic at a
// commit index another disk has already passed.
func (c *cluster) startCoresFromDisk() {
	c.t.Helper()
	for _, id := range c.ids {
		c.cores = append(c.cores, c.assembleCore(id))
	}
	for _, n := range c.cores {
		for _, nd := range n.nds {
			nd.Start()
		}
	}
	c.recoverCores(10 * time.Second)
	for _, n := range c.cores {
		c.finishCore(n)
	}
}

// assembleCore builds one full member's stacks without starting them. In
// durable mode each shard opens its file engine and replays it BEFORE the
// substrate exists, registers the restart Recovery (which also serves the
// donor side of sync) in place of plain ServeSync, and the node carries
// the cluster's core incarnation so a life restarted from disk supersedes
// its previous one on the reliable channels.
func (c *cluster) assembleCore(id proc.ID) *coreNode {
	durable := c.dataDir != ""
	// Fault-injection layer between the memnet endpoint and the mux: all of
	// the core's protocol traffic (every shard) crosses it, so partition
	// scenarios steer one knob per node. Idle it is pure pass-through (one
	// atomic load per send), which makes every non-partition chaos suite an
	// implicit overhead proof for the fault layer.
	var idx int64
	for i, cid := range c.ids {
		if cid == id {
			idx = int64(i)
		}
	}
	fault := transport.NewFaultTransport(c.network.Endpoint(id), c.seed*31+idx)
	n := &coreNode{id: id, fault: fault, mux: transport.NewGroupMux(fault, c.shards)}
	for k := 0; k < c.shards; k++ {
		sm := newChaosSM()
		rep := replication.NewPassive(sm, rotated(c.ids, k))
		rep.SetSnapshotter(sm.snapshotter())
		var inc uint64
		if durable {
			eng, err := storage.Open(c.shardDir(id, k), storage.Config{SegmentBytes: chaosSegmentBytes})
			if err != nil {
				c.t.Fatal(err)
			}
			rep.SetStorage(replication.StorageConfig{Engine: eng, CompactBytes: chaosCompactBytes})
			rs, err := rep.ReplayStorage()
			if err != nil {
				c.t.Fatalf("%s shard %d: replay: %v", id, k, err)
			}
			n.engs = append(n.engs, eng)
			n.replays = append(n.replays, rs)
			inc = c.coreInc
		}
		node, err := core.NewNode(n.mux.Group(k), core.Config{
			Self:     id,
			Universe: c.ids,
			Relation: replication.PassiveRelation(),
			// The race detector slows the stacks several-fold; unscaled
			// heartbeat/suspicion timing livelocks consensus on small CI
			// machines with this many stacks (see race_off.go).
			RTO:              20 * raceScale * time.Millisecond,
			HeartbeatEvery:   5 * raceScale * time.Millisecond,
			FDCheckEvery:     2 * raceScale * time.Millisecond,
			SuspicionTimeout: 50 * raceScale * time.Millisecond,
			Incarnation:      inc,
			// The membership join path's state transfer is the replica
			// snapshot, captured by the hook AT the ordered join's delivery
			// point (a delivery boundary identical at every member).
			Snapshot: rep.EncodeSnapshot,
			Restore:  func(b []byte) { _ = rep.InstallSnapshot(b) },
		}, rep.DeliverFunc())
		if err != nil {
			c.t.Fatal(err)
		}
		rep.Bind(node)
		// Donor side of the state-transfer protocol: registered before the
		// stack starts (rchannel handlers are pre-start only).
		if durable {
			n.recs = append(n.recs, replication.NewRecovery(
				node.Endpoint(), rep, c.ids, replication.SyncConfig{Join: node.Join}))
		} else {
			replication.ServeSync(node.Endpoint(), rep, replication.SyncConfig{Join: node.Join})
		}
		scope := c.scope(id, k)
		node.RegisterMetrics(scope)
		rep.RegisterMetrics(scope)
		n.sms = append(n.sms, sm)
		n.reps = append(n.reps, rep)
		n.nds = append(n.nds, node)
	}
	return n
}

// finishCore arms failover and opens the gateway — the moment the member
// becomes eligible for traffic.
func (c *cluster) finishCore(n *coreNode) {
	for _, rep := range n.reps {
		rep.StartFailover(60 * raceScale * time.Millisecond)
		// Quorum-progress watchdog, well above the suspicion timeout so an
		// ordinary election never reads as a stall: a partitioned primary
		// answers fresh writes DEGRADED instead of parking them.
		rep.StartWatchdog(replication.WatchdogConfig{
			StallTimeout: 400 * raceScale * time.Millisecond,
		})
	}
	n.gw = c.newGateway(n.id, n.shardTable())
}

// faultOf returns core id's fault-injection layer.
func (c *cluster) faultOf(id proc.ID) *transport.FaultTransport {
	for _, n := range c.cores {
		if n.id == id {
			return n.fault
		}
	}
	c.t.Fatalf("no core %s", id)
	return nil
}

// recoverCores runs the restart alignment concurrently for every shard of
// every core: each replica pulls the deltas its own disk lost from
// whichever peer's disk kept more, so the group re-converges on the union
// of what survived before any primary is elected.
func (c *cluster) recoverCores(timeout time.Duration) {
	c.t.Helper()
	type res struct {
		id  proc.ID
		k   int
		err error
	}
	ch := make(chan res, len(c.cores)*c.shards)
	for _, n := range c.cores {
		for k, rec := range n.recs {
			go func(id proc.ID, k int, r *replication.Recovery) {
				ch <- res{id, k, r.Run(timeout * raceScale)}
			}(n.id, k, rec)
		}
	}
	for i := 0; i < cap(ch); i++ {
		if r := <-ch; r.err != nil {
			c.t.Fatalf("core %s shard %d recovery: %v", r.id, r.k, r.err)
		}
	}
	// Alignment is the whole point: with every core up, recovery must leave
	// no shard's replicas disagreeing (a skipped-unreachable peer here means
	// an RPC starved, and traffic would bake the divergence in).
	for k := 0; k < c.shards; k++ {
		for _, n := range c.cores[1:] {
			if a, b := c.cores[0].reps[k].CommitIndex(), n.reps[k].CommitIndex(); a != b {
				for _, m := range c.cores {
					c.t.Logf("shard %d: %s at %d after recovery, stats %+v",
						k, m.id, m.reps[k].CommitIndex(), m.recs[k].Stats())
				}
				c.t.Fatalf("shard %d: cores disagree after recovery (%s=%d %s=%d)",
					k, c.cores[0].id, a, n.id, b)
			}
		}
	}
}

func (n *coreNode) shardTable() []service.Shard {
	out := make([]service.Shard, 0, len(n.reps))
	for k := range n.reps {
		out = append(out, service.Shard{Replica: n.reps[k], Read: n.sms[k].read})
	}
	return out
}

// newGateway creates and serves a gateway for id over the given shards.
func (c *cluster) newGateway(id proc.ID, shards []service.Shard) *service.Gateway {
	gw := service.NewGateway(service.GatewayConfig{
		Self:           id,
		Shards:         shards,
		Addrs:          c.addrs,
		RequestTimeout: 3 * raceScale * time.Second,
	})
	l, err := c.network.ListenStream(id)
	if err != nil {
		c.t.Fatal(err)
	}
	gw.Serve(l)
	return gw
}

// buildFollowerNode assembles a follower node from nothing under a fresh
// incarnation: follower replicas fed by syncers, the membership
// state-transfer receiver, and a gateway fronting the followers.
func (c *cluster) buildFollowerNode(id proc.ID, inc uint64, donors []proc.ID) *edgeNode {
	tr := c.network.Endpoint(id)
	e := &edgeNode{id: id, inc: inc, tr: tr, mux: transport.NewGroupMux(tr, c.shards)}
	for k := 0; k < c.shards; k++ {
		sm := newChaosSM()
		f := replication.NewFollower(sm, id)
		f.SetSnapshotter(sm.snapshotter())
		primed := false
		if c.dataDir != "" {
			eng, err := storage.Open(c.shardDir(id, k), storage.Config{SegmentBytes: chaosSegmentBytes})
			if err != nil {
				c.t.Fatal(err)
			}
			f.SetStorage(replication.StorageConfig{Engine: eng, CompactBytes: chaosCompactBytes})
			rs, err := f.ReplayStorage()
			if err != nil {
				c.t.Fatalf("follower %s shard %d: replay: %v", id, k, err)
			}
			e.engs = append(e.engs, eng)
			e.replays = append(e.replays, rs)
			primed = rs.SnapshotIndex > 0 || rs.Records > 0
		}
		ep := rchannel.New(e.mux.Group(k),
			rchannel.WithRTO(10*raceScale*time.Millisecond),
			rchannel.WithIncarnation(inc))
		syncer := replication.NewSyncer(f, ep, replication.SyncerConfig{
			Donors:   donors,
			Interval: 2 * raceScale * time.Millisecond,
			// Generous under race: the detector inflates dispatch latency, and
			// a pull that merely takes long must not be treated as donor loss
			// (rotating donors on queueing delay only adds load).
			Timeout: 150 * raceScale * raceScale * time.Millisecond,
			// A primed follower replayed its own snapshot + WAL: no
			// membership-join announcement and no forced first snapshot —
			// its first pull asks for the delta after the replayed index,
			// which is the delta-only restart the sync counters prove.
			Announce: !primed,
			Primed:   primed,
		})
		// Receiver half of the membership join path: a donor requests the
		// ordered join for us; the membership primary ships the snapshot.
		membership.New(noBroadcast{}, ep, proc.NewView(id), membership.Snapshotter{
			Restore: func(b []byte) { _ = f.InstallSnapshot(b) },
		})
		scope := c.scope(id, k)
		ep.RegisterMetrics(scope)
		f.RegisterMetrics(scope)
		syncer.RegisterMetrics(scope)
		ep.Start()
		syncer.Start()
		e.sms = append(e.sms, sm)
		e.reps = append(e.reps, f)
		e.eps = append(e.eps, ep)
		e.syncers = append(e.syncers, syncer)
	}
	shards := make([]service.Shard, 0, c.shards)
	for k := 0; k < c.shards; k++ {
		shards = append(shards, service.Shard{Replica: e.reps[k], Read: e.sms[k].read})
	}
	e.gw = c.newGateway(id, shards)
	return e
}

// buildEdge (re)creates the dedicated edge follower node.
func (c *cluster) buildEdge() {
	c.edgeInc++
	c.edge = c.buildFollowerNode(c.edgeID, c.edgeInc, c.ids)
}

// stopFollowerNode tears a follower node down completely (graceful: a
// durable follower seals its engines with a final snapshot).
func (c *cluster) stopFollowerNode(e *edgeNode) {
	e.gw.Close()
	for _, s := range e.syncers {
		s.Stop()
	}
	for _, ep := range e.eps {
		ep.Stop()
	}
	if e.engs != nil {
		for _, f := range e.reps {
			if err := f.CloseStorage(); err != nil {
				c.t.Errorf("follower %s: close storage: %v", e.id, err)
			}
		}
	}
	e.mux.Close()
}

// powerLoss cuts power to the WHOLE cluster at once: network first (no
// goodbye packets), then every stack is stopped and its engines are
// killed — closed without flushing, so each node loses exactly its
// unsynced user-space write buffer, independently, as in a real
// correlated power cut. Nodes go down concurrently; each gateway's drain
// (conn handlers still waiting on the dead consensus layer run out their
// request timeout) is parked on c.drain rather than serialising the
// blackout.
func (c *cluster) powerLoss() {
	c.t.Helper()
	if c.dataDir == "" {
		c.t.Fatal("powerLoss needs a durable cluster")
	}
	for _, n := range c.cores {
		c.network.Crash(n.id)
	}
	c.network.Crash(c.edgeID)
	var wg sync.WaitGroup
	for _, n := range c.cores {
		wg.Add(1)
		go func(n *coreNode) {
			defer wg.Done()
			c.drainGateway(n.gw)
			for _, rep := range n.reps {
				rep.StopFailover()
				rep.StopWatchdog()
			}
			for _, nd := range n.nds {
				nd.Stop() // deliveries drain here — before the engines die
			}
			for _, eng := range n.engs {
				eng.Kill()
			}
			n.mux.Close()
		}(n)
	}
	e := c.edge
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.drainGateway(e.gw)
		for _, s := range e.syncers {
			s.Stop()
		}
		for _, ep := range e.eps {
			ep.Stop()
		}
		for _, eng := range e.engs {
			eng.Kill()
		}
		e.mux.Close()
	}()
	wg.Wait()
	c.cores, c.edge = nil, nil
	for _, id := range c.ids {
		c.network.Restart(id)
	}
	c.network.Restart(c.edgeID)
}

// drainGateway closes gw in the background: a conn handler already inside
// RequestSession against a dead consensus layer holds the close until the
// request timeout, and a power cut must not wait for that. teardown
// collects the parked closes.
func (c *cluster) drainGateway(gw *service.Gateway) {
	c.drain.Add(1)
	go func() {
		defer c.drain.Done()
		gw.Close()
	}()
}

// restartFromDisk boots the whole cluster back from its data directories
// after powerLoss: cores through the phased replay/recover sequence under
// a bumped incarnation, then the edge follower from its own disk (primed:
// it pulls only the delta). Returns once every edge shard has caught up.
func (c *cluster) restartFromDisk() {
	c.t.Helper()
	c.coreInc++
	c.startCoresFromDisk()
	c.rejoinEdge(20 * time.Second)
}

// powerLossEdge cuts power to the edge node alone; the cores keep running.
func (c *cluster) powerLossEdge() {
	c.t.Helper()
	e := c.edge
	c.network.Crash(e.id)
	c.drainGateway(e.gw)
	for _, s := range e.syncers {
		s.Stop()
	}
	for _, ep := range e.eps {
		ep.Stop()
	}
	for _, eng := range e.engs {
		eng.Kill()
	}
	e.mux.Close()
	c.edge = nil
	c.network.Restart(e.id)
}

// wipeEdge crash-stops the edge node and destroys ALL its state — the
// process is gone; nothing survives but its ID.
func (c *cluster) wipeEdge() {
	c.network.Crash(c.edgeID)
	c.stopFollowerNode(c.edge)
	c.edge = nil
	c.network.Restart(c.edgeID)
}

// wipeCore crash-stops core i and destroys its ENTIRE stack and state —
// unlike killRestartCore, nothing survives but the ID. The member's vote is
// gone for good (f < n/2 now has zero slack), so callers must not crash any
// other core afterwards; the wiped member can come back as a read-serving
// follower via rejoinCoreAsFollower.
func (c *cluster) wipeCore(i int) {
	n := c.cores[i]
	c.network.Crash(n.id)
	n.gw.Close()
	for _, rep := range n.reps {
		rep.StopFailover()
		rep.StopWatchdog()
	}
	for _, nd := range n.nds {
		nd.Stop()
	}
	n.mux.Close()
	n.dead = true
	c.network.Restart(n.id)
}

// rejoinCoreAsFollower brings a wiped core back under its OLD ID as a
// follower node — the same-identity crash-recovery: peers still hold
// reliable-channel state about the old incarnation, which the incarnation
// handshake resets on first contact.
func (c *cluster) rejoinCoreAsFollower(i int, inc uint64, timeout time.Duration) *edgeNode {
	c.t.Helper()
	n := c.cores[i]
	donors := make([]proc.ID, 0, len(c.ids)-1)
	for _, id := range c.ids {
		if id != n.id {
			donors = append(donors, id)
		}
	}
	e := c.buildFollowerNode(n.id, inc, donors)
	c.extras = append(c.extras, e)
	deadline := time.After(timeout * raceScale)
	for _, s := range e.syncers {
		select {
		case <-s.Installed():
		case <-deadline:
			c.t.Fatalf("core %s rejoin: follower not installed within %v", n.id, timeout*raceScale)
		}
	}
	return e
}

// rejoinEdge rebuilds the edge from nothing and waits until every shard's
// follower has installed state and caught up to a donor.
func (c *cluster) rejoinEdge(timeout time.Duration) {
	c.buildEdge()
	deadline := time.After(timeout * raceScale)
	for k, s := range c.edge.syncers {
		select {
		case <-s.Installed():
		case <-deadline:
			for _, n := range c.liveCores() {
				c.t.Logf("shard %d: core %s at index %d", k, n.id, n.reps[k].CommitIndex())
			}
			c.t.Logf("shard %d: edge follower at index %d, syncer stats %+v",
				k, c.edge.reps[k].CommitIndex(), c.edge.syncers[k].Stats())
			for _, n := range c.liveCores() {
				c.t.Logf("shard %d: core %s rchannel backlog to edge: %d unacked",
					k, n.id, n.nds[k].Endpoint().PendingTo(c.edgeID))
			}
			c.t.Logf("edge endpoint still registered: %v", c.network.Endpoint(c.edgeID) == c.edge.tr)
			c.t.Logf("edge shard %d channel stats: %+v", k, c.edge.eps[k].Stats())
			for _, n := range c.liveCores() {
				on, un, ie, oob := c.edge.eps[k].PeerState(n.id)
				don, dun, die, doob := n.nds[k].Endpoint().PeerState(c.edgeID)
				c.t.Logf("  edge<->%s: edge[outNext=%d unacked=%d inExpected=%d oob=%d peerInc=%d] donor[outNext=%d unacked=%d inExpected=%d oob=%d peerInc=%d] donorStats=%+v",
					n.id, on, un, ie, oob, c.edge.eps[k].PeerIncarnation(n.id),
					don, dun, die, doob, n.nds[k].Endpoint().PeerIncarnation(c.edgeID), n.nds[k].Endpoint().Stats())
			}
			before := c.network.Stats()
			time.Sleep(1 * time.Second)
			after := c.network.Stats()
			c.t.Logf("network delta over 1s: sent %d delivered %d dropped %d",
				after.Sent-before.Sent, after.Delivered-before.Delivered, after.Dropped-before.Dropped)
			_ = pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
			c.t.Fatalf("edge rejoin: shard %d follower not installed within %v (incarnation %d)",
				k, timeout*raceScale, c.edge.inc)
		}
	}
}

// killRestartCore crash-stops core i at the network level for d (state
// preserved — the crash-stop model's short outage, healed by channel
// retransmission when the packets flow again).
func (c *cluster) killRestartCore(i int, d time.Duration) {
	id := c.ids[i]
	c.network.Crash(id)
	time.Sleep(d)
	c.network.Restart(id)
}

// bounceGateway replaces core i's gateway mid-life: attached sessions are
// dropped with their connections and re-attach (same session IDs, same
// replicated dedup state) at the replacement.
func (c *cluster) bounceGateway(i int) {
	n := c.cores[i]
	n.gw.Close()
	n.gw = c.newGateway(n.id, n.shardTable())
}

func (c *cluster) teardown() {
	if c.edge != nil {
		c.stopFollowerNode(c.edge)
	}
	for _, e := range c.extras {
		c.stopFollowerNode(e)
	}
	for _, n := range c.cores {
		if n.dead {
			continue
		}
		n.gw.Close()
		for _, rep := range n.reps {
			rep.StopFailover()
			rep.StopWatchdog()
		}
		for _, nd := range n.nds {
			nd.Stop()
		}
		if n.engs != nil {
			for _, rep := range n.reps {
				if err := rep.CloseStorage(); err != nil {
					c.t.Errorf("%s: close storage: %v", n.id, err)
				}
			}
		}
		n.mux.Close()
	}
	c.network.Shutdown()
	c.drain.Wait()
}

// liveCores returns the cores still running their full stacks.
func (c *cluster) liveCores() []*coreNode {
	out := make([]*coreNode, 0, len(c.cores))
	for _, n := range c.cores {
		if !n.dead {
			out = append(out, n)
		}
	}
	return out
}

// followNodes returns every follower node currently alive (edge + reborn
// cores).
func (c *cluster) followNodes() []*edgeNode {
	out := append([]*edgeNode{}, c.extras...)
	if c.edge != nil {
		out = append(out, c.edge)
	}
	return out
}

// addrList returns the gateway addresses clients dial (cores + edge).
func (c *cluster) addrList(includeEdge bool) []string {
	out := make([]string, 0, len(c.ids)+1)
	for _, id := range c.ids {
		out = append(out, c.addrs[id])
	}
	if includeEdge {
		out = append(out, c.addrs[c.edgeID])
	}
	return out
}

func (c *cluster) newShardedClient(addrs []string, opTimeout time.Duration, sticky bool) *service.ShardedClient {
	cl, err := service.NewShardedClient(service.ShardedClientConfig{
		ClientConfig: service.ClientConfig{
			Addrs: addrs,
			Dial: func(addr string) (transport.StreamConn, error) {
				return c.network.DialStream(proc.ID(addr))
			},
			RetryBackoff: 3 * time.Millisecond,
			OpTimeout:    opTimeout,
			Sticky:       sticky,
		},
		Shards: c.shards,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	c.t.Cleanup(cl.Close)
	return cl
}

// converge waits until every core replica of every shard sits at the same
// commit index (the maximum over cores) and the edge followers have caught
// up, then returns the per-shard target indexes. Must be called after all
// client traffic has stopped.
//
// Convergence is required through BOTH views: the replicas' own
// CommitIndex() accessors AND the commit-index gauges in the telemetry
// registry. A replica that advanced without pushing its gauge (or pushed a
// stale value) keeps the shard unsettled until the timeout prints both
// views side by side.
func (c *cluster) converge(timeout time.Duration) []uint64 {
	c.t.Helper()
	//gcsvet:ignore wallclock -- watchdog over real goroutines: the chaos schedule is seeded-deterministic, but convergence runs on real concurrency and needs a real deadline
	deadline := time.Now().Add(timeout * raceScale)
	targets := make([]uint64, c.shards)
	for k := 0; k < c.shards; k++ {
		for {
			var target uint64
			for _, n := range c.liveCores() {
				if idx := n.reps[k].CommitIndex(); idx > target {
					target = idx
				}
			}
			settled := true
			for _, n := range c.liveCores() {
				if n.reps[k].CommitIndex() != target {
					settled = false
				}
				if g, ok := c.commitIndexGauge(n.id, k); !ok || g != target {
					settled = false
				}
			}
			for _, e := range c.followNodes() {
				if e.reps[k].CommitIndex() < target {
					settled = false
				}
				if g, ok := c.commitIndexGauge(e.id, k); !ok || g < target {
					settled = false
				}
			}
			if settled {
				if lag := c.registryLag(k); lag != 0 {
					c.t.Fatalf("shard %d: registry lag %d after direct convergence", k, lag)
				}
				targets[k] = target
				break
			}
			//gcsvet:ignore wallclock -- same watchdog deadline; expiry only fails the test louder, never changes the schedule
			if time.Now().After(deadline) {
				for _, n := range c.liveCores() {
					g, ok := c.commitIndexGauge(n.id, k)
					c.t.Logf("shard %d: core %s at index %d (gauge %d, registered %v)",
						k, n.id, n.reps[k].CommitIndex(), g, ok)
				}
				for _, e := range c.followNodes() {
					g, ok := c.commitIndexGauge(e.id, k)
					c.t.Logf("shard %d: follower %s at index %d (gauge %d, registered %v)",
						k, e.id, e.reps[k].CommitIndex(), g, ok)
				}
				c.t.Fatalf("shard %d never converged on a commit index (target %d)", k, target)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return targets
}

// checkDigests asserts byte-identical replica state per shard across every
// core and the edge follower. Call after converge.
func (c *cluster) checkDigests() {
	c.t.Helper()
	live := c.liveCores()
	for k := 0; k < c.shards; k++ {
		ref := live[0]
		want := ref.reps[k].StateDigest()
		for _, n := range live[1:] {
			if got := n.reps[k].StateDigest(); string(got) != string(want) {
				c.t.Errorf("shard %d: state digest of %s differs from %s (%d vs %d bytes)",
					k, n.id, ref.id, len(got), len(want))
			}
		}
		for _, e := range c.followNodes() {
			if got := e.reps[k].StateDigest(); string(got) != string(want) {
				c.t.Errorf("shard %d: follower %s digest differs from %s (%d vs %d bytes)",
					k, e.id, ref.id, len(got), len(want))
			}
		}
	}
}

// auditExactlyOnce asserts every acked op applied exactly once on its shard
// at every core replica and at the edge follower, and that no replica
// applied ANY op twice.
func (c *cluster) auditExactlyOnce(acked []string) {
	c.t.Helper()
	bad := 0
	for _, op := range acked {
		k := service.ShardOf([]byte(op), c.shards)
		for _, n := range c.liveCores() {
			if got := n.sms[k].count(op); got != 1 {
				c.t.Errorf("acked op %q: applied %d times at %s shard %d", op, got, n.id, k)
				if bad++; bad > 10 {
					c.t.Fatal("too many exactly-once violations")
				}
			}
		}
		for _, e := range c.followNodes() {
			if got := e.sms[k].count(op); got != 1 {
				c.t.Errorf("acked op %q: applied %d times at follower %s shard %d", op, got, e.id, k)
				if bad++; bad > 10 {
					c.t.Fatal("too many exactly-once violations")
				}
			}
		}
	}
	for _, n := range c.liveCores() {
		for k, sm := range n.sms {
			if dups := sm.duplicated(); len(dups) > 0 {
				c.t.Errorf("%s shard %d duplicated applications: %v", n.id, k, dups)
			}
		}
	}
	for _, e := range c.followNodes() {
		for k, sm := range e.sms {
			if dups := sm.duplicated(); len(dups) > 0 {
				c.t.Errorf("follower %s shard %d duplicated applications: %v", e.id, k, dups)
			}
		}
	}
}

// opName builds the unique chaos op for client ci's n-th operation.
func opName(ci, n int) string {
	return fmt.Sprintf("c%d-%06d", ci, n)
}
