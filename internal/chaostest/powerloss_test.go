package chaostest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/telemetry"
)

// Power-loss chaos: the durability acceptance tests. A durable cluster
// (file engines everywhere) is killed WHOLE — every core and the edge at
// once, engines closed without flushing — restarted from its data
// directories, and audited: every acked write survives and is readable at
// Linearizable, state digests are byte-identical, nothing applies twice.

// runPLClient hammers unique writes (with occasional reads) until stop
// closes, tolerating errors — mid-blackout EVERYTHING fails, and that is
// fine. What is never fine: a successful response with the wrong value,
// or a successful read observing an acked write as absent.
func runPLClient(c *cluster, cl *service.ShardedClient, ci int, stop <-chan struct{}, st *clientStats) {
	pace := 2 * time.Millisecond
	if raceEnabled {
		pace = 25 * time.Millisecond
	}
	for n := 1; ; n++ {
		select {
		case <-stop:
			return
		case <-time.After(pace):
		}
		op := opName(ci, n)
		res, err := cl.Call([]byte(op))
		if err != nil {
			if errors.Is(err, service.ErrClosed) {
				return
			}
			continue // blackout: losing the UNACKED op is the contract
		}
		if string(res) != "ok:"+op {
			st.fail("write %s: result %q", op, res)
		}
		st.ack(op)
		if n%4 == 2 {
			got, err := cl.Read([]byte(op))
			if err == nil && string(got) != "1" {
				st.fail("monotonic read-your-writes violation on %s -> %q", op, got)
			}
		}
	}
}

// garbleWALTail appends 1–64 junk bytes to the newest WAL segment under
// dir — the torn tail of a record whose write was mid-flight when power
// died. It never rewrites earlier (fsynced) bytes, so no acked data is
// touched; open-time recovery must cut the junk and count a torn tail.
func garbleWALTail(t *testing.T, rng *rand.Rand, dir string) bool {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		return false
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 1+rng.Intn(64))
	rng.Read(junk)
	if _, err := f.Write(junk); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return true
}

// TestPowerLossDurability is the acceptance test of the storage engine: a
// seeded schedule of whole-cluster power cuts over a durable 4-shard
// cluster under concurrent sharded-client load. Each cycle kills every
// core and the edge mid-load (unsynced buffers lost, sometimes with a
// torn WAL tail on top), restarts the world from the data directories,
// and requires the restart to replay locally, align over the sync wire,
// and serve linearizable reads of every previously acked write.
func TestPowerLossDurability(t *testing.T) {
	seed := envInt("CHAOS_SEED", 7)
	cycles := int(envInt("CHAOS_CYCLES", 3))
	if testing.Short() {
		cycles = min(cycles, 1)
	}
	const shards = 4
	t.Logf("powerloss: seed=%d cycles=%d shards=%d — reproduce with CHAOS_SEED=%d CHAOS_CYCLES=%d",
		seed, cycles, shards, seed, cycles)
	rng := rand.New(rand.NewSource(seed))
	c := buildDurableCluster(t, shards, seed)

	nClients := 3
	if raceEnabled {
		nClients = 2
	}
	loadFor := func() time.Duration {
		return time.Duration(200+rng.Intn(200)) * raceScale * time.Millisecond
	}

	var acked []string
	torn := 0
	var tornSeen uint64
	for cycle := 0; cycle < cycles; cycle++ {
		// Fresh sessions each life; op timeout short enough that calls
		// in flight at the blackout fail without stalling the harness.
		stats := make([]*clientStats, nClients)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for ci := 0; ci < nClients; ci++ {
			stats[ci] = &clientStats{}
			cl := c.newShardedClient(c.addrList(ci == nClients-1), raceScale*time.Second, false)
			wg.Add(1)
			go func(ci int, cl *service.ShardedClient) {
				defer wg.Done()
				defer cl.Close()
				runPLClient(c, cl, cycle*nClients+ci, stop, stats[ci])
			}(ci, cl)
		}
		time.Sleep(loadFor())

		// Before the first cut: the delivery path is fsyncing, and says so
		// through the registry (one sync per commit window — satellite
		// telemetry check; a fresh post-restart life may legitimately show
		// zero syncs until its first update delivery).
		if cycle == 0 {
			if v, ok := c.reg.Value("gcs_storage_fsyncs_total",
				telemetry.L("node", "r1"), telemetry.L("shard", "0")); !ok || v <= 0 {
				t.Errorf("gcs_storage_fsyncs_total not exported or zero under load (ok=%v v=%v)", ok, v)
			}
		}

		// SIGKILL the world mid-load.
		c.powerLoss()
		close(stop)
		wg.Wait()
		cycleAcked := 0
		for ci, st := range stats {
			st.mu.Lock()
			acked = append(acked, st.acked...)
			cycleAcked += len(st.acked)
			for _, f := range st.fails {
				t.Errorf("cycle %d client %d: %s", cycle, ci, f)
			}
			st.mu.Unlock()
		}
		if cycleAcked == 0 {
			t.Fatalf("cycle %d: no op was ever acknowledged before the power cut", cycle)
		}

		// Sometimes power died mid-write: tear one random core WAL's tail.
		if rng.Intn(2) == 0 {
			id := c.ids[rng.Intn(len(c.ids))]
			if garbleWALTail(t, rng, c.shardDir(id, rng.Intn(shards))) {
				torn++
			}
		}

		// The world rises from disk.
		c.restartFromDisk()
		replayedRecs, replayedSnaps := uint64(0), uint64(0)
		for _, n := range c.cores {
			for _, eng := range n.engs {
				tornSeen += eng.Stats().TornTails // this life's open-time recovery
			}
			for _, rs := range n.replays {
				replayedRecs += rs.Records
				if rs.SnapshotIndex > 0 {
					replayedSnaps++
				}
			}
		}
		if replayedRecs == 0 && replayedSnaps == 0 {
			t.Fatalf("cycle %d: restart replayed nothing from disk", cycle)
		}
		t.Logf("powerloss cycle %d: %d acked ops, restart replayed %d WAL records / %d snapshots across cores",
			cycle, cycleAcked, replayedRecs, replayedSnaps)
	}

	// Torn tails were cut and counted by open-time recovery (Kill can also
	// tear a frame naturally when the buffer flushed mid-record, so >=).
	if uint64(torn) > tornSeen {
		t.Errorf("garbled %d WAL tails but engines recovered only %d torn tails", torn, tornSeen)
	}

	// Every acked write is readable at Linearizable after the final
	// restart — sampled through a fresh client (the exactly-once audit
	// below covers ALL acked ops at every replica).
	if len(acked) == 0 {
		t.Fatal("no op was ever acknowledged")
	}
	readN := min(len(acked), 100)
	if raceEnabled {
		readN = min(len(acked), 30)
	}
	cl := c.newShardedClient(c.addrList(false), 30*time.Second, false)
	for i := 0; i < readN; i++ {
		op := acked[rng.Intn(len(acked))]
		got, err := cl.ReadAt([]byte(op), service.ReadLinearizable)
		if err != nil {
			t.Fatalf("linearizable read of acked %q after restart: %v", op, err)
		}
		if string(got) != "1" {
			t.Errorf("acked write %q lost across power cut: linearizable read -> %q", op, got)
		}
	}

	targets := c.converge(30 * time.Second)
	t.Logf("powerloss: %d acked ops total, %d torn tails recovered, converged per-shard indexes %v",
		len(acked), tornSeen, targets)
	c.checkDigests()
	c.auditExactlyOnce(acked)
}

// TestDurableEdgeRestartDeltaOnly is the single-node restart acceptance: a
// durable follower that lost power replays its OWN disk and pulls only
// the delta it missed over the sync wire — no snapshot transfer — proven
// by the replay vs sync counters on both sides of the boundary.
func TestDurableEdgeRestartDeltaOnly(t *testing.T) {
	const shards = 2
	c := buildDurableCluster(t, shards, 19)
	cl := c.newShardedClient(c.addrList(false), 30*time.Second, false)

	// Two write phases around a convergence point: the edge's FIRST catch-up
	// typically arrives as one snapshot (empty WAL), so the second phase is
	// what lands in its WAL as entry pulls — the tail the restart replays.
	var acked []string
	for n := 1; n <= 30; n++ {
		op := opName(3, n)
		if _, err := cl.Call([]byte(op)); err != nil {
			t.Fatalf("write %s: %v", op, err)
		}
		acked = append(acked, op)
	}
	c.converge(20 * time.Second)
	for n := 31; n <= 60; n++ {
		op := opName(3, n)
		if _, err := cl.Call([]byte(op)); err != nil {
			t.Fatalf("write %s: %v", op, err)
		}
		acked = append(acked, op)
	}
	c.converge(20 * time.Second) // edge caught up (and synced) before the cut
	for k := 0; k < shards; k++ {
		if st := c.edge.engs[k].Stats(); st.Appends == 0 {
			t.Fatalf("shard %d: edge WAL empty before the cut (%+v) — test premise broken", k, st)
		}
	}

	// Power cut at the edge alone; the cores keep serving.
	c.powerLossEdge()

	// The delta the edge will have to pull from a donor.
	for n := 61; n <= 80; n++ {
		op := opName(3, n)
		if _, err := cl.Call([]byte(op)); err != nil {
			t.Fatalf("write %s during edge outage: %v", op, err)
		}
		acked = append(acked, op)
	}

	c.rejoinEdge(20 * time.Second)
	for k := 0; k < shards; k++ {
		rs := c.edge.replays[k]
		if rs.Records == 0 && rs.SnapshotIndex == 0 {
			t.Errorf("shard %d: edge restart replayed nothing from its own disk (%+v)", k, rs)
		}
		st := c.edge.syncers[k].Stats()
		if st.Snapshots != 0 {
			t.Errorf("shard %d: edge restart fell back to a snapshot transfer (%+v)", k, st)
		}
		// Registry view of the same proof: bytes replayed locally, entries
		// (not snapshots) over the wire.
		scopeL := []telemetry.Label{telemetry.L("node", string(c.edgeID)), telemetry.L("shard", fmt.Sprint(k))}
		if v, ok := c.reg.Value("gcs_storage_replayed_records_total", scopeL...); !ok || v <= 0 {
			t.Errorf("shard %d: gcs_storage_replayed_records_total not exported or zero (ok=%v v=%v)", k, ok, v)
		}
		if v, ok := c.reg.Value("gcs_sync_snapshots_total", scopeL...); !ok || v != 0 {
			t.Errorf("shard %d: gcs_sync_snapshots_total = %v after primed restart, want 0", k, v)
		}
	}

	// Full read parity at the restarted follower: linearizable + monotonic
	// reads of pre-cut and during-outage acked writes.
	pinned := c.newShardedClient([]string{c.addrs[c.edgeID]}, 30*time.Second, true)
	for _, op := range []string{acked[0], acked[59], acked[len(acked)-1]} {
		if got, err := pinned.ReadAt([]byte(op), service.ReadLinearizable); err != nil || string(got) != "1" {
			t.Fatalf("linearizable read %q at restarted edge: %q, %v", op, got, err)
		}
		if got, err := pinned.Read([]byte(op)); err != nil || string(got) != "1" {
			t.Fatalf("monotonic read %q at restarted edge: %q, %v", op, got, err)
		}
	}

	c.converge(20 * time.Second)
	c.checkDigests()
	c.auditExactlyOnce(acked)
}
