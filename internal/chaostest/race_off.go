//go:build !race

package chaostest

// raceEnabled reports whether the race detector is compiled in. The chaos
// harness scales its timeouts by raceScale when it is: the detector slows
// the stacks several-fold, and on small CI machines (this repo's experiment
// logs are from a 1-CPU container) unscaled suspicion and RPC timeouts
// starve systematically rather than expose real bugs.
const raceEnabled = false

// raceScale multiplies the harness's timing knobs.
const raceScale = 1
