package chaostest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// clientStats collects one chaos client's acked ops and violations.
type clientStats struct {
	mu    sync.Mutex
	acked []string
	fails []string
}

func (s *clientStats) ack(op string) {
	s.mu.Lock()
	s.acked = append(s.acked, op)
	s.mu.Unlock()
}

func (s *clientStats) fail(format string, args ...any) {
	s.mu.Lock()
	if len(s.fails) < 20 {
		s.fails = append(s.fails, fmt.Sprintf(format, args...))
	}
	s.mu.Unlock()
}

// runClient issues unique writes and interleaved reads at all three levels
// until stop closes, checking read-your-writes, exact counts and per-shard
// index monotonicity inline. Ops are paced (open loop): closed-loop clients
// drive the substrate to utilization 1, which on a slow machine turns every
// queue into standing latency and fails operations on delay alone.
func runClient(c *cluster, cl *service.ShardedClient, ci int, stop <-chan struct{}, st *clientStats) {
	pace := 2 * time.Millisecond
	if raceEnabled {
		pace = 50 * time.Millisecond
	}
	prev := make([]uint64, c.shards)
	for n := 1; ; n++ {
		select {
		case <-stop:
			return
		case <-time.After(pace):
		}
		op := opName(ci, n)
		res, err := cl.Call([]byte(op))
		if err != nil {
			if errors.Is(err, service.ErrClosed) {
				return
			}
			st.fail("write %s: %v", op, err)
			continue
		}
		if string(res) != "ok:"+op {
			st.fail("write %s: result %q", op, res)
		}
		st.ack(op)

		// Monotonic commit-index tokens: the per-shard vector never travels
		// backwards within a session.
		idx := cl.Indexes()
		for k := range idx {
			if idx[k] < prev[k] {
				st.fail("shard %d index token went backwards: %d -> %d", k, prev[k], idx[k])
			}
			prev[k] = idx[k]
		}

		// Interleaved reads. Every chaos op is unique, so its count is
		// exactly 1 once applied.
		switch n % 5 {
		case 0: // read-your-writes at the default Monotonic level
			got, err := cl.Read([]byte(op))
			if err != nil {
				if errors.Is(err, service.ErrClosed) {
					return
				}
				st.fail("monotonic read %s: %v", op, err)
			} else if string(got) != "1" {
				st.fail("monotonic read-your-writes violation: %s -> %q", op, got)
			}
		case 2: // linearizable: the acked write must be reflected
			got, err := cl.ReadAt([]byte(op), service.ReadLinearizable)
			if err != nil {
				if errors.Is(err, service.ErrClosed) {
					return
				}
				st.fail("linearizable read %s: %v", op, err)
			} else if string(got) != "1" {
				st.fail("linearizable read violation: %s -> %q", op, got)
			}
		case 4: // local: may be stale (0) but never duplicated (>1)
			got, err := cl.ReadAt([]byte(op), service.ReadLocal)
			if err != nil && !errors.Is(err, service.ErrClosed) {
				st.fail("local read %s: %v", op, err)
			} else if err == nil && string(got) != "0" && string(got) != "1" {
				st.fail("local read of unique op %s -> %q (duplicate application?)", op, got)
			}
		}
	}
}

// markerFor crafts an op that ShardOf routes to shard k.
func markerFor(shards, k, round int) string {
	for n := 0; ; n++ {
		op := fmt.Sprintf("marker-%d-%d-%d", round, k, n)
		if service.ShardOf([]byte(op), shards) == k {
			return op
		}
	}
}

func envInt(name string, def int64) int64 {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

// TestChaosRecovery is the acceptance test of the recovery subsystem: a
// seeded schedule of ≥ 20 kill/restart/rejoin cycles over a 4-shard memnet
// cluster — core crash/restarts (state preserved, healed by channel
// retransmission), full wipe/rejoins of the edge node (state transferred by
// snapshot + catch-up cursor), and gateway replacements (sessions
// re-attach) — under concurrent sharded clients reading at all three
// levels. Afterwards: zero exactly-once or read-level violations,
// byte-identical state digests at every replica including the rejoined
// follower, and a linearizable read answered by the rejoined replica
// reflecting every pre-rejoin acked write.
func TestChaosRecovery(t *testing.T) {
	seed := envInt("CHAOS_SEED", 7)
	cycles := int(envInt("CHAOS_CYCLES", 20))
	if testing.Short() {
		cycles = min(cycles, 6)
	}
	const shards = 4
	t.Logf("chaos: seed=%d cycles=%d shards=%d — reproduce with CHAOS_SEED=%d CHAOS_CYCLES=%d",
		seed, cycles, shards, seed, cycles)
	rng := rand.New(rand.NewSource(seed))
	c := buildCluster(t, shards, seed)

	// Concurrent sharded clients; the last one also dials the edge
	// follower's gateway, so reads keep exercising the catch-up replica.
	// Under the race detector the offered load is halved: on small CI
	// machines the detector's per-op cost turns full load into standing
	// queues (bufferbloat latency), which fails pulls and reads on latency
	// alone without exercising anything new.
	nClients := 3
	if raceEnabled {
		nClients = 2
	}
	stats := make([]*clientStats, nClients)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for ci := 0; ci < nClients; ci++ {
		stats[ci] = &clientStats{}
		cl := c.newShardedClient(c.addrList(ci == nClients-1), 30*time.Second, false)
		wg.Add(1)
		go func(ci int, cl *service.ShardedClient) {
			defer wg.Done()
			runClient(c, cl, ci, stop, stats[ci])
		}(ci, cl)
	}

	// The seeded fault schedule.
	wipes := 0
	for cycle := 0; cycle < cycles; cycle++ {
		switch pick := rng.Intn(10); {
		case pick < 4: // crash/restart a core (state preserved)
			i := rng.Intn(len(c.ids))
			d := time.Duration(40+rng.Intn(100)) * raceScale * time.Millisecond
			c.killRestartCore(i, d)
		case pick < 7: // wipe the edge node and rejoin it from nothing
			wipes++
			c.wipeEdge()
			time.Sleep(time.Duration(rng.Intn(60)) * raceScale * time.Millisecond)
			c.rejoinEdge(20 * time.Second)
		default: // replace a core's gateway mid-life
			c.bounceGateway(rng.Intn(len(c.ids)))
		}
		time.Sleep(time.Duration(30+rng.Intn(90)) * raceScale * time.Millisecond)
	}

	// Final forced wipe/rejoin with pre-rejoin markers: one acked write per
	// shard BEFORE the edge is destroyed, to be read back through the
	// rejoined replica afterwards.
	markers := make([]string, shards)
	mcl := c.newShardedClient(c.addrList(false), 30*time.Second, false)
	for k := 0; k < shards; k++ {
		markers[k] = markerFor(shards, k, cycles)
		if _, err := mcl.Call([]byte(markers[k])); err != nil {
			t.Fatalf("marker write shard %d: %v", k, err)
		}
	}
	wipes++
	c.wipeEdge()
	c.rejoinEdge(20 * time.Second)
	t.Logf("chaos: %d cycles done (%d edge wipe/rejoins, final incarnation %d)", cycles, wipes, c.edgeInc)

	// Stop traffic, then audit.
	close(stop)
	wg.Wait()

	var acked []string
	for ci, st := range stats {
		st.mu.Lock()
		acked = append(acked, st.acked...)
		for _, f := range st.fails {
			t.Errorf("client %d: %s", ci, f)
		}
		st.mu.Unlock()
	}
	if len(acked) == 0 {
		t.Fatal("no op was ever acknowledged")
	}
	t.Logf("chaos: %d acked ops", len(acked))

	// The rejoined replica answers linearizable reads reflecting every
	// pre-rejoin acked write — through its own gateway (read-index barrier
	// at the follower), not by redirecting the client elsewhere.
	edgeCl := c.newShardedClient([]string{c.addrs[c.edgeID]}, 30*time.Second, true)
	before := c.edge.gw.Stats().Reads
	for k, op := range markers {
		got, err := edgeCl.ReadAt([]byte(op), service.ReadLinearizable)
		if err != nil {
			t.Fatalf("linearizable read of marker %q at rejoined replica: %v", op, err)
		}
		if string(got) != "1" {
			t.Errorf("shard %d: linearizable read at rejoined replica: marker %q -> %q, want 1", k, op, got)
		}
		if got, err := edgeCl.Read([]byte(op)); err != nil || string(got) != "1" {
			t.Errorf("shard %d: monotonic read at rejoined replica: marker %q -> %q (%v)", k, op, got, err)
		}
	}
	if after := c.edge.gw.Stats().Reads; after <= before {
		t.Errorf("rejoined replica's gateway served no reads (before %d, after %d)", before, after)
	}

	// Quiesce and compare: identical commit indexes, then byte-identical
	// state digests at every core and at the rejoined follower, and the
	// exactly-once audit over every acked op.
	targets := c.converge(30 * time.Second)
	t.Logf("chaos: converged commit indexes per shard: %v", targets)
	c.checkDigests()
	c.auditExactlyOnce(append(acked, markers...))
}

// TestFailoverLagReconverges watches a sharded failover purely through the
// telemetry registry: every replica exports gcs_replication_commit_index
// under its (node, shard) scope, lag is max-min over the live cores, and
// the test requires the lag to RISE while one core is crash-stopped (its
// gauge freezes while the survivors commit) and to RE-CONVERGE to zero —
// at every shard — once the core is healed and traffic stops. This is the
// observability acceptance check: a dashboard reading only the registry
// sees the outage and the recovery.
func TestFailoverLagReconverges(t *testing.T) {
	const shards = 2
	c := buildCluster(t, shards, 23)
	cl := c.newShardedClient(c.addrList(false), 30*time.Second, false)

	// Baseline traffic so every shard has a non-zero index.
	var acked []string
	for n := 1; n <= 20; n++ {
		op := opName(5, n)
		if _, err := cl.Call([]byte(op)); err != nil {
			t.Fatalf("write %s: %v", op, err)
		}
		acked = append(acked, op)
	}

	// Background open-loop writers keep committing through the outage.
	stop := make(chan struct{})
	st := &clientStats{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runClient(c, cl, 6, stop, st)
	}()

	// Crash r1 — initial primary of shard 0 — with state preserved, long
	// enough for failover to elect a new primary and commit past it. The
	// sampler reads lag ONLY through the registry.
	var maxLag [shards]uint64
	sample := func() {
		for k := 0; k < shards; k++ {
			if lag := c.registryLag(k); lag > maxLag[k] {
				maxLag[k] = lag
			}
		}
	}
	c.network.Crash(c.ids[0])
	outage := time.After(400 * raceScale * time.Millisecond)
sampling:
	for {
		select {
		case <-outage:
			break sampling
		case <-time.After(5 * raceScale * time.Millisecond):
			sample()
		}
	}
	c.network.Restart(c.ids[0])

	var rose bool
	for k, lag := range maxLag {
		t.Logf("shard %d: max commit-index lag observed through registry during outage: %d", k, lag)
		if lag > 0 {
			rose = true
		}
	}
	if !rose {
		t.Error("no shard's commit-index lag rose during the outage — the registry never saw it")
	}

	// Heal: stop traffic, require convergence through BOTH views (converge
	// asserts registry lag 0 per shard), then the usual state audit.
	close(stop)
	wg.Wait()
	st.mu.Lock()
	acked = append(acked, st.acked...)
	for _, f := range st.fails {
		t.Errorf("background client: %s", f)
	}
	st.mu.Unlock()
	targets := c.converge(30 * time.Second)
	t.Logf("converged per-shard commit indexes: %v", targets)
	for k := 0; k < shards; k++ {
		if lag := c.registryLag(k); lag != 0 {
			t.Errorf("shard %d: registry lag %d after convergence", k, lag)
		}
	}
	c.checkDigests()
	c.auditExactlyOnce(acked)
}

// TestCoreWipeRejoinAsFollower is the same-identity crash-recovery: a FULL
// member is destroyed (stack, state, channel seqs — everything but its ID)
// and rejoins as a read-serving follower under the old ID. This exercises
// the incarnation handshake against peers that still hold channel state
// about the previous life, and proves the rejoined replica reaches full
// read parity: its linearizable and monotonic reads reflect all pre-wipe
// acked writes and its state digest matches the survivors byte for byte.
func TestCoreWipeRejoinAsFollower(t *testing.T) {
	const shards = 2
	c := buildCluster(t, shards, 11)
	cl := c.newShardedClient(c.addrList(false), 30*time.Second, false)

	var acked []string
	for n := 1; n <= 30; n++ {
		op := opName(9, n)
		if _, err := cl.Call([]byte(op)); err != nil {
			t.Fatalf("write %s: %v", op, err)
		}
		acked = append(acked, op)
	}

	// Destroy r3 completely; the survivors (r1, r2) keep the quorum.
	c.wipeCore(2)

	// Writes keep flowing while r3 is gone (its shards fail over if it was
	// primary anywhere).
	for n := 31; n <= 40; n++ {
		op := opName(9, n)
		if _, err := cl.Call([]byte(op)); err != nil {
			t.Fatalf("write %s during outage: %v", op, err)
		}
		acked = append(acked, op)
	}

	// r3 rises again — same ID, fresh incarnation, zero state — as a
	// follower fed by snapshot + catch-up cursor from the survivors.
	c.rejoinCoreAsFollower(2, 1, 20*time.Second)

	// A client pinned to the rejoined node: linearizable AND monotonic
	// reads of pre-wipe and post-wipe acked writes all reflect the writes.
	pinned := c.newShardedClient([]string{c.addrs["r3"]}, 30*time.Second, true)
	for _, op := range []string{acked[0], acked[len(acked)-1]} {
		if got, err := pinned.ReadAt([]byte(op), service.ReadLinearizable); err != nil || string(got) != "1" {
			t.Fatalf("linearizable read %q at rejoined r3: %q, %v", op, got, err)
		}
		if got, err := pinned.Read([]byte(op)); err != nil || string(got) != "1" {
			t.Fatalf("monotonic read %q at rejoined r3: %q, %v", op, got, err)
		}
	}

	c.converge(20 * time.Second)
	c.checkDigests()
	c.auditExactlyOnce(acked)
}
