//go:build race

package chaostest

// See race_off.go.
const raceEnabled = true

// 5 was calibrated before the replicas carried telemetry instruments; the
// extra race-instrumented atomics on the ordered path (commit-index gauge,
// latency observes) eat into the same margin the detector does, and seeded
// runs on a 1-CPU host started starving at the old scale.
const raceScale = 6
