//go:build race

package chaostest

// See race_off.go.
const raceEnabled = true

const raceScale = 5
