// Package chaostest is the deterministic chaos harness of the repository:
// a seeded driver over a sharded memnet cluster that kills, restarts and
// rejoins replicas and gateways while concurrent sharded clients issue
// writes and reads at all three consistency levels, continuously checking
// exactly-once execution, read-your-writes, monotonic commit indexes and —
// after quiescence — byte-identical replica state across every survivor
// and every rejoined replica.
//
// Determinism: the fault SCHEDULE (which action, which target, how long
// each outage lasts, the pauses in between) is drawn from a single seeded
// RNG and printed at startup, so a failing run's schedule is reproduced by
// re-running with the printed seed (CHAOS_SEED). The assertions themselves
// are timing-independent invariants — they must hold under every
// interleaving the scheduler produces for that schedule.
package chaostest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/replication"
)

// chaosSM is the counting ledger state machine: every applied update
// increments its op's counter, so lost or duplicated applications are
// directly observable, and reads return the count as text. Its snapshot is
// a canonical sorted encoding, so replicas with equal state produce equal
// bytes (the cross-replica digest check relies on this).
type chaosSM struct {
	mu     sync.Mutex
	counts map[string]int
}

func newChaosSM() *chaosSM {
	return &chaosSM{counts: make(map[string]int)}
}

func (c *chaosSM) Execute(op []byte) ([]byte, []byte) {
	return []byte("ok:" + string(op)), op
}

func (c *chaosSM) ApplyUpdate(update []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[string(update)]++
}

func (c *chaosSM) read(op []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return []byte(strconv.Itoa(c.counts[string(op)]))
}

func (c *chaosSM) count(op string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[op]
}

// duplicated returns ops applied more than once — always a violation, as
// every chaos op is unique and acknowledged at most once.
func (c *chaosSM) duplicated() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var dups []string
	for op, n := range c.counts {
		if n > 1 {
			dups = append(dups, fmt.Sprintf("%s x%d", op, n))
		}
	}
	sort.Strings(dups)
	return dups
}

// snapshot is the canonical encoding: "op\x00count" lines, sorted by op.
func (c *chaosSM) snapshot() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	ops := make([]string, 0, len(c.counts))
	for op := range c.counts {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	var b strings.Builder
	for _, op := range ops {
		b.WriteString(op)
		b.WriteByte(0)
		b.WriteString(strconv.Itoa(c.counts[op]))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

func (c *chaosSM) restore(data []byte) {
	counts := make(map[string]int)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		op, n, ok := strings.Cut(line, "\x00")
		if !ok {
			continue
		}
		v, err := strconv.Atoi(n)
		if err != nil {
			continue
		}
		counts[op] = v
	}
	c.mu.Lock()
	c.counts = counts
	c.mu.Unlock()
}

func (c *chaosSM) snapshotter() replication.Snapshotter {
	return replication.Snapshotter{Snapshot: c.snapshot, Restore: c.restore}
}

// noBroadcast is the membership broadcaster stub of a follower: a follower
// receives state transfers but never issues membership operations itself.
type noBroadcast struct{}

func (noBroadcast) Broadcast(string, any) error {
	return fmt.Errorf("chaostest: follower is not a group member")
}
