package chaostest

// Partition tolerance scenarios: network splits (symmetric, one-way and
// flapping) injected mid-load, with the availability contract audited on
// both sides of each split. A quorumless primary must fail FAST — fresh
// writes bounce with a retryable DEGRADED answer within the watchdog bound
// instead of parking until the client's OpTimeout — while the majority side
// keeps serving writes after failover. After heal, every acked op must be
// applied exactly once, read-your-writes must hold across the partition
// boundary, and all replicas must re-converge to byte-identical digests.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/service"
	"repro/internal/transport"
)

// waitFor polls cond until it holds, failing the test after d. Built on
// time.After only, so the sim/chaos wallclock ban stays intact.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.After(d)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timeout waiting for %s", what)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestPartitionQuorumlessPrimaryFailsFast is the deterministic
// isolated-primary scenario with clients on BOTH sides of the split.
//
// Client A stays attached to the gateway fronting the isolated primary
// (memnet client streams cross partitions, which is exactly the deployment
// shape the watchdog exists for: the replica tier is cut, the edge tier is
// not). Client B uses the majority side. During the split:
//
//   - a write admitted before the watchdog trips stays pending (its retries
//     join the in-flight op) and must NOT be acknowledged,
//   - a fresh write after the trip is answered DEGRADED within the
//     fail-fast bound — far below the gateway's RequestTimeout and the
//     client's OpTimeout — and counted apart from plain unavailability,
//   - every write on the majority side succeeds once failover elects a new
//     primary there, and linearizable read-your-writes holds mid-split.
//
// After heal both stuck writes complete, the degraded flag clears, client
// A reads its own writes back through the demoted primary, and the final
// audits require exactly-once application and byte-identical digests.
func TestPartitionQuorumlessPrimaryFailsFast(t *testing.T) {
	const shards = 1
	c := buildCluster(t, shards, 31)

	// Find shard 0's primary core.
	pi := -1
	waitFor(t, 10*time.Second, "initial primary election", func() bool {
		for i, n := range c.cores {
			if n.reps[0].Primary() == n.id {
				pi = i
				return true
			}
		}
		return false
	})
	primary := c.cores[pi]
	rep := primary.reps[0]
	var majority []proc.ID
	var majAddrs []string
	for _, id := range c.ids {
		if id != primary.id {
			majority = append(majority, id)
			majAddrs = append(majAddrs, c.addrs[id])
		}
	}
	majority = append(majority, c.edgeID) // the learner follows the quorum side
	t.Logf("partition: isolating primary %s from %v", primary.id, majority)

	clA := c.newShardedClient([]string{c.addrs[primary.id]}, 30*time.Second, true)
	clB := c.newShardedClient(majAddrs, 30*time.Second, false)

	const preA = "pre-split-A"
	if _, err := clA.Call([]byte(preA)); err != nil {
		t.Fatalf("pre-split write: %v", err)
	}

	c.network.Partition([]proc.ID{primary.id}, majority)

	// The doomed write: admitted before the trip, so its broadcast sticks in
	// flight and every retry joins that op instead of hitting the admission
	// gate. It must resolve only after heal — never during the split.
	const doomedOp = "doomed-A"
	doomed := make(chan error, 1)
	go func() {
		_, err := clA.Call([]byte(doomedOp))
		doomed <- err
	}()
	waitFor(t, 15*time.Second, "watchdog trip at the quorumless primary", rep.Degraded)
	if rep.DegradedTrips() == 0 {
		t.Fatal("replica reports Degraded() but zero trips")
	}

	// Fresh work after the trip must bounce with DEGRADED within the
	// fail-fast bound: ~watchdog stall + one round trip, which is far below
	// the 3s-scaled gateway RequestTimeout and the 30s client OpTimeout.
	// A separate session carries it: the doomed write's session worker is
	// (correctly) head-of-line blocked pipelining that session's writes in
	// FIFO order, so the instant-bounce contract is per fresh session.
	clA2 := c.newShardedClient([]string{c.addrs[primary.id]}, 30*time.Second, true)
	const freshOp = "fresh-A"
	fresh := make(chan error, 1)
	go func() {
		_, err := clA2.Call([]byte(freshOp))
		fresh <- err
	}()
	bound := time.After(1500 * raceScale * time.Millisecond)
	for clA2.Stats().DegradedAnswers == 0 {
		select {
		case <-bound:
			t.Fatalf("no DEGRADED answer within the fail-fast bound (client stats %+v)", clA2.Stats())
		case <-time.After(2 * time.Millisecond):
		}
	}
	if got := primary.gw.Stats().Degraded; got == 0 {
		t.Error("isolated primary's gateway counted no DEGRADED answers")
	}

	// Availability on the majority side: every write succeeds mid-split
	// (shard 0 fails over off the isolated primary), and linearizable
	// read-your-writes holds there while the split is up.
	var ackedB []string
	for n := 1; n <= 15; n++ {
		op := opName(2, n)
		if _, err := clB.Call([]byte(op)); err != nil {
			t.Fatalf("majority-side write %s during partition: %v", op, err)
		}
		ackedB = append(ackedB, op)
	}
	last := ackedB[len(ackedB)-1]
	if got, err := clB.ReadAt([]byte(last), service.ReadLinearizable); err != nil || string(got) != "1" {
		t.Fatalf("linearizable read-your-writes on majority side mid-split: %q, %v", got, err)
	}

	// No write may have been acknowledged on the quorumless side.
	select {
	case err := <-doomed:
		t.Fatalf("quorumless side acknowledged the doomed write mid-split (err=%v)", err)
	case err := <-fresh:
		t.Fatalf("quorumless side acknowledged the fresh write mid-split (err=%v)", err)
	default:
	}

	c.network.Heal()
	for name, ch := range map[string]chan error{doomedOp: doomed, freshOp: fresh} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("%s after heal: %v", name, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s never completed after heal", name)
		}
	}
	waitFor(t, 10*time.Second, "degraded flag clearing after heal", func() bool {
		return !rep.Degraded()
	})

	// Read-your-writes across the heal, through the demoted primary's own
	// gateway (both clients are sticky there), each session reading back
	// its own writes at the Monotonic level.
	for cl, ops := range map[*service.ShardedClient][]string{
		clA:  {preA, doomedOp},
		clA2: {freshOp},
	} {
		for _, op := range ops {
			if got, err := cl.Read([]byte(op)); err != nil || string(got) != "1" {
				t.Errorf("read-your-writes across heal for %q: %q, %v", op, got, err)
			}
		}
	}

	acked := append([]string{preA, doomedOp, freshOp}, ackedB...)
	c.converge(30 * time.Second)
	c.checkDigests()
	c.auditExactlyOnce(acked)
}

// TestPartitionChaos drives a seeded schedule of network faults under
// concurrent client load: symmetric minority splits, one-way link cuts
// (a node that can hear but not speak, and vice versa) and flapping
// outbound blackholes driven by the fault layer's scheduler. Each cycle
// heals before the next blow. Afterwards: zero exactly-once or read-level
// violations among the acked ops, all replicas byte-identical.
func TestPartitionChaos(t *testing.T) {
	seed := envInt("CHAOS_SEED", 7)
	cycles := int(envInt("CHAOS_CYCLES", 12))
	if testing.Short() {
		cycles = min(cycles, 4)
	}
	const shards = 2
	t.Logf("partition chaos: seed=%d cycles=%d shards=%d — reproduce with CHAOS_SEED=%d CHAOS_CYCLES=%d",
		seed, cycles, shards, seed, cycles)
	rng := rand.New(rand.NewSource(seed))
	c := buildCluster(t, shards, seed)

	nClients := 2
	stats := make([]*clientStats, nClients)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for ci := 0; ci < nClients; ci++ {
		stats[ci] = &clientStats{}
		cl := c.newShardedClient(c.addrList(ci == nClients-1), 30*time.Second, false)
		wg.Add(1)
		go func(ci int, cl *service.ShardedClient) {
			defer wg.Done()
			runClient(c, cl, ci, stop, stats[ci])
		}(ci, cl)
	}

	flapped := false
	for cycle := 0; cycle < cycles; cycle++ {
		hold := time.Duration(150+rng.Intn(250)) * raceScale * time.Millisecond
		switch rng.Intn(3) {
		case 0:
			// Symmetric minority split: one core against the rest. The
			// majority keeps quorum, so load keeps committing mid-split.
			i := rng.Intn(len(c.ids))
			var rest []proc.ID
			for _, id := range c.ids {
				if id != c.ids[i] {
					rest = append(rest, id)
				}
			}
			rest = append(rest, c.edgeID)
			c.network.Partition([]proc.ID{c.ids[i]}, rest)
			time.Sleep(hold)
			c.network.Heal()
		case 1:
			// One-way link cut: i's packets to j vanish while j's to i keep
			// flowing — asymmetric suspicion, ack starvation, retransmit
			// storms. The channel layer must ride it out and re-converge.
			i := rng.Intn(len(c.ids))
			j := (i + 1 + rng.Intn(len(c.ids)-1)) % len(c.ids)
			c.network.CutLinkOneWay(c.ids[i], c.ids[j])
			time.Sleep(hold)
			c.network.Heal()
		case 2:
			// Flapping partition: one core's outbound goes mute/loud on a
			// fast period via the fault layer's scheduler — the cruellest
			// variant, since suspicion and recovery chase each other.
			flapped = true
			f := c.faultOf(c.ids[rng.Intn(len(c.ids))])
			period := time.Duration(40+rng.Intn(40)) * raceScale * time.Millisecond
			stopSched := f.RunSchedule([]transport.FaultStep{
				{After: period, Apply: func(ft *transport.FaultTransport) {
					ft.SetDefault(transport.FaultRule{Blackhole: true})
				}},
				{After: period, Apply: func(ft *transport.FaultTransport) {
					ft.ClearDefault()
				}},
			}, true)
			time.Sleep(2 * hold)
			stopSched()
			f.Clear()
		}
		// Let retransmission and failover mend things before the next blow.
		time.Sleep(time.Duration(100+rng.Intn(150)) * raceScale * time.Millisecond)
	}
	c.network.Heal()

	close(stop)
	wg.Wait()

	var acked []string
	for ci, st := range stats {
		st.mu.Lock()
		acked = append(acked, st.acked...)
		for _, f := range st.fails {
			t.Errorf("client %d: %s", ci, f)
		}
		st.mu.Unlock()
	}
	if len(acked) == 0 {
		t.Fatal("no op was ever acknowledged")
	}
	if flapped {
		var blackholed uint64
		for _, n := range c.cores {
			blackholed += n.fault.Stats().Blackholed
		}
		if blackholed == 0 {
			t.Error("flap cycles ran but the fault layer blackholed nothing")
		}
	}
	var trips uint64
	for _, n := range c.cores {
		for _, rep := range n.reps {
			trips += rep.DegradedTrips()
		}
	}
	t.Logf("partition chaos: %d acked ops, %d watchdog trips across the cluster", len(acked), trips)

	c.converge(30 * time.Second)
	c.checkDigests()
	c.auditExactlyOnce(acked)
}
