package chaostest

import (
	"sync"
	"testing"
	"time"
)

// TestEdgeWipeRejoinLoop isolates the wipe/rejoin cycle from the full
// chaos schedule: the edge node is repeatedly destroyed and rebuilt under
// client load, with no other fault classes. Every incarnation must install
// within its window — the fast repro for rejoin wedges that the full
// schedule would only hit after minutes.
func TestEdgeWipeRejoinLoop(t *testing.T) {
	const shards = 4
	c := buildCluster(t, shards, 3)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	st := &clientStats{}
	cl := c.newShardedClient(c.addrList(true), 30*time.Second, false)
	wg.Add(1)
	go func() {
		defer wg.Done()
		runClient(c, cl, 5, stop, st)
	}()

	for i := 0; i < 8; i++ {
		// Interleave a core crash/restart with the wipe — the combination
		// the full schedule hits (a donor may be dark while the follower
		// rejoins).
		c.killRestartCore(i%len(c.ids), 60*raceScale*time.Millisecond)
		c.wipeEdge()
		c.rejoinEdge(20 * time.Second)
	}

	close(stop)
	wg.Wait()
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, f := range st.fails {
		t.Errorf("client: %s", f)
	}
	if len(st.acked) == 0 {
		t.Fatal("no acked writes")
	}
}
