package eventq

import (
	"sync"
	"testing"
)

func TestFIFO(t *testing.T) {
	q := New[int]()
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestWaitSignals(t *testing.T) {
	q := New[string]()
	done := make(chan string)
	go func() {
		for {
			if v, ok := q.TryPop(); ok {
				done <- v
				return
			}
			<-q.Wait()
		}
	}()
	q.Push("x")
	if got := <-done; got != "x" {
		t.Fatalf("got %q", got)
	}
}

func TestConcurrentProducers(t *testing.T) {
	q := New[int]()
	const producers, each = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				q.Push(i)
			}
		}()
	}
	wg.Wait()
	count := 0
	for {
		if _, ok := q.TryPop(); !ok {
			break
		}
		count++
	}
	if count != producers*each {
		t.Fatalf("popped %d of %d", count, producers*each)
	}
}

func TestClose(t *testing.T) {
	q := New[int]()
	q.Push(1)
	q.Close()
	q.Push(2) // dropped
	if q.Len() != 0 {
		t.Fatalf("len after close %d", q.Len())
	}
}
