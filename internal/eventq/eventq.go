// Package eventq provides an unbounded FIFO queue used as the inbox of the
// protocol components' event loops.
//
// Components of the stack form a cycle of interactions (e.g. atomic
// broadcast pushes proposals into consensus while consensus pushes decisions
// back into atomic broadcast). With bounded channels on both edges, two full
// queues could deadlock the loops against each other. Unbounded inboxes with
// non-blocking Push break every such cycle: a component's event loop can
// always make progress, and producers never block.
package eventq

import "sync"

// Queue is an unbounded multiple-producer single-consumer FIFO.
// The zero value is not usable; call New.
type Queue[T any] struct {
	mu     sync.Mutex
	items  []T
	notify chan struct{}
	closed bool
}

// New creates an empty queue.
func New[T any]() *Queue[T] {
	return &Queue[T]{notify: make(chan struct{}, 1)}
}

// Push appends v. It never blocks. Pushing to a closed queue is a no-op.
func (q *Queue[T]) Push(v T) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, v)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// TryPop removes and returns the head of the queue, if any.
func (q *Queue[T]) TryPop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v := q.items[0]
	// Shift rather than re-slice so the backing array does not pin
	// already-consumed items.
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return v, true
}

// Wait returns a channel that receives a token when items may be available.
// A consumer loop drains with TryPop until empty, then blocks on Wait.
func (q *Queue[T]) Wait() <-chan struct{} { return q.notify }

// Len returns the current queue length.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close marks the queue closed; subsequent Pushes are dropped.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.items = nil
}
