package transport

// Stream support: reliable, FIFO, connection-oriented framing for the
// service gateway's client sessions. Unlike the Transport interface (the
// unreliable u-send/u-receive substrate under the group stack), streams
// model the *access network* between external clients and the group's edge:
// a client dials a gateway, exchanges length-prefixed frames, and observes
// connection breakage when the gateway crashes.
//
// Two implementations mirror the two transports:
//
//   - memnet streams (Network.ListenStream / Network.DialStream) for
//     deterministic in-process tests: frames are reliable and FIFO, and
//     Network.Crash(id) breaks every stream attached to id, exactly like a
//     TCP RST from a dead host.
//   - TCP streams (ListenStreamTCP / DialStreamTCP) for real deployments,
//     using the same 4-byte big-endian length framing as the group's TCP
//     transport.

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/proc"
)

// StreamConn is one side of a reliable, FIFO, framed connection.
type StreamConn interface {
	// Send transmits one frame. It returns an error once the connection is
	// broken (peer crash or Close).
	Send(frame []byte) error
	// Recv blocks for the next frame. It returns an error once the
	// connection is broken; buffered frames are NOT drained after breakage
	// (a crash loses in-flight data, as TCP does).
	Recv() ([]byte, error)
	// Close breaks the connection; both sides observe an error.
	Close() error
}

// StreamListener accepts inbound stream connections.
type StreamListener interface {
	// Accept blocks for the next inbound connection.
	Accept() (StreamConn, error)
	// Addr returns the address clients dial to reach this listener.
	Addr() string
	// Close stops the listener; blocked Accepts return an error.
	Close() error
}

// ErrStreamClosed is returned by stream operations after breakage.
var ErrStreamClosed = errors.New("transport: stream closed")

// ---- memnet streams -------------------------------------------------------

const streamQueue = 256

// memPipe is the shared state of one full-duplex in-memory stream.
type memPipe struct {
	net  *Network
	host proc.ID // the listening endpoint this stream attaches to
	c2s  chan []byte
	s2c  chan []byte
	done chan struct{}
	once sync.Once
}

func (p *memPipe) close() {
	p.once.Do(func() { close(p.done) })
}

// memStreamConn is one side of a memPipe.
type memStreamConn struct {
	pipe *memPipe
	tx   chan<- []byte
	rx   <-chan []byte
}

var _ StreamConn = (*memStreamConn)(nil)

func (c *memStreamConn) Send(frame []byte) error {
	buf := make([]byte, len(frame))
	copy(buf, frame)
	select {
	case <-c.pipe.done:
		return ErrStreamClosed
	default:
	}
	select {
	case c.tx <- buf:
		return nil
	case <-c.pipe.done:
		return ErrStreamClosed
	}
}

func (c *memStreamConn) Recv() ([]byte, error) {
	select {
	case <-c.pipe.done:
		return nil, ErrStreamClosed
	case frame := <-c.rx:
		return frame, nil
	}
}

func (c *memStreamConn) Close() error {
	c.pipe.close()
	c.pipe.net.removePipe(c.pipe)
	return nil
}

// memStreamListener accepts in-memory streams for one endpoint ID.
type memStreamListener struct {
	net    *Network
	id     proc.ID
	accept chan *memStreamConn
	done   chan struct{}
	once   sync.Once
}

var _ StreamListener = (*memStreamListener)(nil)

func (l *memStreamListener) Accept() (StreamConn, error) {
	select {
	case <-l.done:
		return nil, ErrStreamClosed
	case c := <-l.accept:
		return c, nil
	}
}

func (l *memStreamListener) Addr() string { return string(l.id) }

func (l *memStreamListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		if l.net.listeners[l.id] == l {
			delete(l.net.listeners, l.id)
		}
		l.net.mu.Unlock()
	})
	return nil
}

// ListenStream registers a stream listener for id. Clients reach it with
// DialStream(id); the listener's Addr is the ID itself. One listener per ID.
func (n *Network) ListenStream(id proc.ID) (StreamListener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrStreamClosed
	}
	if n.listeners == nil {
		n.listeners = make(map[proc.ID]*memStreamListener)
	}
	if _, dup := n.listeners[id]; dup {
		return nil, fmt.Errorf("transport: stream listener for %q already exists", id)
	}
	l := &memStreamListener{
		net:    n,
		id:     id,
		accept: make(chan *memStreamConn, streamQueue),
		done:   make(chan struct{}),
	}
	n.listeners[id] = l
	return l, nil
}

// DialStream connects to the stream listener registered for id. Dialing a
// crashed or unlistened endpoint fails, like a refused TCP connection.
func (n *Network) DialStream(id proc.ID) (StreamConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrStreamClosed
	}
	if n.crashed[id] {
		n.mu.Unlock()
		return nil, fmt.Errorf("transport: dial %q: endpoint crashed", id)
	}
	l, ok := n.listeners[id]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("transport: dial %q: connection refused", id)
	}
	pipe := &memPipe{
		net:  n,
		host: id,
		c2s:  make(chan []byte, streamQueue),
		s2c:  make(chan []byte, streamQueue),
		done: make(chan struct{}),
	}
	client := &memStreamConn{pipe: pipe, tx: pipe.c2s, rx: pipe.s2c}
	server := &memStreamConn{pipe: pipe, tx: pipe.s2c, rx: pipe.c2s}
	n.pipes = append(n.pipes, pipe)
	n.mu.Unlock()

	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		pipe.close()
		n.removePipe(pipe)
		return nil, ErrStreamClosed
	}
}

// removePipe forgets a closed stream so the Network does not accumulate
// dead pipes (and their frame buffers) across connect/close churn.
func (n *Network) removePipe(p *memPipe) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, q := range n.pipes {
		if q == p {
			n.pipes = append(n.pipes[:i], n.pipes[i+1:]...)
			return
		}
	}
}

// breakStreams closes every stream attached to host id (crash injection) —
// called with n.mu held by Crash and Shutdown.
func (n *Network) breakStreamsLocked(id proc.ID, all bool) {
	kept := n.pipes[:0]
	for _, p := range n.pipes {
		if all || p.host == id {
			p.close()
			continue
		}
		kept = append(kept, p)
	}
	n.pipes = kept
}

// ---- TCP streams ----------------------------------------------------------

// tcpStreamConn adapts a net.Conn to the framed StreamConn contract.
type tcpStreamConn struct {
	c   net.Conn
	wmu sync.Mutex
}

var _ StreamConn = (*tcpStreamConn)(nil)

func (s *tcpStreamConn) Send(frame []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return writeFrame(s.c, frame)
}

func (s *tcpStreamConn) Recv() ([]byte, error) {
	return readFrame(s.c)
}

func (s *tcpStreamConn) Close() error { return s.c.Close() }

// tcpStreamListener adapts a net.Listener.
type tcpStreamListener struct {
	ln net.Listener
}

var _ StreamListener = (*tcpStreamListener)(nil)

func (l *tcpStreamListener) Accept() (StreamConn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	setNoDelay(c)
	return &tcpStreamConn{c: c}, nil
}

func (l *tcpStreamListener) Addr() string { return l.ln.Addr().String() }

func (l *tcpStreamListener) Close() error { return l.ln.Close() }

// ListenStreamTCP opens a TCP stream listener (the service gateway's public
// endpoint). Use ":0" to let the kernel pick a port; Addr reports it.
func ListenStreamTCP(addr string) (StreamListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream listen: %w", err)
	}
	return &tcpStreamListener{ln: ln}, nil
}

// DialStreamTCP connects to a TCP stream listener.
func DialStreamTCP(addr string) (StreamConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream dial %s: %w", addr, err)
	}
	setNoDelay(c)
	return &tcpStreamConn{c: c}, nil
}
