package transport

import "sync"

// Frame buffer pool, shared by the transport read/write paths.
//
// Every packet that crosses a transport lives in a []byte that used to be
// allocated fresh per frame: the TCP read loop allocated one per inbound
// frame, the simulated network one per Send (the copy that keeps processes
// from aliasing state), and the TCP write path one per outbound frame. All
// of these are transient — the consumer decodes (or the write loop flushes)
// and the buffer is garbage. GetFrame/PutFrame recycle them.
//
// Ownership is linear and recycling is strictly opt-in: a buffer obtained
// from GetFrame is owned by whoever holds it, and only the FINAL consumer of
// a frame may PutFrame it (the reliable channel does so after decoding a
// packet, the service gateway and client after decoding a stream frame). A
// consumer that retains a frame simply never returns it — the pool loses a
// buffer to the GC, never correctness. PutFrame accepts any buffer, pooled
// origin or not.

// maxPooledFrame bounds the capacity kept in the pool so one huge frame
// (state snapshots, oversized batches) does not pin memory forever.
const maxPooledFrame = 1 << 20

var framePool = sync.Pool{New: func() any { return new([]byte) }}

// GetFrame returns a length-n buffer, reusing pooled capacity when it fits.
func GetFrame(n int) []byte {
	bp := framePool.Get().(*[]byte)
	if cap(*bp) >= n {
		poolHits.Add(1)
		return (*bp)[:n]
	}
	// Too small for this frame: drop it (the pool refills with buffers sized
	// by actual traffic) and allocate one that fits.
	poolMisses.Add(1)
	return make([]byte, n)
}

// PutFrame recycles a frame buffer. The caller must own the buffer
// exclusively and must not touch it afterwards.
func PutFrame(buf []byte) {
	if cap(buf) == 0 || cap(buf) > maxPooledFrame {
		return
	}
	buf = buf[:0]
	framePool.Put(&buf)
}
