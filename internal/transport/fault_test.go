package transport

import (
	"testing"
	"time"

	"repro/internal/proc"
)

func TestFaultIdlePassThrough(t *testing.T) {
	n := NewNetwork()
	defer n.Shutdown()
	a := NewFaultTransport(n.Endpoint("a"), 1)
	b := n.Endpoint("b")
	a.Send("b", []byte("hi"))
	if pkt, ok := recvOne(t, b, time.Second); !ok || string(pkt.Data) != "hi" {
		t.Fatalf("idle wrapper did not pass through: %+v ok=%v", pkt, ok)
	}
	if st := a.Stats(); st != (FaultStats{}) {
		t.Fatalf("idle traffic counted as injected: %+v", st)
	}
}

func TestFaultBlackholeIsDirected(t *testing.T) {
	n := NewNetwork()
	defer n.Shutdown()
	a := NewFaultTransport(n.Endpoint("a"), 1)
	b := n.Endpoint("b")
	a.SetRule("b", FaultRule{Blackhole: true})
	a.Send("b", []byte("void"))
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Fatal("blackholed packet delivered")
	}
	// Reverse direction untouched: b can still reach a.
	b.Send("a", []byte("back"))
	if _, ok := recvOne(t, a, time.Second); !ok {
		t.Fatal("reverse direction lost")
	}
	if st := a.Stats(); st.Blackholed != 1 {
		t.Fatalf("stats %+v", st)
	}
	// ClearRule heals.
	a.ClearRule("b")
	a.Send("b", []byte("healed"))
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("ClearRule did not heal")
	}
}

func TestFaultDropProbabilityAndDefaultRule(t *testing.T) {
	n := NewNetwork()
	defer n.Shutdown()
	a := NewFaultTransport(n.Endpoint("a"), 7)
	n.Endpoint("b")
	a.SetDefault(FaultRule{Drop: 1.0})
	for i := 0; i < 10; i++ {
		a.Send("b", []byte("x"))
	}
	if st := a.Stats(); st.Dropped != 10 {
		t.Fatalf("drop 1.0 leaked: %+v", st)
	}
	// Explicit zero rule exempts one destination from the default.
	a.SetRule("c", FaultRule{})
	c := n.Endpoint("c")
	a.Send("c", []byte("exempt"))
	if _, ok := recvOne(t, c, time.Second); !ok {
		t.Fatal("zero rule did not exempt destination from default")
	}
}

func TestFaultDelayAndDuplicate(t *testing.T) {
	n := NewNetwork()
	defer n.Shutdown()
	a := NewFaultTransport(n.Endpoint("a"), 3)
	b := n.Endpoint("b")
	a.SetRule("b", FaultRule{Delay: 30 * time.Millisecond, Duplicate: 1.0})
	start := time.Now()
	buf := []byte("dup")
	a.Send("b", buf)
	buf[0] = 'X' // caller reuses its buffer immediately; the copy must hold
	first, ok := recvOne(t, b, time.Second)
	if !ok || string(first.Data) != "dup" {
		t.Fatalf("delayed packet lost or aliased: %q ok=%v", first.Data, ok)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("delay not applied: %v", elapsed)
	}
	if second, ok := recvOne(t, b, time.Second); !ok || string(second.Data) != "dup" {
		t.Fatal("duplicate copy missing")
	}
	if st := a.Stats(); st.Duplicated != 1 || st.Delayed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFaultReorder(t *testing.T) {
	n := NewNetwork()
	defer n.Shutdown()
	a := NewFaultTransport(n.Endpoint("a"), 5)
	b := n.Endpoint("b")
	// Hold every packet one quantum... except that later sends with the
	// same hold land after earlier ones. To see true overtaking, hold only
	// (deterministically) some packets: with Reorder=1 every packet is
	// held equally, so alternate the rule around a probe packet instead.
	a.SetRule("b", FaultRule{Reorder: 1.0, Delay: 20 * time.Millisecond})
	a.Send("b", []byte("held"))
	a.ClearRule("b")
	a.Send("b", []byte("fast"))
	first, ok1 := recvOne(t, b, time.Second)
	second, ok2 := recvOne(t, b, time.Second)
	if !ok1 || !ok2 {
		t.Fatal("packets lost")
	}
	if string(first.Data) != "fast" || string(second.Data) != "held" {
		t.Fatalf("no overtake: got %q then %q", first.Data, second.Data)
	}
}

func TestFaultPreservesMuxFastPath(t *testing.T) {
	// The wrapper must keep GroupMux working in both states (idle
	// delegation to the underlying prefixSender, and materialized frames
	// when rules are live).
	n := NewNetwork()
	defer n.Shutdown()
	fa := NewFaultTransport(n.Endpoint("a"), 9)
	ma := NewGroupMux(fa, 2)
	mb := NewGroupMux(n.Endpoint("b"), 2)
	defer ma.Close()
	defer mb.Close()

	ma.Group(1).Send("b", []byte("idle-path"))
	if pkt, ok := recvOne(t, mb.Group(1), time.Second); !ok || string(pkt.Data) != "idle-path" {
		t.Fatalf("idle mux send: %+v ok=%v", pkt, ok)
	}
	fa.SetRule("b", FaultRule{Delay: 5 * time.Millisecond})
	ma.Group(0).Send("b", []byte("faulted-path"))
	if pkt, ok := recvOne(t, mb.Group(0), time.Second); !ok || string(pkt.Data) != "faulted-path" {
		t.Fatalf("faulted mux send: %+v ok=%v", pkt, ok)
	}
}

func TestFaultSchedule(t *testing.T) {
	n := NewNetwork()
	defer n.Shutdown()
	a := NewFaultTransport(n.Endpoint("a"), 11)
	b := n.Endpoint("b")
	// Flap: blackhole after 10ms, heal 10ms later, looped.
	stop := a.RunSchedule([]FaultStep{
		{After: 10 * time.Millisecond, Apply: func(f *FaultTransport) {
			f.SetRule("b", FaultRule{Blackhole: true})
		}},
		{After: 10 * time.Millisecond, Apply: func(f *FaultTransport) {
			f.Clear()
		}},
	}, true)
	deadline := time.Now().Add(2 * time.Second)
	for a.Stats().Blackholed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("schedule never blackholed a packet")
		}
		a.Send("b", []byte("probe"))
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	a.Clear()
	a.Send("b", []byte("after"))
	for {
		pkt, ok := recvOne(t, b, time.Second)
		if !ok {
			t.Fatal("post-schedule packet lost")
		}
		if string(pkt.Data) == "after" {
			break
		}
	}
}

func TestMemnetCutLinkOneWay(t *testing.T) {
	n := NewNetwork()
	defer n.Shutdown()
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.CutLinkOneWay("b", "a") // b's packets toward a vanish; a→b works
	a.Send("b", []byte("data"))
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("open direction a->b lost")
	}
	b.Send("a", []byte("ack"))
	if _, ok := recvOne(t, a, 50*time.Millisecond); ok {
		t.Fatal("cut direction b->a delivered")
	}
	n.HealLinkOneWay("b", "a")
	b.Send("a", []byte("ack2"))
	if _, ok := recvOne(t, a, time.Second); !ok {
		t.Fatal("healed direction did not deliver")
	}
}

func TestMemnetPartitionOneWay(t *testing.T) {
	n := NewNetwork()
	defer n.Shutdown()
	a, b, c := n.Endpoint("a"), n.Endpoint("b"), n.Endpoint("c")
	// a is deaf: everyone's traffic toward a is dropped, but a's own
	// packets still reach the majority side.
	n.PartitionOneWay([]proc.ID{"b", "c"}, []proc.ID{"a"})
	b.Send("a", []byte("x"))
	c.Send("a", []byte("y"))
	if _, ok := recvOne(t, a, 50*time.Millisecond); ok {
		t.Fatal("packet crossed one-way partition")
	}
	a.Send("b", []byte("out"))
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("reverse direction a->b lost")
	}
	b.Send("c", []byte("side"))
	if _, ok := recvOne(t, c, time.Second); !ok {
		t.Fatal("same-side b->c lost")
	}
	n.Heal()
	b.Send("a", []byte("healed"))
	if _, ok := recvOne(t, a, time.Second); !ok {
		t.Fatal("Heal did not clear one-way partition")
	}
}
