package transport

// Fault-injection middleware: FaultTransport wraps any Transport and applies
// programmable, per-destination *directed* impairments to outbound packets —
// drop probability, one-way blackhole, added delay/jitter, duplication and
// reordering. Because every link direction has exactly one sending side,
// outbound-only rules are sufficient to express any asymmetric fault: to
// impair b→a traffic, install the rule on b's wrapper.
//
// The wrapper composes with every transport in the tree: it sits between a
// memnet endpoint (or TCP transport) and a GroupMux, implementing the
// prefixSender fast path so an idle wrapper preserves the mux's single-copy
// send. When no rules are installed the entire cost is one atomic load per
// send; the pass-through claim is falsifiable via gcsbench partition's
// paired overhead rows.
//
// Injected faults stay inside the unreliable-transport contract with one
// documented exception: Duplicate intentionally violates the "never
// duplicate" clause — the layers above tolerate duplication regardless (see
// transport.go), and surviving it is exactly what the chaos suite wants to
// falsify.
//
// Scripted schedules (RunSchedule) drive time-varying faults — flapping
// partitions, heal-after-delay — from one goroutine, so chaos scenarios are
// expressed as data.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proc"
)

// FaultRule describes the impairments applied to packets sent toward one
// destination. The zero rule is a healthy link.
type FaultRule struct {
	// Drop is the independent probability in [0, 1] that a packet is
	// silently lost.
	Drop float64
	// Blackhole drops every packet. Because rules are directed, this is a
	// one-way blackhole: the reverse direction is governed by the peer's
	// own rules.
	Blackhole bool
	// Delay is added to every packet's delivery, on top of whatever the
	// underlying transport does.
	Delay time.Duration
	// Jitter adds a uniform random extra in [0, Jitter) per packet.
	Jitter time.Duration
	// Duplicate is the probability in [0, 1] that a packet is sent twice.
	Duplicate float64
	// Reorder is the probability in [0, 1] that a packet is held back one
	// extra delay quantum, letting packets sent after it overtake it.
	Reorder float64
}

// faulty reports whether the rule impairs anything at all.
func (r FaultRule) faulty() bool {
	return r.Drop > 0 || r.Blackhole || r.Delay > 0 || r.Jitter > 0 ||
		r.Duplicate > 0 || r.Reorder > 0
}

// FaultStats is a point-in-time snapshot of the wrapper's counters.
type FaultStats struct {
	Sent       uint64 // packets submitted while rules were active
	Dropped    uint64 // lost to Drop probability
	Blackholed uint64 // lost to a Blackhole rule
	Delayed    uint64 // deferred by Delay/Jitter/Reorder
	Duplicated uint64 // extra copies injected
	Reordered  uint64 // held back to overtake
}

// FaultTransport wraps a Transport with programmable directed fault
// injection. Safe for concurrent use; rules may be changed at runtime while
// traffic flows.
type FaultTransport struct {
	tr Transport
	ps prefixSender // underlying fast path, nil if tr doesn't implement it

	// active is the idle-path gate: false means no rule is installed and
	// Send degenerates to one atomic load plus delegation.
	active atomic.Bool

	mu    sync.Mutex
	rng   *rand.Rand
	rules map[proc.ID]FaultRule
	def   *FaultRule // applies to destinations without an explicit rule

	sent       atomic.Uint64
	dropped    atomic.Uint64
	blackholed atomic.Uint64
	delayed    atomic.Uint64
	duplicated atomic.Uint64
	reordered  atomic.Uint64
}

var (
	_ Transport    = (*FaultTransport)(nil)
	_ prefixSender = (*FaultTransport)(nil)
)

// NewFaultTransport wraps tr. The seed makes the probabilistic faults (drop,
// duplicate, jitter, reorder) reproducible; the wrapper starts with no rules
// installed and is pure pass-through until SetRule/SetDefault.
func NewFaultTransport(tr Transport, seed int64) *FaultTransport {
	f := &FaultTransport{
		tr:    tr,
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[proc.ID]FaultRule),
	}
	f.ps, _ = tr.(prefixSender)
	return f
}

// Underlying returns the wrapped transport.
func (f *FaultTransport) Underlying() Transport { return f.tr }

func (f *FaultTransport) Self() proc.ID          { return f.tr.Self() }
func (f *FaultTransport) Receive() <-chan Packet { return f.tr.Receive() }
func (f *FaultTransport) Close()                 { f.tr.Close() }

// SetRule installs (or replaces) the rule for packets toward to.
func (f *FaultTransport) SetRule(to proc.ID, r FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules[to] = r
	f.recomputeActiveLocked()
}

// ClearRule removes the per-destination rule for to (the default rule, if
// any, applies again).
func (f *FaultTransport) ClearRule(to proc.ID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.rules, to)
	f.recomputeActiveLocked()
}

// SetDefault installs the rule applied to every destination that has no
// explicit rule. An explicit zero FaultRule via SetRule exempts one
// destination from the default.
func (f *FaultTransport) SetDefault(r FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rr := r
	f.def = &rr
	f.recomputeActiveLocked()
}

// ClearDefault removes the default rule.
func (f *FaultTransport) ClearDefault() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.def = nil
	f.recomputeActiveLocked()
}

// Clear removes every rule; the wrapper returns to pure pass-through.
func (f *FaultTransport) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = make(map[proc.ID]FaultRule)
	f.def = nil
	f.recomputeActiveLocked()
}

func (f *FaultTransport) recomputeActiveLocked() {
	active := f.def != nil && f.def.faulty()
	if !active {
		for _, r := range f.rules {
			if r.faulty() {
				active = true
				break
			}
		}
	}
	f.active.Store(active)
}

// Stats returns the fault counters. Counters only move while rules are
// active; idle pass-through traffic is not counted here (the underlying
// transport's stats see it as usual).
func (f *FaultTransport) Stats() FaultStats {
	return FaultStats{
		Sent:       f.sent.Load(),
		Dropped:    f.dropped.Load(),
		Blackholed: f.blackholed.Load(),
		Delayed:    f.delayed.Load(),
		Duplicated: f.duplicated.Load(),
		Reordered:  f.reordered.Load(),
	}
}

// Send transmits data, subject to the rules toward to.
func (f *FaultTransport) Send(to proc.ID, data []byte) {
	if !f.active.Load() {
		f.tr.Send(to, data)
		return
	}
	f.inject(to, nil, data)
}

// sendPrefixed keeps the GroupMux single-copy fast path intact through the
// wrapper: idle, it delegates straight to the underlying prefixSender.
func (f *FaultTransport) sendPrefixed(to proc.ID, prefix, data []byte) {
	if !f.active.Load() {
		f.forward(to, prefix, data)
		return
	}
	f.inject(to, prefix, data)
}

// forward hands the (possibly prefixed) payload to the underlying transport
// with no impairment and as few copies as it allows.
func (f *FaultTransport) forward(to proc.ID, prefix, data []byte) {
	if len(prefix) == 0 {
		f.tr.Send(to, data)
		return
	}
	if f.ps != nil {
		f.ps.sendPrefixed(to, prefix, data)
		return
	}
	// Generic transport: build the tagged frame ourselves (transports copy
	// on Send, so the pooled copy is recycled immediately).
	frame := GetFrame(len(prefix) + len(data))
	copy(frame, prefix)
	copy(frame[len(prefix):], data)
	f.tr.Send(to, frame)
	PutFrame(frame)
}

// inject applies the rule toward to. All random sampling happens under f.mu
// in submission order, so a fixed seed yields a reproducible fault sequence
// for a deterministic sender.
func (f *FaultTransport) inject(to proc.ID, prefix, data []byte) {
	f.mu.Lock()
	rule, ok := f.rules[to]
	if !ok && f.def != nil {
		rule, ok = *f.def, true
	}
	if !ok || !rule.faulty() {
		f.mu.Unlock()
		f.forward(to, prefix, data)
		return
	}
	f.sent.Add(1)
	if rule.Blackhole {
		f.mu.Unlock()
		f.blackholed.Add(1)
		return
	}
	if rule.Drop > 0 && f.rng.Float64() < rule.Drop {
		f.mu.Unlock()
		f.dropped.Add(1)
		return
	}
	dup := rule.Duplicate > 0 && f.rng.Float64() < rule.Duplicate
	delay := rule.Delay
	if rule.Jitter > 0 {
		delay += time.Duration(f.rng.Int63n(int64(rule.Jitter)))
	}
	if rule.Reorder > 0 && f.rng.Float64() < rule.Reorder {
		// Hold the packet back one extra quantum so packets sent after it
		// (which are not held) overtake it. Holding individual packets —
		// rather than swapping with a parked one — cannot starve anything.
		quantum := rule.Delay + rule.Jitter
		if quantum <= 0 {
			quantum = time.Millisecond
		}
		delay += quantum
		f.reordered.Add(1)
	}
	f.mu.Unlock()

	sends := 1
	if dup {
		sends = 2
		f.duplicated.Add(1)
	}
	if delay <= 0 {
		for i := 0; i < sends; i++ {
			f.forward(to, prefix, data)
		}
		return
	}
	f.delayed.Add(1)
	// A deferred send outlives the caller's buffers (Send's contract lets
	// the caller reuse them the moment it returns), so materialize one
	// plain heap copy here. Deliberately NOT a pooled frame: the copy
	// crosses into timer goroutines and the pool's linear-ownership
	// discipline (gcsvet framepool) does not extend there. The underlying
	// transport copies again on Send, as for any caller.
	buf := make([]byte, len(prefix)+len(data))
	copy(buf, prefix)
	copy(buf[len(prefix):], data)
	for i := 0; i < sends; i++ {
		time.AfterFunc(delay, func() { f.tr.Send(to, buf) })
	}
}

// FaultStep is one step of a scripted fault schedule: wait After (measured
// from the previous step firing), then apply the mutation.
type FaultStep struct {
	After time.Duration
	Apply func(*FaultTransport)
}

// RunSchedule plays the steps in order on a dedicated goroutine; with loop
// set it repeats the sequence until stopped — a flapping partition is a
// two-step loop of SetRule/Clear. The returned stop function halts the
// runner and waits for it to exit (idempotent); it does NOT clear installed
// rules — end the schedule with a clearing step, or call Clear after stop,
// to heal.
func (f *FaultTransport) RunSchedule(steps []FaultStep, loop bool) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		timer := time.NewTimer(time.Hour)
		defer timer.Stop()
		for {
			for _, st := range steps {
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(st.After)
				select {
				case <-done:
					return
				case <-timer.C:
				}
				st.Apply(f)
			}
			if !loop {
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}
