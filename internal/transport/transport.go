// Package transport provides the unreliable transport at the bottom of the
// stack (Figure 9, "Unreliable Transport", operations u-send / u-receive).
//
// Two implementations are provided:
//
//   - Network, an in-memory simulated network with configurable latency,
//     jitter, message loss, link failures, partitions and process crashes.
//     All experiments and tests run on it.
//   - TCPTransport, a real TCP mesh for multi-process deployments
//     (cmd/gcsnode).
//
// The transport is allowed to drop, delay and reorder messages; it must
// never corrupt or duplicate them (duplication is tolerated by the layers
// above regardless).
package transport

import (
	"sync/atomic"

	"repro/internal/proc"
)

// Packet is a datagram delivered by a Transport.
type Packet struct {
	From proc.ID
	Data []byte
}

// Transport is the unreliable point-to-point substrate (u-send/u-receive).
type Transport interface {
	// Self returns the local process identity.
	Self() proc.ID
	// Send transmits data to the destination on a best-effort basis: the
	// packet may be dropped, delayed or reordered, and no error is reported
	// for loss.
	Send(to proc.ID, data []byte)
	// Receive returns the channel of incoming packets. The channel is
	// closed when the transport is closed.
	Receive() <-chan Packet
	// Close releases the endpoint. Subsequent Sends are dropped.
	Close()
}

// Stats counts transport-level traffic. All fields are updated atomically
// and may be read concurrently via Snapshot.
type Stats struct {
	sent      atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	bytes     atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of the counters.
type StatsSnapshot struct {
	Sent      uint64 // packets submitted to Send
	Delivered uint64 // packets handed to a receiver
	Dropped   uint64 // packets lost (loss, partition, crash, overflow)
	Bytes     uint64 // payload bytes submitted
}

func (s *Stats) addSent(n int) {
	s.sent.Add(1)
	s.bytes.Add(uint64(n))
}

func (s *Stats) addDelivered() { s.delivered.Add(1) }
func (s *Stats) addDropped()   { s.dropped.Add(1) }

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Sent:      s.sent.Load(),
		Delivered: s.delivered.Load(),
		Dropped:   s.dropped.Load(),
		Bytes:     s.bytes.Load(),
	}
}
