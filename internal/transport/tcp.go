package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/proc"
)

const maxFrame = 16 << 20 // 16 MiB, sanity bound on frame length

// outQueue bounds the frames parked at one connection's write loop; beyond
// it Send drops, per the unreliable contract (the reliable channel above
// retransmits).
const outQueue = 1024

// tcpWriteBuffer sizes each connection's bufio writer — the coalescing
// window of the flush loop.
const tcpWriteBuffer = 64 << 10

// TCPTransport carries packets over TCP connections between real processes.
// It still presents the *unreliable* transport contract: a connection error
// simply drops the packet (the reliable channel layer above retransmits).
//
// Framing: every frame is a 4-byte big-endian length followed by that many
// bytes. The first frame on an outbound connection carries the sender's
// identity — "id" or "id\n<listen-addr>" — so the receiver can attribute
// packets AND learn how to dial back a peer absent from its static peer map
// (a recovering follower joining a running deployment announces itself this
// way; see cmd/gcsnode -join).
//
// Writes are serialized per connection through a single write loop: Send
// packs header+payload into one pooled buffer and hands it to the
// connection's queue, so concurrent Sends can never interleave partial
// frames on the wire. The loop drains whatever is queued into a buffered
// writer and flushes once per drain — under bursty load (a broadcast fanning
// out, a retransmission sweep) many frames leave in one syscall instead of
// two syscalls per frame. TCP_NODELAY is set on every connection so a flush
// is a wire-visible packet boundary, not a Nagle gamble.
type TCPTransport struct {
	self  proc.ID
	peers map[proc.ID]string
	ln    net.Listener
	inbox chan Packet

	metrics atomic.Pointer[tcpMetrics] // nil until RegisterMetrics

	// mu guards the connection tables. The write loops drain their queues
	// without it; nothing that can block (dialing, flushing, waiting) may
	// run while holding it (gcsvet lockhold) — conn() deliberately dials
	// with the lock dropped.
	mu      sync.Mutex //gcsvet:lock tcp-conns
	conns   map[proc.ID]*tcpConn
	inbound map[net.Conn]bool  // accepted connections, closed on shutdown
	learned map[proc.ID]string // dial-back addresses announced by inbound peers
	closed  bool
	wg      sync.WaitGroup
}

// tcpConn is one outbound connection and its write pipeline.
type tcpConn struct {
	c    net.Conn
	out  chan []byte // packed frames (pooled buffers), consumed by writeLoop
	done chan struct{}
	once sync.Once
}

// retire closes the connection and releases its write loop exactly once.
func (tc *tcpConn) retire() {
	tc.once.Do(func() {
		close(tc.done)
		_ = tc.c.Close()
	})
}

var _ Transport = (*TCPTransport)(nil)

// NewTCP starts a TCP transport listening on listenAddr. peers maps every
// process (including self) to its listen address.
func NewTCP(self proc.ID, listenAddr string, peers map[proc.ID]string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcp transport listen: %w", err)
	}
	peerCopy := make(map[proc.ID]string, len(peers))
	for id, addr := range peers {
		peerCopy[id] = addr
	}
	t := &TCPTransport{
		self:  self,
		peers: peerCopy,
		ln:    ln,
		inbox: make(chan Packet, defaultQueue),
		conns: make(map[proc.ID]*tcpConn),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the actual listen address (useful with ":0").
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) Self() proc.ID { return t.self }

func (t *TCPTransport) Send(to proc.ID, data []byte) {
	t.sendPrefixed(to, nil, data)
}

// sendPrefixed is Send with an optional payload prefix (the group mux's
// tag), folded into the single copy Send makes anyway (prefixSender fast
// path).
func (t *TCPTransport) sendPrefixed(to proc.ID, prefix, data []byte) {
	tc, err := t.conn(to)
	if err != nil {
		return // unreliable: drop
	}
	// Pack into one pooled buffer: the write loop owns it from here (and
	// returns it to the pool), the caller keeps its own.
	frame := packFrame2(prefix, data)
	m := t.metrics.Load()
	select {
	case tc.out <- frame:
		m.frameOut(len(frame))
	case <-tc.done:
		PutFrame(frame)
		m.queueDrop()
	default:
		PutFrame(frame) // queue overflow: drop, per the unreliable contract
		m.queueDrop()
	}
}

func (t *TCPTransport) Receive() <-chan Packet { return t.inbox }

func (t *TCPTransport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	conns := make([]*tcpConn, 0, len(t.conns))
	for _, tc := range t.conns {
		conns = append(conns, tc)
	}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()
	_ = t.ln.Close()
	for _, tc := range conns {
		tc.retire()
	}
	// Accepted connections must be closed too, or their read loops — blocked
	// in readFrame on peers that stay up — would park wg.Wait forever when
	// only THIS side shuts down (a restarting node among survivors).
	for _, c := range inbound {
		_ = c.Close()
	}
	t.wg.Wait()
	close(t.inbox)
}

// conn returns (establishing if needed) the outbound connection to a peer.
// The handshake frame is queued ahead of any data frame, so the write loop
// preserves the wire protocol's first-frame-is-identity rule.
func (t *TCPTransport) conn(to proc.ID) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("tcp transport closed")
	}
	if tc, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return tc, nil
	}
	addr, ok := t.peers[to]
	if !ok {
		// Fall back to the address the peer announced in its handshake —
		// how processes outside the static map (joining followers) are
		// answered.
		addr, ok = t.learned[to]
	}
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("unknown peer %q", to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", to, err)
	}
	setNoDelay(c)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = c.Close()
		return nil, fmt.Errorf("tcp transport closed")
	}
	if existing, ok := t.conns[to]; ok {
		t.mu.Unlock()
		_ = c.Close()
		return existing, nil
	}
	tc := &tcpConn{
		c:    c,
		out:  make(chan []byte, outQueue),
		done: make(chan struct{}),
	}
	// Handshake first: pack it like any frame so it rides the same loop.
	// It announces our listen address so the peer can dial back even if we
	// are not in its static peer map.
	//gcsvet:ignore lockhold -- tc.out is a fresh buffered channel (outQueue deep) nobody else holds; this send cannot block
	tc.out <- packFrame([]byte(string(t.self) + "\n" + t.ln.Addr().String()))
	t.conns[to] = tc
	t.wg.Add(1)
	go t.writeLoop(to, tc)
	t.mu.Unlock()
	return tc, nil
}

// writeLoop is the single writer of one connection: it drains queued frames
// into the buffered writer and flushes once the queue runs dry, coalescing
// bursts into few syscalls while keeping per-frame latency at one select.
func (t *TCPTransport) writeLoop(to proc.ID, tc *tcpConn) {
	defer t.wg.Done()
	bw := bufio.NewWriterSize(tc.c, tcpWriteBuffer)
	for {
		var frame []byte
		select {
		case frame = <-tc.out:
		case <-tc.done:
			return
		}
		for frame != nil {
			_, err := bw.Write(frame)
			PutFrame(frame)
			if err != nil {
				t.dropConn(to, tc)
				return
			}
			select {
			case frame = <-tc.out:
			default:
				frame = nil
			}
		}
		if err := bw.Flush(); err != nil {
			t.dropConn(to, tc)
			return
		}
	}
}

func (t *TCPTransport) dropConn(to proc.ID, tc *tcpConn) {
	tc.retire()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conns[to] == tc {
		delete(t.conns, to)
	}
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		setNoDelay(c)
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = c.Close()
			return
		}
		if t.inbound == nil {
			t.inbound = make(map[net.Conn]bool)
		}
		t.inbound[c] = true
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(c)
	}
}

func (t *TCPTransport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = c.Close()
		t.mu.Lock()
		delete(t.inbound, c)
		t.mu.Unlock()
	}()
	idFrame, err := readFrame(c)
	if err != nil {
		return
	}
	id, dialBack, _ := strings.Cut(string(idFrame), "\n") // copies; the frame is ours
	from := proc.ID(id)
	PutFrame(idFrame)
	if dialBack != "" {
		// A peer bound to a wildcard announces an undialable host
		// ("0.0.0.0:p", "[::]:p"): substitute the connection's observed
		// source IP, which IS routable from here, keeping the announced port.
		if host, port, err := net.SplitHostPort(dialBack); err == nil {
			if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
				if rhost, _, err := net.SplitHostPort(c.RemoteAddr().String()); err == nil {
					dialBack = net.JoinHostPort(rhost, port)
				}
			}
		}
		t.mu.Lock()
		if _, static := t.peers[from]; !static {
			if t.learned == nil {
				t.learned = make(map[proc.ID]string)
			}
			t.learned[from] = dialBack
		}
		t.mu.Unlock()
	}
	for {
		data, err := readFrame(c)
		if err != nil {
			return
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		m := t.metrics.Load()
		select {
		case t.inbox <- Packet{From: from, Data: data}:
			m.frameIn(len(data))
		default:
			// Queue overflow: drop, per the unreliable contract.
			PutFrame(data)
			m.inboxDrop()
		}
	}
}

// setNoDelay disables Nagle on TCP connections: the transport does its own
// coalescing (buffered write loop), so delaying small frames in the kernel
// only adds latency to acks and heartbeats.
func setNoDelay(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
}

// packFrame copies payload into a pooled buffer behind its 4-byte length
// prefix — the wire format of readFrame. The caller owns the result (the
// write loop returns it to the pool after flushing).
func packFrame(payload []byte) []byte {
	return packFrame2(nil, payload)
}

// packFrame2 is packFrame for a payload in two parts (prefix + rest),
// avoiding an intermediate concatenation buffer.
func packFrame2(prefix, payload []byte) []byte {
	n := len(prefix) + len(payload)
	frame := GetFrame(4 + n)
	binary.BigEndian.PutUint32(frame, uint32(n))
	copy(frame[4:], prefix)
	copy(frame[4+len(prefix):], payload)
	return frame
}

// writeFrame writes one length-prefixed frame as a single vectored write
// (net.Buffers → writev), so callers that share a connection under a lock
// never issue two syscalls — or two interleavable writes — per frame. Used
// by the stream (service session) conns; the group transport's own traffic
// goes through the per-connection write loop instead.
func writeFrame(c net.Conn, data []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	bufs := net.Buffers{hdr[:], data}
	_, err := bufs.WriteTo(c)
	return err
}

// readFrame reads one length-prefixed frame into a pooled buffer. The final
// consumer of the frame may recycle it with PutFrame.
func readFrame(c net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("frame too large: %d", n)
	}
	buf := GetFrame(int(n))
	if _, err := io.ReadFull(c, buf); err != nil {
		PutFrame(buf)
		return nil, err
	}
	return buf, nil
}
