package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/proc"
)

const maxFrame = 16 << 20 // 16 MiB, sanity bound on frame length

// TCPTransport carries packets over TCP connections between real processes.
// It still presents the *unreliable* transport contract: a connection error
// simply drops the packet (the reliable channel layer above retransmits).
//
// Framing: every frame is a 4-byte big-endian length followed by that many
// bytes. The first frame on an outbound connection carries the sender's
// process ID so the receiver can attribute packets.
type TCPTransport struct {
	self  proc.ID
	peers map[proc.ID]string
	ln    net.Listener
	inbox chan Packet

	mu     sync.Mutex
	conns  map[proc.ID]net.Conn
	closed bool
	wg     sync.WaitGroup
}

var _ Transport = (*TCPTransport)(nil)

// NewTCP starts a TCP transport listening on listenAddr. peers maps every
// process (including self) to its listen address.
func NewTCP(self proc.ID, listenAddr string, peers map[proc.ID]string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcp transport listen: %w", err)
	}
	peerCopy := make(map[proc.ID]string, len(peers))
	for id, addr := range peers {
		peerCopy[id] = addr
	}
	t := &TCPTransport{
		self:  self,
		peers: peerCopy,
		ln:    ln,
		inbox: make(chan Packet, defaultQueue),
		conns: make(map[proc.ID]net.Conn),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the actual listen address (useful with ":0").
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) Self() proc.ID { return t.self }

func (t *TCPTransport) Send(to proc.ID, data []byte) {
	conn, err := t.conn(to)
	if err != nil {
		return // unreliable: drop
	}
	if err := writeFrame(conn, data); err != nil {
		t.dropConn(to, conn)
	}
}

func (t *TCPTransport) Receive() <-chan Packet { return t.inbox }

func (t *TCPTransport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	_ = t.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	t.wg.Wait()
	close(t.inbox)
}

func (t *TCPTransport) conn(to proc.ID) (net.Conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("tcp transport closed")
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.peers[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("unknown peer %q", to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", to, err)
	}
	if err := writeFrame(c, []byte(t.self)); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("handshake %s: %w", to, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		_ = c.Close()
		return nil, fmt.Errorf("tcp transport closed")
	}
	if existing, ok := t.conns[to]; ok {
		_ = c.Close()
		return existing, nil
	}
	t.conns[to] = c
	return c, nil
}

func (t *TCPTransport) dropConn(to proc.ID, c net.Conn) {
	_ = c.Close()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

func (t *TCPTransport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	idFrame, err := readFrame(c)
	if err != nil {
		return
	}
	from := proc.ID(idFrame)
	for {
		data, err := readFrame(c)
		if err != nil {
			return
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		select {
		case t.inbox <- Packet{From: from, Data: data}:
		default:
			// Queue overflow: drop, per the unreliable contract.
		}
	}
}

func writeFrame(c net.Conn, data []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.Write(data)
	return err
}

func readFrame(c net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("frame too large: %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
