package transport

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"repro/internal/proc"
)

// tcpPair builds two TCP transports on loopback that know each other's
// addresses (bind-first-then-rebuild, as the integration tests do).
func tcpPair(t *testing.T) (*TCPTransport, *TCPTransport) {
	t.Helper()
	ta, err := NewTCP("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTCP("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	peers := map[proc.ID]string{"a": ta.Addr(), "b": tb.Addr()}
	addrA, addrB := ta.Addr(), tb.Addr()
	ta.Close()
	tb.Close()
	ta, err = NewTCP("a", addrA, peers)
	if err != nil {
		t.Fatal(err)
	}
	tb, err = NewTCP("b", addrB, peers)
	if err != nil {
		t.Fatal(err)
	}
	return ta, tb
}

// TestTCPConcurrentSendIntegrity is the regression test for the
// frame-interleaving race: many goroutines hammer Send toward ONE peer over
// the shared connection. Every frame that arrives must be exactly one
// sender's frame, bit for bit — on the pre-fix path (two unsynchronized
// c.Write calls per frame) headers and payloads from different goroutines
// interleave on the wire and the receiver sees corrupt lengths or mixed
// payloads. Run under -race in CI.
//
// Frames may be DROPPED (unreliable contract: queue overflow), never
// corrupted.
func TestTCPConcurrentSendIntegrity(t *testing.T) {
	ta, tb := tcpPair(t)
	defer func() {
		ta.Close()
		tb.Close()
	}()

	const (
		writers   = 16
		perWriter = 300
	)

	// Frame layout: [4B writer][4B seq][fill...], fill byte derived from
	// both, length varying per (writer, seq) so torn frames shift framing.
	mkFrame := func(w, seq int) []byte {
		n := 9 + (w*131+seq*17)%1024
		buf := make([]byte, n)
		binary.BigEndian.PutUint32(buf[0:], uint32(w))
		binary.BigEndian.PutUint32(buf[4:], uint32(seq))
		fill := byte(w*31 + seq)
		for i := 8; i < n; i++ {
			buf[i] = fill
		}
		return buf
	}

	var received sync.WaitGroup
	received.Add(1)
	var total int
	go func() {
		defer received.Done()
		for {
			// Stop once the stream runs dry: frames may be dropped (queue
			// overflow is legal under the unreliable contract), so the test
			// asserts integrity of everything that DID arrive, not totals.
			select {
			case pkt, ok := <-tb.Receive():
				if !ok {
					return
				}
				data := pkt.Data
				if len(data) < 9 {
					t.Errorf("runt frame: %d bytes", len(data))
					return
				}
				w := int(binary.BigEndian.Uint32(data[0:]))
				seq := int(binary.BigEndian.Uint32(data[4:]))
				if w < 0 || w >= writers || seq < 0 || seq >= perWriter {
					t.Errorf("corrupt header: writer=%d seq=%d", w, seq)
					return
				}
				want := mkFrame(w, seq)
				if len(data) != len(want) {
					t.Errorf("writer %d seq %d: frame length %d, want %d", w, seq, len(data), len(want))
					return
				}
				fill := byte(w*31 + seq)
				for i := 8; i < len(data); i++ {
					if data[i] != fill {
						t.Errorf("writer %d seq %d: torn payload at byte %d (%#x != %#x)",
							w, seq, i, data[i], fill)
						return
					}
				}
				total++
				if total == writers*perWriter {
					return
				}
			case <-time.After(2 * time.Second):
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := 0; seq < perWriter; seq++ {
				ta.Send("b", mkFrame(w, seq))
			}
		}(w)
	}
	wg.Wait()
	received.Wait()

	// Enough must arrive to have genuinely exercised concurrent writers on
	// the shared connection; with a 1024-deep write queue several hundred
	// frames always make it even on a fully bursty schedule.
	if total < 500 {
		t.Fatalf("only %d of %d frames arrived", total, writers*perWriter)
	}
	t.Logf("received %d/%d frames, all intact", total, writers*perWriter)
}
