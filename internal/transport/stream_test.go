package transport

import (
	"testing"
	"time"
)

// exerciseStream runs the common contract checks over a dialed pair.
func exerciseStream(t *testing.T, dial func() (StreamConn, error), accepted <-chan StreamConn) {
	t.Helper()
	client, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	var server StreamConn
	select {
	case server = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}

	// FIFO both ways.
	for i := byte(0); i < 10; i++ {
		if err := client.Send([]byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 10; i++ {
		frame, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(frame) != 1 || frame[0] != i {
			t.Fatalf("frame %d: got %v", i, frame)
		}
	}
	if err := server.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	frame, err := client.Recv()
	if err != nil || string(frame) != "pong" {
		t.Fatalf("client recv %q %v", frame, err)
	}

	// Close propagates to both sides.
	_ = client.Close()
	if _, err := server.Recv(); err == nil {
		t.Fatal("server Recv succeeded after client close")
	}
	if err := client.Send([]byte("x")); err == nil {
		t.Fatal("Send succeeded after close")
	}
}

func acceptLoop(t *testing.T, l StreamListener) <-chan StreamConn {
	t.Helper()
	ch := make(chan StreamConn, 4)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			ch <- c
		}
	}()
	return ch
}

func TestMemStreamContract(t *testing.T) {
	network := NewNetwork()
	defer network.Shutdown()
	l, err := network.ListenStream("gw")
	if err != nil {
		t.Fatal(err)
	}
	if l.Addr() != "gw" {
		t.Fatalf("addr %q", l.Addr())
	}
	exerciseStream(t, func() (StreamConn, error) { return network.DialStream("gw") }, acceptLoop(t, l))
}

func TestTCPStreamContract(t *testing.T) {
	l, err := ListenStreamTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	exerciseStream(t, func() (StreamConn, error) { return DialStreamTCP(l.Addr()) }, acceptLoop(t, l))
}

// A crash of the listening endpoint must break established streams and
// refuse new dials until Restart.
func TestMemStreamCrashBreaksConnections(t *testing.T) {
	network := NewNetwork()
	defer network.Shutdown()
	l, err := network.ListenStream("gw")
	if err != nil {
		t.Fatal(err)
	}
	accepted := acceptLoop(t, l)
	client, err := network.DialStream("gw")
	if err != nil {
		t.Fatal(err)
	}
	<-accepted

	network.Crash("gw")
	if _, err := client.Recv(); err == nil {
		t.Fatal("Recv succeeded across a crash")
	}
	if _, err := network.DialStream("gw"); err == nil {
		t.Fatal("dial to crashed endpoint succeeded")
	}
	network.Restart("gw")
	c2, err := network.DialStream("gw")
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	_ = c2.Close()
}

func TestMemStreamDuplicateListener(t *testing.T) {
	network := NewNetwork()
	defer network.Shutdown()
	l, err := network.ListenStream("gw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := network.ListenStream("gw"); err == nil {
		t.Fatal("duplicate listener allowed")
	}
	_ = l.Close()
	// After Close the ID is free again.
	if _, err := network.ListenStream("gw"); err != nil {
		t.Fatalf("relisten after close: %v", err)
	}
}

func TestMemStreamDialUnlistened(t *testing.T) {
	network := NewNetwork()
	defer network.Shutdown()
	if _, err := network.DialStream("nobody"); err == nil {
		t.Fatal("dial to unlistened ID succeeded")
	}
}
