package transport

import (
	"fmt"
	"testing"
	"time"
)

// muxPair builds a group mux with n groups over each of two memnet
// endpoints, a↔b.
func muxPair(t *testing.T, n int) (*Network, *GroupMux, *GroupMux) {
	t.Helper()
	net := NewNetwork(WithSeed(3))
	ma := NewGroupMux(net.Endpoint("a"), n)
	mb := NewGroupMux(net.Endpoint("b"), n)
	t.Cleanup(func() {
		ma.Close()
		mb.Close()
		net.Shutdown()
	})
	return net, ma, mb
}

func muxRecv(t *testing.T, tr Transport) Packet {
	t.Helper()
	select {
	case p, ok := <-tr.Receive():
		if !ok {
			t.Fatal("inbox closed")
		}
		return p
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for packet")
	}
	return Packet{}
}

// TestGroupMuxRouting: frames sent on group i arrive on the peer's group i
// only, with identity and payload intact.
func TestGroupMuxRouting(t *testing.T) {
	_, ma, mb := muxPair(t, 3)

	for i := 0; i < 3; i++ {
		ma.Group(i).Send("b", []byte(fmt.Sprintf("group-%d", i)))
	}
	for i := 0; i < 3; i++ {
		p := muxRecv(t, mb.Group(i))
		if p.From != "a" {
			t.Fatalf("group %d: from %q", i, p.From)
		}
		if got, want := string(p.Data), fmt.Sprintf("group-%d", i); got != want {
			t.Fatalf("group %d: payload %q, want %q", i, got, want)
		}
	}
	// Nothing bled into another group's inbox.
	for i := 0; i < 3; i++ {
		select {
		case p := <-mb.Group(i).Receive():
			t.Fatalf("group %d: unexpected extra packet %q", i, p.Data)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestGroupMuxSelf: every group reports the shared endpoint's identity.
func TestGroupMuxSelf(t *testing.T) {
	_, ma, _ := muxPair(t, 2)
	for i := 0; i < 2; i++ {
		if ma.Group(i).Self() != "a" {
			t.Fatalf("group %d self %q", i, ma.Group(i).Self())
		}
	}
}

// TestGroupMuxGroupCloseIsolation: closing one group (as its stack's
// shutdown does) must not disturb the other groups or the shared endpoint,
// and late frames for the closed group are dropped without panic.
func TestGroupMuxGroupCloseIsolation(t *testing.T) {
	_, ma, mb := muxPair(t, 2)

	mb.Group(0).Close()
	ma.Group(0).Send("b", []byte("late for closed group"))
	ma.Group(1).Send("b", []byte("still flowing"))

	p := muxRecv(t, mb.Group(1))
	if string(p.Data) != "still flowing" {
		t.Fatalf("group 1 payload %q", p.Data)
	}
	if _, ok := <-mb.Group(0).Receive(); ok {
		t.Fatal("closed group delivered a packet")
	}
}

// TestGroupMuxClose: closing the mux closes the physical endpoint and every
// group inbox.
func TestGroupMuxClose(t *testing.T) {
	net := NewNetwork(WithSeed(4))
	m := NewGroupMux(net.Endpoint("a"), 2)
	defer net.Shutdown()
	m.Close()
	m.Close() // idempotent
	for i := 0; i < 2; i++ {
		if _, ok := <-m.Group(i).Receive(); ok {
			t.Fatalf("group %d inbox still open after mux close", i)
		}
	}
}

// TestGroupMuxUnknownGroupDropped: a peer running more groups than we do
// (mismatched shard counts) must not crash or misroute — the frame is
// silently dropped, like any unreliable-transport loss.
func TestGroupMuxUnknownGroupDropped(t *testing.T) {
	net := NewNetwork(WithSeed(5))
	ma := NewGroupMux(net.Endpoint("a"), 4)
	mb := NewGroupMux(net.Endpoint("b"), 2)
	defer func() {
		ma.Close()
		mb.Close()
		net.Shutdown()
	}()

	ma.Group(3).Send("b", []byte("no such group here"))
	ma.Group(1).Send("b", []byte("routable"))
	if p := muxRecv(t, mb.Group(1)); string(p.Data) != "routable" {
		t.Fatalf("payload %q", p.Data)
	}
}

// TestGroupMuxOverTCP: S groups share ONE physical TCP connection set —
// the whole point of the mux — and still deliver with integrity.
func TestGroupMuxOverTCP(t *testing.T) {
	const groups = 4
	ta2, tb2 := tcpPair(t)
	ma := NewGroupMux(ta2, groups)
	mb := NewGroupMux(tb2, groups)
	defer func() {
		ma.Close()
		mb.Close()
	}()

	const per = 50
	for g := 0; g < groups; g++ {
		for i := 0; i < per; i++ {
			ma.Group(g).Send("b", []byte(fmt.Sprintf("g%d-msg%d", g, i)))
		}
	}
	// TCP is reliable and FIFO per connection, and all groups share it, so
	// every frame arrives, in per-group order.
	for g := 0; g < groups; g++ {
		for i := 0; i < per; i++ {
			p := muxRecv(t, mb.Group(g))
			if got, want := string(p.Data), fmt.Sprintf("g%d-msg%d", g, i); got != want {
				t.Fatalf("group %d: got %q, want %q", g, got, want)
			}
		}
	}
}
