package transport

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/proc"
)

// drainCount pulls packets from a transport until idle, returning how many
// arrived and the last payload.
func muxRecvOne(t *testing.T, tr Transport, timeout time.Duration) ([]byte, bool) {
	t.Helper()
	select {
	case pkt, ok := <-tr.Receive():
		if !ok {
			return nil, false
		}
		data := append([]byte(nil), pkt.Data...)
		PutFrame(pkt.Data)
		return data, true
	case <-time.After(timeout):
		return nil, false
	}
}

// TestGroupMuxTCPPeerRestart: a muxed TCP peer dies mid-stream and comes
// back on the same address. The surviving node's groups must keep working
// with the restarted peer — reconnection happens under the mux without any
// group noticing — and traffic on one group must not poison its siblings
// across the restart (each group sees only its own frames, before and
// after).
func TestGroupMuxTCPPeerRestart(t *testing.T) {
	const groups = 3

	trA, trB1 := tcpPair(t)
	addrB := trB1.Addr()
	peers := map[proc.ID]string{"a": trA.Addr(), "b": addrB}

	muxA := NewGroupMux(trA, groups)
	defer muxA.Close()
	muxB1 := NewGroupMux(trB1, groups)

	// Pre-restart: every group exchanges one frame in each direction.
	for g := 0; g < groups; g++ {
		muxA.Group(g).Send("b", []byte{byte('A'), byte(g)})
		muxB1.Group(g).Send("a", []byte{byte('B'), byte(g)})
	}
	for g := 0; g < groups; g++ {
		if data, ok := muxRecvOne(t, muxB1.Group(g), 5*time.Second); !ok || data[1] != byte(g) {
			t.Fatalf("pre-restart: group %d at b got %v", g, data)
		}
		if data, ok := muxRecvOne(t, muxA.Group(g), 5*time.Second); !ok || data[1] != byte(g) {
			t.Fatalf("pre-restart: group %d at a got %v", g, data)
		}
	}

	// b dies mid-stream and restarts on the same address with a fresh
	// transport + mux. a's established connection breaks; the next sends
	// redial transparently.
	muxB1.Close() // closes trB1

	trB2, err := NewTCP("b", addrB, peers)
	if err != nil {
		t.Fatal(err)
	}
	muxB2 := NewGroupMux(trB2, groups)
	defer muxB2.Close()

	// The transport is allowed to drop frames while the connection is being
	// re-established (unreliable contract), so send until each group gets
	// through — on its OWN group only.
	deadline := time.Now().Add(10 * time.Second)
	for g := 0; g < groups; g++ {
		for {
			muxA.Group(g).Send("b", []byte{byte('A'), byte(g), 2})
			if data, ok := muxRecvOne(t, muxB2.Group(g), 100*time.Millisecond); ok {
				if data[1] != byte(g) {
					t.Fatalf("post-restart: group %d received sibling frame %v", g, data)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("post-restart: group %d never reconnected", g)
			}
		}
	}

	// And the reverse direction from the restarted node.
	for g := 0; g < groups; g++ {
		for {
			muxB2.Group(g).Send("a", []byte{byte('B'), byte(g), 2})
			if data, ok := muxRecvOne(t, muxA.Group(g), 100*time.Millisecond); ok {
				if data[1] != byte(g) {
					t.Fatalf("post-restart reverse: group %d got sibling frame %v", g, data)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("post-restart reverse: group %d never got through", g)
			}
		}
	}
}

// TestGroupMuxUnknownTagAndPartialFrameIsolation: corrupt inbound traffic —
// a frame tagged for a group beyond the local count (a peer running more
// shards) and a truncated/garbage frame — is dropped by the demux without
// disturbing delivery on healthy sibling groups. Injected at the memnet
// level so the exact bytes are controlled.
func TestGroupMuxUnknownTagAndPartialFrameIsolation(t *testing.T) {
	n := NewNetwork()
	defer n.Shutdown()

	mux := NewGroupMux(n.Endpoint("m"), 2)
	defer mux.Close()
	raw := n.Endpoint("x") // un-muxed sender injecting arbitrary bytes

	// Unknown tag: group 7 of 2.
	var tag [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tag[:], 7)
	raw.Send("m", append(tag[:k], []byte("ghost")...))
	// Partial frame: a bare truncated varint (0x80 promises a continuation
	// byte that never comes) — an aborted write's prefix.
	raw.Send("m", []byte{0x80})
	// Empty frame.
	raw.Send("m", nil)

	// Healthy traffic on both groups still flows, in order.
	k = binary.PutUvarint(tag[:], 0)
	raw.Send("m", append(tag[:k], []byte("g0")...))
	k = binary.PutUvarint(tag[:], 1)
	raw.Send("m", append(tag[:k], []byte("g1")...))

	if data, ok := muxRecvOne(t, mux.Group(0), 5*time.Second); !ok || string(data) != "g0" {
		t.Fatalf("group 0 got %q after corrupt frames", data)
	}
	if data, ok := muxRecvOne(t, mux.Group(1), 5*time.Second); !ok || string(data) != "g1" {
		t.Fatalf("group 1 got %q after corrupt frames", data)
	}
	// The garbage must not have been delivered anywhere.
	if data, ok := muxRecvOne(t, mux.Group(0), 50*time.Millisecond); ok {
		t.Fatalf("group 0 received stray frame %q", data)
	}
	if data, ok := muxRecvOne(t, mux.Group(1), 50*time.Millisecond); ok {
		t.Fatalf("group 1 received stray frame %q", data)
	}
}
