package transport

import (
	"testing"
	"time"

	"repro/internal/proc"
)

func recvOne(t *testing.T, tr Transport, timeout time.Duration) (Packet, bool) {
	t.Helper()
	select {
	case p, ok := <-tr.Receive():
		return p, ok
	case <-time.After(timeout):
		return Packet{}, false
	}
}

func TestMemnetDelivers(t *testing.T) {
	n := NewNetwork()
	a, b := n.Endpoint("a"), n.Endpoint("b")
	defer n.Shutdown()
	a.Send("b", []byte("hi"))
	pkt, ok := recvOne(t, b, time.Second)
	if !ok || pkt.From != "a" || string(pkt.Data) != "hi" {
		t.Fatalf("got %+v ok=%v", pkt, ok)
	}
}

func TestMemnetPayloadCopied(t *testing.T) {
	n := NewNetwork()
	a, b := n.Endpoint("a"), n.Endpoint("b")
	defer n.Shutdown()
	buf := []byte("aaaa")
	a.Send("b", buf)
	buf[0] = 'X' // sender reuses its buffer
	pkt, ok := recvOne(t, b, time.Second)
	if !ok || string(pkt.Data) != "aaaa" {
		t.Fatalf("aliasing: got %q", pkt.Data)
	}
}

func TestMemnetLossAndStats(t *testing.T) {
	n := NewNetwork(WithLoss(1.0), WithSeed(7))
	a, b := n.Endpoint("a"), n.Endpoint("b")
	defer n.Shutdown()
	for i := 0; i < 10; i++ {
		a.Send("b", []byte("x"))
	}
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Fatal("packet survived 100% loss")
	}
	st := n.Stats()
	if st.Sent != 10 || st.Dropped != 10 || st.Delivered != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMemnetCrashAndRestart(t *testing.T) {
	n := NewNetwork()
	a, b := n.Endpoint("a"), n.Endpoint("b")
	defer n.Shutdown()
	n.Crash("b")
	a.Send("b", []byte("lost"))
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Fatal("crashed process received a packet")
	}
	n.Restart("b")
	a.Send("b", []byte("alive"))
	if pkt, ok := recvOne(t, b, time.Second); !ok || string(pkt.Data) != "alive" {
		t.Fatal("restart did not restore delivery")
	}
}

func TestMemnetPartitionAndHeal(t *testing.T) {
	n := NewNetwork()
	a, b, c := n.Endpoint("a"), n.Endpoint("b"), n.Endpoint("c")
	defer n.Shutdown()
	n.Partition([]proc.ID{"a"}, []proc.ID{"b", "c"})
	a.Send("b", []byte("x"))
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Fatal("packet crossed partition")
	}
	b.Send("c", []byte("same-side"))
	if _, ok := recvOne(t, c, time.Second); !ok {
		t.Fatal("same-side packet lost")
	}
	n.Heal()
	a.Send("b", []byte("healed"))
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("heal did not restore connectivity")
	}
}

func TestMemnetCutLink(t *testing.T) {
	n := NewNetwork()
	a, b := n.Endpoint("a"), n.Endpoint("b")
	defer n.Shutdown()
	n.CutLink("a", "b")
	a.Send("b", []byte("x"))
	b.Send("a", []byte("y"))
	if _, ok := recvOne(t, b, 50*time.Millisecond); ok {
		t.Fatal("cut link leaked a->b")
	}
	if _, ok := recvOne(t, a, 50*time.Millisecond); ok {
		t.Fatal("cut link leaked b->a")
	}
	n.HealLink("a", "b")
	a.Send("b", []byte("z"))
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("healed link did not deliver")
	}
}

func TestMemnetLinkDelayOverride(t *testing.T) {
	n := NewNetwork() // zero default delay
	a, b := n.Endpoint("a"), n.Endpoint("b")
	defer n.Shutdown()
	n.SetLinkDelay("a", "b", 60*time.Millisecond, 70*time.Millisecond)
	start := time.Now()
	a.Send("b", []byte("slow"))
	if _, ok := recvOne(t, b, time.Second); !ok {
		t.Fatal("lost")
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("delay override ignored: %v", elapsed)
	}
}

func TestMemnetUnknownDestination(t *testing.T) {
	n := NewNetwork()
	a := n.Endpoint("a")
	defer n.Shutdown()
	a.Send("ghost", []byte("x")) // must not panic
	if st := n.Stats(); st.Dropped != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	ta, err := NewTCP("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewTCP("b", "127.0.0.1:0", map[proc.ID]string{"a": ta.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tb.Send("a", []byte("over tcp"))
	pkt, ok := recvOne(t, ta, 2*time.Second)
	if !ok || pkt.From != "b" || string(pkt.Data) != "over tcp" {
		t.Fatalf("got %+v ok=%v", pkt, ok)
	}
	// Unknown peer: silently dropped per the unreliable contract.
	tb.Send("ghost", []byte("x"))
}
